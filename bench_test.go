package r2c2

// One benchmark per table/figure of the paper's evaluation (§5), plus the
// ablation benchmarks DESIGN.md calls out and micro-benchmarks of the hot
// paths. Benchmarks run at test scale (64-node torus) so `go test -bench=.`
// finishes in minutes; the cmd/ tools run the same harnesses at the paper's
// 512-node scale.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"r2c2/internal/core"
	"r2c2/internal/discovery"
	"r2c2/internal/emu"
	"r2c2/internal/experiments"
	"r2c2/internal/genetic"
	"r2c2/internal/routing"
	"r2c2/internal/sim"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/trafficgen"
	"r2c2/internal/waterfill"
	"r2c2/internal/wire"
)

func benchScale() experiments.Scale {
	s := experiments.TestScale()
	s.Flows = 600
	return s
}

// --- Figure 2: routing-throughput table ---

func BenchmarkFig2RoutingTable(b *testing.B) {
	g, err := topology.NewTorus(8, 2)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2(g, 10, 1)
		if res.Get("uniform", routing.RPS) < 0.9 {
			b.Fatal("uniform/RPS off its anchor")
		}
	}
}

// --- Figure 7: emulator/simulator cross-validation ---

func BenchmarkFig7CrossValidation(b *testing.B) {
	cfg := experiments.Fig7Config{
		K: 3, LinkMbps: 200, Flows: 12, FlowBytes: 256 << 10,
		MeanInterval: 5 * time.Millisecond, Seed: 1,
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.SimThroughput.Len() != cfg.Flows {
			b.Fatal("simulator lost flows")
		}
	}
}

// --- Figure 8: CPU overhead of rate recomputation ---

func BenchmarkFig8RateComputation(b *testing.B) {
	s := benchScale()
	rhos := []simtime.Time{500 * simtime.Microsecond, simtime.Millisecond}
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(s, s.Tau, rhos, 40)
		if len(res.MedianHost) != len(rhos) {
			b.Fatal("missing rows")
		}
	}
}

// --- Figure 9: broadcast overhead ---

func BenchmarkFig9BroadcastOverhead(b *testing.B) {
	fracs := []float64{0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1}
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9(fracs)
		if len(res.Fraction) != 3 {
			b.Fatal("missing topologies")
		}
	}
}

// --- Figures 10/11: FCT and throughput CDFs under R2C2/TCP/PFQ ---

func BenchmarkFig10ShortFCT(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig10and11(s, s.Tau)
		if res.Runs[0].Results.ShortFCT.Len() == 0 {
			b.Fatal("no short flows measured")
		}
	}
}

func BenchmarkFig11LongThroughput(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig10and11(s, s.Tau)
		if res.Runs[0].Results.LongThroughput.Len() == 0 {
			b.Fatal("no long flows measured")
		}
	}
}

// --- Figures 12/13/14: load sweeps ---

func BenchmarkFig12FCTvsLoad(b *testing.B) {
	s := benchScale()
	taus := []simtime.Time{s.Tau, 10 * s.Tau}
	for i := 0; i < b.N; i++ {
		res := experiments.Fig12to14(s, taus)
		if len(res.FCT99) != len(taus) {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkFig13ThroughputVsLoad(b *testing.B) {
	s := benchScale()
	taus := []simtime.Time{s.Tau, 10 * s.Tau}
	for i := 0; i < b.N; i++ {
		res := experiments.Fig12to14(s, taus)
		if len(res.LongAvg) != len(taus) {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkFig14QueueOccupancy(b *testing.B) {
	s := benchScale()
	taus := []simtime.Time{s.Tau, 10 * s.Tau}
	for i := 0; i < b.N; i++ {
		res := experiments.Fig12to14(s, taus)
		if len(res.QueueP99) != len(taus) {
			b.Fatal("missing queue stats")
		}
	}
}

// --- Figures 15/16: rate accuracy of periodic recomputation ---

func BenchmarkFig15RateError(b *testing.B) {
	s := benchScale()
	rhos := []simtime.Time{100 * simtime.Microsecond, simtime.Millisecond}
	for i := 0; i < b.N; i++ {
		res := experiments.Fig15(s, s.Tau, rhos)
		if len(res.Median) != len(rhos) {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkFig16RateErrorVsLoad(b *testing.B) {
	s := benchScale()
	taus := []simtime.Time{s.Tau, 25 * s.Tau}
	for i := 0; i < b.N; i++ {
		res := experiments.Fig16(s, 500*simtime.Microsecond, taus)
		if len(res.Median) != len(taus) {
			b.Fatal("missing rows")
		}
	}
}

// --- Figure 17: headroom sensitivity ---

func BenchmarkFig17Headroom(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig17(s, s.Tau, []float64{0, 0.05, 0.2})
		if len(res.FCT99) != 3 {
			b.Fatal("missing rows")
		}
	}
}

// --- Figure 18: adaptive routing selection ---

func BenchmarkFig18AdaptiveRouting(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig18(s, []float64{0.25, 1.0},
			genetic.Config{Population: 40, MaxGens: 20})
		if res.Adaptive[0] < res.AllRPS[0]-1 {
			b.Fatal("adaptive lost to a baseline")
		}
	}
}

// --- Figure 19: control traffic ---

func BenchmarkFig19ControlTraffic(b *testing.B) {
	g, err := topology.NewTorus(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res := experiments.Fig19(g, []int{1, 5, 10})
		if res.Centralized[0] <= res.Decentralized[0] {
			b.Fatal("centralized should cost more at 1 flow/server")
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

// Ablation: φ-vector caching. The paper's prototype precomputes per-
// {protocol, destination} link-weight vectors (§4.2); this measures the
// cached hit path against recomputing the DP from scratch each time.
func BenchmarkAblationPhiPrecompute(b *testing.B) {
	g, err := topology.NewTorus(4, 3)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]topology.NodeID, 256)
	for i := range pairs {
		src := topology.NodeID(rng.Intn(g.Nodes()))
		dst := topology.NodeID(rng.Intn(g.Nodes()))
		for dst == src {
			dst = topology.NodeID(rng.Intn(g.Nodes()))
		}
		pairs[i] = [2]topology.NodeID{src, dst}
	}
	b.Run("cached", func(b *testing.B) {
		tab := routing.NewTable(g) // one table: second pass onward hits cache
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			_ = tab.Phi(routing.RPS, p[0], p[1])
		}
	})
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tab := routing.NewTable(g) // fresh table: full DP every time
			p := pairs[i%len(pairs)]
			_ = tab.Phi(routing.RPS, p[0], p[1])
		}
	})
}

// Ablation: view-keyed allocation caching in the simulator. Identical
// views share one water-filling run per recomputation round; this measures
// the whole-run effect of disabling that (forcing per-node computation is
// equivalent to a cache of size 0, approximated here by unique views).
func BenchmarkAblationViewCache(b *testing.B) {
	g, err := topology.NewTorus(4, 3)
	if err != nil {
		b.Fatal(err)
	}
	tab := routing.NewTable(g)
	rc := core.NewRateComputer(tab, 10e9, 0.05)
	view := core.NewView()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		src := topology.NodeID(rng.Intn(g.Nodes()))
		dst := topology.NodeID(rng.Intn(g.Nodes()))
		if src == dst {
			continue
		}
		view.AddFlow(core.FlowInfo{
			ID: wire.MakeFlowID(uint16(src), uint16(i)), Src: src, Dst: dst,
			Weight: 1, DemandKbps: core.UnlimitedDemand, Protocol: routing.RPS,
		})
	}
	nodes := g.Nodes()
	b.Run("shared-by-hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache := make(map[uint64]*core.Allocation)
			for n := 0; n < nodes; n++ {
				if _, ok := cache[view.Hash()]; !ok {
					cache[view.Hash()] = rc.Compute(view)
				}
			}
		}
	})
	b.Run("per-node", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for n := 0; n < nodes; n++ {
				// ComputeFull: per-node recomputation means the full fill every
				// time; plain Compute would be answered by its ViewHash cache.
				_ = rc.ComputeFull(view)
			}
		}
	})
}

// Ablation: batch (periodic) recomputation vs per-event recomputation in
// the full packet simulator — the cost side of the Figure 15 trade-off.
func BenchmarkAblationBatchRecompute(b *testing.B) {
	g, err := topology.NewTorus(4, 3)
	if err != nil {
		b.Fatal(err)
	}
	arrivals := trafficgen.Poisson(trafficgen.PoissonConfig{
		Nodes: g.Nodes(), MeanInterval: 10 * simtime.Microsecond, Count: 300, Seed: 3,
	})
	run := func(rho simtime.Time) *sim.Results {
		return sim.Run(sim.RunConfig{
			Graph:     g,
			Net:       sim.NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond},
			Transport: sim.TransportR2C2,
			R2C2:      sim.R2C2Config{Headroom: 0.05, Recompute: rho, Protocol: routing.RPS},
			Arrivals:  arrivals,
			MaxTime:   arrivals[len(arrivals)-1].At + simtime.Second,
		})
	}
	b.Run("rho=500us", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := run(500 * simtime.Microsecond); r.Completed == 0 {
				b.Fatal("no flows completed")
			}
		}
	})
	b.Run("rho=20us", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := run(20 * simtime.Microsecond); r.Completed == 0 {
				b.Fatal("no flows completed")
			}
		}
	})
}

// Ablation: broadcast-tree choice. Random tree per event balances
// broadcast load across links; a fixed tree concentrates it. Reported as
// ns/op of building and measuring the load imbalance.
func BenchmarkAblationBroadcastTrees(b *testing.B) {
	g, err := topology.NewTorus(4, 3)
	if err != nil {
		b.Fatal(err)
	}
	measure := func(trees int) float64 {
		fib := topology.NewBroadcastFIB(g, trees, 7)
		load := make([]int, g.NumLinks())
		for src := 0; src < g.Nodes(); src++ {
			for ev := 0; ev < trees; ev++ { // one event per tree, round-robin
				t, _ := fib.Tree(topology.NodeID(src), uint8(ev%trees))
				for lid, c := range t.LinkLoad(g.NumLinks()) {
					load[lid] += c
				}
			}
		}
		max, sum := 0, 0
		for _, c := range load {
			sum += c
			if c > max {
				max = c
			}
		}
		return float64(max) * float64(g.NumLinks()) / float64(sum)
	}
	b.Run("single-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if measure(1) < 1 {
				b.Fatal("imbalance below 1 impossible")
			}
		}
	})
	b.Run("four-trees", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if measure(4) < 1 {
				b.Fatal("imbalance below 1 impossible")
			}
		}
	})
}

// --- Micro-benchmarks of the hot paths ---

func BenchmarkWaterfillAllocate(b *testing.B) {
	g, err := topology.NewTorus(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	tab := routing.NewTable(g)
	rng := rand.New(rand.NewSource(4))
	flows := make([]waterfill.Flow, 512)
	for i := range flows {
		src := topology.NodeID(rng.Intn(g.Nodes()))
		dst := topology.NodeID(rng.Intn(g.Nodes()))
		for dst == src {
			dst = topology.NodeID(rng.Intn(g.Nodes()))
		}
		flows[i] = waterfill.Flow{
			Phi: tab.Phi(routing.RPS, src, dst), Weight: 1, Demand: waterfill.Unlimited,
		}
	}
	alloc := waterfill.NewAllocator(waterfill.Config{
		NumLinks: g.NumLinks(), Capacity: 10e9, Headroom: 0.05,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc.Allocate(flows) // the paper's 512-node, 512-flow recomputation
	}
}

// The delta-driven hot path against the from-scratch baseline on the same
// single-flow churn: 512 flows at paper scale, one demand-update per op.
// Most flows are demand-limited, the regime where a delta's ripple dies out
// at the first ring of frozen neighbours instead of re-levelling the whole
// fabric — exactly the common ρ-tick case the incremental allocator exists
// for.
func BenchmarkIncrementalChurn(b *testing.B) {
	g, err := topology.NewTorus(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	tab := routing.NewTable(g)
	rng := rand.New(rand.NewSource(7))
	flows := make([]waterfill.Flow, 512)
	for i := range flows {
		src := topology.NodeID(rng.Intn(g.Nodes()))
		dst := topology.NodeID(rng.Intn(g.Nodes()))
		for dst == src {
			dst = topology.NodeID(rng.Intn(g.Nodes()))
		}
		// Every flow host-limited well below its fair share, on single-path
		// DOR routes. Both choices bound the delta's footprint: an unlimited
		// flow's rate depends on the global water level (one elephant sharing
		// links with the churned flow re-levels rack-wide), and a spraying
		// protocol's φ-vector touches a large fraction of the fabric's links,
		// so every flow would be a neighbour of every other.
		flows[i] = waterfill.Flow{
			Phi:    tab.Phi(routing.DOR, src, dst),
			Weight: 1 + float64(rng.Intn(4)),
			Demand: 50e6 + rng.Float64()*450e6,
		}
	}
	cfg := waterfill.Config{NumLinks: g.NumLinks(), Capacity: 10e9, Headroom: 0.05}
	// One delta per op: flow i bounces between two host-limited demands.
	delta := func(i int) waterfill.Flow {
		f := flows[i%len(flows)]
		f.Demand = 60e6 + float64(i%7)*40e6
		return f
	}

	b.Run("incremental", func(b *testing.B) {
		inc := waterfill.NewIncremental(cfg)
		handles := inc.Rebuild(flows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inc.Update(handles[i%len(handles)], delta(i))
		}
	})
	b.Run("from-scratch", func(b *testing.B) {
		alloc := waterfill.NewAllocator(cfg)
		work := append([]waterfill.Flow(nil), flows...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			work[i%len(work)] = delta(i)
			alloc.Allocate(work)
		}
	})
}

func BenchmarkPhiRPS512(b *testing.B) {
	g, err := topology.NewTorus(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := routing.NewTable(g)
		_ = tab.Phi(routing.RPS, 0, topology.NodeID(g.Nodes()-1))
	}
}

func BenchmarkBroadcastEncodeDecode(b *testing.B) {
	bc := &wire.Broadcast{Event: wire.EventFlowStart, Src: 3, Dst: 500, DemandKbps: 123456}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := wire.EncodeBroadcast(bc)
		if _, err := wire.DecodeBroadcast(pkt[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorEventThroughput(b *testing.B) {
	g, err := topology.NewTorus(4, 3)
	if err != nil {
		b.Fatal(err)
	}
	arrivals := trafficgen.Poisson(trafficgen.PoissonConfig{
		Nodes: g.Nodes(), MeanInterval: 10 * simtime.Microsecond, Count: 200, Seed: 5,
	})
	b.ReportAllocs()
	b.ResetTimer()
	events := uint64(0)
	for i := 0; i < b.N; i++ {
		res := sim.Run(sim.RunConfig{
			Graph:     g,
			Net:       sim.NetConfig{LinkGbps: 10},
			Transport: sim.TransportR2C2,
			R2C2:      sim.R2C2Config{Headroom: 0.05, Protocol: routing.RPS},
			Arrivals:  arrivals,
			MaxTime:   arrivals[len(arrivals)-1].At + simtime.Second,
		})
		events += res.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

// Sharded-engine scaling (DESIGN.md §14): one multi-rack workload executed
// at worker counts 1/2/4/8. The logical partition is fixed (per rack), so
// every sub-benchmark performs identical simulation work and produces
// byte-identical Results — the ns/op ratio between sub-benchmarks is pure
// parallel speedup of the conservative-lookahead epoch loop. workers=1 is
// the serial engine (the sharded engine's differential oracle), so the
// workers=2 ratio also exposes the sharding overhead itself: epoch
// barriers, boundary drains and the replicated control events.
func BenchmarkShardedEventThroughput(b *testing.B) {
	const racks = 8
	subs := make([]*topology.Graph, racks)
	for i := range subs {
		g, err := topology.NewTorus(4, 3)
		if err != nil {
			b.Fatal(err)
		}
		subs[i] = g
	}
	var bridges []topology.Bridge
	for i := 0; i < racks; i++ {
		j := (i + 1) % racks
		bridges = append(bridges,
			topology.Bridge{RackA: i, RackB: j, NodeA: 0, NodeB: 7},
			topology.Bridge{RackA: i, RackB: j, NodeA: 11, NodeB: 4},
		)
	}
	g, err := topology.ConnectRacks(subs, bridges)
	if err != nil {
		b.Fatal(err)
	}
	arrivals := trafficgen.FixedSize(trafficgen.PoissonConfig{
		Nodes: g.Nodes(), MeanInterval: 50 * simtime.Microsecond, Count: 300, Seed: 5,
	}, 128<<10)
	cfg := sim.RunConfig{
		Graph:     g,
		Net:       sim.NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond},
		Transport: sim.TransportR2C2,
		R2C2: sim.R2C2Config{
			Headroom: 0.05, Protocol: routing.RPS,
			Recompute: 100 * simtime.Microsecond,
			Reliable:  true, RTO: 300 * simtime.Microsecond,
			Seed: 11,
		},
		Arrivals: arrivals,
		MaxTime:  50 * simtime.Millisecond,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			run := cfg
			run.Shards = workers
			b.ReportAllocs()
			b.ResetTimer()
			events, handoffs := uint64(0), uint64(0)
			for i := 0; i < b.N; i++ {
				res := sim.Run(run)
				events += res.Events
				for _, st := range res.ShardStats {
					handoffs += st.Handoffs
				}
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/run")
			b.ReportMetric(float64(handoffs)/float64(b.N), "handoffs/run")
		})
	}
}

// Per-tick control-plane cost (DESIGN.md §15): one multi-rack workload run
// with the replicated control plane (every shard recomputes the global
// allocation each tick) versus the aggregated tree-reduced one (each shard
// summarises only its sourced flows; one allocator run at the root), at
// two live-flow populations. The workload is a persistent bulk population
// (arrives in the first 0.5 ms, outlives the run) plus one long-lived flow
// arriving 50 µs after every tick — far enough from the next tick that its
// broadcast usually converges, so most ticks see a changed-but-agreed view
// and the allocator must actually run. ctrl-ns/tick sums the shards'
// control-plane time per recomputation round; root-ns/tick is shard 0's
// slice (the reduction root), nonroot-ns/tick the busiest other shard's.
// Replicated mode runs the allocator once per shard per tick, so every
// shard's cost scales with the TOTAL population; aggregated mode runs it
// once at the root, so nonroot-ns/tick stays flat as flows quadruple —
// the acceptance comparison.
func BenchmarkControlPlaneTick(b *testing.B) {
	const racks = 4
	const tick = simtime.Millisecond
	for _, flows := range []int{100, 400} {
		subs := make([]*topology.Graph, racks)
		for i := range subs {
			g, err := topology.NewTorus(3, 3)
			if err != nil {
				b.Fatal(err)
			}
			subs[i] = g
		}
		var bridges []topology.Bridge
		for i := 0; i < racks; i++ {
			j := (i + 1) % racks
			bridges = append(bridges,
				topology.Bridge{RackA: i, RackB: j, NodeA: 0, NodeB: 4},
				topology.Bridge{RackA: i, RackB: j, NodeA: 5, NodeB: 1},
			)
		}
		g, err := topology.ConnectRacks(subs, bridges)
		if err != nil {
			b.Fatal(err)
		}
		arrivals := trafficgen.FixedSize(trafficgen.PoissonConfig{
			Nodes: g.Nodes(), MeanInterval: 500 * simtime.Microsecond / simtime.Time(flows), Count: flows, Seed: 7,
		}, 64<<20)
		for k := 1; k < 20; k++ {
			src := topology.NodeID(k % g.Nodes())
			dst := topology.NodeID((k + g.Nodes()/2) % g.Nodes())
			arrivals = append(arrivals, trafficgen.Arrival{
				At: simtime.Time(k)*tick + 50*simtime.Microsecond,
				Src: src, Dst: dst, SizeBytes: 64 << 20, Weight: 1,
			})
		}
		sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].At < arrivals[j].At })
		cfg := sim.RunConfig{
			Graph: g,
			// Shallow ports (vs the 1 MB default) bound broadcast queueing so
			// views converge well inside a tick; divergent views fall back to
			// per-shard computes and would measure the oracle path instead.
			Net:       sim.NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond, QueueBytes: 64 << 10},
			Transport: sim.TransportR2C2,
			R2C2: sim.R2C2Config{
				Headroom: 0.05, Protocol: routing.RPS,
				Recompute: tick,
				Reliable:  true, RTO: 300 * simtime.Microsecond,
				Seed: 11,
			},
			Arrivals: arrivals,
			MaxTime:  20 * simtime.Millisecond,
			Shards:   racks,
		}
		for _, replicated := range []bool{true, false} {
			mode := "aggregated"
			if replicated {
				mode = "replicated"
			}
			b.Run(fmt.Sprintf("flows=%d/mode=%s", flows, mode), func(b *testing.B) {
				run := cfg
				run.ReplicatedControlPlane = replicated
				b.ReportAllocs()
				b.ResetTimer()
				var ctrlNs, rootNs, nonRootNs int64
				var rounds uint64
				for i := 0; i < b.N; i++ {
					res := sim.Run(run)
					rounds += res.RecomputeRounds
					iterMax := int64(0)
					for _, st := range res.ShardStats {
						ctrlNs += st.CtrlNs
						if st.Shard == 0 {
							rootNs += st.CtrlNs
						} else if st.CtrlNs > iterMax {
							iterMax = st.CtrlNs
						}
					}
					nonRootNs += iterMax
				}
				if rounds > 0 {
					b.ReportMetric(float64(ctrlNs)/float64(rounds), "ctrl-ns/tick")
					b.ReportMetric(float64(rootNs)/float64(rounds), "root-ns/tick")
					b.ReportMetric(float64(nonRootNs)/float64(rounds), "nonroot-ns/tick")
				}
			})
		}
	}
}

// --- Benchmarks of the operational extensions ---

// One §3.4 selection round over a 64-flow view (GA with the paper's
// population).
func BenchmarkSelectorRound(b *testing.B) {
	g, err := topology.NewTorus(4, 3)
	if err != nil {
		b.Fatal(err)
	}
	tab := routing.NewTable(g)
	protocols := []routing.Protocol{routing.RPS, routing.VLB}
	rng := rand.New(rand.NewSource(6))
	flows := trafficgen.PermutationLoad(g, 1.0, rng)
	fitness := genetic.AggregateFitness(tab, 10e9, 0.05, flows, protocols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		genetic.Optimize(genetic.Config{Population: 100, MaxGens: 10, Seed: int64(i)},
			len(flows), len(protocols), genetic.UniformAssignment(len(flows), 0), fitness)
	}
}

// Link-state discovery convergence over the full 512-node rack.
func BenchmarkDiscoveryConverge512(b *testing.B) {
	g, err := topology.NewTorus(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		nodes := discovery.FromGraph(g)
		if rounds := discovery.Converge(nodes); rounds == 0 {
			b.Fatal("no convergence")
		}
	}
}

// Failure reroute cost: degraded-fabric construction plus table/FIB swap.
func BenchmarkFailureReroute(b *testing.B) {
	g, err := topology.NewTorus(4, 3)
	if err != nil {
		b.Fatal(err)
	}
	ab, _ := g.LinkBetween(0, 1)
	ba, _ := g.LinkBetween(1, 0)
	failed := map[topology.LinkID]bool{ab: true, ba: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, _, err := g.WithoutLinks(failed)
		if err != nil {
			b.Fatal(err)
		}
		_ = routing.NewTable(sub)
		_ = topology.NewBroadcastFIB(sub, 2, 1)
	}
}

// Reliability overhead: identical workload with and without the §6 ack
// layer on a lossless fabric.
func BenchmarkReliabilityOverhead(b *testing.B) {
	g, err := topology.NewTorus(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	arrivals := trafficgen.Poisson(trafficgen.PoissonConfig{
		Nodes: g.Nodes(), MeanInterval: 20 * simtime.Microsecond, Count: 150, Seed: 8,
	})
	run := func(reliable bool) {
		res := sim.Run(sim.RunConfig{
			Graph:     g,
			Net:       sim.NetConfig{LinkGbps: 10},
			Transport: sim.TransportR2C2,
			R2C2:      sim.R2C2Config{Headroom: 0.05, Protocol: routing.RPS, Reliable: reliable},
			Arrivals:  arrivals,
			MaxTime:   arrivals[len(arrivals)-1].At + simtime.Second,
		})
		if res.Completed != len(arrivals) {
			b.Fatalf("reliable=%v: %d/%d complete", reliable, res.Completed, len(arrivals))
		}
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(false)
		}
	})
	b.Run("reliable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(true)
		}
	})
}

// Emulated-rack data path: wall-clock time to push 1 MB through the live
// goroutine fabric.
func BenchmarkEmuDataPath(b *testing.B) {
	g, err := topology.NewTorus(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	rack, err := emu.New(emu.Config{Graph: g, LinkMbps: 400, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rack.Start()
	defer rack.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := rack.StartFlow(0, 4, 1<<20, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Wait(time.Minute); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(1 << 20)
}

// Raw scheduler throughput: a ladder of self-rearming timers with spread
// periods drains 100k events per op through the hierarchical timer wheel —
// no network, no transport, just schedule/advance/dispatch (DESIGN.md §12).
// The engine, its node arena and the reused per-timer callbacks are built
// once outside the timed region, so allocs/op measures the wheel's steady
// state — which must be allocation-free: every fire recycles its node
// through the arena free list and the staging heap keeps its capacity.
func BenchmarkTimerWheel(b *testing.B) {
	const (
		timers = 64
		fires  = 100_000
	)
	eng := &sim.Engine{}
	for j := 0; j < timers; j++ {
		// Periods span level 0 through level 2 of the wheel so the
		// benchmark exercises placement and cascading, not one slot.
		period := simtime.Time(j+1) * 37 * simtime.Nanosecond
		var fn func()
		fn = func() { eng.After(period, fn) }
		eng.After(period, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := eng.Processed() + fires
		for eng.Processed() < target {
			eng.Run(eng.Now() + simtime.Millisecond)
		}
	}
	b.ReportMetric(float64(fires), "events/op")
}

// Mbuf-pool churn on the emulated rack: 2 KB flows are dominated by the
// control plane — every one carves start/finish broadcast chains and a
// handful of data segments out of the pool, fans the broadcasts out with
// per-hop retains and releases everything back (DESIGN.md §12). Steady-state
// allocs/op therefore measures pool recycling, not payload throughput.
func BenchmarkEmuMbufPool(b *testing.B) {
	g, err := topology.NewTorus(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	rack, err := emu.New(emu.Config{Graph: g, LinkMbps: 400, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rack.Start()
	defer rack.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := rack.StartFlow(0, 4, 2048, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Wait(time.Minute); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := rack.MbufStats(); st.Released > 0 && b.N > 10 {
		b.ReportMetric(float64(st.PeakLive), "peak-segs")
	}
}
