package policy

import (
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/sim"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
)

func TestTenantShares(t *testing.T) {
	p, err := NewTenant(map[TenantID]float64{"gold": 0.5, "silver": 0.25})
	if err != nil {
		t.Fatal(err)
	}
	gold, err := p.ClassFor("gold", 1)
	if err != nil {
		t.Fatal(err)
	}
	silver, err := p.ClassFor("silver", 1)
	if err != nil {
		t.Fatal(err)
	}
	if gold.Weight != 2 || silver.Weight != 1 {
		t.Fatalf("weights = %d:%d, want 2:1", gold.Weight, silver.Weight)
	}
	if gold.Priority != silver.Priority {
		t.Fatal("tenant policy should not use priorities")
	}
}

func TestTenantDividePerFlow(t *testing.T) {
	p, err := NewTenant(map[TenantID]float64{"a": 4, "b": 1})
	if err != nil {
		t.Fatal(err)
	}
	p.DividePerFlow = true
	// Tenant a runs 4 flows: each weight 1, so tenant a in aggregate still
	// gets 4x tenant b's single flow... but per flow they are equal.
	c, err := p.ClassFor("a", 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Weight != 1 {
		t.Fatalf("divided weight = %d, want 1", c.Weight)
	}
}

func TestTenantValidation(t *testing.T) {
	if _, err := NewTenant(nil); err == nil {
		t.Error("empty tenants accepted")
	}
	if _, err := NewTenant(map[TenantID]float64{"x": -1}); err == nil {
		t.Error("negative share accepted")
	}
	p, _ := NewTenant(map[TenantID]float64{"x": 1})
	if _, err := p.ClassFor("nope", 1); err == nil {
		t.Error("unknown tenant accepted")
	}
	if got := p.Tenants(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Tenants = %v", got)
	}
}

func TestDeadlineBands(t *testing.T) {
	var d Deadline
	// 1 MB with a generous second: ~8 Mbps required -> lowest band.
	relaxed := d.ClassFor(1<<20, simtime.Second)
	// 10 MB in 10 µs: hopelessly urgent -> top band.
	urgent := d.ClassFor(10<<20, 10*simtime.Microsecond)
	if relaxed.Priority >= urgent.Priority {
		t.Fatalf("relaxed band %d not below urgent %d", relaxed.Priority, urgent.Priority)
	}
	if relaxed.Priority == 0 {
		t.Fatal("deadline flow in the best-effort band")
	}
	if urgent.Weight <= relaxed.Weight {
		t.Fatal("urgent flow should carry more weight")
	}
	missed := d.ClassFor(1<<20, 0)
	if missed.Priority != d.Bands || missed.Weight != 255 {
		t.Fatalf("missed deadline class = %+v", missed)
	}
	be := d.BestEffort()
	if be.Priority != 0 || be.Weight != 1 {
		t.Fatalf("best effort = %+v", be)
	}
}

// Urgency monotonicity: shrinking the deadline never lowers the band.
func TestDeadlineMonotone(t *testing.T) {
	var d Deadline
	last := uint8(0)
	for _, rem := range []simtime.Time{
		simtime.Second, 100 * simtime.Millisecond, 10 * simtime.Millisecond,
		simtime.Millisecond, 100 * simtime.Microsecond,
	} {
		c := d.ClassFor(10<<20, rem)
		if c.Priority < last {
			t.Fatalf("band dropped to %d as deadline tightened to %v", c.Priority, rem)
		}
		last = c.Priority
	}
}

// End to end: a deadline flow classed by the policy beats best-effort bulk
// through the actual simulator.
func TestDeadlineMeetsDeadlineUnderLoad(t *testing.T) {
	g, err := topology.NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng := &sim.Engine{}
	net := sim.NewNetwork(g, eng, sim.NetConfig{LinkGbps: 10})
	r := sim.NewR2C2(net, routing.NewTable(g), sim.R2C2Config{
		Headroom: 0.05, Protocol: routing.DOR, Recompute: 50 * simtime.Microsecond})

	var d Deadline
	deadline := 3 * simtime.Millisecond
	cls := d.ClassFor(1<<20, deadline) // 1 MB needs ~2.8 Gbps
	be := d.BestEffort()

	// Bulk best-effort congestion on the same path.
	r.StartFlow(0, 2, 32<<20, be.Weight, be.Priority)
	r.StartFlow(0, 2, 32<<20, be.Weight, be.Priority)
	urgent := r.StartFlow(0, 2, 1<<20, cls.Weight, cls.Priority)

	eng.Run(200 * simtime.Millisecond)
	rec := r.Ledger()[urgent]
	if !rec.Done {
		t.Fatal("deadline flow incomplete")
	}
	if rec.FCT() > deadline {
		t.Fatalf("deadline missed: FCT %v > %v", rec.FCT(), deadline)
	}
}
