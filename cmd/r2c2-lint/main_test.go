package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, rule := range []string{"no-wallclock", "no-global-rand", "mutex-by-value", "goroutine-leak", "unit-suffix",
		"alloc-hotpath", "det-map-iter", "shard-ownership", "atomic-plain-mix"} {
		if !strings.Contains(out.String(), rule) {
			t.Fatalf("rule listing missing %q:\n%s", rule, out.String())
		}
	}
}

// writeTree materialises a module fixture: path -> content, rooted at a
// temp dir with a go.mod.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module example.com/fake\n\ngo 1.22\n"
	for path, content := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// multiPkgFixture trips several rules across three packages: a wall-clock
// read and hot-path allocations in internal/sim, global rand in
// internal/routing, and — for the module-wide rules — an order-sensitive
// map iteration in internal/sim plus an owned-state escape and an
// atomic/plain mix in internal/emu. The ignore directive names a rule
// outside any -rules filter, exercising full-set directive validation.
func multiPkgFixture(t *testing.T) string {
	return writeTree(t, map[string]string{
		"internal/sim/clock.go": `package sim

import "time"

func now() int64 { return time.Now().UnixNano() }

//r2c2:hotpath
func dispatch(n int) []int {
	xs := make([]int, n)
	return xs
}
`,
		"internal/sim/flows.go": `package sim

type flow struct{ rate float64 }

func emit(flows map[uint32]*flow, ch chan float64) {
	for _, f := range flows {
		ch <- f.rate
	}
}
`,
		"internal/emu/state.go": `package emu

import "sync/atomic"

//r2c2:shardowned — fixture engine state
type Node struct{ seq uint64 }

func (n *Node) advance() { atomic.AddUint64(&n.seq, 1) }

func (n *Node) peek() uint64 { return n.seq }

func spawn(n *Node) {
	go func() { n.advance() }()
}
`,
		"internal/routing/rand.go": `package routing

import "math/rand"

//lint:ignore no-global-rand fixture exercises directive validation
func pick(n int) int { return rand.Intn(n) }

func pick2(n int) int { return rand.Intn(n) }
`,
	})
}

func TestRunDeterministicOutput(t *testing.T) {
	root := multiPkgFixture(t)
	for _, mode := range [][]string{{"-json"}, {}} {
		args := append(append([]string(nil), mode...), root+"/...")
		var a, b bytes.Buffer
		errA := run(args, &a)
		errB := run(args, &b)
		if errA == nil || errB == nil {
			t.Fatalf("fixture should produce findings (args %v)", args)
		}
		if errA.Error() != errB.Error() {
			t.Fatalf("finding counts differ between runs: %v vs %v", errA, errB)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("output not byte-identical across runs (args %v):\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
				args, a.String(), b.String())
		}
	}
}

func TestRunRuleFilter(t *testing.T) {
	root := multiPkgFixture(t)
	var out bytes.Buffer
	err := run([]string{"-rules", "alloc-hotpath", root + "/..."}, &out)
	if err == nil {
		t.Fatal("hot-path make should survive the filter and exit non-zero")
	}
	if _, ok := err.(errFindings); !ok {
		t.Fatalf("want errFindings, got %T: %v", err, err)
	}
	got := out.String()
	if !strings.Contains(got, "alloc-hotpath") || !strings.Contains(got, "make allocates") {
		t.Errorf("filtered run missing the alloc-hotpath finding:\n%s", got)
	}
	for _, absent := range []string{"no-wallclock", "no-global-rand", "unknown rule"} {
		if strings.Contains(got, absent) {
			t.Errorf("filtered run should not mention %q:\n%s", absent, got)
		}
	}

	if err := run([]string{"-rules", "no-such-rule", root + "/..."}, &out); err == nil ||
		!strings.Contains(err.Error(), "unknown rule") {
		t.Errorf("bogus -rules name should error, got %v", err)
	}
}

// TestRunNewRules: the three type-aware rules run together under -rules
// and each finds its fixture violation.
func TestRunNewRules(t *testing.T) {
	root := multiPkgFixture(t)
	var out bytes.Buffer
	err := run([]string{"-rules", "det-map-iter,shard-ownership,atomic-plain-mix", root + "/..."}, &out)
	if _, ok := err.(errFindings); !ok {
		t.Fatalf("want errFindings, got %T: %v", err, err)
	}
	got := out.String()
	for _, want := range []string{
		"det-map-iter", "channel send",
		"shard-ownership", "captures shard-owned",
		"atomic-plain-mix", "mixes plain and sync/atomic",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("combined run missing %q:\n%s", want, got)
		}
	}
}

// TestRunJSONSchema: -json emits {analyzer_version, rules, findings} and
// the rules field records exactly what ran, so a clean report is
// attributable to a specific rule set and analyzer generation.
func TestRunJSONSchema(t *testing.T) {
	root := multiPkgFixture(t)
	var out bytes.Buffer
	err := run([]string{"-json", "-rules", "det-map-iter", root + "/..."}, &out)
	if _, ok := err.(errFindings); !ok {
		t.Fatalf("want errFindings, got %T: %v", err, err)
	}
	var rep struct {
		AnalyzerVersion int `json:"analyzer_version"`
		Rules           []string
		Findings        []struct{ Rule string }
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("decode report: %v\n%s", err, out.String())
	}
	if rep.AnalyzerVersion < 2 {
		t.Errorf("analyzer_version = %d, want >= 2", rep.AnalyzerVersion)
	}
	if len(rep.Rules) != 1 || rep.Rules[0] != "det-map-iter" {
		t.Errorf("rules = %v, want [det-map-iter]", rep.Rules)
	}
	if len(rep.Findings) == 0 {
		t.Error("findings should be non-empty for the fixture")
	}
	for _, f := range rep.Findings {
		if f.Rule != "det-map-iter" && f.Rule != "lint-directive" {
			t.Errorf("unexpected rule %q under filter", f.Rule)
		}
	}
}

// TestRunOwnershipReport: -ownership writes the declared ownership model
// (owned types, boundary funcs, surviving findings) as a JSON artifact,
// byte-identical across runs.
func TestRunOwnershipReport(t *testing.T) {
	root := multiPkgFixture(t)
	repPath := filepath.Join(t.TempDir(), "shard_ownership.json")
	var out bytes.Buffer
	run([]string{"-ownership", repPath, root + "/..."}, &out)
	data, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatalf("ownership report not written: %v", err)
	}
	var rep struct {
		AnalyzerVersion int      `json:"analyzer_version"`
		OwnedTypes      []string `json:"owned_types"`
		BoundaryFuncs   []string `json:"boundary_funcs"`
		Findings        []struct{ Rule string }
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decode ownership report: %v\n%s", err, data)
	}
	if len(rep.OwnedTypes) != 1 || !strings.HasSuffix(rep.OwnedTypes[0], "internal/emu.Node") {
		t.Errorf("owned_types = %v, want the fixture's emu.Node", rep.OwnedTypes)
	}
	if rep.BoundaryFuncs == nil || rep.Findings == nil {
		t.Error("empty report slices must encode as [], not null")
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Rule != "shard-ownership" {
		t.Errorf("findings = %+v, want the one go-capture escape", rep.Findings)
	}

	var again bytes.Buffer
	run([]string{"-ownership", repPath, root + "/..."}, &again)
	data2, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("ownership report not byte-identical across runs:\n--- 1 ---\n%s\n--- 2 ---\n%s", data, data2)
	}
}

func TestRunFindsViolations(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module example.com/fake\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "sim")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package sim\nimport \"time\"\nfunc now() int64 { return time.Now().UnixNano() }\n"
	if err := os.WriteFile(filepath.Join(dir, "clock.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err := run([]string{"-json", root + "/..."}, &out)
	if err == nil {
		t.Fatal("lint of a violating tree should exit non-zero")
	}
	if _, ok := err.(errFindings); !ok {
		t.Fatalf("want errFindings, got %T: %v", err, err)
	}
	if !strings.Contains(out.String(), "no-wallclock") {
		t.Fatalf("JSON output missing the finding:\n%s", out.String())
	}
}
