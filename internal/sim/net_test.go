package sim

import (
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

func torus(t testing.TB, k, dims int) *topology.Graph {
	t.Helper()
	g, err := topology.NewTorus(k, dims)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// dataPacket builds a minimal data packet along the DOR path.
func dataPacket(t testing.TB, tab *routing.Table, src, dst topology.NodeID, payload int) *Packet {
	t.Helper()
	path := tab.Phi(routing.DOR, src, dst).Links
	return &Packet{
		Kind:      KindData,
		SizeBytes: payload + DataHeaderBytes,
		Flow:      wire.MakeFlowID(uint16(src), 0),
		Src:       src,
		Dst:       dst,
		Payload:   payload,
		Path:      append([]topology.LinkID(nil), path...),
	}
}

func TestPacketDeliveryTiming(t *testing.T) {
	g := torus(t, 4, 1) // a 4-ring
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	tab := routing.NewTable(g)

	var deliveredAt simtime.Time
	var deliveredTo topology.NodeID
	net.Deliver = func(at topology.NodeID, pkt *Packet) {
		deliveredAt = eng.Now()
		deliveredTo = at
	}
	pkt := dataPacket(t, tab, 0, 2, 1464) // 2 hops, 1500 B on wire
	if !net.Inject(pkt) {
		t.Fatal("inject failed")
	}
	eng.Run(simtime.Second)
	if deliveredTo != 2 {
		t.Fatalf("delivered to %d", deliveredTo)
	}
	// Store-and-forward: 2 × (1.2 µs serialisation + 100 ns propagation).
	want := 2 * (1200 + 100) * simtime.Nanosecond
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

// Conservation: injected = delivered + dropped (no in-flight at drain).
func TestPacketConservation(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, QueueBytes: 4 * 1500})
	tab := routing.NewTable(g)
	delivered := 0
	net.Deliver = func(at topology.NodeID, pkt *Packet) { delivered++ }
	injected := 0
	// Flood one destination from everywhere to force drops.
	for round := 0; round < 30; round++ {
		for s := 1; s < g.Nodes(); s++ {
			pkt := dataPacket(t, tab, topology.NodeID(s), 0, 1400)
			injected++
			net.Inject(pkt)
		}
	}
	eng.Run(simtime.Second)
	// TotalDrops includes packets rejected at inject time.
	if delivered+int(net.TotalDrops()) != injected {
		t.Fatalf("conservation violated: injected=%d delivered=%d drops=%d",
			injected, delivered, net.TotalDrops())
	}
	if net.TotalDrops() == 0 {
		t.Fatal("expected drops under incast flood with tiny queues")
	}
}

func TestFIFOOrderPerPath(t *testing.T) {
	g := torus(t, 4, 1)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10})
	tab := routing.NewTable(g)
	var seqs []uint32
	net.Deliver = func(at topology.NodeID, pkt *Packet) { seqs = append(seqs, pkt.Seq) }
	for i := 0; i < 20; i++ {
		pkt := dataPacket(t, tab, 0, 1, 1000)
		pkt.Seq = uint32(i)
		net.Inject(pkt)
	}
	eng.Run(simtime.Second)
	if len(seqs) != 20 {
		t.Fatalf("delivered %d", len(seqs))
	}
	for i, s := range seqs {
		if s != uint32(i) {
			t.Fatalf("FIFO violated: %v", seqs)
		}
	}
}

func TestQueueStatsTracked(t *testing.T) {
	g := torus(t, 4, 1)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10})
	tab := routing.NewTable(g)
	net.Deliver = func(topology.NodeID, *Packet) {}
	firstLink := tab.Phi(routing.DOR, 0, 1).Links[0]
	for i := 0; i < 10; i++ {
		net.Inject(dataPacket(t, tab, 0, 1, 1464))
	}
	eng.Run(simtime.Second)
	st := net.PortStats(firstLink)
	if st.EnqueuedPkts != 10 {
		t.Fatalf("enqueued = %d", st.EnqueuedPkts)
	}
	if st.SentBytes != 10*1500 {
		t.Fatalf("sent bytes = %d", st.SentBytes)
	}
	// 10 packets arrive instantaneously; at least 9 queue behind the first.
	if st.MaxQueueBytes < 9*1500 {
		t.Fatalf("max queue = %d", st.MaxQueueBytes)
	}
	if len(net.MaxQueueSample()) != g.NumLinks() {
		t.Fatal("MaxQueueSample size wrong")
	}
}

func TestInjectValidation(t *testing.T) {
	g := torus(t, 4, 1)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{})
	tab := routing.NewTable(g)
	assertPanics(t, "broadcast via Inject", func() {
		net.Inject(&Packet{Kind: KindBroadcast})
	})
	assertPanics(t, "empty path", func() {
		net.Inject(&Packet{Kind: KindData})
	})
	assertPanics(t, "path not at source", func() {
		pkt := dataPacket(t, tab, 1, 2, 10)
		pkt.Src = 3
		net.Inject(pkt)
	})
}

// A recycled packet's sampling scratch must survive carrying an interned
// (shared) route: runs mixing sampled and interned traffic — reliable R2C2
// with RPS data and DOR acks — would otherwise bleed pooled capacity.
func TestPoolScratchSurvivesInternedRoutes(t *testing.T) {
	g := torus(t, 4, 1)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{})
	tab := routing.NewTable(g)

	// A sampling pass grows the packet's scratch buffer.
	p := net.newPacket()
	p.scratch = append(p.scratch[:0], tab.Phi(routing.DOR, 0, 2).Links...)
	p.Path = p.scratch
	cap0 := cap(p.scratch)
	if cap0 == 0 {
		t.Fatal("sampling left no scratch capacity")
	}
	net.freePacket(p)

	// The recycled packet carries an interned route instead...
	p = net.newPacket()
	if cap(p.scratch) != cap0 {
		t.Fatalf("recycled packet lost scratch: cap %d, want %d", cap(p.scratch), cap0)
	}
	p.Path = tab.Phi(routing.DOR, 0, 2).Links
	net.freePacket(p)

	// ...and the scratch must still be there for the next sampling pass,
	// with the shared route detached, not recycled.
	p = net.newPacket()
	if cap(p.scratch) != cap0 {
		t.Fatalf("interned route discarded the scratch buffer: cap %d, want %d", cap(p.scratch), cap0)
	}
	if p.Path != nil {
		t.Fatal("recycled packet still references a shared route")
	}
	net.freePacket(p)
}

// Wiring a second transport of the same kind onto an engine must panic, as
// NewNetwork does: pending typed events would silently be redirected to the
// new instance.
func TestSecondTransportOnEnginePanics(t *testing.T) {
	g := torus(t, 4, 1)
	tab := routing.NewTable(g)

	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{})
	NewR2C2(net, tab, R2C2Config{})
	assertPanics(t, "second R2C2 on one engine", func() {
		NewR2C2(net, tab, R2C2Config{})
	})

	eng2 := &Engine{}
	net2 := NewNetwork(g, eng2, NetConfig{})
	NewTCP(net2, tab, TCPConfig{})
	assertPanics(t, "second TCP on one engine", func() {
		NewTCP(net2, tab, TCPConfig{})
	})
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestBroadcastReachesAllNodes(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10})
	fib := topology.NewBroadcastFIB(g, 2, 1)
	got := make(map[topology.NodeID]int)
	net.Deliver = func(at topology.NodeID, pkt *Packet) { got[at]++ }
	net.NextBroadcastHops = func(at topology.NodeID, pkt *Packet) []topology.LinkID {
		hops, ok := fib.NextHops(pkt.Src, pkt.Bcast.Tree, at)
		if !ok {
			t.Fatal("FIB miss")
		}
		return hops
	}
	b := &wire.Broadcast{Event: wire.EventFlowStart, Src: 5, Tree: 1}
	net.InjectBroadcast(5, &Packet{Kind: KindBroadcast, SizeBytes: BroadcastBytes, Src: 5, Bcast: b})
	eng.Run(simtime.Second)
	if len(got) != g.Nodes() {
		t.Fatalf("broadcast reached %d nodes, want %d", len(got), g.Nodes())
	}
	for node, count := range got {
		if count != 1 {
			t.Fatalf("node %d received %d copies", node, count)
		}
	}
	// §3.2 accounting: n-1 link traversals × 16 bytes.
	if want := uint64((g.Nodes() - 1) * 16); net.BcastBytesOnWire != want {
		t.Fatalf("broadcast bytes = %d, want %d", net.BcastBytesOnWire, want)
	}
}
