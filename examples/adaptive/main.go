// Adaptive: per-flow routing-protocol selection (§3.4). Long-running flows
// start on minimal routing; the genetic heuristic periodically reassigns
// protocols to maximise aggregate rack throughput, beating any single
// network-wide protocol at every load level — the Figure 18 mechanism.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"math/rand"

	"r2c2/internal/genetic"
	"r2c2/internal/routing"
	"r2c2/internal/topology"
	"r2c2/internal/trafficgen"
)

func main() {
	g, err := topology.NewTorus(4, 3)
	if err != nil {
		log.Fatal(err)
	}
	tab := routing.NewTable(g)
	protocols := []routing.Protocol{routing.RPS, routing.VLB}
	rng := rand.New(rand.NewSource(7))

	fmt.Println("load  all-RPS  all-VLB  adaptive  winner-share (RPS/VLB)")
	for _, load := range []float64{0.125, 0.25, 0.5, 0.75, 1.0} {
		flows := trafficgen.PermutationLoad(g, load, rng)
		fitness := genetic.AggregateFitness(tab, 10e9, 0.05, flows, protocols)

		allRPS := fitness(genetic.UniformAssignment(len(flows), 0))
		allVLB := fitness(genetic.UniformAssignment(len(flows), 1))
		best := genetic.Optimize(
			genetic.Config{Population: 60, MaxGens: 40, Seed: 7},
			len(flows), len(protocols),
			genetic.UniformAssignment(len(flows), 0), // flows start minimal
			fitness,
		)

		nRPS := 0
		for _, gene := range best.Assignment {
			if gene == 0 {
				nRPS++
			}
		}
		fmt.Printf("%.3f  %7.1f  %7.1f  %8.1f  %d/%d\n",
			load, allRPS/1e9, allVLB/1e9, best.Utility/1e9,
			nRPS, len(best.Assignment)-nRPS)
	}
	fmt.Println("\n(throughputs in Gbps; adaptive >= max(all-RPS, all-VLB) at every load,")
	fmt.Println(" and the protocol mix shifts from VLB at low load to RPS at high load)")
}
