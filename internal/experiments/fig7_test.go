package experiments

import (
	"testing"
	"time"
)

// Cross-validation at reduced scale: the emulator (wall clock, real
// goroutine concurrency) and the simulator (virtual clock) replay the same
// flow sequence; their throughput distributions must roughly agree. This is
// the Figure 7 experiment; cmd/r2c2-emu runs it at larger scale.
func TestFig7CrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock emulation")
	}
	cfg := Fig7Config{
		K:            3,
		LinkMbps:     200,
		Flows:        24,
		FlowBytes:    512 << 10,
		MeanInterval: 5 * time.Millisecond,
		Seed:         7,
	}
	res, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EmuThroughput.Len() != cfg.Flows || res.SimThroughput.Len() != cfg.Flows {
		t.Fatalf("flow counts: emu=%d sim=%d", res.EmuThroughput.Len(), res.SimThroughput.Len())
	}
	// Wall-clock noise (scheduler, timer resolution) allows a generous
	// band; the paper reports "high accuracy", we assert same ballpark.
	// Under the race detector the emulator's goroutines run 5-20x slower
	// while the simulator's virtual clock is unaffected, so the accuracy
	// comparison is meaningless there; the structural checks above still ran.
	if raceEnabled {
		t.Skip("wall-clock emulator timing is distorted by the race detector")
	}
	if gap := res.MedianThroughputGap(); gap > 0.5 {
		t.Errorf("median throughput gap emulator vs simulator = %.2f (emu %.3g, sim %.3g)",
			gap, res.EmuThroughput.Median(), res.SimThroughput.Median())
	}
	_ = res.Table().String()
}
