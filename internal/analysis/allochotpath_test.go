package analysis

import (
	"strings"
	"testing"
)

// countRule tallies findings for one rule, failing the test on any
// lint-directive findings (a fixture with a bad ignore is a broken test).
func countRule(t *testing.T, diags []Diagnostic, rule string) int {
	t.Helper()
	n := 0
	for _, d := range diags {
		if d.Rule == "lint-directive" {
			t.Fatalf("fixture produced lint-directive finding: %v", d)
		}
		if d.Rule == rule {
			n++
		}
	}
	return n
}

func TestAllocHotpathConstructs(t *testing.T) {
	a := NewAllocHotpath()
	cases := []struct {
		name string
		src  string
		want int
		msg  string
	}{
		{"make", `package p
//r2c2:hotpath
func F() { _ = make([]int, 4) }`, 1, "make allocates"},
		{"new", `package p
//r2c2:hotpath
func F() *int { return new(int) }`, 1, "new allocates"},
		{"slice-literal", `package p
//r2c2:hotpath
func F() { _ = []int{1, 2} }`, 1, "slice literal"},
		{"map-literal", `package p
//r2c2:hotpath
func F() { _ = map[int]int{} }`, 1, "map literal"},
		{"addr-composite", `package p
type T struct{ x int }
//r2c2:hotpath
func F() *T { return &T{x: 1} }`, 1, "&composite literal"},
		{"value-struct-literal-ok", `package p
type T struct{ x int }
//r2c2:hotpath
func F() T { return T{x: 1} }`, 0, ""},
		{"append-fresh", `package p
//r2c2:hotpath
func F(xs []int) []int { ys := append([]int(nil), xs...); return ys }`, 1, "append"},
		{"append-grow-in-place-ok", `package p
type B struct{ buf []int }
//r2c2:hotpath
func (b *B) F(x int) { b.buf = append(b.buf, x) }`, 0, ""},
		{"append-reslice-reuse-ok", `package p
type B struct{ buf []int }
//r2c2:hotpath
func (b *B) F(x int) { b.buf = append(b.buf[:0], x) }`, 0, ""},
		{"append-into-param-ok", `package p
//r2c2:hotpath
func F(buf []int, x int) []int { return append(buf, x) }`, 0, ""},
		{"string-concat", `package p
//r2c2:hotpath
func F(a, b string) string { return a + b }`, 1, "string concatenation"},
		{"const-concat-ok", `package p
//r2c2:hotpath
func F() string { return "a" + "b" }`, 0, ""},
		{"bytes-to-string", `package p
//r2c2:hotpath
func F(b []byte) string { return string(b) }`, 1, "conversion between string"},
		{"string-to-bytes", `package p
//r2c2:hotpath
func F(s string) []byte { return []byte(s) }`, 1, "conversion between string"},
		{"boxing-assign", `package p
//r2c2:hotpath
func F(x int) { var i interface{} = x; _ = i }`, 1, "interface boxing"},
		{"boxing-pointer-ok", `package p
type T struct{ x int }
//r2c2:hotpath
func F(t *T) { var i interface{} = t; _ = i }`, 0, ""},
		{"boxing-nil-ok", `package p
//r2c2:hotpath
func F() { var i interface{} = nil; _ = i }`, 0, ""},
		{"boxing-return", `package p
//r2c2:hotpath
func F(x float64) interface{} { return x }`, 1, "interface boxing"},
		{"boxing-call-arg", `package p
func sink(i interface{}) {}
//r2c2:hotpath
func F(x int) { sink(x) }`, 1, "interface boxing"},
		{"closure-capture", `package p
//r2c2:hotpath
func F(x int) func() int { return func() int { return x } }`, 1, "closure capturing x"},
		{"closure-no-capture-ok", `package p
//r2c2:hotpath
func F() func() int { return func() int { return 7 } }`, 0, ""},
		{"fmt-call", `package p
import "fmt"
//r2c2:hotpath
func F(x int) string { return fmt.Sprintf("%d", x) }`, 1, "fmt.Sprintf allocates"},
		{"errors-new", `package p
import "errors"
//r2c2:hotpath
func F() error { return errors.New("boom") }`, 1, "errors.New allocates"},
		{"time-after", `package p
import "time"
//r2c2:hotpath
func F() { <-time.After(1) }`, 1, "time.After allocates"},
		{"panic-args-exempt", `package p
import "fmt"
//r2c2:hotpath
func F(x int) {
	if x < 0 {
		panic(fmt.Sprintf("bad %d", x))
	}
}`, 0, ""},
		{"unannotated-ok", `package p
func F() { _ = make([]int, 4) }`, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := checkModule(t, onePkg("m/p", tc.src), a)
			if got := countRule(t, diags, "alloc-hotpath"); got != tc.want {
				t.Fatalf("got %d findings, want %d: %v", got, tc.want, diags)
			}
			if tc.want > 0 && !strings.Contains(diags[0].Message, tc.msg) {
				t.Errorf("message %q should contain %q", diags[0].Message, tc.msg)
			}
		})
	}
}

func TestAllocHotpathTransitiveCallee(t *testing.T) {
	a := NewAllocHotpath()
	src := `package p

//r2c2:hotpath
func Run() { helper() }

func helper() { _ = make([]int, 8) }

func cold() { _ = make([]int, 8) }`
	diags := checkModule(t, onePkg("m/p", src), a)
	if got := countRule(t, diags, "alloc-hotpath"); got != 1 {
		t.Fatalf("got %d findings, want 1 (helper flagged, cold not): %v", got, diags)
	}
	msg := diags[0].Message
	if !strings.Contains(msg, "p.helper") || !strings.Contains(msg, "reached from") || !strings.Contains(msg, "p.Run") {
		t.Errorf("message %q should name helper and the hot root Run", msg)
	}
}

func TestAllocHotpathTransitiveCrossPackage(t *testing.T) {
	a := NewAllocHotpath()
	pkgs := map[string]map[string]string{
		"m/leaf": {"leaf.go": `package leaf
func Grow(n int) []int { return make([]int, n) }`},
		"m/top": {"top.go": `package top
import "m/leaf"
//r2c2:hotpath
func Run(n int) []int { return leaf.Grow(n) }`},
	}
	diags := checkModule(t, pkgs, a)
	if got := countRule(t, diags, "alloc-hotpath"); got != 1 {
		t.Fatalf("got %d findings, want 1: %v", got, diags)
	}
	if !strings.Contains(diags[0].Message, "leaf.Grow") {
		t.Errorf("message %q should name the cross-package callee", diags[0].Message)
	}
}

func TestAllocHotpathMethodAndGeneric(t *testing.T) {
	a := NewAllocHotpath()
	src := `package p

type Q struct{ xs []int }

//r2c2:hotpath
func (q *Q) Push(x int) { q.xs = grow(q.xs, x) }

func grow[T any](xs []T, x T) []T {
	ys := append([]T(nil), xs...)
	return append(ys, x)
}`
	diags := checkModule(t, onePkg("m/p", src), a)
	// The copying append inside the generic callee is flagged; the final
	// append returns into ys which is not a parameter, flagged too.
	if got := countRule(t, diags, "alloc-hotpath"); got < 1 {
		t.Fatalf("got %d findings, want >=1 (generic callee reached from hot method): %v", got, diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "p.grow") {
			t.Errorf("message %q should attribute the alloc to the generic callee", d.Message)
		}
	}
}

func TestAllocHotpathIgnorePlacement(t *testing.T) {
	a := NewAllocHotpath()
	src := `package p

//r2c2:hotpath
func F() {
	_ = make([]int, 16)
	//lint:ignore alloc-hotpath one-time warmup, amortised across the run
	_ = make([]int, 4)
	_ = make([]int, 8) //lint:ignore alloc-hotpath cold branch in disguise
}`
	diags := checkModule(t, onePkg("m/p", src), a)
	if got := countRule(t, diags, "alloc-hotpath"); got != 1 {
		t.Fatalf("got %d findings, want 1 (two suppressed, one live): %v", got, diags)
	}
	if diags[0].Pos.Line != 5 {
		t.Errorf("surviving finding at line %d, want 5 (the unsuppressed make)", diags[0].Pos.Line)
	}
}

func TestAllocHotpathUnknownRuleIgnoreErrors(t *testing.T) {
	src := `package p

//r2c2:hotpath
func F() {
	//lint:ignore alloc-hotpth typo in the rule name
	_ = make([]int, 4)
}`
	diags, err := CheckSourceModule(onePkg("m/p", src), []ModuleAnalyzer{NewAllocHotpath()})
	if err != nil {
		t.Fatalf("CheckSourceModule: %v", err)
	}
	var sawDirective bool
	for _, d := range diags {
		if d.Rule == "lint-directive" && strings.Contains(d.Message, "alloc-hotpth") {
			sawDirective = true
		}
	}
	if !sawDirective {
		t.Errorf("typoed rule name should surface as a lint-directive finding: %v", diags)
	}
}
