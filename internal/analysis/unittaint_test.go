package analysis

import (
	"strings"
	"testing"
)

// checkModule runs module analyzers over in-memory packages and returns
// the surviving findings.
func checkModule(t *testing.T, pkgs map[string]map[string]string, as ...ModuleAnalyzer) []Diagnostic {
	t.Helper()
	diags, err := CheckSourceModule(pkgs, as)
	if err != nil {
		t.Fatalf("CheckSourceModule: %v", err)
	}
	return diags
}

// onePkg wraps a single file as a one-package module.
func onePkg(path, src string) map[string]map[string]string {
	return map[string]map[string]string{path: {"src.go": src}}
}

func TestUnitTaintSeedsAndArithmetic(t *testing.T) {
	a := NewUnitTaint()
	cases := []struct {
		name string
		src  string
		want int
		msg  string
	}{
		{"mixed-add", `package p
func f(demandKbps uint32, rateBps float64) float64 {
	return float64(demandKbps) + rateBps
}`, 1, "mixed-unit arithmetic"},
		{"mixed-compare", `package p
func f(sizeBytes int64, sentBits int64) bool { return sizeBytes < sentBits }`, 1, "mixed-unit arithmetic"},
		{"same-unit-ok", `package p
func f(aBytes, bBytes int64) int64 { return aBytes + bBytes }`, 0, ""},
		{"scaling-resets", `package p
func f(rateKbps float64, rateBps float64) float64 {
	return rateKbps*1e3 + rateBps // explicit conversion: legal
}`, 0, ""},
		{"literal-ok", `package p
func f(sizeBytes int64) bool { return sizeBytes > 0 }`, 0, ""},
		{"plusassign-mixed", `package p
func f(totalBytes int64, nBits int64) int64 { totalBytes += nBits; return totalBytes }`, 1, "mixed-unit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := checkModule(t, onePkg("m/p", tc.src), a)
			if len(diags) != tc.want {
				t.Fatalf("got %d findings, want %d: %v", len(diags), tc.want, diags)
			}
			if tc.want > 0 && !strings.Contains(diags[0].Message, tc.msg) {
				t.Errorf("message %q does not mention %q", diags[0].Message, tc.msg)
			}
		})
	}
}

func TestUnitTaintPropagation(t *testing.T) {
	a := NewUnitTaint()
	t.Run("through-local", func(t *testing.T) {
		src := `package p
func f(demandKbps uint32, rateBps float64) float64 {
	d := demandKbps // d inherits Kbps
	return float64(d) + rateBps
}`
		diags := checkModule(t, onePkg("m/p", src), a)
		if len(diags) != 1 {
			t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
		}
	})
	t.Run("through-return", func(t *testing.T) {
		src := `package p
func demand(dKbps uint32) uint32 { return dKbps }
func f(dKbps uint32, rateBps float64) float64 {
	return float64(demand(dKbps)) + rateBps
}`
		diags := checkModule(t, onePkg("m/p", src), a)
		if len(diags) != 1 {
			t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
		}
	})
	t.Run("unit-losing-call", func(t *testing.T) {
		src := `package p
func fill(capacityBits float64) {}
func f(linkKbps float64) { fill(linkKbps) }`
		diags := checkModule(t, onePkg("m/p", src), a)
		if len(diags) != 1 {
			t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
		}
		if !strings.Contains(diags[0].Message, "unit-losing") {
			t.Errorf("message %q does not mention unit-losing", diags[0].Message)
		}
	})
	t.Run("field-store", func(t *testing.T) {
		src := `package p
type Info struct{ DemandKbps uint32 }
func f(rateBps uint32) Info { return Info{DemandKbps: rateBps} }`
		diags := checkModule(t, onePkg("m/p", src), a)
		if len(diags) != 1 {
			t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
		}
	})
	t.Run("mixed-inflow-accumulator-tolerated", func(t *testing.T) {
		// A deliberately unit-agnostic accumulator fed two units resolves
		// to UnitMixed and is exempt from checks.
		src := `package p
func f(aBytes, bBits int64) int64 {
	var acc int64
	acc = aBytes
	acc = bBits
	return acc
}`
		diags := checkModule(t, onePkg("m/p", src), a)
		if len(diags) != 0 {
			t.Fatalf("got %d findings, want 0: %v", len(diags), diags)
		}
	})
}

func TestUnitTaintCrossPackage(t *testing.T) {
	a := NewUnitTaint()
	t.Run("field-read-crosses-packages", func(t *testing.T) {
		pkgs := map[string]map[string]string{
			"m/wire": {"wire.go": `package wire
type Broadcast struct{ DemandKbps uint32 }`},
			"m/alloc": {"alloc.go": `package alloc
import "m/wire"
func Fill(b *wire.Broadcast, capBits float64) float64 {
	return float64(b.DemandKbps) + capBits // Kbps + bits: 1000x error
}`},
		}
		diags := checkModule(t, pkgs, a)
		if len(diags) != 1 {
			t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
		}
		if !strings.Contains(diags[0].Message, "Kbps") || !strings.Contains(diags[0].Message, "bits") {
			t.Errorf("message %q should name both units", diags[0].Message)
		}
	})
	t.Run("propagated-across-call-boundary", func(t *testing.T) {
		pkgs := map[string]map[string]string{
			"m/core": {"core.go": `package core
func KbpsOf(x uint32) uint32 { return x }
func DemandKbps(raw uint32) uint32 { return KbpsOf(raw) }`},
			"m/user": {"user.go": `package user
import "m/core"
func F(rateBps uint32) uint32 {
	d := core.DemandKbps(7)
	return d + rateBps
}`},
		}
		diags := checkModule(t, pkgs, a)
		if len(diags) != 1 {
			t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
		}
	})
	t.Run("suppression", func(t *testing.T) {
		pkgs := onePkg("m/p", `package p
func f(aBytes, bBits int64) int64 {
	//lint:ignore unit-taint deliberate: byte-count compared against bit budget after scaling elsewhere
	return aBytes + bBits
}`)
		diags := checkModule(t, pkgs, a)
		if len(diags) != 0 {
			t.Fatalf("got %d findings, want 0: %v", len(diags), diags)
		}
	})
}

// TestUnitTaintEmuFCTRegression pins the emulator FCT bug class: a
// wall-clock nanosecond timestamp flowing into an emulator-clock
// nanosecond field would be invisible to unit-taint (both are ns), but
// the Kbps-vs-bits crossing the same PR fixed in spirit must stay
// detected through the real conversion helpers' shapes.
func TestUnitTaintConversionTable(t *testing.T) {
	a := NewUnitTaint()
	pkgs := map[string]map[string]string{
		"r2c2/internal/core": {"core.go": `package core
func KbpsDemand(bits float64) uint32 {
	k := bits / 1e3
	return uint32(k)
}`},
		"m/user": {"user.go": `package user
import "r2c2/internal/core"
func F(allocBits float64, budgetBits float64) float64 {
	d := core.KbpsDemand(allocBits) // result is Kbps by the conversion table
	return float64(d) + budgetBits
}`},
	}
	diags := checkModule(t, pkgs, a)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	// And feeding a Kbps value back INTO the bits/s parameter is flagged.
	pkgs["m/user"]["user.go"] = `package user
import "r2c2/internal/core"
func F(dKbps float64) uint32 {
	return core.KbpsDemand(dKbps)
}`
	diags = checkModule(t, pkgs, a)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "unit-losing") {
		t.Errorf("message %q should be a unit-losing conversion", diags[0].Message)
	}
}
