package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"r2c2/internal/emu"
	"r2c2/internal/faults"
	"r2c2/internal/routing"
	"r2c2/internal/sim"
	"r2c2/internal/simtime"
	"r2c2/internal/stats"
	"r2c2/internal/topology"
	"r2c2/internal/trafficgen"
)

// FaultSweepConfig drives the fault-injection cross-validation: the same
// seeded workload and the same fault schedule replayed on the packet-level
// simulator and the emulated rack (§3.2 failure handling, validated the
// way §5.1 validates the fault-free path).
type FaultSweepConfig struct {
	K            int     // 2D torus radix
	LinkMbps     float64 // virtual link bandwidth
	Flows        int
	FlowBytes    int64
	MeanInterval time.Duration
	Seed         int64
	Schedule     faults.Schedule
}

// DefaultFaultSweep is a laptop-friendly configuration; the schedule is
// left for the caller (see ScheduleArg).
func DefaultFaultSweep() FaultSweepConfig {
	return FaultSweepConfig{K: 4, LinkMbps: 200, Flows: 60, FlowBytes: 512 << 10,
		MeanInterval: 5 * time.Millisecond, Seed: 1}
}

// FaultRunStats summarises one backend's run of the schedule.
type FaultRunStats struct {
	Completed  int          // every byte delivered
	Abandoned  int          // an endpoint crashed
	Incomplete int          // bytes lost to a fault window (no retransmission)
	FCT        stats.Sample // seconds, completed flows only
	Reroutes   uint64       // fabric rebuilds (must equal Schedule.Waves())
	Drops      uint64
}

// FaultSweepResult pairs the two backends over one schedule.
type FaultSweepResult struct {
	Sim, Emu FaultRunStats
	Total    int
	Waves    int
}

// graphAndArrivals expands the config into the shared topology and the
// seeded workload both backends replay.
func (cfg FaultSweepConfig) graphAndArrivals() (*topology.Graph, []trafficgen.Arrival, error) {
	g, err := topology.NewTorus(cfg.K, 2)
	if err != nil {
		return nil, nil, err
	}
	if err := cfg.Schedule.Validate(g); err != nil {
		return nil, nil, err
	}
	arrivals := trafficgen.FixedSize(trafficgen.PoissonConfig{
		Nodes:        g.Nodes(),
		MeanInterval: simtime.Time(cfg.MeanInterval / time.Nanosecond * 1000),
		Count:        cfg.Flows,
		Seed:         cfg.Seed,
	}, cfg.FlowBytes)
	return g, arrivals, nil
}

// classify buckets a finished workload entry. Both backends use the same
// rule: abandoned means an endpoint was scheduled to crash — whether the
// flow happened to finish before the crash is a timing question the
// tolerance check absorbs, not a classification one.
func classify(st *FaultRunStats, dead map[topology.NodeID]bool, src, dst topology.NodeID, done bool, fctSeconds float64) {
	switch {
	case done:
		st.Completed++
		st.FCT.Add(fctSeconds)
	case dead[src] || dead[dst]:
		st.Abandoned++
	default:
		st.Incomplete++
	}
}

// FaultSweepSim runs the schedule on the packet-level simulator. It is
// fully deterministic: the same config yields byte-identical results.
// Reliability is off to match the emulator, which has no retransmission —
// flows whose packets die in a fault window stay incomplete on both.
func FaultSweepSim(cfg FaultSweepConfig) (*FaultRunStats, error) {
	g, arrivals, err := cfg.graphAndArrivals()
	if err != nil {
		return nil, err
	}
	horizon := simtime.Time(cfg.Schedule.Horizon() / time.Nanosecond * 1000)
	out := sim.Run(sim.RunConfig{
		Graph: g,
		Net: sim.NetConfig{
			LinkGbps:  cfg.LinkMbps / 1000,
			PropDelay: 10 * simtime.Microsecond,
			LossSeed:  cfg.Seed,
		},
		Transport: sim.TransportR2C2,
		R2C2: sim.R2C2Config{
			Headroom:  0.05,
			Recompute: 2 * simtime.Millisecond,
			Protocol:  routing.RPS,
			Seed:      cfg.Seed,
		},
		Arrivals: arrivals,
		Faults:   cfg.Schedule,
		MaxTime:  arrivals[len(arrivals)-1].At + horizon + 10*simtime.Second,
	})
	st := &FaultRunStats{Reroutes: out.FailureReroutes, Drops: out.Drops}
	dead := cfg.Schedule.DeadNodes()
	for _, rec := range out.Flows {
		var fct float64
		if rec.Done {
			fct = rec.FCT().Seconds()
		}
		classify(st, dead, rec.Src, rec.Dst, rec.Done, fct)
	}
	return st, nil
}

// FaultSweepEmu replays the identical workload and schedule on the
// emulated rack in wall-clock time.
func FaultSweepEmu(cfg FaultSweepConfig) (*FaultRunStats, error) {
	g, arrivals, err := cfg.graphAndArrivals()
	if err != nil {
		return nil, err
	}
	rack, err := emu.New(emu.Config{
		Graph:     g,
		LinkMbps:  cfg.LinkMbps,
		Headroom:  0.05,
		Recompute: 2 * time.Millisecond,
		Protocol:  routing.RPS,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	rack.Start()
	defer rack.Stop()
	rack.ApplyFaults(cfg.Schedule)

	start := time.Now()
	handles := make([]*emu.Flow, 0, len(arrivals))
	for _, a := range arrivals {
		at := start.Add(time.Duration(a.At / 1000)) // ps -> ns
		if d := time.Until(at); d > 0 {
			time.Sleep(d)
		}
		f, err := rack.StartFlow(a.Src, a.Dst, a.SizeBytes, a.Weight, a.Priority)
		if err != nil {
			return nil, err
		}
		handles = append(handles, f)
	}
	// One absolute deadline for the whole run: flows that lost bytes to a
	// fault window will never finish (no retransmission), and must not
	// serialise long waits. The fixed slack dominates at test scale and
	// covers race-detector slowdowns.
	xfer := time.Duration(float64(cfg.FlowBytes*8*int64(cfg.Flows)) / (cfg.LinkMbps * 1e6) * float64(time.Second))
	deadline := start.Add(cfg.Schedule.Horizon() + 4*xfer + 8*time.Second)
	st := &FaultRunStats{}
	dead := cfg.Schedule.DeadNodes()
	for i, f := range handles {
		wait := time.Until(deadline)
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		err := f.Wait(wait)
		done := err == nil
		var fct float64
		if done {
			fct = f.FCT().Seconds()
		}
		classify(st, dead, arrivals[i].Src, arrivals[i].Dst, done, fct)
	}
	st.Reroutes = rack.Reroutes()
	st.Drops = rack.Drops()
	if errs := rack.FaultErrors(); errs != 0 {
		return nil, fmt.Errorf("faultsweep: %d schedule events failed to inject on the emulator", errs)
	}
	return st, nil
}

// FaultSweep runs both backends and pairs the results.
func FaultSweep(cfg FaultSweepConfig) (*FaultSweepResult, error) {
	simStats, err := FaultSweepSim(cfg)
	if err != nil {
		return nil, err
	}
	emuStats, err := FaultSweepEmu(cfg)
	if err != nil {
		return nil, err
	}
	return &FaultSweepResult{Sim: *simStats, Emu: *emuStats,
		Total: cfg.Flows, Waves: cfg.Schedule.Waves()}, nil
}

// Agree reports whether the two backends match within the documented
// tolerance: completed-flow counts within |sim-emu| <= slack + frac*Total,
// the simulator's reroute count EXACTLY the schedule's wave count (it is
// deterministic), and the emulator's within +-1 of it. The slack absorbs
// wall-clock jitter on the emulator — a flow racing a fault window can
// land on either side of it, and an injection delayed into a neighbouring
// detection window merges two reroute waves into one.
func (r *FaultSweepResult) Agree(frac float64, slack int) bool {
	d := r.Sim.Completed - r.Emu.Completed
	if d < 0 {
		d = -d
	}
	if float64(d) > float64(slack)+frac*float64(r.Total) {
		return false
	}
	if r.Sim.Reroutes != uint64(r.Waves) {
		return false
	}
	dw := int64(r.Emu.Reroutes) - int64(r.Waves)
	if dw < 0 {
		dw = -dw
	}
	return dw <= 1
}

// Table renders the cross-validation comparison.
func (r *FaultSweepResult) Table() *Table {
	t := &Table{Title: "Fault sweep: simulator vs emulator under the same schedule",
		Header: []string{"metric", "simulator", "emulator"}}
	t.AddRow("completed", strconv.Itoa(r.Sim.Completed), strconv.Itoa(r.Emu.Completed))
	t.AddRow("abandoned", strconv.Itoa(r.Sim.Abandoned), strconv.Itoa(r.Emu.Abandoned))
	t.AddRow("incomplete", strconv.Itoa(r.Sim.Incomplete), strconv.Itoa(r.Emu.Incomplete))
	for _, p := range []float64{50, 95} {
		t.AddRow(fmt.Sprintf("fct p%.0f (s)", p),
			g3(r.Sim.FCT.Percentile(p)), g3(r.Emu.FCT.Percentile(p)))
	}
	t.AddRow("reroutes", strconv.FormatUint(r.Sim.Reroutes, 10), strconv.FormatUint(r.Emu.Reroutes, 10))
	t.AddRow("drops", strconv.FormatUint(r.Sim.Drops, 10), strconv.FormatUint(r.Emu.Drops, 10))
	return t
}

// SimTable renders a single-backend run (the -faults mode of r2c2-sim).
func (st *FaultRunStats) SimTable(sched faults.Schedule) *Table {
	t := &Table{Title: "Fault sweep: packet-level simulator",
		Header: []string{"metric", "value"}}
	t.AddRow("completed", strconv.Itoa(st.Completed))
	t.AddRow("abandoned", strconv.Itoa(st.Abandoned))
	t.AddRow("incomplete", strconv.Itoa(st.Incomplete))
	for _, p := range []float64{50, 95} {
		t.AddRow(fmt.Sprintf("fct p%.0f (s)", p), g3(st.FCT.Percentile(p)))
	}
	t.AddRow("reroutes", strconv.FormatUint(st.Reroutes, 10))
	t.AddRow("expected waves", strconv.Itoa(sched.Waves()))
	t.AddRow("drops", strconv.FormatUint(st.Drops, 10))
	return t
}

// ScheduleArg resolves a -faults flag value: "gen:<seed>" generates a
// seeded random schedule sized to `horizon` (the workload's arrival
// window), anything else goes through faults.Parse (DSL or JSON). The
// schedule is validated against g either way.
func ScheduleArg(g *topology.Graph, arg string, horizon time.Duration) (faults.Schedule, error) {
	if rest, ok := strings.CutPrefix(arg, "gen:"); ok {
		seed, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return faults.Schedule{}, fmt.Errorf("faultsweep: bad gen seed %q: %v", rest, err)
		}
		// Floor the detection delay well above emulator timer jitter
		// (goroutine scheduling shifts injections by a millisecond or two;
		// a detection window of the same order would randomly merge or
		// split reroute waves between reruns).
		detect := horizon / 50
		if detect < 6*time.Millisecond {
			detect = 6 * time.Millisecond
		}
		return faults.Generate(g, faults.GenConfig{Seed: seed, Horizon: horizon, Detect: detect})
	}
	sched, err := faults.Parse(arg)
	if err != nil {
		return faults.Schedule{}, err
	}
	if err := sched.Validate(g); err != nil {
		return faults.Schedule{}, err
	}
	return sched, nil
}
