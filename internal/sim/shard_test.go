package sim

import (
	"bytes"
	"testing"
	"time"

	"r2c2/internal/faults"
	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/trafficgen"
)

// multiRack builds `racks` (3,2)-torus racks bridged in a ring — the
// smallest fabric with a non-trivial rack partition and multiple boundary
// links per shard pair.
func multiRack(t testing.TB, racks int) *topology.Graph {
	t.Helper()
	subs := make([]*topology.Graph, racks)
	for i := range subs {
		g, err := topology.NewTorus(3, 2)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = g
	}
	var bridges []topology.Bridge
	for i := 0; i < racks; i++ {
		j := (i + 1) % racks
		bridges = append(bridges,
			topology.Bridge{RackA: i, RackB: j, NodeA: 0, NodeB: 4},
			topology.Bridge{RackA: i, RackB: j, NodeA: 5, NodeB: 1},
		)
	}
	g, err := topology.ConnectRacks(subs, bridges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// shardWorkload is the reference multi-rack configuration the sharded
// engine is validated against: randomised routing (per-node RNG streams),
// reliable transfer (acks crossing boundaries in both directions), and a
// mix of intra- and inter-rack flows.
func shardWorkload(t testing.TB, shards int) RunConfig {
	g := multiRack(t, 4)
	return RunConfig{
		Graph:     g,
		Net:       NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond},
		Transport: TransportR2C2,
		R2C2: R2C2Config{
			Headroom: 0.05, Protocol: routing.RPS,
			Recompute: 100 * simtime.Microsecond,
			Reliable:  true, RTO: 300 * simtime.Microsecond,
			Seed: 11,
		},
		Arrivals: trafficgen.FixedSize(trafficgen.PoissonConfig{
			Nodes:        g.Nodes(),
			MeanInterval: 200 * simtime.Microsecond,
			Count:        60,
			Seed:         7,
		}, 256<<10),
		MaxTime: 100 * simtime.Millisecond,
		Shards:  shards,
	}
}

// TestShardedByteIdentical is the sharded engine's differential oracle: the
// serial engine (Shards ≤ 1) and the sharded engine at several worker
// counts must produce byte-identical Results dumps. The logical partition
// is fixed (per rack), so the worker count must be invisible.
func TestShardedByteIdentical(t *testing.T) {
	serial := Run(shardWorkload(t, 1))
	if serial.Completed == 0 {
		t.Fatal("workload completed no flows; the comparison would be vacuous")
	}
	want := dumpResults(serial)
	for _, workers := range []int{2, 4, 8} {
		res := Run(shardWorkload(t, workers))
		if len(res.ShardStats) != 4 {
			t.Fatalf("workers=%d: ShardStats has %d entries, want 4 (one per rack)", workers, len(res.ShardStats))
		}
		handoffs := uint64(0)
		for _, st := range res.ShardStats {
			handoffs += st.Handoffs
		}
		if handoffs == 0 {
			t.Fatalf("workers=%d: no boundary handoffs; the workload never crossed a shard", workers)
		}
		res.ShardStats = nil // wall-clock fields are legitimately nondeterministic
		got := dumpResults(res)
		if !bytes.Equal(want, got) {
			t.Fatalf("workers=%d diverged from serial (first differing line %d)\n--- serial ---\n%s\n--- sharded ---\n%s",
				workers, firstDiffLine(want, got), want, got)
		}
	}
}

func firstDiffLine(a, b []byte) int {
	line := 1
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			break
		}
		if a[i] == '\n' {
			line++
		}
	}
	return line
}

// TestShardedFaultsByteIdentical drives a fault schedule that crosses shard
// boundaries — a bridge-cable failure plus repair, a node crash next to a
// bridge, and a lossy boundary cable — and requires the sharded engine to
// match the serial one exactly: replicated fault injection, the degraded-
// fabric reroute and §3.2 re-announce broadcasts must all stay in lockstep
// across shards.
func TestShardedFaultsByteIdentical(t *testing.T) {
	sched := faults.Schedule{Events: []faults.Event{
		// Rack 0's node 0 bridges to rack 1's node 4 (vertex 13): kill the
		// boundary cable itself, then repair it.
		{At: 2 * time.Millisecond, Kind: faults.LinkDown, A: 0, B: 13, Detect: 200 * time.Microsecond},
		{At: 6 * time.Millisecond, Kind: faults.LinkRepair, A: 0, B: 13, Detect: 200 * time.Microsecond},
		// Crash a bridge endpoint in rack 2 (vertex 23 = rack 2, node 5).
		{At: 4 * time.Millisecond, Kind: faults.NodeDown, Node: 23, Detect: 300 * time.Microsecond},
		// Lossy boundary cable: rack 1 node 5 (vertex 14) to rack 2 node 1
		// (vertex 19) — drops roll per-link RNG streams on the owner shard.
		{At: 1 * time.Millisecond, Kind: faults.LinkDrop, A: 14, B: 19, DropProb: 0.2},
	}}
	mk := func(shards int) RunConfig {
		cfg := shardWorkload(t, shards)
		if err := sched.Validate(cfg.Graph); err != nil {
			t.Fatal(err)
		}
		cfg.Faults = sched
		return cfg
	}
	serial := Run(mk(1))
	if serial.FailureReroutes == 0 {
		t.Fatal("fault schedule never triggered a reroute")
	}
	want := dumpResults(serial)
	for _, workers := range []int{2, 8} {
		res := Run(mk(workers))
		res.ShardStats = nil
		got := dumpResults(res)
		if !bytes.Equal(want, got) {
			t.Fatalf("workers=%d diverged from serial under faults (first differing line %d)\n--- serial ---\n%s\n--- sharded ---\n%s",
				workers, firstDiffLine(want, got), want, got)
		}
	}
}

// TestShardedRejectsUnshardableConfigs pins the scope gate: the sharded
// engine refuses transports and schedulers whose semantics cannot be
// partitioned, and fabrics without a rack structure.
func TestShardedRejectsUnshardableConfigs(t *testing.T) {
	expectPanic := func(name string, cfg RunConfig) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Run did not panic", name)
			}
		}()
		Run(cfg)
	}

	cfg := shardWorkload(t, 2)
	cfg.Transport = TransportTCP
	expectPanic("tcp", cfg)

	cfg = shardWorkload(t, 2)
	cfg.LegacyHeapScheduler = true
	expectPanic("legacy-heap", cfg)

	single := shardWorkload(t, 2)
	g, err := topology.NewTorus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	single.Graph = g
	single.Arrivals = trafficgen.FixedSize(trafficgen.PoissonConfig{
		Nodes: g.Nodes(), MeanInterval: 200 * simtime.Microsecond, Count: 10, Seed: 7,
	}, 64<<10)
	expectPanic("single-rack", single)
}
