package emu

import (
	"bytes"
	"testing"
	"time"

	"r2c2/internal/topology"
)

func TestMbufPoolGetPutRecycles(t *testing.T) {
	var p mbufPool
	a := p.get()
	if a.ref.Load() != 1 || a.n != 0 || a.next != nil {
		t.Fatalf("fresh segment: ref=%d n=%d next=%v", a.ref.Load(), a.n, a.next)
	}
	p.put(a)
	b := p.get()
	if b != a {
		t.Fatal("pool did not recycle the freed segment")
	}
	st := p.stats()
	if st.Allocs != 1 || st.Live != 1 {
		t.Fatalf("stats after recycle: %+v", st)
	}
	p.put(b)
}

func TestMbufChainAppend(t *testing.T) {
	// A payload larger than one segment must spill into chained
	// continuation segments and read back byte-identical.
	var p mbufPool
	src := make([]byte, 3*mbufSegSize+123)
	for i := range src {
		src[i] = byte(i * 31)
	}
	m := p.get()
	// Append in awkward unaligned pieces to exercise the boundary logic.
	for off := 0; off < len(src); {
		end := off + 700
		if end > len(src) {
			end = len(src)
		}
		p.appendChain(m, src[off:end])
		off = end
	}
	got := chainBytes(m, nil)
	if !bytes.Equal(got, src) {
		t.Fatalf("chain read-back differs: %d bytes vs %d", len(got), len(src))
	}
	segs := 0
	for s := m; s != nil; s = s.next {
		segs++
	}
	if want := 4; segs != want {
		t.Fatalf("chain has %d segments, want %d", segs, want)
	}
	if st := p.stats(); st.Live != int64(segs) {
		t.Fatalf("live = %d, want %d", st.Live, segs)
	}
	// Releasing the head returns the whole chain.
	p.put(m)
	if st := p.stats(); st.Live != 0 || st.Idle != segs {
		t.Fatalf("after chain put: %+v", st)
	}
}

func TestMbufPoolIdleCapReleases(t *testing.T) {
	// Freeing far more segments than the idle cap must hand the excess to
	// the GC instead of retaining burst memory forever.
	var p mbufPool
	var segs []*mbuf
	for i := 0; i < mbufPoolIdleCap+100; i++ {
		segs = append(segs, p.get())
	}
	for _, s := range segs {
		p.put(s)
	}
	st := p.stats()
	if st.Idle != mbufPoolIdleCap {
		t.Fatalf("idle = %d, want cap %d", st.Idle, mbufPoolIdleCap)
	}
	if st.Released != 100 {
		t.Fatalf("released = %d, want 100", st.Released)
	}
	if st.Live != 0 {
		t.Fatalf("live = %d, want 0", st.Live)
	}
}

func TestEmuPktReleaseRefcount(t *testing.T) {
	r := &Rack{}
	seg := r.pool.get()
	pkt := emuPkt{buf: seg.data[:16], seg: seg}
	// Simulate a 3-way broadcast fan-out: origin ref + 3 retained.
	for i := 0; i < 3; i++ {
		pkt.retain()
	}
	for i := 0; i < 3; i++ {
		r.release(pkt)
		if st := r.pool.stats(); st.Live != 1 {
			t.Fatalf("segment returned early at release %d: %+v", i, st)
		}
	}
	r.release(pkt) // origin's reference: last one frees
	if st := r.pool.stats(); st.Live != 0 || st.Idle != 1 {
		t.Fatalf("after final release: %+v", st)
	}
	// Unpooled packets are inert.
	r.release(emuPkt{buf: []byte{1, 2, 3}})
}

// End-to-end pool hygiene: after a rack runs real traffic (including a
// broadcast-heavy start/finish cycle per flow) and goes quiet, every
// segment must have found its way back to the pool — no refcount leaks on
// any delivery, forwarding, or drop path.
func TestRackReleasesAllSegmentsWhenQuiet(t *testing.T) {
	g, err := topology.NewTorus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{Graph: g, LinkMbps: 400, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	var flows []*Flow
	for i := 0; i < 6; i++ {
		f, err := r.StartFlow(topology.NodeID(i), topology.NodeID((i+7)%g.Nodes()), 256<<10, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
	}
	for _, f := range flows {
		if err := f.Wait(30 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Finish broadcasts may still be in flight after the last data byte;
	// give the fabric a moment to drain, then require a fully quiet pool.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := r.MbufStats()
		if st.Live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("segments leaked: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	r.Stop()
	if st := r.MbufStats(); st.PeakLive == 0 {
		t.Fatalf("pool was never exercised: %+v", st)
	}
}
