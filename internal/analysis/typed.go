package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// TypedPass is a Pass with full go/types information: the module-wide
// (two-phase) analyzers need to see a value's declared type and the
// objects an identifier resolves to, not just its spelling.
//
// Typed passes cover the non-test files of a package: the dataflow
// invariants (unit taint, lock order, channel blocking) live in
// production code, and excluding _test.go keeps every package a single
// type-checkable unit.
type TypedPass struct {
	Pass
	Pkg  *types.Package
	Info *types.Info
}

// Module is the fully loaded, type-checked module: one TypedPass per
// package, in dependency order (imports precede importers).
type Module struct {
	Fset   *token.FileSet
	Passes []*TypedPass
}

// moduleImporter resolves module-internal import paths from the packages
// already checked and everything else (the standard library) through the
// from-source importer, so the loader needs no compiled export data.
type moduleImporter struct {
	pkgs map[string]*types.Package
	std  types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// LoadModule parses and type-checks every non-test package under root.
// root must contain a go.mod; testdata, vendor and hidden directories are
// skipped, and build-constrained files are selected as an ordinary
// release build would (no "debug" tag).
func LoadModule(root string) (*Module, error) {
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs := map[string][]string{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			dirs[dir] = append(dirs[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type parsedPkg struct {
		path    string
		files   []*ast.File
		imports map[string]bool // module-internal imports only
	}
	byPath := map[string]*parsedPkg{}
	for dir, files := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := module
		if rel != "." {
			pkgPath = module + "/" + filepath.ToSlash(rel)
		}
		sort.Strings(files)
		pp := &parsedPkg{path: pkgPath, imports: map[string]bool{}}
		for _, file := range files {
			f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			if !buildIncluded(f) {
				continue
			}
			pp.files = append(pp.files, f)
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == module || strings.HasPrefix(p, module+"/") {
					pp.imports[p] = true
				}
			}
		}
		if len(pp.files) > 0 {
			byPath[pkgPath] = pp
		}
	}

	// Topological order: imports first, then importers; ties broken by
	// path so the load order (and any error) is deterministic.
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	order := make([]string, 0, len(paths))
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", p)
		case 2:
			return nil
		}
		state[p] = 1
		deps := make([]string, 0, len(byPath[p].imports))
		for d := range byPath[p].imports {
			deps = append(deps, d)
		}
		sort.Strings(deps)
		for _, d := range deps {
			if byPath[d] == nil {
				continue // import of a module path with no source here
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p] = 2
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	imp := &moduleImporter{
		pkgs: map[string]*types.Package{},
		std:  importer.ForCompiler(fset, "source", nil),
	}
	conf := types.Config{Importer: imp}
	mod := &Module{Fset: fset}
	for _, p := range order {
		pp := byPath[p]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		pkg, err := conf.Check(p, fset, pp.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", p, err)
		}
		imp.pkgs[p] = pkg
		mod.Passes = append(mod.Passes, &TypedPass{
			Pass: Pass{Fset: fset, Path: p, Files: pp.files},
			Pkg:  pkg,
			Info: info,
		})
	}
	return mod, nil
}

// buildIncluded reports whether a release build (GOOS/GOARCH tags only, no
// custom tags such as "debug") selects the file. The module's debug-only
// invariant files would otherwise collide with their release twins.
func buildIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" ||
					tag == "go1" || strings.HasPrefix(tag, "go1.")
			})
		}
	}
	return true
}
