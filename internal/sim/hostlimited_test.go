package sim

import (
	"math"
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
)

// §3.3.2, host-limited flows: a demand-capped flow must not exceed its
// demand, and the bandwidth it cannot use must flow to its competitor.
func TestR2C2HostLimitedFlow(t *testing.T) {
	g := torus(t, 4, 2)
	eng, _, r := newR2C2Net(t, g, R2C2Config{
		Headroom: 0.05, Protocol: routing.DOR, Recompute: 50 * simtime.Microsecond})
	// Both flows share the single DOR path 0->1. Without the demand cap
	// each would get ~4.75 Gbps. The capped flow asks for 1 Gbps.
	capped := r.StartHostLimitedFlow(0, 1, 1<<20, 1, 0, 1e9)
	full := r.StartFlow(0, 1, 8<<20, 1, 0)
	eng.Run(100 * simtime.Millisecond)

	rc, rf := r.Ledger()[capped], r.Ledger()[full]
	if !rc.Done || !rf.Done {
		t.Fatalf("incomplete: capped=%v full=%v", rc.Done, rf.Done)
	}
	if tc := rc.Throughput(); tc > 1.1e9 {
		t.Fatalf("capped flow ran at %.3g, above its 1 Gbps demand", tc)
	}
	// The full flow gets the rest of the 9.5 Gbps effective link (~8.5G)
	// while sharing, so its average must clearly beat the fair half.
	if tf := rf.Throughput(); tf < 6e9 {
		t.Fatalf("network-limited flow got %.3g; unused demand not redistributed", tf)
	}
}

func TestR2C2UpdateDemand(t *testing.T) {
	g := torus(t, 4, 2)
	eng, _, r := newR2C2Net(t, g, R2C2Config{
		Headroom: 0.05, Protocol: routing.DOR, Recompute: 50 * simtime.Microsecond})
	id := r.StartFlow(0, 1, 64<<20, 1, 0)
	eng.Run(2 * simtime.Millisecond)
	r.UpdateDemand(id, 2e9)
	eng.Run(2 * simtime.Millisecond)
	// All views must see the new demand.
	for n := 0; n < g.Nodes(); n++ {
		info, ok := r.View(0).Get(id)
		if !ok {
			t.Fatal("flow vanished")
		}
		if math.Abs(float64(info.DemandKbps)-2e6) > 1e3 {
			t.Fatalf("node %d sees demand %d Kbps, want ~2e6", n, info.DemandKbps)
		}
	}
	// Clearing the demand restores unlimited.
	r.UpdateDemand(id, 0)
	eng.Run(simtime.Millisecond)
	info, _ := r.View(0).Get(id)
	if info.DemandKbps != 0xFFFFFFFF {
		t.Fatalf("demand not cleared: %d", info.DemandKbps)
	}
	// Updating a finished/unknown flow is a no-op.
	r.UpdateDemand(0xDEADBEEF, 1e9)
}
