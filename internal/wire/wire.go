// Package wire implements the R2C2 packet formats of Figure 6 in the
// paper: variable-size source-routed data packets, fixed 16-byte broadcast
// packets announcing flow events, and the routing-update message that
// re-assigns routing protocols to long flows (§3.4, §4.2).
//
// Data packets carry their full network path in the header: 3 bits per hop
// selecting the outgoing port at each node (at most eight links per node),
// in a 128-bit route field — up to 42 hops, "sufficient for current
// rack-scale computers and even non-minimal routing strategies".
// Intermediate nodes simply read route[ridx], increment ridx, and forward.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PacketType distinguishes the R2C2 packet classes in the type field.
type PacketType uint8

// Packet classes.
const (
	TypeData          PacketType = 0x1 // source-routed payload packet
	TypeBroadcast     PacketType = 0x2 // 16-byte flow event broadcast
	TypeRoutingUpdate PacketType = 0x3 // flow -> routing protocol reassignment
	TypeAck           PacketType = 0x4 // transport acknowledgement (reliability; §6)
)

// EventKind is the flow event announced by a broadcast packet.
type EventKind uint8

// Flow events carried in the low nibble of a broadcast packet's type byte.
const (
	EventFlowStart    EventKind = 0x1 // a new flow began (§3.1)
	EventFlowFinish   EventKind = 0x2 // a flow terminated
	EventDemandUpdate EventKind = 0x3 // host-limited flow demand changed (§3.3.2)
	EventRouteChange  EventKind = 0x4 // routing protocol re-assigned (§3.4)
)

func (e EventKind) String() string {
	switch e {
	case EventFlowStart:
		return "flow-start"
	case EventFlowFinish:
		return "flow-finish"
	case EventDemandUpdate:
		return "demand-update"
	case EventRouteChange:
		return "route-change"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(e))
	}
}

// Sizes of the fixed parts of the wire formats.
const (
	BroadcastSize  = 16        // §3.2: "We use 16-byte broadcast packets"
	DataHeaderSize = 36        // fixed data-packet header incl. 128-bit route
	MaxRouteHops   = 42        // 128 bits / 3 bits per hop
	MaxPorts       = 8         // 3-bit port selector => at most 8 links per node
	AckSize        = 16        // fixed acknowledgement size
	MaxPayload     = 64 * 1024 // plen is 16 bits
)

// Errors returned by the decoders.
var (
	ErrShortPacket  = errors.New("wire: packet too short")
	ErrBadChecksum  = errors.New("wire: checksum mismatch")
	ErrBadType      = errors.New("wire: unexpected packet type")
	ErrRouteTooLong = errors.New("wire: route exceeds 42 hops")
	ErrBadPort      = errors.New("wire: port index exceeds 3 bits")
	ErrTooManyPairs = errors.New("wire: routing update exceeds max pairs")
)

// FlowID identifies a flow rack-wide: the 16-bit source address in the high
// half and a per-source 16-bit sequence number in the low half, giving the
// 4-byte flow identifier of §3.4.
type FlowID uint32

// MakeFlowID builds a FlowID from a source address and per-source sequence.
func MakeFlowID(src uint16, seq uint16) FlowID {
	return FlowID(uint32(src)<<16 | uint32(seq))
}

// Src returns the source address encoded in the flow ID.
func (f FlowID) Src() uint16 { return uint16(f >> 16) }

// Seq returns the per-source flow sequence number.
func (f FlowID) Seq() uint16 { return uint16(f) }

func (f FlowID) String() string { return fmt.Sprintf("%d.%d", f.Src(), f.Seq()) }

// Route is a source route: the outgoing port index to use at each hop.
type Route []uint8

// PackRoute encodes a route at 3 bits per hop into the 16-byte route field.
func PackRoute(route Route) ([16]byte, error) {
	var out [16]byte
	if len(route) > MaxRouteHops {
		return out, ErrRouteTooLong
	}
	for i, port := range route {
		if port >= MaxPorts {
			return out, ErrBadPort
		}
		bit := i * 3
		out[bit/8] |= port << (bit % 8) & 0xFF
		if bit%8 > 5 { // the 3-bit field straddles a byte boundary
			out[bit/8+1] |= port >> (8 - bit%8)
		}
	}
	return out, nil
}

// UnpackRoute decodes rlen hops from a packed route field.
func UnpackRoute(packed [16]byte, rlen int) (Route, error) {
	if rlen > MaxRouteHops {
		return nil, ErrRouteTooLong
	}
	route := make(Route, rlen)
	for i := 0; i < rlen; i++ {
		bit := i * 3
		v := packed[bit/8] >> (bit % 8)
		if bit%8 > 5 {
			v |= packed[bit/8+1] << (8 - bit%8)
		}
		route[i] = v & 0x7
	}
	return route, nil
}

// DataHeader is the decoded header of a data packet (Figure 6): route
// length and index, flow identifier, endpoints, sequence number, payload
// length and the packed route.
type DataHeader struct {
	RLen     uint8  // route length in hops
	RIdx     uint8  // index of the next hop in the route
	Flow     FlowID // 4-byte flow identifier
	Src, Dst uint16 // endpoint addresses (up to 65,536 nodes)
	Seq      uint32 // byte/packet sequence number
	PLen     uint16 // payload length
	Route    [16]byte
}

// EncodeData appends the encoded header and payload to buf and returns the
// extended slice. len(payload) must equal h.PLen.
func EncodeData(buf []byte, h *DataHeader, payload []byte) ([]byte, error) {
	if int(h.RLen) > MaxRouteHops {
		return buf, ErrRouteTooLong
	}
	if len(payload) != int(h.PLen) {
		//lint:ignore alloc-hotpath error path: encoder misuse, unreachable for well-formed senders
		return buf, fmt.Errorf("wire: payload length %d != plen %d", len(payload), h.PLen)
	}
	off := len(buf)
	var pad [DataHeaderSize]byte // stack scratch: append(make(...)) would heap-allocate the pad
	buf = append(buf, pad[:]...)
	b := buf[off:]
	b[0] = byte(TypeData)
	b[1] = h.RLen
	b[2] = h.RIdx
	binary.BigEndian.PutUint32(b[3:], uint32(h.Flow))
	binary.BigEndian.PutUint16(b[7:], h.Src)
	binary.BigEndian.PutUint16(b[9:], h.Dst)
	binary.BigEndian.PutUint32(b[11:], h.Seq)
	// b[15:17] checksum, filled below.
	binary.BigEndian.PutUint16(b[17:], h.PLen)
	copy(b[19:35], h.Route[:])
	// b[35] reserved.
	// The checksum excludes ridx (b[2]): intermediate nodes increment it in
	// place while forwarding (§3.5), and zero-copy forwarding must not
	// recompute the checksum at every hop.
	ridx := b[2]
	b[2] = 0
	sum := checksum16(b[:DataHeaderSize])
	b[2] = ridx
	binary.BigEndian.PutUint16(b[15:], sum)
	return append(buf, payload...), nil
}

// DecodeData parses a data packet, verifying type and checksum. The
// returned payload aliases pkt. The destination-side hot path should use
// DecodeDataInto with a reused header instead; DecodeData allocates one
// per call.
func DecodeData(pkt []byte) (*DataHeader, []byte, error) {
	h := &DataHeader{}
	payload, err := DecodeDataInto(pkt, h)
	if err != nil {
		return nil, nil, err
	}
	return h, payload, nil
}

// DecodeDataInto is DecodeData parsing into a caller-supplied header — the
// destination decodes every payload packet, so the per-packet *DataHeader
// of DecodeData would dominate the receive path's allocation budget. The
// returned payload aliases pkt; on error *h is unspecified.
//
//r2c2:hotpath
func DecodeDataInto(pkt []byte, h *DataHeader) ([]byte, error) {
	if len(pkt) < DataHeaderSize {
		return nil, ErrShortPacket
	}
	if PacketType(pkt[0]) != TypeData {
		return nil, ErrBadType
	}
	if int(pkt[1]) > MaxRouteHops {
		// The encoder never emits such a header; reject it so decoding and
		// re-encoding are inverses on accepted packets.
		return nil, ErrRouteTooLong
	}
	stored := binary.BigEndian.Uint16(pkt[15:])
	var zeroed [DataHeaderSize]byte
	copy(zeroed[:], pkt[:DataHeaderSize])
	zeroed[2] = 0 // ridx is hop-mutable and excluded from the checksum
	zeroed[15], zeroed[16] = 0, 0
	if checksum16(zeroed[:]) != stored {
		return nil, ErrBadChecksum
	}
	*h = DataHeader{
		RLen: pkt[1],
		RIdx: pkt[2],
		Flow: FlowID(binary.BigEndian.Uint32(pkt[3:])),
		Src:  binary.BigEndian.Uint16(pkt[7:]),
		Dst:  binary.BigEndian.Uint16(pkt[9:]),
		Seq:  binary.BigEndian.Uint32(pkt[11:]),
		PLen: binary.BigEndian.Uint16(pkt[17:]),
	}
	copy(h.Route[:], pkt[19:35])
	if len(pkt) < DataHeaderSize+int(h.PLen) {
		return nil, ErrShortPacket
	}
	return pkt[DataHeaderSize : DataHeaderSize+int(h.PLen)], nil
}

// Broadcast is the decoded 16-byte broadcast packet of Figure 6. It
// announces a flow event together with the flow's allocation parameters:
// weight, priority, demand in Kbps (up to 4 Tbps), the spanning-tree ID the
// packet is being routed along, and the flow's routing protocol.
type Broadcast struct {
	Event      EventKind
	Src, Dst   uint16
	FlowSeq    uint16 // per-source flow sequence; FlowID = MakeFlowID(Src, FlowSeq)
	Weight     uint8
	Priority   uint8
	DemandKbps uint32
	Tree       uint8 // broadcast spanning-tree identifier
	RP         uint8 // routing protocol identifier
}

// Flow returns the 4-byte flow identifier announced by this broadcast.
func (b *Broadcast) Flow() FlowID { return MakeFlowID(b.Src, b.FlowSeq) }

// EncodeBroadcast encodes a broadcast event into exactly 16 bytes.
func EncodeBroadcast(b *Broadcast) [BroadcastSize]byte {
	var out [BroadcastSize]byte
	out[0] = byte(TypeBroadcast)<<4 | byte(b.Event)&0xF
	binary.BigEndian.PutUint16(out[1:], b.Src)
	binary.BigEndian.PutUint16(out[3:], b.Dst)
	binary.BigEndian.PutUint16(out[5:], b.FlowSeq)
	out[7] = b.Weight
	out[8] = b.Priority
	binary.BigEndian.PutUint32(out[9:], b.DemandKbps)
	out[13] = b.Tree
	out[14] = b.RP
	out[15] = checksum8(out[:15])
	return out
}

// DecodeBroadcast parses and validates a 16-byte broadcast packet.
func DecodeBroadcast(pkt []byte) (*Broadcast, error) {
	if len(pkt) < BroadcastSize {
		return nil, ErrShortPacket
	}
	if PacketType(pkt[0]>>4) != TypeBroadcast {
		return nil, ErrBadType
	}
	if checksum8(pkt[:15]) != pkt[15] {
		return nil, ErrBadChecksum
	}
	//lint:ignore alloc-hotpath one header per received control broadcast; broadcasts are per flow event, not per data packet
	return &Broadcast{
		Event:      EventKind(pkt[0] & 0xF),
		Src:        binary.BigEndian.Uint16(pkt[1:]),
		Dst:        binary.BigEndian.Uint16(pkt[3:]),
		FlowSeq:    binary.BigEndian.Uint16(pkt[5:]),
		Weight:     pkt[7],
		Priority:   pkt[8],
		DemandKbps: binary.BigEndian.Uint32(pkt[9:]),
		Tree:       pkt[13],
		RP:         pkt[14],
	}, nil
}

// RoutingPair is one {flow, routing protocol} assignment in a routing
// update (§3.4: "up to 300 {flow, routing protocol} pairs can be advertised
// using a single 1,500-byte packet" at 4 bytes of flow ID + 1 byte of
// protocol per pair).
type RoutingPair struct {
	Flow FlowID
	RP   uint8
}

// MaxRoutingPairs is the pair capacity of a single 1500-byte MTU update.
const MaxRoutingPairs = (1500 - routingUpdateHeader) / 5

const routingUpdateHeader = 4 // type + count(2) + checksum

// EncodeRoutingUpdate encodes a routing update message.
func EncodeRoutingUpdate(pairs []RoutingPair) ([]byte, error) {
	if len(pairs) > MaxRoutingPairs {
		return nil, ErrTooManyPairs
	}
	out := make([]byte, routingUpdateHeader+5*len(pairs))
	out[0] = byte(TypeRoutingUpdate)
	binary.BigEndian.PutUint16(out[1:], uint16(len(pairs)))
	for i, p := range pairs {
		off := routingUpdateHeader + 5*i
		binary.BigEndian.PutUint32(out[off:], uint32(p.Flow))
		out[off+4] = p.RP
	}
	out[3] = 0
	out[3] = checksum8(out)
	return out, nil
}

// DecodeRoutingUpdate parses a routing update message.
func DecodeRoutingUpdate(pkt []byte) ([]RoutingPair, error) {
	if len(pkt) < routingUpdateHeader {
		return nil, ErrShortPacket
	}
	if PacketType(pkt[0]) != TypeRoutingUpdate {
		return nil, ErrBadType
	}
	count := int(binary.BigEndian.Uint16(pkt[1:]))
	if len(pkt) < routingUpdateHeader+5*count {
		return nil, ErrShortPacket
	}
	stored := pkt[3]
	cp := make([]byte, routingUpdateHeader+5*count)
	copy(cp, pkt)
	cp[3] = 0
	if checksum8(cp) != stored {
		return nil, ErrBadChecksum
	}
	pairs := make([]RoutingPair, count)
	for i := range pairs {
		off := routingUpdateHeader + 5*i
		pairs[i] = RoutingPair{
			Flow: FlowID(binary.BigEndian.Uint32(pkt[off:])),
			RP:   pkt[off+4],
		}
	}
	return pairs, nil
}

// Ack is a fixed-size transport acknowledgement used by the reliability
// layer sketched in §6 ("acknowledgements are used solely for reliability").
type Ack struct {
	Flow     FlowID
	Src, Dst uint16 // of the acknowledged data packet
	CumSeq   uint32 // cumulative sequence acknowledged
}

// EncodeAck encodes an acknowledgement into exactly 16 bytes.
func EncodeAck(a *Ack) [AckSize]byte {
	var out [AckSize]byte
	out[0] = byte(TypeAck)
	binary.BigEndian.PutUint32(out[1:], uint32(a.Flow))
	binary.BigEndian.PutUint16(out[5:], a.Src)
	binary.BigEndian.PutUint16(out[7:], a.Dst)
	binary.BigEndian.PutUint32(out[9:], a.CumSeq)
	out[15] = checksum8(out[:15])
	return out
}

// DecodeAck parses and validates an acknowledgement.
func DecodeAck(pkt []byte) (*Ack, error) {
	if len(pkt) < AckSize {
		return nil, ErrShortPacket
	}
	if PacketType(pkt[0]) != TypeAck {
		return nil, ErrBadType
	}
	if checksum8(pkt[:15]) != pkt[15] {
		return nil, ErrBadChecksum
	}
	return &Ack{
		Flow:   FlowID(binary.BigEndian.Uint32(pkt[1:])),
		Src:    binary.BigEndian.Uint16(pkt[5:]),
		Dst:    binary.BigEndian.Uint16(pkt[7:]),
		CumSeq: binary.BigEndian.Uint32(pkt[9:]),
	}, nil
}

// checksum8 is a one's-complement-style 8-bit checksum: the returned byte
// makes the byte sum of data plus checksum equal 0xFF mod 256.
func checksum8(data []byte) uint8 {
	var sum uint16
	for _, b := range data {
		sum += uint16(b)
		sum = (sum & 0xFF) + (sum >> 8)
	}
	return uint8(^sum)
}

// checksum16 folds 16-bit big-endian words with end-around carry, the
// classic Internet checksum, over the header with the checksum field zero.
func checksum16(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}
