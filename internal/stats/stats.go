// Package stats provides small, allocation-conscious statistical helpers
// used throughout the R2C2 reproduction: exact sample collections with
// percentile queries, CDF extraction, online mean/max tracking, and
// exponentially weighted moving averages.
//
// All collectors are plain values; their zero values are ready to use.
// None of them are safe for concurrent mutation — callers that share a
// collector across goroutines must synchronise externally (the simulator is
// single-threaded per run; the emulator keeps one collector per node).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations and answers percentile, mean and
// CDF queries over the exact set of observations. It keeps every value, so
// it is intended for experiment-sized data (up to a few million points).
type Sample struct {
	values []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddAll records every observation in vs.
func (s *Sample) AddAll(vs []float64) {
	s.values = append(s.values, vs...)
	s.sorted = false
}

// Len reports the number of recorded observations.
func (s *Sample) Len() int { return len(s.values) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. It returns NaN for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[len(s.values)-1]
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Mean returns the arithmetic mean, or NaN for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Min returns the smallest observation, or NaN for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	return s.values[0]
}

// Max returns the largest observation, or NaN for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	return s.values[len(s.values)-1]
}

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 {
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum
}

// Values returns a copy of the observations in ascending order. The caller
// owns the returned slice; mutating it cannot corrupt the Sample's
// internal (sorted) state, which percentile queries depend on.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// CDFPoint is one point of an empirical CDF: a fraction F of observations
// are <= Value.
type CDFPoint struct {
	Value float64
	F     float64
}

// CDF returns the empirical CDF reduced to at most maxPoints points
// (uniformly spaced in rank). maxPoints <= 0 means every distinct rank.
func (s *Sample) CDF(maxPoints int) []CDFPoint {
	n := len(s.values)
	if n == 0 {
		return nil
	}
	s.ensureSorted()
	if maxPoints <= 0 || maxPoints > n {
		maxPoints = n
	}
	pts := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		idx := (i + 1) * n / maxPoints
		if idx > n {
			idx = n
		}
		pts = append(pts, CDFPoint{Value: s.values[idx-1], F: float64(idx) / float64(n)})
	}
	return pts
}

// Summary returns a one-line human-readable digest of the sample.
func (s *Sample) Summary() string {
	if len(s.values) == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		s.Len(), s.Mean(), s.Percentile(50), s.Percentile(95), s.Percentile(99), s.Max())
}

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0,1]: higher alpha weights recent observations more. The zero
// value is unusable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor. It panics if
// alpha is outside (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v out of (0,1]", alpha))
	}
	//lint:ignore alloc-hotpath per-flow constructor (demand estimator), amortised over the flow's lifetime
	return &EWMA{alpha: alpha}
}

// Update feeds one observation and returns the new average. The first
// observation initialises the average directly.
func (e *EWMA) Update(v float64) float64 {
	if !e.init {
		e.value = v
		e.init = true
		return v
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (zero before any update).
func (e *EWMA) Value() float64 { return e.value }

// Counter tracks a running maximum and sum of integer observations, used
// for queue-occupancy accounting where storing every sample would be
// wasteful.
type Counter struct {
	N   int64
	Sum int64
	Max int64
}

// Observe records one observation.
func (c *Counter) Observe(v int64) {
	c.N++
	c.Sum += v
	if v > c.Max {
		c.Max = v
	}
}

// Mean returns the average observation, or 0 when empty.
func (c *Counter) Mean() float64 {
	if c.N == 0 {
		return 0
	}
	return float64(c.Sum) / float64(c.N)
}
