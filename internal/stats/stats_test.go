package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Len() != 0 {
		t.Fatal("empty sample has nonzero Len")
	}
	for _, v := range []float64{s.Percentile(50), s.Mean(), s.Min(), s.Max()} {
		if !math.IsNaN(v) {
			t.Errorf("empty-sample statistic = %v, want NaN", v)
		}
	}
	if s.CDF(10) != nil {
		t.Error("empty-sample CDF should be nil")
	}
	if s.Summary() != "n=0" {
		t.Errorf("Summary = %q", s.Summary())
	}
}

func TestSampleBasic(t *testing.T) {
	var s Sample
	s.AddAll([]float64{5, 1, 3, 2, 4})
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := s.Median(); got != 3 {
		t.Errorf("Median = %v, want 3", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := s.Max(); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if got := s.Sum(); got != 15 {
		t.Errorf("Sum = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := s.Percentile(25); got != 2 {
		t.Errorf("P25 = %v, want 2", got)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sample
	s.AddAll([]float64{0, 10})
	if got := s.Percentile(50); got != 5 {
		t.Errorf("P50 of {0,10} = %v, want 5", got)
	}
	if got := s.Percentile(75); got != 7.5 {
		t.Errorf("P75 of {0,10} = %v, want 7.5", got)
	}
}

// Percentile must be monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, pa, pb float64) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			s.Add(v)
		}
		pa = math.Abs(math.Mod(pa, 100))
		pb = math.Abs(math.Mod(pb, 100))
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := s.Percentile(pa), s.Percentile(pb)
		return va <= vb && va >= s.Min() && vb <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	pts := s.CDF(10)
	if len(pts) != 10 {
		t.Fatalf("CDF points = %d, want 10", len(pts))
	}
	if pts[len(pts)-1].F != 1.0 {
		t.Errorf("last CDF F = %v, want 1", pts[len(pts)-1].F)
	}
	if pts[len(pts)-1].Value != 100 {
		t.Errorf("last CDF value = %v, want 100", pts[len(pts)-1].Value)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].F <= pts[i-1].F {
			t.Fatalf("CDF not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
	// Full-resolution CDF.
	all := s.CDF(0)
	if len(all) != 100 {
		t.Fatalf("full CDF has %d points", len(all))
	}
}

func TestValuesSorted(t *testing.T) {
	var s Sample
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		s.Add(rng.NormFloat64())
	}
	vs := s.Values()
	if !sort.Float64sAreSorted(vs) {
		t.Fatal("Values() not sorted")
	}
	// Adding after sorting must re-sort on next query.
	s.Add(-1e9)
	if got := s.Min(); got != -1e9 {
		t.Fatalf("Min after late Add = %v", got)
	}
}

// Values hands out a copy: callers scribbling on the result (sorting it
// differently, normalising in place) must not corrupt the Sample's
// internal sorted order that percentile queries rely on.
func TestValuesReturnsCopy(t *testing.T) {
	var s Sample
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	vs := s.Values()
	for i := range vs {
		vs[i] = -7
	}
	if got := s.Max(); got != 3 {
		t.Fatalf("mutating Values() result corrupted the sample: max = %v, want 3", got)
	}
	if again := s.Values(); again[0] != 1 || again[2] != 3 {
		t.Fatalf("second Values() call sees the mutation: %v", again)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if got := e.Update(10); got != 10 {
		t.Errorf("first update = %v, want 10", got)
	}
	if got := e.Update(0); got != 5 {
		t.Errorf("second update = %v, want 5", got)
	}
	if got := e.Value(); got != 5 {
		t.Errorf("Value = %v", got)
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.3)
	for i := 0; i < 200; i++ {
		e.Update(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Errorf("EWMA did not converge: %v", e.Value())
	}
}

func TestEWMAPanics(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) should panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Mean() != 0 {
		t.Error("empty counter mean nonzero")
	}
	c.Observe(3)
	c.Observe(9)
	c.Observe(6)
	if c.N != 3 || c.Sum != 18 || c.Max != 9 {
		t.Fatalf("counter state = %+v", c)
	}
	if c.Mean() != 6 {
		t.Errorf("Mean = %v", c.Mean())
	}
}
