package fluid

import (
	"math"
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/stats"
	"r2c2/internal/topology"
	"r2c2/internal/trafficgen"
)

func table(t testing.TB, k, dims int) *routing.Table {
	t.Helper()
	g, err := topology.NewTorus(k, dims)
	if err != nil {
		t.Fatal(err)
	}
	return routing.NewTable(g)
}

func workload(g *topology.Graph, count int, tau simtime.Time, seed int64) []trafficgen.Arrival {
	return trafficgen.Poisson(trafficgen.PoissonConfig{
		Nodes:        g.Nodes(),
		MeanInterval: tau,
		Count:        count,
		Seed:         seed,
	})
}

func TestFluidAllFlowsComplete(t *testing.T) {
	tab := table(t, 4, 2)
	arrivals := workload(tab.Graph(), 500, 10*simtime.Microsecond, 1)
	res := Run(Config{
		Tab: tab, Protocol: routing.RPS,
		CapacityBits: 10e9, Headroom: 0.05,
		Recompute: 100 * simtime.Microsecond,
	}, arrivals)
	for i, f := range res.Flows {
		if f.Ended <= f.Started {
			t.Fatalf("flow %d never completed", i)
		}
		if f.AvgRateBps <= 0 {
			t.Fatalf("flow %d has non-positive avg rate", i)
		}
	}
	if res.Recomputations == 0 {
		t.Fatal("no recomputations")
	}
	if len(res.Ticks) == 0 {
		t.Fatal("no tick stats")
	}
}

func TestFluidIdealMode(t *testing.T) {
	tab := table(t, 4, 2)
	arrivals := workload(tab.Graph(), 200, 10*simtime.Microsecond, 2)
	res := Run(Config{
		Tab: tab, Protocol: routing.RPS,
		CapacityBits: 10e9, Headroom: 0.05,
		Recompute: 0, // ideal
	}, arrivals)
	for i, f := range res.Flows {
		if f.Ended <= f.Started {
			t.Fatalf("flow %d never completed", i)
		}
	}
	// Ideal mode recomputes on every arrival and departure burst.
	if res.Recomputations < 200 {
		t.Fatalf("ideal mode recomputed only %d times", res.Recomputations)
	}
}

// A lone flow must drain at the full headroom-adjusted fabric rate the
// allocator gives it, making FCT predictable.
func TestFluidSingleFlowTiming(t *testing.T) {
	tab := table(t, 4, 2)
	arrivals := []trafficgen.Arrival{{At: 0, Src: 0, Dst: 1, SizeBytes: 1 << 20, Weight: 1}}
	res := Run(Config{
		Tab: tab, Protocol: routing.DOR,
		CapacityBits: 10e9, Headroom: 0.05,
		Recompute: 0,
	}, arrivals)
	f := res.Flows[0]
	wantSecs := float64(1<<20*8) / 9.5e9
	if math.Abs(f.Ended.Seconds()-wantSecs) > wantSecs*0.01 {
		t.Fatalf("FCT = %v s, want %v s", f.Ended.Seconds(), wantSecs)
	}
}

// The Figure 15 relationship: rate error grows with ρ.
func TestRateErrorGrowsWithInterval(t *testing.T) {
	tab := table(t, 4, 2)
	arrivals := workload(tab.Graph(), 800, 5*simtime.Microsecond, 3)
	cfg := Config{Tab: tab, Protocol: routing.RPS, CapacityBits: 10e9, Headroom: 0.05}

	ideal := Run(cfg, arrivals)
	med := func(rho simtime.Time) float64 {
		c := cfg
		c.Recompute = rho
		var s stats.Sample
		s.AddAll(RateError(ideal, Run(c, arrivals)))
		return s.Median()
	}
	small := med(50 * simtime.Microsecond)
	large := med(2 * simtime.Millisecond)
	if small > large {
		t.Fatalf("median rate error shrank with larger rho: %v -> %v", small, large)
	}
	if large == 0 {
		t.Fatal("large interval shows zero rate error; periodic path inert")
	}
}

// Identical ideal runs have zero rate error (self-consistency).
func TestRateErrorSelfZero(t *testing.T) {
	tab := table(t, 3, 2)
	arrivals := workload(tab.Graph(), 100, 10*simtime.Microsecond, 4)
	cfg := Config{Tab: tab, Protocol: routing.RPS, CapacityBits: 10e9}
	a := Run(cfg, arrivals)
	b := Run(cfg, arrivals)
	for i, e := range RateError(a, b) {
		if e != 0 {
			t.Fatalf("flow %d: error %v between identical runs", i, e)
		}
	}
}

func TestRateErrorMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RateError(&Result{Flows: make([]FlowResult, 1)}, &Result{})
}

func TestFluidValidation(t *testing.T) {
	tab := table(t, 3, 2)
	for name, f := range map[string]func(){
		"nil table":     func() { Run(Config{CapacityBits: 1}, []trafficgen.Arrival{{}}) },
		"no arrivals":   func() { Run(Config{Tab: tab, CapacityBits: 1}, nil) },
		"zero capacity": func() { Run(Config{Tab: tab}, []trafficgen.Arrival{{Src: 0, Dst: 1, SizeBytes: 1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
