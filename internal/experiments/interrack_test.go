package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// stripHandoffs removes the handoffs column from a mix-table CSV: it is 0
// for serial runs by definition (there are no shards to cross), so the
// serial-vs-sharded comparison excludes it.
func stripHandoffs(t *testing.T, csv string) string {
	t.Helper()
	var out []string
	for _, line := range strings.Split(strings.TrimRight(csv, "\n"), "\n") {
		cells := strings.Split(line, ",")
		if len(cells) != 8 || (out == nil && cells[5] != "handoffs") {
			t.Fatalf("unexpected mix-table schema: %q", line)
		}
		out = append(out, strings.Join(append(cells[:5:5], cells[6:]...), ","))
	}
	return strings.Join(out, "\n") + "\n"
}

// TestInterRackMixTableShardInvariant pins the experiment's determinism
// contract: the simulation columns of the mix table are byte-identical
// between the serial engine and the sharded engine, the full table is
// byte-identical across worker counts, and a fully inter-rack mix moves
// strictly more boundary traffic than a fully intra-rack one.
func TestInterRackMixTableShardInvariant(t *testing.T) {
	cfg := DefaultInterRack()
	cfg.Flows = 60
	cfg.Mixes = []float64{0, 1}

	cfg.Shards = 1
	serial := InterRack(cfg)
	for _, run := range serial.Runs {
		if run.Results.Completed == 0 {
			t.Fatalf("mix %.2f completed no flows; the sweep is vacuous", run.Mix)
		}
	}
	want := stripHandoffs(t, serial.MixTable().CSV())

	var full []string
	for _, shards := range []int{2, 8} {
		cfg.Shards = shards
		res := InterRack(cfg)
		got := res.MixTable().CSV()
		full = append(full, got)
		if stripped := stripHandoffs(t, got); stripped != want {
			t.Fatalf("shards=%d mix table diverged from serial\n--- serial ---\n%s--- sharded ---\n%s", shards, want, stripped)
		}
		if h0, h1 := res.Runs[0].Handoffs, res.Runs[1].Handoffs; h1 <= h0 {
			t.Fatalf("shards=%d: inter-rack mix moved %d handoffs, intra-rack %d; want strictly more", shards, h1, h0)
		}
		util := res.ShardUtilTable()
		if want := len(cfg.Mixes) * cfg.Racks; len(util.Rows) != want {
			t.Fatalf("shards=%d: utilisation table has %d rows, want %d", shards, len(util.Rows), want)
		}
	}
	if full[0] != full[1] {
		t.Fatalf("mix table differs between worker counts\n--- shards=2 ---\n%s--- shards=8 ---\n%s", full[0], full[1])
	}
}

// TestInterRackArrivalsMixOnlyRewritesPairs: the offered load (arrival
// times and sizes) is identical at every mix, and the rewritten pairs
// respect the mix's rack placement.
func TestInterRackArrivalsMixOnlyRewritesPairs(t *testing.T) {
	cfg := DefaultInterRack()
	g := cfg.Fabric()
	per := g.Nodes() / cfg.Racks
	intra := cfg.arrivals(g, 0)
	inter := cfg.arrivals(g, 1)
	if len(intra) != cfg.Flows || len(inter) != cfg.Flows {
		t.Fatalf("want %d arrivals, got %d and %d", cfg.Flows, len(intra), len(inter))
	}
	for i := range intra {
		a, b := intra[i], inter[i]
		if a.At != b.At || a.SizeBytes != b.SizeBytes || a.Src != b.Src {
			t.Fatalf("arrival %d: times/sizes/sources must not depend on the mix: %+v vs %+v", i, a, b)
		}
		if a.Src == a.Dst || b.Src == b.Dst {
			t.Fatalf("arrival %d: self-flow", i)
		}
		if int(a.Src)/per != int(a.Dst)/per {
			t.Fatalf("arrival %d: mix 0 produced a cross-rack pair %v->%v", i, a.Src, a.Dst)
		}
		if int(b.Src)/per == int(b.Dst)/per {
			t.Fatalf("arrival %d: mix 1 produced an intra-rack pair %v->%v", i, b.Src, b.Dst)
		}
	}
}

// TestInterRackTableShapes keeps the CSV schema stable for the CI artifact.
func TestInterRackTableShapes(t *testing.T) {
	cfg := DefaultInterRack()
	cfg.Flows = 20
	cfg.Mixes = []float64{0.5}
	cfg.Shards = 2
	res := InterRack(cfg)
	mix := res.MixTable()
	if len(mix.Rows) != 1 || len(mix.Rows[0]) != len(mix.Header) {
		t.Fatalf("mix table shape off: %+v", mix)
	}
	util := res.ShardUtilTable()
	for _, row := range util.Rows {
		if len(row) != len(util.Header) {
			t.Fatalf("util row width %d != header %d", len(row), len(util.Header))
		}
		if _, err := strconv.Atoi(row[1]); err != nil {
			t.Fatalf("shard column not an integer: %v", row)
		}
	}
}
