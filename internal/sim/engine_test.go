package sim

import (
	"testing"

	"r2c2/internal/simtime"
)

func TestEngineOrdering(t *testing.T) {
	var eng Engine
	var order []int
	eng.Schedule(30, func() { order = append(order, 3) })
	eng.Schedule(10, func() { order = append(order, 1) })
	eng.Schedule(20, func() { order = append(order, 2) })
	eng.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if eng.Now() != 100 {
		t.Fatalf("now = %v", eng.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	var eng Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(5, func() { order = append(order, i) })
	}
	eng.Run(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var eng Engine
	hits := 0
	eng.Schedule(10, func() {
		hits++
		eng.After(5, func() { hits++ })
	})
	eng.Run(20)
	if hits != 2 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestEngineStopsAtHorizon(t *testing.T) {
	var eng Engine
	ran := false
	eng.Schedule(100, func() { ran = true })
	eng.Run(50)
	if ran {
		t.Fatal("event past horizon ran")
	}
	if !eng.Pending() {
		t.Fatal("pending event lost")
	}
	eng.Run(100)
	if !ran {
		t.Fatal("event not run after horizon extended")
	}
}

func TestEngineClockMonotonic(t *testing.T) {
	var eng Engine
	last := simtime.Time(-1)
	for i := 0; i < 100; i++ {
		at := simtime.Time((i * 7919) % 1000)
		eng.Schedule(at, func() {
			if eng.Now() < last {
				t.Fatal("clock went backwards")
			}
			last = eng.Now()
		})
	}
	eng.Run(1000)
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	var eng Engine
	eng.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		eng.Schedule(5, func() {})
	})
	eng.Run(10)
}

func TestEngineEventExactlyAtHorizon(t *testing.T) {
	var eng Engine
	ran := false
	eng.Schedule(50, func() { ran = true })
	eng.Run(50)
	if !ran {
		t.Fatal("event scheduled exactly at `until` must fire")
	}
	if eng.Now() != 50 {
		t.Fatalf("now = %v, want 50", eng.Now())
	}
}

// TestEngineHeapStress pushes events with colliding pseudo-random
// timestamps through the value heap and checks the full pop order:
// ascending time, FIFO among equal timestamps. This is the property the
// hand-rolled heap must preserve from the container/heap version.
func TestEngineHeapStress(t *testing.T) {
	var eng Engine
	const n = 2000
	type stamp struct {
		at  simtime.Time
		seq int
	}
	var got []stamp
	state := uint64(42)
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407 // LCG: deterministic
		at := simtime.Time(state % 97)                          // heavy collisions
		seq := i
		eng.Schedule(at, func() { got = append(got, stamp{at, seq}) })
	}
	if eng.Run(1000) != n {
		t.Fatal("event count mismatch")
	}
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("pop %d: time went backwards (%v after %v)", i, got[i].at, got[i-1].at)
		}
		if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
			t.Fatalf("pop %d: FIFO violated at t=%v (seq %d after %d)",
				i, got[i].at, got[i].seq, got[i-1].seq)
		}
	}
}

func TestEngineProcessedCount(t *testing.T) {
	var eng Engine
	for i := 0; i < 7; i++ {
		eng.Schedule(simtime.Time(i), func() {})
	}
	if n := eng.Run(100); n != 7 {
		t.Fatalf("Run returned %d", n)
	}
	if eng.Processed() != 7 {
		t.Fatalf("Processed = %d", eng.Processed())
	}
}
