package sim

import (
	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

// TCPConfig parameterises the TCP baseline of §5.2: a NewReno-style
// window-based protocol over an ECMP-like single shortest path per flow
// ("packets belonging to the same flow are routed onto the same path as
// required by TCP", with different flows hashed onto different paths).
type TCPConfig struct {
	InitCwnd   int          // initial congestion window, packets (default 10)
	InitSSTh   int          // initial slow-start threshold, packets (default 64)
	MinRTO     simtime.Time // retransmission timeout floor (default 200 µs)
	MaxInFlict int          // hard cap on cwnd, packets (default 1024)
}

func (c *TCPConfig) defaults() {
	if c.InitCwnd == 0 {
		c.InitCwnd = 10
	}
	if c.InitSSTh == 0 {
		c.InitSSTh = 64
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * simtime.Microsecond
	}
	if c.MaxInFlict == 0 {
		c.MaxInFlict = 1024
	}
}

// TCP runs the baseline transport over the simulated fabric.
type TCP struct {
	Net *Network
	Tab *routing.Table
	Cfg TCPConfig

	ledger  *flowLedger
	senders map[wire.FlowID]*tcpSender
	recvs   map[wire.FlowID]*tcpReceiver
	nextSeq map[topology.NodeID]uint16

	// Retransmissions counts retransmitted data packets.
	Retransmissions uint64
}

type tcpSender struct {
	id        wire.FlowID
	src, dst  topology.NodeID
	path      []topology.LinkID
	ackPath   []topology.LinkID
	totalPkts uint32
	lastSize  int // payload of the final packet

	cwnd     float64 // packets
	ssthresh float64
	nextSend uint32 // next new packet to transmit
	cumAcked uint32 // packets acknowledged in order
	dupAcks  int
	srtt     simtime.Time
	sent     map[uint32]simtime.Time // outstanding packet send times
	rtoArmed bool
	rtoSeq   uint64      // invalidates stale timeouts (legacy-heap guard)
	rtoTimer timerHandle // wheel handle: cancels the pending timeout outright
	done     bool
}

type tcpReceiver struct {
	next uint32
	oob  map[uint32]bool
}

// NewTCP wires the TCP baseline into a network.
func NewTCP(net *Network, tab *routing.Table, cfg TCPConfig) *TCP {
	cfg.defaults()
	t := &TCP{
		Net:     net,
		Tab:     tab,
		Cfg:     cfg,
		ledger:  newFlowLedger(),
		senders: make(map[wire.FlowID]*tcpSender),
		recvs:   make(map[wire.FlowID]*tcpReceiver),
		nextSeq: make(map[topology.NodeID]uint16),
	}
	net.Deliver = t.deliver
	if net.Eng.tcp != nil && net.Eng.tcp != t {
		panic("sim: engine already drives another TCP transport")
	}
	net.Eng.tcp = t // typed-event receiver for evTCPRTO
	return t
}

// Ledger exposes the flow records for results collection.
func (t *TCP) Ledger() map[wire.FlowID]*FlowRecord { return t.ledger.records }

// StartFlow begins a TCP flow of sizeBytes.
func (t *TCP) StartFlow(src, dst topology.NodeID, sizeBytes int64) wire.FlowID {
	if src == dst || sizeBytes <= 0 {
		panic("sim: degenerate flow")
	}
	seq := t.nextSeq[src]
	t.nextSeq[src] = seq + 1
	id := wire.MakeFlowID(uint16(src), seq)
	pkts := uint32((sizeBytes + MaxPayload - 1) / MaxPayload)
	last := int(sizeBytes - int64(pkts-1)*MaxPayload)
	s := &tcpSender{
		id: id, src: src, dst: dst,
		path:      t.Tab.ECMPPath(src, dst, id),
		ackPath:   t.Tab.ECMPPath(dst, src, id),
		totalPkts: pkts,
		lastSize:  last,
		cwnd:      float64(t.Cfg.InitCwnd),
		ssthresh:  float64(t.Cfg.InitSSTh),
		srtt:      t.Cfg.MinRTO / 2,
		sent:      make(map[uint32]simtime.Time),
	}
	t.senders[id] = s
	t.recvs[id] = &tcpReceiver{oob: make(map[uint32]bool)}
	t.ledger.open(id, src, dst, sizeBytes, t.Net.Eng.Now())
	t.pump(s)
	return id
}

// pump transmits new packets while the window allows.
func (t *TCP) pump(s *tcpSender) {
	if s.done {
		return
	}
	for s.nextSend < s.totalPkts && len(s.sent) < int(s.cwnd) && len(s.sent) < t.Cfg.MaxInFlict {
		t.sendPacket(s, s.nextSend, false)
		s.nextSend++
	}
	t.armRTO(s)
}

func (t *TCP) sendPacket(s *tcpSender, seq uint32, retx bool) {
	payload := MaxPayload
	if seq == s.totalPkts-1 {
		payload = s.lastSize
	}
	pkt := t.Net.newPacket()
	pkt.Kind = KindData
	pkt.SizeBytes = payload + DataHeaderBytes
	pkt.Flow = s.id
	pkt.Src = s.src
	pkt.Dst = s.dst
	pkt.Seq = seq
	pkt.Payload = payload
	pkt.Path = s.path // per-flow ECMP route, shared by reference
	pkt.Retx = retx
	if retx {
		t.Retransmissions++
	}
	s.sent[seq] = t.Net.Eng.Now()
	t.Net.Inject(pkt) // drops are recovered by timeout/fast-retransmit
}

func (t *TCP) armRTO(s *tcpSender) {
	if s.rtoArmed || len(s.sent) == 0 || s.done {
		return
	}
	s.rtoArmed = true
	s.rtoSeq++
	rto := 4 * s.srtt
	if rto < t.Cfg.MinRTO {
		rto = t.Cfg.MinRTO
	}
	s.rtoTimer = t.Net.Eng.after(rto, event{kind: evTCPRTO, ts: s, u64: s.rtoSeq})
}

// disarmRTO invalidates a pending timeout: the wheel removes the event
// outright; under the legacy heap the handle is inert and the rtoSeq bump
// tombstones it until its no-op fire.
func (t *TCP) disarmRTO(s *tcpSender) {
	s.rtoArmed = false
	s.rtoSeq++
	t.Net.Eng.cancelTimer(s.rtoTimer)
	s.rtoTimer = timerHandle{}
}

func (t *TCP) onRTO(s *tcpSender, seq uint64) {
	if s.rtoSeq != seq || s.done {
		return
	}
	s.rtoArmed = false
	if len(s.sent) == 0 {
		return
	}
	// Timeout: multiplicative decrease to a window of 1 and go-back-N from
	// the cumulative ack point.
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.cwnd = 1
	s.dupAcks = 0
	clear(s.sent) // reuse the map's buckets: go-back-N retransmits refill it

	s.nextSend = s.cumAcked
	t.pump(s)
}

// deliver dispatches data packets to receivers and acks to senders.
func (t *TCP) deliver(at topology.NodeID, pkt *Packet) {
	switch pkt.Kind {
	case KindData:
		t.receiveData(at, pkt)
	case KindAck:
		t.receiveAck(pkt)
	default:
		panic("sim: TCP network saw unexpected packet kind")
	}
}

func (t *TCP) receiveData(at topology.NodeID, pkt *Packet) {
	r := t.recvs[pkt.Flow]
	if r == nil {
		return // flow already completed; stale retransmission
	}
	rec := t.ledger.get(pkt.Flow)
	if pkt.Seq >= r.next && !r.oob[pkt.Seq] {
		r.oob[pkt.Seq] = true
		rec.BytesRcvd += int64(pkt.Payload)
		for r.oob[r.next] {
			delete(r.oob, r.next)
			r.next++
		}
	}
	// Cumulative ack (per packet, 16 bytes on the wire).
	s := t.senders[pkt.Flow]
	ack := t.Net.newPacket()
	ack.Kind = KindAck
	ack.SizeBytes = AckBytes
	ack.Flow = pkt.Flow
	ack.Src = pkt.Dst
	ack.Dst = pkt.Src
	ack.Seq = r.next
	ack.Path = s.ackPath // per-flow reverse route, shared by reference
	t.Net.Inject(ack)
	if !rec.Done && rec.BytesRcvd >= rec.SizeBytes {
		rec.Done = true
		rec.Finished = t.Net.Eng.Now()
	}
}

func (t *TCP) receiveAck(pkt *Packet) {
	s := t.senders[pkt.Flow]
	if s == nil || s.done {
		return
	}
	cum := pkt.Seq // receiver's next expected packet
	if cum > s.cumAcked {
		newlyAcked := float64(cum - s.cumAcked)
		for seq := s.cumAcked; seq < cum; seq++ {
			if sentAt, ok := s.sent[seq]; ok {
				rtt := t.Net.Eng.Now() - sentAt
				s.srtt = (7*s.srtt + rtt) / 8
				delete(s.sent, seq)
			}
		}
		s.cumAcked = cum
		s.dupAcks = 0
		if s.cwnd < s.ssthresh {
			s.cwnd += newlyAcked // slow start: exponential growth
		} else {
			s.cwnd += newlyAcked / s.cwnd // congestion avoidance
		}
		t.disarmRTO(s)
		if s.cumAcked >= s.totalPkts {
			s.done = true
			rec := t.ledger.get(pkt.Flow)
			rec.SenderDone = true
			delete(t.recvs, pkt.Flow)
			return
		}
	} else {
		s.dupAcks++
		if s.dupAcks == 3 {
			// Fast retransmit + multiplicative decrease.
			s.ssthresh = s.cwnd / 2
			if s.ssthresh < 2 {
				s.ssthresh = 2
			}
			s.cwnd = s.ssthresh
			t.sendPacket(s, s.cumAcked, true)
			s.dupAcks = 0
		}
	}
	t.pump(s)
}
