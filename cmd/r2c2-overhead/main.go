// Command r2c2-overhead evaluates R2C2's control-plane cost: the CPU cost
// of rate recomputation across batching intervals ρ (Figure 8, with both
// the from-scratch and the delta-driven incremental allocator), the
// broadcast overhead model of §3.2 (Figure 9) and the decentralized-
// versus-centralized control traffic comparison (Figure 19).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"r2c2/internal/broadcastmodel"
	"r2c2/internal/core"
	"r2c2/internal/experiments"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "r2c2-overhead:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("r2c2-overhead", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		fig8     = fs.Bool("fig8", false, "Figure 8: CPU cost of rate recomputation (from-scratch vs incremental)")
		fig9     = fs.Bool("fig9", false, "Figure 9: broadcast overhead vs small-flow byte fraction")
		fig19    = fs.Bool("fig19", false, "Figure 19: decentralized vs centralized control traffic")
		k        = fs.Int("k", 8, "torus radix for fig19")
		dims     = fs.Int("dims", 3, "torus dimensions for fig19")
		rhos     = fs.String("rhos", "", "comma-separated recomputation intervals in µs for fig8 (default: the built-in sweep around core.DefaultRho)")
		flows    = fs.Int("flows", 1200, "flows in the fig8 replayed trace")
		ticks    = fs.Int("max-ticks", 200, "recomputations timed per interval for fig8")
		parallel = fs.Int("parallel", 0, "worker count for the fig8 per-interval replays (0 = GOMAXPROCS, 1 = sequential; note fig8 times wall clocks, so contention can inflate measured cost)")
		csv      = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*fig8 && !*fig9 && !*fig19 {
		*fig8, *fig9, *fig19 = true, true, true
	}

	if *fig8 {
		sweep, err := parseRhos(*rhos)
		if err != nil {
			return err
		}
		s := experiments.TestScale()
		s.Flows = *flows
		s.Parallel = *parallel
		res := experiments.Fig8(s, s.Tau, sweep, *ticks)
		render(stdout, res.Table(), *csv)
		fmt.Fprintln(stdout, "(full-* columns rebuild the allocation from scratch each tick; inc-* replay only the")
		fmt.Fprintln(stdout, " interval's flow events through the incremental allocator; atom-* scale the full cost")
		fmt.Fprintln(stdout, " by the documented slowdown factor, see DESIGN.md)")
		fmt.Fprintln(stdout)
	}

	if *fig9 {
		res := experiments.Fig9([]float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1})
		render(stdout, res.Table(), *csv)

		// The §3.2 spot checks.
		g, err := topology.NewTorus(8, 3)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "spot checks on the 512-node 3D torus (§3.2):\n")
		fmt.Fprintf(stdout, "  one broadcast        = %.0f bytes on the wire (paper: ~8 KB)\n",
			broadcastmodel.EventBytes(g.Nodes()))
		fmt.Fprintf(stdout, "  10 KB flow overhead  = %.2f%% (paper: 26.66%%)\n",
			100*broadcastmodel.FlowOverhead(g, 10e3))
		fmt.Fprintf(stdout, "  10 MB flow overhead  = %.4f%% (paper: 0.026%%)\n\n",
			100*broadcastmodel.FlowOverhead(g, 10e6))
	}

	if *fig19 {
		g, err := topology.NewTorus(*k, *dims)
		if err != nil {
			return err
		}
		res := experiments.Fig19(g, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
		render(stdout, res.Table(), *csv)
	}
	return nil
}

// parseRhos turns a comma-separated list of microsecond values into the
// fig8 ρ sweep, defaulting to a spread around the paper's ρ = 500 µs
// (core.DefaultRho).
func parseRhos(spec string) ([]simtime.Time, error) {
	if spec == "" {
		base := simtime.FromSeconds(core.DefaultRho.Seconds())
		return []simtime.Time{base / 5, base / 2, base, 2 * base, 10 * base}, nil
	}
	var out []simtime.Time
	for _, field := range strings.Split(spec, ",") {
		us, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil || us <= 0 {
			return nil, fmt.Errorf("bad -rhos entry %q (want positive µs values)", field)
		}
		out = append(out, simtime.FromSeconds(us*1e-6))
	}
	return out, nil
}

// render prints a result table as aligned text or CSV.
func render(w io.Writer, t *experiments.Table, csv bool) {
	if csv {
		fmt.Fprint(w, "# ", t.Title, "\n", t.CSV())
		return
	}
	fmt.Fprintln(w, t)
}
