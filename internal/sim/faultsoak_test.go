package sim

import (
	"testing"
	"time"

	"r2c2/internal/faults"
	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/trafficgen"
)

// Randomized multi-failure soak: a seeded schedule of link flaps plus one
// node crash over the 8-node rack, with a Poisson workload arriving across
// the whole fault window. Every flow not involving the crashed node must
// complete (reliable mode retransmits across reroutes), and the number of
// fabric rebuilds must match the schedule's expected wave count exactly.
func TestFaultSoakEightNodeRack(t *testing.T) {
	g, err := topology.NewTorus(2, 3) // 8 nodes, degree 3
	if err != nil {
		t.Fatal(err)
	}
	sched, err := faults.Generate(g, faults.GenConfig{
		Seed:    42,
		Horizon: 20 * time.Millisecond,
		Flaps:   2,
		Crash:   true,
		DownFor: 4 * time.Millisecond,
		Detect:  200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// No -short reduction: fewer flows would end the run before the later
	// faults fire (the workload must span the schedule), and the full soak
	// is already sub-second.
	arrivals := trafficgen.FixedSize(trafficgen.PoissonConfig{
		Nodes:        g.Nodes(),
		MeanInterval: 400 * simtime.Microsecond,
		Count:        60,
		Seed:         7,
	}, 256<<10)
	res := Run(RunConfig{
		Graph:     g,
		Net:       NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond},
		Transport: TransportR2C2,
		R2C2: R2C2Config{
			Headroom: 0.05, Protocol: routing.RPS,
			Recompute: 100 * simtime.Microsecond,
			Reliable:  true, RTO: 300 * simtime.Microsecond,
		},
		Arrivals: arrivals,
		Faults:   sched,
		MaxTime:  500 * simtime.Millisecond,
	})

	dead := sched.DeadNodes()
	abandoned := 0
	for _, rec := range res.Flows {
		if dead[rec.Src] || dead[rec.Dst] {
			abandoned++
			continue // may complete (finished before the crash) or not
		}
		if !rec.Done {
			t.Errorf("flow %v (%d->%d) did not survive the schedule: %d/%d bytes",
				rec.ID, rec.Src, rec.Dst, rec.BytesRcvd, rec.SizeBytes)
		}
	}
	if t.Failed() {
		t.Logf("schedule:\n%s", sched)
	}
	if abandoned == 0 {
		t.Error("workload never touched the crashed node — soak too weak")
	}
	if want := uint64(sched.Waves()); res.FailureReroutes != want {
		t.Errorf("FailureReroutes = %d, want %d (schedule waves)", res.FailureReroutes, want)
	}
	if res.Drops == 0 {
		t.Error("schedule killed no packets — flaps missed all traffic?")
	}
}
