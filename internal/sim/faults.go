package sim

import (
	"fmt"
	"time"

	"r2c2/internal/faults"
	"r2c2/internal/simtime"
)

// simAt converts a schedule offset to simulated time (ns → ps).
func simAt(d time.Duration) simtime.Time {
	return simtime.Time(d.Nanoseconds()) * simtime.Nanosecond
}

// ApplyFaults schedules every event of a fault schedule onto the engine,
// to be injected into the transport at its At time. The schedule must be
// Validate-clean for the run's graph; injection errors are therefore bugs
// and panic. Call before Engine.Run, like flow arrivals.
func (r *R2C2) ApplyFaults(sched faults.Schedule) {
	for _, e := range sched.Sorted() {
		ev := e
		r.Net.Eng.Schedule(simAt(ev.At), func() {
			if r.sh != nil {
				// The whole schedule is replicated into every shard so each
				// sees the same degraded fabric; tick the replicated-control
				// counter so merged event totals subtract the duplicates.
				r.sh.ctrl++
			}
			det := simtime.Time(ev.Detect.Nanoseconds()) * simtime.Nanosecond
			var err error
			switch ev.Kind {
			case faults.LinkDown:
				err = r.FailLink(ev.A, ev.B, det)
			case faults.LinkRepair:
				err = r.RepairLink(ev.A, ev.B, det)
			case faults.NodeDown:
				err = r.FailNode(ev.Node, det)
			case faults.LinkDrop:
				ab, okAB := r.Net.G.LinkBetween(ev.A, ev.B)
				ba, okBA := r.Net.G.LinkBetween(ev.B, ev.A)
				if !okAB || !okBA {
					err = fmt.Errorf("sim: no link between %d and %d", ev.A, ev.B)
					break
				}
				r.Net.SetLinkDropProb(ab, ev.DropProb)
				r.Net.SetLinkDropProb(ba, ev.DropProb)
			}
			if err != nil {
				panic(fmt.Sprintf("sim: fault injection %v failed: %v", ev, err))
			}
		})
	}
}
