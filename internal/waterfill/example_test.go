package waterfill_test

import (
	"fmt"

	"r2c2/internal/routing"
	"r2c2/internal/topology"
	"r2c2/internal/waterfill"
)

// Two flows share every link of a dimension-order path; the weight-3 flow
// receives three times the weight-1 flow's rate, and together they fill
// the headroom-adjusted link.
func ExampleAllocator_Allocate() {
	g, _ := topology.NewTorus(4, 2)
	tab := routing.NewTable(g)
	phi := tab.Phi(routing.DOR, 0, 1) // single path: one bottleneck link

	alloc := waterfill.NewAllocator(waterfill.Config{
		NumLinks: g.NumLinks(),
		Capacity: 10e9, // 10 Gbps links
		Headroom: 0.05, // §3.3.2: absorb flows not yet broadcast
	})
	rates := alloc.Allocate([]waterfill.Flow{
		{Phi: phi, Weight: 3, Demand: waterfill.Unlimited},
		{Phi: phi, Weight: 1, Demand: waterfill.Unlimited},
	})
	fmt.Printf("weight-3 flow: %.3f Gbps\n", rates[0]/1e9)
	fmt.Printf("weight-1 flow: %.3f Gbps\n", rates[1]/1e9)
	// Output:
	// weight-3 flow: 7.125 Gbps
	// weight-1 flow: 2.375 Gbps
}
