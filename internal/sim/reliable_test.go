package sim

import (
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

func newReliableNet(t *testing.T, g *topology.Graph, net NetConfig) (*Engine, *Network, *R2C2) {
	t.Helper()
	eng := &Engine{}
	n := NewNetwork(g, eng, net)
	tab := routing.NewTable(g)
	r := NewR2C2(n, tab, R2C2Config{
		Headroom:  0.05,
		Protocol:  routing.RPS,
		Recompute: 100 * simtime.Microsecond,
		Reliable:  true,
		RTO:       200 * simtime.Microsecond,
	})
	return eng, n, r
}

// With no loss, reliable mode must behave like the base stack plus acks:
// everything completes, nothing retransmits.
func TestReliableLosslessNoRetransmit(t *testing.T) {
	g := torus(t, 4, 2)
	eng, net, r := newReliableNet(t, g, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	ids := []wire.FlowID{
		r.StartFlow(0, 5, 2<<20, 1, 0),
		r.StartFlow(3, 12, 1<<20, 1, 0),
	}
	eng.Run(100 * simtime.Millisecond)
	for _, id := range ids {
		rec := r.Ledger()[id]
		if !rec.Done || !rec.SenderDone {
			t.Fatalf("flow %v incomplete: done=%v senderDone=%v", id, rec.Done, rec.SenderDone)
		}
	}
	if r.Retransmissions != 0 {
		t.Fatalf("lossless run retransmitted %d chunks", r.Retransmissions)
	}
	if net.TotalDrops() != 0 {
		t.Fatalf("drops = %d", net.TotalDrops())
	}
	// Views fully drained after finishes.
	for n := 0; n < g.Nodes(); n++ {
		if r.View(topology.NodeID(n)).Len() != 0 {
			t.Fatalf("node %d view not drained", n)
		}
	}
}

// Under forced loss (tiny queues + incast), reliable flows must still
// deliver every byte; the unreliable stack provably cannot.
func TestReliableRecoversFromDrops(t *testing.T) {
	g := torus(t, 4, 2)
	// Queues of ~4 packets with an 8-way incast force drops.
	eng, net, r := newReliableNet(t, g, NetConfig{LinkGbps: 10, QueueBytes: 6 * 1500})
	var ids []wire.FlowID
	for s := 1; s <= 8; s++ {
		ids = append(ids, r.StartFlow(topology.NodeID(s), 0, 1<<20, 1, 0))
	}
	eng.Run(2 * simtime.Second)
	if net.TotalDrops() == 0 {
		t.Fatal("expected drops under incast with tiny queues")
	}
	if r.Retransmissions == 0 {
		t.Fatal("drops occurred but nothing was retransmitted")
	}
	for _, id := range ids {
		rec := r.Ledger()[id]
		if !rec.Done {
			t.Fatalf("flow %v incomplete despite reliability: %d/%d",
				id, rec.BytesRcvd, rec.SizeBytes)
		}
		if rec.BytesRcvd != rec.SizeBytes {
			t.Fatalf("flow %v byte accounting off: %d != %d (duplicate counting?)",
				id, rec.BytesRcvd, rec.SizeBytes)
		}
	}
}

// Receiver state must survive until the finish broadcast so a lost final
// ack is re-ackable, then be reclaimed.
func TestReliableReceiverCleanup(t *testing.T) {
	g := torus(t, 4, 2)
	eng, _, r := newReliableNet(t, g, NetConfig{LinkGbps: 10})
	id := r.StartFlow(0, 5, 1<<20, 1, 0)
	eng.Run(simtime.Second)
	if !r.Ledger()[id].Done {
		t.Fatal("flow incomplete")
	}
	if got := len(r.nodes[5].recv); got != 0 {
		t.Fatalf("receiver retains %d flow states after finish broadcast", got)
	}
}

// After a reroute bumps the fabric generation, the interned reliability ack
// route must be rebuilt into a fresh buffer: acks already in flight share
// the old backing array by reference, and an in-place rebuild would rewrite
// their remaining hops to new-fabric link IDs mid-flight.
func TestReliableAckRebuildPreservesInFlightRoute(t *testing.T) {
	g := torus(t, 4, 2)
	_, net, r := newReliableNet(t, g, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	id := r.StartFlow(0, 3, 1<<20, 1, 0)

	deliver := func(seq uint32) {
		pkt := net.newPacket()
		pkt.Kind = KindData
		pkt.SizeBytes = MaxPayload + DataHeaderBytes
		pkt.Flow = id
		pkt.Src = 0
		pkt.Dst = 3
		pkt.Seq = seq
		pkt.Payload = MaxPayload
		r.receiveData(3, pkt)
		net.freePacket(pkt)
	}
	deliver(0) // interns the ack route on the receive state
	rs := r.nodes[3].recv[id]
	inFlight := rs.ackPath // what an in-flight ack references
	snapshot := append([]topology.LinkID(nil), inFlight...)

	r.gen++ // as reroute() does after a fabric failure
	deliver(1)
	if &rs.ackPath[0] == &inFlight[0] {
		t.Fatal("ack route rebuilt in place: in-flight acks see the new fabric's links")
	}
	for i, lid := range inFlight {
		if lid != snapshot[i] {
			t.Fatalf("in-flight ack route mutated at hop %d: %v, want %v", i, lid, snapshot[i])
		}
	}
}
