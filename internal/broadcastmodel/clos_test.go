package broadcastmodel

import (
	"testing"

	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

// §6, "R2C2 atop switched networks": "consider a 512 node rack connected
// using 32-port switches arranged in a two-level folded Clos topology. A
// broadcast on this topology results in only 8.7 KB of total traffic."
// The broadcast tree spans hosts and switches, so its cost is
// (vertices - 1) × 16 bytes.
func TestClosBroadcastCost(t *testing.T) {
	// 32 leaves × 16 hosts = 512 hosts; 16 spines (32-port leaves split
	// 16 down / 16 up).
	g, err := topology.NewFoldedClos(32, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 512 {
		t.Fatalf("hosts = %d", g.Nodes())
	}
	trees := topology.BuildBroadcastTrees(g, 0, 1, 1)
	bytes := trees[0].TotalEdges() * wire.BroadcastSize
	// 512 + 32 + 16 vertices -> 559 edges × 16 B = 8944 B ≈ 8.7 KB.
	if bytes < 8600 || bytes > 9200 {
		t.Fatalf("Clos broadcast = %d bytes, want ~8.7 KB", bytes)
	}
	// Depth: host -> leaf -> spine fabric reaches everything in 4 hops.
	if trees[0].Depth != 4 {
		t.Fatalf("Clos broadcast depth = %d, want 4", trees[0].Depth)
	}
}
