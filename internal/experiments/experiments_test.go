package experiments

import (
	"math"
	"strings"
	"testing"

	"r2c2/internal/genetic"
	"r2c2/internal/routing"
	"r2c2/internal/sim"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
)

// Figure 2 at paper scale (8-ary 2-cube) must land on the published
// anchors. This is the full headline table of the routing study.
func TestFig2MatchesPaper(t *testing.T) {
	g, err := topology.NewTorus(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := Fig2(g, 30, 1)
	anchors := []struct {
		pattern string
		proto   routing.Protocol
		want    float64
		tol     float64
	}{
		{"nearest-neighbor", routing.RPS, 4.0, 0.05},
		{"nearest-neighbor", routing.DOR, 4.0, 0.05},
		{"nearest-neighbor", routing.VLB, 0.5, 0.02},
		{"uniform", routing.RPS, 1.0, 0.03},
		{"uniform", routing.DOR, 1.0, 0.03},
		{"uniform", routing.VLB, 0.5, 0.02},
		{"uniform", routing.WLB, 0.76, 0.03},
		{"tornado", routing.RPS, 0.33, 0.01},
		{"tornado", routing.DOR, 0.33, 0.01},
		{"tornado", routing.VLB, 0.5, 0.01},
		{"tornado", routing.WLB, 0.53, 0.01},
		{"bit-complement", routing.VLB, 0.5, 0.02},
	}
	for _, a := range anchors {
		got := res.Get(a.pattern, a.proto)
		if math.Abs(got-a.want) > a.tol {
			t.Errorf("%s/%v = %.3f, want %.3f±%.3f", a.pattern, a.proto, got, a.want, a.tol)
		}
	}
	// Structural claims: no single protocol wins everywhere; VLB's
	// worst-case is the best worst-case.
	worst := res.Throughput[len(res.Throughput)-1]
	bestWorst, bestIdx := 0.0, -1
	for j, v := range worst {
		if v > bestWorst {
			bestWorst, bestIdx = v, j
		}
	}
	if res.Protocols[bestIdx] != routing.VLB {
		t.Errorf("best worst-case protocol = %v, want VLB", res.Protocols[bestIdx])
	}
	if res.Get("transpose", routing.RPS) < 0 {
		t.Error("transpose row missing on 2D cube")
	}
	if !strings.Contains(res.Table().String(), "tornado") {
		t.Error("table rendering lost rows")
	}
	if res.Get("nope", routing.RPS) != -1 {
		t.Error("unknown pattern should return -1")
	}
}

func TestFig9Table(t *testing.T) {
	res := Fig9([]float64{0, 0.05, 0.5, 1})
	if len(res.Fraction) != 3 || len(res.Fraction[0]) != 4 {
		t.Fatal("wrong shape")
	}
	// Anchor: ~1.3% at 5% small bytes on the 3D torus.
	if math.Abs(res.Fraction[0][1]-0.013) > 0.004 {
		t.Errorf("3D torus at 0.05 = %v, want ~0.013", res.Fraction[0][1])
	}
	if !strings.Contains(res.Table().String(), "3D-torus-512") {
		t.Error("table missing topology column")
	}
}

func TestFig19Shape(t *testing.T) {
	g, err := topology.NewTorus(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := Fig19(g, []int{1, 2, 5, 10})
	// Paper: 6.2x at 1 flow/server, 19.9x at 10.
	r1 := res.Centralized[0] / res.Decentralized[0]
	r10 := res.Centralized[3] / res.Decentralized[3]
	if r1 < 3 || r1 > 15 {
		t.Errorf("ratio at 1 flow/server = %.1f, want ~6", r1)
	}
	if r10 < 2.5*r1 {
		t.Errorf("ratio must grow with flows/server: %.1f -> %.1f", r1, r10)
	}
	if res.Decentralized[0] != res.Decentralized[3] {
		t.Error("decentralized cost should be constant")
	}
	_ = res.Table().String()
}

func TestFig15And16Trends(t *testing.T) {
	s := TestScale()
	s.Flows = 600
	rhos := []simtime.Time{100 * simtime.Microsecond, 2 * simtime.Millisecond}
	r15 := Fig15(s, s.Tau, rhos)
	if r15.Median[0] > r15.Median[1] {
		t.Errorf("Fig15: error should grow with rho: %v", r15.Median)
	}
	_ = r15.Table().String()

	taus := []simtime.Time{2 * simtime.Microsecond, 50 * simtime.Microsecond}
	r16 := Fig16(s, 500*simtime.Microsecond, taus)
	// Higher load (smaller tau) gives larger error.
	if r16.Median[0] < r16.Median[1] {
		t.Errorf("Fig16: error should shrink with tau: %v", r16.Median)
	}
	_ = r16.Table().String()
}

func TestFig8Feasibility(t *testing.T) {
	s := TestScale()
	s.Flows = 400
	rhos := []simtime.Time{100 * simtime.Microsecond, simtime.Millisecond}
	res := Fig8(s, s.Tau, rhos, 50)
	if len(res.MedianHost) != 2 {
		t.Fatal("wrong shape")
	}
	for i := range rhos {
		if res.MedianHost[i] < 0 || res.P99Host[i] < res.MedianHost[i] {
			t.Errorf("rho %v: implausible overhead median=%v p99=%v",
				rhos[i], res.MedianHost[i], res.P99Host[i])
		}
		if res.MedianAtom[i] != res.MedianHost[i]*AtomSlowdown {
			t.Error("atom scaling wrong")
		}
		if res.MedianInc[i] < 0 || res.P99Inc[i] < res.MedianInc[i] {
			t.Errorf("rho %v: implausible incremental overhead median=%v p99=%v",
				rhos[i], res.MedianInc[i], res.P99Inc[i])
		}
	}
	// At ρ=1ms the host must find recomputation cheap (well under 100%).
	if res.MedianHost[1] > 1 {
		t.Errorf("1ms recomputation infeasible on host: %v", res.MedianHost[1])
	}
	_ = res.Table().String()
}

func TestFig10to14SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level sweep")
	}
	s := TestScale()
	s.Flows = 500
	r := Fig10and11(s, s.Tau)
	if len(r.Runs) != 3 {
		t.Fatal("expected 3 transports")
	}
	for _, run := range r.Runs {
		if run.Results.Completed == 0 {
			t.Fatalf("%v completed no flows", run.Transport)
		}
	}
	// Figure 10 headline: R2C2's tail FCT well below TCP's.
	r2 := r.Runs[0].Results.ShortFCT.Percentile(99)
	tcp := r.Runs[1].Results.ShortFCT.Percentile(99)
	if r2 >= tcp {
		t.Errorf("R2C2 p99 short FCT %.3g not below TCP %.3g", r2, tcp)
	}
	_ = r.ShortFCTTable().String()
	_ = r.LongThroughputTable().String()

	sweep := Fig12to14(s, []simtime.Time{100 * simtime.Nanosecond, 4 * simtime.Microsecond, 40 * simtime.Microsecond})
	if len(sweep.FCT99) != 3 || len(sweep.QueueP99) != 3 {
		t.Fatal("sweep shape wrong")
	}
	// Figure 14 headline: queues stay near-empty at moderate load — the
	// hottest port's maximum is a handful of MTUs — and only build at the
	// extreme load point. (The p99 of per-port *run maxima* is not monotone
	// in load between moderate points: lower load means a longer run, which
	// gives every port more chances to record a transient burst, so the
	// assertion contrasts extreme vs moderate instead of moderate vs light.)
	for _, i := range []int{1, 2} {
		if sweep.QueueP99[i] > 64e3 {
			t.Errorf("tau=%v: moderate-load queues not near-empty: %v bytes", sweep.Taus[i], sweep.QueueP99[i])
		}
		if sweep.QueueP99[0] < 2*sweep.QueueP99[i] {
			t.Errorf("extreme load should at least double the p99 max queue: %v", sweep.QueueP99)
		}
	}
	_ = sweep.Fig12Table().String()
	_ = sweep.Fig13Table().String()
	_ = sweep.Fig14Table().String()
}

func TestFig17HeadroomSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level sweep")
	}
	s := TestScale()
	s.Flows = 400
	res := Fig17(s, s.Tau, []float64{0, 0.05, 0.2})
	if len(res.FCT99) != 3 {
		t.Fatal("wrong shape")
	}
	for i, v := range res.FCT99 {
		if v <= 0 {
			t.Errorf("headroom %v: no FCT measured", res.Headrooms[i])
		}
	}
	// Figure 17b: large headroom costs long-flow throughput relative to a
	// modest one.
	if res.LongAvg[2] > res.LongAvg[1]*1.05 {
		t.Errorf("20%% headroom should not beat 5%%: %v vs %v", res.LongAvg[2], res.LongAvg[1])
	}
	_ = res.Table().String()
}

func TestFig18AdaptiveWins(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level sweep")
	}
	s := TestScale()
	res := Fig18(s, []float64{0, 0.25, 1.0},
		genetic.Config{Population: 40, MaxGens: 25})
	// Zero load: all zeros.
	if res.Adaptive[0] != 0 {
		t.Error("zero-load throughput nonzero")
	}
	for i := 1; i < len(res.Loads); i++ {
		if res.Adaptive[i] < res.AllRPS[i]-1 || res.Adaptive[i] < res.AllVLB[i]-1 ||
			res.Adaptive[i] < res.Random[i]-1 {
			t.Errorf("load %v: adaptive %v below a baseline (RPS %v, VLB %v, rnd %v)",
				res.Loads[i], res.Adaptive[i], res.AllRPS[i], res.AllVLB[i], res.Random[i])
		}
	}
	_ = res.Table().String()
}

func TestScalePresets(t *testing.T) {
	p, ts := PaperScale(), TestScale()
	if p.Torus().Nodes() != 512 {
		t.Error("paper scale not 512 nodes")
	}
	if ts.Torus().Nodes() != 64 {
		t.Error("test scale not 64 nodes")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "x", Header: []string{"a", "bbbb"}}
	tab.AddRow("1", "2")
	s := tab.String()
	if !strings.Contains(s, "== x ==") || !strings.Contains(s, "bbbb") {
		t.Fatalf("bad rendering: %q", s)
	}
}

var _ = sim.TransportR2C2 // document the dependency used by the sweeps

func TestTableCSV(t *testing.T) {
	tab := &Table{Title: "t", Header: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.AddRow("3", "4")
	want := "a,b\n1,2\n3,4\n"
	if got := tab.CSV(); got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
