package sim

import (
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

// §6 inter-rack networking: the R2C2 stack runs unmodified across two racks
// joined by direct cables — global visibility spans both racks, cross-rack
// flows complete, and the bridge links are shared fairly.
func TestR2C2AcrossTwoRacks(t *testing.T) {
	rackA, err := topology.NewTorus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rackB, err := topology.NewTorus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := topology.ConnectRacks([]*topology.Graph{rackA, rackB}, []topology.Bridge{
		{RackA: 0, NodeA: 0, RackB: 1, NodeB: 0},
		{RackA: 0, NodeA: 4, RackB: 1, NodeB: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	r := NewR2C2(net, routing.NewTable(g), R2C2Config{
		Headroom: 0.05, Protocol: routing.RPS, Recompute: 100 * simtime.Microsecond})

	// Two cross-rack flows plus one local flow per rack (rack B's nodes
	// are 9..17 in the combined numbering).
	flows := map[string]wire.FlowID{
		"cross1": r.StartFlow(1, 10, 4<<20, 1, 0),
		"cross2": r.StartFlow(2, 11, 4<<20, 1, 0),
		"localA": r.StartFlow(3, 5, 4<<20, 1, 0),
		"localB": r.StartFlow(12, 14, 4<<20, 1, 0),
	}

	// Global visibility spans racks: a node in rack B sees rack A's flows
	// and vice versa.
	eng.Run(100 * simtime.Microsecond)
	if _, ok := r.View(13).Get(flows["localA"]); !ok {
		t.Fatal("rack B node has no view of a rack A flow")
	}
	if _, ok := r.View(3).Get(flows["localB"]); !ok {
		t.Fatal("rack A node has no view of a rack B flow")
	}

	eng.Run(simtime.Second)
	for name, id := range flows {
		rec := r.Ledger()[id]
		if !rec.Done {
			t.Fatalf("%s incomplete: %d/%d", name, rec.BytesRcvd, rec.SizeBytes)
		}
	}
	if net.TotalDrops() != 0 {
		t.Fatalf("drops = %d", net.TotalDrops())
	}
	// Cross-rack flows share two 10 Gbps bridges; each should land well
	// above half of a single bridge.
	tc1 := r.Ledger()[flows["cross1"]].Throughput()
	tc2 := r.Ledger()[flows["cross2"]].Throughput()
	if tc1 < 4e9 || tc2 < 4e9 {
		t.Fatalf("cross-rack throughputs %.3g / %.3g; bridges underused", tc1, tc2)
	}
}
