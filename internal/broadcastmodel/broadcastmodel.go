// Package broadcastmodel quantifies R2C2's control-plane traffic: the
// broadcast overhead analysis of §3.2 / Figure 9 and the decentralized-
// versus-centralized control-traffic comparison of §5.2 / Figure 19.
//
// The model follows the paper's accounting exactly. A flow event broadcast
// costs (n-1) tree edges × 16 bytes. A flow of S bytes routed minimally
// crosses on average H links (H = mean inter-node hop distance), putting
// S·H bytes on the wire, so the per-flow relative broadcast overhead is
// 2·16·(n-1) / (S·H) — 26.66% for a 10 KB flow on a 512-node 3D torus and
// 0.026% for a 10 MB flow, reproducing the §3.2 numbers.
package broadcastmodel

import (
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

// EventBytes returns the total wire bytes of one flow-event broadcast on a
// rack of n nodes: one 16-byte packet crossing each of the n-1 tree edges.
func EventBytes(n int) float64 {
	return float64(wire.BroadcastSize) * float64(n-1)
}

// FlowOverhead returns the relative broadcast overhead of one flow of
// sizeBytes on graph g: (start + finish broadcast bytes) divided by the
// bytes the flow itself puts on the wire under minimal routing.
func FlowOverhead(g *topology.Graph, sizeBytes float64) float64 {
	wireBytes := sizeBytes * g.MeanNodeDistance()
	return 2 * EventBytes(g.Nodes()) / wireBytes
}

// CapacityFraction returns the fraction of total network capacity consumed
// by broadcast traffic for a workload where a fraction `smallByteFrac` of
// all bytes is carried by small flows of smallBytes and the rest by
// long flows of longBytes — the Figure 9 curve.
//
// Derivation: per byte of traffic, the expected number of broadcasts is
// smallByteFrac/smallBytes + (1-smallByteFrac)/longBytes flow-starts (each
// with a matching finish). Broadcast wire-bytes per traffic wire-byte then
// follows from the per-flow accounting above.
func CapacityFraction(g *topology.Graph, smallByteFrac, smallBytes, longBytes float64) float64 {
	flowsPerByte := smallByteFrac/smallBytes + (1-smallByteFrac)/longBytes
	bcastBytesPerByte := 2 * EventBytes(g.Nodes()) * flowsPerByte
	dataWireBytesPerByte := g.MeanNodeDistance()
	return bcastBytesPerByte / (bcastBytesPerByte + dataWireBytesPerByte)
}

// ControlTraffic compares the two control-plane designs of Figure 19 for
// one flow arrival (or departure) event, returning bytes on the wire.
type ControlTraffic struct {
	// Decentralized: the R2C2 design — one broadcast per flow event,
	// independent of how many flows are active.
	Decentralized float64
	// Centralized: a Fastpass-like controller — the source unicasts the
	// event to the controller, the controller recomputes and unicasts to
	// every node sourcing flows a message with the new rates for its flows.
	Centralized float64
}

// RateMsgHeaderBytes is the fixed header of a centralized rate-update
// unicast; each flow entry carries a 4-byte flow ID and 4-byte rate.
const (
	RateMsgHeaderBytes = 16
	RateEntryBytes     = 8
)

// PerEvent models one flow event on a rack with n nodes where
// `flowsPerServer` long flows are live at every node. H is the mean hop
// distance (unicasts cross H links on average).
func PerEvent(g *topology.Graph, flowsPerServer int) ControlTraffic {
	n := float64(g.Nodes())
	h := g.MeanNodeDistance()
	event := float64(wire.BroadcastSize)

	// Decentralized: one 16-byte broadcast over n-1 tree edges.
	dec := EventBytes(g.Nodes())

	// Centralized: event unicast to the controller (H hops), then one rate
	// message to each of the n source nodes carrying flowsPerServer
	// entries, each crossing H hops.
	rateMsg := float64(RateMsgHeaderBytes + RateEntryBytes*flowsPerServer)
	cen := event*h + n*rateMsg*h

	return ControlTraffic{Decentralized: dec, Centralized: cen}
}

// Ratio returns centralized/decentralized traffic.
func (c ControlTraffic) Ratio() float64 {
	if c.Decentralized == 0 {
		return 0
	}
	return c.Centralized / c.Decentralized
}
