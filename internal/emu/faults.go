package emu

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"time"

	"r2c2/internal/core"
	"r2c2/internal/faults"
	"r2c2/internal/routing"
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

// This file is the emulator's fault-injection layer, with semantics
// mirroring the simulator's (the sim/emu parity contract, DESIGN.md §10):
// ports go dark at injection time and everything queued on them is lost;
// after the detection delay the routing state (table, broadcast FIB,
// link-ID mapping) is swapped atomically, flows with crashed endpoints are
// abandoned, and every surviving flow is re-announced. Overlapping
// failures accumulate; every swap recomputes the fabric from the CURRENT
// union and an epoch guard (faultSeq/coveredSeq) makes stale detection
// callbacks no-op.

// cableLinks returns the directed link IDs of the physical cable between a
// and b (either or both directions may be absent).
func (r *Rack) cableLinks(a, b topology.NodeID) []topology.LinkID {
	var lids []topology.LinkID
	if ab, ok := r.cfg.Graph.LinkBetween(a, b); ok {
		lids = append(lids, ab)
	}
	if ba, ok := r.cfg.Graph.LinkBetween(b, a); ok {
		lids = append(lids, ba)
	}
	return lids
}

// FailLink fails both directions of the cable between a and b: the ports
// go dark immediately (queued and future packets are lost) and after
// `detect` on the rack clock every node switches to the degraded fabric
// and re-announces its flows. Errors if the cable does not exist, is
// already down, or the failure would partition the rack.
func (r *Rack) FailLink(a, b topology.NodeID, detect time.Duration) error {
	r.faultMu.Lock()
	var added []topology.LinkID
	for _, lid := range r.cableLinks(a, b) {
		if !r.failedLinks[lid] {
			r.failedLinks[lid] = true
			added = append(added, lid)
		}
	}
	if len(added) == 0 {
		r.faultMu.Unlock()
		return fmt.Errorf("emu: no healthy link between %d and %d", a, b)
	}
	if _, _, err := r.cfg.Graph.WithoutLinksAndNodes(r.failedLinks, r.deadNodes); err != nil {
		for _, lid := range added {
			delete(r.failedLinks, lid)
		}
		r.faultMu.Unlock()
		return err
	}
	for _, lid := range added {
		r.ports[lid].dead.Store(true)
	}
	r.faultSeq++
	r.faultMu.Unlock()
	r.scheduleSwap(detect)
	return nil
}

// FailNode crashes a node: all its cables go dark immediately and its
// senders stop; after `detect` survivors swap to the degraded fabric,
// purge the dead node's flows from their views, abandon flows to or from
// it, and re-announce their own. Errors if the node is already dead or the
// crash would partition the survivors.
func (r *Rack) FailNode(dead topology.NodeID, detect time.Duration) error {
	if int(dead) < 0 || int(dead) >= r.cfg.Graph.Nodes() {
		return fmt.Errorf("emu: node %d out of range", dead)
	}
	r.faultMu.Lock()
	if r.deadNodes[dead] {
		r.faultMu.Unlock()
		return fmt.Errorf("emu: node %d already failed", dead)
	}
	r.deadNodes[dead] = true
	var added []topology.LinkID
	for _, links := range [][]topology.LinkID{r.cfg.Graph.Out(dead), r.cfg.Graph.In(dead)} {
		for _, lid := range links {
			if !r.failedLinks[lid] {
				r.failedLinks[lid] = true
				added = append(added, lid)
			}
		}
	}
	if _, _, err := r.cfg.Graph.WithoutLinksAndNodes(r.failedLinks, r.deadNodes); err != nil {
		delete(r.deadNodes, dead)
		for _, lid := range added {
			delete(r.failedLinks, lid)
		}
		r.faultMu.Unlock()
		return err
	}
	for _, lid := range added {
		r.ports[lid].dead.Store(true)
	}
	// The crashed node stops sending instantly: abort its senders and drop
	// its local flow state. Other nodes' views keep the flows until the
	// detection delay elapses (they have not noticed yet).
	n := r.nodes[dead]
	n.mu.Lock()
	//lint:ignore det-map-iter order-free: each abort closes only that flow's own aborted channel; no goroutine observes two flows' aborts in a guaranteed order
	for id, f := range n.flows {
		f.abort()
		delete(n.flows, id)
	}
	n.mu.Unlock()
	r.faultSeq++
	r.faultMu.Unlock()
	r.scheduleSwap(detect)
	return nil
}

// RepairLink returns both directions of the cable between a and b to
// service; after `detect` every node swaps to the re-expanded fabric and
// re-announces its flows (§3.2's recovery half). Cables of a crashed node
// cannot be repaired while it is down.
func (r *Rack) RepairLink(a, b topology.NodeID, detect time.Duration) error {
	r.faultMu.Lock()
	if r.deadNodes[a] || r.deadNodes[b] {
		r.faultMu.Unlock()
		return fmt.Errorf("emu: cannot repair link %d-%d of a failed node", a, b)
	}
	var repaired []topology.LinkID
	for _, lid := range r.cableLinks(a, b) {
		if r.failedLinks[lid] {
			delete(r.failedLinks, lid)
			repaired = append(repaired, lid)
		}
	}
	if len(repaired) == 0 {
		r.faultMu.Unlock()
		return fmt.Errorf("emu: no failed link between %d and %d", a, b)
	}
	for _, lid := range repaired {
		r.ports[lid].dead.Store(false)
	}
	r.faultSeq++
	r.faultMu.Unlock()
	r.scheduleSwap(detect)
	return nil
}

// SetLinkDropProb installs a random-drop probability p in [0,1] on both
// directions of the cable between a and b. p = 0 removes the loss.
func (r *Rack) SetLinkDropProb(a, b topology.NodeID, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("emu: drop probability %v out of [0,1]", p)
	}
	lids := r.cableLinks(a, b)
	if len(lids) == 0 {
		return fmt.Errorf("emu: no link between %d and %d", a, b)
	}
	r.lossMu.Lock()
	if r.lossRng == nil && p > 0 {
		r.lossRng = rand.New(rand.NewSource(r.cfg.Seed))
	}
	r.lossMu.Unlock()
	for _, lid := range lids {
		r.ports[lid].dropBits.Store(math.Float64bits(p))
	}
	return nil
}

// Reroutes counts fabric swaps performed after fault detections — the
// emulator's equivalent of sim.R2C2.FailureReroutes.
func (r *Rack) Reroutes() uint64 { return r.reroutes.Load() }

// FaultErrors counts schedule events that failed to inject (ApplyFaults
// replays asynchronously and cannot return them).
func (r *Rack) FaultErrors() uint64 { return r.faultErrs.Load() }

// scheduleSwap arms one detection timer: after `detect` on the rack clock
// the fabric is recomputed and swapped (unless a newer swap already
// covered this injection).
func (r *Rack) scheduleSwap(detect time.Duration) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		select {
		case <-r.clk.after(detect):
			r.swapFabric()
		case <-r.ctx.Done():
		}
	}()
}

// swapFabric is the detection-fire path: it recomputes the degraded fabric
// from the CURRENT failure state (never a snapshot), purges and abandons
// flows with crashed endpoints, swaps the routing state atomically, and
// re-announces every surviving flow (§3.2: "nodes broadcast information
// about all their ongoing flows"). Serialised under faultMu so swaps
// install in injection order.
func (r *Rack) swapFabric() {
	r.faultMu.Lock()
	defer r.faultMu.Unlock()
	if r.coveredSeq >= r.faultSeq {
		return // a newer swap already covers this injection
	}
	r.coveredSeq = r.faultSeq

	var st *fabricState
	if len(r.failedLinks) == 0 && len(r.deadNodes) == 0 {
		// Fully repaired: back to the pristine physical fabric.
		st = &fabricState{
			tab: r.tab,
			fib: topology.NewBroadcastFIB(r.cfg.Graph, r.cfg.TreesPerSource, r.cfg.Seed),
		}
	} else {
		sub, mapping, err := r.cfg.Graph.WithoutLinksAndNodes(r.failedLinks, r.deadNodes)
		if err != nil {
			// Every injection validated the union it created, and
			// connectivity is monotone in the failed set.
			panic(fmt.Sprintf("emu: degraded fabric invalid at detection time: %v", err))
		}
		dead := make(map[topology.NodeID]bool, len(r.deadNodes))
		for d := range r.deadNodes {
			dead[d] = true
		}
		st = &fabricState{
			tab:     routing.NewTable(sub),
			fib:     topology.NewBroadcastFIB(sub, r.cfg.TreesPerSource, r.cfg.Seed),
			linkMap: mapping,
			dead:    dead,
		}
	}

	// Abandon flows with crashed endpoints and purge them from every view
	// BEFORE the swap goes live: no re-announce may route toward an
	// unreachable endpoint and no view may keep their bandwidth reserved.
	if len(st.dead) > 0 {
		r.flowsMu.Lock()
		//lint:ignore det-map-iter order-free: each abort closes only that flow's own aborted channel; waiters select on their own flow, never on cross-flow abort order
		for _, f := range r.flows {
			if st.dead[f.Info.Src] || st.dead[f.Info.Dst] {
				f.abort()
			}
		}
		r.flowsMu.Unlock()
		for _, n := range r.nodes {
			n.mu.Lock()
			for _, info := range n.view.Flows() {
				if st.dead[info.Src] || st.dead[info.Dst] {
					n.view.RemoveFlow(info.ID)
					delete(n.flows, info.ID)
				}
			}
			n.mu.Unlock()
		}
	}

	// Rate computation must run against the new fabric's capacities.
	for _, n := range r.nodes {
		n.mu.Lock()
		n.rc = core.NewRateComputer(st.tab, r.cfg.LinkMbps*1e6, r.cfg.Headroom)
		n.mu.Unlock()
	}

	r.fabric.Store(st)
	r.reroutes.Add(1)

	// Re-announce every live flow over the new broadcast trees.
	type announce struct {
		src  topology.NodeID
		tree uint8
		b    *wire.Broadcast
	}
	var anns []announce
	for _, n := range r.nodes {
		if st.dead[n.id] {
			continue
		}
		n.mu.Lock()
		// Sorted iteration: the flow→tree pairing rotates nextTree per
		// flow, so walking the map in random order would hand the same
		// flow a different broadcast tree on every run (det-map-iter).
		ids := make([]wire.FlowID, 0, len(n.flows))
		for id := range n.flows {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		for _, id := range ids {
			tree := n.nextTree
			n.nextTree = (n.nextTree + 1) % uint8(r.cfg.TreesPerSource)
			anns = append(anns, announce{src: n.id, tree: tree, b: n.flows[id].Info.StartBroadcast(tree)})
		}
		n.mu.Unlock()
	}
	for _, a := range anns {
		pkt := r.newBcastPkt(a.b)
		r.forwardBroadcast(a.src, a.src, a.tree, pkt)
		r.release(pkt)
	}
}

// ApplyFaults replays a fault schedule against the rack on its own
// goroutine, event times measured on the rack clock from the moment of the
// call. The schedule should be Validate-clean for the rack's graph;
// injection failures increment FaultErrors. Call after Start.
func (r *Rack) ApplyFaults(sched faults.Schedule) {
	events := sched.Sorted()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		startNs := r.clk.nowNs()
		for _, ev := range events {
			if wait := time.Duration(int64(ev.At) - (r.clk.nowNs() - startNs)); wait > 0 {
				select {
				case <-r.clk.after(wait):
				case <-r.ctx.Done():
					return
				}
			}
			var err error
			switch ev.Kind {
			case faults.LinkDown:
				err = r.FailLink(ev.A, ev.B, ev.Detect)
			case faults.LinkRepair:
				err = r.RepairLink(ev.A, ev.B, ev.Detect)
			case faults.NodeDown:
				err = r.FailNode(ev.Node, ev.Detect)
			case faults.LinkDrop:
				err = r.SetLinkDropProb(ev.A, ev.B, ev.DropProb)
			}
			if err != nil {
				r.faultErrs.Add(1)
			}
		}
	}()
}
