package sim

import (
	"math"
	"math/bits"
	"testing"

	"r2c2/internal/simtime"
)

// wheelHarness schedules raw events straight into a timerWheel and drains
// them, recording dispatch order.
func drainWheel(w *timerWheel) []event {
	var out []event
	for w.peek() != 0 {
		out = append(out, w.pop())
	}
	return out
}

func TestWheelOrdersLikeHeap(t *testing.T) {
	// A deterministic LCG stream with deliberate timestamp collisions,
	// spanning several wheel levels (delays up to ~2^40 ps ≈ 1.1 s).
	var w timerWheel
	type key struct {
		at  simtime.Time
		seq uint64
	}
	var want []key
	rng := uint64(12345)
	var seq uint64
	for i := 0; i < 5000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		at := simtime.Time(rng % (1 << 40))
		if i%7 == 0 {
			at = simtime.Time(rng % 64) // force same-slot collisions
		}
		w.schedule(event{at: at, seq: seq})
		want = append(want, key{at, seq})
		seq++
	}
	// Expected order: ascending (at, seq) — the heap comparator.
	for i := 1; i < len(want); i++ {
		for j := i; j > 0 && (want[j].at < want[j-1].at || (want[j].at == want[j-1].at && want[j].seq < want[j-1].seq)); j-- {
			want[j], want[j-1] = want[j-1], want[j]
		}
	}
	got := drainWheel(&w)
	if len(got) != len(want) {
		t.Fatalf("drained %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].at != want[i].at || got[i].seq != want[i].seq {
			t.Fatalf("event %d: got (at=%d seq=%d), want (at=%d seq=%d)",
				i, got[i].at, got[i].seq, want[i].at, want[i].seq)
		}
	}
	if w.count != 0 {
		t.Fatalf("count = %d after drain, want 0", w.count)
	}
}

func TestWheelInterleavedScheduleAndPop(t *testing.T) {
	// Scheduling between pops must keep global (at, seq) order for events
	// not yet dispatched — including events landing in the current slot.
	var w timerWheel
	var seq uint64
	sched := func(at simtime.Time) {
		w.schedule(event{at: at, seq: seq})
		seq++
	}
	sched(100 << wheelShift)
	sched(50 << wheelShift)
	if ev := w.nodes[w.peek()-1].ev; ev.at != 50<<wheelShift {
		t.Fatalf("peek at=%d, want %d", ev.at, simtime.Time(50)<<wheelShift)
	}
	got := w.pop()
	if got.at != 50<<wheelShift {
		t.Fatalf("pop at=%d, want %d", got.at, simtime.Time(50)<<wheelShift)
	}
	// Now the cursor is at slot 50. Schedule into the same slot (staged
	// directly) and into a later slot; same-slot event fires first.
	sched(50<<wheelShift + 1)
	sched(60 << wheelShift)
	if got := w.pop(); got.at != 50<<wheelShift+1 {
		t.Fatalf("pop at=%d, want same-slot event first", got.at)
	}
	if got := w.pop(); got.at != 60<<wheelShift {
		t.Fatalf("pop at=%d, want 60<<shift", got.at)
	}
	if got := w.pop(); got.at != 100<<wheelShift {
		t.Fatalf("pop at=%d, want 100<<shift", got.at)
	}
}

func TestWheelCancel(t *testing.T) {
	var w timerWheel
	h1 := w.schedule(event{at: 1 << 30, seq: 0})
	h2 := w.schedule(event{at: 2 << 30, seq: 1})
	h3 := w.schedule(event{at: 3 << 30, seq: 2})
	if !w.cancel(h2) {
		t.Fatal("cancel of live filed timer returned false")
	}
	if w.cancel(h2) {
		t.Fatal("double cancel returned true")
	}
	if w.count != 2 {
		t.Fatalf("count = %d, want 2", w.count)
	}
	got := drainWheel(&w)
	if len(got) != 2 || got[0].seq != 0 || got[1].seq != 2 {
		t.Fatalf("drained %v, want seqs [0 2]", got)
	}
	// Stale handles after firing must be rejected (node was recycled).
	if w.cancel(h1) || w.cancel(h3) {
		t.Fatal("cancel of already-fired timer returned true")
	}
}

func TestWheelCancelStaged(t *testing.T) {
	// Cancelling an event that is already staged in the current slot
	// tombstones it; it must neither fire nor break heap order.
	var w timerWheel
	w.schedule(event{at: 10, seq: 0})
	h := w.schedule(event{at: 11, seq: 1})
	w.schedule(event{at: 12, seq: 2})
	if w.peek() == 0 {
		t.Fatal("peek returned empty wheel")
	}
	// All three now staged (same level-0 slot). Cancel the middle one.
	if !w.cancel(h) {
		t.Fatal("cancel of staged timer returned false")
	}
	if w.count != 2 {
		t.Fatalf("count = %d, want 2", w.count)
	}
	got := drainWheel(&w)
	if len(got) != 2 || got[0].seq != 0 || got[1].seq != 2 {
		t.Fatalf("drained seqs %v, want [0 2]", got)
	}
}

func TestWheelCancelRecycledNode(t *testing.T) {
	// A handle whose node was freed and recycled for a new timer must not
	// cancel the new occupant: the seq check rejects it.
	var w timerWheel
	h := w.schedule(event{at: 5, seq: 0})
	drainWheel(&w)
	w.schedule(event{at: 7, seq: 1}) // reuses the freed node
	if w.cancel(h) {
		t.Fatal("stale handle cancelled the node's new occupant")
	}
	if w.count != 1 {
		t.Fatalf("count = %d, want 1", w.count)
	}
}

func TestWheelFarFutureCascade(t *testing.T) {
	// Events at the extreme ends of the simtime range must cascade down
	// without loss. Max slot number is 2^49; exercise every level.
	var w timerWheel
	ats := []simtime.Time{
		1,
		1 << wheelShift,
		1 << (wheelShift + wheelBits),
		1 << (wheelShift + 3*wheelBits),
		1<<62 - 1,
		1 << 62,
	}
	for i, at := range ats {
		w.schedule(event{at: at, seq: uint64(i)})
	}
	got := drainWheel(&w)
	if len(got) != len(ats) {
		t.Fatalf("drained %d, want %d", len(got), len(ats))
	}
	for i, ev := range got {
		if ev.at != ats[i] {
			t.Fatalf("event %d: at=%d, want %d", i, ev.at, ats[i])
		}
	}
}

func TestWheelLevelPlacementInvariant(t *testing.T) {
	// The aligned-window level choice must always place a node at a slot
	// position strictly above the cursor's position at that level — the
	// invariant advance() relies on to scan only forward.
	curs := []int64{0, 1, 255, 256, 0x12345, 1 << 40, (1 << 49) - 2}
	deltas := []int64{1, 2, 255, 256, 257, 1 << 16, 1<<24 + 5, 1 << 48}
	for _, cur := range curs {
		for _, d := range deltas {
			s0 := cur + d
			if s0 >= 1<<49 {
				continue
			}
			l := (bits.Len64(uint64(s0^cur)) - 1) / wheelBits
			if l >= wheelLevels {
				t.Fatalf("cur=%d s0=%d: level %d out of range", cur, s0, l)
			}
			slotPos := (s0 >> (uint(l) * wheelBits)) & wheelMask
			curPos := (cur >> (uint(l) * wheelBits)) & wheelMask
			if slotPos <= curPos {
				t.Fatalf("cur=%d s0=%d level=%d: slot pos %d not above cursor pos %d",
					cur, s0, l, slotPos, curPos)
			}
		}
	}
}

func TestAfterOverflowPanics(t *testing.T) {
	// Satellite: e.now + delay used to wrap negative unchecked, tripping
	// the misleading scheduled-in-the-past panic (or, with the past check
	// gone, corrupting event order). It must panic explicitly.
	eng := &Engine{}
	eng.Schedule(100, func() {})
	eng.Run(100) // advance the clock so now+delay can overflow
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("overflowing After did not panic")
		}
		if s, ok := r.(string); !ok || s != "sim: delay overflows simulated time" {
			t.Fatalf("panic = %v, want explicit overflow message", r)
		}
	}()
	eng.After(simtime.Time(math.MaxInt64-50), func() {})
}

func TestEngineSchedulersAgreeOnRandomWorkload(t *testing.T) {
	// Drive wheel and legacy-heap engines with an identical closure
	// workload (nested scheduling, timestamp collisions) and require the
	// exact same fire order.
	run := func(legacy bool) []int {
		eng := &Engine{}
		if legacy {
			eng.UseLegacyHeap()
		}
		var order []int
		id := 0
		rng := uint64(99)
		var sched func(depth int)
		sched = func(depth int) {
			rng = rng*6364136223846793005 + 1442695040888963407
			at := eng.Now() + simtime.Time(rng%(1<<30))
			me := id
			id++
			eng.Schedule(at, func() {
				order = append(order, me)
				if depth < 3 {
					sched(depth + 1)
					sched(depth + 1)
				}
			})
		}
		for i := 0; i < 50; i++ {
			sched(0)
		}
		eng.Run(1 << 62)
		return order
	}
	wheel, heap := run(false), run(true)
	if len(wheel) != len(heap) {
		t.Fatalf("wheel fired %d events, heap %d", len(wheel), len(heap))
	}
	for i := range wheel {
		if wheel[i] != heap[i] {
			t.Fatalf("fire order diverges at %d: wheel=%d heap=%d", i, wheel[i], heap[i])
		}
	}
}
