package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Unit is one point of the unit lattice the taint analysis tracks. The
// lattice is flat: UnitNone (no information) below the concrete units,
// UnitMixed (conflicting inflows) above them. Scaling arithmetic —
// multiplying or dividing by a constant, the legitimate way to convert —
// deliberately drops a value back to UnitNone.
//
// Bits and bits/s share one point: the R2C2 naming convention writes both
// rate fields (LinkBits, demandBits — bits per second) and quantities
// (sentBits) with the same suffix, and the dangerous crossings are the
// decimal ones (Kbps wire fields vs bits/s water-filling vs bytes of flow
// size), not rate-vs-quantity.
type Unit uint8

const (
	UnitNone Unit = iota
	UnitBits      // bits or bits/s: the water-filling currency
	UnitKbps      // the broadcast demand wire field
	UnitMbps
	UnitGbps
	UnitBytes // flow sizes, queue occupancy
	UnitNs    // nanoseconds / virtual ticks held in bare integers
	UnitSeconds
	UnitMixed // conflicting inflows; propagation stops, checks skip
)

func (u Unit) String() string {
	switch u {
	case UnitBits:
		return "bits"
	case UnitKbps:
		return "Kbps"
	case UnitMbps:
		return "Mbps"
	case UnitGbps:
		return "Gbps"
	case UnitBytes:
		return "bytes"
	case UnitNs:
		return "ns"
	case UnitSeconds:
		return "seconds"
	case UnitMixed:
		return "mixed"
	}
	return "?"
}

// unitSuffixTable maps name suffixes to units; longest match wins, so
// "LinkGbps" is Gbps, not bits. Checked case-insensitively.
var unitSuffixTable = []struct {
	suffix string
	unit   Unit
}{
	{"kbps", UnitKbps},
	{"mbps", UnitMbps},
	{"gbps", UnitGbps},
	{"bps", UnitBits},
	{"bits", UnitBits},
	{"bytes", UnitBytes},
	{"nanos", UnitNs},
	{"ns", UnitNs},
	{"seconds", UnitSeconds},
	{"secs", UnitSeconds},
}

// unitFromName seeds a unit from the PR-1 naming convention.
func unitFromName(name string) Unit {
	low := strings.ToLower(name)
	for _, e := range unitSuffixTable {
		if strings.HasSuffix(low, e.suffix) {
			// Guard short suffixes against false matches: "ns" must not
			// fire on "columns" or "tokens" — require a camelCase or
			// snake_case boundary before it.
			if e.suffix == "ns" && len(low) > 2 {
				r := name[len(name)-2]
				prev := name[len(name)-3]
				if !(r == 'N' || prev == '_') {
					continue
				}
			}
			return e.unit
		}
	}
	return UnitNone
}

// unitConversions seeds units on functions whose names don't spell them:
// the module's unit-conversion boundary. Keys are types.Func.FullName()
// strings; values give the unit of the first result and of each
// parameter (UnitNone = unconstrained).
type funcUnits struct {
	result Unit
	params []Unit
}

var unitConversions = map[string]funcUnits{
	"r2c2/internal/core.KbpsDemand":             {result: UnitKbps, params: []Unit{UnitBits}},
	"(*r2c2/internal/core.FlowInfo).DemandBits": {result: UnitBits},
	"(*r2c2/internal/emu.Flow).Demand":          {result: UnitKbps},
	"(*r2c2/internal/emu.Flow).Rate":            {result: UnitBits},
	"(*r2c2/internal/emu.Flow).Throughput":      {result: UnitBits},
	"(time.Duration).Seconds":                   {result: UnitSeconds},
	"(r2c2/internal/simtime.Time).Seconds":      {result: UnitSeconds},
	"r2c2/internal/simtime.FromSeconds":         {params: []Unit{UnitSeconds}},
}

// objRef names one dataflow node: a variable, parameter, struct field or
// function result, identified by its declaration position (stable across
// packages because the whole module shares one FileSet).
type objRef string

// uval is the unit of one expression as far as the collect phase can
// tell: a concrete unit, a reference to an object whose unit resolution
// may still discover, or nothing.
type uval struct {
	unit Unit
	ref  objRef // set when unit is UnitNone and the value traces to an object
}

func (v uval) known() bool { return v.unit != UnitNone }

// utEdge propagates a unit from a value into an object (assignment,
// argument binding, return).
type utEdge struct {
	from uval
	to   objRef
}

// utCheckKind distinguishes the check sites.
type utCheckKind uint8

const (
	checkArith  utCheckKind = iota // additive/comparison operands must agree
	checkAssign                    // value flowing into a seeded destination
)

// utCheck is a deferred unit check: both sides are resolved against the
// module-wide unit environment, and a disagreement is a finding.
type utCheck struct {
	kind utCheckKind
	a, b uval
	pos  token.Position
	// what describes the site for the message ("x + y", "argument 1 of
	// core.KbpsDemand", "field FlowInfo.DemandKbps").
	what string
}

// utFacts is one package's contribution.
type utFacts struct {
	seeds  map[objRef]Unit
	edges  []utEdge
	checks []utCheck
}

// unitTaint is the unit-taint ModuleAnalyzer. Phase one seeds units from
// the naming convention and the conversion table, walks every function
// body recording dataflow edges (assignments, call bindings, returns,
// composite literals) and deferred checks (mixed additive arithmetic and
// comparisons, unit-crossing stores). Phase two floods units across the
// module-wide edge set to a fixpoint and evaluates the checks.
type unitTaint struct{ pkgScope }

// NewUnitTaint builds the unit-taint rule scoped to the given package
// path suffixes (empty = all packages).
func NewUnitTaint(pkgs ...string) ModuleAnalyzer { return &unitTaint{pkgScope{pkgs}} }

func (*unitTaint) Name() string { return "unit-taint" }
func (*unitTaint) Doc() string {
	return "track Kbps/bits/bytes/ns units through assignments, calls and returns; flag mixed-unit arithmetic"
}

func (a *unitTaint) Collect(pass *TypedPass) any {
	c := &utCollector{
		pass:  pass,
		facts: &utFacts{seeds: map[objRef]Unit{}},
	}
	for _, f := range pass.Files {
		c.file(f)
	}
	return c.facts
}

type utCollector struct {
	pass  *TypedPass
	facts *utFacts
}

// ref returns the dataflow node for an object, seeding its unit from its
// name the first time it is met.
func (c *utCollector) ref(obj types.Object) objRef {
	if obj == nil || obj.Pos() == token.NoPos {
		return ""
	}
	r := objRef(c.pass.Fset.Position(obj.Pos()).String())
	if _, ok := c.facts.seeds[r]; !ok {
		if u := unitFromName(obj.Name()); u != UnitNone && isUnitCarrier(obj.Type()) {
			c.facts.seeds[r] = u
		}
	}
	return r
}

// resultRef names a function's first result as a dataflow node.
func resultRef(fn *types.Func, fset *token.FileSet) objRef {
	return objRef(fset.Position(fn.Pos()).String() + "#result")
}

// isUnitCarrier reports whether a type can carry a raw unit: bare
// numerics only. Named types (time.Duration, simtime.Time) carry their
// unit in the type and are exempt.
func isUnitCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// file walks one file's declarations.
func (c *utCollector) file(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			c.funcDecl(v)
			return false
		case *ast.GenDecl:
			// Seed struct fields and package vars eagerly so other
			// packages referencing them resolve even if unused here.
			for _, spec := range v.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if st, ok := s.Type.(*ast.StructType); ok {
						for _, fld := range st.Fields.List {
							for _, name := range fld.Names {
								c.ref(c.pass.Info.Defs[name])
							}
						}
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						c.ref(c.pass.Info.Defs[name])
					}
				}
			}
		}
		return true
	})
}

// funcDecl seeds the function's parameters and results, registers any
// conversion-table entry, then walks the body.
func (c *utCollector) funcDecl(fn *ast.FuncDecl) {
	obj, _ := c.pass.Info.Defs[fn.Name].(*types.Func)
	if obj != nil {
		sig := obj.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			c.ref(sig.Params().At(i))
		}
		rr := resultRef(obj, c.pass.Fset)
		if cv, ok := unitConversions[obj.FullName()]; ok {
			if cv.result != UnitNone {
				c.facts.seeds[rr] = cv.result
			}
			for i, u := range cv.params {
				if u != UnitNone && i < sig.Params().Len() {
					c.facts.seeds[c.ref(sig.Params().At(i))] = u
				}
			}
		} else if sig.Results().Len() > 0 {
			res := sig.Results().At(0)
			if u := unitFromName(res.Name()); u != UnitNone && isUnitCarrier(res.Type()) {
				c.facts.seeds[rr] = u
			} else if u := unitFromName(fn.Name.Name); u != UnitNone && isUnitCarrier(res.Type()) {
				// A getter named for a unit (MaxQueueBytes, DelayNs)
				// returns that unit.
				c.facts.seeds[rr] = u
			}
		}
	}
	if fn.Body == nil {
		return
	}
	c.block(fn.Body, obj)
}

// block walks statements, recording edges and checks.
func (c *utCollector) block(body *ast.BlockStmt, fn *types.Func) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			c.assign(v)
		case *ast.ReturnStmt:
			if fn != nil && len(v.Results) > 0 {
				rr := resultRef(fn, c.pass.Fset)
				val := c.eval(v.Results[0])
				c.flow(val, rr, UnitNone, v.Results[0], "returned value of "+fn.Name())
			}
		case *ast.CallExpr:
			c.call(v)
		case *ast.BinaryExpr:
			c.binary(v)
		case *ast.CompositeLit:
			c.composite(v)
		}
		return true
	})
}

// assign records edges/checks for x = y and x := y (including parallel
// assignment position by position).
func (c *utCollector) assign(st *ast.AssignStmt) {
	if len(st.Lhs) != len(st.Rhs) {
		return // multi-value call or comma-ok: no per-position dataflow
	}
	for i := range st.Lhs {
		lobj := c.lhsObject(st.Lhs[i])
		if lobj == nil || !isUnitCarrier(lobj.Type()) {
			continue
		}
		r := c.ref(lobj)
		val := c.eval(st.Rhs[i])
		seed := c.facts.seeds[r]
		what := lobj.Name()
		if st.Tok == token.ADD_ASSIGN || st.Tok == token.SUB_ASSIGN {
			// x += y is additive arithmetic between x and y.
			c.facts.checks = append(c.facts.checks, utCheck{
				kind: checkArith, a: uval{unit: seed, ref: r}, b: val,
				pos: c.pass.Fset.Position(st.Pos()), what: what + " " + st.Tok.String() + " …",
			})
			continue
		}
		c.flow(val, r, seed, st.Rhs[i], what)
	}
}

// flow either defers an assignment check (destination already has a
// seeded unit) or records a propagation edge into it.
func (c *utCollector) flow(val uval, to objRef, seed Unit, at ast.Node, what string) {
	if to == "" {
		return
	}
	if seed == UnitNone {
		seed = c.facts.seeds[to]
	}
	if seed != UnitNone {
		if val.known() && val.unit != seed {
			// Both ends concrete right now: report immediately.
			c.facts.checks = append(c.facts.checks, utCheck{
				kind: checkAssign, a: uval{unit: seed}, b: val,
				pos: c.pass.Fset.Position(at.Pos()), what: what,
			})
		} else if val.ref != "" {
			c.facts.checks = append(c.facts.checks, utCheck{
				kind: checkAssign, a: uval{unit: seed}, b: val,
				pos: c.pass.Fset.Position(at.Pos()), what: what,
			})
		}
		return
	}
	if val.known() || val.ref != "" {
		c.facts.edges = append(c.facts.edges, utEdge{from: val, to: to})
	}
}

// lhsObject resolves an assignment destination to its object.
func (c *utCollector) lhsObject(e ast.Expr) types.Object {
	switch v := e.(type) {
	case *ast.Ident:
		if obj := c.pass.Info.Defs[v]; obj != nil {
			return obj
		}
		return c.pass.Info.Uses[v]
	case *ast.SelectorExpr:
		if sel := c.pass.Info.Selections[v]; sel != nil {
			return sel.Obj()
		}
		return c.pass.Info.Uses[v.Sel]
	}
	return nil
}

// call records argument→parameter bindings and checks.
func (c *utCollector) call(call *ast.CallExpr) {
	fn := c.callee(call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	cv, hasCv := unitConversions[fn.FullName()]
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break // variadic tail: skip
		}
		param := sig.Params().At(i)
		if !isUnitCarrier(param.Type()) {
			continue
		}
		pu := UnitNone
		if hasCv && i < len(cv.params) {
			pu = cv.params[i]
		}
		if pu == UnitNone {
			pu = unitFromName(param.Name())
		}
		pr := c.ref(param)
		if pu != UnitNone {
			c.facts.seeds[pr] = pu
		}
		val := c.eval(arg)
		what := "argument " + param.Name() + " of " + fn.Name()
		c.flow(val, pr, pu, arg, what)
	}
}

// callee resolves a call expression to the *types.Func it invokes, or nil
// for function values, type conversions and builtins.
func (c *utCollector) callee(call *ast.CallExpr) *types.Func {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := c.pass.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.pass.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// binary defers a mixed-unit check for additive and comparison operators.
// Multiplicative operators are the conversion idiom (×1e3, ÷8) and reset
// the unit instead.
func (c *utCollector) binary(b *ast.BinaryExpr) {
	switch b.Op {
	case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	x, y := c.eval(b.X), c.eval(b.Y)
	if (x.unit == UnitNone && x.ref == "") || (y.unit == UnitNone && y.ref == "") {
		return
	}
	c.facts.checks = append(c.facts.checks, utCheck{
		kind: checkArith, a: x, b: y,
		pos:  c.pass.Fset.Position(b.Pos()),
		what: exprString(b.X) + " " + b.Op.String() + " " + exprString(b.Y),
	})
}

// composite records field bindings of struct literals.
func (c *utCollector) composite(lit *ast.CompositeLit) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		obj := c.pass.Info.Uses[key]
		if obj == nil || !isUnitCarrier(obj.Type()) {
			continue
		}
		r := c.ref(obj)
		val := c.eval(kv.Value)
		c.flow(val, r, c.facts.seeds[r], kv.Value, "field "+key.Name)
	}
}

// eval computes the unit value of an expression.
func (c *utCollector) eval(e ast.Expr) uval {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return c.eval(v.X)
	case *ast.UnaryExpr:
		return c.eval(v.X)
	case *ast.Ident:
		obj := c.pass.Info.Uses[v]
		if obj == nil {
			obj = c.pass.Info.Defs[v]
		}
		if obj == nil || !isUnitCarrier(obj.Type()) {
			return uval{}
		}
		r := c.ref(obj)
		if u, ok := c.facts.seeds[r]; ok {
			return uval{unit: u}
		}
		return uval{ref: r}
	case *ast.SelectorExpr:
		obj := c.pass.Info.Uses[v.Sel]
		if sel := c.pass.Info.Selections[v]; sel != nil {
			obj = sel.Obj()
		}
		if _, ok := obj.(*types.Func); ok {
			return uval{}
		}
		if obj == nil || !isUnitCarrier(obj.Type()) {
			return uval{}
		}
		r := c.ref(obj)
		if u, ok := c.facts.seeds[r]; ok {
			return uval{unit: u}
		}
		return uval{ref: r}
	case *ast.CallExpr:
		// A type conversion is unit-transparent: float64(x) still holds
		// x's unit.
		if tv, ok := c.pass.Info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			if isUnitCarrier(tv.Type) {
				return c.eval(v.Args[0])
			}
			return uval{}
		}
		fn := c.callee(v)
		if fn == nil {
			return uval{}
		}
		if cv, ok := unitConversions[fn.FullName()]; ok && cv.result != UnitNone {
			return uval{unit: cv.result}
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Results().Len() == 0 || !isUnitCarrier(sig.Results().At(0).Type()) {
			return uval{}
		}
		if u := unitFromName(sig.Results().At(0).Name()); u != UnitNone {
			return uval{unit: u}
		}
		if u := unitFromName(fn.Name()); u != UnitNone {
			return uval{unit: u}
		}
		return uval{ref: resultRef(fn, c.pass.Fset)}
	case *ast.BinaryExpr:
		switch v.Op {
		case token.ADD, token.SUB:
			x, y := c.eval(v.X), c.eval(v.Y)
			if x.known() || x.ref != "" {
				return x
			}
			return y
		case token.MUL, token.QUO:
			// Scaling: the conversion idiom. The result's unit is
			// whatever the author says it is — unknown to us.
			return uval{}
		}
		return uval{}
	}
	return uval{}
}

// Resolve floods units across the module-wide edge set and evaluates the
// deferred checks.
func (a *unitTaint) Resolve(facts []PackageFacts) []Diagnostic {
	env := map[objRef]Unit{}
	var edges []utEdge
	var checks []utCheck
	for _, pf := range facts {
		f := pf.Facts.(*utFacts)
		for r, u := range f.seeds {
			if have, ok := env[r]; ok && have != u {
				env[r] = UnitMixed
			} else {
				env[r] = u
			}
		}
		edges = append(edges, f.edges...)
		checks = append(checks, f.checks...)
	}

	// Fixpoint: propagate units along edges into unseeded objects. An
	// object fed two different units becomes UnitMixed, which blocks both
	// further propagation and checks (a deliberately unit-agnostic
	// accumulator is not a finding).
	seeded := make(map[objRef]bool, len(env))
	for r, u := range env {
		if u != UnitNone {
			seeded[r] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			u := e.from.unit
			if u == UnitNone && e.from.ref != "" {
				u = env[e.from.ref]
			}
			if u == UnitNone || u == UnitMixed {
				continue
			}
			if seeded[e.to] {
				continue // seeded destinations are checked, not overwritten
			}
			switch have := env[e.to]; {
			case have == UnitNone:
				env[e.to] = u
				changed = true
			case have != u && have != UnitMixed:
				env[e.to] = UnitMixed
				changed = true
			}
		}
	}

	resolve := func(v uval) Unit {
		if v.unit != UnitNone {
			return v.unit
		}
		if v.ref != "" {
			return env[v.ref]
		}
		return UnitNone
	}

	var diags []Diagnostic
	seen := map[string]bool{}
	for _, ch := range checks {
		ua, ub := resolve(ch.a), resolve(ch.b)
		if ua == UnitNone || ub == UnitNone || ua == UnitMixed || ub == UnitMixed || ua == ub {
			continue
		}
		var msg string
		switch ch.kind {
		case checkArith:
			msg = "mixed-unit arithmetic: " + ch.what + " combines " + ua.String() + " with " + ub.String()
		case checkAssign:
			msg = "unit-losing conversion: " + ub.String() + " value flows into " + ua.String() + " " + ch.what
		}
		key := ch.pos.String() + msg
		if seen[key] {
			continue
		}
		seen[key] = true
		diags = append(diags, Diagnostic{Rule: a.Name(), Pos: ch.pos, Message: msg})
	}
	return diags
}
