// Command r2c2-routing regenerates the routing-study results: the
// Figure 2 throughput table (saturation throughput of RPS, destination-tag,
// VLB and WLB across classic torus traffic patterns) and the Figure 18
// adaptive routing-protocol selection comparison.
//
// Usage:
//
//	r2c2-routing -fig2              # Figure 2 on the 8-ary 2-cube
//	r2c2-routing -fig18             # Figure 18 on the 512-node 3D torus
//	r2c2-routing -fig18 -k 4 -dims 3  # reduced scale
package main

import (
	"flag"
	"fmt"
	"os"

	"r2c2/internal/experiments"
	"r2c2/internal/genetic"
	"r2c2/internal/topology"
)

func main() {
	var (
		fig2   = flag.Bool("fig2", false, "regenerate the Figure 2 routing-throughput table")
		fig18  = flag.Bool("fig18", false, "regenerate the Figure 18 adaptive-selection comparison")
		k      = flag.Int("k", 8, "torus radix")
		dims   = flag.Int("dims", 3, "torus dimensions (fig18; fig2 always uses the paper's 8-ary 2-cube unless -k/-dims are set)")
		trials = flag.Int("worst-trials", 50, "random permutations searched for the worst-case row")
		pop    = flag.Int("population", 100, "GA population size (paper: 100)")
		gens   = flag.Int("generations", 50, "GA generation budget")
		seed   = flag.Int64("seed", 1, "random seed")
		csv    = flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	)
	flag.Parse()
	if !*fig2 && !*fig18 {
		*fig2, *fig18 = true, true
	}

	if *fig2 {
		kk, dd := *k, *dims
		if !flagSet("k") && !flagSet("dims") {
			kk, dd = 8, 2 // the paper's Figure 2 geometry
		}
		g, err := topology.NewTorus(kk, dd)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Figure 2 topology: %d-ary %d-cube (%d nodes)\n", kk, dd, g.Nodes())
		res := experiments.Fig2(g, *trials, *seed)
		render(res.Table(), *csv)
	}

	if *fig18 {
		s := experiments.PaperScale()
		s.K, s.Dims, s.Seed = *k, *dims, *seed
		fmt.Printf("Figure 18 topology: %d-ary %d-cube (%d nodes)\n", s.K, s.Dims, s.Torus().Nodes())
		res := experiments.Fig18(s,
			[]float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0},
			genetic.Config{Population: *pop, MaxGens: *gens})
		render(res.Table(), *csv)
	}
}

func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "r2c2-routing:", err)
	os.Exit(1)
}

// render prints a result table as aligned text or CSV.
func render(t *experiments.Table, csv bool) {
	if csv {
		fmt.Print("# ", t.Title, "\n", t.CSV())
		return
	}
	fmt.Println(t)
}
