package topology

import (
	"fmt"
	"sort"
)

// ReductionTree is a spanning tree over a partitioned fabric's rack-
// adjacency quotient graph: racks are vertices, and two racks are adjacent
// when any boundary link joins them. The sharded engine's control plane
// (sim, DESIGN.md §15) combines per-shard demand summaries bottom-up along
// this tree into one global view per recomputation tick — the same
// shortest-path BFS shape the §3 broadcast trees use to spread flow events,
// applied to the rack quotient instead of the node graph. Parent choice is
// deterministic (smallest adjacent rack at the previous BFS depth), so the
// reduction order is a pure function of the fabric.
//
// The tree is orchestration structure, not simulated traffic: summaries
// cross shards through the epoch barrier, never on fabric links, so a fault
// that later severs a quotient edge changes nothing about the reduction —
// it merely means the merge order no longer mirrors a live physical path.
type ReductionTree struct {
	root     int
	parent   []int   // parent[r] = parent rack of r; -1 at the root
	children [][]int // children[r] in ascending rack order
	order    []int   // BFS order from the root; reverse it for bottom-up merges
	depth    int     // maximum hops from the root to any rack
}

// NewReductionTree derives the reduction tree of a partitioned fabric,
// rooted at rack 0. It returns an error when the quotient graph is
// disconnected (some rack pair shares no boundary link path), which a
// ConnectRacks/NewFoldedClos fabric cannot produce.
func NewReductionTree(g *Graph, p *Partition) (*ReductionTree, error) {
	S := p.Shards()
	// Rack adjacency from the boundary links, deduplicated per direction.
	adj := make([][]int, S)
	seen := make(map[[2]int32]bool)
	for _, lid := range p.BoundaryLinks() {
		l := g.Link(lid)
		a, b := p.ShardOf(l.From), p.ShardOf(l.To)
		if a == b || seen[[2]int32{a, b}] {
			continue
		}
		seen[[2]int32{a, b}] = true
		adj[a] = append(adj[a], int(b))
	}
	t := &ReductionTree{
		root:     0,
		parent:   make([]int, S),
		children: make([][]int, S),
	}
	dist := make([]int, S)
	for r := range t.parent {
		t.parent[r] = -1
		dist[r] = -1
	}
	// BoundaryLinks is in ascending link order, so adj lists arrive in no
	// particular rack order; sorting them (and each BFS level) makes every
	// rack's parent the smallest adjacent rack at the previous depth,
	// independent of link enumeration order.
	for r := range adj {
		sort.Ints(adj[r])
	}
	dist[t.root] = 0
	level := []int{t.root}
	for len(level) > 0 {
		sort.Ints(level)
		t.order = append(t.order, level...)
		var next []int
		for _, r := range level {
			for _, c := range adj[r] {
				if dist[c] >= 0 {
					continue
				}
				dist[c] = dist[r] + 1
				t.parent[c] = r
				t.children[r] = append(t.children[r], c)
				next = append(next, c)
				if dist[c] > t.depth {
					t.depth = dist[c]
				}
			}
		}
		level = next
	}
	if len(t.order) != S {
		return nil, fmt.Errorf("topology: rack quotient graph is disconnected (%d of %d racks reachable from rack %d)", len(t.order), S, t.root)
	}
	return t, nil
}

// Root returns the rack the reduction converges at.
func (t *ReductionTree) Root() int { return t.root }

// Parent returns the parent rack of r, or -1 for the root.
func (t *ReductionTree) Parent(r int) int { return t.parent[r] }

// Children returns r's child racks in ascending order. The slice is owned
// by the tree.
func (t *ReductionTree) Children(r int) []int { return t.children[r] }

// Order returns the racks in BFS order from the root; iterating it in
// reverse visits every child before its parent — the bottom-up merge
// schedule. The slice is owned by the tree.
func (t *ReductionTree) Order() []int { return t.order }

// Depth returns the maximum hop count from the root to any rack: the
// reduction's critical-path length.
func (t *ReductionTree) Depth() int { return t.depth }
