package analysis

import (
	"strings"
	"testing"
)

func TestChanBlockBareSendNoReceiver(t *testing.T) {
	a := NewChanBlock()
	src := `package p
type S struct{ events chan int }
func (s *S) Emit(v int) { s.events <- v }`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "m/p.S.events") {
		t.Errorf("message %q should name the channel class", diags[0].Message)
	}
}

func TestChanBlockPairedAcrossFunctions(t *testing.T) {
	// The receive lives in another method (even another package would
	// do): the send's channel class is received somewhere, so no finding.
	a := NewChanBlock()
	src := `package p
type S struct{ events chan int }
func (s *S) Emit(v int) { s.events <- v }
func (s *S) Drain() int { return <-s.events }`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 0 {
		t.Fatalf("got %d findings, want 0: %v", len(diags), diags)
	}
}

func TestChanBlockPairedAcrossPackages(t *testing.T) {
	a := NewChanBlock()
	pkgs := map[string]map[string]string{
		"m/p": {"p.go": `package p
type S struct{ Events chan int }
func (s *S) Emit(v int) { s.Events <- v }`},
		"m/q": {"q.go": `package q
import "m/p"
func Drain(s *p.S) {
	for range s.Events {
	}
}`},
	}
	diags := checkModule(t, pkgs, a)
	if len(diags) != 0 {
		t.Fatalf("got %d findings, want 0: %v", len(diags), diags)
	}
}

func TestChanBlockSelectDefaultEscapes(t *testing.T) {
	a := NewChanBlock()
	src := `package p
type S struct{ events chan int }
func (s *S) TryEmit(v int) bool {
	select {
	case s.events <- v:
		return true
	default:
		return false
	}
}`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 0 {
		t.Fatalf("got %d findings, want 0: %v", len(diags), diags)
	}
}

func TestChanBlockLifecycleCaseEscapes(t *testing.T) {
	a := NewChanBlock()
	src := `package p
import "context"
type S struct{ events chan int }
func (s *S) Emit(ctx context.Context, v int) {
	select {
	case s.events <- v:
	case <-ctx.Done():
	}
}`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 0 {
		t.Fatalf("got %d findings, want 0: %v", len(diags), diags)
	}
}

func TestChanBlockSelectWithoutEscapeStillFlagged(t *testing.T) {
	// A select whose only other case is a non-lifecycle receive does not
	// guarantee progress; the send is flagged when nothing receives the
	// class.
	a := NewChanBlock()
	src := `package p
type S struct {
	events chan int
	other  chan int
}
func produceOther(s *S) { s.other <- 1 }
func (s *S) Emit(v int) {
	select {
	case s.events <- v:
	case x := <-s.other:
		_ = x
	}
}`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "m/p.S.events") {
		t.Errorf("finding should be about S.events, got %q", diags[0].Message)
	}
}

func TestChanBlockRangeCountsAsReceive(t *testing.T) {
	a := NewChanBlock()
	src := `package p
type S struct{ events chan int }
func (s *S) Emit(v int) { s.events <- v }
func (s *S) Loop() {
	for e := range s.events {
		_ = e
	}
}`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 0 {
		t.Fatalf("got %d findings, want 0: %v", len(diags), diags)
	}
}

func TestChanBlockSuppression(t *testing.T) {
	a := NewChanBlock()
	src := `package p
type S struct{ events chan int }
func (s *S) Emit(v int) {
	//lint:ignore chan-block receiver lives in generated code outside this module
	s.events <- v
}`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 0 {
		t.Fatalf("got %d findings, want 0: %v", len(diags), diags)
	}
}
