// Package policy maps high-level datacenter allocation policies onto
// R2C2's two allocation primitives — a flow weight and a priority —
// exactly as §3.3.2 prescribes: "Many recently proposed high-level
// fairness policies such as deadline-based [46] or tenant-based [37] can
// be mapped onto these two primitives, similar to pFabric."
//
// The mappings are deliberately simple, quantising onto the single weight
// byte and priority byte the broadcast packet carries (Figure 6).
package policy

import (
	"fmt"
	"sort"

	"r2c2/internal/simtime"
)

// Class is what a policy assigns to a flow: the two broadcastable
// allocation primitives.
type Class struct {
	Weight   uint8
	Priority uint8
}

// TenantID names a tenant.
type TenantID string

// Tenant implements tenant-based network sharing (FairCloud-style [37]):
// each tenant holds a share, and a tenant's flows carry weights
// proportional to that share, so tenants receive bandwidth in proportion
// to their shares on every congested link regardless of flow counts —
// when shares are divided across a tenant's active flows — or per-flow
// weighted fairness when they are not.
type Tenant struct {
	shares map[TenantID]float64
	// DividePerFlow divides a tenant's share across its active flows
	// (per-tenant guarantees) instead of granting it per flow.
	DividePerFlow bool
}

// NewTenant builds a tenant policy from shares. Shares must be positive;
// they are normalised internally.
func NewTenant(shares map[TenantID]float64) (*Tenant, error) {
	if len(shares) == 0 {
		return nil, fmt.Errorf("policy: no tenants")
	}
	min := 0.0
	for id, s := range shares {
		if s <= 0 {
			return nil, fmt.Errorf("policy: tenant %q has non-positive share %v", id, s)
		}
		if min == 0 || s < min {
			min = s
		}
	}
	norm := make(map[TenantID]float64, len(shares))
	for id, s := range shares {
		norm[id] = s / min // smallest share maps to weight 1
	}
	return &Tenant{shares: norm}, nil
}

// ClassFor returns the allocation class for one of a tenant's flows, given
// how many flows the tenant currently has active (used only when
// DividePerFlow is set).
func (t *Tenant) ClassFor(id TenantID, activeFlows int) (Class, error) {
	s, ok := t.shares[id]
	if !ok {
		return Class{}, fmt.Errorf("policy: unknown tenant %q", id)
	}
	if t.DividePerFlow && activeFlows > 1 {
		s /= float64(activeFlows)
	}
	return Class{Weight: quantizeWeight(s)}, nil
}

// Tenants returns the tenant IDs in deterministic order.
func (t *Tenant) Tenants() []TenantID {
	out := make([]TenantID, 0, len(t.shares))
	for id := range t.shares {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Deadline implements deadline-based scheduling (D3/D2TCP-style [46]):
// flows with deadlines ride above best-effort traffic, in priority bands
// by urgency, with weights proportional to the rate a flow needs to meet
// its deadline (size / time-remaining).
type Deadline struct {
	// Bands is the number of deadline priority bands above best effort
	// (default 3; the wire priority field allows up to 255).
	Bands uint8
	// BandEdges are the required-rate thresholds (bits/s) separating the
	// bands, ascending. A flow whose required rate exceeds BandEdges[i]
	// lands in band i+1 or higher. Defaults to {1e9, 5e9}²-style edges
	// derived from LinkBits.
	BandEdges []float64
	// LinkBits is the fabric link capacity used for defaults and weight
	// scaling (default 10e9).
	LinkBits float64
}

func (d *Deadline) defaults() {
	if d.Bands == 0 {
		d.Bands = 3
	}
	if d.LinkBits == 0 {
		d.LinkBits = 10e9
	}
	if d.BandEdges == nil {
		d.BandEdges = make([]float64, d.Bands-1)
		for i := range d.BandEdges {
			// Evenly spaced urgency edges at fractions of link capacity.
			d.BandEdges[i] = d.LinkBits * float64(i+1) / float64(d.Bands)
		}
	}
}

// ClassFor maps a flow with sizeBytes remaining and a deadline
// `remaining` from now onto a class: priority 0 is best effort (no
// deadline); deadline flows occupy priorities 1..Bands by required rate,
// with weight proportional to required rate so that within a band, more
// urgent flows get proportionally more.
func (d *Deadline) ClassFor(sizeBytes int64, remaining simtime.Time) Class {
	d.defaults()
	if remaining <= 0 {
		// Missed or immediate deadline: topmost band, maximum weight —
		// finish it as fast as the fabric allows.
		return Class{Weight: 255, Priority: d.Bands}
	}
	required := float64(sizeBytes*8) / remaining.Seconds()
	band := uint8(1)
	for _, edge := range d.BandEdges {
		if required > edge {
			band++
		}
	}
	w := required / d.LinkBits * 64 // weight 64 ≈ needs a full link
	return Class{Weight: quantizeWeight(w), Priority: band}
}

// BestEffort is the class for deadline-less traffic under a Deadline
// policy: priority 0, unit weight.
func (d *Deadline) BestEffort() Class { return Class{Weight: 1, Priority: 0} }

// quantizeWeight clamps a positive real weight onto the wire's byte.
func quantizeWeight(w float64) uint8 {
	if w < 1 {
		return 1
	}
	if w > 255 {
		return 255
	}
	return uint8(w + 0.5)
}
