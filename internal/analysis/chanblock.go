package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// chanBlock classifies every channel in the module by class (the field or
// variable holding it) and pairs sends with receives module-wide. A send
// that can block forever — not inside a select with a default or a
// lifecycle-channel case, on a channel class with no receive anywhere in
// the module — wedges its goroutine permanently: the emulator's Stop()
// then waits on a WaitGroup that never drains. This is the dataflow
// deepening of the syntactic goroutine-leak rule: that one asks "can this
// goroutine exit", this one asks "can this send ever complete".
type chanBlock struct{ pkgScope }

// NewChanBlock builds the chan-block rule scoped to the given package
// path suffixes (empty = all packages).
func NewChanBlock(pkgs ...string) ModuleAnalyzer { return &chanBlock{pkgScope{pkgs}} }

func (*chanBlock) Name() string { return "chan-block" }
func (*chanBlock) Doc() string {
	return "flag channel sends that can block forever: no select escape and no paired receiver in the module"
}

// cbSend is one send site.
type cbSend struct {
	class  string
	pos    token.Position
	escape bool // inside a select with a default or lifecycle case
}

// cbFacts is one package's contribution.
type cbFacts struct {
	sends    []cbSend
	receives map[string]bool // classes received from somewhere
}

func (a *chanBlock) Collect(pass *TypedPass) any {
	facts := &cbFacts{receives: map[string]bool{}}
	c := &cbCollector{pass: pass, facts: facts}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := fd.Name.Name
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				key = obj.FullName()
			}
			c.walk(fd.Body, key)
		}
	}
	return facts
}

type cbCollector struct {
	pass  *TypedPass
	facts *cbFacts
}

func (c *cbCollector) walk(body ast.Node, fnKey string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SelectStmt:
			escape := selectEscapes(v)
			for _, clause := range v.Body.List {
				comm := clause.(*ast.CommClause)
				switch stmt := comm.Comm.(type) {
				case *ast.SendStmt:
					c.facts.sends = append(c.facts.sends, cbSend{
						class:  c.chanClass(stmt.Chan, fnKey),
						pos:    c.pass.Fset.Position(stmt.Pos()),
						escape: escape,
					})
				case *ast.ExprStmt:
					if recv, ok := stmt.X.(*ast.UnaryExpr); ok && recv.Op == token.ARROW {
						c.facts.receives[c.chanClass(recv.X, fnKey)] = true
					}
				case *ast.AssignStmt:
					for _, rhs := range stmt.Rhs {
						if recv, ok := rhs.(*ast.UnaryExpr); ok && recv.Op == token.ARROW {
							c.facts.receives[c.chanClass(recv.X, fnKey)] = true
						}
					}
				}
				for _, inner := range comm.Body {
					c.walk(inner, fnKey)
				}
			}
			return false
		case *ast.SendStmt:
			c.facts.sends = append(c.facts.sends, cbSend{
				class: c.chanClass(v.Chan, fnKey),
				pos:   c.pass.Fset.Position(v.Pos()),
			})
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				c.facts.receives[c.chanClass(v.X, fnKey)] = true
			}
		case *ast.RangeStmt:
			if tv, ok := c.pass.Info.Types[v.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					c.facts.receives[c.chanClass(v.X, fnKey)] = true
				}
			}
		}
		return true
	})
}

// selectEscapes reports whether a select can always make progress: a
// default clause, or a case receiving from a lifecycle channel
// (ctx.Done(), a done/quit/stop channel) that a shutdown will fire.
func selectEscapes(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		comm := clause.(*ast.CommClause)
		if comm.Comm == nil {
			return true // default:
		}
		expr := ast.Expr(nil)
		switch stmt := comm.Comm.(type) {
		case *ast.ExprStmt:
			expr = stmt.X
		case *ast.AssignStmt:
			if len(stmt.Rhs) == 1 {
				expr = stmt.Rhs[0]
			}
		}
		recv, ok := expr.(*ast.UnaryExpr)
		if !ok || recv.Op != token.ARROW {
			continue
		}
		if isLifecycleExpr(recv.X) {
			return true
		}
	}
	return false
}

// isLifecycleExpr matches ctx.Done(), r.ctx.Done(), done, x.quit, … — the
// shutdown-signal idioms the goroutine-leak rule also recognises.
func isLifecycleExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return isLifecycleName(v.Name)
	case *ast.SelectorExpr:
		return isLifecycleName(v.Sel.Name)
	case *ast.CallExpr:
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
			return isLifecycleName(sel.Sel.Name)
		}
		if id, ok := v.Fun.(*ast.Ident); ok {
			return isLifecycleName(id.Name)
		}
	}
	return false
}

// chanClass names the channel a send/receive operates on, so endpoints
// pair up module-wide: a struct-field channel is "pkg.Type.field"
// (instances share the class), a local or package variable is scoped to
// its function or package.
func (c *cbCollector) chanClass(x ast.Expr, fnKey string) string {
	switch v := x.(type) {
	case *ast.SelectorExpr:
		// Qualified package-level channel (othpkg.Events): class by the
		// package path so both sides of the package boundary agree.
		if id, ok := v.X.(*ast.Ident); ok {
			if pn, ok := c.pass.Info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() + "." + v.Sel.Name
			}
		}
		if tv, ok := c.pass.Info.Types[v.X]; ok {
			return typeName(tv.Type) + "." + v.Sel.Name
		}
		return "?." + v.Sel.Name
	case *ast.Ident:
		obj := c.pass.Info.Uses[v]
		if obj == nil {
			obj = c.pass.Info.Defs[v]
		}
		if obj != nil && obj.Parent() == c.pass.Pkg.Scope() {
			return c.pass.Path + "." + v.Name
		}
		// Local channels (including channel-typed parameters, which give
		// the same name at caller and callee only by convention) scope to
		// the function.
		return fnKey + "." + v.Name
	case *ast.CallExpr:
		// A channel returned by a call (f.Done(), time.After(…)): class
		// by the callee, which pairs a getter's send and receive sides.
		switch fn := v.Fun.(type) {
		case *ast.SelectorExpr:
			if obj, ok := c.pass.Info.Uses[fn.Sel].(*types.Func); ok {
				return "call:" + obj.FullName()
			}
		case *ast.Ident:
			if obj, ok := c.pass.Info.Uses[fn].(*types.Func); ok {
				return "call:" + obj.FullName()
			}
		}
		return "call:?"
	case *ast.ParenExpr:
		return c.chanClass(v.X, fnKey)
	}
	return "?"
}

// Resolve pairs sends with receives module-wide and flags the sends that
// can block with no escape and no receiver.
func (a *chanBlock) Resolve(facts []PackageFacts) []Diagnostic {
	received := map[string]bool{}
	var sends []cbSend
	for _, pf := range facts {
		f := pf.Facts.(*cbFacts)
		for class := range f.receives {
			received[class] = true
		}
		sends = append(sends, f.sends...)
	}
	var diags []Diagnostic
	for _, s := range sends {
		if s.escape || received[s.class] {
			continue
		}
		diags = append(diags, Diagnostic{
			Rule: a.Name(),
			Pos:  s.pos,
			Message: "send on " + s.class + " can block forever: no select escape " +
				"(default or lifecycle case) and no receive on this channel anywhere in the module",
		})
	}
	return diags
}
