package emu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"r2c2/internal/faults"
	"r2c2/internal/routing"
	"r2c2/internal/topology"
)

// TestEmuFaultsUnderTraffic drives fault swaps and live traffic at the
// same time: worker goroutines keep flows in flight across every node
// pair while ApplyFaults replays a schedule of link flaps and a node
// crash against the running rack. Its purpose is the interleaving, not
// the counters — under `go test -race` it makes the detector watch
// swapFabric (atomic.Pointer store + faultMu) race against flowSender's
// fabric loads, linkLoop delivery and Flow.abort. Flows touching the
// crashed node legitimately abort or fail to start; everything else must
// keep completing through the swaps.
func TestEmuFaultsUnderTraffic(t *testing.T) {
	g, err := topology.NewTorus(2, 3) // the 8-node rack
	if err != nil {
		t.Fatal(err)
	}
	sched, err := faults.Generate(g, faults.GenConfig{
		Seed:    3,
		Horizon: 60 * time.Millisecond,
		Flaps:   2,
		Crash:   true,
		DownFor: 20 * time.Millisecond,
		Detect:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := newRack(t, Config{Graph: g, LinkMbps: 100, Recompute: time.Millisecond, Protocol: routing.RPS})

	// Deterministic pair list; workers stride through it so traffic covers
	// the whole rack, including pairs the schedule will break.
	var pairs [][2]topology.NodeID
	for src := 0; src < g.Nodes(); src++ {
		for dst := 0; dst < g.Nodes(); dst++ {
			if src != dst {
				pairs = append(pairs, [2]topology.NodeID{topology.NodeID(src), topology.NodeID(dst)})
			}
		}
	}

	var (
		wg        sync.WaitGroup
		stop      = make(chan struct{})
		completed atomic.Uint64
		disrupted atomic.Uint64
	)
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i += workers {
				select {
				case <-stop:
					return
				default:
				}
				p := pairs[i%len(pairs)]
				f, err := r.StartFlow(p[0], p[1], 64<<10, 1, 0)
				if err != nil {
					disrupted.Add(1) // endpoint already failed
					continue
				}
				// The emulator has no end-to-end retransmission (Config doc):
				// a flow that loses bytes to a flap mid-flight never
				// completes. Aborts return immediately; the short timeout
				// only bounds those wedged-by-design flows.
				if err := f.Wait(2 * time.Second); err != nil {
					disrupted.Add(1)
					continue
				}
				completed.Add(1)
			}
		}(w)
	}

	// Let traffic ramp before the first injection so the early swaps hit
	// flows mid-flight rather than an idle fabric.
	time.Sleep(5 * time.Millisecond)
	r.ApplyFaults(sched)

	deadline := time.Now().Add(10 * time.Second)
	want := uint64(sched.Waves())
	for time.Now().Before(deadline) && r.Reroutes() < want {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if got := r.Reroutes(); got < want {
		t.Fatalf("reroutes = %d, want >= %d (schedule waves)\nschedule:\n%s", got, want, sched)
	}
	if completed.Load() == 0 {
		t.Fatal("no flow completed while the schedule replayed")
	}
	if disrupted.Load() == 0 {
		t.Fatal("no flow was disrupted — traffic never raced a swap; strengthen the schedule")
	}
	t.Logf("completed=%d disrupted=%d reroutes=%d", completed.Load(), disrupted.Load(), r.Reroutes())
}
