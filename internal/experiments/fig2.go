package experiments

import (
	"r2c2/internal/routing"
	"r2c2/internal/topology"
	"r2c2/internal/trafficgen"
)

// Fig2Result is the routing-throughput table of Figure 2: saturation
// throughput (fraction of link capacity injectable per node) of each
// routing algorithm on each traffic pattern of an 8-ary 2-cube.
type Fig2Result struct {
	Patterns  []string
	Protocols []routing.Protocol
	// Throughput[pattern][protocol].
	Throughput [][]float64
}

// Fig2 reproduces the Figure 2 table. worstTrials controls the adversarial
// permutation search for the "worst-case" row.
func Fig2(g *topology.Graph, worstTrials int, seed int64) *Fig2Result {
	tab := routing.NewTable(g)
	protocols := []routing.Protocol{routing.RPS, routing.DOR, routing.VLB, routing.WLB}

	type pattern struct {
		name    string
		demands []routing.Demand
	}
	patterns := []pattern{
		{"nearest-neighbor", trafficgen.NearestNeighbor(g)},
		{"uniform", trafficgen.Uniform(g)},
		{"bit-complement", trafficgen.BitComplement(g)},
	}
	if g.Dims() == 2 {
		patterns = append(patterns, pattern{"transpose", trafficgen.Transpose(g)})
	}
	patterns = append(patterns, pattern{"tornado", trafficgen.Tornado(g)})

	res := &Fig2Result{Protocols: protocols}
	for _, p := range patterns {
		res.Patterns = append(res.Patterns, p.name)
		row := make([]float64, len(protocols))
		for j, proto := range protocols {
			row[j] = routing.SaturationThroughput(tab, proto, p.demands)
		}
		res.Throughput = append(res.Throughput, row)
	}
	// Worst case: per-protocol adversarial search (the worst pattern
	// differs per algorithm, as the paper notes).
	res.Patterns = append(res.Patterns, "worst-case")
	worst := make([]float64, len(protocols))
	for j, proto := range protocols {
		_, thr := trafficgen.WorstCase(tab, proto, worstTrials, seed)
		worst[j] = thr
	}
	res.Throughput = append(res.Throughput, worst)
	return res
}

// Table renders the result.
func (r *Fig2Result) Table() *Table {
	t := &Table{Title: "Figure 2: routing throughput (fraction of capacity)",
		Header: []string{"pattern"}}
	for _, p := range r.Protocols {
		t.Header = append(t.Header, p.String())
	}
	for i, name := range r.Patterns {
		row := []string{name}
		for _, v := range r.Throughput[i] {
			row = append(row, f2(v))
		}
		t.AddRow(row...)
	}
	return t
}

// Get returns the throughput for a named pattern and protocol.
func (r *Fig2Result) Get(pattern string, proto routing.Protocol) float64 {
	for i, p := range r.Patterns {
		if p != pattern {
			continue
		}
		for j, pr := range r.Protocols {
			if pr == proto {
				return r.Throughput[i][j]
			}
		}
	}
	return -1
}
