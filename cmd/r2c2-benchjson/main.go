// Command r2c2-benchjson converts `go test -bench` output on stdin into a
// JSON object on stdout: benchmark name → {unit → value} for every metric
// the benchmark reported (ns/op, B/op, allocs/op, custom units such as
// events/run or MB/s). `make bench-json` pipes the micro-benchmark suite
// through it to produce BENCH_sim.json, the perf-trajectory artifact CI
// records on every run.
//
// With -emu FILE, benchmarks whose name contains "Emu" (the wall-clock
// emulator data path) are split out into FILE instead of stdout, so the
// simulator and emulator perf trajectories are tracked as separate
// artifacts: emulator numbers move with machine load, simulator numbers
// should not.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	emuPath := flag.String("emu", "", "write emulator benchmarks (name contains \"Emu\") to this file instead of stdout")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *emuPath); err != nil {
		fmt.Fprintln(os.Stderr, "r2c2-benchjson:", err)
		os.Exit(1)
	}
}

func run(stdin io.Reader, stdout io.Writer, emuPath string) error {
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := make(map[string]map[string]float64)
	emu := make(map[string]map[string]float64)
	for sc.Scan() {
		name, metrics, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		dest := out
		if emuPath != "" && strings.Contains(name, "Emu") {
			dest = emu
		}
		m := dest[name]
		if m == nil {
			m = make(map[string]float64)
			dest[name] = m
		}
		for unit, v := range metrics {
			m[unit] = v
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(out) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}
	if emuPath != "" {
		if len(emu) == 0 {
			return fmt.Errorf("-emu %s: no emulator benchmark lines on stdin", emuPath)
		}
		f, err := os.Create(emuPath)
		if err != nil {
			return err
		}
		if err := writeJSON(f, emu); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return writeJSON(stdout, out)
}

func writeJSON(w io.Writer, v map[string]map[string]float64) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v) // map keys marshal sorted: stable artifact diffs
}

// parseBenchLine parses one result line of `go test -bench` output:
//
//	BenchmarkName-8   30   38674206 ns/op   74008 events/run   54502 allocs/op
//
// i.e. the benchmark name (with the -GOMAXPROCS suffix, which is stripped),
// the iteration count, then value/unit pairs.
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", nil, false // e.g. "Benchmarking..." prose, not a result
	}
	metrics := make(map[string]float64)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = v
	}
	return trimProcSuffix(fields[0]), metrics, true
}

// trimProcSuffix strips the trailing -GOMAXPROCS decoration go test appends
// to benchmark names, so the JSON keys are stable across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
