package experiments

import (
	"time"

	"r2c2/internal/core"
	"r2c2/internal/fluid"
	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/stats"
	"r2c2/internal/trafficgen"
	"r2c2/internal/wire"
)

// AtomSlowdown stands in for the Intel Atom D510 of Figure 8. The paper's
// measurements put the first-generation Atom at roughly 20x the per-
// recomputation cost of the Xeon E5-2665 (median 33.5% vs 1.7% at
// ρ = 500 µs); lacking the physical part, we report host-CPU times scaled
// by this factor (see DESIGN.md, Substitutions).
const AtomSlowdown = 20.0

// Fig8Result records, per recomputation interval ρ, the distribution of
// CPU overhead: the wall-clock cost of one rate recomputation divided by ρ
// (so values above 1.0 mean the interval is infeasible).
type Fig8Result struct {
	Rhos []simtime.Time
	// Host-CPU overhead fractions ("Xeon-class" in the paper's setup) of
	// the from-scratch water-filling.
	MedianHost, P99Host []float64
	// The same scaled by AtomSlowdown.
	MedianAtom, P99Atom []float64
	// Host-CPU overhead of the delta-driven incremental path over the same
	// tick sequence (consecutive views differ by the flow events of one ρ).
	MedianInc, P99Inc []float64
	// MeanFlows is the average number of flows per recomputation (the
	// batch filter drops flows shorter than ρ, which is why large ρ cost
	// less).
	MeanFlows []float64
}

// Fig8 measures recomputation cost over a replayed flow trace: the fluid
// model provides each flow's lifetime; at every tick of ρ, the rate
// computation runs over the flows alive at that instant that have lasted
// at least one full interval (§3.3.2's batch filter), and its wall-clock
// time is measured.
func Fig8(s Scale, tau simtime.Time, rhos []simtime.Time, maxTicks int) *Fig8Result {
	g := s.Torus()
	tab := routing.NewTable(g)
	arrivals := trafficgen.Poisson(trafficgen.PoissonConfig{
		Nodes: g.Nodes(), MeanInterval: tau, Count: s.Flows, Seed: s.Seed,
	})
	// One fluid pass yields every flow's [start, end) interval.
	lifetimes := fluid.Run(fluid.Config{
		Tab: tab, Protocol: routing.RPS,
		CapacityBits: s.LinkGbps * 1e9, Headroom: 0.05,
		Recompute: simtime.FromSeconds(core.DefaultRho.Seconds()),
	}, arrivals)

	// §4.2: the prototype precomputes the per-{protocol, destination}
	// link-weight vectors (<6 MB per protocol), so recomputation cost is
	// the water-filling itself. Warm the φ cache over every pair the trace
	// uses before timing anything.
	for _, a := range arrivals {
		tab.Phi(routing.RPS, a.Src, a.Dst)
	}

	var end simtime.Time
	for _, fr := range lifetimes.Flows {
		if fr.Ended > end {
			end = fr.Ended
		}
	}
	res := &Fig8Result{Rhos: rhos,
		MedianHost: make([]float64, len(rhos)), P99Host: make([]float64, len(rhos)),
		MedianAtom: make([]float64, len(rhos)), P99Atom: make([]float64, len(rhos)),
		MedianInc: make([]float64, len(rhos)), P99Inc: make([]float64, len(rhos)),
		MeanFlows: make([]float64, len(rhos))}
	// Each ρ gets its own RateComputer (the delta-driven incremental path
	// keeps per-instance state, so instances must not be shared); the per-ρ
	// replays are independent and run on s.Parallel workers. Note this is a
	// wall-clock measurement: on a loaded machine, parallel replays contend
	// for cores and can inflate the measured cost.
	parallelFor(s.Parallel, len(rhos), func(ri int) {
		rho := rhos[ri]
		rc := core.NewRateComputer(tab, s.LinkGbps*1e9, 0.05)
		var overhead, overheadInc stats.Sample
		var flowsPerTick stats.Sample
		ticks := 0
		for t := rho; t < end && ticks < maxTicks; t += rho {
			view := core.NewView()
			for i, fr := range lifetimes.Flows {
				if fr.Started <= t-rho && fr.Ended > t { // alive for >= one interval
					a := arrivals[i]
					view.AddFlow(core.FlowInfo{
						ID:         wire.MakeFlowID(uint16(a.Src), uint16(i)),
						Src:        a.Src,
						Dst:        a.Dst,
						Weight:     1,
						DemandKbps: core.UnlimitedDemand,
						Protocol:   routing.RPS,
					})
				}
			}
			start := time.Now()
			rc.ComputeFull(view)
			cost := time.Since(start).Seconds()
			// The delta-driven path sees the same tick sequence, so each
			// Compute replays exactly the flow events of one ρ interval.
			start = time.Now()
			rc.Compute(view)
			costInc := time.Since(start).Seconds()
			overhead.Add(cost / rho.Seconds())
			overheadInc.Add(costInc / rho.Seconds())
			flowsPerTick.Add(float64(view.Len()))
			ticks++
		}
		res.MedianHost[ri] = overhead.Median()
		res.P99Host[ri] = overhead.Percentile(99)
		res.MedianAtom[ri] = overhead.Median() * AtomSlowdown
		res.P99Atom[ri] = overhead.Percentile(99) * AtomSlowdown
		res.MedianInc[ri] = overheadInc.Median()
		res.P99Inc[ri] = overheadInc.Percentile(99)
		res.MeanFlows[ri] = flowsPerTick.Mean()
	})
	return res
}

// Table renders Figure 8. Intervals longer than the replayed trace have no
// ticks to measure and render as "n/a".
func (r *Fig8Result) Table() *Table {
	t := &Table{Title: "Figure 8: CPU overhead of rate recomputation",
		Header: []string{"rho", "flows/tick", "full-median", "full-p99", "inc-median", "inc-p99", "atom-median", "atom-p99"}}
	for i, rho := range r.Rhos {
		if r.MeanFlows[i] != r.MeanFlows[i] { // NaN: no ticks sampled
			t.AddRow(rho.String(), "n/a", "n/a", "n/a", "n/a", "n/a", "n/a", "n/a")
			continue
		}
		t.AddRow(rho.String(), f2(r.MeanFlows[i]),
			pct(r.MedianHost[i]), pct(r.P99Host[i]),
			pct(r.MedianInc[i]), pct(r.P99Inc[i]),
			pct(r.MedianAtom[i]), pct(r.P99Atom[i]))
	}
	return t
}

func pct(v float64) string { return f2(v*100) + "%" }
