package routing

import (
	"math"
	"testing"

	"r2c2/internal/topology"
)

// enumerate walks every minimal path from v to dst, carrying the
// probability of per-hop uniform spraying, and accumulates exact per-link
// probabilities — an independent reference for the φ dynamic program.
func enumerate(g *topology.Graph, succ [][]topology.LinkID, v, dst topology.NodeID,
	prob float64, acc map[topology.LinkID]float64) {
	if v == dst {
		return
	}
	links := succ[v]
	share := prob / float64(len(links))
	for _, lid := range links {
		acc[lid] += share
		enumerate(g, succ, g.Link(lid).To, dst, share, acc)
	}
}

// The φ DP must agree exactly with brute-force path enumeration.
func TestPhiRPSMatchesEnumeration(t *testing.T) {
	g := torus(t, 4, 2)
	tab := NewTable(g)
	for _, pair := range [][2]topology.NodeID{
		{0, 1},                     // neighbours
		{0, g.NodeAt([]int{1, 1})}, // 2-hop corner
		{0, g.NodeAt([]int{2, 1})}, // 3 hops
		{0, g.NodeAt([]int{2, 2})}, // 4 hops, ties in both dims
		{5, g.NodeAt([]int{3, 2})}, // off-origin
	} {
		src, dst := pair[0], pair[1]
		acc := make(map[topology.LinkID]float64)
		enumerate(g, g.MinimalSuccessors(dst), src, dst, 1.0, acc)
		phi := tab.Phi(RPS, src, dst)
		if len(phi.Links) != len(acc) {
			t.Fatalf("%d->%d: DP touches %d links, enumeration %d", src, dst, len(phi.Links), len(acc))
		}
		for i, lid := range phi.Links {
			if math.Abs(phi.Frac[i]-acc[lid]) > 1e-12 {
				t.Fatalf("%d->%d link %d: DP %v, enumeration %v", src, dst, lid, phi.Frac[i], acc[lid])
			}
		}
	}
}

// VLB φ must equal brute-force two-phase enumeration over every waypoint.
func TestPhiVLBMatchesEnumeration(t *testing.T) {
	g := torus(t, 3, 2)
	tab := NewTable(g)
	src, dst := topology.NodeID(0), topology.NodeID(5)
	want := make(map[topology.LinkID]float64)
	n := float64(g.Nodes())
	for w := 0; w < g.Nodes(); w++ {
		wp := topology.NodeID(w)
		phase := make(map[topology.LinkID]float64)
		if wp != src {
			enumerate(g, g.MinimalSuccessors(wp), src, wp, 1.0, phase)
		}
		if wp != dst {
			enumerate(g, g.MinimalSuccessors(dst), wp, dst, 1.0, phase)
		}
		for lid, f := range phase {
			want[lid] += f / n
		}
	}
	phi := tab.Phi(VLB, src, dst)
	dense := make(map[topology.LinkID]float64)
	for i, lid := range phi.Links {
		dense[lid] = phi.Frac[i]
	}
	for lid, f := range want {
		if math.Abs(dense[lid]-f) > 1e-12 {
			t.Fatalf("link %d: DP %v, enumeration %v", lid, dense[lid], f)
		}
	}
	for lid := range dense {
		if _, ok := want[lid]; !ok && dense[lid] > 1e-12 {
			t.Fatalf("DP uses link %d that enumeration never visits", lid)
		}
	}
}
