package routing_test

import (
	"fmt"

	"r2c2/internal/routing"
	"r2c2/internal/topology"
)

// A corner-to-corner flow under random packet spraying splits evenly over
// both minimal first hops — the Figure 3 example of the paper.
func ExampleTable_Phi() {
	g, _ := topology.NewTorus(4, 2)
	tab := routing.NewTable(g)
	src := g.NodeAt([]int{0, 0})
	dst := g.NodeAt([]int{1, 1})
	phi := tab.Phi(routing.RPS, src, dst)
	for i, lid := range phi.Links {
		l := g.Link(lid)
		fmt.Printf("link %d->%d carries %.2f of the flow\n", l.From, l.To, phi.Frac[i])
	}
	// Output:
	// link 0->1 carries 0.50 of the flow
	// link 0->4 carries 0.50 of the flow
	// link 1->5 carries 0.50 of the flow
	// link 4->5 carries 0.50 of the flow
}

// Saturation throughput of uniform traffic on the paper's 8-ary 2-cube:
// minimal routing achieves 1.0, Valiant exactly half (Figure 2).
func ExampleSaturationThroughput() {
	g, _ := topology.NewTorus(8, 2)
	tab := routing.NewTable(g)
	var uniform []routing.Demand
	n := g.Nodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				uniform = append(uniform, routing.Demand{
					Src: topology.NodeID(s), Dst: topology.NodeID(d), Rate: 1 / float64(n-1)})
			}
		}
	}
	fmt.Printf("VLB: %.2f\n", routing.SaturationThroughput(tab, routing.VLB, uniform))
	// Output:
	// VLB: 0.50
}
