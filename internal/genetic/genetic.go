// Package genetic implements R2C2's routing-protocol selection heuristic
// (§3.4): a genetic algorithm over per-flow routing-protocol assignments.
//
// Exhaustive search over assignments is combinatorial (2^512 for one
// protocol bit per flow at rack scale) and the utility landscape has many
// local maxima, which defeats hill climbing; the paper settled on a genetic
// algorithm for its few tuning parameters and natural bit-string encoding.
// Genotypes are []uint8 protocol choices per flow, fitness is a
// caller-supplied global utility (aggregate rack throughput by default),
// and evolution proceeds by elitism, crossover and mutation until
// improvement stalls or the generation budget runs out.
package genetic

import (
	"fmt"
	"math/rand"
	"sort"

	"r2c2/internal/routing"
	"r2c2/internal/waterfill"
)

// Config tunes the search. Zero values select the paper's parameters:
// population 100, mutation probability 0.01.
type Config struct {
	Population int     // genotypes per generation (default 100)
	Mutation   float64 // per-gene mutation probability (default 0.01)
	Elite      int     // genotypes carried over unchanged (default 10%)
	MaxGens    int     // generation budget (default 50)
	StallGens  int     // stop after this many generations without improvement (default 10)
	Seed       int64
}

func (c *Config) defaults() {
	if c.Population == 0 {
		c.Population = 100
	}
	if c.Mutation == 0 {
		c.Mutation = 0.01
	}
	if c.Elite == 0 {
		c.Elite = c.Population / 10
		if c.Elite < 1 {
			c.Elite = 1
		}
	}
	if c.MaxGens == 0 {
		c.MaxGens = 50
	}
	if c.StallGens == 0 {
		c.StallGens = 10
	}
}

// Fitness evaluates a candidate assignment (one protocol index per flow,
// indexing into the protocol set passed to Optimize) and returns its global
// utility. Higher is better.
type Fitness func(assignment []uint8) float64

// Result is the outcome of a search.
type Result struct {
	Assignment  []uint8 // best protocol index per flow
	Utility     float64 // its fitness
	Generations int     // generations actually evaluated
}

// Optimize searches for the assignment of one of `choices` protocols to
// each of nFlows flows that maximises fitness. The search population is
// seeded with `current` (the live assignment), with every uniform
// single-protocol assignment (so the result can never lose to a
// network-wide baseline), and with uniform random genotypes.
func Optimize(cfg Config, nFlows int, choices int, current []uint8, fitness Fitness) Result {
	cfg.defaults()
	if nFlows <= 0 || choices < 2 {
		panic(fmt.Sprintf("genetic: degenerate search nFlows=%d choices=%d", nFlows, choices))
	}
	if len(current) != nFlows {
		panic("genetic: current assignment length mismatch")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	type genotype struct {
		genes []uint8
		fit   float64
	}
	pop := make([]genotype, cfg.Population)
	pop[0] = genotype{genes: append([]uint8(nil), current...)}
	seeded := 1
	for c := 0; c < choices && seeded < cfg.Population; c++ {
		pop[seeded] = genotype{genes: UniformAssignment(nFlows, uint8(c))}
		seeded++
	}
	for i := seeded; i < cfg.Population; i++ {
		g := make([]uint8, nFlows)
		for j := range g {
			g[j] = uint8(rng.Intn(choices))
		}
		pop[i] = genotype{genes: g}
	}

	best := genotype{fit: -1}
	stall := 0
	gens := 0
	for gen := 0; gen < cfg.MaxGens; gen++ {
		gens++
		for i := range pop {
			pop[i].fit = fitness(pop[i].genes)
		}
		sort.SliceStable(pop, func(a, b int) bool { return pop[a].fit > pop[b].fit })
		if pop[0].fit > best.fit {
			best = genotype{genes: append([]uint8(nil), pop[0].genes...), fit: pop[0].fit}
			stall = 0
		} else {
			stall++
			if stall >= cfg.StallGens {
				break
			}
		}
		// Next generation: elites unchanged, rest bred from the top half.
		next := make([]genotype, cfg.Population)
		copy(next, pop[:cfg.Elite])
		half := cfg.Population / 2
		if half < 2 {
			half = 2
		}
		for i := cfg.Elite; i < cfg.Population; i++ {
			a := pop[rng.Intn(half)].genes
			b := pop[rng.Intn(half)].genes
			child := make([]uint8, nFlows)
			// Uniform crossover.
			for j := range child {
				if rng.Intn(2) == 0 {
					child[j] = a[j]
				} else {
					child[j] = b[j]
				}
				if rng.Float64() < cfg.Mutation {
					child[j] = uint8(rng.Intn(choices))
				}
			}
			next[i] = genotype{genes: child}
		}
		pop = next
	}
	return Result{Assignment: best.genes, Utility: best.fit, Generations: gens}
}

// AggregateFitness builds the default fitness of §3.4: the rack's aggregate
// throughput, computed by running the water-filling allocator over the
// long-flow set with each flow's φ determined by the candidate protocol
// assignment.
//
//lint:ignore unit-suffix capacity is forwarded to the unit-agnostic waterfill.Config.Capacity
func AggregateFitness(tab *routing.Table, capacity, headroom float64, flows []routing.Demand, protocols []routing.Protocol) Fitness {
	alloc := waterfill.NewAllocator(waterfill.Config{
		NumLinks: tab.Graph().NumLinks(),
		Capacity: capacity,
		Headroom: headroom,
	})
	specs := make([]waterfill.Flow, len(flows))
	for i := range specs {
		specs[i] = waterfill.Flow{Weight: 1, Demand: waterfill.Unlimited}
	}
	return func(assignment []uint8) float64 {
		for i, d := range flows {
			specs[i].Phi = tab.Phi(protocols[assignment[i]], d.Src, d.Dst)
		}
		return waterfill.Aggregate(alloc.Allocate(specs))
	}
}

// TailFitness is the alternative utility mentioned in §3.4: the minimum
// (tail) flow throughput.
//
//lint:ignore unit-suffix capacity is forwarded to the unit-agnostic waterfill.Config.Capacity
func TailFitness(tab *routing.Table, capacity, headroom float64, flows []routing.Demand, protocols []routing.Protocol) Fitness {
	alloc := waterfill.NewAllocator(waterfill.Config{
		NumLinks: tab.Graph().NumLinks(),
		Capacity: capacity,
		Headroom: headroom,
	})
	specs := make([]waterfill.Flow, len(flows))
	for i := range specs {
		specs[i] = waterfill.Flow{Weight: 1, Demand: waterfill.Unlimited}
	}
	return func(assignment []uint8) float64 {
		for i, d := range flows {
			specs[i].Phi = tab.Phi(protocols[assignment[i]], d.Src, d.Dst)
		}
		rates := alloc.Allocate(specs)
		min := waterfill.Unlimited
		for _, r := range rates {
			if r < min {
				min = r
			}
		}
		if len(rates) == 0 {
			return 0
		}
		return min
	}
}

// JobTailFitness is the task-aware utility §3.4 sketches ("tail
// throughput, as measured across tenants or even across jobs and
// application tasks [15, 23]"): flows are grouped into jobs (coflows), a
// job progresses at the rate of its slowest flow, and the utility is the
// aggregate job progress. jobOf[i] names flow i's job; flows with an empty
// job name count individually.
//
//lint:ignore unit-suffix capacity is forwarded to the unit-agnostic waterfill.Config.Capacity
func JobTailFitness(tab *routing.Table, capacity, headroom float64, flows []routing.Demand, protocols []routing.Protocol, jobOf []string) Fitness {
	if len(jobOf) != len(flows) {
		panic("genetic: jobOf length mismatch")
	}
	alloc := waterfill.NewAllocator(waterfill.Config{
		NumLinks: tab.Graph().NumLinks(),
		Capacity: capacity,
		Headroom: headroom,
	})
	specs := make([]waterfill.Flow, len(flows))
	for i := range specs {
		specs[i] = waterfill.Flow{Weight: 1, Demand: waterfill.Unlimited}
	}
	return func(assignment []uint8) float64 {
		for i, d := range flows {
			specs[i].Phi = tab.Phi(protocols[assignment[i]], d.Src, d.Dst)
		}
		rates := alloc.Allocate(specs)
		jobMin := make(map[string]float64)
		total := 0.0
		for i, r := range rates {
			job := jobOf[i]
			if job == "" {
				total += r
				continue
			}
			if cur, ok := jobMin[job]; !ok || r < cur {
				jobMin[job] = r
			}
		}
		for _, m := range jobMin {
			total += m
		}
		return total
	}
}

// UniformAssignment returns an assignment giving every flow protocol index
// idx — the single-protocol baselines of Figure 18.
func UniformAssignment(nFlows int, idx uint8) []uint8 {
	a := make([]uint8, nFlows)
	for i := range a {
		a[i] = idx
	}
	return a
}

// RandomAssignment returns an assignment choosing uniformly per flow — the
// "Random" baseline of Figure 18.
func RandomAssignment(nFlows, choices int, rng *rand.Rand) []uint8 {
	a := make([]uint8, nFlows)
	for i := range a {
		a[i] = uint8(rng.Intn(choices))
	}
	return a
}
