// Package faults is the deterministic fault-schedule subsystem behind the
// §3.2 failure experiments: a Schedule is an ordered list of timed fault
// events — link down, link repair, node crash, per-link random-drop
// probability — each with its own detection delay (the topology-discovery
// lag between a failure happening physically and the rack switching to the
// degraded fabric).
//
// Schedules are data, not behaviour: the same Schedule drives both the
// packet-level simulator (sim.R2C2.ApplyFaults, on the virtual clock) and
// the emulated rack (emu.Rack.ApplyFaults, on the rack clock), which is what
// makes the sim-vs-emu fault cross-validation possible. They are parseable
// from a compact flag DSL or JSON (Parse), generatable from a seeded RNG
// (Generate), and statically checkable against a topology (Validate).
package faults

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"r2c2/internal/topology"
)

// Kind enumerates fault event types.
type Kind uint8

// The fault event types.
const (
	// LinkDown fails both directions of the cable between A and B at At;
	// the fabric is rebuilt Detect later.
	LinkDown Kind = iota
	// LinkRepair brings the cable between A and B back at At; the fabric
	// re-expands Detect later.
	LinkRepair
	// NodeDown crashes node Node at At: all its ports go dark instantly,
	// survivors reroute and purge its flows Detect later.
	NodeDown
	// LinkDrop sets the random-drop probability of both directions of the
	// cable between A and B to DropProb at At (0 restores a clean link).
	// Drop probability changes are local to the link: they have no
	// detection delay and trigger no reroute.
	LinkDrop
)

// String returns the DSL keyword for the kind.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "down"
	case LinkRepair:
		return "up"
	case NodeDown:
		return "crash"
	case LinkDrop:
		return "drop"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one timed fault.
type Event struct {
	At   time.Duration // offset from the start of the run
	Kind Kind
	A, B topology.NodeID // cable endpoints (LinkDown, LinkRepair, LinkDrop)
	Node topology.NodeID // crashed node (NodeDown)
	// Detect is the §3.2 detection delay: the fabric is rebuilt At+Detect.
	Detect time.Duration
	// DropProb is the per-packet drop probability (LinkDrop only).
	DropProb float64
}

// String renders the event in the compact DSL.
func (e Event) String() string {
	switch e.Kind {
	case NodeDown:
		return fmt.Sprintf("crash@%v:%d/%v", e.At, e.Node, e.Detect)
	case LinkDrop:
		return fmt.Sprintf("drop@%v:%d-%d/%g", e.At, e.A, e.B, e.DropProb)
	default:
		return fmt.Sprintf("%v@%v:%d-%d/%v", e.Kind, e.At, e.A, e.B, e.Detect)
	}
}

// fires reports whether the event triggers a fabric rebuild Detect later
// (LinkDrop events are local to the link and never reroute).
func (e Event) fires() bool { return e.Kind != LinkDrop }

// Schedule is an ordered fault schedule. The zero value is the empty
// schedule (no faults).
type Schedule struct {
	Events []Event
}

// Len reports the number of events.
func (s Schedule) Len() int { return len(s.Events) }

// Sorted returns the events ordered by injection time, ties broken by list
// position. Both backends inject in exactly this order, which is what makes
// a schedule's effect reproducible.
func (s Schedule) Sorted() []Event {
	out := append([]Event(nil), s.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// String renders the schedule in the compact DSL (parseable by Parse).
func (s Schedule) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// Validate statically checks the schedule against a topology: endpoints in
// range, every down/drop cable exists, repairs match an earlier un-repaired
// down of the same cable, no double-down, no events on a crashed node's
// cables after the crash, at most one crash per node — and, critically,
// that the rack stays connected under the *union* of every downed cable
// plus every crashed node. Connectivity is monotone in the failed set, so
// if the union keeps the rack connected every intermediate state does too,
// whatever the detection interleaving.
func (s Schedule) Validate(g *topology.Graph) error {
	link := func(a, b topology.NodeID) error {
		if int(a) < 0 || int(a) >= g.Nodes() || int(b) < 0 || int(b) >= g.Nodes() {
			return fmt.Errorf("faults: endpoint out of range [0,%d)", g.Nodes())
		}
		if _, ok := g.LinkBetween(a, b); !ok {
			return fmt.Errorf("faults: no cable between %d and %d", a, b)
		}
		return nil
	}
	type cable struct{ a, b topology.NodeID }
	canon := func(a, b topology.NodeID) cable {
		if a > b {
			a, b = b, a
		}
		return cable{a, b}
	}
	down := map[cable]bool{}
	dead := map[topology.NodeID]bool{}
	union := map[topology.LinkID]bool{}
	unionDead := map[topology.NodeID]bool{}
	for _, e := range s.Sorted() {
		if e.At < 0 || e.Detect < 0 {
			return fmt.Errorf("faults: negative time in %v", e)
		}
		switch e.Kind {
		case LinkDown, LinkRepair, LinkDrop:
			if err := link(e.A, e.B); err != nil {
				return fmt.Errorf("%w (event %v)", err, e)
			}
			if dead[e.A] || dead[e.B] {
				return fmt.Errorf("faults: %v touches a cable of a crashed node", e)
			}
		case NodeDown:
			if int(e.Node) < 0 || int(e.Node) >= g.Nodes() {
				return fmt.Errorf("faults: crash node %d out of range [0,%d)", e.Node, g.Nodes())
			}
			if dead[e.Node] {
				return fmt.Errorf("faults: node %d crashed twice", e.Node)
			}
		default:
			return fmt.Errorf("faults: unknown event kind %d", e.Kind)
		}
		switch e.Kind {
		case LinkDown:
			c := canon(e.A, e.B)
			if down[c] {
				return fmt.Errorf("faults: cable %d-%d downed while already down", e.A, e.B)
			}
			down[c] = true
			ab, _ := g.LinkBetween(e.A, e.B)
			ba, _ := g.LinkBetween(e.B, e.A)
			union[ab], union[ba] = true, true
		case LinkRepair:
			c := canon(e.A, e.B)
			if !down[c] {
				return fmt.Errorf("faults: repair of cable %d-%d that is not down", e.A, e.B)
			}
			delete(down, c)
		case NodeDown:
			dead[e.Node] = true
			unionDead[e.Node] = true
		case LinkDrop:
			if e.DropProb < 0 || e.DropProb > 1 {
				return fmt.Errorf("faults: drop probability %g outside [0,1]", e.DropProb)
			}
		}
	}
	if len(union) > 0 || len(unionDead) > 0 {
		if _, _, err := g.WithoutLinksAndNodes(union, unionDead); err != nil {
			return fmt.Errorf("faults: schedule union partitions the rack: %w", err)
		}
	}
	return nil
}

// Waves returns the number of fabric rebuilds (reroutes) the schedule
// causes on a backend that recomputes the degraded fabric at
// detection-fire time and skips fires already covered by a newer rebuild:
// a fire reroutes only if at least one fault was injected since the last
// rebuild. This is exactly sim.R2C2.FailureReroutes (and emu.Rack.Reroutes)
// after replaying the schedule, so tests assert equality against it.
func (s Schedule) Waves() int {
	type fire struct {
		at  time.Duration
		seq int // injection order
	}
	var fires []fire
	seq := 0
	injectAt := []time.Duration{}
	for _, e := range s.Sorted() {
		if !e.fires() {
			continue
		}
		seq++
		injectAt = append(injectAt, e.At)
		fires = append(fires, fire{at: e.At + e.Detect, seq: seq})
	}
	// Fires in detection order; equal-time fires keep injection order
	// (both backends arm the detection timer at injection time, FIFO).
	sort.SliceStable(fires, func(i, j int) bool { return fires[i].at < fires[j].at })
	waves, covered := 0, 0
	for _, f := range fires {
		// At fire time every injection with At <= f.at has happened
		// (injections are scheduled before the fires they race with).
		injected := 0
		for i, at := range injectAt {
			if at <= f.at {
				injected = i + 1
			}
		}
		if injected > covered {
			waves++
			covered = injected
		}
	}
	return waves
}

// DeadNodes returns the set of nodes the schedule crashes.
func (s Schedule) DeadNodes() map[topology.NodeID]bool {
	dead := map[topology.NodeID]bool{}
	for _, e := range s.Events {
		if e.Kind == NodeDown {
			dead[e.Node] = true
		}
	}
	return dead
}

// Horizon returns the time by which every event has both happened and been
// detected — the earliest instant the fabric can be back in steady state.
func (s Schedule) Horizon() time.Duration {
	var h time.Duration
	for _, e := range s.Events {
		if t := e.At + e.Detect; t > h {
			h = t
		}
	}
	return h
}

// Parse reads a schedule from either the compact flag DSL or JSON
// (dispatched on a leading '{' or '[').
//
// The DSL is semicolon-separated events, each `kind@at:args/last`:
//
//	down@10ms:0-1/2ms     cable 0-1 fails at 10ms, detected 2ms later
//	up@30ms:0-1/2ms       cable 0-1 repaired at 30ms, detected 2ms later
//	crash@20ms:5/2ms      node 5 crashes at 20ms, detected 2ms later
//	drop@0s:2-3/0.01      cable 2-3 drops 1% of packets from t=0
//
// Durations use Go syntax (`150us`, `2ms`, `1s`).
func Parse(s string) (Schedule, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "{") || strings.HasPrefix(s, "[") {
		return ParseJSON([]byte(s))
	}
	var sched Schedule
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return Schedule{}, err
		}
		sched.Events = append(sched.Events, ev)
	}
	if len(sched.Events) == 0 {
		return Schedule{}, fmt.Errorf("faults: empty schedule %q", s)
	}
	return sched, nil
}

func parseEvent(s string) (Event, error) {
	kindAt, spec, ok := cut(s, ":")
	if !ok {
		return Event{}, fmt.Errorf("faults: event %q: want kind@at:spec", s)
	}
	kindStr, atStr, ok := cut(kindAt, "@")
	if !ok {
		return Event{}, fmt.Errorf("faults: event %q: want kind@at:spec", s)
	}
	at, err := time.ParseDuration(atStr)
	if err != nil {
		return Event{}, fmt.Errorf("faults: event %q: bad time %q: %v", s, atStr, err)
	}
	target, last, ok := cut(spec, "/")
	if !ok {
		return Event{}, fmt.Errorf("faults: event %q: want target/detect (or target/prob for drop)", s)
	}
	ev := Event{At: at}
	switch kindStr {
	case "down":
		ev.Kind = LinkDown
	case "up":
		ev.Kind = LinkRepair
	case "crash":
		ev.Kind = NodeDown
	case "drop":
		ev.Kind = LinkDrop
	default:
		return Event{}, fmt.Errorf("faults: event %q: unknown kind %q (want down|up|crash|drop)", s, kindStr)
	}
	if ev.Kind == NodeDown {
		node, err := strconv.Atoi(target)
		if err != nil {
			return Event{}, fmt.Errorf("faults: event %q: bad node %q", s, target)
		}
		ev.Node = topology.NodeID(node)
	} else {
		aStr, bStr, ok := cut(target, "-")
		if !ok {
			return Event{}, fmt.Errorf("faults: event %q: want a-b endpoints", s)
		}
		a, err1 := strconv.Atoi(aStr)
		b, err2 := strconv.Atoi(bStr)
		if err1 != nil || err2 != nil {
			return Event{}, fmt.Errorf("faults: event %q: bad endpoints %q", s, target)
		}
		ev.A, ev.B = topology.NodeID(a), topology.NodeID(b)
	}
	if ev.Kind == LinkDrop {
		p, err := strconv.ParseFloat(last, 64)
		if err != nil {
			return Event{}, fmt.Errorf("faults: event %q: bad probability %q", s, last)
		}
		ev.DropProb = p
	} else {
		d, err := time.ParseDuration(last)
		if err != nil {
			return Event{}, fmt.Errorf("faults: event %q: bad detection delay %q", s, last)
		}
		ev.Detect = d
	}
	return ev, nil
}

func cut(s, sep string) (before, after string, found bool) {
	i := strings.Index(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// jsonEvent is the JSON wire form of an Event; times are Go duration
// strings so schedules stay human-writable.
type jsonEvent struct {
	Kind   string  `json:"kind"` // down | up | crash | drop
	At     string  `json:"at"`
	A      *int    `json:"a,omitempty"`
	B      *int    `json:"b,omitempty"`
	Node   *int    `json:"node,omitempty"`
	Detect string  `json:"detect,omitempty"`
	Prob   float64 `json:"prob,omitempty"`
}

type jsonSchedule struct {
	Events []jsonEvent `json:"events"`
}

// ParseJSON reads a schedule from its JSON form:
//
//	{"events":[{"kind":"down","at":"10ms","a":0,"b":1,"detect":"2ms"},
//	           {"kind":"crash","at":"20ms","node":5,"detect":"2ms"},
//	           {"kind":"drop","at":"0s","a":2,"b":3,"prob":0.01}]}
//
// A bare JSON array of events is also accepted.
func ParseJSON(b []byte) (Schedule, error) {
	var js jsonSchedule
	if err := json.Unmarshal(b, &js); err != nil {
		// Bare array form.
		if errArr := json.Unmarshal(b, &js.Events); errArr != nil {
			return Schedule{}, fmt.Errorf("faults: bad JSON schedule: %v", err)
		}
	}
	if len(js.Events) == 0 {
		return Schedule{}, fmt.Errorf("faults: JSON schedule has no events")
	}
	var sched Schedule
	for i, je := range js.Events {
		ev := Event{}
		at, err := time.ParseDuration(je.At)
		if err != nil {
			return Schedule{}, fmt.Errorf("faults: event %d: bad at %q", i, je.At)
		}
		ev.At = at
		switch je.Kind {
		case "down":
			ev.Kind = LinkDown
		case "up":
			ev.Kind = LinkRepair
		case "crash":
			ev.Kind = NodeDown
		case "drop":
			ev.Kind = LinkDrop
		default:
			return Schedule{}, fmt.Errorf("faults: event %d: unknown kind %q", i, je.Kind)
		}
		if ev.Kind == NodeDown {
			if je.Node == nil {
				return Schedule{}, fmt.Errorf("faults: event %d: crash needs node", i)
			}
			ev.Node = topology.NodeID(*je.Node)
		} else {
			if je.A == nil || je.B == nil {
				return Schedule{}, fmt.Errorf("faults: event %d: %s needs a and b", i, je.Kind)
			}
			ev.A, ev.B = topology.NodeID(*je.A), topology.NodeID(*je.B)
		}
		if ev.Kind == LinkDrop {
			ev.DropProb = je.Prob
		} else if je.Detect != "" {
			d, err := time.ParseDuration(je.Detect)
			if err != nil {
				return Schedule{}, fmt.Errorf("faults: event %d: bad detect %q", i, je.Detect)
			}
			ev.Detect = d
		}
		sched.Events = append(sched.Events, ev)
	}
	return sched, nil
}
