package emu

import (
	"sync"
	"sync/atomic"
)

// DPDK-style mbuf segment pool for the emulator's packet buffers
// (DESIGN.md §12, trex-emu's Mbuf idiom): fixed-size refcounted segments
// carved from a shared pool, chained for payloads larger than one segment.
// The per-packet `make([]byte, ...)` in flowSender — formerly the one
// deliberate hot-path allocation, "no free path back to the sender" — goes
// away: a packet's buffer is its segment's storage, the emuPkt traveling
// through port channels carries the segment, and whoever terminates the
// packet (delivery, drop, dead link) releases it back to the pool.
//
// Refcounts exist for broadcast fan-out: one encoded broadcast buffer is
// enqueued read-only to every child port of the tree, retained once per
// enqueue and released by each consumer, so an N-way flood shares one
// segment instead of N copies. Data packets keep ref == 1 end to end,
// which is what makes their in-place RIdx increment at every transit hop
// safe.

// mbufSegSize is the fixed segment payload capacity. One MTU packet
// (1500 B + header) fits a single segment; larger payloads chain.
const mbufSegSize = 2048

// mbufPoolIdleCap bounds how many free segments the pool retains (~1 MB).
// Segments freed beyond it go to the GC, so a transient burst does not pin
// its peak buffer count for the life of the rack.
const mbufPoolIdleCap = 512

// mbuf is one fixed-size buffer segment. next links chain continuation
// segments while the mbuf is live, and the pool free list while it is not.
type mbuf struct {
	data [mbufSegSize]byte
	n    int // bytes used in data (chain bookkeeping)
	ref  atomic.Int32
	next *mbuf
}

// retain adds one reference to the segment (chains share the head's
// refcount: continuation segments are never handed out independently).
func (m *mbuf) retain() { m.ref.Add(1) }

// mbufPool hands out segments. Shared by every goroutine in a rack, so it
// is mutex-protected; get/put are O(1) pointer pops well off the scale of
// the channel operations surrounding them.
type mbufPool struct {
	mu    sync.Mutex
	free  *mbuf
	freeN int

	allocs   uint64 // segments ever created
	released uint64 // free segments dropped to the GC past the idle cap
	live     int64  // segments currently out of the pool
	peakLive int64
}

// MbufPoolStats is a snapshot of pool occupancy, exposed for retention
// tests and capacity planning.
type MbufPoolStats struct {
	Live     int64  // segments currently held by packets
	PeakLive int64  // high-water mark of live segments
	Idle     int    // free segments retained for reuse
	Allocs   uint64 // total segments ever allocated
	Released uint64 // free segments returned to the GC
}

func (p *mbufPool) stats() MbufPoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return MbufPoolStats{
		Live:     p.live,
		PeakLive: p.peakLive,
		Idle:     p.freeN,
		Allocs:   p.allocs,
		Released: p.released,
	}
}

// get returns a segment with ref 1, zero length, and no chain.
func (p *mbufPool) get() *mbuf {
	p.mu.Lock()
	m := p.free
	if m != nil {
		p.free = m.next
		p.freeN--
	} else {
		p.allocs++
	}
	p.live++
	if p.live > p.peakLive {
		p.peakLive = p.live
	}
	p.mu.Unlock()
	if m == nil {
		//lint:ignore alloc-hotpath pool miss: segment count is amortised and bounded by in-flight packets
		m = &mbuf{}
	}
	m.n = 0
	m.next = nil
	m.ref.Store(1)
	return m
}

// put returns a whole chain to the pool (idle-capped). Callers go through
// release(); put assumes the refcount already hit zero.
func (p *mbufPool) put(m *mbuf) {
	p.mu.Lock()
	for m != nil {
		next := m.next
		p.live--
		if p.freeN < mbufPoolIdleCap {
			m.next = p.free
			p.free = m
			p.freeN++
		} else {
			p.released++
		}
		m = next
	}
	p.mu.Unlock()
}

// appendChain appends b to the chain headed by m, spilling into fresh
// segments as each fills — trex-emu's chain-append. Continuation segments
// ride the head's refcount. Returns the chain's tail for further appends.
func (p *mbufPool) appendChain(m *mbuf, b []byte) *mbuf {
	tail := m
	for tail.next != nil {
		tail = tail.next
	}
	for len(b) > 0 {
		if tail.n == mbufSegSize {
			seg := p.get()      // counts as live until the chain is put back
			seg.ref.Store(0)    // the head's refcount owns the whole chain
			tail.next = seg
			tail = seg
		}
		k := copy(tail.data[tail.n:], b)
		tail.n += k
		b = b[k:]
	}
	return tail
}

// chainBytes flattens a chain into dst (test/diagnostic helper).
func chainBytes(m *mbuf, dst []byte) []byte {
	for ; m != nil; m = m.next {
		dst = append(dst, m.data[:m.n]...)
	}
	return dst
}

// emuPkt is one packet in flight inside the rack: buf is the wire bytes
// (aliasing seg's storage when pooled), seg the backing segment, nil for
// unpooled buffers (retain/release no-op on those).
type emuPkt struct {
	buf []byte
	seg *mbuf
}

func (pk emuPkt) retain() {
	if pk.seg != nil {
		pk.seg.retain()
	}
}

// release drops one reference; the last one returns the segment chain to
// the rack's pool.
func (r *Rack) release(pk emuPkt) {
	if pk.seg != nil && pk.seg.ref.Add(-1) == 0 {
		r.pool.put(pk.seg)
	}
}
