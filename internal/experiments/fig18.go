package experiments

import (
	"math/rand"

	"r2c2/internal/genetic"
	"r2c2/internal/routing"
	"r2c2/internal/trafficgen"
)

// Fig18Result compares the adaptive genetic routing selection against the
// single-protocol and random baselines across load levels (Figure 18).
type Fig18Result struct {
	Loads []float64
	// Aggregate throughput (bits/s) per load.
	Adaptive, AllRPS, AllVLB, Random []float64
}

// Fig18 runs the permutation workload of §5.2 ("a fraction L of nodes
// generates a long-running flow each") and optimises the per-flow protocol
// assignment with the §3.4 genetic heuristic. Candidate protocols are RPS
// and VLB, as in the paper.
func Fig18(s Scale, loads []float64, gaCfg genetic.Config) *Fig18Result {
	g := s.Torus()
	tab := routing.NewTable(g)
	protocols := []routing.Protocol{routing.RPS, routing.VLB}
	rng := rand.New(rand.NewSource(s.Seed))
	res := &Fig18Result{Loads: loads}
	for _, load := range loads {
		flows := trafficgen.PermutationLoad(g, load, rng)
		if len(flows) == 0 {
			res.Adaptive = append(res.Adaptive, 0)
			res.AllRPS = append(res.AllRPS, 0)
			res.AllVLB = append(res.AllVLB, 0)
			res.Random = append(res.Random, 0)
			continue
		}
		fitness := genetic.AggregateFitness(tab, s.LinkGbps*1e9, 0.05, flows, protocols)
		allRPS := fitness(genetic.UniformAssignment(len(flows), 0))
		allVLB := fitness(genetic.UniformAssignment(len(flows), 1))
		random := fitness(genetic.RandomAssignment(len(flows), len(protocols), rng))
		cfg := gaCfg
		cfg.Seed = s.Seed
		best := genetic.Optimize(cfg, len(flows), len(protocols),
			genetic.UniformAssignment(len(flows), 0), fitness)
		res.Adaptive = append(res.Adaptive, best.Utility)
		res.AllRPS = append(res.AllRPS, allRPS)
		res.AllVLB = append(res.AllVLB, allVLB)
		res.Random = append(res.Random, random)
	}
	return res
}

// Table renders Figure 18 as adaptive throughput normalised against each
// baseline (values >= 1 reproduce the paper's claim).
func (r *Fig18Result) Table() *Table {
	t := &Table{Title: "Figure 18: adaptive routing selection vs baselines (normalised)",
		Header: []string{"load", "vs-RPS", "vs-VLB", "vs-Random"}}
	for i, load := range r.Loads {
		t.AddRow(f3(load),
			f3(safeDiv(r.Adaptive[i], r.AllRPS[i])),
			f3(safeDiv(r.Adaptive[i], r.AllVLB[i])),
			f3(safeDiv(r.Adaptive[i], r.Random[i])))
	}
	return t
}
