package topology

import (
	"fmt"
	"math/rand"
	"sync"
)

// BroadcastTree is a shortest-path spanning tree rooted at Root, used to
// broadcast flow events across the rack (§3.2). Children[v] lists the
// links on which v forwards a copy of a broadcast packet; leaves have no
// entries. Depth is the maximum hop count from Root to any node, i.e. the
// broadcast time the construction minimises.
type BroadcastTree struct {
	Root     NodeID
	ID       uint8 // tree identifier, carried in the broadcast header
	Children [][]LinkID
	Depth    int
}

// TotalEdges returns the number of tree edges (n-1 for a spanning tree).
func (t *BroadcastTree) TotalEdges() int {
	total := 0
	for _, c := range t.Children {
		total += len(c)
	}
	return total
}

// LinkLoad returns, per directed link, how many copies of one broadcast
// packet traverse it (0 or 1 for a tree). Used to study broadcast load
// balance across trees.
func (t *BroadcastTree) LinkLoad(numLinks int) []int {
	load := make([]int, numLinks)
	for _, children := range t.Children {
		for _, lid := range children {
			load[lid]++
		}
	}
	return load
}

// BuildBroadcastTrees constructs `count` distinct shortest-path broadcast
// trees rooted at src by breadth-first traversal with randomised parent
// choice (§3.2: "we enumerate multiple broadcast trees for each source by
// traversing the rack's topology in a breadth-first fashion"). Every tree
// is a spanning tree in which each node sits at its BFS distance from src,
// so broadcast time is minimal. rngSeed makes construction deterministic.
//
// It panics if count is outside [1, 256) since the wire format carries the
// tree ID in one byte.
func BuildBroadcastTrees(g *Graph, src NodeID, count int, rngSeed int64) []*BroadcastTree {
	if count < 1 || count > 255 {
		panic(fmt.Sprintf("topology: broadcast tree count %d out of [1,255]", count))
	}
	rng := rand.New(rand.NewSource(rngSeed))
	// The FIB builds a source's trees lazily on first lookup, which makes
	// this function reachable from the emulator's data-path hotpath root —
	// but only on the once-per-source miss path; the steady-state hit path
	// never gets here, so the construction allocations below are amortised.
	//lint:ignore alloc-hotpath once-per-source lazy tree construction; the FIB hit path is allocation-free
	trees := make([]*BroadcastTree, count)
	// Scratch shared by every tree of this source: per-vertex parent picks,
	// per-parent child counts, and the candidate buffer. Building a FIB
	// constructs sources × count trees, so per-vertex slice churn here
	// dominated the simulator's setup allocations.
	//lint:ignore alloc-hotpath once-per-source lazy tree construction; the FIB hit path is allocation-free
	scratch := &treeScratch{
		//lint:ignore alloc-hotpath once-per-source lazy tree construction; the FIB hit path is allocation-free
		picks: make([]LinkID, g.Vertices()),
		//lint:ignore alloc-hotpath once-per-source lazy tree construction; the FIB hit path is allocation-free
		counts: make([]int, g.Vertices()),
		//lint:ignore alloc-hotpath once-per-source lazy tree construction; the FIB hit path is allocation-free
		candidates: make([]LinkID, 0, 8),
	}
	for i := 0; i < count; i++ {
		trees[i] = buildOneTree(g, src, uint8(i), rng, scratch)
	}
	return trees
}

type treeScratch struct {
	picks      []LinkID // chosen parent link per vertex; -1 = not in tree
	counts     []int    // children per parent vertex
	candidates []LinkID
}

func buildOneTree(g *Graph, src NodeID, id uint8, rng *rand.Rand, sc *treeScratch) *BroadcastTree {
	//lint:ignore alloc-hotpath once-per-source lazy tree construction; the FIB hit path is allocation-free
	t := &BroadcastTree{
		Root: src,
		ID:   id,
		//lint:ignore alloc-hotpath once-per-source lazy tree construction; the FIB hit path is allocation-free
		Children: make([][]LinkID, g.Vertices()),
	}
	for v := range sc.picks {
		sc.picks[v] = -1
		sc.counts[v] = 0
	}
	// For each non-root vertex pick a random parent among its predecessors
	// at distance-1; this yields a shortest-path tree with randomised shape.
	depth := 0
	total := 0
	for v := 0; v < g.Vertices(); v++ {
		if NodeID(v) == src {
			continue
		}
		dv := g.Dist(src, NodeID(v))
		if dv < 0 {
			continue // unreachable vertices stay out of the tree
		}
		if dv > depth {
			depth = dv
		}
		candidates := sc.candidates[:0]
		for _, lid := range g.In(NodeID(v)) {
			p := g.Link(lid).From
			if g.Dist(src, p) == dv-1 {
				candidates = append(candidates, lid)
			}
		}
		sc.candidates = candidates[:0]
		if len(candidates) == 0 {
			panic("topology: BFS invariant violated: reachable node without shortest-path parent")
		}
		pick := candidates[rng.Intn(len(candidates))]
		sc.picks[v] = pick
		sc.counts[g.Link(pick).From]++
		total++
	}
	// Bucket the picks into child lists carved out of one backing array
	// instead of growing each parent's slice separately. Iterating vertices
	// in ascending order preserves the original per-parent link order.
	//lint:ignore alloc-hotpath once-per-source lazy tree construction; the FIB hit path is allocation-free
	flat := make([]LinkID, 0, total)
	off := 0
	for p := 0; p < g.Vertices(); p++ {
		if sc.counts[p] == 0 {
			continue
		}
		t.Children[p] = flat[off : off : off+sc.counts[p]]
		off += sc.counts[p]
	}
	for v := 0; v < g.Vertices(); v++ {
		if sc.picks[v] < 0 {
			continue
		}
		p := g.Link(sc.picks[v]).From
		t.Children[p] = append(t.Children[p], sc.picks[v])
	}
	t.Depth = depth
	return t
}

// BroadcastFIB is the broadcast forwarding information base of §3.2: a
// lookup keyed by <src-address, tree-id> yielding the set of next-hop links
// a broadcast packet must be forwarded on from a given node. One FIB is
// shared by all nodes (each node consults only its own row).
//
// Trees are built lazily, one source at a time on first lookup: an eager
// FIB is O(sources × trees × vertices) memory — prohibitive at the 10k-node
// multi-rack scale where only the sources that actually broadcast need
// trees. A source's trees are seeded by rngSeed+src independent of build
// order, so a lazy FIB forwards byte-identically to the old eager one.
// Lookups are guarded by an RWMutex (read-locked on the hit path) because
// the emulator's node goroutines share one FIB; the simulator's per-shard
// FIBs see only uncontended locks.
type BroadcastFIB struct {
	mu             sync.RWMutex
	trees          map[fibKey]*BroadcastTree
	g              *Graph
	treesPerSource int
	rngSeed        int64
}

type fibKey struct {
	src  NodeID
	tree uint8
}

// NewBroadcastFIB prepares a FIB serving treesPerSource broadcast trees for
// every endpoint node; trees are built per source on first use.
func NewBroadcastFIB(g *Graph, treesPerSource int, rngSeed int64) *BroadcastFIB {
	return &BroadcastFIB{
		trees:          make(map[fibKey]*BroadcastTree),
		g:              g,
		treesPerSource: treesPerSource,
		rngSeed:        rngSeed,
	}
}

// lookup returns the tree for <src, treeID>, building src's trees on first
// access.
func (f *BroadcastFIB) lookup(src NodeID, treeID uint8) (*BroadcastTree, bool) {
	f.mu.RLock()
	t, ok := f.trees[fibKey{src: src, tree: treeID}]
	f.mu.RUnlock()
	if ok || int(src) < 0 || int(src) >= f.g.Nodes() {
		return t, ok
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if t, ok = f.trees[fibKey{src: src, tree: 0}]; !ok {
		for _, bt := range BuildBroadcastTrees(f.g, src, f.treesPerSource, f.rngSeed+int64(src)) {
			f.trees[fibKey{src: src, tree: bt.ID}] = bt
		}
	}
	t, ok = f.trees[fibKey{src: src, tree: treeID}]
	return t, ok
}

// NextHops returns the links on which node `at` must forward a broadcast
// packet originated by src on tree treeID. It returns nil (forward nowhere)
// for leaves, and ok=false for an unknown <src, tree> pair.
func (f *BroadcastFIB) NextHops(src NodeID, treeID uint8, at NodeID) ([]LinkID, bool) {
	t, ok := f.lookup(src, treeID)
	if !ok {
		return nil, false
	}
	return t.Children[at], true
}

// Tree returns the broadcast tree for <src, treeID>.
func (f *BroadcastFIB) Tree(src NodeID, treeID uint8) (*BroadcastTree, bool) {
	return f.lookup(src, treeID)
}

// TreesPerSource reports how many trees exist for src.
func (f *BroadcastFIB) TreesPerSource(src NodeID) int {
	n := 0
	for id := 0; id < 256; id++ {
		if _, ok := f.lookup(src, uint8(id)); !ok {
			break
		}
		n++
	}
	return n
}
