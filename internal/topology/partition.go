package topology

import "fmt"

// Partition assigns every vertex of a rack-structured fabric to a shard for
// the sharded simulation engine: one shard per rack (ConnectRacks) or per
// leaf group (folded Clos). The assignment is a pure function of the graph,
// so every run of the same fabric — at any worker count — sees the same
// logical shards, which is what keeps sharded Results independent of how
// many OS threads execute them.
type Partition struct {
	shards   int
	shardOf  []int32
	boundary []LinkID
}

// NewPartition derives the per-rack shard assignment of g. Spine switches
// (vertices in no rack group) are distributed round-robin across shards in
// vertex order. It returns an error when the fabric has no rack structure
// to shard by (single-rack tori/meshes run serially).
func NewPartition(g *Graph) (*Partition, error) {
	racks := g.Racks()
	if racks < 2 {
		return nil, fmt.Errorf("topology: fabric has no rack structure to shard by (%d rack groups)", racks)
	}
	p := &Partition{shards: racks, shardOf: make([]int32, g.Vertices())}
	spine := 0
	for v := 0; v < g.Vertices(); v++ {
		if r := g.RackOf(NodeID(v)); r >= 0 {
			p.shardOf[v] = int32(r)
		} else {
			p.shardOf[v] = int32(spine % racks)
			spine++
		}
	}
	for lid := 0; lid < g.NumLinks(); lid++ {
		l := g.Link(LinkID(lid))
		if p.shardOf[l.From] != p.shardOf[l.To] {
			p.boundary = append(p.boundary, LinkID(lid))
		}
	}
	if len(p.boundary) == 0 {
		return nil, fmt.Errorf("topology: partition has no boundary links (racks are disconnected?)")
	}
	return p, nil
}

// Shards returns the number of shards (rack groups).
func (p *Partition) Shards() int { return p.shards }

// ShardOf returns the shard a vertex belongs to.
func (p *Partition) ShardOf(v NodeID) int32 { return p.shardOf[v] }

// ShardAssignment returns the per-vertex shard map. The slice is owned by
// the Partition and must not be modified.
func (p *Partition) ShardAssignment() []int32 { return p.shardOf }

// BoundaryLinks returns the directed links whose endpoints lie in different
// shards, in ascending link order. The slice is owned by the Partition.
func (p *Partition) BoundaryLinks() []LinkID { return p.boundary }
