// Package analysis is a stdlib-only static-analysis engine enforcing the
// determinism and concurrency invariants the R2C2 evaluation rests on.
//
// The headline claim of the paper — packet-level simulation and rack
// emulation agree (§5, Figure 7) — only holds if the simulator is
// bit-for-bit deterministic (seeded RNGs, virtual clock, no wall-clock
// leakage) and the emulator is race-free. Those properties are invisible
// to the type system, so this package checks them syntactically: a small
// analyzer framework (built on go/ast and go/parser only, keeping go.mod
// dependency-free) plus the R2C2-specific rules wired up in Default.
//
// Findings are suppressed with a `//lint:ignore rule reason` comment on
// the offending line or the line directly above it. The reason is
// mandatory: an unexplained suppression is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Version is the analyzer generation stamped into machine-readable
// reports (r2c2-lint.json, shard_ownership.json). Bump it when a rule is
// added, removed, or changes meaning, so a stale CI artifact can never be
// mistaken for a current clean bill.
//
// 1: syntactic rules + alloc-hotpath. 2: adds det-map-iter,
// shard-ownership and atomic-plain-mix; reports become objects carrying
// the rule set.
const Version = 2

// Diagnostic is one finding: a rule violation at a position.
type Diagnostic struct {
	Rule    string         `json:"rule"`
	Pos     token.Position `json:"pos"`
	Message string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// Pass is the unit of work handed to an analyzer: every parsed file of one
// package directory (external test packages included — determinism rules
// apply to test code too).
type Pass struct {
	Fset *token.FileSet
	// Path is the package import path, e.g. "r2c2/internal/sim".
	Path  string
	Files []*ast.File
}

// Filename returns the name of the file a node belongs to.
func (p *Pass) Filename(n ast.Node) string {
	return p.Fset.Position(n.Pos()).Filename
}

// IsTestFile reports whether the file holding n is a _test.go file.
func (p *Pass) IsTestFile(n ast.Node) bool {
	return strings.HasSuffix(p.Filename(n), "_test.go")
}

// Diag builds a Diagnostic for a node.
func (p *Pass) Diag(rule string, n ast.Node, format string, args ...interface{}) Diagnostic {
	return Diagnostic{Rule: rule, Pos: p.Fset.Position(n.Pos()), Message: fmt.Sprintf(format, args...)}
}

// Analyzer is one lint rule.
type Analyzer interface {
	// Name is the rule identifier used in findings and //lint:ignore.
	Name() string
	// Doc is a one-line description of the rule.
	Doc() string
	// Applies reports whether the rule runs on a package path.
	Applies(pkgPath string) bool
	// Check inspects one package and returns its findings.
	Check(pass *Pass) []Diagnostic
}

// pkgScope implements Applies by import-path suffix match; an empty list
// matches every package.
type pkgScope struct{ pkgs []string }

func (s pkgScope) Applies(pkgPath string) bool {
	if len(s.pkgs) == 0 {
		return true
	}
	for _, p := range s.pkgs {
		if pkgPath == p || strings.HasSuffix(pkgPath, "/"+p) {
			return true
		}
	}
	return false
}

// Default returns the R2C2 rule set: each analyzer scoped to the packages
// whose invariants it protects (see DESIGN.md, "Determinism & concurrency
// invariants").
func Default() []Analyzer {
	return []Analyzer{
		// The simulator stack must run on virtual time only: any wall-clock
		// read desynchronises two runs with the same seed.
		// internal/emu runs in real time by design, but its wall-clock reads
		// are confined to the audited chokepoint in emu/clock.go; everywhere
		// else in the package the rule applies with full force (the FCT
		// timestamps once leaked absolute host time this way).
		NewNoWallclock("internal/sim", "internal/fluid", "internal/waterfill", "internal/emu"),
		// Deterministic packages must thread a seeded *rand.Rand; the global
		// math/rand source is shared, racy and unseeded.
		NewNoGlobalRand("internal/sim", "internal/routing", "internal/waterfill",
			"internal/genetic", "internal/trafficgen", "internal/fluid"),
		// Copying a struct that embeds a lock silently forks the lock.
		NewMutexByValue(),
		// Every goroutine in the emulator must have a tracked exit path, or
		// Stop() leaks pacing loops that keep mutating shared state.
		NewGoroutineLeak("internal/emu"),
		// Rates and sizes cross Gbps/Mbps/Kbps/bytes boundaries constantly;
		// exported quantities must carry their unit in the name.
		NewUnitSuffix(),
	}
}

// importName returns the local name the file binds an import path to, or
// "" if the file does not import it. A dot-import returns ".".
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		// Default name: last path element.
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// exprString renders a simple expression (identifiers and selectors) for
// matching and messages; other node kinds render as "…".
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	case *ast.CallExpr:
		return exprString(v.Fun) + "()"
	case *ast.IndexExpr:
		return exprString(v.X) + "[…]"
	default:
		return "…"
	}
}
