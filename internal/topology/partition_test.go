package topology

import "testing"

func mustTorus(t *testing.T, k, dims int) *Graph {
	t.Helper()
	g, err := NewTorus(k, dims)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPartitionMultiRack(t *testing.T) {
	r0 := mustTorus(t, 3, 2)
	r1 := mustTorus(t, 3, 2)
	r2 := mustTorus(t, 3, 2)
	g, err := ConnectRacks([]*Graph{r0, r1, r2}, []Bridge{
		{RackA: 0, RackB: 1, NodeA: 0, NodeB: 0},
		{RackA: 1, RackB: 2, NodeA: 1, NodeB: 1},
		{RackA: 2, RackB: 0, NodeA: 2, NodeB: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Racks(); got != 3 {
		t.Fatalf("Racks() = %d, want 3", got)
	}
	p, err := NewPartition(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", p.Shards())
	}
	// Every node maps to the rack it was built in.
	for v := 0; v < g.Nodes(); v++ {
		want := int32(v / 9)
		if p.ShardOf(NodeID(v)) != want {
			t.Fatalf("ShardOf(%d) = %d, want %d", v, p.ShardOf(NodeID(v)), want)
		}
		if g.RackOf(NodeID(v)) != int(want) {
			t.Fatalf("RackOf(%d) = %d, want %d", v, g.RackOf(NodeID(v)), want)
		}
	}
	// Exactly the six bridge directions are boundary links, and each is
	// reported as inter-rack.
	if len(p.BoundaryLinks()) != 6 {
		t.Fatalf("boundary links = %d, want 6", len(p.BoundaryLinks()))
	}
	for _, lid := range p.BoundaryLinks() {
		if !g.IsInterRack(lid) {
			t.Fatalf("boundary link %d not inter-rack", lid)
		}
	}
	interRack := 0
	for lid := 0; lid < g.NumLinks(); lid++ {
		if g.IsInterRack(LinkID(lid)) {
			interRack++
		}
	}
	if interRack != 6 {
		t.Fatalf("inter-rack links = %d, want 6", interRack)
	}
}

func TestPartitionClosByLeaf(t *testing.T) {
	g, err := NewFoldedClos(4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Racks() != 4 {
		t.Fatalf("Racks() = %d, want 4", g.Racks())
	}
	p, err := NewPartition(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", p.Shards())
	}
	// Hosts and their leaf switch share a shard.
	for h := 0; h < g.Nodes(); h++ {
		leaf := NodeID(g.Nodes() + h/4)
		if p.ShardOf(NodeID(h)) != p.ShardOf(leaf) {
			t.Fatalf("host %d and leaf %d in different shards", h, leaf)
		}
	}
	// Spines are spread round-robin across shards.
	s0 := p.ShardOf(NodeID(g.Nodes() + 4))
	s1 := p.ShardOf(NodeID(g.Nodes() + 5))
	if s0 != 0 || s1 != 1 {
		t.Fatalf("spine shards = %d,%d, want 0,1", s0, s1)
	}
	// Host-leaf links never cross shards; every boundary link touches a
	// leaf-spine pair.
	for _, lid := range p.BoundaryLinks() {
		l := g.Link(lid)
		if int(l.From) < g.Nodes() || int(l.To) < g.Nodes() {
			t.Fatalf("boundary link %d touches a host: %+v", lid, l)
		}
	}
}

func TestPartitionSingleRackErrors(t *testing.T) {
	g := mustTorus(t, 4, 2)
	if _, err := NewPartition(g); err == nil {
		t.Fatal("NewPartition on a single rack should fail")
	}
	if g.Racks() != 0 || g.RackOf(0) != -1 || g.IsInterRack(0) {
		t.Fatal("single-rack fabric should report no rack structure")
	}
}

func TestPartitionSurvivesDegradedFabric(t *testing.T) {
	r0 := mustTorus(t, 3, 2)
	r1 := mustTorus(t, 3, 2)
	g, err := ConnectRacks([]*Graph{r0, r1}, []Bridge{
		{RackA: 0, RackB: 1, NodeA: 0, NodeB: 0},
		{RackA: 0, RackB: 1, NodeA: 4, NodeB: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	lid, ok := g.LinkBetween(1, 2)
	if !ok {
		t.Fatal("missing intra-rack link")
	}
	sub, _, err := g.WithoutLinks(map[LinkID]bool{lid: true})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Racks() != 2 || sub.RackOf(9) != 1 {
		t.Fatal("degraded fabric lost its rack metadata")
	}
}
