package core

import (
	"math"
	"math/rand"
	"testing"

	"r2c2/internal/waterfill"
)

// TestDemandRoundTrip property-tests the Kbps wire encoding against its
// bits/s decoding: for any bits/s demand, KbpsDemand → DemandBits loses
// at most one Kbps quantum (truncation), never more, and never changes
// the limited/unlimited classification.
func TestDemandRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100000; i++ {
		// Log-uniform over 1 bit/s .. 10 Tbps, spanning the saturation
		// boundary at (UnlimitedDemand-1) Kbps ≈ 4.29 Tbps.
		bits := math.Pow(10, rng.Float64()*13)
		kbps := KbpsDemand(bits)
		if kbps == UnlimitedDemand {
			t.Fatalf("KbpsDemand(%g) = UnlimitedDemand; the sentinel must be unreachable from a finite demand", bits)
		}
		f := FlowInfo{DemandKbps: kbps}
		back := f.DemandBits()
		if back == waterfill.Unlimited {
			t.Fatalf("round-trip of finite %g bits/s decoded as Unlimited", bits)
		}
		if kbps == UnlimitedDemand-1 {
			// Saturated: the decoded value is the format's ceiling, below
			// the input by construction.
			if back > bits {
				t.Fatalf("saturated decode %g exceeds input %g", back, bits)
			}
			continue
		}
		// Within range the only loss is truncation to a whole Kbps.
		if back > bits || bits-back >= 1e3 {
			t.Fatalf("KbpsDemand(%g)=%d decodes to %g; want within one 1000 bit/s quantum below input",
				bits, kbps, back)
		}
	}
}

// TestDemandRoundTripEdges pins the boundary values of the encoding.
func TestDemandRoundTripEdges(t *testing.T) {
	cases := []struct {
		name string
		bits float64
		want uint32
	}{
		{"negative-clamps-to-zero", -5, 0},
		{"zero", 0, 0},
		{"sub-quantum-truncates", 999, 0},
		{"one-quantum", 1000, 1},
		{"just-below-saturation", (float64(UnlimitedDemand) - 2) * 1e3, UnlimitedDemand - 2},
		{"at-saturation", float64(UnlimitedDemand) * 1e3, UnlimitedDemand - 1},
		{"far-past-saturation", 1e18, UnlimitedDemand - 1},
		{"positive-infinity", math.Inf(1), UnlimitedDemand - 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := KbpsDemand(tc.bits); got != tc.want {
				t.Fatalf("KbpsDemand(%g) = %d, want %d", tc.bits, got, tc.want)
			}
		})
	}
	// NaN must not panic and must not produce the unlimited sentinel.
	if got := KbpsDemand(math.NaN()); got == UnlimitedDemand {
		t.Fatalf("KbpsDemand(NaN) = UnlimitedDemand")
	}
	// The sentinel itself decodes to waterfill.Unlimited, distinct from
	// every encodable finite demand.
	f := FlowInfo{DemandKbps: UnlimitedDemand}
	if f.DemandBits() != waterfill.Unlimited {
		t.Fatalf("UnlimitedDemand decoded to %g, want waterfill.Unlimited", f.DemandBits())
	}
	g := FlowInfo{DemandKbps: UnlimitedDemand - 1}
	if g.DemandBits() == waterfill.Unlimited {
		t.Fatalf("max finite demand decoded as Unlimited")
	}
}
