// Package experiments contains one harness per table/figure of the paper's
// evaluation (§5). Each harness builds the workload, runs the relevant
// engine (routing analysis, packet simulator, fluid simulator, emulator or
// analytic model) and returns the same rows/series the paper reports.
//
// Every harness takes a Scale so the identical experiment runs both at
// paper scale (512-node 3D torus, via the cmd/ tools) and at a reduced
// test scale (64-node torus, via `go test` and the benchmarks). The
// EXPERIMENTS.md log records which scale produced which numbers.
package experiments

import (
	"fmt"
	"strings"

	"r2c2/internal/simtime"
	"r2c2/internal/topology"
)

// Scale fixes the experiment size.
type Scale struct {
	K, Dims  int          // torus geometry (paper: 8,3 = 512 nodes)
	LinkGbps float64      // link bandwidth (paper: 10)
	PropLat  simtime.Time // per-hop latency (paper: 100 ns)
	Flows    int          // flows per simulated run
	Tau      simtime.Time // default mean flow inter-arrival time
	Seed     int64
	// Reliable turns on the §6 reliability extension for R2C2 runs.
	Reliable bool
	// Parallel is the worker count for sweeps of independent simulated
	// runs (<= 0 means GOMAXPROCS; 1 forces sequential execution).
	// Results are byte-identical at any worker count.
	Parallel int
}

// PaperScale is the configuration of §5.2: the AMD SeaMicro-sized 512-node
// 3D torus.
func PaperScale() Scale {
	return Scale{K: 8, Dims: 3, LinkGbps: 10, PropLat: 100 * simtime.Nanosecond,
		Flows: 20000, Tau: simtime.Microsecond, Seed: 1}
}

// TestScale is a 64-node 3D torus that keeps `go test` and benchmarks
// fast while preserving every qualitative trend.
func TestScale() Scale {
	return Scale{K: 4, Dims: 3, LinkGbps: 10, PropLat: 100 * simtime.Nanosecond,
		Flows: 1200, Tau: 4 * simtime.Microsecond, Seed: 1}
}

// Torus builds the scale's topology.
func (s Scale) Torus() *topology.Graph {
	g, err := topology.NewTorus(s.K, s.Dims)
	if err != nil {
		panic(err)
	}
	return g
}

// Table is a printable result table: one header plus rows, all stringly so
// the cmd tools and EXPERIMENTS.md render identically.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish comma-separated values (cells are
// plain numbers and identifiers; no quoting needed), for piping into
// plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func g3(v float64) string { return fmt.Sprintf("%.3g", v) }
