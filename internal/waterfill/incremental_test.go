package waterfill

import (
	"math"
	"math/rand"
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/topology"
)

// ratesAgree is the oracle tolerance: 1e-6 relative, with an absolute
// floor of 1e-9 of link capacity (10 bits/s at 10 Gbps) so an exact zero
// on one side and a few ulps of accumulated-load dust on the other
// compare equal.
func ratesAgree(a, b, capacityBits float64) bool {
	d := math.Abs(a - b)
	return d <= math.Max(1e-6*math.Max(math.Abs(a), math.Abs(b)), 1e-9*capacityBits)
}

func TestIncrementalBasicAddRemove(t *testing.T) {
	inc := NewIncremental(Config{NumLinks: 1, Capacity: 9})
	f := netFlow(1)
	f.Phi = phi(0, 1)
	h1 := inc.Add(f)
	if r := inc.Rate(h1); math.Abs(r-9) > 1e-9 {
		t.Fatalf("single flow rate = %v, want 9", r)
	}
	h2 := inc.Add(f)
	h3 := inc.Add(f)
	for _, h := range []Handle{h1, h2, h3} {
		if r := inc.Rate(h); math.Abs(r-3) > 1e-9 {
			t.Fatalf("rate = %v, want 3", r)
		}
	}
	inc.Remove(h2)
	for _, h := range []Handle{h1, h3} {
		if r := inc.Rate(h); math.Abs(r-4.5) > 1e-9 {
			t.Fatalf("after remove: rate = %v, want 4.5", r)
		}
	}
	if inc.Len() != 2 {
		t.Fatalf("Len = %d, want 2", inc.Len())
	}
}

func TestIncrementalDemandUpdate(t *testing.T) {
	inc := NewIncremental(Config{NumLinks: 1, Capacity: 10})
	f := netFlow(1)
	f.Phi = phi(0, 1)
	h1, h2 := inc.Add(f), inc.Add(f)
	capped := f
	capped.Demand = 2
	inc.Update(h1, capped)
	if r := inc.Rate(h1); math.Abs(r-2) > 1e-9 {
		t.Fatalf("demand-capped rate = %v, want 2", r)
	}
	if r := inc.Rate(h2); math.Abs(r-8) > 1e-9 {
		t.Fatalf("released bandwidth not reallocated: %v, want 8", r)
	}
}

func TestIncrementalPriorityChange(t *testing.T) {
	inc := NewIncremental(Config{NumLinks: 1, Capacity: 10})
	f := netFlow(1)
	f.Phi = phi(0, 1)
	h1, h2 := inc.Add(f), inc.Add(f)
	hi := f
	hi.Priority = 3
	inc.Update(h1, hi)
	if r := inc.Rate(h1); math.Abs(r-10) > 1e-9 {
		t.Fatalf("promoted flow rate = %v, want 10", r)
	}
	if r := inc.Rate(h2); r > 1e-9 {
		t.Fatalf("starved flow rate = %v, want 0", r)
	}
	inc.Update(h1, f) // demote back
	for _, h := range []Handle{h1, h2} {
		if r := inc.Rate(h); math.Abs(r-5) > 1e-9 {
			t.Fatalf("after demotion: rate = %v, want 5", r)
		}
	}
}

func TestIncrementalHostLocal(t *testing.T) {
	inc := NewIncremental(Config{NumLinks: 1, Capacity: 10, Headroom: 0.05})
	h := inc.Add(Flow{Weight: 1, Demand: Unlimited}) // empty Phi
	if r := inc.Rate(h); r != 10 {
		t.Fatalf("host-local unlimited rate = %v, want line rate 10", r)
	}
	inc.Update(h, Flow{Weight: 1, Demand: 4})
	if r := inc.Rate(h); r != 4 {
		t.Fatalf("host-local capped rate = %v, want 4", r)
	}
}

func TestIncrementalDeadHandlePanics(t *testing.T) {
	inc := NewIncremental(Config{NumLinks: 1, Capacity: 1})
	f := netFlow(1)
	f.Phi = phi(0, 1)
	h := inc.Add(f)
	inc.Remove(h)
	assertPanics(t, "rate of dead handle", func() { inc.Rate(h) })
	assertPanics(t, "double remove", func() { inc.Remove(h) })
	assertPanics(t, "unknown handle", func() { inc.Remove(42) })
}

// churner drives identical random flow-event streams through an Incremental
// and the from-scratch Allocator.
type churner struct {
	t    *testing.T
	rng  *rand.Rand
	tab  *routing.Table
	g    *topology.Graph
	cfg  Config
	inc  *Incremental
	ref  *Allocator
	live []Handle // handles with live flows, in insertion order
	last string   // description of the most recent event, for failure dumps
}

func newChurner(t *testing.T, seed int64) *churner {
	g, err := topology.NewTorus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{NumLinks: g.NumLinks(), Capacity: 10e9, Headroom: 0.05}
	return &churner{
		t:   t,
		rng: rand.New(rand.NewSource(seed)),
		tab: routing.NewTable(g),
		g:   g,
		cfg: cfg,
		inc: NewIncremental(cfg),
		ref: NewAllocator(cfg),
	}
}

// randomFlow draws a spec mixing protocols, weights, priorities, demand
// caps and the occasional host-local flow.
func (c *churner) randomFlow() Flow {
	f := Flow{
		Weight:   1 + float64(c.rng.Intn(4)),
		Priority: uint8(c.rng.Intn(3)),
		Demand:   Unlimited,
	}
	switch c.rng.Intn(10) {
	case 0: // host-local: empty φ
		if c.rng.Intn(2) == 0 {
			f.Demand = c.rng.Float64() * 2e10
		}
		return f
	default:
		protos := []routing.Protocol{routing.RPS, routing.DOR, routing.VLB, routing.WLB}
		src := topology.NodeID(c.rng.Intn(c.g.Nodes()))
		dst := topology.NodeID(c.rng.Intn(c.g.Nodes()))
		for dst == src {
			dst = topology.NodeID(c.rng.Intn(c.g.Nodes()))
		}
		f.Phi = c.tab.Phi(protos[c.rng.Intn(len(protos))], src, dst)
	}
	switch c.rng.Intn(3) {
	case 0: // demand-capped, sometimes below fair share, sometimes above
		f.Demand = c.rng.Float64() * 12e9
	case 1:
		if c.rng.Intn(5) == 0 {
			f.Demand = 0 // paused application
		}
	}
	return f
}

// step applies one random event to the incremental allocator.
func (c *churner) step(maxFlows int) {
	switch {
	case len(c.live) == 0 || (len(c.live) < maxFlows && c.rng.Intn(2) == 0):
		h := c.inc.Add(c.randomFlow())
		c.live = append(c.live, h)
		c.last = "add handle " + itoa(int(h))
	case c.rng.Intn(2) == 0: // demand/weight/priority/route change
		i := c.rng.Intn(len(c.live))
		h := c.live[i]
		f := c.inc.FlowSpec(h)
		switch c.rng.Intn(4) {
		case 0:
			f.Demand = c.rng.Float64() * 12e9
			c.last = "update handle " + itoa(int(h)) + " demand-cap"
		case 1:
			f.Demand = Unlimited
			c.last = "update handle " + itoa(int(h)) + " demand-unlimited"
		case 2:
			f.Priority = uint8(c.rng.Intn(3))
			c.last = "update handle " + itoa(int(h)) + " priority"
		default:
			f = c.randomFlow()
			c.last = "update handle " + itoa(int(h)) + " respec"
		}
		c.inc.Update(h, f)
	default:
		i := c.rng.Intn(len(c.live))
		h := c.live[i]
		c.live[i] = c.live[len(c.live)-1]
		c.live = c.live[:len(c.live)-1]
		c.inc.Remove(h)
		c.last = "remove handle " + itoa(int(h))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// verify cross-checks every live rate against a from-scratch allocation.
func (c *churner) verify(event int) {
	specs := make([]Flow, len(c.live))
	for i, h := range c.live {
		specs[i] = c.inc.FlowSpec(h)
	}
	want := c.ref.Allocate(specs)
	for i, h := range c.live {
		got := c.inc.Rate(h)
		if !ratesAgree(got, want[i], c.cfg.Capacity) {
			c.t.Fatalf("event %d: flow %d (handle %d): incremental %v, from-scratch %v (rel %v)",
				event, i, h, got, want[i], math.Abs(got-want[i])/math.Max(math.Abs(want[i]), 1))
		}
	}
}

// The differential oracle of the incremental path: >=10k random add /
// remove / demand-change / priority-change / route-change events with
// mixed priorities, demands and host-local flows, cross-checked against
// the from-scratch allocator after every single event. This is the test
// that licenses wiring the incremental path into the control plane.
func TestIncrementalOracle10kEvents(t *testing.T) {
	events := 10500
	maxFlows := 96
	if testing.Short() {
		events = 1500
	}
	c := newChurner(t, 20250806)
	for ev := 0; ev < events; ev++ {
		c.step(maxFlows)
		c.verify(ev)
	}
	if c.inc.Solves == 0 {
		t.Fatal("incremental path never solved anything")
	}
}

// A second oracle over Rebuild interleaved with churn: bulk loads must
// leave the cached state just as consistent as a pure delta history.
func TestIncrementalOracleWithRebuilds(t *testing.T) {
	c := newChurner(t, 99)
	events := 2500
	if testing.Short() {
		events = 500
	}
	for ev := 0; ev < events; ev++ {
		if ev%500 == 250 {
			specs := make([]Flow, len(c.live))
			for i, h := range c.live {
				specs[i] = c.inc.FlowSpec(h)
			}
			c.live = c.inc.Rebuild(specs)
		}
		c.step(64)
		c.verify(ev)
	}
}
