//go:build !debug

package sim

// invariantsEnabled is false in release builds; the guarded assertion
// calls compile away entirely. Build with -tags debug to enable them.
const invariantsEnabled = false

func assertInvariant(bool, string, ...any) {}
