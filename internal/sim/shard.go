package sim

// Sharded simulation engine (DESIGN.md §14–15): the fabric is partitioned
// by rack (topology.NewPartition), every rack shard runs its own Engine,
// Network and R2C2 instance over the full graph but owns only its rack's
// node/port state, and the shards execute in parallel under a conservative-
// lookahead epoch barrier. Intra-rack events never leave their shard;
// packets whose next hop belongs to another shard cross through per-pair
// boundary queues that the orchestrator drains serially at every epoch
// boundary, in deterministic (at, emission time, source shard, emission
// index) order. The R2C2 control plane is aggregated by default: each ρ
// tick, every shard summarises the flows its racks source, the summaries
// tree-reduce into one global view (topology.ReductionTree), and the
// resulting allocation distributes back — per-shard control work stops
// scaling with the total flow count (RunConfig.ReplicatedControlPlane
// restores the replicated oracle).
//
// The lookahead window Δ is the minimum latency any cross-shard interaction
// can have: the smallest boundary-link propagation delay, additionally
// clamped by the fastest §3.2 drop-notification round trip (the only other
// cross-shard effect). An event executing at time t > E can therefore only
// produce cross-shard work at t' ≥ t+Δ > E+Δ, so running every shard
// independently through (E, E+Δ] and exchanging handoffs at the barrier
// preserves exact causality. Results are byte-identical to the serial
// engine (RunConfig.Shards ≤ 1), which is kept as the differential oracle —
// the same role UseLegacyHeap plays for the timer wheel.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"r2c2/internal/core"
	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

// handoff is one cross-shard interaction, flattened to plain data: either a
// packet crossing a boundary link (scheduled as an evArrive in the
// destination shard) or a §3.2 broadcast-retransmission request routed to
// the origin's shard (ctrl). Broadcast payloads are shared by pointer; they
// are immutable after publication and the epoch barrier orders the accesses.
type handoff struct {
	at   simtime.Time
	emit simtime.Time    // source shard's clock at export: global emission stamp
	node topology.NodeID // arrival node / reflood origin
	ctrl bool            // reflood request rather than a packet

	kind      PacketKind
	size      int
	flow      wire.FlowID
	src, dst  topology.NodeID
	seq       uint32
	payload   int
	retx      bool
	retries   uint8
	bcast     *wire.Broadcast
	flowSize  int64
	flowStart simtime.Time
	path      []topology.LinkID // remaining source route (data/ack)
}

// boundaryQueue is one directed src-shard→dst-shard mailbox. The source
// shard appends during its run phase; the orchestrator drains it serially
// between phases, so it is never accessed concurrently. Slots (and their
// path buffers) recycle across epochs, keeping the steady state
// allocation-free.
type boundaryQueue struct {
	slots []handoff
	n     int
}

// push returns the next zeroed slot, retaining its recycled path buffer.
//
//r2c2:boundary
func (q *boundaryQueue) push() *handoff {
	if q.n == len(q.slots) {
		//lint:ignore alloc-hotpath slot growth is amortised: the queue retains capacity across epochs
		q.slots = append(q.slots, handoff{})
	}
	h := &q.slots[q.n]
	q.n++
	path := h.path[:0]
	*h = handoff{path: path}
	return h
}

// reset empties the queue, keeping the slots for reuse.
//
//r2c2:boundary
func (q *boundaryQueue) reset() { q.n = 0 }

// shardCtx is one shard's boundary interface, referenced by its Network and
// R2C2 so the hot path can test ownership and export handoffs without
// reaching back into the orchestrator. It is written only by the shard's
// goroutine during run phases; the orchestrator reads it between phases,
// ordered by the epoch barrier.
//
//r2c2:shardowned
type shardCtx struct {
	self    int32
	shardOf []int32          // partition assignment, shared read-only
	out     []*boundaryQueue // out[d]: handoffs bound for shard d (out[self] nil)

	// ctrl counts replicated control events (recompute ticks, fault
	// injections, reroute firings) that run once in EVERY shard but once
	// total in a serial run: the merge subtracts the S-1 duplicates from
	// the event total and asserts the count is identical across shards.
	ctrl uint64
	// doneFlows counts Done transitions observed by this shard's receiver
	// logic; every flow completes in exactly one shard, so the sum across
	// shards matches the serial engine's completed-flow count.
	doneFlows int
	// handoffs counts exported boundary crossings (per-shard utilisation
	// statistic).
	handoffs uint64
	// tickHashes logs, per recomputation tick, the distinct view hashes
	// this shard ran the allocator for; foldTicks unions them per tick
	// across shards at every barrier to reproduce the serial
	// Recomputations count, then truncates them — the log never grows
	// beyond the ticks of one epoch.
	tickHashes [][]uint64

	// Aggregated control plane (DESIGN.md §15). replicated mirrors
	// RunConfig.ReplicatedControlPlane: when set, each shard recomputes
	// from its own views every tick (the differential oracle) and the
	// fields below stay idle.
	replicated bool
	// tickPending is set by aggregateTick when the shard's engine pauses
	// at a recomputation tick; the orchestrator asserts every shard agrees
	// and clears it during the reduction.
	tickPending bool
	// summary holds the shard's sourced-flow demand summary for the
	// pending tick; the orchestrator tree-reduces the summaries bottom-up,
	// merging children into parents (plain data crossing the barrier).
	summary core.DemandSummary
	// globalAlloc is the tick's reduced global allocation, published by the
	// orchestrator before the apply phase. Immutable after publication.
	globalAlloc *core.Allocation
	// ctrlNs accumulates wall-clock nanoseconds spent in control-plane
	// work (tick aggregation or replicated recompute, reduction merges,
	// apply). Reported per shard (ShardStat.CtrlNs), excluded from
	// byte-identity like BusyNs.
	ctrlNs int64
}

// shardState bundles one shard's engine stack. It is driven by exactly one
// worker goroutine per phase (the work-stealing counter hands a shard to a
// single worker; the WaitGroup barrier orders phases).
//
//r2c2:shardowned
type shardState struct {
	ctx *shardCtx
	eng *Engine
	net *Network
	r2  *R2C2

	busyNs int64 // wall-clock time spent inside run phases
}

// run advances the shard's engine to `until`, accounting busy time.
// The wall clock here is deliberate: busyNs measures real execution time
// for the per-shard utilisation report (ShardStat.BusyNs), which is
// documented as nondeterministic and excluded from byte-identity — no
// simulation decision ever reads it.
func (st *shardState) run(until simtime.Time) {
	//lint:ignore no-wallclock utilisation accounting only; excluded from Results byte-identity
	t0 := time.Now()
	st.eng.Run(until)
	//lint:ignore no-wallclock,unit-taint utilisation accounting in wall nanoseconds; excluded from Results byte-identity
	st.busyNs += time.Since(t0).Nanoseconds()
}

// applyTick runs the apply half of an aggregated recomputation tick: the
// shard re-arms its own senders from the published global allocation.
// Control-plane time is accounted like run's busy time.
func (st *shardState) applyTick() {
	//lint:ignore no-wallclock control-plane cost accounting only; excluded from Results byte-identity
	t0 := time.Now()
	st.r2.applyAggregatedTick()
	//lint:ignore no-wallclock,unit-taint control-plane cost accounting in wall nanoseconds; excluded from Results byte-identity
	st.ctx.ctrlNs += time.Since(t0).Nanoseconds()
}

// ingest files one drained handoff into this (destination) shard's engine.
// The engine assigns a fresh sequence number at ingest, but the handoff
// carries its source shard's emission stamp into the event, so exact-
// timestamp ties against local events (and other handoffs) resolve by
// global emission order — the serial engine's tie-break — rather than by
// ingest order.
//
//r2c2:boundary
func (st *shardState) ingest(h *handoff) {
	if h.ctrl {
		origin, b, retries := h.node, h.bcast, h.retries
		st.eng.scheduleHandoff(h.at, h.emit, event{kind: evFunc, fn: func() {
			st.r2.reflood(origin, b, retries)
		}})
		return
	}
	pkt := st.net.newPacket()
	pkt.Kind = h.kind
	pkt.SizeBytes = h.size
	pkt.Flow = h.flow
	pkt.Src = h.src
	pkt.Dst = h.dst
	pkt.Seq = h.seq
	pkt.Payload = h.payload
	pkt.Retx = h.retx
	pkt.Retries = h.retries
	pkt.flowSize = h.flowSize
	pkt.flowStart = h.flowStart
	if h.kind == KindBroadcast {
		pkt.Bcast = h.bcast
	} else {
		//lint:ignore alloc-hotpath scratch growth is amortised: packets recycle their route buffers through the arena
		pkt.scratch = append(pkt.scratch[:0], h.path...)
		pkt.Path = pkt.scratch
	}
	st.eng.scheduleHandoff(h.at, h.emit, event{kind: evArrive, node: h.node, pkt: pkt})
}

// ShardStat reports one shard's execution statistics (Results.ShardStats).
type ShardStat struct {
	Shard    int
	Nodes    int    // vertices owned by the shard
	Events   uint64 // events processed by the shard's engine
	Handoffs uint64 // boundary handoffs exported to other shards
	BusyNs   int64  // wall-clock nanoseconds inside run phases
	CtrlNs   int64  // wall-clock nanoseconds in control-plane work (ticks, reduction, apply)
}

// Phase kinds the persistent workers execute (phaseKind).
const (
	phaseRun      = iota // advance each claimed shard's engine to phaseUntil
	phaseApplyRun        // applyTick, then resume the engine to phaseUntil
)

// shardedRun is the orchestrator. It is deliberately NOT marked
// //r2c2:shardowned: workers are spawned as methods on it (the documented
// escape hatch for fan-out), and each shard's owned state is only ever
// touched by the single worker that claimed it off the atomic counter.
type shardedRun struct {
	cfg     RunConfig
	part    *topology.Partition
	shards  []*shardState
	delta   simtime.Time
	workers int
	tree    *topology.ReductionTree // nil when ReplicatedControlPlane is set

	// Persistent worker pool: spawned once per run, parked on startCh
	// between phases (spawning per epoch churned ~1.5M goroutines per
	// benchmark run at 8 workers). The orchestrator writes phaseKind and
	// phaseUntil, then sends one token per worker — the channel send is
	// the happens-before edge publishing the phase parameters — and
	// wg.Wait is the barrier closing the phase. Closing startCh retires
	// the pool.
	phaseKind  int
	phaseUntil simtime.Time
	startCh    chan struct{}

	next   atomic.Int32 // work-stealing shard cursor for the current phase
	wg     sync.WaitGroup
	gather []*handoff // drain scratch, reused across epochs

	// Folded Recomputations accounting: foldTicks unions each tick's
	// distinct view hashes across shards at every barrier and accumulates
	// the count here, so no shard's tickHashes log ever holds more than one
	// epoch's ticks (the log was O(ticks) memory for the whole run before).
	recomputations uint64
	ticksFolded    uint64
	seen           map[uint64]bool // fold scratch, reused
}

// lookahead computes the conservative window Δ: the minimum boundary-link
// propagation delay, clamped by the fastest cross-shard drop notification
// (onDrop schedules the reflood at ≥ 2·Diameter·(prop+transmit) from the
// drop, since retries start at 1), and by ≥ 1 ps so epochs always advance.
func lookahead(g *topology.Graph, netCfg NetConfig, part *topology.Partition) simtime.Time {
	netCfg.defaults()
	var minProp simtime.Time
	for i, lid := range part.BoundaryLinks() {
		d := netCfg.PropDelay
		if netCfg.InterRackPropDelay != 0 && g.IsInterRack(lid) {
			d = netCfg.InterRackPropDelay
		}
		if i == 0 || d < minProp {
			minProp = d
		}
	}
	notify := 2 * simtime.Time(g.Diameter()) *
		(netCfg.PropDelay + simtime.TransmitTime(MTU, netCfg.LinkGbps))
	if notify < minProp {
		minProp = notify
	}
	if minProp < 1 {
		minProp = 1
	}
	return minProp
}

// runSharded executes one experiment on the sharded engine. The logical
// partition is always the rack partition — cfg.Shards only sets the worker
// count — so Results are byte-identical at every worker count, and
// identical to the serial engine up to exact-timestamp cross-shard ties
// (see DESIGN.md §14).
func runSharded(cfg RunConfig) *Results {
	if cfg.Transport != TransportR2C2 {
		panic(fmt.Sprintf("sim: sharded runs require TransportR2C2, got %v (the PFQ back-pressure fabric and TCP baseline are serial-only)", cfg.Transport))
	}
	if cfg.LegacyHeapScheduler {
		panic("sim: sharded runs require the timer-wheel scheduler (LegacyHeapScheduler is the serial oracle's knob)")
	}
	if cfg.Net.PerFlowQueues {
		panic("sim: per-flow-queue back-pressure cannot be sharded (hop-by-hop credits cross shards with zero lookahead)")
	}
	part, err := topology.NewPartition(cfg.Graph)
	if err != nil {
		panic(fmt.Sprintf("sim: sharded run needs a rack-partitioned fabric: %v", err))
	}
	S := part.Shards()
	workers := cfg.Shards
	if workers > S {
		workers = S
	}

	maxTime := cfg.MaxTime
	if maxTime == 0 {
		maxTime = cfg.Arrivals[len(cfg.Arrivals)-1].At + 100*simtime.Millisecond
	}

	sr := &shardedRun{
		cfg:     cfg,
		part:    part,
		delta:   lookahead(cfg.Graph, cfg.Net, part),
		workers: workers,
	}
	if !cfg.ReplicatedControlPlane {
		tree, err := topology.NewReductionTree(cfg.Graph, part)
		if err != nil {
			panic(fmt.Sprintf("sim: aggregated control plane needs a connected rack quotient: %v", err))
		}
		sr.tree = tree
	}
	assign := part.ShardAssignment()
	for s := 0; s < S; s++ {
		ctx := &shardCtx{self: int32(s), shardOf: assign, out: make([]*boundaryQueue, S),
			replicated: cfg.ReplicatedControlPlane}
		for d := 0; d < S; d++ {
			if d != s {
				ctx.out[d] = &boundaryQueue{}
			}
		}
		eng := &Engine{}
		net := NewNetwork(cfg.Graph, eng, cfg.Net)
		net.sh = ctx // before NewR2C2: the transport mirrors it
		r2 := NewR2C2(net, routing.NewTable(cfg.Graph), cfg.R2C2)
		if cfg.Faults.Len() > 0 {
			// The whole schedule is replicated into every shard: each must
			// observe the same degraded fabric (ctrl subtracts duplicates).
			r2.ApplyFaults(cfg.Faults)
		}
		for _, a := range cfg.Arrivals {
			if assign[a.Src] != int32(s) {
				continue // the source's owner starts the flow
			}
			arr := a
			eng.Schedule(arr.At, func() {
				r2.StartFlow(arr.Src, arr.Dst, arr.SizeBytes, arr.Weight, arr.Priority)
			})
		}
		sr.shards = append(sr.shards, &shardState{ctx: ctx, eng: eng, net: net, r2: r2})
	}

	if workers > 1 {
		// Persistent worker pool: spawned once, parked on startCh between
		// phases, retired when the run returns.
		sr.startCh = make(chan struct{})
		for w := 0; w < workers; w++ {
			go sr.workerLoop()
		}
		defer close(sr.startCh)
	}

	// Epoch loop, nested inside the serial engine's completion-check slices
	// so early termination happens at the very same boundaries.
	total := len(cfg.Arrivals)
	slice := maxTime / 64
	if slice < simtime.Microsecond {
		slice = simtime.Microsecond
	}
	now := simtime.Time(0)
	end := maxTime
	for now < maxTime {
		sliceEnd := now + slice
		if sliceEnd > maxTime {
			sliceEnd = maxTime
		}
		for now < sliceEnd {
			// Idle jump: nothing can execute before the earliest pending
			// event T*, and events at T* export handoffs at ≥ T*+Δ, so the
			// epoch may end at max(now+Δ, T*) without losing causality.
			tstar, any := sr.nextEventAt()
			next := now + sr.delta
			if any && tstar > next {
				next = tstar
			}
			if sr.tree != nil {
				// Aggregated control: no epoch may span a recomputation
				// tick, so every shard's engine pauses at the tick together
				// and the reduction runs at the barrier. The tick is itself
				// a pending event in every engine, so tstar ≤ tickAt and
				// the clamp never starves the inline idle jump below.
				if tickAt := sr.shards[0].r2.nextTick; next > tickAt {
					next = tickAt
				}
			}
			if !any || next > sliceEnd {
				next = sliceEnd
			}
			if !any || tstar > next {
				// No shard has work in this window: advance clocks inline
				// instead of paying the fan-out barrier.
				for _, st := range sr.shards {
					st.eng.Run(next)
				}
			} else {
				sr.runPhase(next)
				if sr.tree != nil && sr.shards[0].ctx.tickPending {
					sr.reduceTick(next)
				}
				sr.drain()
			}
			now = next
		}
		opened, done := 0, 0
		for _, st := range sr.shards {
			opened += len(st.r2.ledger.order)
			done += st.ctx.doneFlows
		}
		if opened == total && done == total {
			end = sliceEnd
			break
		}
		pending := false
		for _, st := range sr.shards {
			if st.eng.Pending() {
				pending = true
				break
			}
		}
		if !pending {
			end = sliceEnd
			break
		}
	}

	return sr.merge(end)
}

// nextEventAt returns the earliest scheduled event across all shards.
func (sr *shardedRun) nextEventAt() (simtime.Time, bool) {
	var min simtime.Time
	any := false
	for _, st := range sr.shards {
		if at, ok := st.eng.NextEventAt(); ok && (!any || at < min) {
			min, any = at, true
		}
	}
	return min, any
}

// runPhase executes one parallel epoch: every shard advances to `until`.
// Workers claim shards off the atomic cursor, so each shard is driven by
// exactly one goroutine; the WaitGroup is the epoch barrier (and the
// happens-before edge for the orchestrator's serial drain).
func (sr *shardedRun) runPhase(until simtime.Time) {
	sr.phaseKind = phaseRun
	sr.phaseUntil = until
	sr.barrier()
}

// applyRunPhase re-arms every shard's senders from the published global
// allocation and resumes the interrupted run window, as one fused parallel
// phase. Fusing is safe: the apply schedules only shard-local events, the
// epoch clamp pins the tick to the window's end (until == tick time), so
// the resume only processes the tick instant's remaining same-timestamp
// events, whose cross-shard effects land ≥ Δ past the barrier anyway.
func (sr *shardedRun) applyRunPhase(until simtime.Time) {
	sr.phaseKind = phaseApplyRun
	sr.phaseUntil = until
	sr.barrier()
}

// barrier runs the current phase over all shards and waits for completion.
// With one worker the phase runs inline; otherwise the parked pool is
// woken with one token per worker.
func (sr *shardedRun) barrier() {
	if sr.workers <= 1 {
		for _, st := range sr.shards {
			sr.phaseShard(st)
		}
		return
	}
	sr.next.Store(0)
	n := sr.workers
	sr.wg.Add(n)
	for w := 0; w < n; w++ {
		sr.startCh <- struct{}{}
	}
	sr.wg.Wait()
}

// phaseShard executes the current phase on one shard.
func (sr *shardedRun) phaseShard(st *shardState) {
	if sr.phaseKind == phaseApplyRun {
		st.applyTick()
	}
	st.run(sr.phaseUntil)
}

// workerLoop is one persistent pool worker: it parks on startCh, and on
// each wake-up claims shards off the atomic cursor until the phase is
// exhausted. The loop exits when the orchestrator closes startCh at the
// end of the run.
func (sr *shardedRun) workerLoop() {
	for range sr.startCh {
		for {
			i := int(sr.next.Add(1)) - 1
			if i >= len(sr.shards) {
				break
			}
			sr.phaseShard(sr.shards[i])
		}
		sr.wg.Done()
	}
}

// reduceTick runs the cross-shard half of an aggregated recomputation tick:
// every shard's engine has paused at the tick with its sourced-flow summary
// built; the summaries merge bottom-up along the reduction tree (children
// into parents, reverse BFS order), the root turns the global summary into
// the tick's allocation, the allocation is published to every shard, and a
// single fused parallel phase re-arms the senders and resumes the run
// window the tick interrupted.
func (sr *shardedRun) reduceTick(until simtime.Time) {
	for _, st := range sr.shards {
		if !st.ctx.tickPending {
			panic(fmt.Sprintf("sim: shard %d missed the recomputation tick the other shards paused at", st.ctx.self))
		}
		st.ctx.tickPending = false
	}
	order := sr.tree.Order()
	for i := len(order) - 1; i >= 0; i-- {
		child := order[i]
		parent := sr.tree.Parent(child)
		if parent < 0 {
			continue // the root
		}
		//lint:ignore no-wallclock control-plane cost accounting only; excluded from Results byte-identity
		t0 := time.Now()
		sr.shards[parent].ctx.summary.Merge(&sr.shards[child].ctx.summary)
		//lint:ignore no-wallclock,unit-taint control-plane cost accounting in wall nanoseconds; excluded from Results byte-identity
		sr.shards[parent].ctx.ctrlNs += time.Since(t0).Nanoseconds()
	}
	root := sr.shards[sr.tree.Root()]
	//lint:ignore no-wallclock control-plane cost accounting only; excluded from Results byte-identity
	t0 := time.Now()
	global := root.r2.computeGlobal(&root.ctx.summary)
	//lint:ignore no-wallclock,unit-taint control-plane cost accounting in wall nanoseconds; excluded from Results byte-identity
	root.ctx.ctrlNs += time.Since(t0).Nanoseconds()
	for _, st := range sr.shards {
		st.ctx.globalAlloc = global
	}
	sr.applyRunPhase(until)
}

// foldTicks folds the shards' per-tick view-hash logs into the running
// Recomputations count — the serial engine dedups allocator runs per tick
// by view hash across ALL nodes, so the union of the shards' distinct hash
// sets reproduces its count exactly. Called at every drain (and once more
// at merge), so the logs stay bounded by one epoch's ticks instead of
// growing O(ticks) for the run.
func (sr *shardedRun) foldTicks() {
	n := len(sr.shards[0].ctx.tickHashes)
	for _, st := range sr.shards {
		if len(st.ctx.tickHashes) != n {
			panic(fmt.Sprintf("sim: shard %d logged %d recomputation ticks, shard 0 logged %d",
				st.ctx.self, len(st.ctx.tickHashes), n))
		}
	}
	if n == 0 {
		return
	}
	if sr.seen == nil {
		sr.seen = make(map[uint64]bool)
	}
	for t := 0; t < n; t++ {
		clear(sr.seen)
		for _, st := range sr.shards {
			for _, h := range st.ctx.tickHashes[t] {
				sr.seen[h] = true
			}
		}
		sr.recomputations += uint64(len(sr.seen))
	}
	sr.ticksFolded += uint64(n)
	for _, st := range sr.shards {
		st.ctx.tickHashes = st.ctx.tickHashes[:0]
	}
}

// drain moves every epoch's boundary handoffs into their destination
// shards, serially and deterministically: per destination, handoffs are
// gathered in source-shard order and stably sorted by (fire time, emission
// time), so the ingest order — and with it the destination engine's FIFO
// tie-break — is (at, emission time, source shard, emission index)
// regardless of worker count. Ordering by emission time matches the serial
// engine's schedule-order tie-break whenever the emission instants differ;
// only simultaneous emissions from different shards retain the
// (source shard, emission index) policy (see DESIGN.md §15).
//
//r2c2:boundary
func (sr *shardedRun) drain() {
	sr.foldTicks() // every shard is at the barrier: fold this epoch's ticks
	for d := range sr.shards {
		buf := sr.gather[:0]
		for s := range sr.shards {
			if s == d {
				continue
			}
			q := sr.shards[s].ctx.out[d]
			for i := 0; i < q.n; i++ {
				buf = append(buf, &q.slots[i])
			}
		}
		sort.SliceStable(buf, func(i, j int) bool {
			if buf[i].at != buf[j].at {
				return buf[i].at < buf[j].at
			}
			return buf[i].emit < buf[j].emit
		})
		for _, h := range buf {
			sr.shards[d].ingest(h)
		}
		for s := range sr.shards {
			if s != d {
				sr.shards[s].ctx.out[d].reset()
			}
		}
		sr.gather = buf[:0]
	}
}

// merge assembles serial-identical Results from the shard set.
func (sr *shardedRun) merge(end simtime.Time) *Results {
	cfg, S := sr.cfg, len(sr.shards)

	// Flow records, in the serial engine's creation order: arrivals sorted
	// stably by time (Schedule's FIFO tie-break preserves list order), each
	// pulled from its source shard's ledger via a per-shard cursor. Records
	// of cross-shard flows get their delivery fields folded in from the
	// receive-side record the destination shard opened lazily.
	idx := make([]int, len(cfg.Arrivals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return cfg.Arrivals[idx[a]].At < cfg.Arrivals[idx[b]].At })
	cursors := make([]int, S)
	order := make([]*FlowRecord, 0, len(cfg.Arrivals))
	for _, i := range idx {
		s := sr.part.ShardOf(cfg.Arrivals[i].Src)
		srcLedger := sr.shards[s].r2.ledger
		if cursors[s] >= len(srcLedger.order) {
			break // the run stopped before this arrival fired
		}
		rec := srcLedger.order[cursors[s]]
		cursors[s]++
		if d := sr.part.ShardOf(rec.Dst); d != s {
			if rrec := sr.shards[d].r2.ledger.get(rec.ID); rrec != nil {
				rec.BytesRcvd = rrec.BytesRcvd
				rec.Done = rrec.Done
				rec.Finished = rrec.Finished
			}
		}
		order = append(order, rec)
	}

	res := &Results{Transport: cfg.Transport, EndTime: end}
	res.addFlows(order)

	// Replicated-control correction: every shard must have executed the
	// identical control sequence; subtract the S-1 duplicates of each.
	ctrl := sr.shards[0].ctx.ctrl
	rounds := sr.shards[0].r2.RecomputeRounds
	reroutes := sr.shards[0].r2.FailureReroutes
	for _, st := range sr.shards {
		if st.ctx.ctrl != ctrl || st.r2.RecomputeRounds != rounds ||
			st.r2.FailureReroutes != reroutes {
			panic(fmt.Sprintf("sim: shard control divergence: ctrl %d/%d rounds %d/%d reroutes %d/%d",
				st.ctx.ctrl, ctrl, st.r2.RecomputeRounds, rounds,
				st.r2.FailureReroutes, reroutes))
		}
	}
	res.RecomputeRounds = rounds
	res.FailureReroutes = reroutes
	for _, st := range sr.shards {
		res.Events += st.eng.Processed()
		res.Drops += st.net.TotalDrops()
		res.BcastBytes += st.net.BcastBytesOnWire
		res.Reorder.AddAll(st.r2.Reorder.Values())
	}
	res.Events -= uint64(S-1) * ctrl

	// Recomputations were folded at every drain; pick up ticks processed
	// since the last barrier (replicated-mode inline advances can tick
	// without draining) and cross-check the fold saw every round.
	sr.foldTicks()
	if sr.ticksFolded != rounds {
		panic(fmt.Sprintf("sim: folded %d recomputation ticks, shards ran %d rounds", sr.ticksFolded, rounds))
	}
	res.Recomputations = sr.recomputations

	// Per-port peaks live with the port's transmitting shard (the owner of
	// the link's From node); other shards never enqueue on that port.
	maxq := make([]float64, cfg.Graph.NumLinks())
	samples := make([][]float64, S)
	for s, st := range sr.shards {
		samples[s] = st.net.MaxQueueSample()
	}
	for lid := range maxq {
		owner := sr.part.ShardOf(cfg.Graph.Link(topology.LinkID(lid)).From)
		maxq[lid] = samples[owner][lid]
	}
	res.MaxQueue.AddAll(maxq)

	for s, st := range sr.shards {
		nodes := 0
		for _, a := range sr.part.ShardAssignment() {
			if a == int32(s) {
				nodes++
			}
		}
		res.ShardStats = append(res.ShardStats, ShardStat{
			Shard:    s,
			Nodes:    nodes,
			Events:   st.eng.Processed(),
			Handoffs: st.ctx.handoffs,
			BusyNs:   st.busyNs,
			CtrlNs:   st.ctx.ctrlNs,
		})
	}
	return res
}
