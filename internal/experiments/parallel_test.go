package experiments

import (
	"reflect"
	"sync/atomic"
	"testing"

	"r2c2/internal/sim"
	"r2c2/internal/simtime"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 37
		var hits [n]int32
		parallelFor(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
	// Zero jobs must not deadlock or panic.
	parallelFor(4, 0, func(i int) { t.Fatal("job ran with n=0") })
}

// TestRunParallelDeterministic is the regression test for the parallel
// harness: the same configuration batch must produce identical Results —
// every flow record, FCT sample and event count — whether it runs on one
// worker or eight. Each run owns its engine and RNG state, and results
// merge in input order, so the worker count can only change wall-clock
// time, never output.
func TestRunParallelDeterministic(t *testing.T) {
	s := TestScale()
	s.Flows = 150
	g := s.Torus()
	var cfgs []sim.RunConfig
	for _, tau := range []simtime.Time{4 * simtime.Microsecond, 40 * simtime.Microsecond} {
		cfgs = append(cfgs, transportConfigs(g, s, tau, 0.05, 500*simtime.Microsecond)...)
	}

	seq := RunParallel(1, cfgs)
	par := RunParallel(8, cfgs)
	if len(seq) != len(cfgs) || len(par) != len(cfgs) {
		t.Fatalf("result count: seq=%d par=%d want %d", len(seq), len(par), len(cfgs))
	}
	for i := range cfgs {
		if seq[i].Completed == 0 {
			t.Fatalf("cfg %d (%v) completed no flows", i, cfgs[i].Transport)
		}
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("cfg %d (%v): parallel run diverged from sequential\nseq: completed=%d events=%d drops=%d\npar: completed=%d events=%d drops=%d",
				i, cfgs[i].Transport,
				seq[i].Completed, seq[i].Events, seq[i].Drops,
				par[i].Completed, par[i].Events, par[i].Drops)
		}
	}
}
