package sim

import (
	"math"
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/trafficgen"
	"r2c2/internal/wire"
)

// --- R2C2 transport ---

func newR2C2Net(t testing.TB, g *topology.Graph, cfg R2C2Config) (*Engine, *Network, *R2C2) {
	t.Helper()
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	tab := routing.NewTable(g)
	r := NewR2C2(net, tab, cfg)
	return eng, net, r
}

func TestR2C2SingleFlowCompletes(t *testing.T) {
	g := torus(t, 4, 2)
	eng, net, r := newR2C2Net(t, g, R2C2Config{Headroom: 0.05, Protocol: routing.RPS})
	id := r.StartFlow(0, 5, 1<<20, 1, 0)
	eng.Run(50 * simtime.Millisecond)
	rec := r.Ledger()[id]
	if !rec.Done {
		t.Fatalf("flow incomplete: %d/%d bytes", rec.BytesRcvd, rec.SizeBytes)
	}
	if net.TotalDrops() != 0 {
		t.Fatalf("drops = %d", net.TotalDrops())
	}
	// 1 MB at ~10 Gbps minus headroom and header overhead: under 2 ms.
	if rec.FCT() > 2*simtime.Millisecond {
		t.Fatalf("FCT = %v", rec.FCT())
	}
	if !rec.SenderDone {
		t.Fatal("sender not marked done")
	}
}

// Flow start events must propagate to every node's view, and finish events
// must clear them.
func TestR2C2GlobalVisibility(t *testing.T) {
	g := torus(t, 4, 2)
	eng, _, r := newR2C2Net(t, g, R2C2Config{Protocol: routing.RPS})
	id := r.StartFlow(0, 5, 10<<20, 1, 0)
	// Run long enough for the broadcast (µs) but not flow completion (ms).
	eng.Run(100 * simtime.Microsecond)
	for n := 0; n < g.Nodes(); n++ {
		if _, ok := r.View(topology.NodeID(n)).Get(id); !ok {
			t.Fatalf("node %d 	has no view of flow after 100us", n)
		}
	}
	eng.Run(100 * simtime.Millisecond)
	for n := 0; n < g.Nodes(); n++ {
		if r.View(topology.NodeID(n)).Len() != 0 {
			t.Fatalf("node %d still sees flows after finish", n)
		}
	}
}

// Two long flows sharing the fabric converge to equal rates (per-flow
// fairness) once recomputation kicks in.
func TestR2C2Fairness(t *testing.T) {
	g := torus(t, 4, 2)
	eng, _, r := newR2C2Net(t, g, R2C2Config{
		Headroom: 0.05, Protocol: routing.RPS, Recompute: 100 * simtime.Microsecond})
	a := r.StartFlow(0, 5, 4<<20, 1, 0)
	b := r.StartFlow(0, 5, 4<<20, 1, 0) // identical endpoints: same bottleneck
	eng.Run(100 * simtime.Millisecond)
	ra, rb := r.Ledger()[a], r.Ledger()[b]
	if !ra.Done || !rb.Done {
		t.Fatal("flows incomplete")
	}
	ta, tb := ra.Throughput(), rb.Throughput()
	if math.Abs(ta-tb)/math.Max(ta, tb) > 0.1 {
		t.Fatalf("unfair throughputs: %.3g vs %.3g", ta, tb)
	}
}

// Weighted allocation: a weight-3 flow gets ~3x the rate of a weight-1 flow
// sharing its bottleneck (allocation flexibility, G4).
func TestR2C2Weights(t *testing.T) {
	g := torus(t, 4, 2)
	eng, _, r := newR2C2Net(t, g, R2C2Config{
		Headroom: 0.05, Protocol: routing.DOR, Recompute: 50 * simtime.Microsecond})
	// Same single path for both: share every link.
	heavy := r.StartFlow(0, 2, 6<<20, 3, 0)
	light := r.StartFlow(0, 2, 2<<20, 1, 0)
	eng.Run(100 * simtime.Millisecond)
	rh, rl := r.Ledger()[heavy], r.Ledger()[light]
	if !rh.Done || !rl.Done {
		t.Fatal("flows incomplete")
	}
	ratio := rh.Throughput() / rl.Throughput()
	// Both flows are sized 3:1 so they finish together under a 3:1 split.
	if ratio < 2.2 || ratio > 4 {
		t.Fatalf("weight-3 to weight-1 throughput ratio = %.2f, want ~3", ratio)
	}
}

// Priority: a high-priority flow should be unaffected by low-priority load.
func TestR2C2Priority(t *testing.T) {
	g := torus(t, 4, 2)
	eng, _, r := newR2C2Net(t, g, R2C2Config{
		Headroom: 0.05, Protocol: routing.DOR, Recompute: 50 * simtime.Microsecond})
	hi := r.StartFlow(0, 2, 2<<20, 1, 1)
	lo := r.StartFlow(0, 2, 2<<20, 1, 0)
	eng.Run(100 * simtime.Millisecond)
	rhi, rlo := r.Ledger()[hi], r.Ledger()[lo]
	if !rhi.Done || !rlo.Done {
		t.Fatal("flows incomplete")
	}
	if rhi.FCT() >= rlo.FCT() {
		t.Fatalf("high-priority FCT %v not better than low-priority %v", rhi.FCT(), rlo.FCT())
	}
}

func TestR2C2SetProtocol(t *testing.T) {
	g := torus(t, 4, 2)
	eng, _, r := newR2C2Net(t, g, R2C2Config{Protocol: routing.RPS})
	id := r.StartFlow(0, 5, 20<<20, 1, 0)
	eng.Run(50 * simtime.Microsecond)
	r.SetProtocol(id, routing.VLB)
	eng.Run(200 * simtime.Microsecond)
	for n := 0; n < g.Nodes(); n++ {
		info, ok := r.View(topology.NodeID(n)).Get(id)
		if !ok {
			t.Fatalf("node %d lost the flow", n)
		}
		if info.Protocol != routing.VLB {
			t.Fatalf("node %d sees protocol %v after route change", n, info.Protocol)
		}
	}
	// Re-assigning a finished flow is a no-op.
	eng.Run(200 * simtime.Millisecond)
	r.SetProtocol(id, routing.DOR)
}

func TestR2C2ViewCacheAmortises(t *testing.T) {
	g := torus(t, 4, 2)
	eng, _, r := newR2C2Net(t, g, R2C2Config{
		Protocol: routing.RPS, Recompute: 100 * simtime.Microsecond})
	// Many concurrent flows from different sources.
	for s := 0; s < 8; s++ {
		r.StartFlow(topology.NodeID(s), topology.NodeID(15-s), 4<<20, 1, 0)
	}
	eng.Run(20 * simtime.Millisecond)
	if r.RecomputeRounds == 0 {
		t.Fatal("no recompute rounds ran")
	}
	// With settled views, one allocator run serves all 8 source nodes:
	// recomputations must be far fewer than rounds × sources.
	if r.Recomputations >= r.RecomputeRounds*8 {
		t.Fatalf("view cache ineffective: %d computations over %d rounds for 8 sources",
			r.Recomputations, r.RecomputeRounds)
	}
}

func TestR2C2PanicsOnDegenerateFlow(t *testing.T) {
	g := torus(t, 4, 2)
	_, _, r := newR2C2Net(t, g, R2C2Config{})
	assertPanics(t, "src==dst", func() { r.StartFlow(3, 3, 100, 1, 0) })
	assertPanics(t, "zero size", func() { r.StartFlow(0, 1, 0, 1, 0) })
}

// --- TCP baseline ---

func TestTCPSingleFlowCompletes(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	tab := routing.NewTable(g)
	tcp := NewTCP(net, tab, TCPConfig{})
	id := tcp.StartFlow(0, 5, 1<<20)
	eng.Run(time500ms)
	rec := tcp.Ledger()[id]
	if !rec.Done {
		t.Fatalf("TCP flow incomplete: %d/%d", rec.BytesRcvd, rec.SizeBytes)
	}
	if !rec.SenderDone {
		t.Fatal("sender not done after all acks")
	}
}

const time500ms = 500 * simtime.Millisecond

func TestTCPRecoversFromDrops(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	// Tiny queues force drops under concurrent load.
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, QueueBytes: 8 * 1500})
	tab := routing.NewTable(g)
	tcp := NewTCP(net, tab, TCPConfig{})
	var ids []wire.FlowID
	for s := 1; s < 9; s++ {
		ids = append(ids, tcp.StartFlow(topology.NodeID(s), 0, 1<<20)) // incast at node 0
	}
	eng.Run(2 * simtime.Second)
	for _, id := range ids {
		if !tcp.Ledger()[id].Done {
			t.Fatalf("flow %v incomplete under incast: %d/%d",
				id, tcp.Ledger()[id].BytesRcvd, tcp.Ledger()[id].SizeBytes)
		}
	}
	if net.TotalDrops() == 0 {
		t.Fatal("expected drops with 8-packet queues under incast")
	}
	if tcp.Retransmissions == 0 {
		t.Fatal("drops occurred but nothing was retransmitted")
	}
}

func TestTCPSingleStreamInOrder(t *testing.T) {
	// With one flow on one path and big queues, no retransmissions happen.
	g := torus(t, 4, 2)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10})
	tab := routing.NewTable(g)
	tcp := NewTCP(net, tab, TCPConfig{})
	tcp.StartFlow(0, 5, 256<<10)
	eng.Run(time500ms)
	if tcp.Retransmissions != 0 {
		t.Fatalf("unexpected retransmissions: %d", tcp.Retransmissions)
	}
}

// --- PFQ baseline ---

func TestPFQSingleFlowCompletes(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PerFlowQueues: true})
	tab := routing.NewTable(g)
	pfq := NewPFQ(net, tab, 1)
	id := pfq.StartFlow(0, 5, 1<<20)
	eng.Run(time500ms)
	rec := pfq.Ledger()[id]
	if !rec.Done {
		t.Fatalf("PFQ flow incomplete: %d/%d", rec.BytesRcvd, rec.SizeBytes)
	}
	if net.TotalDrops() != 0 {
		t.Fatal("PFQ must never drop (back-pressure)")
	}
}

func TestPFQFairnessUnderContention(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PerFlowQueues: true})
	tab := routing.NewTable(g)
	pfq := NewPFQ(net, tab, 1)
	a := pfq.StartFlow(0, 2, 4<<20)
	b := pfq.StartFlow(0, 2, 4<<20)
	eng.Run(2 * simtime.Second)
	ra, rb := pfq.Ledger()[a], pfq.Ledger()[b]
	if !ra.Done || !rb.Done {
		t.Fatal("flows incomplete")
	}
	ta, tb := ra.Throughput(), rb.Throughput()
	if math.Abs(ta-tb)/math.Max(ta, tb) > 0.1 {
		t.Fatalf("PFQ unfair: %.3g vs %.3g", ta, tb)
	}
	if net.TotalDrops() != 0 {
		t.Fatal("PFQ dropped packets")
	}
}

func TestPFQRequiresPerFlowQueues(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{})
	assertPanics(t, "pfq on fifo net", func() { NewPFQ(net, routing.NewTable(g), 1) })
}

// --- Runner ---

func smallWorkload(t testing.TB, g *topology.Graph, count int, mean simtime.Time) []trafficgen.Arrival {
	t.Helper()
	return trafficgen.Poisson(trafficgen.PoissonConfig{
		Nodes:        g.Nodes(),
		MeanInterval: mean,
		Count:        count,
		Seed:         99,
	})
}

func TestRunAllTransports(t *testing.T) {
	g := torus(t, 4, 2)
	arrivals := smallWorkload(t, g, 150, 20*simtime.Microsecond)
	for _, tr := range []Transport{TransportR2C2, TransportTCP, TransportPFQ} {
		res := Run(RunConfig{
			Graph:     g,
			Transport: tr,
			Arrivals:  arrivals,
			R2C2:      R2C2Config{Headroom: 0.05, Protocol: routing.RPS, Recompute: 100 * simtime.Microsecond},
			MaxTime:   2 * simtime.Second,
		})
		if res.Completed != len(arrivals) {
			t.Fatalf("%v: %d/%d flows completed (%d drops)", tr, res.Completed, len(arrivals), res.Drops)
		}
		if res.ShortFCT.Len() == 0 {
			t.Fatalf("%v: no short-flow FCTs", tr)
		}
		if res.MaxQueue.Len() != g.NumLinks() {
			t.Fatalf("%v: queue sample size %d", tr, res.MaxQueue.Len())
		}
		if tr == TransportR2C2 && res.BcastBytes == 0 {
			t.Fatal("R2C2 run recorded no broadcast bytes")
		}
	}
}

// R2C2 should keep queues dramatically smaller than TCP under identical
// workloads — the headline claim (G3, Figures 10 & 14).
func TestR2C2BeatsTCPOnQueuingAndFCT(t *testing.T) {
	g := torus(t, 4, 2)
	arrivals := smallWorkload(t, g, 400, 10*simtime.Microsecond)
	run := func(tr Transport) *Results {
		return Run(RunConfig{
			Graph:     g,
			Transport: tr,
			Arrivals:  arrivals,
			R2C2:      R2C2Config{Headroom: 0.05, Protocol: routing.RPS, Recompute: 100 * simtime.Microsecond},
			MaxTime:   4 * simtime.Second,
		})
	}
	r2 := run(TransportR2C2)
	tcp := run(TransportTCP)
	if r2.Completed != len(arrivals) || tcp.Completed != len(arrivals) {
		t.Fatalf("incomplete runs: r2c2=%d tcp=%d of %d", r2.Completed, tcp.Completed, len(arrivals))
	}
	q2 := r2.MaxQueue.Percentile(99)
	qt := tcp.MaxQueue.Percentile(99)
	if q2 >= qt {
		t.Errorf("R2C2 99th-pct max queue %.0f not below TCP's %.0f", q2, qt)
	}
	f2 := r2.ShortFCT.Percentile(99)
	ft := tcp.ShortFCT.Percentile(99)
	if f2 >= ft {
		t.Errorf("R2C2 99th-pct short FCT %.3g not below TCP's %.3g", f2, ft)
	}
}

func TestRunValidation(t *testing.T) {
	g := torus(t, 3, 2)
	assertPanics(t, "no graph", func() { Run(RunConfig{}) })
	assertPanics(t, "no arrivals", func() { Run(RunConfig{Graph: g}) })
	assertPanics(t, "bad transport", func() {
		Run(RunConfig{Graph: g, Transport: Transport(9),
			Arrivals: smallWorkload(t, g, 1, simtime.Microsecond)})
	})
}

func TestTransportString(t *testing.T) {
	if TransportR2C2.String() != "R2C2" || TransportTCP.String() != "TCP" || TransportPFQ.String() != "PFQ" {
		t.Error("transport names wrong")
	}
	if Transport(9).String() == "" {
		t.Error("unknown transport name empty")
	}
}

func TestFlowRecordAccessors(t *testing.T) {
	rec := &FlowRecord{SizeBytes: 1000, Started: 0, Finished: simtime.Millisecond, Done: true}
	if rec.FCT() != simtime.Millisecond {
		t.Error("FCT wrong")
	}
	if math.Abs(rec.Throughput()-8e6) > 1 {
		t.Errorf("Throughput = %v", rec.Throughput())
	}
	bad := &FlowRecord{}
	assertPanics(t, "FCT incomplete", func() { bad.FCT() })
	if bad.Throughput() != 0 {
		t.Error("incomplete throughput should be 0")
	}
}
