// Package simtime defines the simulated clock shared by the packet-level
// simulator, the fluid simulator and the workload generators.
//
// Time is measured in integer picoseconds: at 100 Gbps a byte lasts 80 ps,
// so picosecond resolution keeps serialisation arithmetic exact across the
// 10–100 Gbps link speeds rack fabrics use (§2.1) while int64 still spans
// ~106 days of simulated time.
package simtime

import "fmt"

// Time is a point in simulated time, in picoseconds since simulation start.
type Time int64

// Duration units.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to a Time, rounding to the
// nearest picosecond (truncation would make Seconds/FromSeconds round
// trips lossy for values like 1 ms that are inexact in binary).
func FromSeconds(s float64) Time {
	if s < 0 {
		return Time(s*float64(Second) - 0.5)
	}
	return Time(s*float64(Second) + 0.5)
}

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// TransmitTime returns how long `bytes` take to serialise onto a link of
// `gbps` gigabits per second, rounded up to a whole picosecond.
func TransmitTime(bytes int, gbps float64) Time {
	if bytes <= 0 || gbps <= 0 {
		return 0
	}
	ps := float64(bytes) * 8 / gbps * 1000 // bits / (Gbit/s) = ns; ×1000 = ps
	t := Time(ps)
	if float64(t) < ps {
		t++
	}
	return t
}
