package sim

import (
	"math/rand"

	"r2c2/internal/routing"
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

// PFQ is the idealised per-flow-queue baseline of §5.2: every node keeps a
// queue per flow with hop-by-hop back-pressure, ports serve flows in
// round-robin order, and sources inject whenever their local per-flow
// buffer has room. The paper uses it as the upper bound achievable by any
// rate-control protocol; it is impractical on real racks because of the
// per-flow state and buffering it demands at every node.
//
// Routing is random packet spraying, matching the paper's setup.
type PFQ struct {
	Net *Network
	Tab *routing.Table

	rng     *rand.Rand
	ledger  *flowLedger
	sources map[wire.FlowID]*pfqSource
	bySrc   map[topology.NodeID][]*pfqSource
	nextSeq map[topology.NodeID]uint16
}

type pfqSource struct {
	id        wire.FlowID
	src, dst  topology.NodeID
	remaining int64
	seq       uint32
	done      bool
}

// NewPFQ wires the PFQ baseline into a network. The network must have been
// created with NetConfig.PerFlowQueues = true.
func NewPFQ(net *Network, tab *routing.Table, seed int64) *PFQ {
	if !net.Cfg.PerFlowQueues {
		panic("sim: PFQ requires a network with PerFlowQueues enabled")
	}
	p := &PFQ{
		Net:     net,
		Tab:     tab,
		rng:     rand.New(rand.NewSource(seed)),
		ledger:  newFlowLedger(),
		sources: make(map[wire.FlowID]*pfqSource),
		bySrc:   make(map[topology.NodeID][]*pfqSource),
		nextSeq: make(map[topology.NodeID]uint16),
	}
	net.Deliver = p.deliver
	net.Kick = p.kick
	return p
}

// Ledger exposes the flow records for results collection.
func (p *PFQ) Ledger() map[wire.FlowID]*FlowRecord { return p.ledger.records }

// StartFlow begins a flow of sizeBytes; injection is driven entirely by
// back-pressure credits.
func (p *PFQ) StartFlow(src, dst topology.NodeID, sizeBytes int64) wire.FlowID {
	if src == dst || sizeBytes <= 0 {
		panic("sim: degenerate flow")
	}
	seq := p.nextSeq[src]
	p.nextSeq[src] = seq + 1
	id := wire.MakeFlowID(uint16(src), seq)
	s := &pfqSource{id: id, src: src, dst: dst, remaining: sizeBytes}
	p.sources[id] = s
	p.bySrc[src] = append(p.bySrc[src], s)
	p.ledger.open(id, src, dst, sizeBytes, p.Net.Eng.Now())
	p.fill(s)
	return id
}

// fill injects packets while the source node has buffer room for the flow.
func (p *PFQ) fill(s *pfqSource) {
	for !s.done && s.remaining > 0 && p.Net.HasRoom(s.src, s.id) {
		payload := int64(MaxPayload)
		if s.remaining < payload {
			payload = s.remaining
		}
		pkt := p.Net.newPacket()
		pkt.Kind = KindData
		pkt.SizeBytes = int(payload) + DataHeaderBytes
		pkt.Flow = s.id
		pkt.Src = s.src
		pkt.Dst = s.dst
		pkt.Seq = s.seq
		pkt.Payload = int(payload)
		pkt.scratch = p.Tab.AppendPath(pkt.scratch[:0], routing.RPS, s.src, s.dst, p.rng)
		pkt.Path = pkt.scratch
		s.seq++
		s.remaining -= payload
		p.Net.Inject(pkt)
	}
	if s.remaining <= 0 && !s.done {
		s.done = true
		p.ledger.get(s.id).SenderDone = true
	}
}

// kick resumes blocked sources at a node when buffer space frees.
func (p *PFQ) kick(at topology.NodeID, flow wire.FlowID) {
	if s, ok := p.sources[flow]; ok && s.src == at {
		p.fill(s)
	}
}

func (p *PFQ) deliver(at topology.NodeID, pkt *Packet) {
	if pkt.Kind != KindData {
		panic("sim: PFQ network saw unexpected packet kind")
	}
	rec := p.ledger.get(pkt.Flow)
	rec.BytesRcvd += int64(pkt.Payload)
	if !rec.Done && rec.BytesRcvd >= rec.SizeBytes {
		rec.Done = true
		rec.Finished = p.Net.Eng.Now()
	}
}
