package sim

import (
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
)

func TestArenaAllocFreeRecycles(t *testing.T) {
	var a pktArena
	// Fill two slabs exactly.
	var pkts []*Packet
	for i := 0; i < 2*pktSlabSize; i++ {
		pkts = append(pkts, a.alloc())
	}
	st := a.stats()
	if st.Slabs != 2 || st.Live != 2*pktSlabSize {
		t.Fatalf("after fill: %+v", st)
	}
	// Free everything: at most maxIdleSlabs retained, the rest released.
	for _, p := range pkts {
		a.free(p)
	}
	st = a.stats()
	if st.Live != 0 {
		t.Fatalf("live = %d after freeing all", st.Live)
	}
	if st.IdleSlabs > maxIdleSlabs {
		t.Fatalf("idle slabs = %d > watermark %d", st.IdleSlabs, maxIdleSlabs)
	}
	if st.Slabs != st.IdleSlabs {
		t.Fatalf("slabs = %d with %d idle and 0 live", st.Slabs, st.IdleSlabs)
	}
	// Reallocation reuses the retained idle slab without growing.
	p := a.alloc()
	if a.stats().Slabs != st.Slabs {
		t.Fatalf("realloc grew the arena: %+v", a.stats())
	}
	a.free(p)
}

func TestArenaPartialListIntegrity(t *testing.T) {
	// Interleaved alloc/free across multiple slabs must keep the partial
	// list's swap-remove positions consistent. An LCG picks victims.
	var a pktArena
	live := map[*Packet]bool{}
	var order []*Packet
	rng := uint64(7)
	for step := 0; step < 20000; step++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		if len(order) == 0 || rng%3 != 0 {
			p := a.alloc()
			if live[p] {
				t.Fatalf("step %d: alloc returned a live packet", step)
			}
			live[p] = true
			order = append(order, p)
		} else {
			i := int(rng>>33) % len(order)
			p := order[i]
			order[i] = order[len(order)-1]
			order = order[:len(order)-1]
			delete(live, p)
			a.free(p)
		}
		if a.stats().Live != len(order) {
			t.Fatalf("step %d: live = %d, want %d", step, a.stats().Live, len(order))
		}
	}
	for _, p := range order {
		a.free(p)
	}
	if st := a.stats(); st.Live != 0 || st.IdleSlabs > maxIdleSlabs {
		t.Fatalf("final state: %+v", st)
	}
}

// Regression for free-list peak retention: a transient incast burst used
// to pin its peak packet count in the unbounded Network.free list for the
// rest of the run. With the slab arena, once the burst drains, fully-free
// slabs beyond the idle watermark are released, so the trickle phase runs
// with a small bounded segment count.
func TestBurstThenTrickleReleasesArena(t *testing.T) {
	g := torus(t, 4, 4)
	eng := &Engine{}
	// Tiny queues so the burst really queues packets fabric-wide.
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	r := NewR2C2(net, routing.NewTable(g), R2C2Config{
		Headroom:  0.05,
		Protocol:  routing.RPS,
		Recompute: 100 * simtime.Microsecond,
	})
	// Burst: 15-way incast of 1 MB flows into node 0.
	for s := 1; s < 16; s++ {
		r.StartFlow(topology.NodeID(s), 0, 1<<20, 1, 0)
	}
	eng.Run(200 * simtime.Millisecond)
	burst := net.ArenaStats()
	if burst.PeakSlabs < 3 {
		t.Fatalf("burst did not exercise the arena: %+v (scenario too small to regress on)", burst)
	}
	// Trickle: one small flow at a time, long after the burst drained.
	for i := 0; i < 5; i++ {
		r.StartFlow(topology.NodeID(1+i), topology.NodeID(8+i), 64<<10, 1, 0)
		eng.Run(eng.Now() + 50*simtime.Millisecond)
		st := net.ArenaStats()
		// The trickle's working set is a handful of in-flight packets: the
		// arena must have shed the burst's segments, not pinned them.
		if st.Slabs > maxIdleSlabs+2 {
			t.Fatalf("trickle flow %d still holds %d slabs (peak %d, released %d): burst memory pinned",
				i, st.Slabs, st.PeakSlabs, st.ReleasedSlabs)
		}
	}
	final := net.ArenaStats()
	if final.ReleasedSlabs == 0 {
		t.Fatalf("no slabs were released after the burst drained: %+v", final)
	}
	t.Logf("peak=%d slabs, final=%d slabs, released=%d", final.PeakSlabs, final.Slabs, final.ReleasedSlabs)
}
