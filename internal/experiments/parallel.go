package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"r2c2/internal/sim"
)

// RunParallel executes independent simulation configurations concurrently
// on a pool of `workers` goroutines (workers <= 0 means GOMAXPROCS) and
// returns their results in input order. Every configuration gets its own
// engine, network and RNG state inside sim.Run, and results are merged by
// index, so the output is byte-identical to running the configurations
// sequentially — only wall-clock time changes. Configurations may share a
// *topology.Graph (immutable after construction) and a *routing.Table
// (internally synchronised).
func RunParallel(workers int, cfgs []sim.RunConfig) []*sim.Results {
	out := make([]*sim.Results, len(cfgs))
	parallelFor(workers, len(cfgs), func(i int) {
		out[i] = sim.Run(cfgs[i])
	})
	return out
}

// parallelFor runs job(0) … job(n-1) across a pool of `workers` goroutines
// pulling indices from a shared atomic counter. workers <= 0 means
// GOMAXPROCS; with one worker (or one job) it degenerates to a plain loop
// on the calling goroutine. Jobs must be independent: they may write only
// to their own index of any shared result slice.
func parallelFor(workers, n int, job func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}
