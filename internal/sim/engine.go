// Package sim is a packet-level discrete-event simulator for rack-scale
// network fabrics, the equivalent of the (cross-validated) simulator used
// for every scaling experiment in §5.2 of the paper.
//
// It models: per-output-port FIFO queues with drop-tail limits,
// store-and-forward links with serialisation and propagation delay, source
// routing, R2C2's full control plane (flow-event broadcasts over broadcast
// trees, periodic local rate recomputation, token-bucket pacing at
// senders), and the two baselines of §5.2 — a NewReno-style TCP over
// ECMP single paths, and the idealised per-flow-queue (PFQ) back-pressure
// fabric.
package sim

import (
	"container/heap"

	"r2c2/internal/simtime"
)

// event is one scheduled callback.
type event struct {
	at  simtime.Time
	seq uint64 // FIFO tie-break for equal timestamps: determinism
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler with a picosecond
// clock. The zero value is ready to use.
type Engine struct {
	now    simtime.Time
	nextID uint64
	events eventHeap
	count  uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Processed returns how many events have run (a cheap progress/size metric).
func (e *Engine) Processed() uint64 { return e.count }

// Schedule runs fn at the given absolute time. Scheduling in the past
// panics: it would silently corrupt causality.
func (e *Engine) Schedule(at simtime.Time, fn func()) {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	heap.Push(&e.events, event{at: at, seq: e.nextID, fn: fn})
	e.nextID++
}

// After schedules fn delay from now.
func (e *Engine) After(delay simtime.Time, fn func()) {
	e.Schedule(e.now+delay, fn)
}

// Run processes events until the queue is empty or the clock passes until.
// It returns the number of events processed by this call.
func (e *Engine) Run(until simtime.Time) uint64 {
	start := e.count
	for len(e.events) > 0 {
		if e.events[0].at > until {
			break
		}
		ev := heap.Pop(&e.events).(event)
		if invariantsEnabled {
			assertInvariant(ev.at >= e.now,
				"stale event pop: event at %v behind clock %v (clock must never go backwards)", ev.at, e.now)
		}
		e.now = ev.at
		e.count++
		ev.fn()
	}
	if e.now < until {
		e.now = until
	}
	return e.count - start
}

// Pending reports whether any events remain scheduled.
func (e *Engine) Pending() bool { return len(e.events) > 0 }
