package sim

import (
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

// FlowRecord tracks one flow's life across any transport, for the
// experiment statistics (FCT of short flows, average throughput of long
// flows, completion accounting).
type FlowRecord struct {
	ID        wire.FlowID
	Src, Dst  topology.NodeID
	SizeBytes int64 // bytes the application wants delivered
	Started   simtime.Time
	Finished  simtime.Time // receiver got every byte
	Done      bool

	BytesRcvd  int64
	SenderDone bool // sender handed the last byte to the NIC
}

// FCT returns the flow completion time; it panics on incomplete flows.
func (r *FlowRecord) FCT() simtime.Time {
	if !r.Done {
		panic("sim: FCT of incomplete flow")
	}
	return r.Finished - r.Started
}

// Throughput returns the average goodput in bits/s.
func (r *FlowRecord) Throughput() float64 {
	if !r.Done || r.Finished == r.Started {
		return 0
	}
	return float64(r.SizeBytes*8) / (r.Finished - r.Started).Seconds()
}

// flowLedger indexes FlowRecords by ID. order preserves creation order so
// results assembly is deterministic (map iteration is not).
type flowLedger struct {
	records map[wire.FlowID]*FlowRecord
	order   []*FlowRecord
}

func newFlowLedger() *flowLedger {
	return &flowLedger{records: make(map[wire.FlowID]*FlowRecord)}
}

func (l *flowLedger) open(id wire.FlowID, src, dst topology.NodeID, size int64, at simtime.Time) *FlowRecord {
	r := &FlowRecord{ID: id, Src: src, Dst: dst, SizeBytes: size, Started: at}
	l.records[id] = r
	l.order = append(l.order, r)
	return r
}

func (l *flowLedger) get(id wire.FlowID) *FlowRecord { return l.records[id] }

// openRecv creates a receive-side record for a flow whose authoritative
// record lives in another shard's ledger (the source shard opened it). It
// is indexed for lookups but deliberately kept OUT of order: the merge
// (shard.go) folds its delivery fields into the source-shard record, which
// alone represents the flow in Results.
func (l *flowLedger) openRecv(id wire.FlowID, src, dst topology.NodeID, size int64, at simtime.Time) *FlowRecord {
	r := &FlowRecord{ID: id, Src: src, Dst: dst, SizeBytes: size, Started: at}
	l.records[id] = r
	return r
}
