package routing

import (
	"math"
	"math/rand"
	"testing"

	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

func torus(t testing.TB, k, dims int) *topology.Graph {
	t.Helper()
	g, err := topology.NewTorus(k, dims)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// netFlow computes, for a φ-vector, the net outflow of every vertex.
func netFlow(g *topology.Graph, phi Phi) []float64 {
	net := make([]float64, g.Vertices())
	for i, lid := range phi.Links {
		l := g.Link(lid)
		net[l.From] += phi.Frac[i]
		net[l.To] -= phi.Frac[i]
	}
	return net
}

// Flow conservation: +1 at source, -1 at destination, 0 elsewhere — the
// defining property that makes flow-level rate allocation correct (§3.3).
func TestPhiConservation(t *testing.T) {
	graphs := []*topology.Graph{torus(t, 4, 2), torus(t, 3, 3), torus(t, 8, 2)}
	mesh, err := topology.NewMesh(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, mesh)
	for _, g := range graphs {
		tab := NewTable(g)
		for _, p := range []Protocol{RPS, DOR, VLB, WLB} {
			for trial := 0; trial < 12; trial++ {
				rng := rand.New(rand.NewSource(int64(trial)))
				src := topology.NodeID(rng.Intn(g.Nodes()))
				dst := topology.NodeID(rng.Intn(g.Nodes()))
				if src == dst {
					continue
				}
				phi := tab.Phi(p, src, dst)
				net := netFlow(g, phi)
				for v, f := range net {
					want := 0.0
					switch topology.NodeID(v) {
					case src:
						want = 1
					case dst:
						want = -1
					}
					if math.Abs(f-want) > 1e-9 {
						t.Fatalf("%v %v->%v on %v: net flow at %d = %v, want %v",
							p, src, dst, g.Kind(), v, f, want)
					}
				}
			}
		}
	}
}

// Minimal protocols must only use links on the minimal-route DAG.
func TestPhiMinimalOnlyUsesDAG(t *testing.T) {
	g := torus(t, 4, 3)
	tab := NewTable(g)
	for _, p := range []Protocol{RPS, DOR} {
		for trial := 0; trial < 20; trial++ {
			rng := rand.New(rand.NewSource(int64(100 + trial)))
			src := topology.NodeID(rng.Intn(g.Nodes()))
			dst := topology.NodeID(rng.Intn(g.Nodes()))
			if src == dst {
				continue
			}
			phi := tab.Phi(p, src, dst)
			total := 0.0
			for i, lid := range phi.Links {
				l := g.Link(lid)
				if g.Dist(l.To, dst) != g.Dist(l.From, dst)-1 {
					t.Fatalf("%v: link %v not distance-reducing", p, l)
				}
				total += phi.Frac[i]
			}
			// Total link crossings for a minimal protocol = path length.
			if want := float64(g.Dist(src, dst)); math.Abs(total-want) > 1e-9 {
				t.Fatalf("%v: total crossings = %v, want %v", p, total, want)
			}
		}
	}
}

func TestPhiDORSinglePath(t *testing.T) {
	g := torus(t, 5, 2)
	tab := NewTable(g)
	phi := tab.Phi(DOR, 0, g.NodeAt([]int{2, 1}))
	if len(phi.Links) != 3 {
		t.Fatalf("DOR path length = %d links, want 3", len(phi.Links))
	}
	for _, f := range phi.Frac {
		if f != 1 {
			t.Fatalf("DOR link fraction = %v, want 1", f)
		}
	}
	// Dimension order: X first, then Y.
	nodes, err := tab.WalkPorts(0, mustPorts(t, tab, phi.Links))
	if err != nil {
		t.Fatal(err)
	}
	want := []topology.NodeID{0, g.NodeAt([]int{1, 0}), g.NodeAt([]int{2, 0}), g.NodeAt([]int{2, 1})}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("DOR visits %v, want %v", nodes, want)
		}
	}
}

// DOR must take the short way around the ring.
func TestPhiDORWrapsAround(t *testing.T) {
	g := torus(t, 8, 1)
	tab := NewTable(g)
	phi := tab.Phi(DOR, 0, 6) // short way: 0 -> 7 -> 6
	if len(phi.Links) != 2 {
		t.Fatalf("DOR 0->6 on an 8-ring uses %d links, want 2 (wraparound)", len(phi.Links))
	}
}

// RPS on a 2x2 mesh quadrant splits 50/50 — the Figure 3 example.
func TestPhiRPSFigure3(t *testing.T) {
	g := torus(t, 4, 2)
	tab := NewTable(g)
	src := g.NodeAt([]int{0, 0})
	dst := g.NodeAt([]int{1, 1})
	phi := tab.Phi(RPS, src, dst)
	if len(phi.Links) != 4 {
		t.Fatalf("RPS corner flow touches %d links, want 4", len(phi.Links))
	}
	for i, f := range phi.Frac {
		if math.Abs(f-0.5) > 1e-9 {
			t.Fatalf("link %v fraction = %v, want 0.5 (Figure 3)", phi.Links[i], f)
		}
	}
}

func TestPhiVLBMatchesDirectSum(t *testing.T) {
	g := torus(t, 3, 2) // small enough for the O(N^2) direct computation
	tab := NewTable(g)
	src, dst := topology.NodeID(0), topology.NodeID(4)
	got := tab.Phi(VLB, src, dst)
	// Direct: (1/N) Σ_w [φRPS(s,w) + φRPS(w,d)].
	n := float64(g.Nodes())
	want := make([]float64, g.NumLinks())
	for w := 0; w < g.Nodes(); w++ {
		if topology.NodeID(w) != src {
			p := tab.Phi(RPS, src, topology.NodeID(w))
			for i, lid := range p.Links {
				want[lid] += p.Frac[i] / n
			}
		}
		if topology.NodeID(w) != dst {
			p := tab.Phi(RPS, topology.NodeID(w), dst)
			for i, lid := range p.Links {
				want[lid] += p.Frac[i] / n
			}
		}
	}
	dense := make([]float64, g.NumLinks())
	for i, lid := range got.Links {
		dense[lid] = got.Frac[i]
	}
	for lid := range want {
		if math.Abs(dense[lid]-want[lid]) > 1e-9 {
			t.Fatalf("VLB φ on link %d = %v, want %v", lid, dense[lid], want[lid])
		}
	}
}

// WLB total expected crossings per dimension: 2δ(k-δ)/k.
func TestPhiWLBExpectedHops(t *testing.T) {
	g := torus(t, 8, 2)
	tab := NewTable(g)
	src := g.NodeAt([]int{0, 0})
	dst := g.NodeAt([]int{3, 0}) // δ=3 in X only
	phi := tab.Phi(WLB, src, dst)
	total := 0.0
	for _, f := range phi.Frac {
		total += f
	}
	want := 2.0 * 3 * (8 - 3) / 8 // 3.75
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("WLB expected crossings = %v, want %v", total, want)
	}
}

func TestPhiWLBFallsBackOnMesh(t *testing.T) {
	g, err := topology.NewMesh(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(g)
	wlb := tab.Phi(WLB, 0, 15)
	rps := tab.Phi(RPS, 0, 15)
	if len(wlb.Links) != len(rps.Links) {
		t.Fatalf("WLB on mesh should equal RPS: %d vs %d links", len(wlb.Links), len(rps.Links))
	}
	for i := range wlb.Links {
		if wlb.Links[i] != rps.Links[i] || math.Abs(wlb.Frac[i]-rps.Frac[i]) > 1e-12 {
			t.Fatal("WLB on mesh differs from RPS")
		}
	}
}

func TestPhiCaching(t *testing.T) {
	g := torus(t, 4, 2)
	tab := NewTable(g)
	a := tab.Phi(RPS, 1, 9)
	b := tab.Phi(RPS, 1, 9)
	if &a.Links[0] != &b.Links[0] {
		t.Error("Phi not served from cache on second call")
	}
}

func TestPhiPanics(t *testing.T) {
	tab := NewTable(torus(t, 3, 2))
	assertPanics(t, "src==dst", func() { tab.Phi(RPS, 2, 2) })
	assertPanics(t, "unknown protocol", func() { tab.Phi(Protocol(99), 0, 1) })
	assertPanics(t, "SamplePath ECMP", func() { tab.SamplePath(ECMP, 0, 1, rand.New(rand.NewSource(1))) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// Sampled paths must be valid walks from src to dst, and for minimal
// protocols must have exactly Dist(src,dst) hops.
func TestSamplePathValidity(t *testing.T) {
	g := torus(t, 4, 3)
	tab := NewTable(g)
	rng := rand.New(rand.NewSource(99))
	for _, p := range []Protocol{RPS, DOR, VLB, WLB} {
		for trial := 0; trial < 50; trial++ {
			src := topology.NodeID(rng.Intn(g.Nodes()))
			dst := topology.NodeID(rng.Intn(g.Nodes()))
			if src == dst {
				if got := tab.SamplePath(p, src, dst, rng); got != nil {
					t.Fatalf("%v: nonempty path for src==dst", p)
				}
				continue
			}
			path := tab.SamplePath(p, src, dst, rng)
			at := src
			for _, lid := range path {
				l := g.Link(lid)
				if l.From != at {
					t.Fatalf("%v: discontinuous path at %v", p, l)
				}
				at = l.To
			}
			if at != dst {
				t.Fatalf("%v: path ends at %d, want %d", p, at, dst)
			}
			if (p == RPS || p == DOR) && len(path) != g.Dist(src, dst) {
				t.Fatalf("%v: path length %d, want minimal %d", p, len(path), g.Dist(src, dst))
			}
		}
	}
}

// Monte-Carlo agreement: empirical link usage of sampled paths must
// converge to φ. This ties the data plane to the control plane, the core
// soundness requirement of R2C2's congestion control.
func TestSamplePathMatchesPhi(t *testing.T) {
	g := torus(t, 4, 2)
	tab := NewTable(g)
	rng := rand.New(rand.NewSource(7))
	const samples = 60000
	for _, p := range []Protocol{RPS, VLB, WLB} {
		src, dst := topology.NodeID(0), topology.NodeID(10)
		counts := make([]float64, g.NumLinks())
		for i := 0; i < samples; i++ {
			for _, lid := range tab.SamplePath(p, src, dst, rng) {
				counts[lid]++
			}
		}
		phi := tab.Phi(p, src, dst)
		dense := make([]float64, g.NumLinks())
		for i, lid := range phi.Links {
			dense[lid] = phi.Frac[i]
		}
		for lid := range counts {
			got := counts[lid] / samples
			if math.Abs(got-dense[lid]) > 0.02 {
				t.Fatalf("%v: link %d empirical %.4f vs φ %.4f", p, lid, got, dense[lid])
			}
		}
	}
}

func TestECMPPathDeterministicPerFlow(t *testing.T) {
	g := torus(t, 4, 3)
	tab := NewTable(g)
	src, dst := topology.NodeID(0), topology.NodeID(42)
	f1 := wire.MakeFlowID(0, 1)
	a := tab.ECMPPath(src, dst, f1)
	b := tab.ECMPPath(src, dst, f1)
	if len(a) != len(b) {
		t.Fatal("ECMP not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ECMP not deterministic")
		}
	}
	if len(a) != g.Dist(src, dst) {
		t.Fatalf("ECMP path not minimal: %d vs %d", len(a), g.Dist(src, dst))
	}
	// Different flows should spread over different paths (with 512 flows on
	// a diverse topology, at least two distinct paths are overwhelmingly
	// likely).
	distinct := false
	for s := uint16(2); s < 514 && !distinct; s++ {
		c := tab.ECMPPath(src, dst, wire.MakeFlowID(0, s))
		for i := range c {
			if c[i] != a[i] {
				distinct = true
				break
			}
		}
	}
	if !distinct {
		t.Error("512 ECMP flows all hashed onto one path")
	}
	if p := tab.ECMPPath(src, src, f1); p != nil {
		t.Error("ECMP path for src==dst should be nil")
	}
}

func TestPortRouteRoundTrip(t *testing.T) {
	g := torus(t, 4, 3)
	tab := NewTable(g)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		src := topology.NodeID(rng.Intn(g.Nodes()))
		dst := topology.NodeID(rng.Intn(g.Nodes()))
		if src == dst {
			continue
		}
		path := tab.SamplePath(VLB, src, dst, rng)
		if len(path) > wire.MaxRouteHops {
			continue
		}
		ports, err := tab.PortRoute(path)
		if err != nil {
			t.Fatal(err)
		}
		nodes, err := tab.WalkPorts(src, ports)
		if err != nil {
			t.Fatal(err)
		}
		if nodes[len(nodes)-1] != dst {
			t.Fatalf("port walk ends at %d, want %d", nodes[len(nodes)-1], dst)
		}
	}
}

func TestWalkPortsRejectsBadPort(t *testing.T) {
	g := torus(t, 3, 2)
	tab := NewTable(g)
	if _, err := tab.WalkPorts(0, wire.Route{7}); err == nil {
		t.Error("out-of-range port accepted")
	}
}

func TestPortRouteTooLong(t *testing.T) {
	g := torus(t, 3, 2)
	tab := NewTable(g)
	long := make([]topology.LinkID, wire.MaxRouteHops+1)
	if _, err := tab.PortRoute(long); err != wire.ErrRouteTooLong {
		t.Errorf("err = %v", err)
	}
}

func mustPorts(t *testing.T, tab *Table, path []topology.LinkID) wire.Route {
	t.Helper()
	ports, err := tab.PortRoute(path)
	if err != nil {
		t.Fatal(err)
	}
	return ports
}

func TestProtocolStrings(t *testing.T) {
	if RPS.String() != "RPS" || DOR.String() != "DOR" || VLB.String() != "VLB" ||
		WLB.String() != "WLB" || ECMP.String() != "ECMP" {
		t.Error("protocol names wrong")
	}
	if !RPS.Valid() || Protocol(200).Valid() {
		t.Error("Valid() wrong")
	}
	if Protocol(200).String() == "" {
		t.Error("unknown protocol String empty")
	}
}
