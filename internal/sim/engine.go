// Package sim is a packet-level discrete-event simulator for rack-scale
// network fabrics, the equivalent of the (cross-validated) simulator used
// for every scaling experiment in §5.2 of the paper.
//
// It models: per-output-port FIFO queues with drop-tail limits,
// store-and-forward links with serialisation and propagation delay, source
// routing, R2C2's full control plane (flow-event broadcasts over broadcast
// trees, periodic local rate recomputation, token-bucket pacing at
// senders), and the two baselines of §5.2 — a NewReno-style TCP over
// ECMP single paths, and the idealised per-flow-queue (PFQ) back-pressure
// fabric.
package sim

import (
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
)

// eventKind discriminates the typed event records of the hot path. The
// per-packet events (transmit completion, arrival, pacing) carry their
// receiver and packet as plain struct fields and are dispatched through a
// switch, so scheduling them allocates nothing; rare control-plane events
// (recomputation ticks, failure detection, drop notifications) still use
// evFunc closures.
type eventKind uint8

const (
	evFunc   eventKind = iota // generic callback (cold path)
	evTxDone                  // a port finished serialising pkt
	evArrive                  // pkt reaches node after propagation
	evSend                    // R2C2 token-bucket pacing: transmit sf's next packet
	evRTO    eventKind = 4    // R2C2 reliability retransmission timeout (u64 = timer generation)
	evTCPRTO eventKind = 5    // TCP retransmission timeout (u64 = timer generation)
)

// event is one scheduled typed record. Only the fields its kind names are
// meaningful; events are stored by value in the engine's heap, so pushing
// one never boxes through an interface or captures a closure.
type event struct {
	at  simtime.Time
	seq uint64 // FIFO tie-break for equal timestamps: determinism

	// emit is the simulated time the event was scheduled at — the engine
	// clock when schedule() ran, or the source shard's clock for a
	// cross-shard handoff (scheduleHandoff). The comparator orders equal
	// timestamps by (emit, seq) instead of seq alone. For any one engine
	// emit is monotone in seq (the clock never runs backwards between
	// schedule calls), so serial dispatch order is unchanged; the stamp
	// only matters for ingested handoffs, whose fresh ingest-time seq
	// would otherwise misplace them among equal-timestamp local events —
	// carrying the emission time restores the serial engine's global
	// emission order on exact-picosecond cross-shard ties.
	emit simtime.Time

	kind eventKind
	node topology.NodeID // evArrive: receiving node
	u64  uint64          // evRTO/evTCPRTO: timer generation
	pkt  *Packet         // evTxDone, evArrive
	port *port           // evTxDone
	rn   *r2c2Node       // evSend, evRTO
	sf   *senderFlow     // evSend, evRTO
	ts   *tcpSender      // evTCPRTO
	fn   func()          // evFunc
}

// Engine is a deterministic discrete-event scheduler with a picosecond
// clock. The zero value is ready to use and schedules through the
// hierarchical timer wheel (wheel.go); UseLegacyHeap switches a fresh
// engine back to the value min-heap, kept as the differential oracle for
// the wheel (scheduler_oracle_test.go). Typed events dispatch through
// receivers registered by NewNetwork / NewR2C2 / NewTCP. One engine per
// simulation goroutine: the sharded engine (ROADMAP) depends on no other
// goroutine reaching it.
//
//r2c2:shardowned — created and driven by one goroutine
type Engine struct {
	now    simtime.Time
	nextID uint64
	count  uint64

	wheel timerWheel

	// stopReq pauses Run after the current event's dispatch returns, leaving
	// the clock at that event's timestamp instead of advancing to until. The
	// sharded engine's aggregated control plane sets it from inside the
	// recomputation tick: the shard must not process any event past (or even
	// at, with a later sequence than) the tick until the cross-shard
	// reduction has published the global allocation back.
	stopReq bool

	legacyHeap bool
	events     []event // legacy binary min-heap by (at, seq)

	// Typed-event receivers, registered at construction time by the
	// same-package wiring (one Network and at most one transport per run).
	net *Network
	r2  *R2C2
	tcp *TCP
}

// UseLegacyHeap switches the engine to the value min-heap scheduler that
// predates the timer wheel. The heap keeps superseded timers as
// generation-guarded tombstones (cancelTimer becomes a no-op), so
// Processed() counts their no-op fires; live-event dispatch order is
// byte-identical to the wheel's. Must be called before any scheduling.
func (e *Engine) UseLegacyHeap() {
	if e.nextID != 0 {
		panic("sim: UseLegacyHeap after events were scheduled")
	}
	e.legacyHeap = true
}

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Processed returns how many events have run (a cheap progress/size metric).
func (e *Engine) Processed() uint64 { return e.count }

// Schedule runs fn at the given absolute time. Scheduling in the past
// panics: it would silently corrupt causality.
func (e *Engine) Schedule(at simtime.Time, fn func()) {
	e.schedule(at, event{kind: evFunc, fn: fn})
}

// After schedules fn delay from now. A delay that would overflow
// simulated time panics explicitly (e.now+delay wraps negative, which
// would otherwise surface as a misleading scheduled-in-the-past panic —
// or, were the past-check ever relaxed, silently corrupt event order).
func (e *Engine) After(delay simtime.Time, fn func()) {
	e.after(delay, event{kind: evFunc, fn: fn})
}

// schedule files a typed event record at an absolute time and returns its
// cancellation handle. Under the legacy heap the handle is inert:
// cancelTimer no-ops and callers fall back to generation guards.
func (e *Engine) schedule(at simtime.Time, ev event) timerHandle {
	return e.scheduleHandoff(at, e.now, ev)
}

// scheduleHandoff is schedule with an explicit emission stamp: the sharded
// engine's ingest path files boundary handoffs with the source shard's
// emission time, so equal-timestamp ties against local events resolve by
// global emission order exactly as they would have in a serial run. All
// local scheduling goes through schedule(), which stamps the current clock.
func (e *Engine) scheduleHandoff(at, emit simtime.Time, ev event) timerHandle {
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	ev.at = at
	ev.emit = emit
	ev.seq = e.nextID
	e.nextID++
	if e.legacyHeap {
		e.push(ev)
		return timerHandle{}
	}
	return e.wheel.schedule(ev)
}

// after files a typed event record delay from now.
func (e *Engine) after(delay simtime.Time, ev event) timerHandle {
	at := e.now + delay
	if delay >= 0 && at < e.now {
		panic("sim: delay overflows simulated time")
	}
	return e.schedule(at, ev)
}

// cancelTimer removes a scheduled event by handle. Stale or zero handles
// (already fired, already cancelled, or issued by the legacy heap) are
// ignored, so callers may cancel unconditionally.
func (e *Engine) cancelTimer(h timerHandle) {
	if h.idx != 0 && !e.legacyHeap {
		e.wheel.cancel(h)
	}
}

// NextEventAt returns the timestamp of the earliest scheduled event, or
// ok=false when the schedule is empty. The sharded engine's epoch loop uses
// it to jump idle shards across event-free stretches instead of stepping
// fixed lookahead windows through them.
func (e *Engine) NextEventAt() (simtime.Time, bool) {
	if e.legacyHeap {
		if len(e.events) == 0 {
			return 0, false
		}
		return e.events[0].at, true
	}
	return e.wheel.peekAt()
}

// less orders the heap by timestamp, then emission time, then insertion
// sequence. Locally scheduled events have emit monotone in seq, so the
// emission key is a no-op for serial runs (the order is exactly the old
// (at, seq)); it only separates ingested cross-shard handoffs from local
// events at the same picosecond — by the global emission order the serial
// engine would have used.
func (e *Engine) less(i, j int) bool {
	a, b := &e.events[i], &e.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.emit != b.emit {
		return a.emit < b.emit
	}
	return a.seq < b.seq
}

// push appends ev and restores the heap by sifting it up.
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.events[i], e.events[parent] = e.events[parent], e.events[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The vacated slot is zeroed so
// the heap does not retain packets or closures past their dispatch.
func (e *Engine) pop() event {
	top := e.events[0]
	n := len(e.events) - 1
	e.events[0] = e.events[n]
	e.events[n] = event{}
	e.events = e.events[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && e.less(l, min) {
			min = l
		}
		if r < n && e.less(r, min) {
			min = r
		}
		if min == i {
			return top
		}
		e.events[i], e.events[min] = e.events[min], e.events[i]
		i = min
	}
}

// Run processes events until the queue is empty or the clock passes until.
// An event scheduled exactly at until still fires; if the queue drains
// early the clock is advanced to until. It returns the number of events
// processed by this call.
//
// Run is the simulator's hot loop: the annotation puts the whole typed
// dispatch tree — heap ops, Network forwarding, both transports — under
// the allocation budget. evFunc closures dispatch dynamically and escape
// the static call graph, so cold control-plane callbacks stay off-budget
// by construction; anything per-packet must use a typed event.
//
//r2c2:hotpath
func (e *Engine) Run(until simtime.Time) uint64 {
	if e.legacyHeap {
		return e.runHeap(until)
	}
	start := e.count
	for {
		idx := e.wheel.peek()
		if idx == 0 || e.wheel.nodes[idx-1].ev.at > until {
			break
		}
		ev := e.wheel.pop()
		if invariantsEnabled {
			//lint:ignore alloc-hotpath debug-only assertion args; invariantsEnabled is constant-false in release builds
			assertInvariant(ev.at >= e.now, "stale event pop: event at %v behind clock %v (clock must never go backwards)", ev.at, e.now)
		}
		e.now = ev.at
		e.count++
		e.dispatch(ev)
		if e.stopReq {
			e.stopReq = false
			return e.count - start
		}
	}
	if e.now < until {
		e.now = until
	}
	return e.count - start
}

// requestStop makes the current Run call return once the event being
// dispatched completes, without advancing the clock to its until bound.
// Calling it outside a dispatch is meaningless and therefore a bug.
func (e *Engine) requestStop() { e.stopReq = true }

// dispatch routes one popped event to its typed receiver.
//
//r2c2:hotpath
func (e *Engine) dispatch(ev event) {
	switch ev.kind {
	case evFunc:
		ev.fn()
	case evTxDone:
		e.net.transmitDone(ev.port, ev.pkt)
	case evArrive:
		e.net.arrive(ev.node, ev.pkt)
	case evSend:
		e.r2.sendNext(ev.rn, ev.sf)
	case evRTO:
		e.r2.onRTO(ev.rn, ev.sf, ev.u64)
	case evTCPRTO:
		e.tcp.onRTO(ev.ts, ev.u64)
	}
}

// runHeap is Run under the legacy min-heap scheduler.
func (e *Engine) runHeap(until simtime.Time) uint64 {
	start := e.count
	for len(e.events) > 0 {
		if e.events[0].at > until {
			break
		}
		ev := e.pop()
		if invariantsEnabled {
			//lint:ignore alloc-hotpath debug-only assertion args; invariantsEnabled is constant-false in release builds
			assertInvariant(ev.at >= e.now, "stale event pop: event at %v behind clock %v (clock must never go backwards)", ev.at, e.now)
		}
		e.now = ev.at
		e.count++
		e.dispatch(ev)
		if e.stopReq {
			e.stopReq = false
			return e.count - start
		}
	}
	if e.now < until {
		e.now = until
	}
	return e.count - start
}

// Pending reports whether any events remain scheduled. Under the wheel,
// cancelled timers do not count; under the legacy heap their tombstones do
// (they still occupy the schedule until their no-op fire).
func (e *Engine) Pending() bool {
	if e.legacyHeap {
		return len(e.events) > 0
	}
	return e.wheel.count > 0
}

// PendingEvents returns how many events are currently scheduled — live
// events only under the wheel, tombstones included under the legacy heap.
// The RTO-cancellation regression test uses this to assert the schedule
// stays O(in-flight timers) rather than O(acks).
func (e *Engine) PendingEvents() int {
	if e.legacyHeap {
		return len(e.events)
	}
	return e.wheel.count
}
