package analysis

import (
	"strings"
	"testing"
)

func TestLockOrderDirectCycle(t *testing.T) {
	a := NewLockOrder()
	src := `package p
import "sync"
type S struct{ a, b sync.Mutex }
func (s *S) One() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}
func (s *S) Two() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "lock-order cycle") {
		t.Errorf("message %q should mention lock-order cycle", diags[0].Message)
	}
	if !strings.Contains(diags[0].Message, "m/p.S.a") || !strings.Contains(diags[0].Message, "m/p.S.b") {
		t.Errorf("message %q should name both lock classes", diags[0].Message)
	}
}

func TestLockOrderSequentialClean(t *testing.T) {
	a := NewLockOrder()
	src := `package p
import "sync"
type S struct{ a, b sync.Mutex }
func (s *S) One() {
	s.a.Lock()
	s.a.Unlock()
	s.b.Lock()
	s.b.Unlock()
}
func (s *S) Two() {
	s.b.Lock()
	s.b.Unlock()
	s.a.Lock()
	s.a.Unlock()
}`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 0 {
		t.Fatalf("got %d findings, want 0: %v", len(diags), diags)
	}
}

func TestLockOrderConsistentNestingClean(t *testing.T) {
	// Nested a→b in two places is fine: same order, no inversion.
	a := NewLockOrder()
	src := `package p
import "sync"
type S struct{ a, b sync.Mutex }
func (s *S) One() { s.a.Lock(); s.b.Lock(); s.b.Unlock(); s.a.Unlock() }
func (s *S) Two() { s.a.Lock(); s.b.Lock(); s.b.Unlock(); s.a.Unlock() }`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 0 {
		t.Fatalf("got %d findings, want 0: %v", len(diags), diags)
	}
}

func TestLockOrderCrossPackageCycle(t *testing.T) {
	// The inversion spans a package boundary: b.(*T).Back holds b.T.mu
	// and calls a.Touch (which locks a.Mu), while c.Outer holds a.Mu and
	// calls b.Helper (which locks b.T.mu). No single package shows both
	// orders — only the module-wide resolve phase sees the cycle.
	an := NewLockOrder()
	pkgs := map[string]map[string]string{
		"m/a": {"a.go": `package a
import "sync"
var Mu sync.Mutex
func Touch() { Mu.Lock(); Mu.Unlock() }`},
		"m/b": {"b.go": `package b
import (
	"sync"
	"m/a"
)
type T struct{ mu sync.Mutex }
func Helper(t *T) { t.mu.Lock(); t.mu.Unlock() }
func (t *T) Back() {
	t.mu.Lock()
	defer t.mu.Unlock()
	a.Touch()
}`},
		"m/c": {"c.go": `package c
import (
	"m/a"
	"m/b"
)
func Outer(t *b.T) {
	a.Mu.Lock()
	defer a.Mu.Unlock()
	b.Helper(t)
}`},
	}
	diags := checkModule(t, pkgs, an)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "m/b.T.mu") || !strings.Contains(diags[0].Message, "m/a.Mu") {
		t.Errorf("message %q should name m/b.T.mu and m/a.Mu", diags[0].Message)
	}
	// Each half alone is clean: drop c and the cycle disappears.
	delete(pkgs, "m/c")
	diags = checkModule(t, pkgs, an)
	if len(diags) != 0 {
		t.Fatalf("without m/c: got %d findings, want 0: %v", len(diags), diags)
	}
}

func TestLockOrderGoroutineResetsHeld(t *testing.T) {
	// A goroutine launched while holding a does NOT inherit a: locking b
	// inside it is not an a→b edge.
	a := NewLockOrder()
	src := `package p
import "sync"
type S struct{ a, b sync.Mutex }
func (s *S) One() {
	s.a.Lock()
	go func() {
		s.b.Lock()
		s.b.Unlock()
	}()
	s.a.Unlock()
}
func (s *S) Two() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 0 {
		t.Fatalf("got %d findings, want 0: %v", len(diags), diags)
	}
}

func TestLockOrderRWMutexSharesClass(t *testing.T) {
	// RLock participates in ordering like Lock: a.RLock-then-b.Lock in
	// one function against b.Lock-then-a.Lock in another is a cycle.
	a := NewLockOrder()
	src := `package p
import "sync"
type S struct {
	a sync.RWMutex
	b sync.Mutex
}
func (s *S) Read() {
	s.a.RLock()
	s.b.Lock()
	s.b.Unlock()
	s.a.RUnlock()
}
func (s *S) Write() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
}

func TestLockOrderDeferredUnlockHolds(t *testing.T) {
	// defer mu.Unlock() keeps the lock held for the rest of the body, so
	// a later acquire is still an edge.
	a := NewLockOrder()
	src := `package p
import "sync"
type S struct{ a, b sync.Mutex }
func (s *S) One() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock()
	s.b.Unlock()
}
func (s *S) Two() {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock()
	s.a.Unlock()
}`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
}
