package sim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"r2c2/internal/faults"
	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/stats"
	"r2c2/internal/topology"
	"r2c2/internal/trafficgen"
)

// dumpResults renders a Results to a canonical byte form: every flow
// record in creation order, every sample's exact values, every counter.
// Two runs of the same configuration must produce equal dumps.
func dumpResults(res *Results) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "transport=%v completed=%d incomplete=%d events=%d end=%d\n",
		res.Transport, res.Completed, res.Incomplete, res.Events, res.EndTime)
	fmt.Fprintf(&b, "reroutes=%d drops=%d retx=%d bcast=%d recomp=%d rounds=%d\n",
		res.FailureReroutes, res.Drops, res.Retransmissions, res.BcastBytes,
		res.Recomputations, res.RecomputeRounds)
	for _, rec := range res.Flows {
		fmt.Fprintf(&b, "flow %d %d->%d size=%d start=%d fin=%d done=%v rcvd=%d sdone=%v\n",
			rec.ID, rec.Src, rec.Dst, rec.SizeBytes, rec.Started, rec.Finished,
			rec.Done, rec.BytesRcvd, rec.SenderDone)
	}
	sample := func(name string, s *stats.Sample) {
		fmt.Fprintf(&b, "%s n=%d %v\n", name, s.Len(), s.Values())
	}
	sample("shortFCT", &res.ShortFCT)
	sample("longTput", &res.LongThroughput)
	sample("allFCT", &res.AllFCT)
	sample("maxQueue", &res.MaxQueue)
	sample("reorder", &res.Reorder)
	return b.Bytes()
}

// TestRunTwiceByteIdentical is the determinism regression for the sorted
// flow-map iterations (det-map-iter): recomputeTick and rerouteNow walk
// per-node flow maps, and event scheduling order assigns the (at,seq)
// FIFO tie-break, so an unsorted walk would let two identically seeded
// runs diverge. The fault schedule makes rerouteNow fire; the recompute
// interval keeps the periodic allocator walking multi-flow maps.
func TestRunTwiceByteIdentical(t *testing.T) {
	g, err := topology.NewTorus(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := faults.Generate(g, faults.GenConfig{
		Seed:    42,
		Horizon: 10 * time.Millisecond,
		Flaps:   2,
		Crash:   true,
		DownFor: 2 * time.Millisecond,
		Detect:  200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := func() RunConfig {
		return RunConfig{
			Graph:     g,
			Net:       NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond},
			Transport: TransportR2C2,
			R2C2: R2C2Config{
				Headroom: 0.05, Protocol: routing.RPS,
				Recompute: 100 * simtime.Microsecond,
				Reliable:  true, RTO: 300 * simtime.Microsecond,
			},
			Arrivals: trafficgen.FixedSize(trafficgen.PoissonConfig{
				Nodes:        g.Nodes(),
				MeanInterval: 300 * simtime.Microsecond,
				Count:        40,
				Seed:         7,
			}, 256<<10),
			Faults:  sched,
			MaxTime: 200 * simtime.Millisecond,
		}
	}

	first := Run(cfg())
	if first.FailureReroutes == 0 || first.Recomputations == 0 {
		t.Fatalf("workload too weak to exercise the sorted iterations: reroutes=%d recomputations=%d",
			first.FailureReroutes, first.Recomputations)
	}
	a := dumpResults(first)
	b := dumpResults(Run(cfg()))
	if !bytes.Equal(a, b) {
		line := 1
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				break
			}
			if a[i] == '\n' {
				line++
			}
		}
		t.Fatalf("two runs of one configuration diverged (first differing line %d)\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			line, a, b)
	}
}
