package sim

import (
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
)

func TestWithoutLinks(t *testing.T) {
	g := torus(t, 4, 2)
	a, b := g.NodeAt([]int{0, 0}), g.NodeAt([]int{1, 0})
	ab, _ := g.LinkBetween(a, b)
	ba, _ := g.LinkBetween(b, a)
	sub, mapping, err := g.WithoutLinks(map[topology.LinkID]bool{ab: true, ba: true})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumLinks() != g.NumLinks()-2 {
		t.Fatalf("links = %d", sub.NumLinks())
	}
	if !sub.Degraded() {
		t.Fatal("subgraph not marked degraded")
	}
	if _, ok := sub.LinkBetween(a, b); ok {
		t.Fatal("failed link still present")
	}
	// Distances reroute around the failure: a->b now 3 hops on a 4-ring.
	if d := sub.Dist(a, b); d != 3 {
		t.Fatalf("degraded dist = %d, want 3", d)
	}
	// Mapping points every surviving link back at the same physical pair.
	for newID, oldID := range mapping {
		if sub.Link(topology.LinkID(newID)) != g.Link(oldID) {
			t.Fatalf("mapping broken at %d", newID)
		}
	}
	// Partitioning failures are rejected: cut every link of one node on a
	// 1D ring of 3 (node 1 has neighbours 0 and 2).
	ring, err := topology.NewTorus(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cut := map[topology.LinkID]bool{}
	for _, lid := range ring.Out(1) {
		cut[lid] = true
	}
	for _, lid := range ring.In(1) {
		cut[lid] = true
	}
	if _, _, err := ring.WithoutLinks(cut); err == nil {
		t.Fatal("partitioning failure accepted")
	}
}

// Degraded fabrics must still produce valid φ-vectors and paths for every
// protocol (DOR and WLB fall back to DAG-based routing).
func TestRoutingOnDegradedFabric(t *testing.T) {
	g := torus(t, 4, 2)
	ab, _ := g.LinkBetween(0, 1)
	ba, _ := g.LinkBetween(1, 0)
	sub, _, err := g.WithoutLinks(map[topology.LinkID]bool{ab: true, ba: true})
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewTable(sub)
	for _, p := range []routing.Protocol{routing.RPS, routing.DOR, routing.VLB, routing.WLB} {
		phi := tab.Phi(p, 0, 1)
		for _, lid := range phi.Links {
			l := sub.Link(lid)
			if l.From == 0 && l.To == 1 {
				t.Fatalf("%v routes over the failed link", p)
			}
		}
	}
}

// End-to-end failure story: a reliable flow crossing a link that dies
// mid-transfer must still complete after detection and rerouting.
func TestR2C2SurvivesLinkFailure(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	tab := routing.NewTable(g)
	r := NewR2C2(net, tab, R2C2Config{
		Headroom: 0.05, Protocol: routing.RPS,
		Recompute: 100 * simtime.Microsecond,
		Reliable:  true, RTO: 300 * simtime.Microsecond,
	})
	// A neighbour flow 0->1: RPS uses exactly the direct link, which dies.
	id := r.StartFlow(0, 1, 8<<20, 1, 0)
	eng.Run(simtime.Millisecond) // mid-transfer
	if err := r.FailLink(0, 1, 200*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	eng.Run(simtime.Second)
	rec := r.Ledger()[id]
	if !rec.Done {
		t.Fatalf("flow did not survive the failure: %d/%d bytes (drops=%d retx=%d reroutes=%d)",
			rec.BytesRcvd, rec.SizeBytes, net.TotalDrops(), r.Retransmissions, r.FailureReroutes)
	}
	if r.FailureReroutes != 1 {
		t.Fatalf("reroutes = %d", r.FailureReroutes)
	}
	ab, _ := g.LinkBetween(0, 1)
	if !net.LinkFailed(ab) {
		t.Fatal("failed link not reported as failed")
	}
	if net.QueuedBytes(ab) != 0 {
		t.Fatal("dead port still holds queued bytes")
	}
	if net.TotalDrops() == 0 {
		t.Fatal("failure killed no packets — the flow never used the link?")
	}
	if r.Retransmissions == 0 {
		t.Fatal("lost packets were never retransmitted")
	}
}

// After rerouting, broadcasts still reach everyone: a new flow started
// post-failure must appear in every view.
func TestBroadcastAfterFailure(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10})
	r := NewR2C2(net, routing.NewTable(g), R2C2Config{
		Headroom: 0.05, Protocol: routing.RPS, Recompute: 100 * simtime.Microsecond})
	if err := r.FailLink(0, 1, 50*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	eng.Run(simtime.Millisecond) // detection done
	id := r.StartFlow(0, 15, 64<<20, 1, 0)
	eng.Run(2 * simtime.Millisecond)
	for n := 0; n < g.Nodes(); n++ {
		if _, ok := r.View(topology.NodeID(n)).Get(id); !ok {
			t.Fatalf("node %d missing post-failure flow", n)
		}
	}
	if err := r.FailLink(0, 1, simtime.Microsecond); err == nil {
		t.Fatal("re-failing the same link should error (no link left)")
	}
}

// Failing a link under PFQ drains its per-flow queues and releases the
// buffer credits so upstream senders do not deadlock.
func TestFailLinkPFQDrains(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PerFlowQueues: true, PFQBufferPackets: 4})
	tab := routing.NewTable(g)
	pfq := NewPFQ(net, tab, 3)
	id := pfq.StartFlow(0, 2, 1<<20)  // DOR-free: RPS spray over the quadrant
	eng.Run(10 * simtime.Microsecond) // queues primed
	// Kill one of the first-hop links the flow is using.
	var victim topology.LinkID
	found := false
	for _, lid := range g.Out(0) {
		if net.QueuedBytes(lid) > 0 {
			victim, found = lid, true
			break
		}
	}
	if !found {
		t.Skip("no queued first-hop packets at probe time")
	}
	net.FailLink(victim)
	if net.QueuedBytes(victim) != 0 {
		t.Fatal("PFQ drain left bytes behind")
	}
	if !net.LinkFailed(victim) {
		t.Fatal("link not marked failed")
	}
	// The flow loses packets (no retransmit in raw PFQ) but the fabric
	// must not deadlock: remaining packets keep flowing on other paths.
	before := pfq.Ledger()[id].BytesRcvd
	eng.Run(10 * simtime.Millisecond)
	if after := pfq.Ledger()[id].BytesRcvd; after <= before {
		t.Fatalf("no forward progress after PFQ link failure: %d -> %d", before, after)
	}
}

// Node failure (§3.2): the dead node's flows are purged from every
// surviving view (their bandwidth is returned), survivors' flows reroute
// and complete, and flows to/from the dead node are abandoned.
func TestR2C2SurvivesNodeFailure(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	r := NewR2C2(net, routing.NewTable(g), R2C2Config{
		Headroom: 0.05, Protocol: routing.RPS,
		Recompute: 100 * simtime.Microsecond,
		Reliable:  true, RTO: 300 * simtime.Microsecond,
	})
	fromDead := r.StartFlow(5, 10, 32<<20, 1, 0) // sourced at the node that dies
	toDead := r.StartFlow(0, 5, 32<<20, 1, 0)    // destined to it
	survivor := r.StartFlow(1, 11, 8<<20, 1, 0)  // unrelated

	eng.Run(simtime.Millisecond) // everyone sees all three flows
	if err := r.FailNode(5, 200*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	eng.Run(simtime.Second)

	if !r.Ledger()[survivor].Done {
		t.Fatalf("survivor flow incomplete: %d/%d",
			r.Ledger()[survivor].BytesRcvd, r.Ledger()[survivor].SizeBytes)
	}
	if r.Ledger()[fromDead].Done || r.Ledger()[toDead].Done {
		t.Fatal("flows involving the dead node cannot complete")
	}
	// Every surviving view is clean: no trace of the dead node's flows.
	for n := 0; n < g.Nodes(); n++ {
		if n == 5 {
			continue
		}
		view := r.View(topology.NodeID(n))
		if _, ok := view.Get(fromDead); ok {
			t.Fatalf("node %d still sees the dead node's flow", n)
		}
		if _, ok := view.Get(toDead); ok {
			t.Fatalf("node %d still sees a flow to the dead node", n)
		}
	}
	// Partitioning node failures are rejected: on a 3-ring, killing node 1
	// leaves 0 and 2 connected... kill two nodes to partition.
	ring, err := topology.NewTorus(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ring.WithoutNode(1); err != nil {
		t.Fatalf("3-ring minus one node should stay connected: %v", err)
	}
}

// assertLinkGone fails the test if the transport's current routing table
// still contains the physical cable a-b (in either direction).
func assertLinkGone(t *testing.T, r *R2C2, a, b topology.NodeID) {
	t.Helper()
	sub := r.Tab.Graph()
	if _, ok := sub.LinkBetween(a, b); ok {
		t.Fatalf("routing table resurrects failed link %d->%d", a, b)
	}
	if _, ok := sub.LinkBetween(b, a); ok {
		t.Fatalf("routing table resurrects failed link %d->%d", b, a)
	}
}

// Headline regression (overlapping failures with interleaved detection
// windows): link A fails at t with a LONG detection delay, link B fails at
// t+10µs with a SHORT one. B's detection fires first and must install a
// fabric missing BOTH links; A's later-firing detection must not reinstall
// a snapshot taken before B failed — that would resurrect B in the routing
// table and send traffic onto a dead port forever.
func TestOverlappingLinkFailures(t *testing.T) {
	g := torus(t, 4, 2)
	if _, ok := g.LinkBetween(2, 3); !ok {
		t.Fatal("test assumes a 2-3 cable on the 4x2 torus")
	}
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	r := NewR2C2(net, routing.NewTable(g), R2C2Config{
		Headroom: 0.05, Protocol: routing.RPS,
		Recompute: 100 * simtime.Microsecond,
		Reliable:  true, RTO: 300 * simtime.Microsecond,
	})
	// A neighbour flow straddling link B: if B is resurrected, RPS routes
	// its packets onto the dead port and the flow starves.
	id := r.StartFlow(2, 3, 8<<20, 1, 0)
	eng.Run(simtime.Millisecond)
	if err := r.FailLink(0, 1, 100*simtime.Microsecond); err != nil { // link A, slow detection
		t.Fatal(err)
	}
	eng.Schedule(eng.Now()+10*simtime.Microsecond, func() {
		if err := r.FailLink(2, 3, 20*simtime.Microsecond); err != nil { // link B, fast detection
			t.Error(err)
		}
	})
	eng.Run(simtime.Second) // both detection windows long past
	assertLinkGone(t, r, 0, 1)
	assertLinkGone(t, r, 2, 3)
	// B's fire at t+30µs already covered A's injection, so A's fire at
	// t+100µs must be a no-op: exactly one fabric rebuild.
	if r.FailureReroutes != 1 {
		t.Fatalf("reroutes = %d, want 1 (stale callback rebuilt the fabric)", r.FailureReroutes)
	}
	if rec := r.Ledger()[id]; !rec.Done {
		t.Fatalf("flow across the resurrected link starved: %d/%d bytes", rec.BytesRcvd, rec.SizeBytes)
	}
}

// Regression: a node crash AFTER an earlier link failure must fold the
// accumulated failed links into the degraded fabric — WithoutNode(dead)
// alone would reroute traffic onto the previously failed link.
func TestLinkThenNodeFailure(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	r := NewR2C2(net, routing.NewTable(g), R2C2Config{
		Headroom: 0.05, Protocol: routing.RPS,
		Recompute: 100 * simtime.Microsecond,
		Reliable:  true, RTO: 300 * simtime.Microsecond,
	})
	id := r.StartFlow(0, 1, 8<<20, 1, 0) // straddles the link that dies
	eng.Run(simtime.Millisecond)
	if err := r.FailLink(0, 1, 50*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	eng.Run(2 * simtime.Millisecond) // first reroute done
	assertLinkGone(t, r, 0, 1)
	if err := r.FailNode(5, 50*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	eng.Run(simtime.Second)
	if r.FailureReroutes != 2 {
		t.Fatalf("reroutes = %d, want 2", r.FailureReroutes)
	}
	// The node-crash reroute must still exclude the earlier link failure.
	assertLinkGone(t, r, 0, 1)
	for _, lid := range g.Out(5) {
		l := g.Link(lid)
		assertLinkGone(t, r, l.From, l.To)
	}
	if rec := r.Ledger()[id]; !rec.Done {
		t.Fatalf("flow rerouted onto the dead link: %d/%d bytes", rec.BytesRcvd, rec.SizeBytes)
	}
}

// RepairLink (§3.2's recovery half): after the repair's detection window
// the fabric re-expands, the generation bumps, and traffic uses the cable
// again.
func TestRepairLinkReexpandsFabric(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	r := NewR2C2(net, routing.NewTable(g), R2C2Config{
		Headroom: 0.05, Protocol: routing.RPS,
		Recompute: 100 * simtime.Microsecond,
		Reliable:  true, RTO: 300 * simtime.Microsecond,
	})
	if err := r.RepairLink(0, 1, simtime.Microsecond); err == nil {
		t.Fatal("repairing a healthy link should error")
	}
	if err := r.FailLink(0, 1, 50*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	eng.Run(simtime.Millisecond)
	assertLinkGone(t, r, 0, 1)
	if err := r.RepairLink(0, 1, 50*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	eng.Run(2 * simtime.Millisecond)
	if r.FailureReroutes != 2 {
		t.Fatalf("reroutes = %d, want 2 (repair must rebuild the fabric)", r.FailureReroutes)
	}
	if _, ok := r.Tab.Graph().LinkBetween(0, 1); !ok {
		t.Fatal("repaired link missing from the re-expanded routing table")
	}
	if r.linkMap != nil {
		t.Fatal("fully repaired fabric should drop the link-ID translation")
	}
	ab, _ := g.LinkBetween(0, 1)
	if net.LinkFailed(ab) {
		t.Fatal("repaired port still dead")
	}
	// A neighbour flow 0->1 on the repaired fabric transits the cable.
	id := r.StartFlow(0, 1, 4<<20, 1, 0)
	eng.Run(eng.Now() + simtime.Second)
	if rec := r.Ledger()[id]; !rec.Done {
		t.Fatalf("post-repair flow incomplete: %d/%d", rec.BytesRcvd, rec.SizeBytes)
	}
	if net.PortStats(ab).SentBytes == 0 {
		t.Fatal("repaired cable carried no traffic")
	}
	// A crashed node's cables cannot be repaired while it is down.
	if err := r.FailNode(10, 50*simtime.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := r.RepairLink(10, 11, simtime.Microsecond); err == nil {
		t.Fatal("repairing a dead node's cable should error")
	}
}
