package topology

import (
	"testing"
	"testing/quick"
)

func TestTorusSizes(t *testing.T) {
	cases := []struct {
		k, dims  int
		nodes    int
		degree   int
		diameter int
	}{
		{3, 1, 3, 2, 1},
		{4, 2, 16, 4, 4},
		{3, 3, 27, 6, 3},
		{8, 2, 64, 4, 8},
		{4, 3, 64, 6, 6},
		{2, 3, 8, 3, 3}, // k=2: one link per dimension
	}
	for _, c := range cases {
		g, err := NewTorus(c.k, c.dims)
		if err != nil {
			t.Fatalf("NewTorus(%d,%d): %v", c.k, c.dims, err)
		}
		if g.Nodes() != c.nodes {
			t.Errorf("torus %d^%d: nodes = %d, want %d", c.k, c.dims, g.Nodes(), c.nodes)
		}
		for v := 0; v < g.Nodes(); v++ {
			if got := g.Degree(NodeID(v)); got != c.degree {
				t.Fatalf("torus %d^%d: degree(%d) = %d, want %d", c.k, c.dims, v, got, c.degree)
			}
		}
		if got := g.Diameter(); got != c.diameter {
			t.Errorf("torus %d^%d: diameter = %d, want %d", c.k, c.dims, got, c.diameter)
		}
	}
}

func TestTorusInvalid(t *testing.T) {
	if _, err := NewTorus(1, 2); err == nil {
		t.Error("NewTorus(1,2) should fail")
	}
	if _, err := NewTorus(4, 0); err == nil {
		t.Error("NewTorus(4,0) should fail")
	}
	if _, err := NewMesh(0, 1); err == nil {
		t.Error("NewMesh(0,1) should fail")
	}
}

// Torus distance must match the analytic formula: sum over dimensions of
// min(delta, k-delta).
func TestTorusDistanceAnalytic(t *testing.T) {
	g, err := NewTorus(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < g.Nodes(); a++ {
		ca := g.Coord(NodeID(a))
		for b := 0; b < g.Nodes(); b++ {
			cb := g.Coord(NodeID(b))
			want := 0
			for d := 0; d < 3; d++ {
				delta := (cb[d] - ca[d] + 5) % 5
				if delta > 5-delta {
					delta = 5 - delta
				}
				want += delta
			}
			if got := g.Dist(NodeID(a), NodeID(b)); got != want {
				t.Fatalf("dist(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMeshDistanceAnalytic(t *testing.T) {
	g, err := NewMesh(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < g.Nodes(); a++ {
		ca := g.Coord(NodeID(a))
		for b := 0; b < g.Nodes(); b++ {
			cb := g.Coord(NodeID(b))
			want := abs(ca[0]-cb[0]) + abs(ca[1]-cb[1])
			if got := g.Dist(NodeID(a), NodeID(b)); got != want {
				t.Fatalf("mesh dist(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestDistanceSymmetry(t *testing.T) {
	for _, g := range testGraphs(t) {
		for a := 0; a < g.Nodes(); a++ {
			for b := 0; b < g.Nodes(); b++ {
				if g.Dist(NodeID(a), NodeID(b)) != g.Dist(NodeID(b), NodeID(a)) {
					t.Fatalf("%v: dist(%d,%d) != dist(%d,%d)", g.Kind(), a, b, b, a)
				}
			}
		}
	}
}

func TestCoordRoundTrip(t *testing.T) {
	g, err := NewTorus(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		id := NodeID(int(raw) % g.Nodes())
		return g.NodeAt(g.Coord(id)) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTorusOffset(t *testing.T) {
	g, err := NewTorus(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := g.NodeAt([]int{0, 0})
	cases := []struct {
		coord []int
		want  []int
	}{
		{[]int{1, 0}, []int{1, 0}},
		{[]int{7, 0}, []int{-1, 0}},
		{[]int{4, 4}, []int{4, 4}}, // ties go positive
		{[]int{5, 2}, []int{-3, 2}},
		{[]int{0, 0}, []int{0, 0}},
	}
	for _, c := range cases {
		got := g.TorusOffset(a, g.NodeAt(c.coord))
		if got[0] != c.want[0] || got[1] != c.want[1] {
			t.Errorf("offset to %v = %v, want %v", c.coord, got, c.want)
		}
	}
}

// Offset magnitudes must sum to the BFS distance.
func TestTorusOffsetMatchesDistance(t *testing.T) {
	g, err := NewTorus(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < g.Nodes(); a++ {
		for b := 0; b < g.Nodes(); b++ {
			off := g.TorusOffset(NodeID(a), NodeID(b))
			sum := 0
			for _, o := range off {
				sum += abs(o)
			}
			if sum != g.Dist(NodeID(a), NodeID(b)) {
				t.Fatalf("offset(%d,%d)=%v magnitude %d != dist %d", a, b, off, sum, g.Dist(NodeID(a), NodeID(b)))
			}
		}
	}
}

func TestMinimalSuccessors(t *testing.T) {
	for _, g := range testGraphs(t) {
		for dst := 0; dst < g.Nodes(); dst += 7 {
			succ := g.MinimalSuccessors(NodeID(dst))
			if len(succ[dst]) != 0 {
				t.Fatalf("%v: destination has successors", g.Kind())
			}
			for v := 0; v < g.Vertices(); v++ {
				if v == dst || g.Dist(NodeID(v), NodeID(dst)) < 0 {
					continue
				}
				if len(succ[v]) == 0 {
					t.Fatalf("%v: node %d has no minimal successor towards %d", g.Kind(), v, dst)
				}
				for _, lid := range succ[v] {
					l := g.Link(lid)
					if g.Dist(l.To, NodeID(dst)) != g.Dist(NodeID(v), NodeID(dst))-1 {
						t.Fatalf("%v: successor %v does not reduce distance", g.Kind(), l)
					}
				}
			}
		}
	}
}

func TestFoldedClos(t *testing.T) {
	g, err := NewFoldedClos(4, 2, 8) // 32 hosts, 4 leaves, 2 spines
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 32 {
		t.Fatalf("nodes = %d, want 32", g.Nodes())
	}
	if g.Vertices() != 38 {
		t.Fatalf("vertices = %d, want 38", g.Vertices())
	}
	// Same-leaf pairs: 2 hops; cross-leaf: 4 hops.
	if d := g.Dist(0, 1); d != 2 {
		t.Errorf("same-leaf dist = %d, want 2", d)
	}
	if d := g.Dist(0, 8); d != 4 {
		t.Errorf("cross-leaf dist = %d, want 4", d)
	}
}

func TestMeanNodeDistance(t *testing.T) {
	// Paper §3.2: "The average path length for a flow in a 512-node 3D
	// torus is 6 hops."
	g, err := NewTorus(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	mean := g.MeanNodeDistance()
	if mean < 5.9 || mean > 6.1 {
		t.Errorf("512-node 3D torus mean distance = %.3f, want ~6", mean)
	}
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(KindTorus, 2, 2, []Link{{0, 0}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := NewGraph(KindTorus, 2, 2, []Link{{0, 1}, {0, 1}}); err == nil {
		t.Error("duplicate edge accepted")
	}
	if _, err := NewGraph(KindTorus, 2, 2, []Link{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := NewGraph(KindTorus, 0, 0, nil); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestLinkBetween(t *testing.T) {
	g, err := NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := g.NodeAt([]int{0, 0})
	b := g.NodeAt([]int{1, 0})
	id, ok := g.LinkBetween(a, b)
	if !ok {
		t.Fatal("adjacent nodes have no link")
	}
	if l := g.Link(id); l.From != a || l.To != b {
		t.Fatalf("Link(%d) = %v, want %d->%d", id, l, a, b)
	}
	far := g.NodeAt([]int{2, 2})
	if _, ok := g.LinkBetween(a, far); ok {
		t.Error("non-adjacent nodes report a link")
	}
}

func TestNodesAtDistance(t *testing.T) {
	g, err := NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	byDist := g.NodesAtDistance(0)
	total := 0
	for d, nodes := range byDist {
		for _, v := range nodes {
			if g.Dist(0, v) != d {
				t.Fatalf("node %d listed at distance %d but dist=%d", v, d, g.Dist(0, v))
			}
		}
		total += len(nodes)
	}
	if total != g.Nodes() {
		t.Fatalf("NodesAtDistance covers %d nodes, want %d", total, g.Nodes())
	}
}

func testGraphs(t *testing.T) []*Graph {
	t.Helper()
	torus, err := NewTorus(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := NewMesh(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	clos, err := NewFoldedClos(4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	return []*Graph{torus, mesh, clos}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
