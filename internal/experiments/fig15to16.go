package experiments

import (
	"r2c2/internal/fluid"
	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/stats"
	"r2c2/internal/trafficgen"
)

// Fig15Result records, per recomputation interval ρ, the median and 95th
// percentile of the per-flow normalised rate error |r_ρ - r_0|/r_0
// (Figure 15; τ fixed).
type Fig15Result struct {
	Rhos          []simtime.Time
	Median, P95th []float64
}

// Fig15 sweeps ρ at fixed τ using the fluid model; the per-ρ fluid runs
// execute concurrently on s.Parallel workers (the routing table they share
// is internally synchronised).
func Fig15(s Scale, tau simtime.Time, rhos []simtime.Time) *Fig15Result {
	g := s.Torus()
	tab := routing.NewTable(g)
	arrivals := trafficgen.Poisson(trafficgen.PoissonConfig{
		Nodes: g.Nodes(), MeanInterval: tau, Count: s.Flows, Seed: s.Seed,
	})
	cfg := fluid.Config{Tab: tab, Protocol: routing.RPS,
		CapacityBits: s.LinkGbps * 1e9, Headroom: 0.05}
	ideal := fluid.Run(cfg, arrivals)
	res := &Fig15Result{Rhos: rhos,
		Median: make([]float64, len(rhos)), P95th: make([]float64, len(rhos))}
	parallelFor(s.Parallel, len(rhos), func(i int) {
		c := cfg
		c.Recompute = rhos[i]
		periodic := fluid.Run(c, arrivals)
		var sample stats.Sample
		sample.AddAll(fluid.RateErrorFiltered(ideal, periodic, rhos[i]))
		res.Median[i] = sample.Median()
		res.P95th[i] = sample.Percentile(95)
	})
	return res
}

// Table renders Figure 15.
func (r *Fig15Result) Table() *Table {
	t := &Table{Title: "Figure 15: normalised rate error vs recomputation interval",
		Header: []string{"rho", "median", "p95"}}
	for i, rho := range r.Rhos {
		t.AddRow(rho.String(), f3(r.Median[i]), f3(r.P95th[i]))
	}
	return t
}

// Fig16Result records the rate error against the flow inter-arrival time τ
// at fixed ρ (Figure 16).
type Fig16Result struct {
	Taus          []simtime.Time
	Median, P95th []float64
}

// Fig16 sweeps τ at fixed ρ using the fluid model; the per-τ points run
// concurrently on s.Parallel workers.
func Fig16(s Scale, rho simtime.Time, taus []simtime.Time) *Fig16Result {
	g := s.Torus()
	tab := routing.NewTable(g)
	res := &Fig16Result{Taus: taus,
		Median: make([]float64, len(taus)), P95th: make([]float64, len(taus))}
	parallelFor(s.Parallel, len(taus), func(i int) {
		arrivals := trafficgen.Poisson(trafficgen.PoissonConfig{
			Nodes: g.Nodes(), MeanInterval: taus[i], Count: s.Flows, Seed: s.Seed,
		})
		cfg := fluid.Config{Tab: tab, Protocol: routing.RPS,
			CapacityBits: s.LinkGbps * 1e9, Headroom: 0.05}
		ideal := fluid.Run(cfg, arrivals)
		c := cfg
		c.Recompute = rho
		periodic := fluid.Run(c, arrivals)
		var sample stats.Sample
		sample.AddAll(fluid.RateErrorFiltered(ideal, periodic, rho))
		res.Median[i] = sample.Median()
		res.P95th[i] = sample.Percentile(95)
	})
	return res
}

// Table renders Figure 16.
func (r *Fig16Result) Table() *Table {
	t := &Table{Title: "Figure 16: normalised rate error vs flow inter-arrival time",
		Header: []string{"tau", "median", "p95"}}
	for i, tau := range r.Taus {
		t.AddRow(tau.String(), f3(r.Median[i]), f3(r.P95th[i]))
	}
	return t
}
