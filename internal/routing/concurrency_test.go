package routing

import (
	"math/rand"
	"sync"
	"testing"

	"r2c2/internal/topology"
)

// The emulator calls one shared Table from every link and sender goroutine
// concurrently; φ computation, caching and path sampling must be
// race-free. Run with -race.
func TestTableConcurrentAccess(t *testing.T) {
	g := torus(t, 4, 3)
	tab := NewTable(g)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			protos := []Protocol{RPS, DOR, VLB, WLB}
			for i := 0; i < 300; i++ {
				src := topology.NodeID(rng.Intn(g.Nodes()))
				dst := topology.NodeID(rng.Intn(g.Nodes()))
				if src == dst {
					continue
				}
				p := protos[rng.Intn(len(protos))]
				phi := tab.Phi(p, src, dst)
				if len(phi.Links) == 0 {
					t.Error("empty phi")
					return
				}
				path := tab.SamplePath(p, src, dst, rng)
				if _, err := tab.PortRoute(path); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
