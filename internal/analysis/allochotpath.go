package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// allocHotpath enforces the allocation budget on the hot path. Functions
// annotated `//r2c2:hotpath` — and everything they reach through
// module-internal calls — must not contain allocating constructs: the
// ROADMAP's zero-alloc milestone (mbuf arenas, timer wheel) is only
// landable if the event loop, the packet pool and the emulator data path
// stay allocation-free between perf PRs, and BENCH_sim.json only notices
// a regression after it has shipped.
//
// The rule is deliberately an over-approximation of the compiler's escape
// analysis: `&T{}` that provably stays on the stack, a `make` with a
// constant bound, an interface conversion the inliner devirtualises — all
// still flagged. A construct the rule flags either gets rewritten or gets
// an explicit `//lint:ignore alloc-hotpath <why it is fine>`; the
// compiler's actual verdict is cross-checked by cmd/r2c2-allocheck
// against alloc_budget.json. What it will not do is silently drift.
//
// Collect gathers per-function facts (the annotation, allocation sites,
// named callees); Resolve walks the call graph from every annotated root
// and reports each reachable function's allocation sites once.
type allocHotpath struct{ pkgScope }

// NewAllocHotpath builds the hot-path allocation rule scoped to the given
// package path suffixes (empty = all packages).
func NewAllocHotpath(pkgs ...string) ModuleAnalyzer { return &allocHotpath{pkgScope{pkgs}} }

// HotpathDirective is the annotation marking a function as hot.
const HotpathDirective = "//r2c2:hotpath"

func (*allocHotpath) Name() string { return "alloc-hotpath" }
func (*allocHotpath) Doc() string {
	return "flag allocating constructs in //r2c2:hotpath functions and their transitive in-module callees"
}

// ahAlloc is one allocation site inside a function.
type ahAlloc struct {
	pos  token.Position
	what string
}

// ahFunc is one function's contribution to the module call graph.
type ahFunc struct {
	hot     bool
	pos     token.Position
	callees map[string]bool // types.Func.FullName of every named callee
	allocs  []ahAlloc
}

// ahFacts is one package's per-function facts, keyed by FullName.
type ahFacts struct {
	funcs map[string]*ahFunc
}

func (a *allocHotpath) Collect(pass *TypedPass) any {
	facts := &ahFacts{funcs: map[string]*ahFunc{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fn := &ahFunc{
				hot:     isHotpath(fd),
				pos:     pass.Fset.Position(fd.Pos()),
				callees: map[string]bool{},
			}
			facts.funcs[obj.FullName()] = fn
			w := &ahWalker{pass: pass, fn: fn, decl: fd, okAppend: map[*ast.CallExpr]bool{}, panics: map[*ast.CallExpr]bool{}}
			w.walk(fd.Body)
		}
	}
	if len(facts.funcs) == 0 {
		return nil
	}
	return facts
}

// isHotpath reports whether a function's doc comment carries the
// //r2c2:hotpath directive (trailing explanation text allowed).
func isHotpath(fd *ast.FuncDecl) bool {
	return hasDirective(fd.Doc, KindHotpath)
}

// ahWalker inspects one function body, classifying allocation sites and
// recording callees. It keeps the ancestor stack (ast.Inspect's post-order
// nil callback pops) so it can exempt panic arguments, resolve the
// enclosing signature for return-statement boxing, and detect closure
// captures.
type ahWalker struct {
	pass     *TypedPass
	fn       *ahFunc
	decl     *ast.FuncDecl
	stack    []ast.Node
	okAppend map[*ast.CallExpr]bool // appends using the grow-in-place idiom
	panics   map[*ast.CallExpr]bool // panic(...) calls; their arguments are off-budget
}

func (w *ahWalker) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			w.stack = w.stack[:len(w.stack)-1]
			return false
		}
		w.stack = append(w.stack, n)
		w.visit(n)
		return true
	})
}

func (w *ahWalker) visit(n ast.Node) {
	switch v := n.(type) {
	case *ast.AssignStmt:
		w.assign(v)
	case *ast.ValueSpec:
		w.valueSpec(v)
	case *ast.ReturnStmt:
		w.returnStmt(v)
	case *ast.CallExpr:
		w.call(v)
	case *ast.CompositeLit:
		w.compositeLit(v)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if _, ok := v.X.(*ast.CompositeLit); ok {
				w.alloc(v, "&composite literal may escape to the heap")
			}
		}
	case *ast.BinaryExpr:
		if v.Op == token.ADD && isString(w.typeOf(v)) && !w.isConst(v) {
			w.alloc(v, "string concatenation allocates")
		}
	case *ast.FuncLit:
		if caps := w.captures(v); len(caps) > 0 {
			w.alloc(v, "closure capturing "+strings.Join(caps, ", ")+" may escape")
		}
	}
}

// alloc records an allocation site unless it sits inside a panic(...)
// argument — a panicking path is off-budget by definition.
func (w *ahWalker) alloc(n ast.Node, what string) {
	for _, anc := range w.stack {
		if call, ok := anc.(*ast.CallExpr); ok && w.panics[call] {
			return
		}
	}
	w.fn.allocs = append(w.fn.allocs, ahAlloc{pos: w.pass.Fset.Position(n.Pos()), what: what})
}

// assign marks grow-in-place appends (x = append(x, ...), including
// p.buf = append(p.buf[:0], ...)) as budget-free and checks each
// assignment for interface boxing.
func (w *ahWalker) assign(v *ast.AssignStmt) {
	if len(v.Lhs) != len(v.Rhs) {
		return
	}
	for i, rhs := range v.Rhs {
		if call, ok := rhs.(*ast.CallExpr); ok && w.isBuiltin(call, "append") && len(call.Args) > 0 {
			if exprString(v.Lhs[i]) == exprString(stripSlices(call.Args[0])) {
				w.okAppend[call] = true
			}
		}
		var dest types.Type
		if v.Tok == token.DEFINE {
			if id, ok := v.Lhs[i].(*ast.Ident); ok {
				if obj := w.pass.Info.Defs[id]; obj != nil {
					dest = obj.Type()
				}
			}
		} else if tv, ok := w.pass.Info.Types[v.Lhs[i]]; ok {
			dest = tv.Type
		}
		w.checkBox(dest, rhs, "assignment")
	}
}

func (w *ahWalker) valueSpec(v *ast.ValueSpec) {
	for i, val := range v.Values {
		if i < len(v.Names) {
			if obj := w.pass.Info.Defs[v.Names[i]]; obj != nil {
				w.checkBox(obj.Type(), val, "assignment")
			}
		}
	}
}

// returnStmt checks each returned expression against the enclosing
// function's (or innermost closure's) result types for interface boxing.
func (w *ahWalker) returnStmt(v *ast.ReturnStmt) {
	sig := w.enclosingSig()
	if sig == nil || sig.Results().Len() != len(v.Results) {
		return
	}
	for i, res := range v.Results {
		w.checkBox(sig.Results().At(i).Type(), res, "return")
	}
}

// enclosingSig finds the signature governing a return statement: the
// innermost FuncLit on the ancestor stack, else the declared function.
func (w *ahWalker) enclosingSig() *types.Signature {
	for i := len(w.stack) - 1; i >= 0; i-- {
		if lit, ok := w.stack[i].(*ast.FuncLit); ok {
			if tv, ok := w.pass.Info.Types[lit]; ok {
				if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
					return sig
				}
			}
			return nil
		}
	}
	if obj, ok := w.pass.Info.Defs[w.decl.Name].(*types.Func); ok {
		return obj.Type().(*types.Signature)
	}
	return nil
}

func (w *ahWalker) call(v *ast.CallExpr) {
	if tv, ok := w.pass.Info.Types[v.Fun]; ok && tv.IsType() {
		w.conversion(v, tv.Type)
		return
	}
	if id := builtinName(w.pass, v); id != "" {
		switch id {
		case "make":
			w.alloc(v, "make allocates")
		case "new":
			w.alloc(v, "new allocates")
		case "append":
			if !w.okAppend[v] && !w.returnsCallerBuffer(v) {
				w.alloc(v, "append may grow its backing array")
			}
		case "panic":
			w.panics[v] = true
		}
		return
	}
	callee := calleeFunc(w.pass, v)
	if callee != nil && callee.Pkg() != nil {
		full := callee.Origin().FullName()
		if allocatorCall(callee) {
			w.alloc(v, "call to "+full+" allocates")
		} else {
			w.fn.callees[full] = true
			w.callBoxing(v)
		}
		return
	}
	w.callBoxing(v)
}

// returnsCallerBuffer recognises `return append(buf, ...)` where buf is a
// parameter of the enclosing function: the AppendPath-style idiom where
// the caller owns the buffer and growth amortises across calls.
func (w *ahWalker) returnsCallerBuffer(v *ast.CallExpr) bool {
	if len(w.stack) < 2 {
		return false
	}
	if _, ok := w.stack[len(w.stack)-2].(*ast.ReturnStmt); !ok {
		return false
	}
	if len(v.Args) == 0 {
		return false
	}
	id, ok := stripSlices(v.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	vr, ok := w.pass.Info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	sig := w.enclosingSig()
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == vr {
			return true
		}
	}
	return false
}

// conversion flags the allocating type conversions: string <-> []byte /
// []rune in either direction.
func (w *ahWalker) conversion(v *ast.CallExpr, target types.Type) {
	if len(v.Args) != 1 {
		return
	}
	src := w.typeOf(v.Args[0])
	if src == nil || w.isConst(v.Args[0]) {
		return
	}
	switch {
	case isString(target) && isByteOrRuneSlice(src),
		isByteOrRuneSlice(target) && isString(src):
		w.alloc(v, "conversion between string and []byte/[]rune allocates")
	}
}

// callBoxing checks a call's arguments against its signature's parameter
// types for interface boxing, handling variadics.
func (w *ahWalker) callBoxing(v *ast.CallExpr) {
	tv, ok := w.pass.Info.Types[v.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range v.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if v.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		w.checkBox(pt, arg, "argument")
	}
}

// checkBox reports interface boxing: a concrete, non-pointer-shaped,
// non-constant value converted to an interface type allocates.
func (w *ahWalker) checkBox(dest types.Type, src ast.Expr, where string) {
	if dest == nil || !types.IsInterface(dest) {
		return
	}
	st := w.typeOf(src)
	if st == nil || types.IsInterface(st) || pointerShaped(st) || w.isConst(src) {
		return
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return // untyped nil
	}
	w.alloc(src, "interface boxing of "+st.String()+" at "+where)
}

// captures lists the outer variables a function literal closes over.
func (w *ahWalker) captures(lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		vr, ok := w.pass.Info.Uses[id].(*types.Var)
		if !ok || vr.IsField() || seen[vr.Name()] {
			return true
		}
		// A capture is a variable declared outside the literal but inside
		// some function (package-level variables are not captured).
		if vr.Pos() >= lit.Pos() && vr.Pos() < lit.End() {
			return true
		}
		if vr.Parent() == nil || vr.Parent() == w.pass.Pkg.Scope() || vr.Parent() == types.Universe {
			return true
		}
		seen[vr.Name()] = true
		names = append(names, vr.Name())
		return true
	})
	sort.Strings(names)
	return names
}

func (w *ahWalker) compositeLit(v *ast.CompositeLit) {
	t := w.typeOf(v)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		w.alloc(v, "slice literal allocates")
	case *types.Map:
		w.alloc(v, "map literal allocates")
	}
}

func (w *ahWalker) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.pass.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isConst reports whether an expression is a compile-time constant; the
// compiler materialises those without a runtime allocation (small-int
// interface boxing uses the static staticuint64s table, constant strings
// live in rodata).
func (w *ahWalker) isConst(e ast.Expr) bool {
	tv, ok := w.pass.Info.Types[e]
	return ok && tv.Value != nil
}

func (w *ahWalker) isBuiltin(call *ast.CallExpr, name string) bool {
	return builtinName(w.pass, call) == name
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(pass *TypedPass, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := pass.Info.Uses[id].(*types.Builtin); ok {
		return id.Name
	}
	return ""
}

// calleeFunc resolves a call's target to a named function, or nil for
// dynamic calls (func values, field calls).
func calleeFunc(pass *TypedPass, call *ast.CallExpr) *types.Func {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// stripSlices unwraps slice expressions: p.buf[:0] -> p.buf.
func stripSlices(e ast.Expr) ast.Expr {
	for {
		s, ok := e.(*ast.SliceExpr)
		if !ok {
			return e
		}
		e = s.X
	}
}

// allocFuncs are stdlib calls known to allocate on every invocation (any
// function in package fmt is treated the same, wholesale).
var allocFuncs = map[string]bool{
	"errors.New":          true,
	"time.After":          true,
	"time.Tick":           true,
	"time.NewTimer":       true,
	"time.NewTicker":      true,
	"sort.Slice":          true,
	"sort.SliceStable":    true,
	"strings.Join":        true,
	"strings.Repeat":      true,
	"strings.Split":       true,
	"strconv.Itoa":        true,
	"strconv.FormatInt":   true,
	"strconv.FormatFloat": true,
	"strconv.Quote":       true,
}

func allocatorCall(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		return true
	}
	return allocFuncs[fn.Origin().FullName()]
}

// isString reports a string-underlying type.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteOrRuneSlice reports []byte / []rune underlying types.
func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports types whose interface conversion stores the value
// directly in the data word — no allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// Resolve walks the call graph from every //r2c2:hotpath root and reports
// each reachable function's allocation sites once, naming the root that
// pulled an unannotated function onto the hot path.
func (a *allocHotpath) Resolve(facts []PackageFacts) []Diagnostic {
	funcs := map[string]*ahFunc{}
	for _, pf := range facts {
		for k, f := range pf.Facts.(*ahFacts).funcs {
			funcs[k] = f
		}
	}

	var roots []string
	for k, f := range funcs {
		if f.hot {
			roots = append(roots, k)
		}
	}
	sort.Strings(roots)

	// BFS from the sorted roots; the first root to reach a function is
	// the one named in its findings (deterministic by the sort).
	via := map[string]string{}
	order := []string{}
	for _, root := range roots {
		if _, ok := via[root]; ok {
			continue
		}
		queue := []string{root}
		via[root] = root
		order = append(order, root)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			callees := make([]string, 0, len(funcs[cur].callees))
			for c := range funcs[cur].callees {
				callees = append(callees, c)
			}
			sort.Strings(callees)
			for _, c := range callees {
				if _, ok := funcs[c]; !ok {
					continue // outside the module (or no body)
				}
				if _, ok := via[c]; ok {
					continue
				}
				via[c] = root
				order = append(order, c)
				queue = append(queue, c)
			}
		}
	}

	var diags []Diagnostic
	for _, name := range order {
		fn := funcs[name]
		for _, al := range fn.allocs {
			msg := al.what + " in hot-path function " + shortFuncName(name)
			if !fn.hot {
				msg += " (reached from " + HotpathDirective + " root " + shortFuncName(via[name]) + ")"
			}
			diags = append(diags, Diagnostic{Rule: a.Name(), Pos: al.pos, Message: msg})
		}
	}
	return diags
}

// shortFuncName trims a FullName's package path to its last element,
// preserving any "(*" / "(" receiver prefix:
// "(*r2c2/internal/sim.Engine).Run" -> "(*sim.Engine).Run".
func shortFuncName(full string) string {
	i := strings.LastIndex(full, "/")
	if i < 0 {
		return full
	}
	j := 0
	for j < len(full) && (full[j] == '(' || full[j] == '*') {
		j++
	}
	return full[:j] + full[i+1:]
}
