// Package topology models the direct-connect network fabrics used by
// rack-scale computers: k-ary n-cube tori, meshes, and (for comparison,
// §6 of the paper) a two-level folded-Clos switched topology.
//
// A Graph is a directed multigraph of unidirectional links between nodes.
// Every physical cable is represented as two directed links, one per
// direction, because rate allocation and queueing are per-direction
// concerns. All links in a rack have identical capacity, so the Graph does
// not store per-link capacity; simulators and allocators attach it.
//
// The package also precomputes the artefacts every other layer relies on:
// all-pairs BFS distances, minimal-route DAG successor sets, and per-source
// broadcast trees with the forwarding information base (FIB) described in
// §3.2 of the paper.
package topology

import (
	"fmt"
)

// NodeID identifies a node (micro-server) in the rack, in [0, N).
type NodeID int32

// LinkID identifies a directed link, in [0, L).
type LinkID int32

// Link is a unidirectional link from one node to a neighbouring node.
type Link struct {
	From NodeID
	To   NodeID
}

// Kind enumerates the supported fabric families.
type Kind int

// Supported fabric families.
const (
	KindTorus     Kind = iota // k-ary n-cube with wraparound
	KindMesh                  // k-ary n-cube without wraparound
	KindClos                  // two-level folded Clos (switched, single path)
	KindMultiRack             // racks joined by direct inter-rack cables (§6)
)

// String returns the family name.
func (k Kind) String() string {
	switch k {
	case KindTorus:
		return "torus"
	case KindMesh:
		return "mesh"
	case KindClos:
		return "clos"
	case KindMultiRack:
		return "multirack"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Graph is an immutable directed graph over rack nodes. Construct with
// NewTorus, NewMesh, NewFoldedClos, or NewGraph; all precomputation happens
// at construction.
type Graph struct {
	kind  Kind
	k     int // radix per dimension (torus/mesh), 0 otherwise
	dims  int // number of dimensions (torus/mesh), 0 otherwise
	n     int // number of endpoint nodes
	total int // total vertices including any internal switches (Clos)

	links     []Link
	out       [][]LinkID // outgoing links per node, stable port order
	in        [][]LinkID
	linkIndex map[Link]LinkID
	degraded  bool // built by WithoutLinks: coordinate routing is unsafe

	dist [][]int32 // all-pairs hop distance over all vertices

	// Rack metadata, set by the constructors that know it (ConnectRacks,
	// NewFoldedClos): rackOf[v] is the rack (or Clos leaf group) a vertex
	// belongs to, -1 for vertices outside any rack (spine switches). nil
	// when the fabric is a single rack. racks is the number of groups.
	// Shard partitioning (partition.go) and inter-rack link timing
	// (sim.NetConfig.InterRackPropDelay) both key off this.
	rackOf []int32
	racks  int
}

// NewGraph builds a graph from an explicit directed edge list over
// `endpoints` endpoint nodes plus optional internal vertices. Vertices are
// 0..total-1; the first `endpoints` of them are rack nodes that source and
// sink traffic. It returns an error on out-of-range or duplicate edges.
func NewGraph(kind Kind, endpoints, total int, edges []Link) (*Graph, error) {
	if endpoints <= 0 || total < endpoints {
		return nil, fmt.Errorf("topology: invalid sizes endpoints=%d total=%d", endpoints, total)
	}
	g := &Graph{
		kind:      kind,
		n:         endpoints,
		total:     total,
		out:       make([][]LinkID, total),
		in:        make([][]LinkID, total),
		linkIndex: make(map[Link]LinkID, len(edges)),
	}
	for _, e := range edges {
		if e.From < 0 || int(e.From) >= total || e.To < 0 || int(e.To) >= total {
			return nil, fmt.Errorf("topology: edge %v out of range [0,%d)", e, total)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("topology: self-loop at node %d", e.From)
		}
		if _, dup := g.linkIndex[e]; dup {
			return nil, fmt.Errorf("topology: duplicate edge %v", e)
		}
		id := LinkID(len(g.links))
		g.links = append(g.links, e)
		g.linkIndex[e] = id
		g.out[e.From] = append(g.out[e.From], id)
		g.in[e.To] = append(g.in[e.To], id)
	}
	g.computeDistances()
	return g, nil
}

// Kind reports the fabric family.
func (g *Graph) Kind() Kind { return g.kind }

// Nodes returns the number of endpoint nodes (micro-servers).
func (g *Graph) Nodes() int { return g.n }

// Vertices returns the total vertex count including internal switches.
func (g *Graph) Vertices() int { return g.total }

// NumLinks returns the number of directed links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Radix returns the per-dimension radix k for torus/mesh graphs, 0 otherwise.
func (g *Graph) Radix() int { return g.k }

// Degraded reports whether this graph was built by removing links from a
// regular fabric: coordinate-based routing (dimension order, WLB quadrant
// walks) must not assume every torus link exists on a degraded graph.
func (g *Graph) Degraded() bool { return g.degraded }

// Dims returns the dimension count for torus/mesh graphs, 0 otherwise.
func (g *Graph) Dims() int { return g.dims }

// Racks returns the number of rack groups the fabric was assembled from
// (ConnectRacks racks, folded-Clos leaf groups), or 0 for a single-rack
// fabric with no group structure.
func (g *Graph) Racks() int { return g.racks }

// RackOf returns the rack group of a vertex, or -1 when the vertex belongs
// to no rack (a Clos spine switch) or the fabric has no rack structure.
func (g *Graph) RackOf(v NodeID) int {
	if g.rackOf == nil {
		return -1
	}
	return int(g.rackOf[v])
}

// IsInterRack reports whether a directed link leaves its endpoint's rack
// group: an inter-rack bridge cable or a Clos leaf-spine hop. Always false
// on fabrics without rack structure.
func (g *Graph) IsInterRack(lid LinkID) bool {
	if g.rackOf == nil {
		return false
	}
	l := g.links[lid]
	return g.rackOf[l.From] != g.rackOf[l.To]
}

// Link returns the endpoints of a directed link.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// LinkBetween returns the directed link from a to b, if one exists.
func (g *Graph) LinkBetween(a, b NodeID) (LinkID, bool) {
	id, ok := g.linkIndex[Link{From: a, To: b}]
	return id, ok
}

// Out returns the outgoing link IDs of v in stable port order. The returned
// slice is owned by the Graph and must not be modified.
func (g *Graph) Out(v NodeID) []LinkID { return g.out[v] }

// In returns the incoming link IDs of v. The slice is owned by the Graph.
func (g *Graph) In(v NodeID) []LinkID { return g.in[v] }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v NodeID) int { return len(g.out[v]) }

// Dist returns the hop distance from a to b (precomputed BFS). It returns a
// negative value if b is unreachable from a.
func (g *Graph) Dist(a, b NodeID) int { return int(g.dist[a][b]) }

// Diameter returns the maximum finite distance between endpoint nodes.
func (g *Graph) Diameter() int {
	d := 0
	for a := 0; a < g.n; a++ {
		for b := 0; b < g.n; b++ {
			if int(g.dist[a][b]) > d {
				d = int(g.dist[a][b])
			}
		}
	}
	return d
}

// MeanNodeDistance returns the average hop distance between distinct
// endpoint pairs — the "average path length" figure used for broadcast
// overhead accounting in §3.2.
func (g *Graph) MeanNodeDistance() float64 {
	sum, cnt := 0.0, 0
	for a := 0; a < g.n; a++ {
		for b := 0; b < g.n; b++ {
			if a == b {
				continue
			}
			sum += float64(g.dist[a][b])
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

func (g *Graph) computeDistances() {
	g.dist = make([][]int32, g.total)
	queue := make([]NodeID, 0, g.total)
	for s := 0; s < g.total; s++ {
		d := make([]int32, g.total)
		for i := range d {
			d[i] = -1
		}
		d[s] = 0
		queue = queue[:0]
		queue = append(queue, NodeID(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, lid := range g.out[v] {
				u := g.links[lid].To
				if d[u] < 0 {
					d[u] = d[v] + 1
					queue = append(queue, u)
				}
			}
		}
		g.dist[s] = d
	}
}

// MinimalSuccessors returns, for destination dst, the successor link sets of
// the minimal-route DAG: succ[v] lists the outgoing links of v that lie on
// some shortest path from v to dst. succ[dst] is empty. Random packet
// spraying picks uniformly among these at every hop (§2.2.1).
func (g *Graph) MinimalSuccessors(dst NodeID) [][]LinkID {
	// The per-vertex lists are carved out of one backing array: a directed
	// link qualifies for at most one (v, dst) list, so len(g.links) bounds
	// the total and append below never reallocates (the full-capacity slice
	// expressions keep the windows disjoint).
	//lint:ignore alloc-hotpath computed once per destination and cached by routing.Table.successors
	succ := make([][]LinkID, g.total)
	//lint:ignore alloc-hotpath single backing array per destination, cached as above
	flat := make([]LinkID, 0, len(g.links))
	for v := 0; v < g.total; v++ {
		dv := g.dist[v][dst]
		if dv <= 0 {
			continue
		}
		start := len(flat)
		for _, lid := range g.out[v] {
			u := g.links[lid].To
			if g.dist[u][dst] == dv-1 {
				flat = append(flat, lid)
			}
		}
		succ[v] = flat[start:len(flat):len(flat)]
	}
	return succ
}

// WithoutLinks returns the graph with the given directed links removed —
// the degraded fabric after link or node failures (§3.2, "Failures") — and
// a mapping from each new link ID to the corresponding link ID in the
// original graph. Vertex IDs are preserved. It returns an error if any
// endpoint node would become unreachable from another: R2C2 assumes the
// rack stays connected (a torus survives many link failures).
func (g *Graph) WithoutLinks(failed map[LinkID]bool) (*Graph, []LinkID, error) {
	return g.WithoutLinksAndNodes(failed, nil)
}

// WithoutNode returns the graph with every link of `dead` removed — the
// degraded fabric after a node failure — plus the link-ID mapping of
// WithoutLinks. The dead node itself is allowed to be unreachable; every
// pair of surviving endpoints must remain mutually connected.
func (g *Graph) WithoutNode(dead NodeID) (*Graph, []LinkID, error) {
	return g.WithoutLinksAndNodes(nil, map[NodeID]bool{dead: true})
}

// WithoutLinksAndNodes returns the degraded fabric after an arbitrary mix
// of link and node failures: every link in `failed` plus every link of
// every node in `dead` is removed. This is the fire-time recompute used by
// the failure path — overlapping failures accumulate in the two sets and
// the fabric is always rebuilt from their union, never from a stale
// snapshot. Dead nodes are allowed to be unreachable; every pair of
// surviving endpoints must remain mutually connected.
func (g *Graph) WithoutLinksAndNodes(failed map[LinkID]bool, dead map[NodeID]bool) (*Graph, []LinkID, error) {
	gone := make(map[LinkID]bool, len(failed)+4*len(dead))
	for lid := range failed {
		gone[lid] = true
	}
	for d := range dead {
		for _, lid := range g.out[d] {
			gone[lid] = true
		}
		for _, lid := range g.in[d] {
			gone[lid] = true
		}
	}
	edges := make([]Link, 0, len(g.links)-len(gone))
	mapping := make([]LinkID, 0, len(g.links)-len(gone))
	for id, l := range g.links {
		if gone[LinkID(id)] {
			continue
		}
		edges = append(edges, l)
		mapping = append(mapping, LinkID(id))
	}
	sub, err := NewGraph(g.kind, g.n, g.total, edges)
	if err != nil {
		return nil, nil, err
	}
	sub.k, sub.dims = g.k, g.dims
	// Vertex IDs are preserved, so the rack metadata carries over verbatim
	// (the slice is immutable after construction and safe to share).
	sub.rackOf, sub.racks = g.rackOf, g.racks
	sub.degraded = g.degraded || len(gone) > 0
	for a := 0; a < sub.n; a++ {
		if dead[NodeID(a)] {
			continue
		}
		for b := 0; b < sub.n; b++ {
			if dead[NodeID(b)] {
				continue
			}
			if sub.Dist(NodeID(a), NodeID(b)) < 0 {
				return nil, nil, fmt.Errorf("topology: failures partition the rack (%d unreachable from %d)", b, a)
			}
		}
	}
	return sub, mapping, nil
}

// NodesAtDistance returns the endpoint nodes grouped by distance from src:
// result[d] lists nodes at exactly d hops. Used by broadcast-tree
// construction and by overhead analytics.
func (g *Graph) NodesAtDistance(src NodeID) [][]NodeID {
	byDist := make([][]NodeID, 0, 8)
	for v := 0; v < g.total; v++ {
		d := int(g.dist[src][v])
		if d < 0 {
			continue
		}
		for len(byDist) <= d {
			byDist = append(byDist, nil)
		}
		byDist[d] = append(byDist[d], NodeID(v))
	}
	return byDist
}
