// Quickstart: build a rack fabric, start flows under the R2C2 stack in the
// packet-level simulator, and watch global visibility turn into rates.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"r2c2/internal/routing"
	"r2c2/internal/sim"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

func main() {
	// A 4x4x4 torus: 64 micro-servers, 6 links each, 10 Gbps per link —
	// a quarter-scale SeaMicro-style fabric.
	g, err := topology.NewTorus(4, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rack: %d nodes, %d directed links, diameter %d, mean distance %.2f hops\n",
		g.Nodes(), g.NumLinks(), g.Diameter(), g.MeanNodeDistance())

	eng := &sim.Engine{}
	net := sim.NewNetwork(g, eng, sim.NetConfig{
		LinkGbps:  10,
		PropDelay: 100 * simtime.Nanosecond,
	})
	stack := sim.NewR2C2(net, routing.NewTable(g), sim.R2C2Config{
		Headroom:  0.05,                      // §3.3.2: absorb not-yet-broadcast flows
		Recompute: 500 * simtime.Microsecond, // §5: the recomputation sweet spot
		Protocol:  routing.RPS,               // new flows start minimal (§3.4)
	})

	// Three flows: two sharing a bottleneck, one elsewhere.
	flows := map[string]wire.FlowID{
		"a (0->42)": stack.StartFlow(0, 42, 8<<20, 1, 0),
		"b (0->42)": stack.StartFlow(0, 42, 8<<20, 1, 0),
		"c (7->56)": stack.StartFlow(7, 56, 8<<20, 1, 0),
	}

	eng.Run(simtime.Second)

	for _, name := range []string{"a (0->42)", "b (0->42)", "c (7->56)"} {
		rec := stack.Ledger()[flows[name]]
		fmt.Printf("flow %s, %d MB: FCT %v, avg throughput %.2f Gbps\n",
			name, rec.SizeBytes>>20, rec.FCT(), rec.Throughput()/1e9)
	}

	maxQueue := 0.0
	for _, v := range net.MaxQueueSample() {
		if v > maxQueue {
			maxQueue = v
		}
	}
	fmt.Printf("broadcast control traffic: %d bytes on the wire\n", net.BcastBytesOnWire)
	fmt.Printf("packets dropped: %d (rate-based control keeps queues short)\n", net.TotalDrops())
	fmt.Printf("worst queue occupancy anywhere: %.0f bytes\n", maxQueue)
}
