// Package fluid is a flow-level (fluid) simulator of R2C2's rate
// allocation: flows arrive, receive water-filled rates, drain their bytes
// at those rates and depart. No packets or queues are modelled, which
// makes 512-node experiments with tens of thousands of flows cheap.
//
// It exists for the rate-accuracy experiments of §5.2 (Figures 15 and 16):
// comparing the rates flows receive under periodic batch recomputation
// (interval ρ) against the ideal of recomputing at every flow event
// (ρ = 0), and for replaying flow traces through the allocator to measure
// recomputation cost (Figure 8).
package fluid

import (
	"fmt"
	"math"
	"sort"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/trafficgen"
	"r2c2/internal/waterfill"
)

// Config parameterises a fluid run.
type Config struct {
	Tab          *routing.Table
	Protocol     routing.Protocol
	CapacityBits float64      // link capacity in bits/s
	Headroom     float64      // §3.3.2 headroom fraction
	Recompute    simtime.Time // ρ; 0 = ideal, recompute at every event
	// InitialRateBps is what a flow sends at between its arrival and the next
	// recomputation, mirroring the packet simulator where new flows start
	// at line rate into the headroom (§3.3.2). Defaults to CapacityBits.
	InitialRateBps float64
}

// FlowResult reports one flow's life under the fluid model.
type FlowResult struct {
	Index     int // position in the arrival list
	SizeBytes int64
	Started   simtime.Time
	Ended     simtime.Time
	// AvgRateBps is size/(completion time): the per-flow quantity Figures 15
	// and 16 compare across recomputation intervals.
	AvgRateBps float64
}

// TickStat records the active flow population at one recomputation, used by
// the Figure 8 CPU-overhead measurement.
type TickStat struct {
	At    simtime.Time
	Flows int
}

// Result bundles a fluid run's outputs.
type Result struct {
	Flows []FlowResult
	Ticks []TickStat
	// Recomputations counts allocator invocations.
	Recomputations int
}

type activeFlow struct {
	idx       int
	spec      waterfill.Flow
	remaining float64 // bits
	rate      float64
	started   simtime.Time

	// Assigned-rate accounting: Figures 15/16 compare the rates the
	// allocator assigns, so the pre-first-assignment line-rate transient
	// (§3.3.2's headroom burst) is tracked separately.
	assigned     bool
	assignedBits float64
	assignedSecs float64
}

// Run replays the arrival list through the fluid model.
func Run(cfg Config, arrivals []trafficgen.Arrival) *Result {
	if cfg.Tab == nil || len(arrivals) == 0 {
		panic("fluid: missing table or arrivals")
	}
	if cfg.CapacityBits <= 0 {
		panic("fluid: non-positive capacity")
	}
	if cfg.InitialRateBps == 0 {
		cfg.InitialRateBps = cfg.CapacityBits
	}
	alloc := waterfill.NewAllocator(waterfill.Config{
		NumLinks: cfg.Tab.Graph().NumLinks(),
		Capacity: cfg.CapacityBits,
		Headroom: cfg.Headroom,
	})

	res := &Result{Flows: make([]FlowResult, len(arrivals))}
	var active []*activeFlow
	now := simtime.Time(0)
	nextArrival := 0
	nextTick := cfg.Recompute

	recompute := func() {
		if len(active) == 0 {
			return
		}
		// Deterministic order: by arrival index (flow ID order).
		sort.Slice(active, func(i, j int) bool { return active[i].idx < active[j].idx })
		specs := make([]waterfill.Flow, len(active))
		for i, f := range active {
			specs[i] = f.spec
		}
		rates := alloc.Allocate(specs)
		for i, f := range active {
			f.rate = rates[i]
			f.assigned = true
		}
		res.Recomputations++
	}

	advance := func(to simtime.Time) {
		dt := (to - now).Seconds()
		if dt > 0 {
			for _, f := range active {
				f.remaining -= f.rate * dt
				if f.assigned {
					f.assignedBits += f.rate * dt
					f.assignedSecs += dt
				}
			}
		}
		now = to
	}

	removeDone := func() bool {
		changed := false
		out := active[:0]
		for _, f := range active {
			if f.remaining <= 1e-6 {
				// AvgRateBps is the time-weighted average ASSIGNED rate; flows
				// that finished before their first assignment (shorter than
				// one interval — never rate-limited, §3.3.2) fall back to
				// the lifetime average.
				avg := float64(arrivals[f.idx].SizeBytes*8) / math.Max((now-f.started).Seconds(), 1e-12)
				if f.assignedSecs > 0 {
					avg = f.assignedBits / f.assignedSecs
				}
				res.Flows[f.idx] = FlowResult{
					Index:      f.idx,
					SizeBytes:  arrivals[f.idx].SizeBytes,
					Started:    f.started,
					Ended:      now,
					AvgRateBps: avg,
				}
				changed = true
				continue
			}
			out = append(out, f)
		}
		active = out
		return changed
	}

	for nextArrival < len(arrivals) || len(active) > 0 {
		// Next event: arrival, earliest departure, or recompute tick.
		next := simtime.Time(math.MaxInt64)
		if nextArrival < len(arrivals) {
			next = arrivals[nextArrival].At
		}
		for _, f := range active {
			if f.rate > 0 {
				dep := now + simtime.FromSeconds(f.remaining/f.rate) + 1
				if dep < next {
					next = dep
				}
			}
		}
		isTick := false
		if cfg.Recompute > 0 && len(active) > 0 && nextTick < next {
			next = nextTick
			isTick = true
		}
		if next == simtime.Time(math.MaxInt64) {
			// Active flows all have zero rate and no more arrivals: the
			// allocator starved them, which cannot happen with positive
			// capacity — fail loudly rather than spin.
			panic(fmt.Sprintf("fluid: %d flows stuck with zero rate", len(active)))
		}

		advance(next)

		departed := removeDone()
		arrived := false
		for nextArrival < len(arrivals) && arrivals[nextArrival].At <= now {
			a := arrivals[nextArrival]
			f := &activeFlow{
				idx: nextArrival,
				spec: waterfill.Flow{
					Phi:      cfg.Tab.Phi(cfg.Protocol, a.Src, a.Dst),
					Weight:   math.Max(float64(a.Weight), 1),
					Priority: a.Priority,
					Demand:   waterfill.Unlimited,
				},
				remaining: float64(a.SizeBytes * 8),
				rate:      cfg.InitialRateBps,
				started:   now,
			}
			active = append(active, f)
			nextArrival++
			arrived = true
		}

		if cfg.Recompute == 0 {
			if departed || arrived {
				recompute()
			}
		} else if isTick || now >= nextTick {
			recompute()
			res.Ticks = append(res.Ticks, TickStat{At: now, Flows: len(active)})
			for nextTick <= now {
				nextTick += cfg.Recompute
			}
		}
	}
	return res
}

// RateError compares a periodic run against the ideal run over the same
// arrivals and returns the per-flow normalised absolute rate differences
// |r_ρ - r_0| / r_0 — the Figure 15/16 metric.
func RateError(ideal, periodic *Result) []float64 {
	return RateErrorFiltered(ideal, periodic, 0)
}

// RateErrorFiltered is RateError restricted to flows whose ideal lifetime
// is at least minLife. The batch recomputation design deliberately never
// rate-limits flows shorter than one interval (§3.3.2: it "naturally
// filters out very short-lived flows, which would be pointless to
// rate-limit"), so the Figure 15/16 accuracy metric is evaluated over the
// flows the mechanism actually manages.
func RateErrorFiltered(ideal, periodic *Result, minLife simtime.Time) []float64 {
	if len(ideal.Flows) != len(periodic.Flows) {
		panic("fluid: mismatched runs")
	}
	out := make([]float64, 0, len(ideal.Flows))
	for i := range ideal.Flows {
		r0 := ideal.Flows[i].AvgRateBps
		if r0 <= 0 {
			continue
		}
		if ideal.Flows[i].Ended-ideal.Flows[i].Started < minLife {
			continue
		}
		out = append(out, math.Abs(periodic.Flows[i].AvgRateBps-r0)/r0)
	}
	return out
}
