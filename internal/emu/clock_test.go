package emu

import (
	"testing"
	"time"

	"r2c2/internal/routing"
)

// TestFlowTimestampsAreRackRelative pins the FCT wall-clock fix:
// Flow.started and Flow.finished are nanoseconds since the rack epoch,
// not absolute host time, so a wall-clock step (NTP slew) can never
// produce a negative FCT, and Throughput is exactly size/FCT.
func TestFlowTimestampsAreRackRelative(t *testing.T) {
	r := newRack(t, Config{LinkMbps: 200, Recompute: time.Millisecond, Protocol: routing.RPS})
	f, err := r.StartFlow(0, 5, 64<<10, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// An absolute unix timestamp would be ~1.7e18 ns; a rack-relative one
	// is bounded by how long this test has been running.
	if f.started < 0 || f.started > int64(time.Hour) {
		t.Fatalf("Flow.started = %d ns; want a rack-relative offset, not absolute host time", f.started)
	}
	fin := f.finished.Load()
	if fin <= f.started {
		t.Fatalf("finished %d <= started %d; FCT would be non-positive", fin, f.started)
	}
	if got, want := f.Throughput(), float64(f.SizeBytes*8)/f.FCT().Seconds(); got != want {
		t.Fatalf("Throughput() = %v, want size/FCT = %v", got, want)
	}
}

func TestRackClockMonotonic(t *testing.T) {
	c := newRackClock()
	prev := c.nowNs()
	if prev < 0 {
		t.Fatalf("nowNs = %d at epoch, want >= 0", prev)
	}
	for i := 0; i < 1000; i++ {
		n := c.nowNs()
		if n < prev {
			t.Fatalf("nowNs went backwards: %d after %d", n, prev)
		}
		prev = n
	}
}
