package experiments

import (
	"r2c2/internal/routing"
	"r2c2/internal/sim"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/trafficgen"
)

// TransportRun holds one simulated run's results under one transport.
type TransportRun struct {
	Transport sim.Transport
	Results   *sim.Results
}

// transportOrder is the fixed transport sequence of the §5.2 comparison.
var transportOrder = []sim.Transport{sim.TransportR2C2, sim.TransportTCP, sim.TransportPFQ}

// transportConfigs builds one RunConfig per transport for the heavy-tailed
// workload at inter-arrival time tau. The graph is shared: it is immutable
// once built, so configurations can run concurrently.
func transportConfigs(g *topology.Graph, s Scale, tau simtime.Time, headroom float64, rho simtime.Time) []sim.RunConfig {
	arrivals := trafficgen.Poisson(trafficgen.PoissonConfig{
		Nodes:        g.Nodes(),
		MeanInterval: tau,
		Count:        s.Flows,
		Seed:         s.Seed,
	})
	cfgs := make([]sim.RunConfig, 0, len(transportOrder))
	for _, tr := range transportOrder {
		cfgs = append(cfgs, sim.RunConfig{
			Graph:     g,
			Net:       sim.NetConfig{LinkGbps: s.LinkGbps, PropDelay: s.PropLat},
			Transport: tr,
			R2C2: sim.R2C2Config{
				Headroom:  headroom,
				Recompute: rho,
				Protocol:  routing.RPS,
				Seed:      s.Seed,
				Reliable:  s.Reliable,
			},
			PFQSeed:  s.Seed,
			Arrivals: arrivals,
			MaxTime:  arrivals[len(arrivals)-1].At + simtime.Second,
		})
	}
	return cfgs
}

// RunTransports executes the same heavy-tailed workload (§5.2) under R2C2,
// TCP and PFQ — the common machinery behind Figures 10–14. The three runs
// are independent and execute on s.Parallel workers.
func RunTransports(s Scale, tau simtime.Time, headroom float64, rho simtime.Time) []TransportRun {
	results := RunParallel(s.Parallel, transportConfigs(s.Torus(), s, tau, headroom, rho))
	out := make([]TransportRun, len(results))
	for i, res := range results {
		out[i] = TransportRun{Transport: transportOrder[i], Results: res}
	}
	return out
}

// Fig10Result holds the short-flow FCT CDFs (Figure 10) and long-flow
// throughput CDFs (Figure 11).
type Fig10Result struct {
	Runs []TransportRun
}

// Fig10and11 runs the τ=1 µs (scaled) comparison of Figures 10 and 11.
func Fig10and11(s Scale, tau simtime.Time) *Fig10Result {
	return &Fig10Result{Runs: RunTransports(s, tau, 0.05, 500*simtime.Microsecond)}
}

// ShortFCTTable renders Figure 10 as CDF percentile rows.
func (r *Fig10Result) ShortFCTTable() *Table {
	t := &Table{Title: "Figure 10: FCT, short flows (<100KB), seconds",
		Header: []string{"percentile"}}
	for _, run := range r.Runs {
		t.Header = append(t.Header, run.Transport.String())
	}
	for _, p := range []float64{10, 25, 50, 75, 90, 95, 99} {
		row := []string{f2(p)}
		for _, run := range r.Runs {
			row = append(row, g3(run.Results.ShortFCT.Percentile(p)))
		}
		t.AddRow(row...)
	}
	return t
}

// LongThroughputTable renders Figure 11 as CDF percentile rows.
func (r *Fig10Result) LongThroughputTable() *Table {
	t := &Table{Title: "Figure 11: average throughput, long flows (>1MB), bits/s",
		Header: []string{"percentile"}}
	for _, run := range r.Runs {
		t.Header = append(t.Header, run.Transport.String())
	}
	for _, p := range []float64{10, 25, 50, 75, 90, 95, 99} {
		row := []string{f2(p)}
		for _, run := range r.Runs {
			row = append(row, g3(run.Results.LongThroughput.Percentile(p)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig12to14Result is one row per inter-arrival time τ: 99th-percentile
// short-flow FCT and mean long-flow throughput for each transport
// (normalised against TCP in the rendering, as Figures 12/13 do), plus the
// R2C2 queue-occupancy percentiles of Figure 14.
type Fig12to14Result struct {
	Taus []simtime.Time
	// Indexed [tau][transport] in RunTransports order.
	FCT99   [][]float64
	LongAvg [][]float64
	// R2C2 max-queue stats per tau (bytes).
	QueueP50, QueueP99 []float64
}

// Fig12to14 sweeps τ and collects everything Figures 12, 13 and 14 plot.
// The full sweep — every (τ, transport) point — is flattened into one batch
// of independent runs executing on s.Parallel workers.
func Fig12to14(s Scale, taus []simtime.Time) *Fig12to14Result {
	g := s.Torus()
	var cfgs []sim.RunConfig
	for _, tau := range taus {
		cfgs = append(cfgs, transportConfigs(g, s, tau, 0.05, 500*simtime.Microsecond)...)
	}
	results := RunParallel(s.Parallel, cfgs)

	res := &Fig12to14Result{Taus: taus}
	for ti := range taus {
		var fcts, longs []float64
		for tri, tr := range transportOrder {
			out := results[ti*len(transportOrder)+tri]
			fcts = append(fcts, out.ShortFCT.Percentile(99))
			longs = append(longs, out.LongThroughput.Mean())
			if tr == sim.TransportR2C2 {
				res.QueueP50 = append(res.QueueP50, out.MaxQueue.Percentile(50))
				res.QueueP99 = append(res.QueueP99, out.MaxQueue.Percentile(99))
			}
		}
		res.FCT99 = append(res.FCT99, fcts)
		res.LongAvg = append(res.LongAvg, longs)
	}
	return res
}

// Fig12Table renders 99th-pct short-flow FCT normalised against TCP.
func (r *Fig12to14Result) Fig12Table() *Table {
	t := &Table{Title: "Figure 12: 99th-pct short-flow FCT normalised to TCP",
		Header: []string{"tau", "R2C2", "TCP", "PFQ"}}
	for i, tau := range r.Taus {
		tcp := r.FCT99[i][1]
		t.AddRow(tau.String(), f3(safeDiv(r.FCT99[i][0], tcp)), "1.000", f3(safeDiv(r.FCT99[i][2], tcp)))
	}
	return t
}

// Fig13Table renders mean long-flow throughput normalised against TCP.
func (r *Fig12to14Result) Fig13Table() *Table {
	t := &Table{Title: "Figure 13: long-flow throughput normalised to TCP",
		Header: []string{"tau", "R2C2", "TCP", "PFQ"}}
	for i, tau := range r.Taus {
		tcp := r.LongAvg[i][1]
		t.AddRow(tau.String(), f3(safeDiv(r.LongAvg[i][0], tcp)), "1.000", f3(safeDiv(r.LongAvg[i][2], tcp)))
	}
	return t
}

// Fig14Table renders the R2C2 max-queue-occupancy percentiles.
func (r *Fig12to14Result) Fig14Table() *Table {
	t := &Table{Title: "Figure 14: R2C2 max queue occupancy (bytes)",
		Header: []string{"tau", "median", "p99"}}
	for i, tau := range r.Taus {
		t.AddRow(tau.String(), f2(r.QueueP50[i]), f2(r.QueueP99[i]))
	}
	return t
}

// Fig17Result is the headroom sensitivity study of Figure 17.
type Fig17Result struct {
	Headrooms []float64
	FCT99     []float64 // 99th-pct short-flow FCT (Figure 17a)
	LongAvg   []float64 // mean long-flow throughput (Figure 17b)
}

// Fig17 sweeps the headroom parameter for R2C2 at fixed τ; the sweep
// points run concurrently on s.Parallel workers.
func Fig17(s Scale, tau simtime.Time, headrooms []float64) *Fig17Result {
	g := s.Torus()
	arrivals := trafficgen.Poisson(trafficgen.PoissonConfig{
		Nodes: g.Nodes(), MeanInterval: tau, Count: s.Flows, Seed: s.Seed,
	})
	cfgs := make([]sim.RunConfig, len(headrooms))
	for i, h := range headrooms {
		cfgs[i] = sim.RunConfig{
			Graph:     g,
			Net:       sim.NetConfig{LinkGbps: s.LinkGbps, PropDelay: s.PropLat},
			Transport: sim.TransportR2C2,
			R2C2: sim.R2C2Config{Headroom: h, Recompute: 500 * simtime.Microsecond,
				Protocol: routing.RPS, Seed: s.Seed},
			MaxTime:  arrivals[len(arrivals)-1].At + simtime.Second,
			Arrivals: arrivals,
		}
	}
	res := &Fig17Result{Headrooms: headrooms}
	for _, out := range RunParallel(s.Parallel, cfgs) {
		res.FCT99 = append(res.FCT99, out.ShortFCT.Percentile(99))
		res.LongAvg = append(res.LongAvg, out.LongThroughput.Mean())
	}
	return res
}

// Table renders Figure 17.
func (r *Fig17Result) Table() *Table {
	t := &Table{Title: "Figure 17: headroom sensitivity (R2C2)",
		Header: []string{"headroom", "fct99-short (s)", "mean-long (bit/s)"}}
	for i, h := range r.Headrooms {
		t.AddRow(f2(h), g3(r.FCT99[i]), g3(r.LongAvg[i]))
	}
	return t
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
