GO ?= go
FUZZTIME ?= 30s
LINT_REPORT ?= r2c2-lint.json
OWNERSHIP_REPORT ?= shard_ownership.json
BENCH_REPORT ?= BENCH_sim.json
# The hot-path micro-benchmark suite recorded in $(BENCH_REPORT); the
# figure-harness benchmarks are excluded because they measure whole
# experiments, not code paths.
MICROBENCH = ^(BenchmarkSimulatorEventThroughput|BenchmarkShardedEventThroughput|BenchmarkControlPlaneTick|BenchmarkTimerWheel|BenchmarkWaterfillAllocate|BenchmarkIncrementalChurn|BenchmarkEmuDataPath|BenchmarkEmuMbufPool|BenchmarkPhiRPS512|BenchmarkBroadcastEncodeDecode)$$

FAULTS_REPORT ?= faultsweep.csv
EMU_BENCH_REPORT ?= BENCH_emu.json
ALLOC_BUDGET ?= alloc_budget.json
ALLOC_DRIFT ?= alloc_drift.json

.PHONY: build test race race-short debug lint fuzz fuzz-directives vet bench-smoke bench-json faults-smoke alloccheck alloccheck-update verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The CI race job: the full suite under the race detector with the
# packet-level sweeps and GA searches at reduced scale.
race-short:
	$(GO) test -race -short ./...

# Runtime invariant assertions in internal/sim (clock monotonicity, no
# stale event pops, pacing within injection bandwidth) compile in only
# under the debug tag.
debug:
	$(GO) test -tags debug ./internal/sim/

vet:
	$(GO) vet ./...

# The repo's own static-analysis rules; see DESIGN.md "Determinism &
# concurrency invariants" (§13 for the ownership model) and
# `go run ./cmd/r2c2-lint -list`. Two reports are always written and CI
# uploads both: $(LINT_REPORT) is {analyzer_version, rules, findings};
# $(OWNERSHIP_REPORT) records the declared //r2c2:shardowned types and
# //r2c2:boundary functions. Any surviving finding fails the build.
lint:
	@$(GO) run ./cmd/r2c2-lint -json -ownership $(OWNERSHIP_REPORT) ./... > $(LINT_REPORT) \
		|| { cat $(LINT_REPORT); echo "lint: findings (report: $(LINT_REPORT))"; exit 1; }
	@echo "lint: clean (reports: $(LINT_REPORT), $(OWNERSHIP_REPORT))"

fuzz:
	$(GO) test -run=^$$ -fuzz FuzzWireRoundTrip -fuzztime $(FUZZTIME) ./internal/wire/

# Lint directive parser robustness: malformed //lint: / //r2c2: comments
# must produce a deterministic error, never a silently skipped rule.
fuzz-directives:
	$(GO) test -run=^$$ -fuzz FuzzParseDirective -fuzztime $(FUZZTIME) ./internal/analysis/

# One iteration of every benchmark: catches bitrot in the benchmark
# harnesses (they cover each figure of the paper) without paying for a
# real measurement run.
bench-smoke:
	$(GO) test -run=^$$ -bench . -benchtime=1x ./...

# Real measurement of the micro-benchmark suite, recorded as JSON
# (benchmark name -> ns/op, allocs/op, events/run, ...) so the perf
# trajectory is tracked per commit; CI uploads $(BENCH_REPORT) and
# $(EMU_BENCH_REPORT) as artifacts. The emulator benchmarks are split into
# their own report because they measure wall-clock goroutine scheduling and
# move with machine load, while the simulator numbers are deterministic.
bench-json:
	@$(GO) test -run='^$$' -bench '$(MICROBENCH)' -benchmem . > $(BENCH_REPORT).txt \
		|| { cat $(BENCH_REPORT).txt; rm -f $(BENCH_REPORT).txt; exit 1; }
	@$(GO) run ./cmd/r2c2-benchjson -emu $(EMU_BENCH_REPORT) < $(BENCH_REPORT).txt > $(BENCH_REPORT)
	@rm -f $(BENCH_REPORT).txt
	@echo "bench-json: wrote $(BENCH_REPORT) and $(EMU_BENCH_REPORT)"

# Compiler escape-analysis gate for the zero-alloc roadmap (DESIGN.md §11):
# rebuilds the hot packages with -gcflags=-m and fails on any per-function
# escape count above the checked-in $(ALLOC_BUDGET). The drift report is
# always written; CI uploads it as an artifact. Regenerate the baseline
# with `make alloccheck-update` after deliberate changes.
alloccheck:
	$(GO) run ./cmd/r2c2-allocheck -baseline $(ALLOC_BUDGET) -drift $(ALLOC_DRIFT)

alloccheck-update:
	$(GO) run ./cmd/r2c2-allocheck -baseline $(ALLOC_BUDGET) -update

# Sim-vs-emu fault-injection cross-validation on a seeded schedule (link
# flaps + a node crash, DESIGN.md §10). The CSV comparing completed-flow
# counts and FCT percentiles goes to $(FAULTS_REPORT); CI uploads it as an
# artifact.
faults-smoke:
	@$(GO) run ./cmd/r2c2-emu -faults gen:7 -flows 20 -bytes 262144 -interval 3ms -csv > $(FAULTS_REPORT) \
		|| { cat $(FAULTS_REPORT); rm -f $(FAULTS_REPORT); exit 1; }
	@cat $(FAULTS_REPORT)
	@echo "faults-smoke: wrote $(FAULTS_REPORT)"

verify: build vet lint test race debug alloccheck bench-smoke faults-smoke
	@echo verify: OK
