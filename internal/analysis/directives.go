package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// This file is the single parser for every comment directive the analyzer
// understands. Directives are load-bearing: a //lint:ignore suppresses a
// finding, a //r2c2:hotpath pulls a call tree into the allocation budget,
// a //r2c2:shardowned puts a type under the ownership rules. A malformed
// directive must therefore surface as a deterministic error — never as a
// comment that silently stops doing its job (the rule would simply not
// fire, which is exactly the failure mode directives exist to prevent).
// FuzzParseDirective locks in that contract.

// Directive kinds. LintIgnore carries rule names and a mandatory reason;
// the //r2c2: marker directives carry an optional trailing note.
const (
	KindIgnore     = "ignore"     // //lint:ignore rule[,rule...] reason
	KindHotpath    = "hotpath"    // //r2c2:hotpath [note]
	KindShardOwned = "shardowned" // //r2c2:shardowned [note]
	KindBoundary   = "boundary"   // //r2c2:boundary [note]
)

// ShardOwnedDirective marks a type whose instances belong to a single
// goroutine (the shard that created them); BoundaryDirective marks a
// function that executes on behalf of another goroutine, so passing owned
// state into it leaks ownership. See the shard-ownership rule.
const (
	ShardOwnedDirective = "//r2c2:" + KindShardOwned
	BoundaryDirective   = "//r2c2:" + KindBoundary
)

// Directive is one parsed comment directive.
type Directive struct {
	Kind  string
	Rules []string // KindIgnore: the rules being suppressed
	Note  string   // KindIgnore: the mandatory reason; others: optional text
}

// ParseDirective parses one comment's text. It returns (nil, nil) for a
// comment that is not a directive at all, the parsed directive on
// success, and a non-nil error for anything that starts like a directive
// but does not parse — the error is deterministic in the input, and
// callers must report it rather than skip the comment.
func ParseDirective(text string) (*Directive, error) {
	switch {
	case strings.HasPrefix(text, "//lint:"):
		return parseLint(strings.TrimPrefix(text, "//lint:"))
	case strings.HasPrefix(text, "//r2c2:"):
		return parseR2C2(strings.TrimPrefix(text, "//r2c2:"))
	}
	return nil, nil
}

// parseLint handles the //lint: namespace. Only "ignore" exists; any
// other verb is a typo that would otherwise masquerade as prose.
func parseLint(rest string) (*Directive, error) {
	verb, tail, _ := strings.Cut(rest, " ")
	if verb != "ignore" {
		return nil, fmt.Errorf("unknown //lint: directive %q (only //lint:ignore exists)", verb)
	}
	fields := strings.Fields(tail)
	if len(fields) < 2 {
		return nil, fmt.Errorf("malformed //lint:ignore: want \"//lint:ignore rule reason\"")
	}
	rules := strings.Split(fields[0], ",")
	for _, r := range rules {
		if r == "" {
			return nil, fmt.Errorf("malformed //lint:ignore: empty rule name in %q", fields[0])
		}
	}
	return &Directive{Kind: KindIgnore, Rules: rules, Note: strings.Join(fields[1:], " ")}, nil
}

// parseR2C2 handles the //r2c2: namespace: a known marker name, optionally
// followed by explanatory text after a space.
func parseR2C2(rest string) (*Directive, error) {
	name, note, _ := strings.Cut(rest, " ")
	switch name {
	case KindHotpath, KindShardOwned, KindBoundary:
		return &Directive{Kind: name, Note: strings.TrimSpace(note)}, nil
	case "":
		return nil, fmt.Errorf("malformed //r2c2: directive: missing name")
	}
	return nil, fmt.Errorf("unknown //r2c2: directive %q (known: %s, %s, %s)",
		name, KindHotpath, KindShardOwned, KindBoundary)
}

// hasDirective reports whether a doc comment group carries the given
// //r2c2: marker kind. Malformed directives are handled (reported) by
// collectIgnores, which scans every comment; here they simply don't match.
func hasDirective(doc *ast.CommentGroup, kind string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if d, err := ParseDirective(c.Text); err == nil && d != nil && d.Kind == kind {
			return true
		}
	}
	return false
}
