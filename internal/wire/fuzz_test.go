package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzWireRoundTrip feeds arbitrary bytes to every decoder. Decoders must
// never panic, and any packet a decoder accepts must re-encode to a stable
// fixpoint: enc1 := encode(decode(pkt)) decodes to the same value and
// re-encodes to exactly enc1. Raw-byte identity with the input is NOT
// required — reserved bytes (e.g. data-header byte 35, ack bytes 13–14) are
// checksummed but not decoded, so an adversarial valid input can differ
// from its canonical re-encoding.
func FuzzWireRoundTrip(f *testing.F) {
	// Valid seeds, one per packet class.
	bc := EncodeBroadcast(&Broadcast{
		Event: EventFlowStart, Src: 3, Dst: 500, FlowSeq: 7,
		Weight: 2, Priority: 1, DemandKbps: 123456, Tree: 1, RP: 2,
	})
	f.Add(bc[:])

	route, err := PackRoute(Route{1, 2, 3, 4, 5, 6, 7, 0, 1})
	if err != nil {
		f.Fatal(err)
	}
	data, err := EncodeData(nil, &DataHeader{
		RLen: 9, RIdx: 2, Flow: MakeFlowID(3, 7), Src: 3, Dst: 500,
		Seq: 1 << 20, PLen: 5, Route: route,
	}, []byte("hello"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)

	upd, err := EncodeRoutingUpdate([]RoutingPair{{Flow: MakeFlowID(1, 2), RP: 3}, {Flow: MakeFlowID(4, 5), RP: 0}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(upd)

	ack := EncodeAck(&Ack{Flow: MakeFlowID(9, 1), Src: 9, Dst: 12, CumSeq: 4096})
	f.Add(ack[:])

	// Corrupt seeds: flipped checksum, truncation, junk, empty.
	bad := append([]byte(nil), bc[:]...)
	bad[15] ^= 0xFF
	f.Add(bad)
	f.Add(data[:DataHeaderSize-1])
	f.Add(bytes.Repeat([]byte{0xA5}, 64))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, pkt []byte) {
		if b, err := DecodeBroadcast(pkt); err == nil {
			enc1 := EncodeBroadcast(b)
			b2, err := DecodeBroadcast(enc1[:])
			if err != nil {
				t.Fatalf("re-decode broadcast: %v", err)
			}
			if *b2 != *b {
				t.Fatalf("broadcast round trip: %+v != %+v", b2, b)
			}
			if enc2 := EncodeBroadcast(b2); enc2 != enc1 {
				t.Fatalf("broadcast re-encode not a fixpoint")
			}
		}

		if h, payload, err := DecodeData(pkt); err == nil {
			enc1, err := EncodeData(nil, h, payload)
			if err != nil {
				t.Fatalf("re-encode data: %v", err)
			}
			h2, payload2, err := DecodeData(enc1)
			if err != nil {
				t.Fatalf("re-decode data: %v", err)
			}
			if *h2 != *h || !bytes.Equal(payload2, payload) {
				t.Fatalf("data round trip: %+v != %+v", h2, h)
			}
			enc2, err := EncodeData(nil, h2, payload2)
			if err != nil || !bytes.Equal(enc2, enc1) {
				t.Fatalf("data re-encode not a fixpoint (err=%v)", err)
			}
		}

		if pairs, err := DecodeRoutingUpdate(pkt); err == nil {
			enc1, err := EncodeRoutingUpdate(pairs)
			if err != nil {
				t.Fatalf("re-encode routing update: %v", err)
			}
			pairs2, err := DecodeRoutingUpdate(enc1)
			if err != nil {
				t.Fatalf("re-decode routing update: %v", err)
			}
			if !reflect.DeepEqual(pairs2, pairs) {
				t.Fatalf("routing update round trip: %v != %v", pairs2, pairs)
			}
			enc2, err := EncodeRoutingUpdate(pairs2)
			if err != nil || !bytes.Equal(enc2, enc1) {
				t.Fatalf("routing update re-encode not a fixpoint (err=%v)", err)
			}
		}

		if a, err := DecodeAck(pkt); err == nil {
			enc1 := EncodeAck(a)
			a2, err := DecodeAck(enc1[:])
			if err != nil {
				t.Fatalf("re-decode ack: %v", err)
			}
			if *a2 != *a {
				t.Fatalf("ack round trip: %+v != %+v", a2, a)
			}
			if enc2 := EncodeAck(a2); enc2 != enc1 {
				t.Fatalf("ack re-encode not a fixpoint")
			}
		}

		// Route packing: any 16-byte prefix unpacks at every legal length
		// and survives its own round trip.
		if len(pkt) >= 16 {
			var packed [16]byte
			copy(packed[:], pkt)
			route, err := UnpackRoute(packed, MaxRouteHops)
			if err != nil {
				t.Fatalf("unpack full route: %v", err)
			}
			repacked, err := PackRoute(route)
			if err != nil {
				t.Fatalf("repack route: %v", err)
			}
			route2, err := UnpackRoute(repacked, MaxRouteHops)
			if err != nil || !reflect.DeepEqual(route2, route) {
				t.Fatalf("route round trip: %v != %v (err=%v)", route2, route, err)
			}
		}
	})
}
