// Package trafficgen generates the network workloads used throughout the
// evaluation (§5): the heavy-tailed Poisson/Pareto datacenter workload the
// simulator replays, the classic torus traffic patterns of the Figure 2
// routing study, and the permutation workloads of the adaptive-routing
// experiment (Figure 18).
//
// All generators are deterministic given their seed, so experiments are
// reproducible and the emulator/simulator cross-validation (Figure 7) can
// replay the identical flow sequence on both platforms.
package trafficgen

import (
	"fmt"
	"math"
	"math/rand"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
)

// Arrival describes one flow arrival.
type Arrival struct {
	At        simtime.Time
	Src, Dst  topology.NodeID
	SizeBytes int64
	Weight    uint8
	Priority  uint8
}

// PoissonConfig parameterises the synthetic datacenter workload of §5.2:
// Poisson arrivals with the given mean inter-arrival time, flow sizes from
// a Pareto distribution (shape 1.05, mean 100 KB by default, yielding the
// heavy tail where ~95% of flows are under 100 KB), and uniformly random
// source/destination pairs.
type PoissonConfig struct {
	Nodes         int          // rack size
	MeanInterval  simtime.Time // mean flow inter-arrival time τ
	MeanFlowBytes float64      // Pareto mean (default 100 KB)
	ParetoShape   float64      // Pareto shape α (default 1.05)
	MaxFlowBytes  int64        // tail cap; 0 means 1 GB
	Count         int          // number of flows to generate
	Seed          int64
}

func (c *PoissonConfig) defaults() {
	if c.MeanFlowBytes == 0 {
		c.MeanFlowBytes = 100e3
	}
	if c.ParetoShape == 0 {
		c.ParetoShape = 1.05
	}
	if c.MaxFlowBytes == 0 {
		c.MaxFlowBytes = 1 << 30
	}
}

// Poisson generates cfg.Count flow arrivals. It panics on a non-positive
// node count, interval or count.
func Poisson(cfg PoissonConfig) []Arrival {
	cfg.defaults()
	if cfg.Nodes < 2 || cfg.MeanInterval <= 0 || cfg.Count <= 0 {
		panic(fmt.Sprintf("trafficgen: invalid Poisson config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	arrivals := make([]Arrival, cfg.Count)
	t := simtime.Time(0)
	for i := range arrivals {
		t += simtime.Time(rng.ExpFloat64() * float64(cfg.MeanInterval))
		src := topology.NodeID(rng.Intn(cfg.Nodes))
		dst := topology.NodeID(rng.Intn(cfg.Nodes - 1))
		if dst >= src {
			dst++
		}
		arrivals[i] = Arrival{
			At:        t,
			Src:       src,
			Dst:       dst,
			SizeBytes: paretoSize(rng, cfg.ParetoShape, cfg.MeanFlowBytes, cfg.MaxFlowBytes),
			Weight:    1,
		}
	}
	return arrivals
}

// FixedSize generates cfg.Count flows of exactly sizeBytes with Poisson
// arrivals — the 1,000 × 10 MB workload of the Figure 7 cross-validation.
func FixedSize(cfg PoissonConfig, sizeBytes int64) []Arrival {
	arrivals := Poisson(cfg)
	for i := range arrivals {
		arrivals[i].SizeBytes = sizeBytes
	}
	return arrivals
}

// paretoSize samples a Pareto(α, xm) size where xm is derived from the
// requested mean: mean = xm·α/(α-1). The tail is capped at max.
func paretoSize(rng *rand.Rand, shape, mean float64, max int64) int64 {
	xm := mean * (shape - 1) / shape
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	v := xm / math.Pow(u, 1/shape)
	if v > float64(max) {
		v = float64(max)
	}
	if v < 1 {
		v = 1
	}
	return int64(v)
}

// ---- Figure 2 traffic patterns (classic k-ary n-cube benchmarks) ----

// Uniform returns the uniform-random pattern: every node injects one unit
// spread equally over all other nodes.
func Uniform(g *topology.Graph) []routing.Demand {
	n := g.Nodes()
	ds := make([]routing.Demand, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			ds = append(ds, routing.Demand{
				Src: topology.NodeID(s), Dst: topology.NodeID(d), Rate: 1 / float64(n-1)})
		}
	}
	return ds
}

// NearestNeighbor returns the nearest-neighbour pattern: every node injects
// one unit spread equally over its direct neighbours.
func NearestNeighbor(g *topology.Graph) []routing.Demand {
	var ds []routing.Demand
	for s := 0; s < g.Nodes(); s++ {
		out := g.Out(topology.NodeID(s))
		for _, lid := range out {
			ds = append(ds, routing.Demand{
				Src: topology.NodeID(s), Dst: g.Link(lid).To, Rate: 1 / float64(len(out))})
		}
	}
	return ds
}

// BitComplement returns the bit-complement permutation: node with
// coordinates (c0,…,cn) sends to (k-1-c0,…,k-1-cn).
func BitComplement(g *topology.Graph) []routing.Demand {
	mustCube(g, "BitComplement")
	k := g.Radix()
	var ds []routing.Demand
	for s := 0; s < g.Nodes(); s++ {
		c := g.Coord(topology.NodeID(s))
		for d := range c {
			c[d] = k - 1 - c[d]
		}
		dst := g.NodeAt(c)
		if dst == topology.NodeID(s) {
			continue
		}
		ds = append(ds, routing.Demand{Src: topology.NodeID(s), Dst: dst, Rate: 1})
	}
	return ds
}

// Transpose returns the transpose permutation on a 2D cube: (x,y) sends to
// (y,x). It panics on other dimensionalities.
func Transpose(g *topology.Graph) []routing.Demand {
	mustCube(g, "Transpose")
	if g.Dims() != 2 {
		panic("trafficgen: Transpose requires a 2-dimensional cube")
	}
	var ds []routing.Demand
	for s := 0; s < g.Nodes(); s++ {
		c := g.Coord(topology.NodeID(s))
		c[0], c[1] = c[1], c[0]
		dst := g.NodeAt(c)
		if dst == topology.NodeID(s) {
			continue
		}
		ds = append(ds, routing.Demand{Src: topology.NodeID(s), Dst: dst, Rate: 1})
	}
	return ds
}

// Tornado returns the tornado pattern: every node sends to the node
// ⌈k/2⌉-1 hops away in the first dimension — the adversarial case for
// minimal routing on rings.
func Tornado(g *topology.Graph) []routing.Demand {
	mustCube(g, "Tornado")
	k := g.Radix()
	shift := (k+1)/2 - 1
	if shift == 0 {
		shift = 1
	}
	var ds []routing.Demand
	for s := 0; s < g.Nodes(); s++ {
		c := g.Coord(topology.NodeID(s))
		c[0] = (c[0] + shift) % k
		ds = append(ds, routing.Demand{Src: topology.NodeID(s), Dst: g.NodeAt(c), Rate: 1})
	}
	return ds
}

// RandomPermutation returns a random permutation pattern: every node sends
// one unit to a distinct node (derangement not enforced; self-pairs are
// skipped).
func RandomPermutation(g *topology.Graph, rng *rand.Rand) []routing.Demand {
	perm := rng.Perm(g.Nodes())
	var ds []routing.Demand
	for s, d := range perm {
		if s == d {
			continue
		}
		ds = append(ds, routing.Demand{Src: topology.NodeID(s), Dst: topology.NodeID(d), Rate: 1})
	}
	return ds
}

// WorstCase searches for the adversarial permutation for a protocol: the
// structured hard patterns, `trials` random permutations, and a
// hill-climbing adversarial search, returning the pattern with the lowest
// saturation throughput. The paper's Figure 2 row "worst-case" notes the
// worst pattern differs per algorithm.
func WorstCase(tab *routing.Table, p routing.Protocol, trials int, seed int64) ([]routing.Demand, float64) {
	g := tab.Graph()
	rng := rand.New(rand.NewSource(seed))
	candidates := [][]routing.Demand{BitComplement(g), Tornado(g)}
	if g.Dims() == 2 {
		candidates = append(candidates, Transpose(g))
	}
	for i := 0; i < trials; i++ {
		candidates = append(candidates, RandomPermutation(g, rng))
	}
	worst := math.MaxFloat64
	var worstPattern []routing.Demand
	for _, cand := range candidates {
		if len(cand) == 0 {
			continue
		}
		thr := routing.SaturationThroughput(tab, p, cand)
		if thr < worst {
			worst = thr
			worstPattern = cand
		}
	}
	if adv, thr := AdversarialPermutation(tab, p, 40*g.Nodes(), seed); thr > 0 && thr < worst {
		worst = thr
		worstPattern = adv
	}
	return worstPattern, worst
}

// AdversarialPermutation hill-climbs toward the worst-case permutation for
// a routing protocol: starting from a random permutation, it repeatedly
// proposes destination swaps between two sources and keeps those that
// increase the maximum channel load. Minimal protocols have structured
// adversaries that random sampling rarely finds (the Figure 2 worst-case
// row); local search gets much closer.
func AdversarialPermutation(tab *routing.Table, p routing.Protocol, iterations int, seed int64) ([]routing.Demand, float64) {
	g := tab.Graph()
	n := g.Nodes()
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)

	loads := make([]float64, g.NumLinks())
	apply := func(src, dst int, sign float64) {
		if src == dst {
			return
		}
		phi := tab.Phi(p, topology.NodeID(src), topology.NodeID(dst))
		for i, lid := range phi.Links {
			loads[lid] += sign * phi.Frac[i]
		}
	}
	maxLoad := func() float64 {
		m := 0.0
		for _, l := range loads {
			if l > m {
				m = l
			}
		}
		return m
	}
	for s, d := range perm {
		apply(s, d, 1)
	}
	best := maxLoad()
	for it := 0; it < iterations; it++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		apply(a, perm[a], -1)
		apply(b, perm[b], -1)
		perm[a], perm[b] = perm[b], perm[a]
		apply(a, perm[a], 1)
		apply(b, perm[b], 1)
		if m := maxLoad(); m >= best {
			best = m
		} else {
			// Revert the swap.
			apply(a, perm[a], -1)
			apply(b, perm[b], -1)
			perm[a], perm[b] = perm[b], perm[a]
			apply(a, perm[a], 1)
			apply(b, perm[b], 1)
		}
	}
	var ds []routing.Demand
	for s, d := range perm {
		if s != d {
			ds = append(ds, routing.Demand{Src: topology.NodeID(s), Dst: topology.NodeID(d), Rate: 1})
		}
	}
	if best == 0 {
		return ds, 0
	}
	return ds, 1 / best
}

// PermutationLoad builds the Figure 18 workload: a fraction L of nodes each
// sources one long-running flow to a randomly chosen node, such that every
// node is the source and the destination of at most one flow.
func PermutationLoad(g *topology.Graph, load float64, rng *rand.Rand) []routing.Demand {
	if load < 0 || load > 1 {
		panic(fmt.Sprintf("trafficgen: load %v out of [0,1]", load))
	}
	n := g.Nodes()
	count := int(math.Round(load * float64(n)))
	srcPerm := rng.Perm(n)[:count]
	dstPerm := rng.Perm(n)
	var ds []routing.Demand
	di := 0
	for _, s := range srcPerm {
		for di < n && dstPerm[di] == s {
			di++
		}
		if di >= n {
			break
		}
		ds = append(ds, routing.Demand{Src: topology.NodeID(s), Dst: topology.NodeID(dstPerm[di]), Rate: 1})
		di++
	}
	return ds
}

func mustCube(g *topology.Graph, what string) {
	if g.Radix() == 0 {
		panic("trafficgen: " + what + " requires a torus/mesh topology")
	}
}
