package analysis

import (
	"go/ast"
	"strings"
)

// goroutineLeak checks that every `go` statement in the scoped packages
// has a tracked exit path. The emulator (package emu) runs one goroutine
// per virtual link plus per-flow senders; Stop() must be able to wait for
// all of them, so each launch needs at least one of:
//
//   - a sync.WaitGroup Add in the launching function (the emu idiom:
//     r.wg.Add(1); go r.loop(...)),
//   - a goroutine body that waits on a context / done / quit / stop
//     channel, or defers a WaitGroup Done,
//   - a context or done-channel argument handed to the goroutine.
//
// Anything else is an untracked goroutine: it outlives Stop(), keeps
// mutating shared state, and turns the emulator's statistics racy.
type goroutineLeak struct{ pkgScope }

// NewGoroutineLeak builds the goroutine-leak rule scoped to the given
// package path suffixes (empty = all packages).
func NewGoroutineLeak(pkgs ...string) Analyzer { return &goroutineLeak{pkgScope{pkgs}} }

func (*goroutineLeak) Name() string { return "goroutine-leak" }
func (*goroutineLeak) Doc() string {
	return "every go statement needs a WaitGroup/done-channel/context exit path"
}

func (a *goroutineLeak) Check(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !tracked(fn, g) {
					diags = append(diags, pass.Diag(a.Name(), g,
						"goroutine in %s has no tracked exit path (pair it with a WaitGroup, done channel or context)",
						fn.Name.Name))
				}
				return true
			})
		}
	}
	return diags
}

// tracked reports whether the go statement has a visible exit path.
func tracked(fn *ast.FuncDecl, g *ast.GoStmt) bool {
	// 1. A WaitGroup Add anywhere in the launching function.
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if isWaitGroupish(exprString(sel.X)) {
			found = true
			return false
		}
		return true
	})
	if found {
		return true
	}
	// 2. The goroutine body (function literal) waits on a lifecycle signal
	// or defers a WaitGroup Done.
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.DeferStmt:
				if sel, ok := v.Call.Fun.(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "Done" && isWaitGroupish(exprString(sel.X)) {
					found = true
					return false
				}
			case *ast.Ident:
				if isLifecycleName(v.Name) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	// 3. A context/done-channel argument handed to the goroutine.
	for _, arg := range g.Call.Args {
		if id, ok := arg.(*ast.Ident); ok && isLifecycleName(id.Name) {
			return true
		}
		if sel, ok := arg.(*ast.SelectorExpr); ok && isLifecycleName(sel.Sel.Name) {
			return true
		}
	}
	return false
}

// isWaitGroupish matches the conventional names of WaitGroup expressions:
// "wg", "r.wg", "workers.wg", "waitGroup", ….
func isWaitGroupish(s string) bool {
	low := strings.ToLower(s)
	return low == "wg" || strings.HasSuffix(low, ".wg") || strings.Contains(low, "waitgroup") ||
		strings.HasSuffix(low, "wg") && strings.Contains(low, ".")
}

// isLifecycleName matches identifiers conventionally carrying a goroutine
// shutdown signal.
func isLifecycleName(s string) bool {
	low := strings.ToLower(s)
	switch low {
	case "ctx", "done", "quit", "stop", "stopc", "donec", "cancel":
		return true
	}
	return strings.HasSuffix(low, "ctx") || strings.HasSuffix(low, "done")
}
