package analysis

import (
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text    string
		kind    string // "" = not a directive
		rules   []string
		wantErr string // substring; "" = no error
	}{
		{"// ordinary comment", "", nil, ""},
		{"//r2c2 not a directive (no colon)", "", nil, ""},
		{"//lint:ignore no-wallclock pacing is intentional", KindIgnore, []string{"no-wallclock"}, ""},
		{"//lint:ignore a,b two rules share one reason", KindIgnore, []string{"a", "b"}, ""},
		{"//lint:ignore no-wallclock", "", nil, "malformed //lint:ignore"},
		{"//lint:ignore", "", nil, "malformed //lint:ignore"},
		{"//lint:ignore a,,b empty rule slot", "", nil, "empty rule name"},
		{"//lint:ignore ,a leading comma", "", nil, "empty rule name"},
		{"//lint:file-ignore foo whole-file suppression is not supported", "", nil, "unknown //lint: directive"},
		{"//r2c2:hotpath", KindHotpath, nil, ""},
		{"//r2c2:hotpath the event dispatch tree", KindHotpath, nil, ""},
		{"//r2c2:shardowned", KindShardOwned, nil, ""},
		{"//r2c2:shardowned one engine goroutine owns this", KindShardOwned, nil, ""},
		{"//r2c2:boundary", KindBoundary, nil, ""},
		{"//r2c2:hotpath-annotated", "", nil, "unknown //r2c2: directive"},
		{"//r2c2:shard-owned", "", nil, "unknown //r2c2: directive"},
		{"//r2c2:", "", nil, "missing name"},
		{"//r2c2: hotpath", "", nil, "missing name"},
	}
	for _, tc := range cases {
		d, err := ParseDirective(tc.text)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseDirective(%q) error = %v, want substring %q", tc.text, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseDirective(%q) unexpected error: %v", tc.text, err)
			continue
		}
		if tc.kind == "" {
			if d != nil {
				t.Errorf("ParseDirective(%q) = %+v, want nil (not a directive)", tc.text, d)
			}
			continue
		}
		if d == nil || d.Kind != tc.kind {
			t.Errorf("ParseDirective(%q) = %+v, want kind %q", tc.text, d, tc.kind)
			continue
		}
		if len(tc.rules) > 0 {
			if len(d.Rules) != len(tc.rules) {
				t.Errorf("ParseDirective(%q) rules = %v, want %v", tc.text, d.Rules, tc.rules)
				continue
			}
			for i := range tc.rules {
				if d.Rules[i] != tc.rules[i] {
					t.Errorf("ParseDirective(%q) rules = %v, want %v", tc.text, d.Rules, tc.rules)
				}
			}
		}
	}
}

// TestMalformedDirectiveIsReported locks in the "never silently skipped"
// contract end to end: a comment that starts like a directive but does
// not parse must surface as a lint-directive finding.
func TestMalformedDirectiveIsReported(t *testing.T) {
	src := `package p

//r2c2:shardwoned typo in the marker name
type Engine struct{ n int }
`
	diags, err := CheckSource("m/p", map[string]string{"src.go": src}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Rule != "lint-directive" ||
		!strings.Contains(diags[0].Message, "unknown //r2c2: directive") {
		t.Fatalf("want one lint-directive finding for the typo, got %v", diags)
	}
}

// FuzzParseDirective asserts the parser contract on arbitrary input:
// no panics, deterministic results, and — for anything in the directive
// namespaces — either a parsed directive or an error, never (nil, nil).
// A directive-shaped comment that parses to nothing would be a rule
// silently switched off, which is the exact failure mode the parser
// exists to prevent.
func FuzzParseDirective(f *testing.F) {
	seeds := []string{
		"//lint:ignore no-wallclock reason",
		"//lint:ignore a,b reason text",
		"//lint:ignore",
		"//lint:ignore ,, reason",
		"//lint:file-ignore x y",
		"//r2c2:hotpath",
		"//r2c2:hotpath note",
		"//r2c2:shardowned",
		"//r2c2:boundary epoch queue push",
		"//r2c2:",
		"//r2c2:bogus",
		"//r2c2:hotpath\ttab note",
		"// plain comment",
		"//lint:",
		"//",
		"",
		"//r2c2:shardowned nbsp",
		"//lint:ignore rule reason",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d1, err1 := ParseDirective(text)
		d2, err2 := ParseDirective(text)

		// Deterministic: same input, same outcome.
		if (err1 == nil) != (err2 == nil) ||
			(err1 != nil && err1.Error() != err2.Error()) {
			t.Fatalf("nondeterministic error for %q: %v vs %v", text, err1, err2)
		}
		if (d1 == nil) != (d2 == nil) {
			t.Fatalf("nondeterministic directive for %q", text)
		}

		inNamespace := strings.HasPrefix(text, "//lint:") || strings.HasPrefix(text, "//r2c2:")
		if inNamespace && d1 == nil && err1 == nil {
			t.Fatalf("directive-shaped comment %q parsed to nothing: would be silently skipped", text)
		}
		if !inNamespace && (d1 != nil || err1 != nil) {
			t.Fatalf("non-directive %q parsed to %+v / %v", text, d1, err1)
		}
		if d1 != nil && err1 != nil {
			t.Fatalf("both directive and error for %q", text)
		}
		if d1 != nil && d1.Kind == KindIgnore {
			if len(d1.Rules) == 0 {
				t.Fatalf("ignore directive %q with no rules", text)
			}
			for _, r := range d1.Rules {
				if r == "" {
					t.Fatalf("ignore directive %q with empty rule name", text)
				}
			}
			if d1.Note == "" {
				t.Fatalf("ignore directive %q with empty reason", text)
			}
		}
	})
}
