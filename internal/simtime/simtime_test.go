package simtime

import (
	"testing"
	"testing/quick"
)

func TestUnits(t *testing.T) {
	if Second != 1e12*Picosecond {
		t.Fatal("unit chain broken")
	}
	if Millisecond*1000 != Second || Microsecond*1000 != Millisecond || Nanosecond*1000 != Microsecond {
		t.Fatal("unit ratios wrong")
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	// Exact up to ~9e15 ps (the float64 mantissa), i.e. ~2.5 simulated
	// hours; constrain to 1000 simulated seconds.
	f := func(ms uint32) bool {
		tt := Time(ms%1_000_000) * Millisecond
		return FromSeconds(tt.Seconds()) == tt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransmitTime(t *testing.T) {
	cases := []struct {
		bytes int
		gbps  float64
		want  Time
	}{
		{1500, 10, 1200 * Nanosecond}, // MTU at 10G
		{1500, 100, 120 * Nanosecond}, // MTU at 100G (§2.1's upper range)
		{16, 10, Time(12800)},         // broadcast at 10G
		{1, 100, Time(80)},            // single byte at 100G: 80 ps exactly
		{0, 10, 0},
		{10, 0, 0},
		{-5, 10, 0},
	}
	for _, c := range cases {
		if got := TransmitTime(c.bytes, c.gbps); got != c.want {
			t.Errorf("TransmitTime(%d, %v) = %v, want %v", c.bytes, c.gbps, got, c.want)
		}
	}
}

// TransmitTime must round up, never down: undercounting serialisation time
// would let the simulator exceed link capacity.
func TestTransmitTimeNeverUndercounts(t *testing.T) {
	f := func(b uint16, g uint8) bool {
		bytes := int(b)%9000 + 1
		gbps := float64(g%100) + 1
		got := TransmitTime(bytes, gbps)
		exact := float64(bytes) * 8 / gbps * 1000
		return float64(got) >= exact && float64(got) < exact+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStringFormats(t *testing.T) {
	for _, c := range []struct {
		t    Time
		want string
	}{
		{1500 * Millisecond, "1.500s"},
		{42 * Millisecond, "42.000ms"},
		{999 * Nanosecond, "999.000ns"},
		{500, "500ps"},
	} {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}
