package genetic

import (
	"math/rand"
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/topology"
	"r2c2/internal/trafficgen"
)

func TestOptimizeFindsOneMax(t *testing.T) {
	// Fitness = number of 1-genes: global optimum is all ones.
	n := 40
	fit := func(a []uint8) float64 {
		s := 0.0
		for _, g := range a {
			s += float64(g)
		}
		return s
	}
	res := Optimize(Config{Seed: 1, MaxGens: 80, StallGens: 80}, n, 2, make([]uint8, n), fit)
	if res.Utility < float64(n)*0.95 {
		t.Fatalf("GA reached %v of %d on OneMax", res.Utility, n)
	}
}

// The result can never be worse than the seeded current assignment,
// because the current assignment is in the initial population and elitism
// preserves the best genotype.
func TestOptimizeNeverRegresses(t *testing.T) {
	n := 20
	// Deceptive fitness: all-zeros scores 100, anything else scores the
	// number of ones (max 20 < 100).
	fit := func(a []uint8) float64 {
		ones := 0.0
		for _, g := range a {
			ones += float64(g)
		}
		if ones == 0 {
			return 100
		}
		return ones
	}
	res := Optimize(Config{Seed: 3}, n, 2, make([]uint8, n), fit)
	if res.Utility < 100 {
		t.Fatalf("GA regressed below the seeded optimum: %v", res.Utility)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	n := 15
	fit := func(a []uint8) float64 {
		s := 0.0
		for i, g := range a {
			if int(g) == i%2 {
				s++
			}
		}
		return s
	}
	r1 := Optimize(Config{Seed: 9}, n, 2, make([]uint8, n), fit)
	r2 := Optimize(Config{Seed: 9}, n, 2, make([]uint8, n), fit)
	if r1.Utility != r2.Utility {
		t.Fatal("same seed, different result")
	}
	for i := range r1.Assignment {
		if r1.Assignment[i] != r2.Assignment[i] {
			t.Fatal("same seed, different assignment")
		}
	}
}

func TestOptimizeStallStops(t *testing.T) {
	n := 5
	fit := func(a []uint8) float64 { return 1 } // flat landscape
	res := Optimize(Config{Seed: 1, MaxGens: 1000, StallGens: 3}, n, 2, make([]uint8, n), fit)
	if res.Generations > 10 {
		t.Fatalf("flat landscape ran %d generations; stall detection broken", res.Generations)
	}
}

func TestOptimizePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"no flows":    func() { Optimize(Config{}, 0, 2, nil, nil) },
		"one choice":  func() { Optimize(Config{}, 3, 1, make([]uint8, 3), nil) },
		"bad current": func() { Optimize(Config{}, 3, 2, make([]uint8, 2), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// The Figure 18 mechanism: with per-flow protocol choice the GA must match
// or beat both all-RPS and all-VLB on any workload.
func TestAdaptiveBeatsUniformBaselines(t *testing.T) {
	g, err := topology.NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewTable(g)
	protocols := []routing.Protocol{routing.RPS, routing.VLB}
	rng := rand.New(rand.NewSource(11))
	for _, load := range []float64{0.25, 1.0} {
		flows := trafficgen.PermutationLoad(g, load, rng)
		if len(flows) == 0 {
			continue
		}
		fit := AggregateFitness(tab, 10e9, 0, flows, protocols)
		allRPS := fit(UniformAssignment(len(flows), 0))
		allVLB := fit(UniformAssignment(len(flows), 1))
		res := Optimize(Config{Seed: 2, Population: 40, MaxGens: 30},
			len(flows), len(protocols), UniformAssignment(len(flows), 0), fit)
		if res.Utility < allRPS-1 || res.Utility < allVLB-1 {
			t.Fatalf("load %v: adaptive %.3g below baselines RPS=%.3g VLB=%.3g",
				load, res.Utility, allRPS, allVLB)
		}
	}
}

func TestTailFitness(t *testing.T) {
	g, err := topology.NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewTable(g)
	protocols := []routing.Protocol{routing.RPS, routing.VLB}
	rng := rand.New(rand.NewSource(4))
	flows := trafficgen.PermutationLoad(g, 0.5, rng)
	fit := TailFitness(tab, 10e9, 0, flows, protocols)
	v := fit(UniformAssignment(len(flows), 0))
	if v <= 0 {
		t.Fatalf("tail fitness = %v", v)
	}
	empty := TailFitness(tab, 10e9, 0, nil, protocols)
	if empty(nil) != 0 {
		t.Fatal("tail fitness of empty flow set should be 0")
	}
}

func TestRandomAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandomAssignment(1000, 3, rng)
	counts := [3]int{}
	for _, g := range a {
		if g > 2 {
			t.Fatalf("gene %d out of range", g)
		}
		counts[g]++
	}
	for i, c := range counts {
		if c < 200 {
			t.Fatalf("choice %d severely under-represented: %d/1000", i, c)
		}
	}
}

// Job-tail utility: optimizing for the slowest flow of each job can prefer
// a different assignment than aggregate throughput, and the GA must never
// lose to the uniform baselines under it either.
func TestJobTailFitness(t *testing.T) {
	g, err := topology.NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewTable(g)
	protocols := []routing.Protocol{routing.RPS, routing.VLB}
	rng := rand.New(rand.NewSource(21))
	flows := trafficgen.PermutationLoad(g, 0.75, rng)
	jobs := make([]string, len(flows))
	for i := range jobs {
		jobs[i] = []string{"mapreduce", "search", ""}[i%3]
	}
	fit := JobTailFitness(tab, 10e9, 0.05, flows, protocols, jobs)
	allRPS := fit(UniformAssignment(len(flows), 0))
	allVLB := fit(UniformAssignment(len(flows), 1))
	if allRPS <= 0 || allVLB <= 0 {
		t.Fatal("degenerate utilities")
	}
	res := Optimize(Config{Seed: 5, Population: 40, MaxGens: 20},
		len(flows), len(protocols), UniformAssignment(len(flows), 0), fit)
	if res.Utility < allRPS-1 || res.Utility < allVLB-1 {
		t.Fatalf("adaptive %v below baselines %v / %v", res.Utility, allRPS, allVLB)
	}
	// A job's utility must equal its minimum flow rate: check by direct
	// construction with two flows in one job.
	two := flows[:2]
	fit2 := JobTailFitness(tab, 10e9, 0.05, two, protocols, []string{"j", "j"})
	agg := AggregateFitness(tab, 10e9, 0.05, two, protocols)
	a := UniformAssignment(2, 0)
	if fit2(a) > agg(a) {
		t.Fatal("job-tail utility exceeds aggregate; min() broken")
	}
	// Mismatched jobOf panics.
	defer func() {
		if recover() == nil {
			t.Error("expected panic on jobOf mismatch")
		}
	}()
	JobTailFitness(tab, 10e9, 0.05, flows, protocols, nil)
}
