package emu

import "time"

// This file is the emulator's only wall-clock chokepoint. Package emu runs
// in real time by design (§4.1: it replaces the Maze RDMA testbed, which
// paces real packets on real links), so it cannot be fully virtual-time —
// but every wall-clock read still goes through rackClock so that:
//
//   - measurement results (Flow.started / Flow.finished, hence FCT and
//     Throughput) carry rack-relative monotonic nanoseconds, never absolute
//     host timestamps: a wall-clock step (NTP slew, suspend/resume) cannot
//     produce a negative or wildly wrong FCT, and results from different
//     racks or runs are not accidentally comparable as absolute times;
//   - the no-wallclock lint rule covers internal/emu, and the justified
//     ignores below are the complete audited inventory of real-time use.
//
// Everything outside this file uses rackClock (or Flow fields derived from
// it) and is wall-clock-free under the linter.

// rackClock anchors one rack's timeline to a private epoch captured at
// New. now() feeds pacing-schedule arithmetic; nowNs() is the only
// timestamp representation allowed to reach measurement results.
type rackClock struct {
	epoch time.Time
}

func newRackClock() rackClock {
	//lint:ignore no-wallclock the rack epoch is the single wall-clock anchor; every timestamp is an offset from it
	return rackClock{epoch: time.Now()}
}

// nowNs returns nanoseconds since the rack epoch. The subtraction uses
// Go's monotonic clock reading, so the result is immune to wall-clock
// steps and is what Flow.started / Flow.finished store.
func (c rackClock) nowNs() int64 {
	//lint:ignore no-wallclock monotonic read against the rack epoch; never escapes as absolute wall time
	return int64(time.Since(c.epoch))
}

// now returns the host time for pacing schedules (link and sender token
// buckets sleep against it). Schedules never reach results; use nowNs for
// anything measured.
func (c rackClock) now() time.Time {
	//lint:ignore no-wallclock pacing schedules sleep on host time by design; measurements go through nowNs
	return time.Now()
}

// after is time.After for the emulator's bounded pacing and backoff
// sleeps, all of which race a ctx.Done() case.
func (c rackClock) after(d time.Duration) <-chan time.Time {
	//lint:ignore no-wallclock,alloc-hotpath bounded pacing/backoff sleeps (>500us, batched), so the timer allocation is amortised; every caller selects on ctx.Done too
	return time.After(d)
}

// newTicker drives the periodic rate recomputation (the host-time
// analogue of the paper's ρ interval).
func (c rackClock) newTicker(d time.Duration) *time.Ticker {
	//lint:ignore no-wallclock the recompute interval rho is a host-time period by design (§3.3.2)
	return time.NewTicker(d)
}

// hostTimer is the one clock primitive not tied to a rack: Flow.Wait
// offers its caller a host-time timeout on a flow that may belong to an
// already-stopped rack. It returns a Timer (not a bare channel) so the
// caller can Stop it when the flow wins the race — time.After would leak
// the timer until it fires.
func hostTimer(d time.Duration) *time.Timer {
	//lint:ignore no-wallclock caller-facing timeout in host time; not a measurement
	return time.NewTimer(d)
}
