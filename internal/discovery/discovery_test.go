package discovery

import (
	"testing"

	"r2c2/internal/topology"
)

func graphs(t *testing.T) []*topology.Graph {
	t.Helper()
	torus, err := topology.NewTorus(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := topology.NewMesh(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	clos, err := topology.NewFoldedClos(4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	return []*topology.Graph{torus, mesh, clos}
}

// After convergence every node's discovered edge set equals the physical
// fabric, on every topology family.
func TestDiscoveryConvergesToTruth(t *testing.T) {
	for _, g := range graphs(t) {
		nodes := FromGraph(g)
		rounds := Converge(nodes)
		if rounds == 0 {
			t.Fatalf("%v: no flooding happened", g.Kind())
		}
		wantEdges := make([]topology.Link, 0, g.NumLinks())
		for lid := 0; lid < g.NumLinks(); lid++ {
			wantEdges = append(wantEdges, g.Link(topology.LinkID(lid)))
		}
		for id, n := range nodes {
			if err := Validate(n, g.Vertices()); err != nil {
				t.Fatalf("%v: %v", g.Kind(), err)
			}
			got := n.Edges()
			if len(got) != len(wantEdges) {
				t.Fatalf("%v node %d: %d edges, want %d", g.Kind(), id, len(got), len(wantEdges))
			}
			// Rebuild a Graph and spot-check distances agree.
			dg, err := n.Graph(g.Kind(), g.Nodes(), g.Vertices())
			if err != nil {
				t.Fatalf("%v node %d: %v", g.Kind(), id, err)
			}
			for a := 0; a < g.Nodes(); a += 5 {
				for b := 0; b < g.Nodes(); b += 7 {
					if dg.Dist(topology.NodeID(a), topology.NodeID(b)) != g.Dist(topology.NodeID(a), topology.NodeID(b)) {
						t.Fatalf("%v: discovered distances diverge", g.Kind())
					}
				}
			}
			break // one node per graph suffices for the Graph rebuild
		}
	}
}

// A failure re-origination must propagate: after a link is removed and the
// endpoint re-announces, every node's database drops exactly that edge.
func TestDiscoveryTracksFailure(t *testing.T) {
	g, err := topology.NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	nodes := FromGraph(g)
	Converge(nodes)
	before := nodes[5].Edges()

	// Node 0 loses its link to node 1.
	var kept []topology.NodeID
	for _, lid := range g.Out(0) {
		if to := g.Link(lid).To; to != 1 {
			kept = append(kept, to)
		}
	}
	n0 := nodes[0]
	n0.SetNeighbors(kept)
	lsa := n0.Originate()
	// Flood the update manually (synchronous rounds).
	pendings := map[topology.NodeID]LSA{}
	for _, nb := range kept {
		pendings[nb] = lsa
	}
	for len(pendings) > 0 {
		next := map[topology.NodeID]LSA{}
		for to, l := range pendings {
			if nodes[to].Handle(l) {
				for _, lid := range g.Out(to) {
					next[g.Link(lid).To] = l
				}
			}
		}
		pendings = next
	}

	after := nodes[5].Edges()
	gone := Diff(before, after)
	if len(gone) != 1 || gone[0].From != 0 || gone[0].To != 1 {
		t.Fatalf("diff = %v, want exactly 0->1", gone)
	}
}

func TestHandleOrdering(t *testing.T) {
	n := NewNode(0, []topology.NodeID{1})
	newer := LSA{Origin: 2, Seq: 5, Neighbors: []topology.NodeID{3}}
	older := LSA{Origin: 2, Seq: 4, Neighbors: []topology.NodeID{9}}
	if !n.Handle(newer) {
		t.Fatal("fresh LSA rejected")
	}
	if n.Handle(older) {
		t.Fatal("stale LSA accepted")
	}
	if n.Handle(newer) {
		t.Fatal("duplicate LSA re-flooded")
	}
	if n.KnownNodes() != 1 {
		t.Fatalf("known = %d", n.KnownNodes())
	}
	// Mutating the caller's slice must not corrupt the database.
	newer.Neighbors[0] = 99
	if n.Edges()[0].To != 3 {
		t.Fatal("LSA not defensively copied")
	}
}

func TestValidateReportsMissing(t *testing.T) {
	n := NewNode(0, nil)
	n.Originate()
	if err := Validate(n, 2); err == nil {
		t.Fatal("missing origin not reported")
	}
}
