// Incremental water-filling (§3.4, Figure 8): the recomputation loop fires
// every ρ, but between consecutive ticks the traffic matrix usually changes
// by a handful of flow events. Rebuilding the whole allocation from scratch
// on every tick is exactly the cost profile Figure 8 says must be
// engineered down, and weighted max-min has the locality to avoid it: a
// flow's rate only changes when the fill level of one of its bottlenecks
// moves, so a single add/remove/demand-change perturbs the allocation
// outward from the delta's links and dies out at demand-frozen or
// disjoint flows.
//
// Incremental exploits that. It caches the converged fill state — per-flow
// rates, per-link committed load split by priority round — and Apply
// re-solves only the flows reachable from the delta: a restricted
// water-fill over a working set S, expanded to a fixpoint (a flow whose
// rate changed pulls in every round-mate sharing a link with it), then
// cascaded to lower-priority rounds through the links whose residual
// capacity moved. The restricted solve seeds the same fillRound used by the
// from-scratch path with the out-of-set load as pre-frozen background, so
// both paths share one set of numerics; Allocate remains the correctness
// reference and the randomized oracle in incremental_test.go holds the two
// within 1e-6 of each other over tens of thousands of random deltas.
package waterfill

import (
	"fmt"
	"math"

	"r2c2/internal/topology"
)

// Handle identifies a live flow inside an Incremental allocator. Handles
// are dense small integers, reused after Remove.
type Handle int32

// DeltaKind enumerates the flow events the recomputation loop reacts to
// (§3.1: start, finish and demand-update broadcasts; §3.4 route changes
// arrive as an update with a new φ-vector).
type DeltaKind uint8

const (
	// DeltaAdd introduces Delta.Flow; Apply returns its new Handle.
	DeltaAdd DeltaKind = iota
	// DeltaRemove retires Delta.Handle.
	DeltaRemove
	// DeltaUpdate replaces Delta.Handle's spec with Delta.Flow (demand,
	// weight, priority or φ-vector change).
	DeltaUpdate
)

// Delta is one flow event.
type Delta struct {
	Kind   DeltaKind
	Handle Handle // target of Remove / Update
	Flow   Flow   // payload of Add / Update
}

// rateChangeTol is the relative rate change below which a perturbation is
// not propagated further. It sits well above the float noise a re-solve
// introduces for genuinely unchanged flows (~1e-14 relative: the background
// seeds re-sum committed loads in a different order) and well below the
// 1e-6 the differential oracle enforces, so ripples die instead of echoing
// while real changes always travel. Committed state absorbs the exact
// solved value either way; the tolerance only gates propagation.
const rateChangeTol = 1e-12

// incRound is one priority class's committed state.
type incRound struct {
	count int       // live flows in this class
	load  []float64 // per link: committed rate·φ mass of this class
}

// Incremental is a water-filling allocator maintained under a stream of
// flow deltas. It is not safe for concurrent use.
type Incremental struct {
	cfg    Config
	capEff float64

	flows []Flow
	alive []bool
	rates []float64
	free  []Handle
	live  int

	rounds map[uint8]*incRound
	prios  []uint8  // live priorities, descending
	spare  *incRound // last emptied round, reused by roundOf (class churn is common)

	linkFlows [][]Handle // per link: live flows crossing it, all classes

	eng *Allocator // fill engine shared with the from-scratch path

	// Apply scratch, reused across calls.
	dirty     []topology.LinkID // links whose ≥current-round load changed
	inDirty   []bool
	sTouched  []topology.LinkID // links of the current working set
	inTouched []bool
	sFlows    []int // working set S, as indices into flows
	inS       []bool
	newRates  []float64 // restricted-solve output, indexed like flows

	// Solves counts restricted fillRound invocations and Expansions counts
	// fixpoint iterations beyond the first — the observability hooks the
	// Figure 8 harness reports against from-scratch cost.
	Solves     uint64
	Expansions uint64
}

// NewIncremental returns an empty incremental allocator. The configuration
// rules are those of NewAllocator.
func NewIncremental(cfg Config) *Incremental {
	return &Incremental{
		cfg:       cfg,
		capEff:    cfg.Capacity * (1 - cfg.Headroom),
		rounds:    make(map[uint8]*incRound),
		linkFlows: make([][]Handle, cfg.NumLinks),
		eng:       NewAllocator(cfg),
		inDirty:   make([]bool, cfg.NumLinks),
		inTouched: make([]bool, cfg.NumLinks),
	}
}

// Config returns the allocator's configuration.
func (inc *Incremental) Config() Config { return inc.cfg }

// Len returns the number of live flows.
func (inc *Incremental) Len() int { return inc.live }

// Rate returns the committed rate of a live flow.
func (inc *Incremental) Rate(h Handle) float64 {
	inc.check(h)
	return inc.rates[h]
}

// FlowSpec returns the committed spec of a live flow.
func (inc *Incremental) FlowSpec(h Handle) Flow {
	inc.check(h)
	return inc.flows[h]
}

// Add is Apply(DeltaAdd).
func (inc *Incremental) Add(f Flow) Handle { return inc.Apply(Delta{Kind: DeltaAdd, Flow: f}) }

// Remove is Apply(DeltaRemove).
func (inc *Incremental) Remove(h Handle) { inc.Apply(Delta{Kind: DeltaRemove, Handle: h}) }

// Update is Apply(DeltaUpdate).
func (inc *Incremental) Update(h Handle, f Flow) {
	inc.Apply(Delta{Kind: DeltaUpdate, Handle: h, Flow: f})
}

// Apply folds one flow event into the allocation, re-solving only the
// rounds and links reachable from the delta, and returns the handle the
// event concerns (the fresh handle for DeltaAdd).
func (inc *Incremental) Apply(d Delta) Handle {
	h := d.Handle
	var top uint8 // highest priority whose round the delta touches
	switch d.Kind {
	case DeltaAdd:
		validateFlow(len(inc.flows), &d.Flow)
		h = inc.register(d.Flow)
		inc.markDirty(d.Flow.Phi.Links)
		top = d.Flow.Priority
	case DeltaRemove:
		inc.check(h)
		top = inc.flows[h].Priority
		inc.uncommit(h)
		inc.unregister(h)
		inc.free = append(inc.free, h) // Update revives handles; only Remove frees them
		h = -1                         // no forced member: the flow is gone
	case DeltaUpdate:
		inc.check(h)
		validateFlow(int(h), &d.Flow)
		old := inc.flows[h]
		top = old.Priority
		if d.Flow.Priority > top {
			top = d.Flow.Priority
		}
		inc.uncommit(h)
		inc.unregister(h)
		inc.reregister(h, d.Flow)
		inc.markDirty(d.Flow.Phi.Links)
	default:
		panic(fmt.Sprintf("waterfill: unknown delta kind %d", d.Kind))
	}

	// Sweep the priority rounds from the delta's class downward. Classes
	// above `top` cannot observe the delta (strict priority); each class
	// below re-solves only if a dirty link reaches it.
	ret := h
	for _, p := range inc.prios {
		if p > top {
			continue
		}
		force := -1
		if h >= 0 && inc.alive[h] && inc.flows[h].Priority == p {
			force = int(h)
		}
		inc.solveRound(p, force)
	}
	inc.clearDirty()
	if d.Kind == DeltaRemove {
		return d.Handle
	}
	return ret
}

// Rebuild discards all state and bulk-loads the given flows with one
// from-scratch fill — the path taken at startup and whenever a view diff is
// so large that replaying it as deltas would cost more than starting over.
// The returned handles parallel the input order.
func (inc *Incremental) Rebuild(flows []Flow) []Handle {
	inc.flows = append(inc.flows[:0], flows...)
	inc.rates = ensureLen(inc.rates, len(flows))
	inc.newRates = ensureLen(inc.newRates, len(flows))
	inc.alive = inc.alive[:0]
	inc.inS = inc.inS[:0]
	for range flows {
		inc.alive = append(inc.alive, true)
		inc.inS = append(inc.inS, false)
	}
	inc.free = inc.free[:0]
	inc.live = len(flows)
	for i := range inc.linkFlows {
		inc.linkFlows[i] = inc.linkFlows[i][:0]
	}
	for p := range inc.rounds {
		delete(inc.rounds, p)
	}
	inc.prios = inc.prios[:0]

	handles := make([]Handle, len(flows))
	for i := range flows {
		h := Handle(i)
		handles[i] = h
		f := &inc.flows[i]
		for _, lid := range f.Phi.Links {
			inc.linkFlows[lid] = append(inc.linkFlows[lid], h)
		}
		inc.roundOf(f.Priority).count++
	}

	rates := inc.eng.Allocate(inc.flows)
	copy(inc.rates, rates)
	for i := range inc.flows {
		f := &inc.flows[i]
		r := inc.roundOf(f.Priority)
		for j, lid := range f.Phi.Links {
			r.load[lid] += rates[i] * f.Phi.Frac[j]
		}
	}
	// Allocate left its own frozenSum at the final fill; the restricted
	// solver assumes a zeroed engine outside the links it seeds itself.
	for i := range inc.eng.frozenSum {
		inc.eng.frozenSum[i] = 0
	}
	return handles
}

// solveRound re-solves priority class p around the current dirty links: a
// restricted water-fill over the reachable working set, expanded until no
// re-solved rate moves, then committed (which marks the next round's dirty
// links).
func (inc *Incremental) solveRound(p uint8, force int) {
	round := inc.rounds[p]
	if round == nil || round.count == 0 {
		return
	}
	inc.sFlows = inc.sFlows[:0]
	if force >= 0 {
		inc.inS[force] = true
		inc.sFlows = append(inc.sFlows, force)
	}
	for _, lid := range inc.dirty {
		for _, h := range inc.linkFlows[lid] {
			if inc.flows[h].Priority == p && !inc.inS[h] {
				inc.inS[h] = true
				inc.sFlows = append(inc.sFlows, int(h))
			}
		}
	}
	if len(inc.sFlows) == 0 {
		return
	}

	for {
		inc.resetTouched()
		inc.restrictedFill(p)
		inc.Solves++
		// Two fixpoint-expansion passes over the flows just solved. Pass one:
		// a changed rate perturbs every link the flow crosses, so its
		// round-mates there must re-solve too. Pass two: the certificate
		// check — an unchanged rate is NOT sufficient, because the restricted
		// solve can silently cap a flow at its old contribution on a link it
		// should claw capacity back from (see certExpand).
		nSolved := len(inc.sFlows)
		grew := inc.expandChanged(p, nSolved)
		if inc.certExpand(p, nSolved) {
			grew = true
		}
		if !grew {
			break
		}
		inc.Expansions++
		// Quadratic-blowup guard: once most of the class is in play, pull in
		// the stragglers and finish with a single whole-class solve (which is
		// exact by construction — no background from class p remains).
		if len(inc.sFlows)*4 >= round.count*3 {
			for h, f := range inc.flows {
				if inc.alive[h] && f.Priority == p && !inc.inS[h] {
					inc.inS[h] = true
					inc.sFlows = append(inc.sFlows, h)
				}
			}
			inc.resetTouched()
			inc.restrictedFill(p)
			inc.Solves++
			break
		}
	}
	inc.resetTouched()

	// Commit: absorb the solved rates exactly, adjust this class's link
	// loads, and mark moved links dirty for the classes below.
	for _, fi := range inc.sFlows {
		old, now := inc.rates[fi], inc.newRates[fi]
		inc.inS[fi] = false
		if old == now {
			continue
		}
		f := &inc.flows[fi]
		for j, lid := range f.Phi.Links {
			round.load[lid] += (now - old) * f.Phi.Frac[j]
		}
		if rateChanged(old, now) {
			inc.markDirty(f.Phi.Links)
		}
		inc.rates[fi] = now
	}
	inc.sFlows = inc.sFlows[:0]
}

// restrictedFill water-fills the working set against the committed rest of
// the world: every link the set touches is seeded with the load of higher
// classes plus class p's own load minus the set's committed contribution,
// and the shared fillRound does the rest. newRates receives the solved
// rates at the set's indices.
//
// On return eng.frozenSum holds, for every link in sTouched, the total
// ≥class-p load under the candidate solution (background plus the set's
// re-solved contributions) — certExpand reads it to test link saturation.
// The caller must resetTouched before the next fill or before returning.
func (inc *Incremental) restrictedFill(p uint8) {
	inc.sTouched = inc.sTouched[:0]
	for _, fi := range inc.sFlows {
		for _, lid := range inc.flows[fi].Phi.Links {
			if !inc.inTouched[lid] {
				inc.inTouched[lid] = true
				inc.sTouched = append(inc.sTouched, lid)
			}
		}
	}
	for _, lid := range inc.sTouched {
		bg := 0.0
		for _, q := range inc.prios {
			if q < p {
				break // prios is descending
			}
			bg += inc.rounds[q].load[lid]
		}
		inc.eng.frozenSum[lid] = bg
	}
	for _, fi := range inc.sFlows {
		f := &inc.flows[fi]
		if r := inc.rates[fi]; r != 0 {
			for j, lid := range f.Phi.Links {
				inc.eng.frozenSum[lid] -= r * f.Phi.Frac[j]
			}
		}
	}
	inc.eng.fillRound(inc.flows, inc.sFlows, inc.capEff, inc.newRates)
}

// resetTouched clears the engine seeding left behind by restrictedFill.
func (inc *Incremental) resetTouched() {
	for _, lid := range inc.sTouched {
		inc.eng.frozenSum[lid] = 0
		inc.inTouched[lid] = false
	}
	inc.sTouched = inc.sTouched[:0]
}

// expandChanged pulls into S the class-p round-mates on every link crossed
// by a flow whose re-solved rate moved. Only the first nSolved entries of
// sFlows have valid newRates. Reports whether S grew.
func (inc *Incremental) expandChanged(p uint8, nSolved int) bool {
	grew := false
	for _, fi := range inc.sFlows[:nSolved] {
		if !rateChanged(inc.rates[fi], inc.newRates[fi]) {
			continue
		}
		f := &inc.flows[fi]
		for _, lid := range f.Phi.Links {
			for _, h := range inc.linkFlows[lid] {
				if inc.flows[h].Priority == p && !inc.inS[h] {
					inc.inS[h] = true
					inc.sFlows = append(inc.sFlows, int(h))
					grew = true
				}
			}
		}
	}
	return grew
}

// certExpand verifies the weighted max-min optimality certificate for every
// re-solved flow: a flow not frozen at its demand must cross a saturated
// link on which no round-mate holds a strictly higher fill level
// (rate/weight) — otherwise the flow could claim some of that mate's share.
// The restricted solve cannot detect this on its own: out-of-set mates are
// frozen background, so a flow whose bottleneck elsewhere relaxed refills a
// saturated shared link only up to its own old contribution, its rate comes
// back unchanged, and the changed-rate expansion never fires. When the
// certificate fails, the higher-level out-of-set mates on the flow's
// saturated links join S so the next iteration redistributes jointly.
// Reports whether S grew.
func (inc *Incremental) certExpand(p uint8, nSolved int) bool {
	satTol := 1e-9 * inc.capEff
	grew := false
	for _, fi := range inc.sFlows[:nSolved] {
		f := &inc.flows[fi]
		if len(f.Phi.Links) == 0 {
			continue // host-local: contends with nobody
		}
		r := inc.newRates[fi]
		if f.Demand != Unlimited && r >= f.Demand {
			continue // demand-frozen (covers Demand <= 0, where r == 0)
		}
		lvl := r / f.Weight
		certified := false
		for _, lid := range f.Phi.Links {
			if inc.capEff-inc.eng.frozenSum[lid] > satTol {
				continue // unsaturated: cannot be the bottleneck
			}
			ok := true
			for _, g := range inc.linkFlows[lid] {
				gf := &inc.flows[g]
				if gf.Priority != p || int(g) == fi {
					continue
				}
				// A saturated link certifies fi only if fi's level tops every
				// mate's — in-set mates at their candidate rates (a saturated
				// link full of higher-level set mates is *their* bottleneck,
				// not fi's), out-of-set mates at their committed rates.
				gr := inc.rates[g]
				if inc.inS[g] {
					gr = inc.newRates[g]
				}
				if levelExceeds(gr/gf.Weight, lvl) {
					ok = false
					break
				}
			}
			if ok {
				certified = true
				break
			}
		}
		if certified {
			continue
		}
		pulled := false
		for _, lid := range f.Phi.Links {
			if inc.capEff-inc.eng.frozenSum[lid] > satTol {
				continue
			}
			if inc.pullHigher(p, lid, lvl) {
				pulled = true
			}
		}
		if !pulled {
			// Backstop-frozen flow with no saturated link at all: pull any
			// higher-level mate it shares a link with.
			for _, lid := range f.Phi.Links {
				if inc.pullHigher(p, lid, lvl) {
					pulled = true
				}
			}
		}
		if pulled {
			grew = true
		}
	}
	return grew
}

// pullHigher adds to S the out-of-set class-p flows on lid whose committed
// fill level exceeds lvl. Reports whether any joined.
func (inc *Incremental) pullHigher(p uint8, lid topology.LinkID, lvl float64) bool {
	grew := false
	for _, g := range inc.linkFlows[lid] {
		gf := &inc.flows[g]
		if gf.Priority != p || inc.inS[g] {
			continue
		}
		if !levelExceeds(inc.rates[g]/gf.Weight, lvl) {
			continue
		}
		inc.inS[g] = true
		inc.sFlows = append(inc.sFlows, int(g))
		grew = true
	}
	return grew
}

// levelExceeds reports whether fill level a sits meaningfully above b.
func levelExceeds(a, b float64) bool {
	return a-b > 1e-9*math.Max(a, b)
}

// register allocates a handle for a new flow and indexes it.
func (inc *Incremental) register(f Flow) Handle {
	var h Handle
	if n := len(inc.free); n > 0 {
		h = inc.free[n-1]
		inc.free = inc.free[:n-1]
		inc.flows[h] = f
		inc.alive[h] = true
		inc.rates[h] = 0
	} else {
		h = Handle(len(inc.flows))
		inc.flows = append(inc.flows, f)
		inc.alive = append(inc.alive, true)
		inc.rates = append(inc.rates, 0)
		inc.newRates = append(inc.newRates, 0)
		inc.inS = append(inc.inS, false)
	}
	inc.live++
	for _, lid := range f.Phi.Links {
		inc.linkFlows[lid] = append(inc.linkFlows[lid], h)
	}
	inc.roundOf(f.Priority).count++
	return h
}

// reregister re-indexes an existing handle under a replacement spec.
func (inc *Incremental) reregister(h Handle, f Flow) {
	inc.flows[h] = f
	inc.alive[h] = true
	inc.live++
	for _, lid := range f.Phi.Links {
		inc.linkFlows[lid] = append(inc.linkFlows[lid], h)
	}
	inc.roundOf(f.Priority).count++
}

// unregister drops a handle from every index. The caller must have
// uncommitted its rate first.
func (inc *Incremental) unregister(h Handle) {
	f := &inc.flows[h]
	for _, lid := range f.Phi.Links {
		fl := inc.linkFlows[lid]
		for i, o := range fl {
			if o == h {
				fl[i] = fl[len(fl)-1]
				inc.linkFlows[lid] = fl[:len(fl)-1]
				break
			}
		}
	}
	r := inc.rounds[f.Priority]
	r.count--
	if r.count == 0 {
		// The last member's contribution was subtracted term by term, which
		// can strand float dust; an empty class carries exactly zero load.
		for i := range r.load {
			r.load[i] = 0
		}
		delete(inc.rounds, f.Priority)
		inc.spare = r
		for i, p := range inc.prios {
			if p == f.Priority {
				inc.prios = append(inc.prios[:i], inc.prios[i+1:]...)
				break
			}
		}
	}
	inc.alive[h] = false
	inc.live--
}

// uncommit subtracts a flow's committed rate from its class's link loads
// and marks those links dirty.
func (inc *Incremental) uncommit(h Handle) {
	f := &inc.flows[h]
	r := inc.rounds[f.Priority]
	if rate := inc.rates[h]; rate != 0 {
		for j, lid := range f.Phi.Links {
			r.load[lid] -= rate * f.Phi.Frac[j]
		}
	}
	inc.markDirty(f.Phi.Links)
	inc.rates[h] = 0
}

// roundOf returns (creating if needed) the state of one priority class.
// Emptied rounds are recycled through `spare`: a class draining and refilling
// (e.g. the last default-priority flow finishing before the next arrives)
// would otherwise reallocate the per-link load vector every cycle.
func (inc *Incremental) roundOf(p uint8) *incRound {
	r := inc.rounds[p]
	if r == nil {
		if inc.spare != nil {
			r, inc.spare = inc.spare, nil // load already zeroed by unregister
		} else {
			r = &incRound{load: make([]float64, inc.cfg.NumLinks)}
		}
		inc.rounds[p] = r
		// Insert p keeping prios descending (classes are few; a bubble pass
		// beats sort.Slice's closure allocation).
		inc.prios = append(inc.prios, p)
		for i := len(inc.prios) - 1; i > 0 && inc.prios[i] > inc.prios[i-1]; i-- {
			inc.prios[i], inc.prios[i-1] = inc.prios[i-1], inc.prios[i]
		}
	}
	return r
}

func (inc *Incremental) markDirty(links []topology.LinkID) {
	for _, lid := range links {
		if !inc.inDirty[lid] {
			inc.inDirty[lid] = true
			inc.dirty = append(inc.dirty, lid)
		}
	}
}

func (inc *Incremental) clearDirty() {
	for _, lid := range inc.dirty {
		inc.inDirty[lid] = false
	}
	inc.dirty = inc.dirty[:0]
}

func (inc *Incremental) check(h Handle) {
	if h < 0 || int(h) >= len(inc.flows) || !inc.alive[h] {
		panic(fmt.Sprintf("waterfill: dead or unknown handle %d", h))
	}
}

// rateChanged reports whether a re-solved rate moved beyond float noise.
func rateChanged(old, now float64) bool {
	if old == now {
		return false
	}
	return math.Abs(now-old) > rateChangeTol*math.Max(math.Abs(old), math.Abs(now))
}

func ensureLen(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
