// Emurack: run a live emulated rack (the in-process Maze substitute of
// §4.1) end to end. Every node runs the full R2C2 user-space stack —
// broadcast trees, traffic-matrix views, periodic rate computation and
// per-flow token buckets — over goroutine-and-channel virtual links, with
// packets in the real wire format forwarded zero-copy.
//
//	go run ./examples/emurack
package main

import (
	"fmt"
	"log"
	"time"

	"r2c2/internal/emu"
	"r2c2/internal/routing"
	"r2c2/internal/topology"
)

func main() {
	g, err := topology.NewTorus(4, 2) // the paper's Maze deployment: 4x4 2D torus
	if err != nil {
		log.Fatal(err)
	}
	rack, err := emu.New(emu.Config{
		Graph:     g,
		LinkMbps:  200, // scaled-down virtual links (Maze used 5 Gbps on RDMA)
		Headroom:  0.05,
		Recompute: 2 * time.Millisecond,
		Protocol:  routing.RPS,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	rack.Start()
	defer rack.Stop()

	fmt.Printf("emulated rack up: %d nodes, %d virtual links at 200 Mbps\n",
		g.Nodes(), g.NumLinks())

	// Phase 1: a lone flow gets the fabric to itself.
	solo, err := rack.StartFlow(0, 5, 2<<20, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := solo.Wait(time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solo flow: %.1f Mbps, FCT %v\n",
		solo.Throughput()/1e6, solo.FCT().Round(time.Millisecond))

	// Phase 2: three flows share a bottleneck; broadcast-driven visibility
	// splits it fairly with no probing and no switch support.
	var sharing []*emu.Flow
	for i := 0; i < 3; i++ {
		f, err := rack.StartFlow(0, 5, 2<<20, 1, 0)
		if err != nil {
			log.Fatal(err)
		}
		sharing = append(sharing, f)
	}
	for i, f := range sharing {
		if err := f.Wait(time.Minute); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shared flow %d: %.1f Mbps, FCT %v\n",
			i, f.Throughput()/1e6, f.FCT().Round(time.Millisecond))
	}
	fmt.Printf("packets dropped across the rack: %d\n", rack.Drops())
}
