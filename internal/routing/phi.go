package routing

import (
	"sort"

	"r2c2/internal/topology"
)

// phiRPS computes the exact per-link fractions of random packet spraying:
// at every hop the packet picks uniformly among the minimal successors, so
// link fractions follow from propagating unit probability mass down the
// minimal-route DAG in decreasing distance-to-destination order.
func (t *Table) phiRPS(src, dst topology.NodeID) Phi {
	dense := make(map[topology.LinkID]float64)
	t.sprayMass(src, dst, 1.0, dense)
	return sparsify(dense)
}

// sprayMass adds `mass` units of RPS traffic from src to dst into dense.
func (t *Table) sprayMass(src, dst topology.NodeID, mass float64, dense map[topology.LinkID]float64) {
	if src == dst || mass == 0 {
		return
	}
	succ := t.successors(dst)
	d0 := t.g.Dist(src, dst)
	// Bucket DAG nodes by distance to dst; propagate from d0 down to 1.
	nodeMass := map[topology.NodeID]float64{src: mass}
	frontier := []topology.NodeID{src}
	for d := d0; d >= 1; d-- {
		var next []topology.NodeID
		seen := make(map[topology.NodeID]bool)
		for _, v := range frontier {
			m := nodeMass[v]
			links := succ[v]
			share := m / float64(len(links))
			for _, lid := range links {
				dense[lid] += share
				to := t.g.Link(lid).To
				if to != dst {
					if !seen[to] {
						seen[to] = true
						next = append(next, to)
					}
					nodeMass[to] += share
				}
			}
			delete(nodeMass, v)
		}
		frontier = next
	}
}

// phiDOR computes the single deterministic destination-tag path: dimension-
// order routing on cube topologies (correct dimension 0 first, short way
// around each ring, ties positive), and the lowest-port minimal path on
// other graphs.
func (t *Table) phiDOR(src, dst topology.NodeID) Phi {
	path := t.dorPath(src, dst)
	phi := Phi{Links: path, Frac: make([]float64, len(path))}
	for i := range phi.Frac {
		phi.Frac[i] = 1
	}
	return phi
}

// dorPath returns the deterministic DOR path as a link sequence.
func (t *Table) dorPath(src, dst topology.NodeID) []topology.LinkID {
	var path []topology.LinkID
	at := src
	for at != dst {
		lid := t.dorNext(at, dst)
		path = append(path, lid)
		at = t.g.Link(lid).To
	}
	return path
}

// dorNext returns the next DOR hop from v toward dst. On a degraded fabric
// the coordinate walk may hit a failed link, so it falls back to the
// deterministic minimal-successor rule (§3.2 failures leave routing to the
// surviving minimal DAG).
func (t *Table) dorNext(v, dst topology.NodeID) topology.LinkID {
	g := t.g
	if g.Radix() > 0 && !g.Degraded() { // cube graph: dimension-order
		cv := g.Coord(v)
		var off []int
		if g.Kind() == topology.KindTorus {
			off = g.TorusOffset(v, dst)
		} else {
			cd := g.Coord(dst)
			//lint:ignore alloc-hotpath dims-bounded mesh-offset scratch at route-build time; sim interns DOR routes per flow
			off = make([]int, g.Dims())
			for d := range off {
				off[d] = cd[d] - cv[d]
			}
		}
		for d := 0; d < g.Dims(); d++ {
			if off[d] == 0 {
				continue
			}
			step := 1
			if off[d] < 0 {
				step = -1
			}
			//lint:ignore alloc-hotpath dims-bounded coordinate scratch at route-build time, not per forwarded packet
			next := make([]int, g.Dims())
			copy(next, cv)
			next[d] = ((cv[d]+step)%g.Radix() + g.Radix()) % g.Radix()
			lid, ok := g.LinkBetween(v, g.NodeAt(next))
			if !ok {
				panic("routing: missing cube link")
			}
			return lid
		}
		panic("routing: dorNext called with v == dst")
	}
	// General graph: deterministic minimal successor with smallest link ID.
	succ := t.successors(dst)[v]
	if len(succ) == 0 {
		panic("routing: no minimal successor")
	}
	best := succ[0]
	for _, lid := range succ[1:] {
		if lid < best {
			best = lid
		}
	}
	return best
}

// phiVLB computes Valiant load balancing fractions. A VLB packet picks a
// uniformly random waypoint w and is spray-routed minimally src→w then
// w→dst, so
//
//	φ(s,d) = (1/N)·Σ_w [φRPS(s,w) + φRPS(w,d)].
//
// The second marginal is one mass-propagation pass over the DAG toward d;
// the first is cached per source (§4.2 precomputes per-destination weight
// lists the same way).
func (t *Table) phiVLB(src, dst topology.NodeID) Phi {
	srcVec := t.vlbSrcVec(src)
	dstVec := t.vlbDstVec(dst)
	dense := make(map[topology.LinkID]float64)
	for lid, f := range srcVec {
		if f != 0 {
			dense[topology.LinkID(lid)] += f
		}
	}
	for lid, f := range dstVec {
		if f != 0 {
			dense[topology.LinkID(lid)] += f
		}
	}
	return sparsify(dense)
}

// vlbSrcVec returns (caching) the dense per-link vector (1/N)·Σ_w φRPS(s,w).
func (t *Table) vlbSrcVec(s topology.NodeID) []float64 {
	t.mu.RLock()
	v, ok := t.vlbSrc[s]
	t.mu.RUnlock()
	if ok {
		return v
	}
	n := t.g.Nodes()
	dense := make(map[topology.LinkID]float64)
	for w := 0; w < n; w++ {
		if topology.NodeID(w) == s {
			continue
		}
		t.sprayMass(s, topology.NodeID(w), 1/float64(n), dense)
	}
	vec := make([]float64, t.g.NumLinks())
	for lid, f := range dense {
		vec[lid] = f
	}
	t.mu.Lock()
	t.vlbSrc[s] = vec
	t.mu.Unlock()
	return vec
}

// vlbDstVec returns (caching) the dense per-link vector (1/N)·Σ_w φRPS(w,d),
// computed with a single propagation pass: every node starts with 1/N mass
// and all mass drains down the minimal DAG toward d.
func (t *Table) vlbDstVec(d topology.NodeID) []float64 {
	t.mu.RLock()
	v, ok := t.vlbDst[d]
	t.mu.RUnlock()
	if ok {
		return v
	}
	g := t.g
	n := g.Nodes()
	succ := t.successors(d)
	vec := make([]float64, g.NumLinks())
	// Group vertices by distance to d, farthest first.
	maxD := 0
	for v := 0; v < g.Vertices(); v++ {
		if dd := g.Dist(topology.NodeID(v), d); dd > maxD {
			maxD = dd
		}
	}
	byDist := make([][]topology.NodeID, maxD+1)
	for v := 0; v < g.Vertices(); v++ {
		if dd := g.Dist(topology.NodeID(v), d); dd > 0 {
			byDist[dd] = append(byDist[dd], topology.NodeID(v))
		}
	}
	mass := make([]float64, g.Vertices())
	for w := 0; w < n; w++ { // only endpoint nodes source VLB waypoint traffic
		if topology.NodeID(w) != d {
			mass[w] = 1 / float64(n)
		}
	}
	for dd := maxD; dd >= 1; dd-- {
		for _, v := range byDist[dd] {
			m := mass[v]
			if m == 0 {
				continue
			}
			links := succ[v]
			share := m / float64(len(links))
			for _, lid := range links {
				vec[lid] += share
				mass[g.Link(lid).To] += share
			}
		}
	}
	t.mu.Lock()
	t.vlbDst[d] = vec
	t.mu.Unlock()
	return vec
}

// phiWLB computes the locality-preserving weighted load balancing of Singh
// et al. [44], the paper's WLB: in every torus dimension the packet travels
// the minimal direction with probability (k-δ)/k and the long way around
// with probability δ/k (δ = minimal hop count in that dimension), then
// routes minimally inside the chosen "quadrant" with uniform spraying. This
// biases path selection in proportion to path length, sitting between
// minimal routing and VLB (§2.2.1). On non-torus graphs WLB degenerates to
// RPS.
func (t *Table) phiWLB(src, dst topology.NodeID) Phi {
	g := t.g
	if g.Kind() != topology.KindTorus || g.Degraded() {
		return t.phiRPS(src, dst)
	}
	off := g.TorusOffset(src, dst)
	k := g.Radix()
	dims := g.Dims()

	type dimChoice struct {
		dir  int     // +1 or -1 coordinate step
		hops int     // hops to travel in this dimension
		prob float64 // probability of this choice
	}
	choices := make([][]dimChoice, dims)
	for d := 0; d < dims; d++ {
		delta := off[d]
		mag := delta
		dir := 1
		if delta < 0 {
			mag = -delta
			dir = -1
		}
		if mag == 0 {
			choices[d] = []dimChoice{{dir: 1, hops: 0, prob: 1}}
			continue
		}
		short := dimChoice{dir: dir, hops: mag, prob: float64(k-mag) / float64(k)}
		long := dimChoice{dir: -dir, hops: k - mag, prob: float64(mag) / float64(k)}
		choices[d] = []dimChoice{short, long}
	}

	dense := make(map[topology.LinkID]float64)
	// Enumerate quadrants (product of per-dimension choices).
	idx := make([]int, dims)
	for {
		prob := 1.0
		dirs := make([]int, dims)
		hops := make([]int, dims)
		for d := 0; d < dims; d++ {
			c := choices[d][idx[d]]
			prob *= c.prob
			dirs[d] = c.dir
			hops[d] = c.hops
		}
		if prob > 0 {
			t.quadrantMass(src, dirs, hops, prob, dense)
		}
		// Advance the mixed-radix counter.
		d := 0
		for d < dims {
			idx[d]++
			if idx[d] < len(choices[d]) {
				break
			}
			idx[d] = 0
			d++
		}
		if d == dims {
			break
		}
	}
	return sparsify(dense)
}

// quadrantMass propagates `mass` units from src through the quadrant DAG
// where the packet must travel hops[d] steps in coordinate direction
// dirs[d] for each dimension, choosing uniformly at every hop among
// dimensions with remaining travel.
func (t *Table) quadrantMass(src topology.NodeID, dirs, hops []int, mass float64, dense map[topology.LinkID]float64) {
	g := t.g
	k := g.Radix()
	dims := g.Dims()
	// State space: remaining hop vector r, 0 <= r[d] <= hops[d]. Encode as a
	// mixed-radix index. Process states in decreasing total remaining hops.
	size := 1
	stride := make([]int, dims)
	for d := 0; d < dims; d++ {
		stride[d] = size
		size *= hops[d] + 1
	}
	stateMass := make([]float64, size)
	start := size - 1 // r == hops in every dimension
	stateMass[start] = mass
	total := 0
	for _, h := range hops {
		total += h
	}
	srcCoord := g.Coord(src)

	// Enumerate states grouped by total remaining hops, descending.
	r := make([]int, dims)
	coord := make([]int, dims)
	byRemaining := make([][]int, total+1)
	for s := 0; s < size; s++ {
		rem := 0
		x := s
		for d := 0; d < dims; d++ {
			rd := x % (hops[d] + 1)
			x /= hops[d] + 1
			rem += rd
		}
		byRemaining[rem] = append(byRemaining[rem], s)
	}
	for rem := total; rem >= 1; rem-- {
		for _, s := range byRemaining[rem] {
			m := stateMass[s]
			if m == 0 {
				continue
			}
			// Decode remaining vector and current coordinates.
			x := s
			active := 0
			for d := 0; d < dims; d++ {
				r[d] = x % (hops[d] + 1)
				x /= hops[d] + 1
				coord[d] = ((srcCoord[d]+dirs[d]*(hops[d]-r[d]))%k + k) % k
				if r[d] > 0 {
					active++
				}
			}
			share := m / float64(active)
			from := g.NodeAt(coord)
			for d := 0; d < dims; d++ {
				if r[d] == 0 {
					continue
				}
				next := coord[d]
				coord[d] = ((coord[d]+dirs[d])%k + k) % k
				lid, ok := g.LinkBetween(from, g.NodeAt(coord))
				coord[d] = next
				if !ok {
					panic("routing: missing torus link in quadrant walk")
				}
				dense[lid] += share
				stateMass[s-stride[d]] += share
			}
		}
	}
}

// sparsify converts a dense link->fraction map into a Phi with links in
// ascending order (deterministic output for tests and caching).
func sparsify(dense map[topology.LinkID]float64) Phi {
	phi := Phi{
		Links: make([]topology.LinkID, 0, len(dense)),
		Frac:  make([]float64, 0, len(dense)),
	}
	for lid := range dense {
		phi.Links = append(phi.Links, lid)
	}
	sort.Slice(phi.Links, func(i, j int) bool { return phi.Links[i] < phi.Links[j] })
	for _, lid := range phi.Links {
		phi.Frac = append(phi.Frac, dense[lid])
	}
	return phi
}
