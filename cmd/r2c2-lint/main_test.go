package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRules(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rules"}, &out); err != nil {
		t.Fatalf("run -rules: %v", err)
	}
	for _, rule := range []string{"no-wallclock", "no-global-rand", "mutex-by-value", "goroutine-leak", "unit-suffix"} {
		if !strings.Contains(out.String(), rule) {
			t.Fatalf("rule listing missing %q:\n%s", rule, out.String())
		}
	}
}

func TestRunFindsViolations(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module example.com/fake\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "sim")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package sim\nimport \"time\"\nfunc now() int64 { return time.Now().UnixNano() }\n"
	if err := os.WriteFile(filepath.Join(dir, "clock.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err := run([]string{"-json", root + "/..."}, &out)
	if err == nil {
		t.Fatal("lint of a violating tree should exit non-zero")
	}
	if _, ok := err.(errFindings); !ok {
		t.Fatalf("want errFindings, got %T: %v", err, err)
	}
	if !strings.Contains(out.String(), "no-wallclock") {
		t.Fatalf("JSON output missing the finding:\n%s", out.String())
	}
}
