package analysis

import "go/ast"

// globalRandFuncs are the math/rand (and math/rand/v2) top-level functions
// that draw from the shared global source. rand.New, rand.NewSource and
// rand.NewZipf construct seeded generators and stay legal — threading a
// seeded *rand.Rand is exactly what this rule wants.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 names.
	"N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true,
}

// noGlobalRand forbids the global math/rand source in deterministic
// packages: it is process-wide, mutated by any package, and unseeded, so
// two runs with the same experiment seed produce different workloads.
type noGlobalRand struct{ pkgScope }

// NewNoGlobalRand builds the no-global-rand rule scoped to the given
// package path suffixes (empty = all packages).
func NewNoGlobalRand(pkgs ...string) Analyzer { return &noGlobalRand{pkgScope{pkgs}} }

func (*noGlobalRand) Name() string { return "no-global-rand" }
func (*noGlobalRand) Doc() string {
	return "forbid the global math/rand source in deterministic packages; thread a seeded *rand.Rand"
}

func (a *noGlobalRand) Check(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pass.Files {
		randName := importName(f, "math/rand")
		if randName == "" {
			randName = importName(f, "math/rand/v2")
		}
		if randName == "" || randName == "." || randName == "_" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == randName && globalRandFuncs[sel.Sel.Name] {
				diags = append(diags, pass.Diag(a.Name(), call,
					"global rand.%s in deterministic package %s; thread a seeded *rand.Rand",
					sel.Sel.Name, pass.Path))
			}
			return true
		})
	}
	return diags
}
