// Package core implements the R2C2 control plane (§3): the per-node view
// of the rack's global traffic matrix maintained from flow-event
// broadcasts, the local rate computation that turns that view into
// max-min fair sending rates, and the demand estimator for host-limited
// flows.
//
// The central idea of the paper is that global visibility — every node
// knows every active flow — turns distributed congestion control into a
// local computation: no probing, no switch support, no per-flow queues on
// path. A View is exactly that visibility; a RateComputer is exactly that
// computation.
package core

import (
	"fmt"
	"sort"
	"time"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/stats"
	"r2c2/internal/topology"
	"r2c2/internal/waterfill"
	"r2c2/internal/wire"
)

// UnlimitedDemand is the broadcast demand field value meaning "network
// limited" (no host-side cap).
const UnlimitedDemand uint32 = 0xFFFFFFFF

// FlowInfo is one entry of a node's traffic-matrix view: everything a
// broadcast announces about a flow (§3.2, Figure 6).
type FlowInfo struct {
	ID         wire.FlowID
	Src, Dst   topology.NodeID
	Weight     uint8
	Priority   uint8
	DemandKbps uint32 // UnlimitedDemand if network-limited
	Protocol   routing.Protocol
}

// DemandBits returns the demand in bits/s, or waterfill.Unlimited.
func (f *FlowInfo) DemandBits() float64 {
	if f.DemandKbps == UnlimitedDemand {
		return waterfill.Unlimited
	}
	return float64(f.DemandKbps) * 1e3
}

// StartBroadcast builds the 16-byte broadcast announcing this flow's start,
// to be routed along the given spanning tree.
func (f *FlowInfo) StartBroadcast(tree uint8) *wire.Broadcast {
	return f.broadcast(wire.EventFlowStart, tree)
}

// FinishBroadcast builds the broadcast announcing this flow's termination.
func (f *FlowInfo) FinishBroadcast(tree uint8) *wire.Broadcast {
	return f.broadcast(wire.EventFlowFinish, tree)
}

// DemandBroadcast builds the broadcast announcing a demand change.
func (f *FlowInfo) DemandBroadcast(tree uint8) *wire.Broadcast {
	return f.broadcast(wire.EventDemandUpdate, tree)
}

// RouteChangeBroadcast builds the broadcast announcing a routing-protocol
// change decided by the selection heuristic (§3.4).
func (f *FlowInfo) RouteChangeBroadcast(tree uint8) *wire.Broadcast {
	return f.broadcast(wire.EventRouteChange, tree)
}

func (f *FlowInfo) broadcast(ev wire.EventKind, tree uint8) *wire.Broadcast {
	//lint:ignore alloc-hotpath one header per flow event (start/finish/demand), never per data packet
	return &wire.Broadcast{
		Event:      ev,
		Src:        uint16(f.Src),
		Dst:        uint16(f.Dst),
		FlowSeq:    f.ID.Seq(),
		Weight:     f.Weight,
		Priority:   f.Priority,
		DemandKbps: f.DemandKbps,
		Tree:       tree,
		RP:         uint8(f.Protocol),
	}
}

// View is one node's local picture of the rack's traffic matrix, built
// purely from flow-event broadcasts (§3.1). Views at different nodes can
// temporarily diverge while broadcasts are in flight; the bandwidth
// headroom absorbs that (§3.3.2).
//
// A View maintains an order-independent hash of its contents so that
// callers (the simulator's recomputation scheduler) can cheaply detect
// that two nodes hold identical views and share one rate computation.
type View struct {
	flows   map[wire.FlowID]FlowInfo
	version uint64
	hash    uint64
}

// NewView returns an empty view.
func NewView() *View {
	return &View{flows: make(map[wire.FlowID]FlowInfo)}
}

// Len returns the number of flows in the view.
func (v *View) Len() int { return len(v.flows) }

// Version returns a counter incremented on every mutation.
func (v *View) Version() uint64 { return v.version }

// Hash returns an order-independent digest of the view's contents: two
// views with equal flow sets have equal hashes.
func (v *View) Hash() uint64 { return v.hash }

// Get returns the view's entry for a flow.
func (v *View) Get(id wire.FlowID) (FlowInfo, bool) {
	f, ok := v.flows[id]
	return f, ok
}

// Apply folds one broadcast event into the view. Duplicate starts and
// finishes for unknown flows are tolerated (broadcasts can be retransmitted
// after drops, §3.2 "Failures") and reported as no-ops.
func (v *View) Apply(b *wire.Broadcast) error {
	id := b.Flow()
	info := FlowInfo{
		ID:         id,
		Src:        topology.NodeID(b.Src),
		Dst:        topology.NodeID(b.Dst),
		Weight:     b.Weight,
		Priority:   b.Priority,
		DemandKbps: b.DemandKbps,
		Protocol:   routing.Protocol(b.RP),
	}
	switch b.Event {
	case wire.EventFlowStart:
		v.upsert(info)
	case wire.EventFlowFinish:
		v.remove(id)
	case wire.EventDemandUpdate, wire.EventRouteChange:
		old, ok := v.flows[id]
		if !ok {
			// An update racing a finish; drop it.
			return nil
		}
		if b.Event == wire.EventDemandUpdate {
			old.DemandKbps = b.DemandKbps
		} else {
			old.Protocol = routing.Protocol(b.RP)
		}
		v.upsert(old)
	default:
		//lint:ignore alloc-hotpath error path: unknown broadcast events are rejected, not processed
		return fmt.Errorf("core: unknown broadcast event %v", b.Event)
	}
	return nil
}

// AddFlow inserts a locally originated flow (the sender updates its own
// view immediately; the broadcast informs everyone else).
func (v *View) AddFlow(info FlowInfo) { v.upsert(info) }

// RemoveFlow removes a locally terminated flow.
func (v *View) RemoveFlow(id wire.FlowID) { v.remove(id) }

func (v *View) upsert(info FlowInfo) {
	if old, ok := v.flows[info.ID]; ok {
		v.hash ^= flowHash(old)
	}
	v.flows[info.ID] = info
	v.hash ^= flowHash(info)
	v.version++
}

func (v *View) remove(id wire.FlowID) {
	old, ok := v.flows[id]
	if !ok {
		return
	}
	v.hash ^= flowHash(old)
	delete(v.flows, id)
	v.version++
}

// Flows returns the view's entries sorted by flow ID, so every node
// enumerates an identical view in an identical order — a requirement for
// all nodes converging on the same allocation (§3.3).
func (v *View) Flows() []FlowInfo {
	out := make([]FlowInfo, 0, len(v.flows))
	for _, f := range v.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// flowHash digests one flow entry for the order-independent view hash.
func flowHash(f FlowInfo) uint64 {
	h := uint64(f.ID)<<32 | uint64(f.DemandKbps)
	h ^= uint64(f.Weight)<<8 | uint64(f.Priority)<<16 | uint64(f.Protocol)<<24
	// splitmix64 finalizer.
	h += 0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// DemandSummary is a mergeable plain-data projection of a View: the flow
// entries sorted by flow ID plus the same order-independent digest a View
// of that flow set would report. The sharded simulator's aggregated control
// plane (DESIGN.md §15) builds one per shard from the flows the shard's
// racks source and tree-reduces them into a single global summary per
// recomputation tick; because flow IDs embed their source node, per-shard
// sourced sets are disjoint and the reduction is an exact sorted merge.
//
// A DemandSummary is plain data with no pointers into simulator state, so
// it can cross a shard barrier by value semantics (//r2c2:boundary in the
// sim package). It is not safe for concurrent mutation.
type DemandSummary struct {
	Flows []FlowInfo // sorted by flow ID
	Hash  uint64     // XOR of flowHash over Flows; equals View.Hash() of the same set

	scratch []FlowInfo // merge buffer, reused across ticks
}

// Reset empties the summary, retaining capacity for the next tick.
func (s *DemandSummary) Reset() {
	s.Flows = s.Flows[:0]
	s.Hash = 0
}

// Add appends one flow entry. Entries must arrive in strictly ascending
// flow-ID order (the caller walks nodes ascending and each node's flows
// sorted, which — with source-node-prefixed IDs — is exactly that order);
// a violation means the aggregation invariant broke, so it panics rather
// than silently producing a summary no View could hash to.
func (s *DemandSummary) Add(f FlowInfo) {
	if n := len(s.Flows); n > 0 && s.Flows[n-1].ID >= f.ID {
		panic("core: DemandSummary.Add out of order — sourced flow sets must be disjoint and sorted")
	}
	s.Flows = append(s.Flows, f)
	s.Hash ^= flowHash(f)
}

// Merge folds another summary into this one: a sorted merge of the flow
// lists and an XOR of the digests. The two summaries must cover disjoint
// flow sets (distinct source shards guarantee it); a shared flow ID panics.
func (s *DemandSummary) Merge(o *DemandSummary) {
	if len(o.Flows) == 0 {
		return
	}
	merged := s.scratch[:0]
	i, j := 0, 0
	for i < len(s.Flows) && j < len(o.Flows) {
		switch {
		case s.Flows[i].ID < o.Flows[j].ID:
			merged = append(merged, s.Flows[i])
			i++
		case o.Flows[j].ID < s.Flows[i].ID:
			merged = append(merged, o.Flows[j])
			j++
		default:
			panic("core: DemandSummary.Merge saw the same flow in two shards")
		}
	}
	merged = append(merged, s.Flows[i:]...)
	merged = append(merged, o.Flows[j:]...)
	// Swap buffers so the next merge reuses the old flow slice as scratch.
	s.scratch = s.Flows[:0]
	s.Flows = merged
	s.Hash ^= o.Hash
}

// Allocation is the result of one rate computation: rates in bits/s,
// indexed by flow ID.
type Allocation struct {
	Rates map[wire.FlowID]float64
	// ViewHash identifies the view the allocation was computed from.
	ViewHash uint64
}

// Rate returns the allocated rate for a flow (0 if absent).
func (a *Allocation) Rate(id wire.FlowID) float64 { return a.Rates[id] }

// DefaultRho is the rate-recomputation batching interval ρ (§3.3.2): flow
// events arriving within one ρ are folded into a single recomputation. The
// paper budgets 500 µs against the measured per-recomputation cost of
// Figure 8; the simulator adopts it directly and the wall-clock emulator
// scales it up to absorb scheduler jitter.
const DefaultRho = 500 * time.Microsecond

// RateComputer turns a View into rate allocations using the routing
// φ-vectors and the water-filling allocator. One RateComputer can be shared
// by all nodes that share a topology (the computation is a pure function of
// the view), which is how the simulator amortises recomputation across
// nodes holding identical views.
//
// Compute is delta-driven: it retains the previous view's flow set and an
// incremental allocator, diffs the new view against it, and replays only
// the difference — the common ρ-tick case of a handful of flow events
// re-solves only the priority rounds and links the events reach, while
// unaffected flows keep their frozen rates. ComputeFull is the from-scratch
// path, kept as the correctness reference (the randomized oracle in
// waterfill holds the two equivalent) and for callers that must not
// perturb the delta state.
//
// A RateComputer is not safe for concurrent use; the emulator gives each
// node its own.
type RateComputer struct {
	tab   *routing.Table
	alloc *waterfill.Allocator   // from-scratch reference engine
	inc   *waterfill.Incremental // delta-driven hot-path engine

	// prev is the flow set the incremental allocator currently embodies,
	// sorted by flow ID; handles parallels it.
	prev    []FlowInfo
	handles []waterfill.Handle
	last    *Allocation // allocation for prev (ViewHash shortcut)

	// scratch, reused across computations
	specs []waterfill.Flow
	ids   []wire.FlowID

	// Observability for the Figure 8 harness: Rebuilds counts full
	// from-scratch loads of the incremental state, DeltaEvents the flow
	// events replayed incrementally, CacheHits the computations answered by
	// the ViewHash shortcut alone.
	Rebuilds    uint64
	DeltaEvents uint64
	CacheHits   uint64
}

// NewRateComputer builds a computer for the given topology, link capacity
// in bits/s and headroom fraction (§3.3.2 uses 5%).
func NewRateComputer(tab *routing.Table, capacityBits float64, headroom float64) *RateComputer {
	cfg := waterfill.Config{
		NumLinks: tab.Graph().NumLinks(),
		Capacity: capacityBits,
		Headroom: headroom,
	}
	return &RateComputer{
		tab:   tab,
		alloc: waterfill.NewAllocator(cfg),
		inc:   waterfill.NewIncremental(cfg),
	}
}

// Table returns the routing table the computer uses.
func (rc *RateComputer) Table() *routing.Table { return rc.tab }

// spec translates one view entry into an allocation request. Flows whose
// source and destination coincide are host-local and carry no φ-vector.
func (rc *RateComputer) spec(f *FlowInfo) waterfill.Flow {
	s := waterfill.Flow{
		Weight:   float64(f.Weight),
		Priority: f.Priority,
		Demand:   f.DemandBits(),
	}
	if f.Src != f.Dst {
		s.Phi = rc.tab.Phi(f.Protocol, f.Src, f.Dst)
	}
	return s
}

// Compute returns the allocation for the view, reusing as much of the
// previous computation as the view diff allows: an identical ViewHash
// returns the cached allocation outright, a small diff replays the changed
// flows through the incremental allocator, and a diff touching more than a
// quarter of the view (or the first call) falls back to one from-scratch
// rebuild. Each node then rate-limits its own flows to their allocated
// values (§3.3).
func (rc *RateComputer) Compute(v *View) *Allocation {
	if rc.last != nil && rc.last.ViewHash == v.Hash() && len(rc.prev) == v.Len() {
		rc.CacheHits++
		return rc.last
	}
	return rc.computeSorted(v.Flows(), v.Hash())
}

// ComputeSummary is Compute over a tree-reduced DemandSummary instead of a
// View: the aggregated control plane's global rate computation. The summary
// already holds the flows sorted by ID with the matching digest, so the two
// paths produce bit-identical allocations for equal flow sets — which is
// what lets the sharded oracle demand byte-identical Results. The flow
// slice is cloned because the delta state retains it across calls while the
// caller rebuilds the summary every tick.
func (rc *RateComputer) ComputeSummary(s *DemandSummary) *Allocation {
	if rc.last != nil && rc.last.ViewHash == s.Hash && len(rc.prev) == len(s.Flows) {
		rc.CacheHits++
		return rc.last
	}
	return rc.computeSorted(append([]FlowInfo(nil), s.Flows...), s.Hash)
}

// computeSorted is the shared delta-driven body of Compute and
// ComputeSummary: cur must be sorted by flow ID, hash its order-independent
// digest, and ownership of cur transfers to the computer.
func (rc *RateComputer) computeSorted(cur []FlowInfo, hash uint64) *Allocation {
	// Count the diff first: both slices are sorted by flow ID, so a
	// two-pointer sweep enumerates adds, removes and updates
	// deterministically (no map-iteration order anywhere on this path).
	changes := 0
	for i, j := 0, 0; i < len(rc.prev) || j < len(cur); {
		switch {
		case j == len(cur) || (i < len(rc.prev) && rc.prev[i].ID < cur[j].ID):
			changes++
			i++
		case i == len(rc.prev) || cur[j].ID < rc.prev[i].ID:
			changes++
			j++
		default:
			if rc.prev[i] != cur[j] {
				changes++
			}
			i++
			j++
		}
	}

	if rc.last == nil || changes*4 > len(cur) {
		rc.rebuild(cur)
	} else {
		rc.DeltaEvents += uint64(changes)
		// Replay the diff. Removes and updates reference prev's handles;
		// adds append to a fresh handle list built alongside.
		handles := make([]waterfill.Handle, 0, len(cur))
		i, j := 0, 0
		for i < len(rc.prev) || j < len(cur) {
			switch {
			case j == len(cur) || (i < len(rc.prev) && rc.prev[i].ID < cur[j].ID):
				rc.inc.Remove(rc.handles[i])
				i++
			case i == len(rc.prev) || cur[j].ID < rc.prev[i].ID:
				handles = append(handles, rc.inc.Add(rc.spec(&cur[j])))
				j++
			default:
				if rc.prev[i] != cur[j] {
					rc.inc.Update(rc.handles[i], rc.spec(&cur[j]))
				}
				handles = append(handles, rc.handles[i])
				i++
				j++
			}
		}
		rc.handles = handles
	}
	rc.prev = cur

	out := &Allocation{Rates: make(map[wire.FlowID]float64, len(cur)), ViewHash: hash}
	for i := range cur {
		out.Rates[cur[i].ID] = rc.inc.Rate(rc.handles[i])
	}
	rc.last = out
	return out
}

// rebuild bulk-loads the incremental allocator from a full flow set.
func (rc *RateComputer) rebuild(cur []FlowInfo) {
	rc.Rebuilds++
	rc.specs = rc.specs[:0]
	for i := range cur {
		rc.specs = append(rc.specs, rc.spec(&cur[i]))
	}
	rc.handles = rc.inc.Rebuild(rc.specs)
}

// ComputeFull runs the water-filling from scratch over every flow in the
// view, bypassing and leaving untouched the incremental state. It is the
// correctness reference for Compute and the cost baseline the Figure 8
// harness reports against.
func (rc *RateComputer) ComputeFull(v *View) *Allocation {
	flows := v.Flows()
	rc.specs = rc.specs[:0]
	rc.ids = rc.ids[:0]
	for i := range flows {
		rc.specs = append(rc.specs, rc.spec(&flows[i]))
		rc.ids = append(rc.ids, flows[i].ID)
	}
	rates := rc.alloc.Allocate(rc.specs)
	out := &Allocation{Rates: make(map[wire.FlowID]float64, len(rates)), ViewHash: v.Hash()}
	for i, id := range rc.ids {
		out.Rates[id] = rates[i]
	}
	return out
}

// DemandEstimator implements §3.3.2 Eq. (1): a flow's demand for the next
// period is its current allocation plus the sender-side queue drained over
// one period, smoothed with an EWMA to damp noisy observations.
type DemandEstimator struct {
	period simtime.Time
	ewma   *stats.EWMA
}

// NewDemandEstimator returns an estimator with the given estimation period
// and EWMA smoothing factor (alpha in (0,1]).
func NewDemandEstimator(period simtime.Time, alpha float64) *DemandEstimator {
	if period <= 0 {
		panic("core: non-positive demand estimation period")
	}
	//lint:ignore alloc-hotpath per-flow constructor, amortised over the flow's lifetime
	return &DemandEstimator{period: period, ewma: stats.NewEWMA(alpha)}
}

// Observe feeds one period's observation — the rate currently allocated
// (bits/s) and the sender-side queue occupancy (bits) at period end — and
// returns the smoothed demand estimate d[i+1] = r[i] + q[i]/T in bits/s.
func (e *DemandEstimator) Observe(allocatedBits float64, queuedBits float64) float64 {
	raw := allocatedBits + queuedBits/e.period.Seconds()
	return e.ewma.Update(raw)
}

// Estimate returns the current smoothed demand estimate.
func (e *DemandEstimator) Estimate() float64 { return e.ewma.Value() }

// KbpsDemand converts a bits/s demand estimate to the Kbps wire field,
// saturating at the 4 Tbps the format can carry.
func KbpsDemand(bits float64) uint32 {
	if bits < 0 {
		return 0
	}
	k := bits / 1e3
	if k >= float64(UnlimitedDemand) {
		return UnlimitedDemand - 1
	}
	return uint32(k)
}
