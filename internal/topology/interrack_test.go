package topology

import "testing"

func twoRacks(t *testing.T) (*Graph, *Graph) {
	t.Helper()
	a, err := NewTorus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTorus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestConnectRacks(t *testing.T) {
	a, b := twoRacks(t)
	g, err := ConnectRacks([]*Graph{a, b}, []Bridge{
		{RackA: 0, NodeA: 0, RackB: 1, NodeB: 0},
		{RackA: 0, NodeA: 4, RackB: 1, NodeB: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 18 {
		t.Fatalf("nodes = %d", g.Nodes())
	}
	if g.Kind() != KindMultiRack {
		t.Fatalf("kind = %v", g.Kind())
	}
	// Intra-rack links plus 2 bridges in both directions.
	if want := a.NumLinks() + b.NumLinks() + 4; g.NumLinks() != want {
		t.Fatalf("links = %d, want %d", g.NumLinks(), want)
	}
	// Cross-rack distance goes via a bridge: node 1 (rack A) to node 9+1
	// (rack B's node 1): 1 -> 0 -> bridge -> 9 -> 10 = 3 hops.
	if d := g.Dist(1, 10); d != 3 {
		t.Fatalf("cross-rack dist = %d, want 3", d)
	}
	// Intra-rack distances are preserved.
	for x := 0; x < a.Nodes(); x++ {
		for y := 0; y < a.Nodes(); y++ {
			da := a.Dist(NodeID(x), NodeID(y))
			if dg := g.Dist(NodeID(x), NodeID(y)); dg > da {
				t.Fatalf("intra-rack dist grew: %d vs %d", dg, da)
			}
		}
	}
	// Coordinate routing is disabled on the combined fabric.
	if g.Radix() != 0 {
		t.Fatal("multi-rack graph should not claim a radix")
	}
}

func TestConnectRacksValidation(t *testing.T) {
	a, b := twoRacks(t)
	cases := map[string]struct {
		racks   []*Graph
		bridges []Bridge
	}{
		"one rack":   {[]*Graph{a}, []Bridge{{RackB: 1}}},
		"no bridges": {[]*Graph{a, b}, nil},
		"rack oob":   {[]*Graph{a, b}, []Bridge{{RackA: 0, RackB: 7}}},
		"same rack":  {[]*Graph{a, b}, []Bridge{{RackA: 1, RackB: 1}}},
		"node oob":   {[]*Graph{a, b}, []Bridge{{RackA: 0, NodeA: 99, RackB: 1}}},
	}
	for name, c := range cases {
		if _, err := ConnectRacks(c.racks, c.bridges); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	clos, err := NewFoldedClos(2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectRacks([]*Graph{a, clos}, []Bridge{{RackA: 0, RackB: 1}}); err == nil {
		t.Error("rack with internal switches accepted")
	}
}
