package waterfill

import (
	"math"
	"math/rand"
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/topology"
)

// phi builds a Phi from (link, fraction) pairs.
func phi(pairs ...float64) routing.Phi {
	p := routing.Phi{}
	for i := 0; i+1 < len(pairs); i += 2 {
		p.Links = append(p.Links, topology.LinkID(pairs[i]))
		p.Frac = append(p.Frac, pairs[i+1])
	}
	return p
}

func netFlow(weight float64) Flow {
	return Flow{Weight: weight, Demand: Unlimited}
}

func TestSingleFlowGetsLink(t *testing.T) {
	a := NewAllocator(Config{NumLinks: 2, Capacity: 10})
	f := netFlow(1)
	f.Phi = phi(0, 1, 1, 1)
	rates := a.Allocate([]Flow{f})
	if math.Abs(rates[0]-10) > 1e-9 {
		t.Fatalf("rate = %v, want 10", rates[0])
	}
}

func TestEqualShare(t *testing.T) {
	a := NewAllocator(Config{NumLinks: 1, Capacity: 9})
	flows := make([]Flow, 3)
	for i := range flows {
		flows[i] = netFlow(1)
		flows[i].Phi = phi(0, 1)
	}
	rates := a.Allocate(flows)
	for i, r := range rates {
		if math.Abs(r-3) > 1e-9 {
			t.Fatalf("flow %d rate = %v, want 3", i, r)
		}
	}
}

func TestWeightedShare(t *testing.T) {
	a := NewAllocator(Config{NumLinks: 1, Capacity: 12})
	f1, f2 := netFlow(1), netFlow(3)
	f1.Phi, f2.Phi = phi(0, 1), phi(0, 1)
	rates := a.Allocate([]Flow{f1, f2})
	if math.Abs(rates[0]-3) > 1e-9 || math.Abs(rates[1]-9) > 1e-9 {
		t.Fatalf("rates = %v, want [3 9]", rates)
	}
}

// The Figure 4 example from the paper: f1 splits equally over paths
// {1→4} and {1→3→4}; f2 uses {2→3→4}. Ideal max-min is {1,1}, but
// respecting the routing split the feasible max-min is {2/3, 2/3}.
func TestFigure4Example(t *testing.T) {
	// Links: 0: 1→4, 1: 1→3, 2: 3→4, 3: 2→3.
	a := NewAllocator(Config{NumLinks: 4, Capacity: 1})
	f1 := netFlow(1)
	f1.Phi = phi(0, 0.5, 1, 0.5, 2, 0.5)
	f2 := netFlow(1)
	f2.Phi = phi(3, 1, 2, 1)
	rates := a.Allocate([]Flow{f1, f2})
	for i, r := range rates {
		if math.Abs(r-2.0/3) > 1e-9 {
			t.Fatalf("flow %d rate = %v, want 2/3 (Figure 4c)", i, r)
		}
	}
}

func TestHeadroomSubtracted(t *testing.T) {
	a := NewAllocator(Config{NumLinks: 1, Capacity: 10, Headroom: 0.05})
	f := netFlow(1)
	f.Phi = phi(0, 1)
	rates := a.Allocate([]Flow{f})
	if math.Abs(rates[0]-9.5) > 1e-9 {
		t.Fatalf("rate = %v, want 9.5 (5%% headroom)", rates[0])
	}
}

func TestDemandLimited(t *testing.T) {
	a := NewAllocator(Config{NumLinks: 1, Capacity: 10})
	f1, f2 := netFlow(1), netFlow(1)
	f1.Phi, f2.Phi = phi(0, 1), phi(0, 1)
	f1.Demand = 2 // host-limited
	rates := a.Allocate([]Flow{f1, f2})
	if math.Abs(rates[0]-2) > 1e-9 {
		t.Fatalf("demand-limited rate = %v, want 2", rates[0])
	}
	// §3.3.2: unused bandwidth goes to flows that can use it.
	if math.Abs(rates[1]-8) > 1e-9 {
		t.Fatalf("network-limited rate = %v, want 8", rates[1])
	}
}

func TestZeroDemand(t *testing.T) {
	a := NewAllocator(Config{NumLinks: 1, Capacity: 10})
	f1, f2 := netFlow(1), netFlow(1)
	f1.Phi, f2.Phi = phi(0, 1), phi(0, 1)
	f1.Demand = 0
	rates := a.Allocate([]Flow{f1, f2})
	if rates[0] != 0 {
		t.Fatalf("zero-demand flow got %v", rates[0])
	}
	if math.Abs(rates[1]-10) > 1e-9 {
		t.Fatalf("other flow got %v, want 10", rates[1])
	}
}

func TestHostLocalFlow(t *testing.T) {
	a := NewAllocator(Config{NumLinks: 1, Capacity: 10})
	f := Flow{Weight: 1, Demand: 7} // empty Phi: never crosses the fabric
	rates := a.Allocate([]Flow{f})
	if rates[0] != 7 {
		t.Fatalf("host-local rate = %v, want demand 7", rates[0])
	}
}

// Regression: a host-local flow with Unlimited demand used to be silently
// allocated 0. It crosses no fabric link, so it runs at line rate —
// min(demand, capacity), with the headroom (a fabric-link concern) not
// subtracted.
func TestHostLocalUnlimited(t *testing.T) {
	a := NewAllocator(Config{NumLinks: 1, Capacity: 10, Headroom: 0.05})
	cases := []struct {
		name   string
		demand float64
		want   float64
	}{
		{"unlimited gets line rate", Unlimited, 10},
		{"demand above capacity is capped", 25, 10},
		{"demand below capacity is granted", 7, 7},
		{"zero demand gets zero", 0, 0},
		{"negative demand clamps to zero", -3, 0},
	}
	for _, tc := range cases {
		rates := a.Allocate([]Flow{{Weight: 1, Demand: tc.demand}})
		if rates[0] != tc.want {
			t.Errorf("%s: rate = %v, want %v", tc.name, rates[0], tc.want)
		}
	}
}

func TestPriorityRounds(t *testing.T) {
	a := NewAllocator(Config{NumLinks: 1, Capacity: 10})
	hi, lo1, lo2 := netFlow(1), netFlow(1), netFlow(1)
	hi.Priority = 2
	hi.Demand = 4
	hi.Phi, lo1.Phi, lo2.Phi = phi(0, 1), phi(0, 1), phi(0, 1)
	rates := a.Allocate([]Flow{lo1, hi, lo2})
	if math.Abs(rates[1]-4) > 1e-9 {
		t.Fatalf("high-priority rate = %v, want 4", rates[1])
	}
	if math.Abs(rates[0]-3) > 1e-9 || math.Abs(rates[2]-3) > 1e-9 {
		t.Fatalf("low-priority rates = %v/%v, want 3/3", rates[0], rates[2])
	}
}

func TestPriorityStarvation(t *testing.T) {
	a := NewAllocator(Config{NumLinks: 1, Capacity: 10})
	hi, lo := netFlow(1), netFlow(1)
	hi.Priority = 1
	hi.Phi, lo.Phi = phi(0, 1), phi(0, 1)
	rates := a.Allocate([]Flow{hi, lo})
	if math.Abs(rates[0]-10) > 1e-9 {
		t.Fatalf("high-priority rate = %v, want 10", rates[0])
	}
	if rates[1] > 1e-9 {
		t.Fatalf("low-priority rate = %v, want 0 (starved)", rates[1])
	}
}

func TestMultiPathSplit(t *testing.T) {
	// A flow spread 50/50 across two disjoint unit links is bottlenecked at
	// rate 2 (each path carries 1).
	a := NewAllocator(Config{NumLinks: 2, Capacity: 1})
	f := netFlow(1)
	f.Phi = phi(0, 0.5, 1, 0.5)
	rates := a.Allocate([]Flow{f})
	if math.Abs(rates[0]-2) > 1e-9 {
		t.Fatalf("split-flow rate = %v, want 2", rates[0])
	}
}

func TestAllocateEmpty(t *testing.T) {
	a := NewAllocator(Config{NumLinks: 3, Capacity: 1})
	if rates := a.Allocate(nil); len(rates) != 0 {
		t.Fatal("non-empty result for no flows")
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	assertPanics(t, "bad capacity", func() { NewAllocator(Config{NumLinks: 1, Capacity: 0}) })
	assertPanics(t, "bad headroom", func() { NewAllocator(Config{NumLinks: 1, Capacity: 1, Headroom: 1}) })
	assertPanics(t, "negative links", func() { NewAllocator(Config{NumLinks: -1, Capacity: 1}) })
	a := NewAllocator(Config{NumLinks: 1, Capacity: 1})
	assertPanics(t, "zero weight", func() {
		f := Flow{Weight: 0, Demand: Unlimited, Phi: phi(0, 1)}
		a.Allocate([]Flow{f})
	})
}

// Regression: `Weight <= 0` rejected zero and negative weights but let NaN
// through (`NaN <= 0` is false), poisoning every fill-level comparison.
// Same for NaN / ±Inf demands.
func TestNonFiniteInputsPanic(t *testing.T) {
	cases := []struct {
		name   string
		weight float64
		demand float64
	}{
		{"NaN weight", math.NaN(), Unlimited},
		{"+Inf weight", math.Inf(1), Unlimited},
		{"-Inf weight", math.Inf(-1), Unlimited},
		{"negative weight", -1, Unlimited},
		{"NaN demand", 1, math.NaN()},
		{"+Inf demand", 1, math.Inf(1)},
		{"-Inf demand", 1, math.Inf(-1)},
	}
	a := NewAllocator(Config{NumLinks: 1, Capacity: 1})
	for _, tc := range cases {
		f := Flow{Weight: tc.weight, Demand: tc.demand, Phi: phi(0, 1)}
		assertPanics(t, tc.name, func() { a.Allocate([]Flow{f}) })
		assertPanics(t, tc.name+" (incremental)", func() {
			NewIncremental(Config{NumLinks: 1, Capacity: 1}).Add(f)
		})
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// ---- Property tests on random topologies and workloads ----

// randomFlows builds flows with real φ-vectors from a 4x4x4 torus.
func randomFlows(t testing.TB, rng *rand.Rand, n int) (Config, []Flow) {
	t.Helper()
	g, err := topology.NewTorus(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewTable(g)
	protos := []routing.Protocol{routing.RPS, routing.DOR, routing.VLB, routing.WLB}
	flows := make([]Flow, n)
	for i := range flows {
		src := topology.NodeID(rng.Intn(g.Nodes()))
		dst := topology.NodeID(rng.Intn(g.Nodes()))
		for dst == src {
			dst = topology.NodeID(rng.Intn(g.Nodes()))
		}
		flows[i] = Flow{
			Phi:      tab.Phi(protos[rng.Intn(len(protos))], src, dst),
			Weight:   1 + rng.Float64()*3,
			Priority: uint8(rng.Intn(3)),
			Demand:   Unlimited,
		}
		if rng.Intn(4) == 0 {
			flows[i].Demand = rng.Float64() * 5e9
		}
	}
	return Config{NumLinks: g.NumLinks(), Capacity: 10e9, Headroom: 0.05}, flows
}

// Invariant 1: no link is ever loaded beyond (1-headroom)·capacity.
// Invariant 2: every demand cap is respected.
// Invariant 3: every network-limited flow is frozen for a reason — it
// crosses a saturated link (weighted max-min cannot raise it).
func TestAllocationInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 25; trial++ {
		cfg, flows := randomFlows(t, rng, 40+rng.Intn(120))
		a := NewAllocator(cfg)
		rates := a.Allocate(flows)
		effCap := cfg.Capacity * (1 - cfg.Headroom)
		loads := LinkLoads(cfg.NumLinks, flows, rates)
		for lid, l := range loads {
			if l > effCap*(1+1e-9)+1 {
				t.Fatalf("trial %d: link %d overloaded: %v > %v", trial, lid, l, effCap)
			}
		}
		for i, f := range flows {
			if f.Demand != Unlimited && rates[i] > f.Demand*(1+1e-9) {
				t.Fatalf("trial %d: flow %d exceeds demand: %v > %v", trial, i, rates[i], f.Demand)
			}
			if rates[i] < 0 {
				t.Fatalf("trial %d: negative rate %v", trial, rates[i])
			}
		}
		// Max-min justification: each flow not at its demand must cross a
		// link with residual ~0 among flows of its own or higher priority.
		for i, f := range flows {
			if len(f.Phi.Links) == 0 {
				continue
			}
			if f.Demand != Unlimited && rates[i] >= f.Demand*(1-1e-9) {
				continue
			}
			bottleneck := false
			for _, lid := range f.Phi.Links {
				if loads[lid] >= effCap*(1-1e-6) {
					bottleneck = true
					break
				}
			}
			if !bottleneck {
				t.Fatalf("trial %d: flow %d (rate %v) has neither demand cap nor bottleneck", trial, i, rates[i])
			}
		}
	}
}

// Scale invariance: with one priority class and no demand caps, doubling
// every capacity exactly doubles every rate. (Full per-flow monotonicity
// does NOT hold across strict priority classes: a high-priority multipath
// flow whose remote bottleneck relaxes can more than double its consumption
// of a particular link, legitimately shrinking what a low-priority flow
// sees there.)
func TestAllocationScaleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	cfg, flows := randomFlows(t, rng, 60)
	for i := range flows {
		flows[i].Priority = 0
		flows[i].Demand = Unlimited
	}
	small := NewAllocator(cfg)
	ratesSmall := append([]float64(nil), small.Allocate(flows)...)
	cfg2 := cfg
	cfg2.Capacity *= 2
	big := NewAllocator(cfg2)
	ratesBig := big.Allocate(flows)
	for i := range flows {
		if math.Abs(ratesBig[i]-2*ratesSmall[i]) > math.Max(1e-6*ratesSmall[i], 1) {
			t.Fatalf("flow %d: rate %v at C, %v at 2C — not scale-invariant", i, ratesSmall[i], ratesBig[i])
		}
	}
}

// Allocation must be independent of flow ordering (determinism / fairness).
func TestAllocationOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	cfg, flows := randomFlows(t, rng, 50)
	a := NewAllocator(cfg)
	base := append([]float64(nil), a.Allocate(flows)...)
	perm := rng.Perm(len(flows))
	shuffled := make([]Flow, len(flows))
	for i, p := range perm {
		shuffled[i] = flows[p]
	}
	b := NewAllocator(cfg)
	got := b.Allocate(shuffled)
	for i, p := range perm {
		if math.Abs(got[i]-base[p]) > math.Max(1e-6*base[p], 1e-3) {
			t.Fatalf("flow %d: rate %v after shuffle, %v before", p, got[i], base[p])
		}
	}
}

// Allocator reuse across rounds must not leak state.
func TestAllocatorReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	cfg, flows := randomFlows(t, rng, 40)
	a := NewAllocator(cfg)
	first := append([]float64(nil), a.Allocate(flows)...)
	for i := 0; i < 5; i++ {
		a.Allocate(flows[:10]) // interleave different workloads
	}
	second := a.Allocate(flows)
	for i := range first {
		if math.Abs(first[i]-second[i]) > 1e-6 {
			t.Fatalf("flow %d: %v then %v — allocator leaked state", i, first[i], second[i])
		}
	}
}

func TestAggregate(t *testing.T) {
	if got := Aggregate([]float64{1, 2, 3.5}); got != 6.5 {
		t.Fatalf("Aggregate = %v", got)
	}
	if got := Aggregate(nil); got != 0 {
		t.Fatalf("Aggregate(nil) = %v", got)
	}
}
