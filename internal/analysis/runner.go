package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Run parses every Go package under root and applies the analyzers,
// returning the surviving (non-suppressed) findings sorted by position.
// root must contain a go.mod (its module path anchors package import
// paths); subdirectories named testdata or vendor and hidden directories
// are skipped. //lint:ignore directives naming a rule outside the given
// analyzer set are reported, not honoured.
func Run(root string, analyzers []Analyzer) ([]Diagnostic, error) {
	diags, _, err := runSyntactic(root, analyzers, knownRules(analyzers, nil))
	if err != nil {
		return nil, err
	}
	sortDiagnostics(diags)
	return diags, nil
}

// runSyntactic runs the per-package (syntactic) engine and additionally
// returns the module-wide ignore set, so RunAll can filter the module
// analyzers' findings through the same directives.
func runSyntactic(root string, analyzers []Analyzer, known map[string]bool) ([]Diagnostic, ignoreSet, error) {
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, nil, err
	}
	dirs := map[string][]string{} // dir -> .go files
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			dirs[dir] = append(dirs[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	var all []Diagnostic
	ignores := ignoreSet{}
	for dir, files := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, nil, err
		}
		pkgPath := module
		if rel != "." {
			pkgPath = module + "/" + filepath.ToSlash(rel)
		}
		sort.Strings(files)
		fset := token.NewFileSet()
		pass := &Pass{Fset: fset, Path: pkgPath}
		for _, file := range files {
			f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
			if err != nil {
				return nil, nil, fmt.Errorf("analysis: %w", err)
			}
			pass.Files = append(pass.Files, f)
		}
		diags, ig := check(pass, analyzers, known)
		all = append(all, diags...)
		for file, lines := range ig {
			for line, rules := range lines {
				for rule := range rules {
					ignores.add(file, line, rule)
				}
			}
		}
	}
	return all, ignores, nil
}

// CheckSource applies the analyzers to in-memory sources (filename ->
// content) forming one package with the given import path. This is the
// unit-test entry point. As in Run, an //lint:ignore naming a rule
// outside the analyzer set is reported rather than honoured.
func CheckSource(pkgPath string, sources map[string]string, analyzers []Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	pass := &Pass{Fset: fset, Path: pkgPath}
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, sources[name], parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pass.Files = append(pass.Files, f)
	}
	diags, _ := check(pass, analyzers, knownRules(analyzers, nil))
	return diags, nil
}

// check runs the applicable analyzers over one package and filters the
// findings through the //lint:ignore directives, returning the surviving
// findings and the directives themselves.
func check(pass *Pass, analyzers []Analyzer, known map[string]bool) ([]Diagnostic, ignoreSet) {
	ignores, diags := collectIgnores(pass, known)
	for _, a := range analyzers {
		if !a.Applies(pass.Path) {
			continue
		}
		for _, d := range a.Check(pass) {
			if !ignores.covers(d) {
				diags = append(diags, d)
			}
		}
	}
	return diags, ignores
}

// ignoreSet records which (file, line, rule) triples are suppressed.
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) add(file string, line int, rule string) {
	if s[file] == nil {
		s[file] = map[int]map[string]bool{}
	}
	if s[file][line] == nil {
		s[file][line] = map[string]bool{}
	}
	s[file][line][rule] = true
}

// covers reports whether a diagnostic is suppressed: an ignore directive
// for its rule on the same line or the line directly above.
func (s ignoreSet) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if rules := lines[line]; rules != nil && (rules[d.Rule] || rules["*"]) {
			return true
		}
	}
	return false
}

// collectIgnores parses every comment directive through ParseDirective
// (directives.go). `//lint:ignore rule[,rule...] reason` populates the
// ignore set; any directive that fails to parse — a missing reason, an
// unknown //r2c2: marker, a //lint: verb typo — is itself reported under
// the lint-directive rule, and, when a known-rule set is given, so is an
// ignore addressing a rule name outside it: a typo in a directive must
// surface as an error, never as a suppression (or an annotation) that
// silently does nothing.
func collectIgnores(pass *Pass, known map[string]bool) (ignoreSet, []Diagnostic) {
	set := ignoreSet{}
	var diags []Diagnostic
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, err := ParseDirective(c.Text)
				if err != nil {
					diags = append(diags, pass.Diag("lint-directive", c, "%s", err.Error()))
					continue
				}
				if d == nil || d.Kind != KindIgnore {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				for _, rule := range d.Rules {
					if known != nil && !known[rule] {
						diags = append(diags, pass.Diag("lint-directive", c,
							"//lint:ignore names unknown rule %q", rule))
						continue
					}
					set.add(pos.Filename, pos.Line, rule)
				}
			}
		}
	}
	return set, diags
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}
