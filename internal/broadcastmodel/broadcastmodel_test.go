package broadcastmodel

import (
	"math"
	"testing"

	"r2c2/internal/topology"
)

func torus512(t testing.TB) *topology.Graph {
	t.Helper()
	g, err := topology.NewTorus(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// §3.2: "with a 512-node rack, each broadcast results in 8 KB of total
// traffic" (511 × 16 = 8176 bytes).
func TestEventBytes512(t *testing.T) {
	if got := EventBytes(512); got != 511*16 {
		t.Fatalf("EventBytes(512) = %v, want %v", got, 511*16)
	}
}

// §3.2: "a 10 KB flow will, on average, result in 60 KB being transmitted
// on the wire. Thus, the relative overhead of broadcasting the start and
// finish events for such small flows is 26.66%".
func TestFlowOverhead10KB(t *testing.T) {
	g := torus512(t)
	got := FlowOverhead(g, 10e3)
	if math.Abs(got-0.2666) > 0.01 {
		t.Fatalf("10 KB flow overhead = %.4f, want ~0.2666", got)
	}
}

// §5.1: "For 10 MB flows, instead, the overhead would just be 0.026%."
func TestFlowOverhead10MB(t *testing.T) {
	g := torus512(t)
	got := FlowOverhead(g, 10e6)
	if math.Abs(got-0.000266) > 0.0001 {
		t.Fatalf("10 MB flow overhead = %.6f, want ~0.000266", got)
	}
}

// §3.2 / Figure 9: "When 5% of the bytes are carried by small flows, the
// fraction of the network capacity used for broadcasting flow information
// is only 1.3%." (10 KB small flows, 35 MB long flows.)
func TestCapacityFractionAnchor(t *testing.T) {
	g := torus512(t)
	got := CapacityFraction(g, 0.05, 10e3, 35e6)
	if math.Abs(got-0.013) > 0.004 {
		t.Fatalf("capacity fraction at 5%% small bytes = %.4f, want ~0.013", got)
	}
}

// Figure 9: the fraction grows (essentially linearly) with the fraction of
// bytes in small flows.
func TestCapacityFractionMonotone(t *testing.T) {
	g := torus512(t)
	prev := -1.0
	for _, frac := range []float64{0, 0.05, 0.1, 0.2, 0.4, 0.8, 1} {
		got := CapacityFraction(g, frac, 10e3, 35e6)
		if got <= prev {
			t.Fatalf("capacity fraction not increasing at %v: %v <= %v", frac, got, prev)
		}
		prev = got
	}
	if zero := CapacityFraction(g, 0, 10e3, 35e6); zero > 0.001 {
		t.Fatalf("all-long-flow overhead = %v, want ~0", zero)
	}
}

// Figure 9: greater-diameter topologies (3D mesh, 2D torus) have LOWER
// relative broadcast overhead because flows traverse more hops.
func TestGreaterDiameterLowerOverhead(t *testing.T) {
	g3t := torus512(t)
	g3m, err := topology.NewMesh(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	g2t, err := topology.NewTorus(22, 2) // ~484 nodes, 2D torus
	if err != nil {
		t.Fatal(err)
	}
	f3t := CapacityFraction(g3t, 0.2, 10e3, 35e6)
	f3m := CapacityFraction(g3m, 0.2, 10e3, 35e6)
	f2t := CapacityFraction(g2t, 0.2, 10e3, 35e6)
	if !(f3m < f3t && f2t < f3t) {
		t.Fatalf("expected mesh (%v) and 2D torus (%v) below 3D torus (%v)", f3m, f2t, f3t)
	}
}

// Figure 19: with one concurrent flow per server the centralized design
// generates several times more control traffic, and the gap grows with the
// number of concurrent flows, while the decentralized cost is constant.
func TestControlTrafficShape(t *testing.T) {
	g := torus512(t)
	one := PerEvent(g, 1)
	ten := PerEvent(g, 10)
	if one.Decentralized != ten.Decentralized {
		t.Fatal("decentralized cost should not depend on concurrent flows")
	}
	if one.Ratio() < 3 {
		t.Fatalf("centralized/decentralized at 1 flow/server = %.1f, want > 3 (paper: 6.2x)", one.Ratio())
	}
	if ten.Ratio() < 2*one.Ratio() {
		t.Fatalf("ratio must grow strongly with flows/server: %.1f -> %.1f", one.Ratio(), ten.Ratio())
	}
	if (ControlTraffic{}).Ratio() != 0 {
		t.Fatal("zero traffic ratio should be 0")
	}
}
