package sim

import (
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

// The PFQ back-pressure invariant: no node ever buffers more than
// PFQBufferPackets packets of one flow. Checked continuously via a
// monitoring event while a contended workload runs.
func TestPFQBufferBound(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	const bound = 3
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PerFlowQueues: true, PFQBufferPackets: bound})
	tab := routing.NewTable(g)
	pfq := NewPFQ(net, tab, 7)
	var ids []wire.FlowID
	for s := 1; s <= 6; s++ {
		ids = append(ids, pfq.StartFlow(topology.NodeID(s), 0, 2<<20))
	}
	violations := 0
	var monitor func()
	monitor = func() {
		for n := 0; n < g.Nodes(); n++ {
			for _, id := range ids {
				if c := net.BufCount(topology.NodeID(n), id); c > bound {
					violations++
				}
			}
		}
		if eng.Pending() {
			eng.After(10*simtime.Microsecond, monitor)
		}
	}
	eng.After(simtime.Microsecond, monitor)
	eng.Run(2 * simtime.Second)
	if violations != 0 {
		t.Fatalf("back-pressure bound violated %d times", violations)
	}
	for _, id := range ids {
		if !pfq.Ledger()[id].Done {
			t.Fatalf("flow %v incomplete", id)
		}
	}
	if net.TotalDrops() != 0 {
		t.Fatal("PFQ dropped packets")
	}
}

// FIFO-mode networks report unlimited room and zero buffer counts.
func TestBufAccountingFIFOMode(t *testing.T) {
	g := torus(t, 3, 2)
	net := NewNetwork(g, &Engine{}, NetConfig{})
	if !net.HasRoom(0, 1) {
		t.Fatal("FIFO mode should always have room")
	}
	if net.BufCount(0, 1) != 0 {
		t.Fatal("FIFO mode buf count nonzero")
	}
}
