package sim

import (
	"fmt"
	"math/rand"

	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

// PacketKind classifies simulated packets.
type PacketKind uint8

// Simulated packet kinds, mirroring the wire formats.
const (
	KindData PacketKind = iota
	KindBroadcast
	KindAck
)

// Sizes of simulated packets, matching the wire formats of §4.2.
const (
	DataHeaderBytes = wire.DataHeaderSize
	BroadcastBytes  = wire.BroadcastSize
	AckBytes        = wire.AckSize
	MTU             = 1500 // max on-wire packet size
	MaxPayload      = MTU - DataHeaderBytes
)

// Packet is a simulated packet. Data and ack packets carry their full
// source route; broadcast packets carry the event payload and are forwarded
// via the broadcast FIB.
//
// Packets are recycled through the owning Network's per-run free list:
// Inject and InjectBroadcast consume the packet, and the Network releases
// it back to the pool when it is delivered or dropped. Callers must not
// retain or reuse a packet after handing it to the Network.
type Packet struct {
	Kind      PacketKind
	SizeBytes int // on-wire bytes
	Flow      wire.FlowID
	Src, Dst  topology.NodeID
	Seq       uint32 // packet index within the flow (data/ack)
	Payload   int    // payload bytes carried (data)

	Path []topology.LinkID // source route (data/ack); read-only once injected
	Hop  int               // index of the next link in Path

	Bcast *wire.Broadcast // event payload (broadcast)
	Retx  bool            // retransmission marker (TCP accounting)
	// Retries counts how many times this broadcast has been re-flooded
	// after a drop (§3.2: the dropping node informs the origin, which
	// retransmits).
	Retries uint8

	// flowSize/flowStart mirror the flow's ledger entry on data packets of
	// sharded runs: the receiving shard opens its receive-side flow record
	// lazily from the first data packet (the start event lives in the
	// source's shard), so the metadata must travel with the data.
	flowSize  int64
	flowStart simtime.Time

	// scratch is the packet's private route-sampling buffer, recycled with
	// the packet. Randomised protocols sample into it and point Path at it;
	// interned per-flow routes set Path directly, leaving scratch parked so
	// its capacity survives runs that mix sampled and interned routes.
	scratch []topology.LinkID
	// slab back-links the packet to the arena segment it was carved from
	// (arena.go); slabIdx is its slot. Both survive freePacket's zeroing.
	slab    *pktSlab
	slabIdx uint8
	// pooled is the use-after-free debug tag: true only while the packet
	// sits free in its slab. Hot-path touches assert it is false when
	// invariantsEnabled (-tags debug).
	pooled bool
}

// NetConfig describes the fabric the simulator models.
type NetConfig struct {
	LinkGbps   float64      // per-link bandwidth (paper: 10 Gbps)
	PropDelay  simtime.Time // per-hop propagation latency (paper: 100 ns)
	QueueBytes int          // drop-tail limit per output port
	// PerFlowQueues switches ports to the idealised PFQ discipline:
	// per-flow queues, round-robin service and hop-by-hop back-pressure
	// with PFQBufferPackets per flow per node (§5.2's upper-bound baseline).
	PerFlowQueues    bool
	PFQBufferPackets int
	// LossSeed seeds the random-drop RNGs used by SetLinkDropProb, keeping
	// lossy-link runs reproducible. Each lossy link draws from its own
	// stream (created on first use, so loss-free runs stay untouched):
	// per-link streams make a link's drop sequence independent of global
	// event interleaving, which is what lets the sharded engine reproduce
	// the serial engine's drops exactly.
	LossSeed int64
	// InterRackPropDelay, when non-zero, is the propagation latency of
	// inter-rack links (ConnectRacks bridge cables, Clos leaf-spine
	// uplinks) — physically longer runs than the in-rack backplane. Zero
	// applies PropDelay fabric-wide. It also bounds the sharded engine's
	// conservative lookahead: a larger inter-rack delay buys larger epochs.
	InterRackPropDelay simtime.Time
}

func (c *NetConfig) defaults() {
	if c.LinkGbps == 0 {
		c.LinkGbps = 10
	}
	if c.PropDelay == 0 {
		c.PropDelay = 100 * simtime.Nanosecond
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = 1 << 20
	}
	if c.PFQBufferPackets == 0 {
		c.PFQBufferPackets = 4
	}
}

// PortStats accumulates per-output-port statistics.
type PortStats struct {
	MaxQueueBytes int
	EnqueuedPkts  uint64
	DroppedPkts   uint64
	SentBytes     uint64
}

// port is one output port: the transmit side of a directed link.
type port struct {
	id     topology.LinkID
	to     topology.NodeID
	busy   bool
	dead   bool // failed link: everything sent here is lost
	queued int  // bytes across all queues

	fifo pktQueue // FIFO discipline

	// PFQ discipline.
	flowQ  map[wire.FlowID]*pktQueue
	rr     []wire.FlowID // round-robin order of flows with queued packets
	rrNext int

	stats PortStats
}

// pktQueue is a simple FIFO of packets backed by a slice with a head index.
type pktQueue struct {
	pkts []*Packet
	head int
}

func (q *pktQueue) len() int { return len(q.pkts) - q.head }

func (q *pktQueue) push(p *Packet) {
	if q.pkts == nil {
		// First use: size the backing array for a plausible burst up front.
		// Queues keep their capacity across the head-compaction in pop, so
		// this is the only allocation a queue that stays under 32 deep ever
		// makes (versus ~6 doubling steps from nil).
		//lint:ignore alloc-hotpath one-time per-queue backing allocation, amortised across the run
		q.pkts = make([]*Packet, 0, 32)
	}
	q.pkts = append(q.pkts, p)
}

func (q *pktQueue) peek() *Packet { return q.pkts[q.head] }

func (q *pktQueue) pop() *Packet {
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	if q.head > 64 && q.head*2 >= len(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	return p
}

// Network simulates the fabric: forwarding, queueing and link timing.
// Transports plug in via the Deliver callback and inject via Inject.
//
//r2c2:shardowned — fabric state belongs to the engine's goroutine.
type Network struct {
	G   *topology.Graph
	Eng *Engine
	Cfg NetConfig

	ports []*port

	// Deliver is invoked when a packet reaches its destination (data/ack)
	// or at every node a broadcast visits.
	Deliver func(at topology.NodeID, pkt *Packet)
	// NextBroadcastHops returns the links a broadcast is forwarded on from
	// `at` (the broadcast FIB lookup). Set by the R2C2 transport.
	NextBroadcastHops func(at topology.NodeID, pkt *Packet) []topology.LinkID
	// OnDrop, if set, observes drop-tail losses.
	OnDrop func(pkt *Packet, at topology.LinkID)

	// PFQ back-pressure state: per node, per flow, packets charged to the
	// node — those in its output queues plus those already in flight
	// toward it (credits are reserved when the upstream port begins
	// transmission, so concurrent senders cannot overshoot the bound).
	buf []map[wire.FlowID]int
	// Kick is invoked when PFQ buffer space frees at a node, so blocked
	// senders located there can resume injection.
	Kick func(at topology.NodeID, flow wire.FlowID)

	totalDrops uint64
	// BcastBytesOnWire accumulates broadcast bytes across all link
	// traversals — the §3.2 / Figure 9 overhead metric.
	BcastBytesOnWire uint64

	// arena carves packets from fixed-size slabs (arena.go): delivered and
	// dropped packets recycle through their slab's free stack, keeping the
	// steady-state data path allocation-free, while slabs that drain after
	// a burst are released instead of pinning peak packet memory.
	arena pktArena

	// Random-loss state (fault injection): lossProb[lid] is the probability
	// a packet enqueued on lid is dropped, rolled against the link's own
	// RNG stream. nil until SetLinkDropProb is first called, so intact
	// runs pay nothing.
	lossProb []float64
	lossRng  []*rand.Rand

	// sh is the shard context when this Network is one shard of a sharded
	// run (shard.go): packets whose next hop belongs to another shard are
	// exported through its boundary queues instead of being scheduled
	// locally. nil in serial runs.
	sh *shardCtx
}

// newPacket takes a zeroed packet slot from the arena. A recycled packet
// keeps its private scratch buffer, truncated to length zero, so route
// sampling reuses its capacity.
func (n *Network) newPacket() *Packet {
	p := n.arena.alloc()
	if invariantsEnabled {
		assertInvariant(p.pooled, "arena slot not marked pooled")
	}
	p.pooled = false
	return p
}

// freePacket zeroes pkt and returns its slot to the arena. Path is detached
// (shared interned routes must never be recycled); the scratch buffer and
// slab back-link stay with the packet.
func (n *Network) freePacket(p *Packet) {
	if invariantsEnabled {
		//lint:ignore alloc-hotpath debug-only assertion args; invariantsEnabled is constant-false in release builds
		assertInvariant(!p.pooled, "packet double-free/use-after-free: kind %d flow %v seq %d", p.Kind, p.Flow, p.Seq)
	}
	scratch, slab, slabIdx := p.scratch, p.slab, p.slabIdx
	*p = Packet{}
	p.scratch = scratch[:0]
	p.slab, p.slabIdx = slab, slabIdx
	p.pooled = true
	n.arena.free(p)
}

// ArenaStats returns a snapshot of the packet arena's occupancy.
func (n *Network) ArenaStats() ArenaStats { return n.arena.stats() }

// NewNetwork builds the fabric simulator and registers it as the engine's
// typed-event receiver (one Network per Engine).
func NewNetwork(g *topology.Graph, eng *Engine, cfg NetConfig) *Network {
	cfg.defaults()
	n := &Network{G: g, Eng: eng, Cfg: cfg}
	if eng.net != nil && eng.net != n {
		panic("sim: engine already drives another network")
	}
	eng.net = n
	n.ports = make([]*port, g.NumLinks())
	backing := make([]port, g.NumLinks()) // one slab for all port structs
	for lid := 0; lid < g.NumLinks(); lid++ {
		p := &backing[lid]
		p.id = topology.LinkID(lid)
		p.to = g.Link(topology.LinkID(lid)).To
		if cfg.PerFlowQueues {
			p.flowQ = make(map[wire.FlowID]*pktQueue)
		}
		n.ports[lid] = p
	}
	if cfg.PerFlowQueues {
		n.buf = make([]map[wire.FlowID]int, g.Vertices())
		for i := range n.buf {
			n.buf[i] = make(map[wire.FlowID]int)
		}
	}
	return n
}

// PortStats returns the statistics of one output port.
func (n *Network) PortStats(lid topology.LinkID) PortStats { return n.ports[lid].stats }

// TotalDrops returns the number of packets lost to drop-tail overflow.
func (n *Network) TotalDrops() uint64 { return n.totalDrops }

// QueuedBytes returns the current queue occupancy of a port.
func (n *Network) QueuedBytes(lid topology.LinkID) int { return n.ports[lid].queued }

// BufCount returns the PFQ per-node buffer occupancy for a flow.
func (n *Network) BufCount(node topology.NodeID, flow wire.FlowID) int {
	if n.buf == nil {
		return 0
	}
	return n.buf[node][flow]
}

// HasRoom reports whether node has PFQ buffer space for another packet of
// the flow. Always true in FIFO mode.
func (n *Network) HasRoom(node topology.NodeID, flow wire.FlowID) bool {
	if n.buf == nil {
		return true
	}
	return n.buf[node][flow] < n.Cfg.PFQBufferPackets
}

// Inject places a packet into the output-port queue of the node it starts
// at (the first link of its path, or the broadcast origin's tree links).
// It returns false if the packet was dropped at enqueue. In PFQ mode the
// caller must check HasRoom first; Inject panics otherwise to surface
// transport bugs.
//
// Inject consumes pkt: the Network owns it from here on and recycles it at
// delivery or drop (on a false return it has already been recycled).
func (n *Network) Inject(pkt *Packet) bool {
	if pkt.Kind == KindBroadcast {
		panic("sim: broadcasts are injected with InjectBroadcast")
	}
	if pkt.Hop != 0 || len(pkt.Path) == 0 {
		panic(fmt.Sprintf("sim: Inject with hop=%d pathlen=%d", pkt.Hop, len(pkt.Path)))
	}
	from := n.G.Link(pkt.Path[0]).From
	if from != pkt.Src {
		panic("sim: packet path does not start at its source")
	}
	pkt.Hop = 1 // Path[0] is consumed here; arrivals consume Path[Hop]
	if n.buf != nil {
		// PFQ: the injected packet is charged to the source node; the
		// caller must have checked HasRoom.
		n.buf[from][pkt.Flow]++
	}
	return n.enqueue(from, pkt.Path[0], pkt)
}

// InjectBroadcast delivers a broadcast locally at its origin and forwards
// copies along the origin's broadcast-tree links. Like Inject it consumes
// pkt (the forwarded copies are fresh pool packets sharing the Bcast
// payload, which is never pooled).
func (n *Network) InjectBroadcast(origin topology.NodeID, pkt *Packet) {
	if n.Deliver != nil {
		n.Deliver(origin, pkt)
	}
	n.forwardBroadcast(origin, pkt)
	n.freePacket(pkt)
}

func (n *Network) forwardBroadcast(at topology.NodeID, pkt *Packet) {
	if n.NextBroadcastHops == nil {
		return
	}
	for _, lid := range n.NextBroadcastHops(at, pkt) {
		cp := n.newPacket()
		cp.Kind = KindBroadcast
		cp.SizeBytes = pkt.SizeBytes
		cp.Flow = pkt.Flow
		cp.Src = pkt.Src
		cp.Bcast = pkt.Bcast
		cp.Retries = pkt.Retries
		n.BcastBytesOnWire += uint64(pkt.SizeBytes)
		n.enqueue(at, lid, cp)
	}
}

// FailLink kills a directed link: its queue is lost and every packet
// subsequently routed to it is dropped — the physical failure model of
// §3.2 ("Failures"). Detection and rerouting are the transport's job.
func (n *Network) FailLink(lid topology.LinkID) {
	p := n.ports[lid]
	if p.dead {
		return
	}
	p.dead = true
	lost := uint64(0)
	if p.flowQ != nil {
		from := n.G.Link(lid).From
		for fid, q := range p.flowQ {
			for q.len() > 0 {
				n.freePacket(q.pop())
				n.buf[from][fid]--
				lost++
			}
		}
		p.flowQ = make(map[wire.FlowID]*pktQueue)
		p.rr = nil
	} else {
		for p.fifo.len() > 0 {
			n.freePacket(p.fifo.pop())
			lost++
		}
	}
	p.queued = 0
	p.stats.DroppedPkts += lost
	n.totalDrops += lost
}

// RepairLink brings a failed directed link back into service: packets
// routed onto it flow again. Rebuilding the routing state so traffic
// actually uses it again is the transport's job (R2C2.RepairLink).
func (n *Network) RepairLink(lid topology.LinkID) {
	n.ports[lid].dead = false
}

// LinkFailed reports whether a directed link has been failed.
func (n *Network) LinkFailed(lid topology.LinkID) bool { return n.ports[lid].dead }

// SetLinkDropProb installs a random-drop probability p in [0,1] on a
// directed link — the lossy-cable fault model. p = 0 removes the loss.
func (n *Network) SetLinkDropProb(lid topology.LinkID, p float64) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("sim: drop probability %v out of [0,1]", p))
	}
	if n.lossProb == nil {
		if p == 0 {
			return
		}
		n.lossProb = make([]float64, len(n.ports))
		n.lossRng = make([]*rand.Rand, len(n.ports))
	}
	if p > 0 && n.lossRng[lid] == nil {
		n.lossRng[lid] = newLinkRng(n.Cfg.LossSeed, lid)
	}
	n.lossProb[lid] = p
}

// enqueue appends pkt to the drop-tail queue of the given output port and
// starts transmission if the port is idle.
func (n *Network) enqueue(at topology.NodeID, lid topology.LinkID, pkt *Packet) bool {
	p := n.ports[lid]
	if n.G.Link(lid).From != at {
		panic("sim: enqueue at wrong node")
	}
	if p.dead {
		p.stats.DroppedPkts++
		n.totalDrops++
		if n.OnDrop != nil {
			n.OnDrop(pkt, lid)
		}
		n.freePacket(pkt)
		return false
	}
	if n.lossProb != nil && n.lossProb[lid] > 0 && n.lossRng[lid].Float64() < n.lossProb[lid] {
		// Random loss on a lossy cable (fault injection). The PFQ charge
		// taken at injection/reservation is released with the packet.
		if n.buf != nil {
			n.buf[at][pkt.Flow]--
			if n.buf[at][pkt.Flow] == 0 {
				delete(n.buf[at], pkt.Flow)
			}
		}
		p.stats.DroppedPkts++
		n.totalDrops++
		if n.OnDrop != nil {
			n.OnDrop(pkt, lid)
		}
		n.freePacket(pkt)
		return false
	}
	if p.flowQ != nil {
		// PFQ mode: per-flow queue. The buffer charge was taken at
		// injection (source) or reservation (upstream transmission start).
		q, ok := p.flowQ[pkt.Flow]
		if !ok {
			//lint:ignore alloc-hotpath one queue per (port, flow) pair on first use, not per packet
			q = &pktQueue{}
			p.flowQ[pkt.Flow] = q
		}
		if q.len() == 0 {
			p.rr = append(p.rr, pkt.Flow)
		}
		q.push(pkt)
	} else {
		if p.queued+pkt.SizeBytes > n.Cfg.QueueBytes {
			p.stats.DroppedPkts++
			n.totalDrops++
			if n.OnDrop != nil {
				n.OnDrop(pkt, lid)
			}
			n.freePacket(pkt)
			return false
		}
		p.fifo.push(pkt)
	}
	p.queued += pkt.SizeBytes
	p.stats.EnqueuedPkts++
	if p.queued > p.stats.MaxQueueBytes {
		p.stats.MaxQueueBytes = p.queued
	}
	if !p.busy {
		n.transmit(p)
	}
	return true
}

// transmit picks the next eligible packet on the port and starts its
// serialisation. In PFQ mode a flow whose next-hop node has no buffer room
// is skipped (back-pressure); if every queued flow is blocked the port
// idles until a Kick.
func (n *Network) transmit(p *port) {
	var pkt *Packet
	if p.flowQ != nil {
		pkt = n.pfqPick(p)
	} else if p.fifo.len() > 0 {
		pkt = p.fifo.pop()
	}
	if pkt == nil {
		p.busy = false
		return
	}
	if invariantsEnabled {
		//lint:ignore alloc-hotpath debug-only assertion args; invariantsEnabled is constant-false in release builds
		assertInvariant(!pkt.pooled, "transmit of pooled packet: kind %d flow %v seq %d", pkt.Kind, pkt.Flow, pkt.Seq)
	}
	p.busy = true
	p.queued -= pkt.SizeBytes
	txTime := simtime.TransmitTime(pkt.SizeBytes, n.Cfg.LinkGbps)
	n.Eng.after(txTime, event{kind: evTxDone, port: p, pkt: pkt})
}

// propDelay returns the propagation latency of a directed link: the
// inter-rack delay on bridge links when one is configured, the fabric-wide
// delay otherwise.
func (n *Network) propDelay(lid topology.LinkID) simtime.Time {
	if n.Cfg.InterRackPropDelay != 0 && n.G.IsInterRack(lid) {
		return n.Cfg.InterRackPropDelay
	}
	return n.Cfg.PropDelay
}

// transmitDone fires when a port finishes serialising pkt: the packet goes
// onto the wire (arrival after propagation delay) and the port picks its
// next packet. In a sharded run a packet bound for another shard's node is
// exported through the boundary queue instead of being scheduled locally —
// its arrival time is at least one epoch ahead (the lookahead window is the
// minimum boundary-link propagation delay), so the destination shard files
// it before its epoch begins.
func (n *Network) transmitDone(p *port, pkt *Packet) {
	p.stats.SentBytes += uint64(pkt.SizeBytes)
	if p.flowQ != nil {
		// Credit released: the packet has left this node.
		from := n.G.Link(p.id).From
		n.buf[from][pkt.Flow]--
		if n.buf[from][pkt.Flow] == 0 {
			delete(n.buf[from], pkt.Flow)
		}
		n.kickUpstream(from, pkt.Flow)
	}
	prop := n.propDelay(p.id)
	if n.sh != nil && n.sh.shardOf[p.to] != n.sh.self {
		n.exportPacket(n.sh.shardOf[p.to], n.Eng.now+prop, p.to, pkt)
	} else {
		n.Eng.after(prop, event{kind: evArrive, node: p.to, pkt: pkt})
	}
	n.transmit(p)
}

// exportPacket hands a packet crossing a shard boundary to the destination
// shard's inbox: its fields and remaining route are copied into a recycled
// handoff slot (plain data — broadcast payloads are shared by pointer, but
// they are immutable and the epoch barrier orders the accesses) and the
// packet itself returns to this shard's arena.
//
//r2c2:boundary
func (n *Network) exportPacket(dst int32, at simtime.Time, to topology.NodeID, pkt *Packet) {
	h := n.sh.out[dst].push()
	h.at = at
	h.emit = n.Eng.now // serial runs would schedule the arrival right here
	h.node = to
	h.kind = pkt.Kind
	h.size = pkt.SizeBytes
	h.flow = pkt.Flow
	h.src = pkt.Src
	h.dst = pkt.Dst
	h.seq = pkt.Seq
	h.payload = pkt.Payload
	h.retx = pkt.Retx
	h.retries = pkt.Retries
	h.flowSize = pkt.flowSize
	h.flowStart = pkt.flowStart
	if pkt.Kind == KindBroadcast {
		h.bcast = pkt.Bcast
	} else {
		//lint:ignore alloc-hotpath handoff path buffers recycle with their slots; growth is amortised across epochs
		h.path = append(h.path, pkt.Path[pkt.Hop:]...)
	}
	n.sh.handoffs++
	n.freePacket(pkt)
}

// exportReflood hands a §3.2 broadcast-retransmission request to the
// origin's shard as a control handoff: the origin's tree cursor lives with
// its node state, so the retransmission must execute over there. The
// broadcast payload crosses by pointer (immutable; the epoch barrier orders
// the accesses).
//
//r2c2:boundary
func (n *Network) exportReflood(dst int32, at simtime.Time, origin topology.NodeID, b *wire.Broadcast, retries uint8) {
	h := n.sh.out[dst].push()
	h.at = at
	h.emit = n.Eng.now // the drop instant: serial runs arm the reflood timer here
	h.node = origin
	h.ctrl = true
	h.bcast = b
	h.retries = retries
	n.sh.handoffs++
}

// pfqPick selects the next flow in round-robin order whose head packet can
// make progress.
func (n *Network) pfqPick(p *port) *Packet {
	for scanned := 0; scanned < len(p.rr); scanned++ {
		i := (p.rrNext + scanned) % len(p.rr)
		fid := p.rr[i]
		q := p.flowQ[fid]
		if q == nil || q.len() == 0 {
			continue
		}
		head := q.peek()
		// The next-hop node must have room unless it is the destination;
		// the credit is reserved NOW, so concurrent upstreams cannot
		// collectively overshoot the bound.
		nextNode := n.G.Link(p.id).To
		if nextNode != head.Dst {
			if !n.HasRoom(nextNode, fid) {
				continue
			}
			n.buf[nextNode][fid]++
		}
		pkt := q.pop()
		if q.len() == 0 {
			p.rr = append(p.rr[:i], p.rr[i+1:]...)
			p.rrNext = i % max(1, len(p.rr))
		} else {
			p.rrNext = (i + 1) % len(p.rr)
		}
		return pkt
	}
	return nil
}

// kickUpstream restarts idle ports feeding `node` (their head packets may
// have been blocked on its buffers) and notifies local senders.
func (n *Network) kickUpstream(node topology.NodeID, flow wire.FlowID) {
	for _, lid := range n.G.In(node) {
		p := n.ports[lid]
		if !p.busy && p.queued > 0 {
			n.transmit(p)
		}
	}
	if n.Kick != nil {
		n.Kick(node, flow)
	}
}

// arrive handles a packet reaching `node`: delivery, broadcast fan-out, or
// forwarding along its source route.
func (n *Network) arrive(node topology.NodeID, pkt *Packet) {
	if invariantsEnabled {
		//lint:ignore alloc-hotpath debug-only assertion args; invariantsEnabled is constant-false in release builds
		assertInvariant(!pkt.pooled, "arrival of pooled packet: kind %d flow %v seq %d", pkt.Kind, pkt.Flow, pkt.Seq)
	}
	switch pkt.Kind {
	case KindBroadcast:
		if n.Deliver != nil {
			n.Deliver(node, pkt)
		}
		n.forwardBroadcast(node, pkt)
		n.freePacket(pkt)
	default:
		if node == pkt.Dst {
			if n.Deliver != nil {
				n.Deliver(node, pkt)
			}
			n.freePacket(pkt)
			return
		}
		if pkt.Hop >= len(pkt.Path) {
			panic(fmt.Sprintf("sim: packet for %d stranded at %d (route exhausted)", pkt.Dst, node))
		}
		lid := pkt.Path[pkt.Hop]
		pkt.Hop++
		n.enqueue(node, lid, pkt)
	}
}

// MaxQueueSample returns the per-port maximum queue occupancies in bytes —
// the Figure 14 statistic ("maximum queue occupancy ... across all node
// queues").
func (n *Network) MaxQueueSample() []float64 {
	out := make([]float64, len(n.ports))
	for i, p := range n.ports {
		out[i] = float64(p.stats.MaxQueueBytes)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
