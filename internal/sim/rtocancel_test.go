package sim

import (
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
)

// maxPendingDuringReliableRun drives one large reliable flow (every ack
// disarms and re-arms the RTO) and samples the scheduler's pending-event
// count every 20µs while the transfer is in progress.
func maxPendingDuringReliableRun(t *testing.T, legacyHeap bool) int {
	t.Helper()
	g := torus(t, 4, 2)
	eng := &Engine{}
	if legacyHeap {
		eng.UseLegacyHeap()
	}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	r := NewR2C2(net, routing.NewTable(g), R2C2Config{
		Headroom:  0.05,
		Protocol:  routing.RPS,
		Recompute: 100 * simtime.Microsecond,
		Reliable:  true,
		RTO:       200 * simtime.Microsecond,
	})
	id := r.StartFlow(0, 5, 4<<20, 1, 0)

	maxPending := 0
	var probe func()
	probe = func() {
		if rec := r.Ledger()[id]; rec != nil && rec.Done {
			return
		}
		if p := eng.PendingEvents(); p > maxPending {
			maxPending = p
		}
		eng.After(20*simtime.Microsecond, probe)
	}
	eng.Schedule(0, probe)
	eng.Run(2 * simtime.Second)
	if !r.Ledger()[id].Done {
		t.Fatal("flow incomplete")
	}
	return maxPending
}

// Regression for the RTO-tombstone heap bloat: a superseded retransmission
// timer must leave the schedule when it is cancelled, so the pending-event
// count during an ack-heavy reliable run stays O(in-flight timers and
// packets) — NOT O(acks within one RTO window). The legacy heap keeps one
// generation-guarded tombstone per ack re-arm alive for a full RTO
// (200µs ≈ 160 acks at 10 Gbps), so it fails the bound the wheel meets.
func TestCancelledRTOsLeaveSchedule(t *testing.T) {
	// Generous bound: in-flight data+ack packets on an 8-node path plus
	// pacing/recompute events is a few dozen; one RTO window of ack
	// tombstones is >100.
	const bound = 60
	wheelMax := maxPendingDuringReliableRun(t, false)
	t.Logf("wheel max pending = %d", wheelMax)
	if wheelMax > bound {
		t.Fatalf("wheel scheduler pending events peaked at %d (> %d): cancelled RTO timers are not leaving the schedule", wheelMax, bound)
	}
	heapMax := maxPendingDuringReliableRun(t, true)
	t.Logf("legacy heap max pending = %d", heapMax)
	if heapMax <= bound {
		t.Fatalf("legacy heap pending peaked at %d (<= %d): the regression scenario is no longer ack-heavy enough to distinguish tombstoning", heapMax, bound)
	}
}
