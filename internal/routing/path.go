package routing

import (
	"fmt"
	"math/rand"

	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

// SamplePath draws one packet path from src to dst under protocol p, as the
// sequence of directed links the packet traverses. This is what the sender
// encodes into the packet header (§3.5): randomised protocols (RPS, VLB,
// WLB) consult rng; deterministic ones (DOR) ignore it. For ECMP use
// ECMPPath, which needs the flow identifier.
func (t *Table) SamplePath(p Protocol, src, dst topology.NodeID, rng *rand.Rand) []topology.LinkID {
	return t.AppendPath(nil, p, src, dst, rng)
}

// AppendPath is SamplePath appending into a caller-supplied buffer (reuse
// its capacity across draws to keep per-packet sampling allocation-free).
// The sampled hops are appended to buf and the extended slice returned.
func (t *Table) AppendPath(buf []topology.LinkID, p Protocol, src, dst topology.NodeID, rng *rand.Rand) []topology.LinkID {
	if src == dst {
		return buf
	}
	switch p {
	case RPS:
		return t.sprayPath(src, dst, rng, buf)
	case DOR:
		at := src
		for at != dst {
			lid := t.dorNext(at, dst)
			buf = append(buf, lid)
			at = t.g.Link(lid).To
		}
		return buf
	case VLB:
		// Uniform random waypoint, then minimal spraying in both phases.
		w := topology.NodeID(rng.Intn(t.g.Nodes()))
		buf = t.sprayPath(src, w, rng, buf)
		return t.sprayPath(w, dst, rng, buf)
	case WLB:
		return t.wlbPath(src, dst, rng, buf)
	case ECMP:
		panic("routing: SamplePath(ECMP) — use ECMPPath with the flow ID")
	default:
		panic(fmt.Sprintf("routing: SamplePath for unknown protocol %v", p))
	}
}

// sprayPath appends a uniformly sprayed minimal path from src to dst onto
// path and returns it.
func (t *Table) sprayPath(src, dst topology.NodeID, rng *rand.Rand, path []topology.LinkID) []topology.LinkID {
	if src == dst {
		return path
	}
	succ := t.successors(dst)
	at := src
	for at != dst {
		links := succ[at]
		lid := links[rng.Intn(len(links))]
		path = append(path, lid)
		at = t.g.Link(lid).To
	}
	return path
}

// wlbPath appends one weighted-load-balancing path onto path: per-dimension
// direction choice (short way w.p. (k-δ)/k), then uniform interleaving of
// the per-dimension hops. Falls back to RPS on non-torus graphs, mirroring
// phiWLB.
func (t *Table) wlbPath(src, dst topology.NodeID, rng *rand.Rand, path []topology.LinkID) []topology.LinkID {
	g := t.g
	if g.Kind() != topology.KindTorus || g.Degraded() {
		return t.sprayPath(src, dst, rng, path)
	}
	k := g.Radix()
	dims := g.Dims()
	off := g.TorusOffset(src, dst)
	//lint:ignore alloc-hotpath dims-bounded WLB scratch; making this arena-backed is the roadmap's zero-alloc item
	dirs, remaining := make([]int, dims), make([]int, dims)
	for d := 0; d < dims; d++ {
		mag, dir := off[d], 1
		if mag < 0 {
			mag, dir = -mag, -1
		}
		if mag == 0 {
			continue
		}
		if rng.Float64() < float64(k-mag)/float64(k) {
			dirs[d], remaining[d] = dir, mag // short way
		} else {
			dirs[d], remaining[d] = -dir, k-mag // long way
		}
	}
	coord := g.Coord(src)
	for {
		active := 0
		for d := 0; d < dims; d++ {
			if remaining[d] > 0 {
				active++
			}
		}
		if active == 0 {
			return path
		}
		pick := rng.Intn(active)
		for d := 0; d < dims; d++ {
			if remaining[d] == 0 {
				continue
			}
			if pick > 0 {
				pick--
				continue
			}
			from := g.NodeAt(coord)
			coord[d] = ((coord[d]+dirs[d])%k + k) % k
			lid, ok := g.LinkBetween(from, g.NodeAt(coord))
			if !ok {
				panic("routing: missing torus link in WLB walk")
			}
			path = append(path, lid)
			remaining[d]--
			break
		}
	}
}

// ECMPPath returns the single minimal path used by an ECMP flow: at each
// hop the successor is chosen by a deterministic hash of the flow ID and
// the hop index, so all packets of a flow follow one path but different
// flows between the same endpoints spread over different shortest paths
// (§5.2: "we assign different shortest paths to different flows between the
// same endpoints").
func (t *Table) ECMPPath(src, dst topology.NodeID, flow wire.FlowID) []topology.LinkID {
	if src == dst {
		return nil
	}
	succ := t.successors(dst)
	var path []topology.LinkID
	at := src
	h := uint64(flow)*0x9E3779B97F4A7C15 + 0x7F4A7C15
	hop := 0
	for at != dst {
		links := succ[at]
		h ^= h >> 33
		h *= 0xFF51AFD7ED558CCD
		h ^= uint64(hop) * 0xC4CEB9FE1A85EC53
		lid := links[h%uint64(len(links))]
		path = append(path, lid)
		at = t.g.Link(lid).To
		hop++
	}
	return path
}

// PortRoute converts a link path into the 3-bit-per-hop port route carried
// in the data packet header: each entry is the index of the link within the
// out-port list of the node the packet is at. It fails if any node on the
// path has more than wire.MaxPorts links or if the path is longer than the
// route field allows.
func (t *Table) PortRoute(path []topology.LinkID) (wire.Route, error) {
	return t.AppendPortRoute(nil, path)
}

// AppendPortRoute is PortRoute appending into a caller-supplied buffer
// (reuse its capacity across packets to keep per-packet route encoding
// allocation-free). The port indices are appended to buf and the extended
// route returned; on error buf is returned unextended.
//
//r2c2:hotpath
func (t *Table) AppendPortRoute(buf wire.Route, path []topology.LinkID) (wire.Route, error) {
	if len(path) > wire.MaxRouteHops {
		return buf, wire.ErrRouteTooLong
	}
	orig := len(buf)
	for _, lid := range path {
		from := t.g.Link(lid).From
		port := -1
		for p, out := range t.g.Out(from) {
			if out == lid {
				port = p
				break
			}
		}
		if port < 0 {
			//lint:ignore alloc-hotpath error path: only reachable when a path disagrees with the table's graph
			return buf[:orig], fmt.Errorf("routing: link %d not an out-port of node %d", lid, from)
		}
		if port >= wire.MaxPorts {
			return buf[:orig], wire.ErrBadPort
		}
		buf = append(buf, uint8(port))
	}
	return buf, nil
}

// WalkPorts resolves a port route starting at src back into the node
// sequence it visits, validating each hop. It is the receiver-side inverse
// of PortRoute and the core of the forwarding layer (§3.5).
func (t *Table) WalkPorts(src topology.NodeID, route wire.Route) ([]topology.NodeID, error) {
	nodes := []topology.NodeID{src}
	at := src
	for i, port := range route {
		out := t.g.Out(at)
		if int(port) >= len(out) {
			return nil, fmt.Errorf("routing: hop %d: port %d out of range at node %d", i, port, at)
		}
		at = t.g.Link(out[port]).To
		nodes = append(nodes, at)
	}
	return nodes, nil
}
