package experiments

import (
	"fmt"
	"math/rand"
	"strconv"

	"r2c2/internal/routing"
	"r2c2/internal/sim"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/trafficgen"
)

// InterRackConfig sizes the intra- vs inter-rack traffic-mix experiment:
// a ring of 2D-torus racks joined by boundary cables, driven at several
// inter-rack flow fractions on the sharded engine (DESIGN.md §14). The
// same arrival times and flow sizes are replayed at every mix — only the
// source/destination pairs are rewritten — so the mix fraction is the sole
// variable between runs.
type InterRackConfig struct {
	Racks   int // racks in the ring
	K       int // per-rack torus radix (each rack is a K×K 2D torus)
	Bridges int // boundary cables between each adjacent rack pair

	LinkGbps float64
	PropLat  simtime.Time

	Flows     int
	Tau       simtime.Time // mean flow inter-arrival time
	FlowBytes int64        // fixed flow size (0 = the §5.2 Pareto mix)
	Seed      int64
	Reliable  bool

	// Shards is sim.RunConfig.Shards: ≤ 1 runs the serial engine, > 1 the
	// sharded engine with up to Shards workers. The mix table is identical
	// at every value; only ShardUtilTable needs a sharded run.
	Shards int
	// Horizon hard-stops each run (sim.RunConfig.MaxTime).
	Horizon simtime.Time

	Mixes []float64 // inter-rack flow fractions to sweep, each in [0, 1]
}

// DefaultInterRack is the test-scale sweep: 4 racks of 3×3 torus (36
// nodes), small enough for `go test` and the race detector.
func DefaultInterRack() InterRackConfig {
	return InterRackConfig{
		Racks: 4, K: 3, Bridges: 2,
		LinkGbps: 10, PropLat: 100 * simtime.Nanosecond,
		Flows: 120, Tau: 100 * simtime.Microsecond,
		FlowBytes: 128 << 10, Seed: 1,
		Horizon: 50 * simtime.Millisecond,
		Mixes:   []float64{0, 0.25, 0.5, 1},
	}
}

// Fabric builds the multi-rack ring: Racks K×K tori, each joined to its
// ring successor by Bridges cables spread around the rack perimeter.
func (c InterRackConfig) Fabric() *topology.Graph {
	subs := make([]*topology.Graph, c.Racks)
	for i := range subs {
		g, err := topology.NewTorus(c.K, 2)
		if err != nil {
			panic(err)
		}
		subs[i] = g
	}
	per := subs[0].Nodes()
	step := per / c.Bridges
	if step == 0 {
		step = 1
	}
	var bridges []topology.Bridge
	for i := 0; i < c.Racks; i++ {
		j := (i + 1) % c.Racks
		for b := 0; b < c.Bridges; b++ {
			a := (b * step) % per
			bridges = append(bridges, topology.Bridge{
				RackA: i, RackB: j,
				NodeA: topology.NodeID(a),
				NodeB: topology.NodeID((a + per/2) % per),
			})
		}
	}
	g, err := topology.ConnectRacks(subs, bridges)
	if err != nil {
		panic(err)
	}
	return g
}

// arrivals generates the workload for one mix fraction: the base Poisson
// process fixes every arrival time and size, then each flow's pair is
// rewritten — destination inside the source's rack below the mix
// threshold, outside it above — from an RNG stream independent of the base
// generator, so changing the mix never perturbs the offered load.
func (c InterRackConfig) arrivals(g *topology.Graph, mix float64) []trafficgen.Arrival {
	cfg := trafficgen.PoissonConfig{
		Nodes: g.Nodes(), MeanInterval: c.Tau, Count: c.Flows, Seed: c.Seed,
	}
	var arr []trafficgen.Arrival
	if c.FlowBytes > 0 {
		arr = trafficgen.FixedSize(cfg, c.FlowBytes)
	} else {
		arr = trafficgen.Poisson(cfg)
	}
	per := g.Nodes() / c.Racks
	rng := rand.New(rand.NewSource(c.Seed + 1))
	for i := range arr {
		src := arr[i].Src
		rack := int(src) / per
		cross := rng.Float64() < mix
		var dst topology.NodeID
		if cross {
			// Uniform over the other racks' nodes.
			d := rng.Intn(g.Nodes() - per)
			if d >= rack*per {
				d += per
			}
			dst = topology.NodeID(d)
		} else {
			// Uniform over the source rack, excluding the source itself.
			d := rng.Intn(per - 1)
			if topology.NodeID(rack*per+d) >= src {
				d++
			}
			dst = topology.NodeID(rack*per + d)
		}
		arr[i].Dst = dst
	}
	return arr
}

// InterRackRun is one mix point of the sweep.
type InterRackRun struct {
	Mix      float64
	Results  *sim.Results
	Handoffs uint64 // total cross-shard handoffs (0 for serial runs)
}

// InterRackResult is the full sweep.
type InterRackResult struct {
	Cfg  InterRackConfig
	Runs []InterRackRun
}

// InterRack runs the intra- vs inter-rack sweep: one simulation per mix
// fraction over the same fabric and arrival process.
func InterRack(cfg InterRackConfig) *InterRackResult {
	g := cfg.Fabric()
	res := &InterRackResult{Cfg: cfg}
	for _, mix := range cfg.Mixes {
		r := sim.Run(sim.RunConfig{
			Graph:     g,
			Net:       sim.NetConfig{LinkGbps: cfg.LinkGbps, PropDelay: cfg.PropLat},
			Transport: sim.TransportR2C2,
			R2C2: sim.R2C2Config{
				Headroom: 0.05, Protocol: routing.RPS,
				Recompute: 100 * simtime.Microsecond,
				Reliable:  cfg.Reliable, RTO: 300 * simtime.Microsecond,
				Seed: cfg.Seed,
			},
			Arrivals: cfg.arrivals(g, mix),
			MaxTime:  cfg.Horizon,
			Shards:   cfg.Shards,
		})
		run := InterRackRun{Mix: mix, Results: r}
		for _, st := range r.ShardStats {
			run.Handoffs += st.Handoffs
		}
		res.Runs = append(res.Runs, run)
	}
	return res
}

// MixTable reports the sweep's deterministic half: completion, FCT
// percentiles and boundary traffic per mix fraction. Byte-identical at
// every Shards value (the wall-clock ShardStats fields are excluded).
func (r *InterRackResult) MixTable() *Table {
	t := &Table{
		Title:  "intra- vs inter-rack traffic mix (sharded engine)",
		Header: []string{"mix", "completed", "incomplete", "fct_p50_us", "fct_p99_us", "handoffs", "events", "end_ms"},
	}
	for _, run := range r.Runs {
		t.AddRow(
			f2(run.Mix),
			strconv.Itoa(run.Results.Completed),
			strconv.Itoa(run.Results.Incomplete),
			g3(run.Results.AllFCT.Percentile(50)*1e6),
			g3(run.Results.AllFCT.Percentile(99)*1e6),
			strconv.FormatUint(run.Handoffs, 10),
			strconv.FormatUint(run.Results.Events, 10),
			f3(run.Results.EndTime.Seconds()*1e3),
		)
	}
	return t
}

// ShardUtilTable reports per-shard execution statistics for every sharded
// run of the sweep — the CI smoke's utilisation artifact. busy_ms,
// ctrl_ms and ctrl_us_tick are wall-clock measurements and legitimately
// vary run to run; nodes, events and handoffs are deterministic. ctrl_ms
// is each shard's total control-plane time (ticks, reduction merges and
// the allocator run, attributed to the shard that executed them), and
// ctrl_us_tick divides it across the run's recomputation rounds.
func (r *InterRackResult) ShardUtilTable() *Table {
	t := &Table{
		Title:  "per-shard utilisation",
		Header: []string{"mix", "shard", "nodes", "events", "handoffs", "busy_ms", "busy_share", "ctrl_ms", "ctrl_us_tick"},
	}
	for _, run := range r.Runs {
		total := int64(0)
		for _, st := range run.Results.ShardStats {
			total += st.BusyNs
		}
		rounds := run.Results.RecomputeRounds
		for _, st := range run.Results.ShardStats {
			share := 0.0
			if total > 0 {
				share = float64(st.BusyNs) / float64(total)
			}
			perTick := 0.0
			if rounds > 0 {
				perTick = float64(st.CtrlNs) / float64(rounds) / 1e3
			}
			t.AddRow(
				f2(run.Mix),
				strconv.Itoa(st.Shard),
				strconv.Itoa(st.Nodes),
				strconv.FormatUint(st.Events, 10),
				strconv.FormatUint(st.Handoffs, 10),
				f3(float64(st.BusyNs)/1e6),
				f3(share),
				f3(float64(st.CtrlNs)/1e6),
				g3(perTick),
			)
		}
	}
	return t
}

// String summarises the configuration for log headers.
func (c InterRackConfig) String() string {
	return fmt.Sprintf("%d racks x %dx%d torus (%d nodes), %d bridges/pair, %d flows, tau=%v, shards=%d",
		c.Racks, c.K, c.K, c.Racks*c.K*c.K, c.Bridges, c.Flows, c.Tau, c.Shards)
}
