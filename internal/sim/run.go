package sim

import (
	"fmt"

	"r2c2/internal/faults"
	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/stats"
	"r2c2/internal/topology"
	"r2c2/internal/trafficgen"
)

// Transport selects which stack a run uses.
type Transport int

// The transports of the §5.2 comparison.
const (
	TransportR2C2 Transport = iota
	TransportTCP
	TransportPFQ
)

// String returns the transport name.
func (t Transport) String() string {
	switch t {
	case TransportR2C2:
		return "R2C2"
	case TransportTCP:
		return "TCP"
	case TransportPFQ:
		return "PFQ"
	default:
		return fmt.Sprintf("Transport(%d)", int(t))
	}
}

// Flow size classes used throughout the evaluation (§5.2).
const (
	ShortFlowMax = 100e3 // bytes; FCT is reported for flows under this
	LongFlowMin  = 1e6   // bytes; throughput is reported for flows over this
)

// RunConfig describes one simulation experiment.
type RunConfig struct {
	Graph     *topology.Graph
	Net       NetConfig
	Transport Transport
	R2C2      R2C2Config
	TCP       TCPConfig
	PFQSeed   int64

	Arrivals []trafficgen.Arrival
	// Faults is an optional fault schedule injected during the run
	// (TransportR2C2 only; the other transports have no failure handling).
	Faults faults.Schedule
	// MaxTime hard-stops the simulation; incomplete flows are reported as
	// such. Zero means 100 ms after the last arrival.
	MaxTime simtime.Time

	// LegacyHeapScheduler runs the engine on the pre-wheel value min-heap
	// instead of the hierarchical timer wheel. The two produce byte-identical
	// Results apart from Events (the heap fires superseded RTO tombstones as
	// no-ops and counts them); scheduler_oracle_test.go holds them equal.
	LegacyHeapScheduler bool

	// Shards > 1 runs the experiment on the sharded engine (shard.go): the
	// fabric is partitioned by rack, each rack shard drives its own engine,
	// and up to Shards worker goroutines execute the shards in parallel
	// under a conservative-lookahead epoch barrier. The logical partition is
	// always the rack partition — Shards only caps the worker count — so
	// Results are identical at every value. Requires TransportR2C2, the
	// timer-wheel scheduler, and a rack-structured graph (ConnectRacks or
	// NewFoldedClos). 0 or 1 selects the serial engine, the sharded
	// engine's differential oracle.
	Shards int

	// ReplicatedControlPlane makes every shard of a sharded run recompute
	// rates from its own nodes' views at each ρ tick — the pre-aggregation
	// control plane, where per-shard allocator work scales with the TOTAL
	// flow count because every view spans the whole fabric. Off (the
	// default), each shard instead summarises only the flows its racks
	// source, the summaries tree-reduce into one global view per tick, and
	// the resulting allocation is distributed back (DESIGN.md §15). The two
	// modes produce byte-identical Results; the replicated path is kept as
	// the aggregated control plane's differential oracle. Ignored by serial
	// runs, which hold all views in one engine anyway.
	ReplicatedControlPlane bool
}

// Results aggregates everything the §5 figures need from one run.
type Results struct {
	Transport  Transport
	Flows      []*FlowRecord
	Completed  int
	Incomplete int

	ShortFCT       stats.Sample // seconds, flows < 100 KB
	LongThroughput stats.Sample // bits/s, flows > 1 MB
	AllFCT         stats.Sample // seconds, all completed flows
	MaxQueue       stats.Sample // bytes, per output port

	Reorder         stats.Sample // reorder-buffer occupancy (R2C2 only)
	FailureReroutes uint64       // fabric rebuilds after faults (R2C2 only)
	Drops           uint64
	Retransmissions uint64 // TCP only
	BcastBytes      uint64 // broadcast bytes on the wire (R2C2 only)
	Recomputations  uint64 // allocator invocations (R2C2 only)
	RecomputeRounds uint64
	Events          uint64
	EndTime         simtime.Time

	// ShardStats reports per-shard execution statistics of a sharded run
	// (RunConfig.Shards > 1); nil for serial runs. Deliberately excluded
	// from byte-identity comparisons: wall-clock fields vary run to run.
	ShardStats []ShardStat
}

// addFlows folds a creation-ordered flow-record list into the results —
// the aggregation shared by the serial and sharded engines (order included:
// FCT sample order must be identical across runs of one configuration).
func (res *Results) addFlows(order []*FlowRecord) {
	for _, rec := range order {
		res.Flows = append(res.Flows, rec)
		if !rec.Done {
			res.Incomplete++
			continue
		}
		res.Completed++
		fct := rec.FCT().Seconds()
		res.AllFCT.Add(fct)
		if rec.SizeBytes < ShortFlowMax {
			res.ShortFCT.Add(fct)
		}
		if rec.SizeBytes > LongFlowMin {
			res.LongThroughput.Add(rec.Throughput())
		}
	}
}

// Run executes one experiment: it replays the arrival list over the chosen
// transport and collects the statistics every figure of §5 is built from.
func Run(cfg RunConfig) *Results {
	if cfg.Graph == nil {
		panic("sim: RunConfig.Graph is required")
	}
	if len(cfg.Arrivals) == 0 {
		panic("sim: no arrivals")
	}
	if cfg.Transport == TransportPFQ {
		cfg.Net.PerFlowQueues = true
	}
	if cfg.Faults.Len() > 0 && cfg.Transport != TransportR2C2 {
		panic(fmt.Sprintf("sim: fault schedules require TransportR2C2, got %v", cfg.Transport))
	}
	if cfg.Shards > 1 {
		return runSharded(cfg)
	}
	eng := &Engine{}
	if cfg.LegacyHeapScheduler {
		eng.UseLegacyHeap()
	}
	net := NewNetwork(cfg.Graph, eng, cfg.Net)
	tab := routing.NewTable(cfg.Graph)

	maxTime := cfg.MaxTime
	if maxTime == 0 {
		maxTime = cfg.Arrivals[len(cfg.Arrivals)-1].At + 100*simtime.Millisecond
	}

	var ledger *flowLedger
	var r2c2 *R2C2
	var tcp *TCP
	switch cfg.Transport {
	case TransportR2C2:
		r2c2 = NewR2C2(net, tab, cfg.R2C2)
		ledger = r2c2.ledger
		if cfg.Faults.Len() > 0 {
			r2c2.ApplyFaults(cfg.Faults)
		}
		for _, a := range cfg.Arrivals {
			arr := a
			eng.Schedule(arr.At, func() {
				r2c2.StartFlow(arr.Src, arr.Dst, arr.SizeBytes, arr.Weight, arr.Priority)
			})
		}
	case TransportTCP:
		tcp = NewTCP(net, tab, cfg.TCP)
		ledger = tcp.ledger
		for _, a := range cfg.Arrivals {
			arr := a
			eng.Schedule(arr.At, func() { tcp.StartFlow(arr.Src, arr.Dst, arr.SizeBytes) })
		}
	case TransportPFQ:
		pfq := NewPFQ(net, tab, cfg.PFQSeed)
		ledger = pfq.ledger
		for _, a := range cfg.Arrivals {
			arr := a
			eng.Schedule(arr.At, func() { pfq.StartFlow(arr.Src, arr.Dst, arr.SizeBytes) })
		}
	default:
		panic(fmt.Sprintf("sim: unknown transport %v", cfg.Transport))
	}

	// Run in slices so completion can stop the clock early (the R2C2
	// recomputation tick re-arms itself forever).
	total := len(cfg.Arrivals)
	slice := maxTime / 64
	if slice < simtime.Microsecond {
		slice = simtime.Microsecond
	}
	for eng.Now() < maxTime {
		next := eng.Now() + slice
		if next > maxTime {
			next = maxTime
		}
		eng.Run(next)
		if len(ledger.order) == total {
			done := 0
			for _, rec := range ledger.order {
				if rec.Done {
					done++
				}
			}
			if done == total {
				break
			}
		}
		if !eng.Pending() {
			break
		}
	}

	res := &Results{Transport: cfg.Transport, EndTime: eng.Now(), Events: eng.Processed()}
	res.addFlows(ledger.order)
	res.MaxQueue.AddAll(net.MaxQueueSample())
	res.Drops = net.TotalDrops()
	res.BcastBytes = net.BcastBytesOnWire
	if r2c2 != nil {
		res.Reorder = r2c2.Reorder
		res.Recomputations = r2c2.Recomputations
		res.RecomputeRounds = r2c2.RecomputeRounds
		res.FailureReroutes = r2c2.FailureReroutes
	}
	if tcp != nil {
		res.Retransmissions = tcp.Retransmissions
	}
	return res
}
