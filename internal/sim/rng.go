package sim

import (
	"math/rand"

	"r2c2/internal/topology"
)

// Per-entity RNG streams. The sharded engine gives every shard its own
// deterministic randomness, and the serial engine must draw the very same
// numbers for Results to stay byte-identical between the two — so both run
// one independent stream per consuming entity (per source node for route
// sampling, per link for loss rolls) instead of one global stream whose
// interleaving would depend on global event order.
//
// The streams are splitmix64 generators: a full-period 64-bit sequence
// whose state is one word, versus the ~5 KB lagged-Fibonacci state
// rand.NewSource carries — at one stream per node, 10k nodes would
// otherwise pin ~50 MB of generator state per shard set.

// splitmix64 is a rand.Source64 implementing Sebastiano Vigna's SplitMix64.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmix64) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }

// streamSeed derives the state of one entity's stream from the run seed and
// the entity's index, spreading consecutive indices across the state space.
func streamSeed(seed int64, idx int64) uint64 {
	return uint64(seed) ^ (uint64(idx)+1)*0x9E3779B97F4A7C15
}

// newNodeRng returns the route-sampling stream of one source node.
func newNodeRng(seed int64, node topology.NodeID) *rand.Rand {
	return rand.New(&splitmix64{state: streamSeed(seed, int64(node))})
}

// newLinkRng returns the loss-roll stream of one lossy link.
func newLinkRng(seed int64, lid topology.LinkID) *rand.Rand {
	return rand.New(&splitmix64{state: streamSeed(seed, int64(lid))})
}
