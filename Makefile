GO ?= go
FUZZTIME ?= 30s
LINT_REPORT ?= r2c2-lint.json

.PHONY: build test race race-short debug lint fuzz vet bench-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The CI race job: the full suite under the race detector with the
# packet-level sweeps and GA searches at reduced scale.
race-short:
	$(GO) test -race -short ./...

# Runtime invariant assertions in internal/sim (clock monotonicity, no
# stale event pops, pacing within injection bandwidth) compile in only
# under the debug tag.
debug:
	$(GO) test -tags debug ./internal/sim/

vet:
	$(GO) vet ./...

# The repo's own static-analysis rules; see DESIGN.md "Determinism &
# concurrency invariants" and `go run ./cmd/r2c2-lint -rules`. The JSON
# report is always written (CI uploads it as a build artifact); any
# surviving finding fails the build.
lint:
	@$(GO) run ./cmd/r2c2-lint -json ./... > $(LINT_REPORT) \
		|| { cat $(LINT_REPORT); echo "lint: findings (report: $(LINT_REPORT))"; exit 1; }
	@echo "lint: clean (report: $(LINT_REPORT))"

fuzz:
	$(GO) test -run=^$$ -fuzz FuzzWireRoundTrip -fuzztime $(FUZZTIME) ./internal/wire/

# One iteration of every benchmark: catches bitrot in the benchmark
# harnesses (they cover each figure of the paper) without paying for a
# real measurement run.
bench-smoke:
	$(GO) test -run=^$$ -bench . -benchtime=1x ./...

verify: build vet lint test race debug bench-smoke
	@echo verify: OK
