// Package discovery implements the topology-discovery mechanism §3.2
// presupposes ("To detect link and node failures, we rely on a topology
// discovery mechanism that is required by the routing protocols anyway"):
// a link-state protocol in which every node floods announcements of its
// live adjacency, every node maintains a link-state database, and each
// node can materialise the rack's current topology — including degraded
// topologies after failures — from its database alone.
//
// The package is transport-agnostic: Handle/Originate produce and consume
// LSA values, and the caller (simulator, emulator, or the synchronous
// round-driver in Converge) moves them between nodes.
package discovery

import (
	"fmt"
	"sort"

	"r2c2/internal/topology"
)

// LSA is a link-state announcement: the origin's current out-neighbours,
// versioned by a sequence number. Higher sequence numbers supersede lower.
type LSA struct {
	Origin    topology.NodeID
	Seq       uint64
	Neighbors []topology.NodeID
}

// clone returns a defensive copy (LSAs are shared across nodes when
// flooded).
func (l LSA) clone() LSA {
	cp := l
	cp.Neighbors = append([]topology.NodeID(nil), l.Neighbors...)
	return cp
}

// Node is one participant's discovery state.
type Node struct {
	id        topology.NodeID
	neighbors []topology.NodeID
	seq       uint64
	lsdb      map[topology.NodeID]LSA
}

// NewNode creates a discovery participant that currently sees the given
// out-neighbours.
func NewNode(id topology.NodeID, neighbors []topology.NodeID) *Node {
	n := &Node{
		id:        id,
		neighbors: append([]topology.NodeID(nil), neighbors...),
		lsdb:      make(map[topology.NodeID]LSA),
	}
	return n
}

// ID returns the node's identity.
func (n *Node) ID() topology.NodeID { return n.id }

// Originate produces a fresh LSA for this node's current adjacency and
// installs it locally. Call it at startup and whenever local links change
// (failure detection).
func (n *Node) Originate() LSA {
	n.seq++
	lsa := LSA{Origin: n.id, Seq: n.seq, Neighbors: append([]topology.NodeID(nil), n.neighbors...)}
	n.lsdb[n.id] = lsa.clone()
	return lsa
}

// SetNeighbors updates the node's local adjacency (e.g. after a link
// failure) without originating; pair with Originate.
func (n *Node) SetNeighbors(neighbors []topology.NodeID) {
	n.neighbors = append(n.neighbors[:0], neighbors...)
}

// Handle folds a received LSA into the database. It reports whether the
// LSA was new (and must therefore be re-flooded to neighbours).
func (n *Node) Handle(lsa LSA) bool {
	cur, ok := n.lsdb[lsa.Origin]
	if ok && cur.Seq >= lsa.Seq {
		return false
	}
	n.lsdb[lsa.Origin] = lsa.clone()
	return true
}

// KnownNodes returns how many origins the database covers.
func (n *Node) KnownNodes() int { return len(n.lsdb) }

// Edges materialises the directed edge set of the discovered topology,
// sorted deterministically. An edge appears iff its origin announced it in
// the origin's freshest LSA.
func (n *Node) Edges() []topology.Link {
	var edges []topology.Link
	for _, lsa := range n.lsdb {
		for _, to := range lsa.Neighbors {
			edges = append(edges, topology.Link{From: lsa.Origin, To: to})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges
}

// Graph builds the discovered topology as a Graph with `vertices` total
// vertices (the rack size is configuration, not discovered). It fails if
// the database references vertices out of range.
func (n *Node) Graph(kind topology.Kind, endpoints, vertices int) (*topology.Graph, error) {
	return topology.NewGraph(kind, endpoints, vertices, n.Edges())
}

// Converge drives a set of nodes to a converged link-state database by
// synchronous flooding over the physical adjacency: every node originates,
// and new LSAs propagate neighbour-to-neighbour until quiescence. It
// returns the number of flooding rounds taken. This is the test/bootstrap
// driver; live systems flood asynchronously over the fabric instead.
func Converge(nodes map[topology.NodeID]*Node) int {
	type delivery struct {
		to  topology.NodeID
		lsa LSA
	}
	var pending []delivery
	for _, n := range nodes {
		lsa := n.Originate()
		for _, nb := range n.neighbors {
			pending = append(pending, delivery{to: nb, lsa: lsa})
		}
	}
	rounds := 0
	for len(pending) > 0 {
		rounds++
		var next []delivery
		for _, d := range pending {
			target, ok := nodes[d.to]
			if !ok {
				continue // failed/unknown node: announcement is lost
			}
			if target.Handle(d.lsa) {
				for _, nb := range target.neighbors {
					next = append(next, delivery{to: nb, lsa: d.lsa})
				}
			}
		}
		pending = next
	}
	return rounds
}

// FromGraph builds one discovery Node per endpoint of g, seeded with its
// physical adjacency (links toward other endpoints and switches alike).
func FromGraph(g *topology.Graph) map[topology.NodeID]*Node {
	nodes := make(map[topology.NodeID]*Node, g.Vertices())
	for v := 0; v < g.Vertices(); v++ {
		var nbs []topology.NodeID
		for _, lid := range g.Out(topology.NodeID(v)) {
			nbs = append(nbs, g.Link(lid).To)
		}
		nodes[topology.NodeID(v)] = NewNode(topology.NodeID(v), nbs)
	}
	return nodes
}

// Diff compares two edge sets and returns the links present in old but
// missing in new — the failures a node infers from consecutive database
// snapshots.
func Diff(old, new []topology.Link) []topology.Link {
	have := make(map[topology.Link]bool, len(new))
	for _, l := range new {
		have[l] = true
	}
	var gone []topology.Link
	for _, l := range old {
		if !have[l] {
			gone = append(gone, l)
		}
	}
	return gone
}

// Validate checks a converged database against an expected vertex count,
// returning an error naming any origin that never announced.
func Validate(n *Node, vertices int) error {
	for v := 0; v < vertices; v++ {
		if _, ok := n.lsdb[topology.NodeID(v)]; !ok {
			return fmt.Errorf("discovery: node %d has no LSA for vertex %d", n.id, v)
		}
	}
	return nil
}
