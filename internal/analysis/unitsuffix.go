package analysis

import (
	"go/ast"
	"strings"
)

// quantityBases are name endings that denote a physical quantity: a field
// or parameter so named holds a rate, a size or a time span, and its unit
// must be spelled in the name.
var quantityBases = []string{
	"rate", "size", "capacity", "bandwidth", "demand",
	"interval", "timeout", "delay", "latency",
}

// unitSuffixes are the accepted unit spellings. A name ending in one of
// these is self-documenting regardless of its base.
var unitSuffixes = []string{
	"gbps", "mbps", "kbps", "bps", "bits", "bytes", "kb", "mb", "gb",
	"pkts", "packets", "ns", "us", "ms", "ps", "sec", "secs", "seconds",
	"hops",
}

// basicNumeric are the predeclared numeric types. Only these are flagged:
// a named type like simtime.Time or time.Duration carries its unit in the
// type and needs no suffix.
var basicNumeric = map[string]bool{
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"uintptr": true, "float32": true, "float64": true, "byte": true,
}

// unitSuffix requires exported numeric struct fields and parameters of
// exported functions that hold rates or sizes to carry a unit suffix
// (Gbps, Bytes, Kbps, …). The paper's arithmetic crosses Gbps, Mbps, Kbps
// (broadcast demand), bytes and bits constantly — a bare "Rate float64"
// is how a 1000× error slips through review.
type unitSuffix struct{ pkgScope }

// NewUnitSuffix builds the unit-suffix rule scoped to the given package
// path suffixes (empty = all packages).
func NewUnitSuffix(pkgs ...string) Analyzer { return &unitSuffix{pkgScope{pkgs}} }

func (*unitSuffix) Name() string { return "unit-suffix" }
func (*unitSuffix) Doc() string {
	return "exported numeric rates/sizes must carry a unit suffix (Gbps, Bytes, Ns, …)"
}

func (a *unitSuffix) Check(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.TypeSpec:
				st, ok := v.Type.(*ast.StructType)
				if !ok || !v.Name.IsExported() {
					return true
				}
				for _, fld := range st.Fields.List {
					if !isBasicNumeric(fld.Type) {
						continue
					}
					for _, name := range fld.Names {
						if name.IsExported() && needsUnit(name.Name) {
							diags = append(diags, pass.Diag(a.Name(), name,
								"exported field %s.%s holds a quantity but its name has no unit suffix (Gbps, Bytes, Ns, …)",
								v.Name.Name, name.Name))
						}
					}
				}
			case *ast.FuncDecl:
				if !v.Name.IsExported() || v.Type.Params == nil {
					return true
				}
				for _, p := range v.Type.Params.List {
					if !isBasicNumeric(p.Type) {
						continue
					}
					for _, name := range p.Names {
						if needsUnit(name.Name) {
							diags = append(diags, pass.Diag(a.Name(), name,
								"parameter %s of exported %s holds a quantity but its name has no unit suffix",
								name.Name, v.Name.Name))
						}
					}
				}
			}
			return true
		})
	}
	return diags
}

// isBasicNumeric reports whether the type expression is a predeclared
// numeric type (possibly variadic).
func isBasicNumeric(t ast.Expr) bool {
	if e, ok := t.(*ast.Ellipsis); ok {
		t = e.Elt
	}
	id, ok := t.(*ast.Ident)
	return ok && basicNumeric[id.Name]
}

// needsUnit reports whether a name denotes a quantity but lacks a unit
// suffix.
func needsUnit(name string) bool {
	low := strings.ToLower(name)
	for _, u := range unitSuffixes {
		if strings.HasSuffix(low, u) {
			return false
		}
	}
	for _, b := range quantityBases {
		if strings.HasSuffix(low, b) {
			return true
		}
	}
	return false
}
