package emu

import (
	"testing"
	"time"

	"r2c2/internal/core"
	"r2c2/internal/routing"
	"r2c2/internal/topology"
)

// §3.3.2 host-limited flows, live: an application producing at 20 Mbps
// shares a DOR path with an unconstrained bulk flow. The demand estimator
// must discover ~20 Mbps from the sender-side queue, broadcast it, and the
// allocator must hand the freed bandwidth to the bulk flow.
func TestEmuDemandEstimation(t *testing.T) {
	g, err := topology.NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{
		Graph:     g,
		LinkMbps:  200,
		Headroom:  0.05,
		Recompute: time.Millisecond,
		Protocol:  routing.DOR, // single shared path 0 -> 1
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()

	const appRate = 20e6 // bits/s
	limited, err := r.StartHostLimitedFlow(0, 1, 1<<20, 1, 0, appRate)
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := r.StartFlow(0, 1, 8<<20, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	// While both run, some remote node must eventually see a finite demand
	// near the app rate.
	sawDemand := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		d, ok := r.FlowDemandAt(10, limited.Info.ID)
		if ok && d != core.UnlimitedDemand {
			if float64(d)*1e3 < appRate*3 && float64(d)*1e3 > appRate/3 {
				sawDemand = true
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawDemand {
		t.Fatalf("no remote view ever saw a demand near %.0f bits/s (last local estimate: %d Kbps)",
			appRate, limited.Demand())
	}

	if err := bulk.Wait(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := limited.Wait(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The limited flow must run near its app rate, never far above.
	lt := limited.Throughput()
	if lt > appRate*1.5 {
		t.Fatalf("limited flow ran at %.3g, far above its %.0f app rate", lt, appRate)
	}
	// The bulk flow must collect most of the residual link (190 Mbps eff −
	// ~20 Mbps ≈ 170 Mbps; wall-clock slack allows a wide band, but it must
	// clearly beat the 95 Mbps it would get under demand-blind fairness).
	if bt := bulk.Throughput(); bt < 110e6 {
		t.Fatalf("bulk flow got %.3g; demand-aware allocation should exceed 110 Mbps", bt)
	}
}

// TestFlowDemandRoundTrip checks the emu side of the demand encoding:
// Demand() mirrors the last core.KbpsDemand broadcast for host-limited
// flows, reports the UnlimitedDemand sentinel for network-limited ones,
// and decoding back through FlowInfo.DemandBits loses at most one Kbps
// quantum.
func TestFlowDemandRoundTrip(t *testing.T) {
	networkLimited := &Flow{}
	if networkLimited.Demand() != core.UnlimitedDemand {
		t.Fatalf("network-limited Demand() = %d, want UnlimitedDemand", networkLimited.Demand())
	}
	hostLimited := &Flow{appRate: 20e6}
	for _, bits := range []float64{0, 999, 1e3, 20e6, 4.2e12, 1e15} {
		k := core.KbpsDemand(bits)
		hostLimited.demandKbps.Store(k)
		if got := hostLimited.Demand(); got != k {
			t.Fatalf("Demand() = %d after storing %d", got, k)
		}
		info := core.FlowInfo{DemandKbps: hostLimited.Demand()}
		back := info.DemandBits()
		if back > bits {
			t.Fatalf("decode %g exceeds encoded input %g", back, bits)
		}
		if k != core.UnlimitedDemand-1 && bits-back >= 1e3 {
			t.Fatalf("round-trip of %g lost %g bits/s, more than one Kbps quantum", bits, bits-back)
		}
	}
}
