package analysis

import "go/ast"

// syncLockTypes are the sync types that must never be copied after first
// use (their Lock state is part of the value).
var syncLockTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Cond":      true,
	"Once":      true,
}

// mutexByValue flags signatures that copy a lock: value receivers and
// by-value parameters or results whose type is sync.Mutex/RWMutex/… or a
// struct in the same package that (transitively) contains one. A copied
// mutex guards nothing — the copy and the original lock independently,
// which is exactly the silent race the emulator's goroutine-per-node
// pipeline cannot afford.
type mutexByValue struct{ pkgScope }

// NewMutexByValue builds the mutex-by-value rule scoped to the given
// package path suffixes (empty = all packages).
func NewMutexByValue(pkgs ...string) Analyzer { return &mutexByValue{pkgScope{pkgs}} }

func (*mutexByValue) Name() string { return "mutex-by-value" }
func (*mutexByValue) Doc() string {
	return "forbid passing or receiving lock-bearing structs by value"
}

func (a *mutexByValue) Check(pass *Pass) []Diagnostic {
	lockStructs := a.lockBearingStructs(pass)
	var diags []Diagnostic
	for _, f := range pass.Files {
		syncName := importName(f, "sync")
		isLockType := func(t ast.Expr) bool {
			switch v := t.(type) {
			case *ast.Ident:
				return lockStructs[v.Name]
			case *ast.SelectorExpr:
				id, ok := v.X.(*ast.Ident)
				return ok && id.Name == syncName && syncName != "" && syncLockTypes[v.Sel.Name]
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fn.Recv != nil {
				for _, r := range fn.Recv.List {
					if isLockType(r.Type) {
						diags = append(diags, pass.Diag(a.Name(), r,
							"method %s has value receiver of lock-bearing type %s; use a pointer receiver",
							fn.Name.Name, exprString(r.Type)))
					}
				}
			}
			check := func(fields *ast.FieldList, what string) {
				if fields == nil {
					return
				}
				for _, p := range fields.List {
					if isLockType(p.Type) {
						diags = append(diags, pass.Diag(a.Name(), p,
							"%s of %s passes lock-bearing type %s by value; use a pointer",
							what, fn.Name.Name, exprString(p.Type)))
					}
				}
			}
			check(fn.Type.Params, "parameter")
			check(fn.Type.Results, "result")
			return true
		})
	}
	return diags
}

// lockBearingStructs computes, to a fixpoint, the package-local struct
// types that contain a sync lock by value — directly, through an embedded
// or named field of another lock-bearing struct, or inside an array field.
func (a *mutexByValue) lockBearingStructs(pass *Pass) map[string]bool {
	// structs maps type name -> field type expressions, with the sync
	// import name of the declaring file captured alongside.
	type structInfo struct {
		fields   []ast.Expr
		syncName string
	}
	structs := map[string]structInfo{}
	for _, f := range pass.Files {
		syncName := importName(f, "sync")
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			info := structInfo{syncName: syncName}
			for _, fld := range st.Fields.List {
				info.fields = append(info.fields, fld.Type)
			}
			structs[ts.Name.Name] = info
			return true
		})
	}
	bearing := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for name, info := range structs {
			if bearing[name] {
				continue
			}
			for _, t := range info.fields {
				if t, ok := t.(*ast.ArrayType); ok {
					// An array of locks is copied with the struct too.
					if holdsLock(t.Elt, info.syncName, bearing) {
						bearing[name] = true
						changed = true
					}
					continue
				}
				if holdsLock(t, info.syncName, bearing) {
					bearing[name] = true
					changed = true
				}
			}
		}
	}
	return bearing
}

// holdsLock reports whether the field type expression is a by-value lock:
// sync.X, or a known lock-bearing local struct. Pointers never copy.
func holdsLock(t ast.Expr, syncName string, bearing map[string]bool) bool {
	switch v := t.(type) {
	case *ast.Ident:
		return bearing[v.Name]
	case *ast.SelectorExpr:
		id, ok := v.X.(*ast.Ident)
		return ok && syncName != "" && id.Name == syncName && syncLockTypes[v.Sel.Name]
	}
	return false
}
