package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestParseDiagnosticsGolden checks the -gcflags=-m parser against captured
// outputs of two Go releases. The wording around the heap diagnostics
// drifts between releases (inline costs, leak phrasing, conversion
// rendering), but "escapes to heap" and "moved to heap" are stable — the
// parser must extract exactly the same sites from both files.
func TestParseDiagnosticsGolden(t *testing.T) {
	want := []diagnostic{
		{pkg: "example.com/fake/internal/hot", file: "internal/hot/hot.go", line: 33, msg: "make([]byte, n) escapes to heap"},
		{pkg: "example.com/fake/internal/hot", file: "internal/hot/hot.go", line: 40, msg: "moved to heap: hdr"},
		{pkg: "example.com/fake/internal/hot", file: "internal/hot/hot.go", line: 44, msg: "&Header{...} escapes to heap"},
		{pkg: "example.com/fake/internal/hot", file: "internal/hot/hot.go", line: 66, msg: "id escapes to heap"},
		{pkg: "example.com/fake/internal/cold", file: "internal/cold/cold.go", line: 10, msg: "&State{...} escapes to heap"},
	}
	for _, golden := range []string{"gcm_go122.txt", "gcm_go124.txt"} {
		data, err := os.ReadFile(filepath.Join("testdata", golden))
		if err != nil {
			t.Fatal(err)
		}
		got := parseDiagnostics(string(data))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: parsed %+v\nwant %+v", golden, got, want)
		}
	}
}

// TestAttribute maps diagnostic lines to enclosing functions, including
// methods, generic functions, and sites inside closures (attributed to the
// declaring function).
func TestAttribute(t *testing.T) {
	dir := t.TempDir()
	src := `package p

type Engine struct{}

func (e *Engine) Run() []byte {
	return make([]byte, 64)
}

func grow[T any](xs []T) []T {
	return append(xs, *new(T))
}

func outer() func() *Engine {
	return func() *Engine {
		return &Engine{}
	}
}
`
	path := filepath.Join(dir, "p.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := []diagnostic{
		{pkg: "p", file: path, line: 6, msg: "make([]byte, 64) escapes to heap"},
		{pkg: "p", file: path, line: 10, msg: "new(T) escapes to heap"},
		{pkg: "p", file: path, line: 15, msg: "&Engine{} escapes to heap"},
		{pkg: "p", file: path, line: 14, msg: "func literal escapes to heap"},
	}
	got, err := attribute(diags)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]map[string]int{
		"p": {
			"(*Engine).Run": 1,
			"grow":          1,
			"outer":         2, // the closure and its body both count against the declarer
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("attribute = %+v, want %+v", got, want)
	}
}

// TestDiff covers the three drift shapes: a count increase and a new
// function are regressions; a decrease and a disappearance are
// improvements; equality is silence.
func TestDiff(t *testing.T) {
	base := map[string]map[string]int{
		"p": {"A": 2, "B": 1, "C": 3, "Gone": 1},
	}
	current := map[string]map[string]int{
		"p": {"A": 3, "B": 1, "C": 1, "New": 1},
	}
	reg, imp := diff(base, current)
	wantReg := []string{
		"p.A: 3 escape site(s), baseline 2",
		"p.New: 1 escape site(s), baseline 0",
	}
	wantImp := []string{
		"p.C: 1 escape site(s), baseline 3",
		"p.Gone: 0 escape site(s), baseline 1",
	}
	if !reflect.DeepEqual(reg, wantReg) {
		t.Errorf("regressions = %v, want %v", reg, wantReg)
	}
	if !reflect.DeepEqual(imp, wantImp) {
		t.Errorf("improvements = %v, want %v", imp, wantImp)
	}
}

func TestLangVersion(t *testing.T) {
	cases := map[string]string{
		"go1.22":          "go1.22",
		"go1.22.4":        "go1.22",
		"go1.24.0":        "go1.24",
		"go1.24rc1":       "go1.24",
		"devel +abc12345": "devel +abc12345",
	}
	for in, want := range cases {
		if got := langVersion(in); got != want {
			t.Errorf("langVersion(%q) = %q, want %q", in, got, want)
		}
	}
}
