package experiments

import (
	"time"

	"r2c2/internal/emu"
	"r2c2/internal/routing"
	"r2c2/internal/sim"
	"r2c2/internal/simtime"
	"r2c2/internal/stats"
	"r2c2/internal/topology"
	"r2c2/internal/trafficgen"
)

// Fig7Config scales the emulator/simulator cross-validation. The paper
// runs 1,000 × 10 MB flows over a 4x4 2D torus with 5 Gbps virtual links
// and 1 ms Poisson arrivals on a 16-server RDMA cluster; in-process
// emulation uses slower virtual links and smaller flows, which preserves
// the comparison (both platforms run at the same scaled capacity).
type Fig7Config struct {
	K            int     // 2D torus radix (paper: 4)
	LinkMbps     float64 // virtual link bandwidth (paper: 5000)
	Flows        int     // flow count (paper: 1000)
	FlowBytes    int64   // flow size (paper: 10 MB)
	MeanInterval time.Duration
	Seed         int64
}

// DefaultFig7 is a laptop-friendly configuration.
func DefaultFig7() Fig7Config {
	return Fig7Config{K: 4, LinkMbps: 200, Flows: 60, FlowBytes: 1 << 20,
		MeanInterval: 10 * time.Millisecond, Seed: 1}
}

// Fig7Result compares flow-throughput and max-queue-occupancy
// distributions between the emulated rack and the packet-level simulator.
type Fig7Result struct {
	EmuThroughput, SimThroughput stats.Sample // bits/s per flow
	EmuMaxQueue, SimMaxQueue     stats.Sample // bytes per port
	EmuDrops, SimDrops           uint64
}

// Fig7 replays the identical flow sequence on both platforms (§5.1).
func Fig7(cfg Fig7Config) (*Fig7Result, error) {
	g, err := topology.NewTorus(cfg.K, 2)
	if err != nil {
		return nil, err
	}
	arrivals := trafficgen.FixedSize(trafficgen.PoissonConfig{
		Nodes:        g.Nodes(),
		MeanInterval: simtime.Time(cfg.MeanInterval / time.Nanosecond * 1000),
		Count:        cfg.Flows,
		Seed:         cfg.Seed,
	}, cfg.FlowBytes)

	res := &Fig7Result{}

	// --- Emulated rack (wall clock) ---
	rack, err := emu.New(emu.Config{
		Graph:     g,
		LinkMbps:  cfg.LinkMbps,
		Headroom:  0.05,
		Recompute: 2 * time.Millisecond,
		Protocol:  routing.RPS,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	rack.Start()
	start := time.Now()
	var handles []*emu.Flow
	for _, a := range arrivals {
		at := start.Add(time.Duration(a.At / 1000)) // ps -> ns
		if d := time.Until(at); d > 0 {
			time.Sleep(d)
		}
		f, err := rack.StartFlow(a.Src, a.Dst, a.SizeBytes, a.Weight, a.Priority)
		if err != nil {
			rack.Stop()
			return nil, err
		}
		handles = append(handles, f)
	}
	for _, f := range handles {
		if err := f.Wait(5 * time.Minute); err != nil {
			rack.Stop()
			return nil, err
		}
		res.EmuThroughput.Add(f.Throughput())
	}
	for _, q := range rack.MaxQueueBytes() {
		res.EmuMaxQueue.Add(float64(q))
	}
	res.EmuDrops = rack.Drops()
	rack.Stop()

	// --- Packet-level simulator, identical workload and capacity ---
	out := sim.Run(sim.RunConfig{
		Graph: g,
		Net: sim.NetConfig{
			LinkGbps:  cfg.LinkMbps / 1000,
			PropDelay: 10 * simtime.Microsecond, // in-process hop handoff cost
		},
		Transport: sim.TransportR2C2,
		R2C2: sim.R2C2Config{
			Headroom:  0.05,
			Recompute: 2 * simtime.Millisecond,
			Protocol:  routing.RPS,
			Seed:      cfg.Seed,
		},
		Arrivals: arrivals,
		MaxTime:  arrivals[len(arrivals)-1].At + 10*simtime.Second,
	})
	for _, rec := range out.Flows {
		if rec.Done {
			res.SimThroughput.Add(rec.Throughput())
		}
	}
	res.SimMaxQueue = out.MaxQueue
	res.SimDrops = out.Drops
	return res, nil
}

// Table renders the cross-validation comparison.
func (r *Fig7Result) Table() *Table {
	t := &Table{Title: "Figure 7: emulator vs simulator cross-validation",
		Header: []string{"metric", "emulator", "simulator"}}
	for _, p := range []float64{25, 50, 75, 95} {
		t.AddRow("throughput p"+f2(p),
			g3(r.EmuThroughput.Percentile(p)), g3(r.SimThroughput.Percentile(p)))
	}
	t.AddRow("max-queue p50", f2(r.EmuMaxQueue.Percentile(50)), f2(r.SimMaxQueue.Percentile(50)))
	t.AddRow("max-queue p99", f2(r.EmuMaxQueue.Percentile(99)), f2(r.SimMaxQueue.Percentile(99)))
	t.AddRow("drops", f2(float64(r.EmuDrops)), f2(float64(r.SimDrops)))
	return t
}

// MedianThroughputGap returns |emu - sim| / sim for the median flow
// throughput — the headline cross-validation number.
func (r *Fig7Result) MedianThroughputGap() float64 {
	s := r.SimThroughput.Median()
	if s == 0 {
		return 0
	}
	d := r.EmuThroughput.Median() - s
	if d < 0 {
		d = -d
	}
	return d / s
}
