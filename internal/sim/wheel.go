package sim

// Hierarchical timer wheel — the engine's default scheduler (DESIGN.md
// §12). The value min-heap it replaces kept superseded timers as
// generation-guarded tombstones: every R2C2/TCP ack re-arm pushed a fresh
// RTO event while the dead one stayed in the heap until expiry, so
// ack-heavy runs dragged one no-op record per ack through every sift. The
// wheel gives every scheduled event an O(1) arm/cancel handle, so a
// superseded timer leaves the schedule instead of being tombstoned.
//
// Determinism contract: dispatch order is byte-identical to the heap's —
// ascending (at, seq), FIFO among equal timestamps. The wheel only buckets
// events by time range; the events of the current level-0 slot are ordered
// exactly by (at, seq) in a small staging heap before any of them fires.
// seq assignment (one per schedule call) is unchanged, so the relative
// order of live events matches the heap scheduler event for event; the
// only observable difference is that cancelled timers never fire their
// no-op, so Engine.Processed() is legitimately lower (see the differential
// oracle in scheduler_oracle_test.go).
//
// Layout (trex-emu's timer framework uses the same shape to sustain
// multi-MPPS event rates): wheelLevels levels of wheelSlots slots; a
// level-l slot spans 2^(wheelShift+l·wheelBits) ps. An event is filed at
// the lowest level whose slot still separates it from the cursor —
// equivalently the level of the highest bit in which its slot number
// differs from the cursor's, so a slot position never wraps past the
// cursor within a level. Advancing cascades one higher-level slot down
// whenever a level's aligned window is exhausted; each node cascades at
// most wheelLevels-1 times over its life.

import (
	"math/bits"

	"r2c2/internal/simtime"
)

const (
	wheelBits  = 8
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
	// wheelShift sets the level-0 slot width: 2^14 ps ≈ 16.4 ns, finer
	// than any per-packet delay the fabric produces (propagation is
	// 100 ns, MTU serialisation ≥ 120 ns at 100 Gbps), so same-slot
	// staging stays tiny while level 0 still absorbs all near events.
	wheelShift = 14
	// wheelLevels covers the full simtime range: slot numbers are
	// ≤ 2^49 (63-bit picoseconds >> 14), and 7 levels of 8 bits index
	// 2^56 slots.
	wheelLevels = 7
)

// Sentinel values for timerNode.level.
const (
	freeLevel   int8 = -1 // on the arena free list
	stagedLevel int8 = -2 // in the staging heap of the current slot
)

// evDead marks a staged node whose timer was cancelled after staging: it
// cannot be unlinked from the middle of the staging heap in O(1), so it is
// tombstoned (kept only for its (at, seq) heap position) and freed when it
// surfaces. Unlike the legacy heap's tombstones this is transient — a node
// is only ever staged within one level-0 slot of firing.
const evDead eventKind = 0xff

// timerNode is one scheduled event in the wheel's node arena. Slot
// membership is an intrusive doubly-linked list (1-based indices, 0 = nil)
// so cancellation unlinks in O(1) without shifting neighbours.
type timerNode struct {
	ev         event
	next, prev int32 // 1-based arena links; 0 terminates
	level      int8  // wheel level, or freeLevel / stagedLevel
	slot       int16 // slot index while level >= 0
}

// timerHandle identifies one armed timer for O(1) cancellation. seq is the
// event's globally unique schedule sequence: a stale handle (the timer
// already fired, was cancelled, or its node was recycled) fails the seq
// check and cancel becomes a no-op, so holders never need to race their
// own expiry. The zero handle (and any heap-scheduler handle) is inert.
type timerHandle struct {
	idx int32 // 1-based arena index; 0 = no timer
	seq uint64
}

// timerWheel is the hierarchical wheel. The zero value is ready to use:
// slot heads are only read when the matching occupancy bit is set, and all
// arena links are 1-based so zeroed memory reads as nil.
type timerWheel struct {
	nodes    []timerNode
	freeHead int32 // 1-based free-list head
	count    int   // live scheduled events (cancelled excluded)

	// cur is the level-0 slot number dispatch has reached: every event in
	// slots <= cur sits in the staging heap, every filed event is ahead.
	cur int64

	head [wheelLevels][wheelSlots]uint32
	occ  [wheelLevels][wheelSlots / 64]uint64

	// staged is a binary min-heap of 1-based node indices ordered by
	// (at, seq): the events of the current level-0 slot, dispatched in
	// exact heap order.
	staged []int32
}

// alloc takes a node off the free list, growing the arena by a chunk when
// it runs dry.
func (w *timerWheel) alloc() int32 {
	if w.freeHead == 0 {
		w.grow()
	}
	idx := w.freeHead
	w.freeHead = w.nodes[idx-1].next
	return idx
}

// grow extends the arena by at least 64 nodes (doubling past that) and
// threads the new tail onto the free list: arming the first N timers costs
// O(log N) slice growths instead of one append per node, and a steady-state
// schedule recycles nodes without ever growing again.
func (w *timerWheel) grow() {
	old := len(w.nodes)
	n := old
	if n < 64 {
		n = 64
	}
	//lint:ignore alloc-hotpath arena growth is amortised: chunks recycle through the free list for the rest of the run
	w.nodes = append(w.nodes, make([]timerNode, n)...)
	for i := len(w.nodes); i > old; i-- {
		w.nodes[i-1] = timerNode{next: w.freeHead, level: freeLevel}
		w.freeHead = int32(i)
	}
}

// free zeroes a node (dropping packet/closure references, like the heap's
// pop did) and returns it to the free list.
func (w *timerWheel) free(idx int32) {
	n := &w.nodes[idx-1]
	*n = timerNode{next: w.freeHead, level: freeLevel}
	w.freeHead = idx
}

// schedule files an event (at and seq already assigned) and returns its
// cancellation handle.
func (w *timerWheel) schedule(ev event) timerHandle {
	idx := w.alloc()
	n := &w.nodes[idx-1]
	n.ev = ev
	w.place(idx, n)
	w.count++
	return timerHandle{idx: idx, seq: ev.seq}
}

// place files a node relative to the current cursor: into staging when its
// slot has already been reached, else at the lowest wheel level whose slot
// number still differs from the cursor's.
func (w *timerWheel) place(idx int32, n *timerNode) {
	s0 := int64(n.ev.at) >> wheelShift
	if s0 <= w.cur {
		n.level = stagedLevel
		w.stagePush(idx)
		return
	}
	// Highest differing bit picks the level, so the slot position is
	// always strictly ahead of the cursor's position at that level and
	// never wraps — the invariant advance() relies on.
	l := (bits.Len64(uint64(s0^w.cur)) - 1) / wheelBits
	slot := int16((s0 >> (uint(l) * wheelBits)) & wheelMask)
	n.level, n.slot = int8(l), slot
	n.prev = 0
	word, bit := int(slot)>>6, uint(slot)&63
	if w.occ[l][word]&(1<<bit) != 0 {
		old := int32(w.head[l][slot])
		n.next = old
		w.nodes[old-1].prev = idx
	} else {
		n.next = 0
		w.occ[l][word] |= 1 << bit
	}
	w.head[l][slot] = uint32(idx)
}

// unlink removes a filed node from its slot list in O(1).
func (w *timerWheel) unlink(idx int32, n *timerNode) {
	if n.prev != 0 {
		w.nodes[n.prev-1].next = n.next
	} else {
		w.head[n.level][n.slot] = uint32(n.next)
		if n.next == 0 {
			w.occ[n.level][int(n.slot)>>6] &^= 1 << (uint(n.slot) & 63)
		}
	}
	if n.next != 0 {
		w.nodes[n.next-1].prev = n.prev
	}
}

// cancel removes a scheduled event. Stale handles (fired, already
// cancelled, or recycled nodes) are detected by the seq check and ignored.
// Returns whether a live timer was removed.
func (w *timerWheel) cancel(h timerHandle) bool {
	if h.idx <= 0 || int(h.idx) > len(w.nodes) {
		return false
	}
	n := &w.nodes[h.idx-1]
	if n.level == freeLevel || n.ev.seq != h.seq || n.ev.kind == evDead {
		return false
	}
	w.count--
	if n.level == stagedLevel {
		// Mid-heap removal is not O(1); tombstone the node in place. Only
		// the ordering keys survive — references are dropped immediately.
		at, emit, seq := n.ev.at, n.ev.emit, n.ev.seq
		n.ev = event{at: at, emit: emit, seq: seq, kind: evDead}
		return true
	}
	w.unlink(h.idx, n)
	w.free(h.idx)
	return true
}

// stageLess orders the staging heap by (at, emit, seq) — the heap
// scheduler's exact comparator. Slots bucket by timestamp range only, so
// refining the within-slot order is safe; see Engine.less for why the
// emission key leaves serial dispatch order untouched.
func (w *timerWheel) stageLess(a, b int32) bool {
	na, nb := &w.nodes[a-1], &w.nodes[b-1]
	if na.ev.at != nb.ev.at {
		return na.ev.at < nb.ev.at
	}
	if na.ev.emit != nb.ev.emit {
		return na.ev.emit < nb.ev.emit
	}
	return na.ev.seq < nb.ev.seq
}

func (w *timerWheel) stagePush(idx int32) {
	if w.staged == nil {
		// Pre-size the staging heap once; it keeps its capacity across
		// slots, so a wheel that never stages more than 64 same-slot events
		// at a time performs exactly one staging allocation per run.
		//lint:ignore alloc-hotpath one-time staging-heap backing allocation, reused across every slot
		w.staged = make([]int32, 0, 64)
	}
	w.staged = append(w.staged, idx)
	i := len(w.staged) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !w.stageLess(w.staged[i], w.staged[parent]) {
			break
		}
		w.staged[i], w.staged[parent] = w.staged[parent], w.staged[i]
		i = parent
	}
}

func (w *timerWheel) stagePop() int32 {
	top := w.staged[0]
	n := len(w.staged) - 1
	w.staged[0] = w.staged[n]
	w.staged = w.staged[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && w.stageLess(w.staged[l], w.staged[min]) {
			min = l
		}
		if r < n && w.stageLess(w.staged[r], w.staged[min]) {
			min = r
		}
		if min == i {
			return top
		}
		w.staged[i], w.staged[min] = w.staged[min], w.staged[i]
		i = min
	}
}

// dropDeadStaged frees cancelled tombstones off the top of the staging
// heap so peek always surfaces a live event.
func (w *timerWheel) dropDeadStaged() {
	for len(w.staged) > 0 {
		top := w.staged[0]
		if w.nodes[top-1].ev.kind != evDead {
			return
		}
		w.stagePop()
		w.free(top)
	}
}

// scanAbove returns the first occupied slot position strictly after pos at
// the given level (within the 256-slot array; positions after the cursor's
// never wrap by construction).
func (w *timerWheel) scanAbove(level, pos int) (int, bool) {
	word := (pos + 1) >> 6
	if word >= wheelSlots/64 {
		return 0, false
	}
	// Mask off positions <= pos in the first word.
	m := w.occ[level][word] &^ ((1 << (uint(pos+1) & 63)) - 1)
	if (pos+1)&63 == 0 {
		m = w.occ[level][word]
	}
	for {
		if m != 0 {
			return word<<6 + bits.TrailingZeros64(m), true
		}
		word++
		if word >= wheelSlots/64 {
			return 0, false
		}
		m = w.occ[level][word]
	}
}

// advance moves the cursor to the next slot holding events and loads it
// into staging. It returns false when the wheel holds nothing at all.
// Events at a level's current position were cascaded when the cursor got
// there, so only positions strictly ahead need scanning; when a level's
// aligned window is exhausted the next occupied higher-level slot is
// cascaded down and the scan restarts from level 0.
func (w *timerWheel) advance() bool {
	for {
		// Level 0: stage the next occupied slot of the current window.
		pos := int(w.cur & wheelMask)
		if p, ok := w.scanAbove(0, pos); ok {
			w.cur = (w.cur &^ wheelMask) | int64(p)
			idx := int32(w.head[0][p])
			w.head[0][p] = 0
			w.occ[0][p>>6] &^= 1 << (uint(p) & 63)
			for idx != 0 {
				n := &w.nodes[idx-1]
				next := n.next
				n.level = stagedLevel
				w.stagePush(idx)
				idx = next
			}
			return true
		}
		// Window exhausted: cascade the next occupied slot of the lowest
		// level that still has one ahead.
		cascaded := false
		for l := 1; l < wheelLevels; l++ {
			posl := int((w.cur >> (uint(l) * wheelBits)) & wheelMask)
			p, ok := w.scanAbove(l, posl)
			if !ok {
				continue
			}
			shift := uint(l) * wheelBits
			base := (w.cur >> shift) &^ wheelMask
			// Jump the cursor to the start of the cascaded slot: every
			// lower level ahead of the old cursor was empty, and all other
			// events at level >= l live in later slots.
			w.cur = (base | int64(p)) << shift
			idx := int32(w.head[l][p])
			w.head[l][p] = 0
			w.occ[l][p>>6] &^= 1 << (uint(p) & 63)
			for idx != 0 {
				n := &w.nodes[idx-1]
				next := n.next
				w.place(idx, n)
				idx = next
			}
			cascaded = true
			break
		}
		if !cascaded {
			return false
		}
		if len(w.staged) > 0 {
			// Cascading landed events directly in the cursor's own slot.
			return true
		}
	}
}

// peek returns the next event's node index without dispatching it, loading
// the next slot into staging if needed. Returns 0 when the wheel is empty.
func (w *timerWheel) peek() int32 {
	for {
		w.dropDeadStaged()
		if len(w.staged) > 0 {
			return w.staged[0]
		}
		if !w.advance() {
			return 0
		}
	}
}

// pop removes and returns the next event (the wheel must be non-empty).
// The node is freed before the event is returned, exactly like the heap's
// pop zeroed its vacated slot.
func (w *timerWheel) pop() event {
	w.peek() // idempotent: ensures the next live event is staged
	idx := w.stagePop()
	ev := w.nodes[idx-1].ev
	w.free(idx)
	w.count--
	return ev
}

// peekAt returns the timestamp of the next live event (and whether one
// exists) — the wheel's replacement for reading the heap's root.
func (w *timerWheel) peekAt() (simtime.Time, bool) {
	idx := w.peek()
	if idx == 0 {
		return 0, false
	}
	return w.nodes[idx-1].ev.at, true
}
