package topology

import "fmt"

// Bridge is one direct cable between two racks: node NodeA of rack RackA
// connects to node NodeB of rack RackB (both directions are created).
type Bridge struct {
	RackA, RackB int
	NodeA, NodeB NodeID
}

// ConnectRacks joins multiple rack fabrics into one larger direct-connect
// network with switchless inter-rack cables — the §6 "Inter-rack
// networking" direction the paper favours over Ethernet bridging
// ("directly connect multiple rack-scale computers without using any
// switch, similar to [49]; Theia [47] also proposes such design with
// multiple parallel connections between racks").
//
// Rack i's node v becomes global node offset(i)+v, where offset is the
// cumulative node count of earlier racks. The combined graph reports
// KindMultiRack; coordinate-based routing (DOR, WLB quadrant walks)
// automatically degrades to minimal-DAG routing on it, while RPS, VLB and
// the broadcast plane work unchanged — which is exactly why R2C2's stack
// runs across racks without modification.
func ConnectRacks(racks []*Graph, bridges []Bridge) (*Graph, error) {
	if len(racks) < 2 {
		return nil, fmt.Errorf("topology: ConnectRacks needs at least two racks")
	}
	if len(bridges) == 0 {
		return nil, fmt.Errorf("topology: ConnectRacks needs at least one bridge")
	}
	// Endpoint nodes must come first in the combined numbering, so racks
	// with internal switches (Clos) cannot be combined naively.
	offsets := make([]int, len(racks))
	total := 0
	for i, g := range racks {
		if g.Nodes() != g.Vertices() {
			return nil, fmt.Errorf("topology: rack %d has internal switches; not supported", i)
		}
		offsets[i] = total
		total += g.Nodes()
	}
	var edges []Link
	for i, g := range racks {
		off := NodeID(offsets[i])
		for lid := 0; lid < g.NumLinks(); lid++ {
			l := g.Link(LinkID(lid))
			edges = append(edges, Link{From: l.From + off, To: l.To + off})
		}
	}
	for _, b := range bridges {
		if b.RackA < 0 || b.RackA >= len(racks) || b.RackB < 0 || b.RackB >= len(racks) {
			return nil, fmt.Errorf("topology: bridge references rack out of range: %+v", b)
		}
		if b.RackA == b.RackB {
			return nil, fmt.Errorf("topology: bridge within one rack: %+v", b)
		}
		if int(b.NodeA) >= racks[b.RackA].Nodes() || int(b.NodeB) >= racks[b.RackB].Nodes() {
			return nil, fmt.Errorf("topology: bridge node out of range: %+v", b)
		}
		a := b.NodeA + NodeID(offsets[b.RackA])
		c := b.NodeB + NodeID(offsets[b.RackB])
		edges = append(edges, Link{From: a, To: c}, Link{From: c, To: a})
	}
	g, err := NewGraph(KindMultiRack, total, total, edges)
	if err != nil {
		return nil, err
	}
	// Record which rack every node came from: shard partitioning and
	// inter-rack link timing key off this metadata.
	g.rackOf = make([]int32, total)
	for i := range racks {
		for v := 0; v < racks[i].Nodes(); v++ {
			g.rackOf[offsets[i]+v] = int32(i)
		}
	}
	g.racks = len(racks)
	// Verify the bridges actually connect everything.
	for v := 1; v < total; v++ {
		if g.Dist(0, NodeID(v)) < 0 {
			return nil, fmt.Errorf("topology: combined fabric is disconnected at node %d", v)
		}
	}
	return g, nil
}
