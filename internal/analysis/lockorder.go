package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockOrder builds the module-wide mutex acquisition graph and reports
// cycles. A node is a lock class — "pkg.Type.field" for a mutex struct
// field, "func.name" for a function-local mutex — and an edge a→b means
// some execution path acquires b while holding a, either directly in one
// function or through a call chain into another package. Two classes on
// a cycle mean two goroutines can each hold one and wait for the other:
// in the emulator that is not a crash but a silent rack-wide stall, with
// every per-node goroutine parked behind the inversion.
//
// The analysis over-approximates held sets (branches are walked in
// source order, a deferred Unlock holds to function end) and only
// reports multi-class cycles, so a finding is a genuine ordering
// inversion, not a double-lock heuristic.
type lockOrder struct{ pkgScope }

// NewLockOrder builds the lock-order rule scoped to the given package
// path suffixes (empty = all packages).
func NewLockOrder(pkgs ...string) ModuleAnalyzer { return &lockOrder{pkgScope{pkgs}} }

func (*lockOrder) Name() string { return "lock-order" }
func (*lockOrder) Doc() string {
	return "build the module-wide mutex acquisition graph; report lock-order cycles (potential deadlocks)"
}

// lockMethods maps the sync methods that acquire / release to +1 / -1.
var lockMethods = map[string]int{
	"(*sync.Mutex).Lock":     +1,
	"(*sync.Mutex).Unlock":   -1,
	"(*sync.RWMutex).Lock":   +1,
	"(*sync.RWMutex).Unlock": -1,
	"(*sync.RWMutex).RLock":  +1,
	// RLock'd locks participate in ordering cycles exactly like Lock'd
	// ones (a writer wedged between two readers), so both map to one
	// class.
	"(*sync.RWMutex).RUnlock": -1,
}

// loEdge is one direct acquisition edge: to was locked while from was
// held.
type loEdge struct {
	from, to string
	pos      token.Position
}

// loCall is a call made with locks held (or any module-internal call,
// held or not — the resolve phase needs the full call graph to compute
// transitive acquisitions).
type loCall struct {
	callee string // types.Func.FullName of the target
	held   []string
	pos    token.Position
}

// loFunc is one function's lock behaviour.
type loFunc struct {
	acquires map[string]token.Position // lock classes locked directly
	calls    []loCall
}

// loFacts is one package's contribution: per-function lock facts.
type loFacts struct {
	funcs map[string]*loFunc
}

func (a *lockOrder) Collect(pass *TypedPass) any {
	facts := &loFacts{funcs: map[string]*loFunc{}}
	c := &loCollector{pass: pass, facts: facts}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			key := obj.FullName()
			fn := &loFunc{acquires: map[string]token.Position{}}
			facts.funcs[key] = fn
			c.walk(fd.Body, fn, key, nil)
		}
	}
	return facts
}

type loCollector struct {
	pass  *TypedPass
	facts *loFacts
}

// walk traverses statements in source order, threading the held-lock
// list. Goroutine bodies start with an empty held set (the launcher's
// locks are not held inside the new goroutine); deferred closures are
// treated the same way, conservatively.
func (c *loCollector) walk(n ast.Node, fn *loFunc, fnKey string, held []string) []string {
	ast.Inspect(n, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.GoStmt:
			c.callSite(v.Call, fn, fnKey, nil)
			if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
				c.walk(lit.Body, fn, fnKey, nil)
			}
			return false
		case *ast.DeferStmt:
			// defer X.Unlock() pins X held to function end; other
			// deferred work runs after the body, with unknown locks held.
			if class, delta := c.lockOp(v.Call, fnKey); class != "" && delta < 0 {
				return false // leave it held
			}
			c.callSite(v.Call, fn, fnKey, nil)
			if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
				c.walk(lit.Body, fn, fnKey, nil)
			}
			return false
		case *ast.CallExpr:
			if class, delta := c.lockOp(v, fnKey); class != "" {
				pos := c.pass.Fset.Position(v.Pos())
				if delta > 0 {
					for _, h := range held {
						if h != class {
							// Direct edge: class locked under h.
							c.edge(fn, h, class, pos)
						}
					}
					if _, ok := fn.acquires[class]; !ok {
						fn.acquires[class] = pos
					}
					held = append(held, class)
				} else {
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == class {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return false
			}
			c.callSite(v, fn, fnKey, held)
			return true
		}
		return true
	})
	return held
}

// edge records a direct acquisition edge as a synthetic call fact (the
// resolve phase treats direct and transitive edges uniformly).
func (c *loCollector) edge(fn *loFunc, from, to string, pos token.Position) {
	fn.calls = append(fn.calls, loCall{callee: "", held: []string{from, "=" + to}, pos: pos})
}

// callSite records a call to a named function together with the locks
// held across it.
func (c *loCollector) callSite(call *ast.CallExpr, fn *loFunc, fnKey string, held []string) {
	var callee *types.Func
	switch f := call.Fun.(type) {
	case *ast.Ident:
		callee, _ = c.pass.Info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = c.pass.Info.Uses[f.Sel].(*types.Func)
	}
	if callee == nil || callee.Pkg() == nil {
		return
	}
	fn.calls = append(fn.calls, loCall{
		callee: callee.FullName(),
		held:   append([]string(nil), held...),
		pos:    c.pass.Fset.Position(call.Pos()),
	})
}

// lockOp classifies a call as a lock acquire (+1) or release (-1) and
// names the lock class, or returns "" for anything else.
func (c *loCollector) lockOp(call *ast.CallExpr, fnKey string) (string, int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	fn, _ := c.pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", 0
	}
	delta, ok := lockMethods[fn.FullName()]
	if !ok {
		return "", 0
	}
	return c.lockClass(sel.X, fnKey), delta
}

// lockClass names the lock a mutex expression denotes. Instances share a
// class: every emuNode's mu is "emu.emuNode.mu" — lock ordering is a
// property of the class, not the instance.
func (c *loCollector) lockClass(x ast.Expr, fnKey string) string {
	if sel, ok := x.(*ast.SelectorExpr); ok {
		// Qualified package-level mutex (othpkg.Mu): class by the package
		// path so in-package Mu.Lock() and cross-package othpkg.Mu.Lock()
		// agree.
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := c.pass.Info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() + "." + sel.Sel.Name
			}
		}
		if tv, ok := c.pass.Info.Types[sel.X]; ok {
			return typeName(tv.Type) + "." + sel.Sel.Name
		}
	}
	if id, ok := x.(*ast.Ident); ok {
		obj := c.pass.Info.Uses[id]
		if obj == nil {
			obj = c.pass.Info.Defs[id]
		}
		if obj != nil {
			switch obj.(type) {
			case *types.Var:
				if obj.Parent() == c.pass.Pkg.Scope() {
					return c.pass.Path + "." + id.Name // package-level mutex
				}
			}
		}
		return fnKey + "." + id.Name
	}
	// Embedded mutex (g.Lock() on a struct embedding sync.Mutex) or a
	// more exotic expression: class by the receiver's type.
	if tv, ok := c.pass.Info.Types[x]; ok {
		return typeName(tv.Type)
	}
	return fnKey + ".?"
}

// typeName renders a type for lock-class naming, stripping pointers.
func typeName(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		if n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Path() + "." + n.Obj().Name()
		}
		return n.Obj().Name()
	}
	return t.String()
}

// Resolve computes each function's transitive lock acquisitions, turns
// calls-while-holding into edges, and reports every cycle in the
// resulting graph once.
func (a *lockOrder) Resolve(facts []PackageFacts) []Diagnostic {
	funcs := map[string]*loFunc{}
	for _, pf := range facts {
		for k, f := range pf.Facts.(*loFacts).funcs {
			funcs[k] = f
		}
	}

	// Transitive acquisitions to a fixpoint over the call graph.
	acq := map[string]map[string]token.Position{}
	for k, f := range funcs {
		m := map[string]token.Position{}
		for c, p := range f.acquires {
			m[c] = p
		}
		acq[k] = m
	}
	for changed := true; changed; {
		changed = false
		for k, f := range funcs {
			for _, call := range f.calls {
				if call.callee == "" {
					continue
				}
				for c, p := range acq[call.callee] {
					if _, ok := acq[k][c]; !ok {
						acq[k][c] = p
						changed = true
					}
				}
			}
		}
	}

	// Edges: direct (synthetic "=" calls) plus held-across-call.
	type edgeInfo struct{ pos token.Position }
	edges := map[string]map[string]edgeInfo{}
	addEdge := func(from, to string, pos token.Position) {
		if from == to {
			return
		}
		if edges[from] == nil {
			edges[from] = map[string]edgeInfo{}
		}
		if _, ok := edges[from][to]; !ok {
			edges[from][to] = edgeInfo{pos: pos}
		}
	}
	for _, f := range funcs {
		for _, call := range f.calls {
			if call.callee == "" {
				// Synthetic direct edge: held = [from, "="+to].
				addEdge(call.held[0], strings.TrimPrefix(call.held[1], "="), call.pos)
				continue
			}
			if len(call.held) == 0 {
				continue
			}
			for to := range acq[call.callee] {
				for _, from := range call.held {
					addEdge(from, to, call.pos)
				}
			}
		}
	}

	// Cycle detection: iterative DFS over the class graph; each cycle is
	// reported at its lexicographically smallest class for determinism.
	nodes := make([]string, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var diags []Diagnostic
	reported := map[string]bool{}
	for _, start := range nodes {
		path := []string{start}
		onPath := map[string]bool{start: true}
		var dfs func(string)
		dfs = func(n string) {
			tos := make([]string, 0, len(edges[n]))
			for t := range edges[n] {
				tos = append(tos, t)
			}
			sort.Strings(tos)
			for _, t := range tos {
				if t == start && len(path) > 1 {
					cycle := append(append([]string(nil), path...), start)
					key := canonicalCycle(cycle)
					if !reported[key] {
						reported[key] = true
						diags = append(diags, Diagnostic{
							Rule: a.Name(),
							Pos:  edges[n][t].pos,
							Message: "lock-order cycle (potential deadlock): " +
								strings.Join(cycle, " -> "),
						})
					}
					continue
				}
				if onPath[t] || t < start {
					continue // cycles through smaller nodes are found from them
				}
				path = append(path, t)
				onPath[t] = true
				dfs(t)
				path = path[:len(path)-1]
				delete(onPath, t)
			}
		}
		dfs(start)
	}
	return diags
}

// canonicalCycle names a cycle independently of its starting point.
func canonicalCycle(cycle []string) string {
	body := cycle[:len(cycle)-1] // drop the repeated start
	min := 0
	for i := range body {
		if body[i] < body[min] {
			min = i
		}
	}
	rot := append(append([]string(nil), body[min:]...), body[:min]...)
	return strings.Join(rot, "->")
}
