package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke cross-validates a handful of small flows. The emulator runs
// in (scaled) wall-clock time, so the workload is kept tiny.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("emulator runs in wall-clock time")
	}
	var out bytes.Buffer
	args := []string{"-crossvalidate", "-flows", "6", "-mbps", "500", "-bytes", "262144", "-interval", "2ms"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "median throughput gap") {
		t.Fatalf("output missing gap summary:\n%s", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestRunFaults cross-validates a tiny fault schedule on both backends.
func TestRunFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("emulator runs in wall-clock time")
	}
	var out bytes.Buffer
	args := []string{"-faults", "gen:7", "-flows", "12", "-bytes", "131072", "-interval", "3ms"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"schedule:", "reroutes", "expected reroute waves"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}
