package sim

import (
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
)

// Slow start: with a large flow and no loss, the congestion window must
// grow beyond its initial value quickly (exponential ramp).
func TestTCPSlowStartRamps(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	tcp := NewTCP(net, routing.NewTable(g), TCPConfig{InitCwnd: 2, InitSSTh: 64})
	id := tcp.StartFlow(0, 5, 4<<20)
	s := tcp.senders[id]
	if s.cwnd != 2 {
		t.Fatalf("initial cwnd = %v", s.cwnd)
	}
	// After a handful of RTTs (tens of µs on this fabric), cwnd must have
	// at least quadrupled.
	eng.Run(200 * simtime.Microsecond)
	if s.cwnd < 8 {
		t.Fatalf("cwnd after 200us = %v; slow start not ramping", s.cwnd)
	}
	eng.Run(time500ms)
	if !tcp.Ledger()[id].Done {
		t.Fatal("flow incomplete")
	}
}

// Congestion avoidance: past ssthresh, growth becomes sub-exponential
// (roughly one packet per RTT).
func TestTCPCongestionAvoidance(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	tcp := NewTCP(net, routing.NewTable(g), TCPConfig{InitCwnd: 8, InitSSTh: 8})
	id := tcp.StartFlow(0, 5, 8<<20)
	s := tcp.senders[id]
	eng.Run(100 * simtime.Microsecond)
	c1 := s.cwnd
	eng.Run(200 * simtime.Microsecond)
	c2 := s.cwnd
	if c2 <= c1 {
		t.Fatalf("congestion avoidance stalled: %v -> %v", c1, c2)
	}
	// CA growth over 100µs (a few RTTs) should be a few packets, not a
	// doubling cascade.
	if c2 > c1*4 {
		t.Fatalf("growth %v -> %v looks exponential above ssthresh", c1, c2)
	}
	_ = id
}

// Fast retransmit: a single dropped packet with continued traffic must be
// recovered via dup-acks without waiting for a full RTO, and the window
// must halve rather than collapse to 1.
func TestTCPFastRetransmit(t *testing.T) {
	g := torus(t, 4, 2)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	tcp := NewTCP(net, routing.NewTable(g), TCPConfig{InitCwnd: 16, InitSSTh: 16, MinRTO: 10 * simtime.Millisecond})
	id := tcp.StartFlow(0, 5, 2<<20)
	s := tcp.senders[id]
	// Drop exactly one data packet in flight by intercepting delivery.
	dropped := false
	orig := net.Deliver
	net.Deliver = func(at topology.NodeID, pkt *Packet) {
		if !dropped && pkt.Kind == KindData && pkt.Seq == 20 && !pkt.Retx {
			dropped = true
			return // swallowed: simulates a loss
		}
		orig(at, pkt)
	}
	eng.Run(5 * simtime.Millisecond) // well under the 10ms RTO
	if !dropped {
		t.Fatal("target packet never seen")
	}
	if tcp.Retransmissions == 0 {
		t.Fatal("no fast retransmit before the RTO")
	}
	if s.cwnd < 2 {
		t.Fatalf("cwnd collapsed to %v; fast retransmit should halve, not reset", s.cwnd)
	}
	eng.Run(2 * simtime.Second)
	if !tcp.Ledger()[id].Done {
		t.Fatalf("flow incomplete: %d/%d", tcp.Ledger()[id].BytesRcvd, tcp.Ledger()[id].SizeBytes)
	}
}
