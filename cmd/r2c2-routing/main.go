// Command r2c2-routing regenerates the routing-study results: the
// Figure 2 throughput table (saturation throughput of RPS, destination-tag,
// VLB and WLB across classic torus traffic patterns) and the Figure 18
// adaptive routing-protocol selection comparison.
//
// Usage:
//
//	r2c2-routing -fig2              # Figure 2 on the 8-ary 2-cube
//	r2c2-routing -fig18             # Figure 18 on the 512-node 3D torus
//	r2c2-routing -fig18 -k 4 -dims 3  # reduced scale
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"r2c2/internal/experiments"
	"r2c2/internal/genetic"
	"r2c2/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "r2c2-routing:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("r2c2-routing", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		fig2   = fs.Bool("fig2", false, "regenerate the Figure 2 routing-throughput table")
		fig18  = fs.Bool("fig18", false, "regenerate the Figure 18 adaptive-selection comparison")
		k      = fs.Int("k", 8, "torus radix")
		dims   = fs.Int("dims", 3, "torus dimensions (fig18; fig2 always uses the paper's 8-ary 2-cube unless -k/-dims are set)")
		trials = fs.Int("worst-trials", 50, "random permutations searched for the worst-case row")
		pop    = fs.Int("population", 100, "GA population size (paper: 100)")
		gens   = fs.Int("generations", 50, "GA generation budget")
		seed   = fs.Int64("seed", 1, "random seed")
		csv    = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*fig2 && !*fig18 {
		*fig2, *fig18 = true, true
	}

	if *fig2 {
		kk, dd := *k, *dims
		if !flagSet(fs, "k") && !flagSet(fs, "dims") {
			kk, dd = 8, 2 // the paper's Figure 2 geometry
		}
		g, err := topology.NewTorus(kk, dd)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Figure 2 topology: %d-ary %d-cube (%d nodes)\n", kk, dd, g.Nodes())
		res := experiments.Fig2(g, *trials, *seed)
		render(stdout, res.Table(), *csv)
	}

	if *fig18 {
		s := experiments.PaperScale()
		s.K, s.Dims, s.Seed = *k, *dims, *seed
		fmt.Fprintf(stdout, "Figure 18 topology: %d-ary %d-cube (%d nodes)\n", s.K, s.Dims, s.Torus().Nodes())
		res := experiments.Fig18(s,
			[]float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0},
			genetic.Config{Population: *pop, MaxGens: *gens})
		render(stdout, res.Table(), *csv)
	}
	return nil
}

func flagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// render prints a result table as aligned text or CSV.
func render(w io.Writer, t *experiments.Table, csv bool) {
	if csv {
		fmt.Fprint(w, "# ", t.Title, "\n", t.CSV())
		return
	}
	fmt.Fprintln(w, t)
}
