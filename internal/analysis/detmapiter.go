package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// detMapIter flags `range` over a map in the deterministic packages when
// the loop body reaches an order-sensitive sink. Go randomises map
// iteration order per run, so any observable effect ordered by it breaks
// the byte-identical-output contract the sharded engine (ROADMAP) and the
// sim/emu parity tests rest on.
//
// The sink lattice (DESIGN.md §13):
//
//   - slice append of loop-derived values to a variable declared outside
//     the loop, unless the slice is sorted later in the same function
//     (the collect-keys-then-sort idiom);
//   - event scheduling — a call that directly or transitively reaches a
//     scheduling primitive (Engine.After/schedule, Network.Inject, the
//     time package's timers) with loop-derived data: scheduling order
//     assigns event sequence numbers, which are the FIFO tie-break;
//   - floating-point accumulation into an outer variable (FP addition is
//     not associative, so the sum's low bits depend on iteration order);
//   - order-dependent assignment to an outer variable (last-write-wins,
//     which includes the if-compare argmin/argmax idiom: ties between
//     equal values resolve in iteration order);
//   - builtin min/max folded into an outer variable (same tie problem);
//   - cross-goroutine publication — channel send or close, goroutine
//     launch, an atomic write, or a call that transitively does any of
//     those with loop-derived data: another goroutine observes the
//     per-iteration effects in map order;
//   - formatted output (fmt.Print*/Fprint*) of loop-derived values.
//
// Recognised safe shapes: commutative integer/bitwise reduction (+, -, *,
// |, &, ^ and counters — exact arithmetic is order-free), delete from any
// map, writes to a map index (set semantics), work confined to variables
// declared inside the loop body, and calls that carry no loop-derived
// data (n identical effects are order-free). Early `break`/`return`
// element selection is deliberately outside the lattice: the dominant
// shape is a uniqueness search, which is order-free; the lattice trades
// that soundness hole for a tree that can actually be driven to zero.
//
// Collect classifies each map-range loop locally and records every
// function's callees plus whether it directly schedules or publishes;
// Resolve closes those two properties over the module call graph and
// fills in the loops' pending call sinks.
type detMapIter struct{ pkgScope }

// NewDetMapIter builds the map-iteration-order rule scoped to the given
// package path suffixes (empty = all packages).
func NewDetMapIter(pkgs ...string) ModuleAnalyzer { return &detMapIter{pkgScope{pkgs}} }

func (*detMapIter) Name() string { return "det-map-iter" }
func (*detMapIter) Doc() string {
	return "flag map iteration whose body reaches an order-sensitive sink (append/schedule/float-accumulate/min-max/publish)"
}

// dmFunc is one function's contribution to the module effect graph.
type dmFunc struct {
	sched   bool // directly calls a scheduling primitive
	publish bool // directly sends/closes/launches/atomically writes
	callees map[string]bool
}

// dmCall is a loop-body call into a named function with loop-derived
// data, pending the callee's transitive effect in Resolve.
type dmCall struct {
	callee string
	short  string // display name
}

// dmLoop is one map-range loop with at least a potential finding.
type dmLoop struct {
	pos   token.Position
	expr  string   // the ranged expression, for the message
	sinks []string // locally classified sink descriptions
	calls []dmCall
}

// dmFacts is one package's facts.
type dmFacts struct {
	funcs map[string]*dmFunc
	loops []*dmLoop
}

func (a *detMapIter) Collect(pass *TypedPass) any {
	facts := &dmFacts{funcs: map[string]*dmFunc{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fn := &dmFunc{callees: map[string]bool{}}
			facts.funcs[obj.FullName()] = fn
			collectEffects(pass, fd.Body, fn)
			sorted := sortTargets(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := pass.Info.Types[rs.X].Type; t == nil || !isMap(t) {
					return true
				}
				if loop := classifyLoop(pass, rs, sorted); loop != nil {
					facts.loops = append(facts.loops, loop)
				}
				return true
			})
		}
	}
	if len(facts.funcs) == 0 && len(facts.loops) == 0 {
		return nil
	}
	return facts
}

// collectEffects records a function's named callees and whether its body
// directly schedules events or publishes across goroutines.
func collectEffects(pass *TypedPass, body ast.Node, fn *dmFunc) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt, *ast.GoStmt:
			fn.publish = true
		case *ast.CallExpr:
			if builtinName(pass, v) == "close" {
				fn.publish = true
				return true
			}
			callee := calleeFunc(pass, v)
			if callee == nil {
				return true
			}
			switch {
			case isSchedulerPrimitive(callee):
				fn.sched = true
			case isAtomicWrite(callee):
				fn.publish = true
			default:
				fn.callees[callee.Origin().FullName()] = true
			}
		}
		return true
	})
}

// classifyLoop inspects one map-range loop body and returns its pending
// finding, or nil when every effect is a recognised safe shape.
func classifyLoop(pass *TypedPass, rs *ast.RangeStmt, sorted map[string]bool) *dmLoop {
	deps := loopDeps(pass, rs)
	loop := &dmLoop{pos: pass.Fset.Position(rs.Pos()), expr: exprString(rs.X)}
	sink := func(format string, args ...any) {
		loop.sinks = append(loop.sinks, fmt.Sprintf(format, args...))
	}
	dep := func(exprs ...ast.Expr) bool {
		for _, e := range exprs {
			if e != nil && mentionsDeps(pass, e, deps) {
				return true
			}
		}
		return false
	}
	outer := func(e ast.Expr) bool {
		obj := rootObject(pass, e)
		return obj != nil && !(obj.Pos() >= rs.Pos() && obj.Pos() < rs.End())
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			if dep(v.Chan, v.Value) {
				sink("channel send of loop-derived data")
			}
		case *ast.GoStmt:
			if dep(v.Call.Fun) || dep(v.Call.Args...) {
				sink("goroutine launched with loop-derived data")
			}
		case *ast.AssignStmt:
			classifyAssign(pass, v, rs, sorted, deps, sink, dep, outer)
		case *ast.CallExpr:
			classifyCall(pass, v, loop, sink, dep)
		}
		return true
	})
	if len(loop.sinks) == 0 && len(loop.calls) == 0 {
		return nil
	}
	return loop
}

// classifyAssign applies the reduction lattice to one assignment inside a
// map-range body.
func classifyAssign(pass *TypedPass, v *ast.AssignStmt, rs *ast.RangeStmt, sorted map[string]bool,
	deps map[types.Object]bool, sink func(string, ...any), dep func(...ast.Expr) bool, outer func(ast.Expr) bool) {
	if v.Tok == token.DEFINE {
		return // new loop-local variable: dependence only, handled by loopDeps
	}
	if len(v.Lhs) != len(v.Rhs) && len(v.Rhs) != 1 {
		return
	}
	for i, lhs := range v.Lhs {
		rhs := v.Rhs[0]
		if i < len(v.Rhs) {
			rhs = v.Rhs[i]
		}
		if !outer(lhs) {
			continue // confined to the loop body (or the loop element itself)
		}
		if !dep(rhs) && v.Tok == token.ASSIGN {
			continue // same value every iteration: order-free
		}
		lt := pass.Info.Types[lhs].Type
		switch v.Tok {
		case token.ASSIGN:
			if ix, ok := lhs.(*ast.IndexExpr); ok && dep(ix.Index) {
				// Indexed write keyed by loop-derived data (vec[k] = v,
				// m[k] = v): distinct keys land in distinct slots, so the
				// final state is order-free (non-injective derived keys
				// are a documented hole in the lattice). A loop-invariant
				// index falls through to the last-write-wins sink.
				continue
			}
			// x = append(x, v...) — the collect idiom.
			if call, ok := rhs.(*ast.CallExpr); ok && builtinName(pass, call) == "append" &&
				len(call.Args) > 0 && exprString(stripSlices(call.Args[0])) == exprString(lhs) {
				if !dep(call.Args[1:]...) {
					continue // identical elements: any order yields the same slice
				}
				if !sorted[exprString(lhs)] {
					sink("append of loop-derived values to %s (emitted without sort)", exprString(lhs))
				}
				continue
			}
			// x = min(x, v) / x = max(x, v).
			if call, ok := rhs.(*ast.CallExpr); ok {
				if b := builtinName(pass, call); b == "min" || b == "max" {
					sink("%s folded into %s (ties resolve in iteration order)", b, exprString(lhs))
					continue
				}
			}
			// x = x + v and friends: reduce like a compound assignment.
			if bin, ok := rhs.(*ast.BinaryExpr); ok &&
				(exprString(bin.X) == exprString(lhs) || exprString(bin.Y) == exprString(lhs)) {
				classifyReduction(lt, bin.Op, exprString(lhs), sink)
				continue
			}
			sink("order-dependent assignment to %s (last write in map order wins)", exprString(lhs))
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN,
			token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
			classifyReduction(lt, compoundOp(v.Tok), exprString(lhs), sink)
		}
	}
}

// classifyReduction decides whether folding values into an outer variable
// with the given operator is order-free.
func classifyReduction(lt types.Type, op token.Token, name string, sink func(string, ...any)) {
	if isFloat(lt) {
		sink("floating-point accumulation into %s (FP addition is not associative)", name)
		return
	}
	if isString(lt) {
		sink("string concatenation into %s in map order", name)
		return
	}
	switch op {
	case token.ADD, token.SUB, token.MUL, token.AND, token.OR, token.XOR, token.AND_NOT:
		return // exact commutative/associative reduction
	}
	sink("non-commutative reduction into %s (%s) in map order", name, op)
}

// compoundOp maps a compound-assignment token to its binary operator.
func compoundOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return tok
}

// classifyCall checks one loop-body call: scheduling primitives, atomic
// writes, channel close and formatted output are direct sinks; any other
// named callee carrying loop-derived data is recorded for the transitive
// effect check in Resolve.
func classifyCall(pass *TypedPass, v *ast.CallExpr, loop *dmLoop, sink func(string, ...any), dep func(...ast.Expr) bool) {
	if tv, ok := pass.Info.Types[v.Fun]; ok && tv.IsType() {
		return // conversion
	}
	if b := builtinName(pass, v); b != "" {
		if b == "close" && dep(v.Args...) {
			sink("close of a loop-derived channel")
		}
		return // delete/len/cap/…: order-free; min/max handled at the assignment
	}
	callee := calleeFunc(pass, v)
	if callee == nil {
		return // dynamic call: out of the lattice
	}
	recv := receiverExpr(v)
	if !dep(v.Args...) && (recv == nil || !dep(recv)) {
		return // no loop-derived data: n identical effects are order-free
	}
	full := callee.Origin().FullName()
	switch {
	case isSchedulerPrimitive(callee):
		sink("event scheduling via %s (scheduling order assigns event sequence numbers)", shortFuncName(full))
	case isAtomicWrite(callee):
		sink("atomic write via %s publishes in map order", shortFuncName(full))
	case isFmtOutput(callee):
		sink("formatted output of loop-derived values via %s", shortFuncName(full))
	default:
		loop.calls = append(loop.calls, dmCall{callee: full, short: shortFuncName(full)})
	}
}

// loopDeps computes the loop-derived variable set: the key/value objects
// plus, to a fixpoint, every variable assigned from a loop-derived
// expression inside the body.
func loopDeps(pass *TypedPass, rs *ast.RangeStmt) map[types.Object]bool {
	deps := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			deps[obj] = true
		} else if obj := pass.Info.Uses[id]; obj != nil {
			deps[obj] = true
		}
	}
	for i := 0; i < 8; i++ { // fixpoint; depth 8 covers any sane chain
		grew := false
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				rhs := as.Rhs[0]
				if i < len(as.Rhs) {
					rhs = as.Rhs[i]
				}
				if !mentionsDeps(pass, rhs, deps) {
					continue
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var obj types.Object
				if obj = pass.Info.Defs[id]; obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj != nil && !deps[obj] {
					deps[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			break
		}
	}
	return deps
}

// mentionsDeps reports whether an expression references any loop-derived
// variable.
func mentionsDeps(pass *TypedPass, e ast.Expr, deps map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		var obj types.Object
		if obj = pass.Info.Uses[id]; obj == nil {
			obj = pass.Info.Defs[id]
		}
		if obj != nil && deps[obj] {
			found = true
		}
		return !found
	})
	return found
}

// sortTargets collects the exprStrings passed to a sort call anywhere in
// the function, recognising the collect-keys-then-sort idiom.
func sortTargets(pass *TypedPass, body ast.Node) map[string]bool {
	targets := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch pkg, name := fn.Pkg().Path(), fn.Name(); {
		case pkg == "sort" && (name == "Slice" || name == "SliceStable" || name == "Sort" ||
			name == "Stable" || name == "Strings" || name == "Ints" || name == "Float64s"):
			targets[exprString(stripSlices(call.Args[0]))] = true
		case pkg == "slices" && strings.HasPrefix(name, "Sort"):
			targets[exprString(stripSlices(call.Args[0]))] = true
		}
		return true
	})
	return targets
}

// rootObject resolves an lvalue's base variable: the object of the
// innermost identifier after stripping selectors, indexing, dereferences
// and parens (sf.rate -> sf, r.tick[h] -> r).
func rootObject(pass *TypedPass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.Ident:
			if obj := pass.Info.Uses[v]; obj != nil {
				return obj
			}
			return pass.Info.Defs[v]
		default:
			return nil
		}
	}
}

// receiverExpr returns the receiver of a method call expression, or nil.
func receiverExpr(v *ast.CallExpr) ast.Expr {
	if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// isSchedulerPrimitive recognises the event-scheduling seeds: the
// simulator engine's scheduling methods (by name — After/Schedule/
// schedule/after/Inject/InjectBroadcast on any in-module receiver) and
// the time package's timer constructors.
func isSchedulerPrimitive(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "time" {
		switch fn.Name() {
		case "After", "AfterFunc", "Tick", "NewTimer", "NewTicker":
			return true
		}
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "After", "after", "Schedule", "schedule", "Inject", "InjectBroadcast":
		return true
	}
	return false
}

// isAtomicWrite recognises sync/atomic mutation: package functions
// (StoreX/AddX/SwapX/CompareAndSwapX) and the write methods of the atomic
// value types.
func isAtomicWrite(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	name := fn.Name()
	for _, p := range []string{"Store", "Add", "Swap", "CompareAndSwap", "Or", "And"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// isFmtOutput recognises fmt's printing functions (Sprint* excluded: a
// formatted string is only order-sensitive once it reaches a sink, which
// the other checks cover).
func isFmtOutput(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint"))
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// Resolve closes the sched/publish properties over the module call graph
// and emits one finding per order-sensitive loop.
func (a *detMapIter) Resolve(facts []PackageFacts) []Diagnostic {
	funcs := map[string]*dmFunc{}
	var loops []*dmLoop
	for _, pf := range facts {
		f := pf.Facts.(*dmFacts)
		for k, fn := range f.funcs {
			funcs[k] = fn
		}
		loops = append(loops, f.loops...)
	}

	// Transitive closure: a function schedules/publishes if any callee
	// does. Plain fixpoint — the graph is module-sized.
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			if fn.sched && fn.publish {
				continue
			}
			for c := range fn.callees {
				callee, ok := funcs[c]
				if !ok {
					continue
				}
				if callee.sched && !fn.sched {
					fn.sched = true
					changed = true
				}
				if callee.publish && !fn.publish {
					fn.publish = true
					changed = true
				}
			}
		}
	}

	var diags []Diagnostic
	for _, loop := range loops {
		msgs := append([]string(nil), loop.sinks...)
		for _, call := range loop.calls {
			fn, ok := funcs[call.callee]
			if !ok {
				continue // outside the module: out of the lattice
			}
			switch {
			case fn.sched:
				msgs = append(msgs, fmt.Sprintf("call to %s schedules events", call.short))
			case fn.publish:
				msgs = append(msgs, fmt.Sprintf("call to %s publishes across goroutines", call.short))
			}
		}
		if len(msgs) == 0 {
			continue
		}
		sort.Strings(msgs)
		msgs = dedupStrings(msgs)
		diags = append(diags, Diagnostic{
			Rule: a.Name(),
			Pos:  loop.pos,
			Message: fmt.Sprintf("map iteration over %s is order-sensitive: %s",
				loop.expr, strings.Join(msgs, "; ")),
		})
	}
	return diags
}

// dedupStrings removes adjacent duplicates from a sorted slice.
func dedupStrings(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
