package sim

// Slab arena for simulated packets (DESIGN.md §12), replacing the
// unbounded per-run free list. Packets are carved from fixed-size slabs —
// the mbuf-pool idiom DPDK and trex-emu use, adapted to a single-threaded
// engine: one slab is one allocation holding pktSlabSize Packet structs
// plus an index stack, so steady-state newPacket/freePacket touch no
// allocator at all, and a transient incast burst no longer pins its peak
// packet count for the rest of the run — slabs that drain back to fully
// free beyond a small idle watermark are released to the GC.
//
// Membership invariants: a slab lives on exactly one of the arena's two
// lists (partial: ≥1 free and ≥1 live slot; idle: all slots free) or on
// neither while completely full. alloc always takes from the LAST partial
// slab, so filling it up is a pop; freeing maintains list membership via
// the slab's recorded position (swap-remove).

const (
	// pktSlabSize packets per slab: 64 × ~14 cache lines ≈ 1 page-ish
	// allocation, large enough to amortise slab bookkeeping, small enough
	// that burst slabs drain back to fully-free quickly.
	pktSlabSize = 64
	// maxIdleSlabs fully-free slabs are retained for reuse; beyond that
	// they are released to the GC. Steady-state traffic keeps its working
	// set in partial slabs, so the idle list only absorbs burst decay.
	maxIdleSlabs = 2
)

// Slab list tags (pktSlab.list).
const (
	slabFull    int8 = iota // every slot live: on no list
	slabPartial             // on arena.partial
	slabIdle                // on arena.idle
)

// pktSlab is one arena segment: a fixed array of packets and a stack of
// free slot indices.
type pktSlab struct {
	pkts    [pktSlabSize]Packet
	freeIdx [pktSlabSize]uint8
	nfree   int
	list    int8
	pos     int // index within its current list (swap-remove support)
}

// pktArena carves packets from slabs. The zero value is ready to use.
type pktArena struct {
	partial []*pktSlab
	idle    []*pktSlab

	live     int // packets currently allocated
	slabs    int // slabs currently owned (partial + idle + full)
	peak     int // high-water mark of slabs
	released int // fully-free slabs dropped to the GC
}

// ArenaStats is a snapshot of arena occupancy, exposed for retention tests
// and capacity planning.
type ArenaStats struct {
	Live          int // packets currently allocated
	Slabs         int // live arena segments (full + partial + idle)
	IdleSlabs     int // fully-free segments retained for reuse
	PeakSlabs     int // segment high-water mark
	ReleasedSlabs int // segments returned to the GC after draining
}

func (a *pktArena) stats() ArenaStats {
	return ArenaStats{
		Live:          a.live,
		Slabs:         a.slabs,
		IdleSlabs:     len(a.idle),
		PeakSlabs:     a.peak,
		ReleasedSlabs: a.released,
	}
}

// newSlab allocates and initialises one segment: every slot free, every
// packet tagged pooled and back-linked to its slab.
func (a *pktArena) newSlab() *pktSlab {
	//lint:ignore alloc-hotpath one slab per 64-packet pool-capacity step, amortised across the run
	s := &pktSlab{nfree: pktSlabSize}
	for i := 0; i < pktSlabSize; i++ {
		s.freeIdx[i] = uint8(i)
		s.pkts[i].slab = s
		s.pkts[i].slabIdx = uint8(i)
		s.pkts[i].pooled = true
	}
	a.slabs++
	if a.slabs > a.peak {
		a.peak = a.slabs
	}
	return s
}

// alloc returns a zeroed, pooled packet slot.
func (a *pktArena) alloc() *Packet {
	var s *pktSlab
	if k := len(a.partial); k > 0 {
		s = a.partial[k-1]
	} else if k := len(a.idle); k > 0 {
		s = a.idle[k-1]
		a.idle = a.idle[:k-1]
		s.list = slabPartial
		s.pos = len(a.partial)
		//lint:ignore alloc-hotpath list append is amortised and bounded by slab count, not packet count
		a.partial = append(a.partial, s)
	} else {
		s = a.newSlab()
		s.list = slabPartial
		s.pos = len(a.partial)
		//lint:ignore alloc-hotpath list append is amortised and bounded by slab count, not packet count
		a.partial = append(a.partial, s)
	}
	s.nfree--
	idx := s.freeIdx[s.nfree]
	if s.nfree == 0 {
		// s is the last partial (alloc always takes from the tail): pop.
		a.partial = a.partial[:len(a.partial)-1]
		s.list = slabFull
	}
	a.live++
	return &s.pkts[idx]
}

// free returns a packet slot to its slab, maintaining list membership and
// releasing fully-drained slabs beyond the idle watermark.
func (a *pktArena) free(p *Packet) {
	s := p.slab
	if s == nil {
		return // externally constructed packet: let the GC have it
	}
	s.freeIdx[s.nfree] = p.slabIdx
	s.nfree++
	a.live--
	switch {
	case s.nfree == 1:
		// Was full: back onto the partial list.
		s.list = slabPartial
		s.pos = len(a.partial)
		//lint:ignore alloc-hotpath list append is amortised and bounded by slab count, not packet count
		a.partial = append(a.partial, s)
	case s.nfree == pktSlabSize:
		// Fully drained: off partial, onto idle or released to the GC.
		a.removePartial(s)
		if len(a.idle) < maxIdleSlabs {
			s.list = slabIdle
			s.pos = len(a.idle)
			a.idle = append(a.idle, s)
		} else {
			a.slabs--
			a.released++
		}
	}
}

// removePartial swap-removes s from the partial list.
func (a *pktArena) removePartial(s *pktSlab) {
	last := len(a.partial) - 1
	if s.pos != last {
		moved := a.partial[last]
		a.partial[s.pos] = moved
		moved.pos = s.pos
	}
	a.partial[last] = nil
	a.partial = a.partial[:last]
}
