//go:build debug

package sim

import (
	"strings"
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
)

func TestAssertInvariantPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("assertInvariant(false) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "invariant violated") || !strings.Contains(msg, "rate 7") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	assertInvariant(true, "must not fire")
	assertInvariant(false, "rate %d", 7)
}

// TestPacketDoubleFreePanics checks the pool's use-after-free tripwire:
// releasing a packet that is already on the free list must panic under the
// debug build instead of silently corrupting the pool.
func TestPacketDoubleFreePanics(t *testing.T) {
	g := torus(t, 3, 3)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	pkt := net.newPacket()
	net.freePacket(pkt)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double-free did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "double-free") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	net.freePacket(pkt)
}

// TestInvariantsHoldOnSmallRun drives a complete R2C2 simulation with the
// debug assertions armed: any stale event pop or over-capacity pacing rate
// panics the test.
func TestInvariantsHoldOnSmallRun(t *testing.T) {
	if !invariantsEnabled {
		t.Fatal("debug build without invariants enabled")
	}
	g := torus(t, 3, 3)
	eng := &Engine{}
	net := NewNetwork(g, eng, NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	r := NewR2C2(net, routing.NewTable(g), R2C2Config{Headroom: 0.05, Protocol: routing.RPS})
	r.StartFlow(0, 13, 2<<20, 1, 0)
	r.StartFlow(5, 20, 1<<20, 2, 0)
	r.StartHostLimitedFlow(7, 3, 1<<20, 1, 0, 1e9)
	eng.Run(200 * simtime.Millisecond)
	for id, rec := range r.Ledger() {
		if !rec.Done {
			t.Fatalf("flow %v incomplete under debug build: %d/%d", id, rec.BytesRcvd, rec.SizeBytes)
		}
	}
}
