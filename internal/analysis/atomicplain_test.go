package analysis

import (
	"strings"
	"testing"
)

func TestAtomicPlainMix(t *testing.T) {
	a := NewAtomicPlainMix()
	cases := []struct {
		name string
		src  string
		want int
		msg  string
	}{
		{"mixed-read", `package p
import "sync/atomic"
type counter struct{ n uint64 }
func (c *counter) bump() { atomic.AddUint64(&c.n, 1) }
func (c *counter) peek() uint64 { return c.n }`, 1, "mixes plain and sync/atomic"},
		{"mixed-write", `package p
import "sync/atomic"
type counter struct{ n uint64 }
func (c *counter) bump() { atomic.AddUint64(&c.n, 1) }
func (c *counter) reset() { c.n = 0 }`, 1, "plain here"},
		{"all-atomic-ok", `package p
import "sync/atomic"
type counter struct{ n uint64 }
func (c *counter) bump() { atomic.AddUint64(&c.n, 1) }
func (c *counter) peek() uint64 { return atomic.LoadUint64(&c.n) }`, 0, ""},
		{"all-plain-ok", `package p
type counter struct{ n uint64 }
func (c *counter) bump() { c.n++ }
func (c *counter) peek() uint64 { return c.n }`, 0, ""},
		{"atomic-typed-field-ok", `package p
import "sync/atomic"
type counter struct{ n atomic.Uint64 }
func (c *counter) bump() { c.n.Add(1) }
func (c *counter) peek() uint64 { return c.n.Load() }`, 0, ""},
		{"composite-literal-init-ok", `package p
import "sync/atomic"
type counter struct{ n uint64 }
func newCounter() *counter { return &counter{n: 0} }
func (c *counter) bump() { atomic.AddUint64(&c.n, 1) }`, 0, ""},
		{"distinct-fields-ok", `package p
import "sync/atomic"
type pair struct{ hot, cold uint64 }
func (p *pair) bump() { atomic.AddUint64(&p.hot, 1) }
func (p *pair) slow() { p.cold++ }`, 0, ""},
		{"cas-mixed", `package p
import "sync/atomic"
type gate struct{ state uint32 }
func (g *gate) open() bool { return atomic.CompareAndSwapUint32(&g.state, 0, 1) }
func (g *gate) force() { g.state = 1 }`, 1, "atomic at"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := checkModule(t, onePkg("m/p", tc.src), a)
			if len(diags) != tc.want {
				t.Fatalf("got %d findings, want %d: %v", len(diags), tc.want, diags)
			}
			if tc.want > 0 && !strings.Contains(diags[0].Message, tc.msg) {
				t.Errorf("message %q does not mention %q", diags[0].Message, tc.msg)
			}
		})
	}
}

// TestAtomicPlainMixCrossPackage: the atomic site and the plain site live
// in different packages; only the module-wide join sees both.
func TestAtomicPlainMixCrossPackage(t *testing.T) {
	a := NewAtomicPlainMix()
	pkgs := map[string]map[string]string{
		"m/internal/emu": {"state.go": `package emu
import "sync/atomic"
type Node struct{ Seq uint64 }
func (n *Node) Advance() { atomic.AddUint64(&n.Seq, 1) }`},
		"m/internal/experiments": {"probe.go": `package experiments
import "m/internal/emu"
func probe(n *emu.Node) uint64 { return n.Seq }`},
	}
	diags := checkModule(t, pkgs, a)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "emu.Node.Seq") {
		t.Fatalf("want one cross-package finding naming emu.Node.Seq, got %v", diags)
	}
}

// TestAtomicPlainMixIgnore: a justified plain site (pre-publication
// write) can be suppressed without silencing the rule elsewhere.
func TestAtomicPlainMixIgnore(t *testing.T) {
	a := NewAtomicPlainMix()
	src := `package p
import "sync/atomic"
type counter struct{ n uint64 }
func (c *counter) bump() { atomic.AddUint64(&c.n, 1) }
func (c *counter) reset() {
	//lint:ignore atomic-plain-mix fixture: called before any goroutine starts
	c.n = 0
}`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 0 {
		t.Fatalf("ignored finding should be suppressed, got %v", diags)
	}
}
