//go:build debug

package sim

import "fmt"

// invariantsEnabled gates the runtime invariant checks. In debug builds
// (`go test -tags debug ./internal/sim`) the simulator asserts, on every
// event pop and rate recomputation, the properties the static rules can
// only approximate: the virtual clock never goes backwards, no stale event
// is ever popped, and no sender is paced above link capacity.
const invariantsEnabled = true

// assertInvariant panics with a formatted message when cond is false. All
// call sites are guarded by invariantsEnabled so release builds pay
// nothing: the constant-false branch is eliminated at compile time.
func assertInvariant(cond bool, format string, args ...any) {
	if !cond {
		panic("sim: invariant violated: " + fmt.Sprintf(format, args...))
	}
}
