package waterfill

import (
	"math"
	"math/rand"
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/topology"
)

// referenceAllocate is an independent, slow implementation of weighted
// max-min with fixed per-link splits: progressive filling in tiny epsilon
// steps. It exists purely to cross-check the production water-filling.
func referenceAllocate(cfg Config, flows []Flow, steps int) []float64 {
	cap := cfg.Capacity * (1 - cfg.Headroom)
	rates := make([]float64, len(flows))
	frozen := make([]bool, len(flows))
	loads := make([]float64, cfg.NumLinks)
	// Priorities: strictly higher classes first.
	prios := map[uint8]bool{}
	for _, f := range flows {
		prios[f.Priority] = true
	}
	var order []int
	for p := 256 - 1; p >= 0; p-- {
		if !prios[uint8(p)] {
			continue
		}
		order = append(order, p)
	}
	eps := cap / float64(steps)
	for _, p := range order {
		active := []int{}
		for i, f := range flows {
			if int(f.Priority) == p && len(f.Phi.Links) > 0 && f.Demand > 0 {
				active = append(active, i)
			} else if int(f.Priority) == p && len(f.Phi.Links) == 0 && f.Demand != Unlimited {
				rates[i] = f.Demand
				frozen[i] = true
			}
		}
		for progress := true; progress; {
			progress = false
			for _, i := range active {
				if frozen[i] {
					continue
				}
				f := flows[i]
				delta := eps * f.Weight
				if f.Demand != Unlimited && rates[i]+delta > f.Demand {
					delta = f.Demand - rates[i]
				}
				if delta <= 0 {
					frozen[i] = true
					continue
				}
				// Feasible?
				ok := true
				for j, lid := range f.Phi.Links {
					if loads[lid]+delta*f.Phi.Frac[j] > cap+1e-12 {
						ok = false
						break
					}
				}
				if !ok {
					frozen[i] = true
					continue
				}
				for j, lid := range f.Phi.Links {
					loads[lid] += delta * f.Phi.Frac[j]
				}
				rates[i] += delta
				progress = true
			}
		}
	}
	return rates
}

// The production allocator must agree with the epsilon-step reference on
// random instances, within the reference's discretisation error.
func TestAllocateMatchesReference(t *testing.T) {
	g, err := topology.NewTorus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewTable(g)
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 15; trial++ {
		nFlows := 3 + rng.Intn(10)
		flows := make([]Flow, nFlows)
		for i := range flows {
			src := topology.NodeID(rng.Intn(g.Nodes()))
			dst := topology.NodeID(rng.Intn(g.Nodes()))
			for dst == src {
				dst = topology.NodeID(rng.Intn(g.Nodes()))
			}
			flows[i] = Flow{
				Phi:      tab.Phi(routing.RPS, src, dst),
				Weight:   1 + float64(rng.Intn(3)),
				Priority: uint8(rng.Intn(2)),
				Demand:   Unlimited,
			}
			if rng.Intn(4) == 0 {
				flows[i].Demand = rng.Float64() * 0.5
			}
		}
		cfg := Config{NumLinks: g.NumLinks(), Capacity: 1, Headroom: 0}
		got := NewAllocator(cfg).Allocate(flows)
		const steps = 20000
		want := referenceAllocate(cfg, flows, steps)
		for i := range flows {
			tol := math.Max(0.01, flows[i].Weight*2.0/steps*10)
			if math.Abs(got[i]-want[i]) > tol {
				t.Fatalf("trial %d flow %d: allocator %v, reference %v (±%v)",
					trial, i, got[i], want[i], tol)
			}
		}
	}
}
