package topology

import "fmt"

// NewTorus builds a k-ary n-cube: dims dimensions of radix k with
// wraparound links, the fabric used by SeaMicro/Moonshot-class rack-scale
// computers (§2.1, Figure 1). Each node has 2·dims outgoing links except
// when k == 2, where +1 and -1 reach the same neighbour and only one link
// is created per dimension.
//
// Port order is deterministic: dimension 0 positive, dimension 0 negative,
// dimension 1 positive, ... which the routing layer relies on for
// reproducible path encoding.
func NewTorus(k, dims int) (*Graph, error) {
	if k < 2 || dims < 1 {
		return nil, fmt.Errorf("topology: torus requires k >= 2, dims >= 1 (got k=%d dims=%d)", k, dims)
	}
	n := pow(k, dims)
	edges := make([]Link, 0, n*2*dims)
	coord := make([]int, dims)
	for id := 0; id < n; id++ {
		idToCoord(id, k, coord)
		for d := 0; d < dims; d++ {
			orig := coord[d]
			// Positive direction.
			coord[d] = (orig + 1) % k
			up := coordToID(coord, k)
			edges = append(edges, Link{From: NodeID(id), To: NodeID(up)})
			// Negative direction (distinct neighbour only when k > 2).
			if k > 2 {
				coord[d] = (orig - 1 + k) % k
				down := coordToID(coord, k)
				edges = append(edges, Link{From: NodeID(id), To: NodeID(down)})
			}
			coord[d] = orig
		}
	}
	g, err := NewGraph(KindTorus, n, n, edges)
	if err != nil {
		return nil, err
	}
	g.k, g.dims = k, dims
	return g, nil
}

// NewMesh builds a k-ary n-dimensional mesh: the torus without wraparound
// links, so border nodes have lower degree.
func NewMesh(k, dims int) (*Graph, error) {
	if k < 2 || dims < 1 {
		return nil, fmt.Errorf("topology: mesh requires k >= 2, dims >= 1 (got k=%d dims=%d)", k, dims)
	}
	n := pow(k, dims)
	edges := make([]Link, 0, n*2*dims)
	coord := make([]int, dims)
	for id := 0; id < n; id++ {
		idToCoord(id, k, coord)
		for d := 0; d < dims; d++ {
			orig := coord[d]
			if orig+1 < k {
				coord[d] = orig + 1
				edges = append(edges, Link{From: NodeID(id), To: NodeID(coordToID(coord, k))})
			}
			if orig-1 >= 0 {
				coord[d] = orig - 1
				edges = append(edges, Link{From: NodeID(id), To: NodeID(coordToID(coord, k))})
			}
			coord[d] = orig
		}
	}
	g, err := NewGraph(KindMesh, n, n, edges)
	if err != nil {
		return nil, err
	}
	g.k, g.dims = k, dims
	return g, nil
}

// NewFoldedClos builds a two-level folded-Clos (leaf/spine) topology with
// `leaves` leaf switches, `spines` spine switches and `hostsPerLeaf`
// endpoint nodes per leaf — the switched alternative discussed in §6
// ("R2C2 atop switched networks"). Endpoint nodes occupy vertex IDs
// [0, leaves*hostsPerLeaf); leaf switches and spine switches follow.
func NewFoldedClos(leaves, spines, hostsPerLeaf int) (*Graph, error) {
	if leaves < 1 || spines < 1 || hostsPerLeaf < 1 {
		return nil, fmt.Errorf("topology: clos requires positive leaves/spines/hosts (got %d/%d/%d)",
			leaves, spines, hostsPerLeaf)
	}
	n := leaves * hostsPerLeaf
	total := n + leaves + spines
	leafBase := n
	spineBase := n + leaves
	var edges []Link
	for l := 0; l < leaves; l++ {
		leaf := NodeID(leafBase + l)
		for h := 0; h < hostsPerLeaf; h++ {
			host := NodeID(l*hostsPerLeaf + h)
			edges = append(edges, Link{From: host, To: leaf}, Link{From: leaf, To: host})
		}
		for s := 0; s < spines; s++ {
			spine := NodeID(spineBase + s)
			edges = append(edges, Link{From: leaf, To: spine}, Link{From: spine, To: leaf})
		}
	}
	g, err := NewGraph(KindClos, n, total, edges)
	if err != nil {
		return nil, err
	}
	// Each leaf group (its hosts plus the leaf switch) is one "rack" for
	// partitioning; spines belong to no rack and are marked -1.
	g.rackOf = make([]int32, total)
	for v := 0; v < n; v++ {
		g.rackOf[v] = int32(v / hostsPerLeaf)
	}
	for l := 0; l < leaves; l++ {
		g.rackOf[leafBase+l] = int32(l)
	}
	for s := 0; s < spines; s++ {
		g.rackOf[spineBase+s] = -1
	}
	g.racks = leaves
	return g, nil
}

// Coord returns the coordinate vector of a torus/mesh node. It panics for
// non-cube graphs.
func (g *Graph) Coord(id NodeID) []int {
	if g.k == 0 {
		panic("topology: Coord on non-cube graph")
	}
	//lint:ignore alloc-hotpath dims-bounded coordinate vector; callers run at route-build time, not per forwarded packet
	c := make([]int, g.dims)
	idToCoord(int(id), g.k, c)
	return c
}

// NodeAt returns the torus/mesh node at the given coordinates. It panics
// for non-cube graphs or mismatched dimensionality.
func (g *Graph) NodeAt(coord []int) NodeID {
	if g.k == 0 {
		panic("topology: NodeAt on non-cube graph")
	}
	if len(coord) != g.dims {
		panic(fmt.Sprintf("topology: NodeAt got %d coords for %d dims", len(coord), g.dims))
	}
	return NodeID(coordToID(coord, g.k))
}

// TorusOffset returns the signed per-dimension offset from a to b choosing
// the short way around each ring. Ties (offset exactly k/2, even k) resolve
// by the parity of a's coordinate in that dimension, so that deterministic
// single-path routing stays balanced across +/- links in aggregate — the
// convention the destination-tag channel-load analysis of Figure 2 assumes.
// Panics for non-torus graphs.
func (g *Graph) TorusOffset(a, b NodeID) []int {
	if g.kind != KindTorus {
		panic("topology: TorusOffset on non-torus graph")
	}
	ca, cb := g.Coord(a), g.Coord(b)
	//lint:ignore alloc-hotpath dims-bounded offset vector; callers run at route-build time, not per forwarded packet
	off := make([]int, g.dims)
	for d := 0; d < g.dims; d++ {
		delta := ((cb[d]-ca[d])%g.k + g.k) % g.k // forward distance in [0,k)
		switch {
		case delta > g.k/2:
			off[d] = delta - g.k // the ring is shorter going backwards
		case 2*delta == g.k && ca[d]%2 == 1:
			off[d] = delta - g.k // tie: odd source coordinate goes backwards
		default:
			off[d] = delta
		}
	}
	return off
}

func pow(k, n int) int {
	p := 1
	for i := 0; i < n; i++ {
		p *= k
	}
	return p
}

// idToCoord writes the base-k digits of id into coord, least-significant
// digit in coord[0].
func idToCoord(id, k int, coord []int) {
	for d := range coord {
		coord[d] = id % k
		id /= k
	}
}

func coordToID(coord []int, k int) int {
	id := 0
	for d := len(coord) - 1; d >= 0; d-- {
		id = id*k + coord[d]
	}
	return id
}
