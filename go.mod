module r2c2

go 1.22
