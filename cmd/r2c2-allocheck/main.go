// Command r2c2-allocheck gates the zero-alloc roadmap on the Go compiler's
// own escape analysis. It rebuilds the hot packages with `go build
// -gcflags=-m`, parses the heap-allocation diagnostics ("escapes to heap",
// "moved to heap"), attributes each site to its enclosing function, and
// diffs the per-function counts against a checked-in baseline
// (alloc_budget.json). New escape sites fail the build; improvements are
// reported and folded into the baseline with -update.
//
// The -m wording and the analysis itself drift between Go releases, so the
// baseline records the Go version it was generated with. When the running
// toolchain's language version differs, the gate is skipped with a warning
// (CI pins the toolchain, so the gate is always live there); -strict forces
// the comparison anyway.
//
// Usage:
//
//	go run ./cmd/r2c2-allocheck              # gate against alloc_budget.json
//	go run ./cmd/r2c2-allocheck -update      # regenerate the baseline
//	go run ./cmd/r2c2-allocheck -drift d.json # also write a drift report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// defaultPkgs are the hot packages under the allocation budget: the
// simulator and emulator data paths plus everything they call per packet.
var defaultPkgs = []string{
	"./internal/sim",
	"./internal/emu",
	"./internal/core",
	"./internal/waterfill",
	"./internal/wire",
}

// Baseline is the checked-in allocation budget: per package, per function,
// how many heap-allocation diagnostics the compiler reports.
type Baseline struct {
	GoVersion string                    `json:"go_version"`
	Packages  map[string]map[string]int `json:"packages"`
}

// Drift is the machine-readable diff report written by -drift; CI uploads
// it as an artifact so a failing gate shows exactly what moved.
type Drift struct {
	GoVersion       string   `json:"go_version"`
	BaselineVersion string   `json:"baseline_version"`
	Gated           bool     `json:"gated"` // false when skipped on version mismatch
	Regressions     []string `json:"regressions"`
	Improvements    []string `json:"improvements"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "alloc_budget.json", "per-function escape-count baseline to gate against")
		update       = flag.Bool("update", false, "regenerate the baseline instead of gating")
		pkgList      = flag.String("pkgs", strings.Join(defaultPkgs, ","), "comma-separated packages to analyse")
		driftPath    = flag.String("drift", "", "write a JSON drift report to this path")
		strict       = flag.Bool("strict", false, "gate even when the Go version differs from the baseline's")
	)
	flag.Parse()
	if err := run(os.Stdout, *baselinePath, *pkgList, *driftPath, *update, *strict); err != nil {
		fmt.Fprintln(os.Stderr, "r2c2-allocheck:", err)
		os.Exit(1)
	}
}

func run(stdout io.Writer, baselinePath, pkgList, driftPath string, update, strict bool) error {
	pkgs := strings.Split(pkgList, ",")
	out, err := buildDiagnostics(pkgs)
	if err != nil {
		return err
	}
	diags := parseDiagnostics(out)
	current, err := attribute(diags)
	if err != nil {
		return err
	}
	version := langVersion(runtime.Version())

	if update {
		b := Baseline{GoVersion: runtime.Version(), Packages: current}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "r2c2-allocheck: wrote %s (%d packages, %s)\n", baselinePath, len(current), runtime.Version())
		return nil
	}

	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("no baseline: %v (run with -update to create %s)", err, baselinePath)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("corrupt baseline %s: %v", baselinePath, err)
	}

	gated := strict || version == langVersion(base.GoVersion)
	regressions, improvements := diff(base.Packages, current)
	if driftPath != "" {
		d := Drift{
			GoVersion:       runtime.Version(),
			BaselineVersion: base.GoVersion,
			Gated:           gated,
			Regressions:     regressions,
			Improvements:    improvements,
		}
		dd, err := json.MarshalIndent(&d, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(driftPath, append(dd, '\n'), 0o644); err != nil {
			return err
		}
	}
	if !gated {
		fmt.Fprintf(stdout, "r2c2-allocheck: baseline is %s, toolchain is %s; escape analysis shifts between releases, skipping gate (use -strict to force)\n",
			base.GoVersion, runtime.Version())
		return nil
	}
	for _, s := range improvements {
		fmt.Fprintf(stdout, "improved: %s\n", s)
	}
	if len(improvements) > 0 {
		fmt.Fprintf(stdout, "r2c2-allocheck: %d function(s) allocate less than the baseline; run -update to ratchet down\n", len(improvements))
	}
	if len(regressions) > 0 {
		for _, s := range regressions {
			fmt.Fprintf(stdout, "regressed: %s\n", s)
		}
		return fmt.Errorf("%d new escape site(s) vs %s (baseline %s)", len(regressions), baselinePath, base.GoVersion)
	}
	fmt.Fprintf(stdout, "r2c2-allocheck: clean vs %s\n", baselinePath)
	return nil
}

// buildDiagnostics compiles pkgs with escape-analysis diagnostics enabled
// and returns the compiler's stderr. -gcflags without a package pattern
// applies only to the packages named on the command line, which is exactly
// the hot set.
func buildDiagnostics(pkgs []string) (string, error) {
	args := append([]string{"build", "-gcflags=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go build -gcflags=-m failed: %v\n%s", err, stderr.String())
	}
	return stderr.String(), nil
}

// diagnostic is one heap-allocation report from the compiler.
type diagnostic struct {
	pkg  string // import path, from the preceding "# pkg" header
	file string
	line int
	msg  string
}

// parseDiagnostics extracts the heap-allocation diagnostics from -gcflags=-m
// output. The format is a "# importpath" header followed by
// "file:line:col: message" lines. Only messages that report a heap
// allocation count: "... escapes to heap" and "moved to heap: x". Wording
// for the rest of the -m output (inlining decisions, "does not escape",
// "leaking param") varies across Go releases and is ignored wholesale, so
// the parser only ever matches the two phrases that have been stable since
// escape analysis diagnostics existed.
func parseDiagnostics(out string) []diagnostic {
	var diags []diagnostic
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# ") {
			pkg = strings.TrimSpace(line[2:])
			continue
		}
		if !isAllocMsg(line) {
			continue
		}
		file, ln, msg, ok := splitPosLine(line)
		if !ok {
			continue
		}
		diags = append(diags, diagnostic{pkg: pkg, file: file, line: ln, msg: msg})
	}
	return diags
}

// isAllocMsg reports whether a -m line describes a heap allocation. "does
// not escape" also contains "escape", so the positive phrases are matched
// exactly.
func isAllocMsg(line string) bool {
	return strings.Contains(line, "escapes to heap") || strings.Contains(line, "moved to heap")
}

// splitPosLine splits "path/file.go:12:34: message" into its parts. Windows
// drive letters don't occur here (the build runs in-repo), so the first
// colon ends the path.
func splitPosLine(line string) (file string, ln int, msg string, ok bool) {
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, "", false
	}
	return parts[0], n, strings.TrimSpace(parts[3]), true
}

// attribute maps diagnostics to their enclosing top-level function and
// returns pkg → function → escape count. Sites inside closures count
// against the declaring function; file-scope sites (var initialisers) are
// keyed "<file-scope>".
func attribute(diags []diagnostic) (map[string]map[string]int, error) {
	extents := map[string][]funcExtent{}
	counts := map[string]map[string]int{}
	for _, d := range diags {
		ex, ok := extents[d.file]
		if !ok {
			var err error
			ex, err = fileExtents(d.file)
			if err != nil {
				return nil, fmt.Errorf("attributing %s: %v", d.file, err)
			}
			extents[d.file] = ex
		}
		fn := "<file-scope>"
		for _, e := range ex {
			if d.line >= e.start && d.line <= e.end {
				fn = e.name
				break
			}
		}
		m := counts[d.pkg]
		if m == nil {
			m = map[string]int{}
			counts[d.pkg] = m
		}
		m[fn]++
	}
	return counts, nil
}

type funcExtent struct {
	name       string
	start, end int
}

// fileExtents parses one source file and returns the line ranges of its
// top-level function declarations. Methods are named "(T).M" or "(*T).M"
// to match how humans read the baseline.
func fileExtents(path string) ([]funcExtent, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	var out []funcExtent
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		out = append(out, funcExtent{
			name:  funcName(fd),
			start: fset.Position(fd.Pos()).Line,
			end:   fset.Position(fd.End()).Line,
		})
	}
	return out, nil
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + typeString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

// typeString renders a receiver type without going through go/types:
// receivers are only ever named types, pointers to them, or generic
// instantiations.
func typeString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeString(t.X)
	case *ast.IndexExpr:
		return typeString(t.X) // drop the type-parameter list
	case *ast.IndexListExpr:
		return typeString(t.X)
	default:
		return fmt.Sprintf("%T", e)
	}
}

// diff compares the current counts against the baseline. A function whose
// count rose (or that is new) is a regression; one whose count fell (or
// that disappeared) is an improvement. Lines are sorted for stable output.
func diff(base, current map[string]map[string]int) (regressions, improvements []string) {
	for pkg, funcs := range current {
		for fn, n := range funcs {
			was := base[pkg][fn]
			switch {
			case n > was:
				regressions = append(regressions,
					fmt.Sprintf("%s.%s: %d escape site(s), baseline %d", pkg, fn, n, was))
			case n < was:
				improvements = append(improvements,
					fmt.Sprintf("%s.%s: %d escape site(s), baseline %d", pkg, fn, n, was))
			}
		}
	}
	for pkg, funcs := range base {
		for fn, was := range funcs {
			if _, ok := current[pkg][fn]; !ok && was > 0 {
				improvements = append(improvements,
					fmt.Sprintf("%s.%s: 0 escape site(s), baseline %d", pkg, fn, was))
			}
		}
	}
	sort.Strings(regressions)
	sort.Strings(improvements)
	return regressions, improvements
}

// langVersion reduces a runtime version ("go1.24.0", "go1.24rc1") to its
// language version ("go1.24"): escape analysis does not change in patch
// releases, so baselines stay valid across them.
func langVersion(v string) string {
	rest, ok := strings.CutPrefix(v, "go")
	if !ok {
		return v // devel builds etc.: compare verbatim
	}
	parts := strings.SplitN(rest, ".", 3)
	if len(parts) < 2 {
		return v
	}
	minor := parts[1]
	if i := strings.IndexFunc(minor, func(r rune) bool { return r < '0' || r > '9' }); i >= 0 {
		minor = minor[:i]
	}
	return "go" + parts[0] + "." + minor
}
