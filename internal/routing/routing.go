// Package routing implements the routing protocols R2C2 multiplexes across
// a rack fabric (§2.2.1, §4.2): random packet spraying (RPS),
// destination-tag (dimension-order) routing, Valiant load balancing (VLB),
// weighted / locality-preserving load balancing (WLB), and an ECMP-style
// single-path protocol used by the TCP baseline.
//
// Each protocol exposes two faces:
//
//   - A per-packet path sampler (the data plane): given a flow and an RNG,
//     produce the exact sequence of links a packet traverses, which the
//     sender encodes into the packet header (§3.5).
//
//   - An exact per-link rate-fraction vector φ (the control plane): the
//     fraction of the flow's rate that crosses each directed link, which is
//     what makes flow-level rate computation tractable (§3.3: "a flow's
//     routing protocol dictates its relative rate across its paths").
//
// φ-vectors are deterministic functions of {protocol, src, dst} and are
// precomputed and cached per {protocol, destination} exactly as the paper's
// prototype does (§4.2, "Rate computation").
package routing

import (
	"fmt"
	"sync"

	"r2c2/internal/topology"
)

// Protocol identifies a routing protocol. The byte values are what the
// broadcast packets carry in their rp field.
type Protocol uint8

// The routing protocols implemented by this stack.
const (
	RPS  Protocol = iota // random packet spraying over all minimal paths
	DOR                  // destination-tag / dimension-order (single minimal path)
	VLB                  // Valiant: random waypoint, then minimal
	WLB                  // weighted (locality-preserving) load balancing
	ECMP                 // single minimal path chosen by flow hash (TCP baseline)

	numProtocols
)

// String returns the protocol name.
func (p Protocol) String() string {
	switch p {
	case RPS:
		return "RPS"
	case DOR:
		return "DOR"
	case VLB:
		return "VLB"
	case WLB:
		return "WLB"
	case ECMP:
		return "ECMP"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// Valid reports whether p names an implemented protocol.
func (p Protocol) Valid() bool { return p < numProtocols }

// Phi is a sparse per-link rate-fraction vector for one flow: Frac[i] of
// the flow's total rate crosses directed link Links[i]. Flow conservation
// holds at every node: net outflow is +1 at the source, -1 at the
// destination and 0 elsewhere. (For non-minimal protocols such as VLB the
// gross outflow of a node can exceed its net outflow, because relayed
// traffic may transit the source again.)
type Phi struct {
	Links []topology.LinkID
	Frac  []float64
}

// Len returns the number of links the flow touches.
func (p Phi) Len() int { return len(p.Links) }

// Table precomputes and caches routing state for one topology: minimal-route
// DAGs per destination, φ-vectors per {protocol, src, dst}, and the VLB
// source/destination marginals. A Table is safe for concurrent use.
type Table struct {
	g *topology.Graph

	mu       sync.RWMutex
	succ     map[topology.NodeID][][]topology.LinkID // minimal DAG per destination
	phiCache map[phiKey]Phi
	vlbSrc   map[topology.NodeID][]float64 // dense per-link: (1/N)·Σ_w φRPS(s,w)
	vlbDst   map[topology.NodeID][]float64 // dense per-link: (1/N)·Σ_w φRPS(w,d)
}

type phiKey struct {
	p        Protocol
	src, dst topology.NodeID
}

// NewTable creates a routing table for g.
func NewTable(g *topology.Graph) *Table {
	return &Table{
		g:        g,
		succ:     make(map[topology.NodeID][][]topology.LinkID),
		phiCache: make(map[phiKey]Phi),
		vlbSrc:   make(map[topology.NodeID][]float64),
		vlbDst:   make(map[topology.NodeID][]float64),
	}
}

// Graph returns the topology the table was built for.
func (t *Table) Graph() *topology.Graph { return t.g }

// successors returns (caching) the minimal-route DAG toward dst.
func (t *Table) successors(dst topology.NodeID) [][]topology.LinkID {
	t.mu.RLock()
	s, ok := t.succ[dst]
	t.mu.RUnlock()
	if ok {
		return s
	}
	s = t.g.MinimalSuccessors(dst)
	t.mu.Lock()
	t.succ[dst] = s
	t.mu.Unlock()
	return s
}

// Phi returns the per-link rate-fraction vector for a flow from src to dst
// under protocol p. It panics if src == dst. ECMP flows hash onto one of
// the DOR-style single paths; for allocation purposes their φ equals the
// deterministic DOR path (the allocator in this repo never sees ECMP flows,
// which belong to the TCP baseline).
func (t *Table) Phi(p Protocol, src, dst topology.NodeID) Phi {
	if src == dst {
		panic("routing: Phi for src == dst")
	}
	key := phiKey{p: p, src: src, dst: dst}
	t.mu.RLock()
	phi, ok := t.phiCache[key]
	t.mu.RUnlock()
	if ok {
		return phi
	}
	switch p {
	case RPS:
		phi = t.phiRPS(src, dst)
	case DOR, ECMP:
		phi = t.phiDOR(src, dst)
	case VLB:
		phi = t.phiVLB(src, dst)
	case WLB:
		phi = t.phiWLB(src, dst)
	default:
		panic(fmt.Sprintf("routing: Phi for unknown protocol %v", p))
	}
	t.mu.Lock()
	t.phiCache[key] = phi
	t.mu.Unlock()
	return phi
}
