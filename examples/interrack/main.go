// Interrack: the §6 "Inter-rack networking" direction — two rack-scale
// computers joined by direct cables (no Ethernet bridging, Theia-style),
// running one R2C2 stack across the combined fabric. Broadcast visibility,
// rate computation and source routing all work unchanged because none of
// them assume a torus: coordinate-based routing simply degrades to
// minimal-DAG routing on the combined graph.
//
//	go run ./examples/interrack
package main

import (
	"fmt"
	"log"

	"r2c2/internal/routing"
	"r2c2/internal/sim"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
)

func main() {
	rackA, err := topology.NewTorus(4, 2) // 16 nodes
	if err != nil {
		log.Fatal(err)
	}
	rackB, err := topology.NewTorus(4, 2)
	if err != nil {
		log.Fatal(err)
	}
	// Four parallel inter-rack cables between border nodes.
	fabric, err := topology.ConnectRacks(
		[]*topology.Graph{rackA, rackB},
		[]topology.Bridge{
			{RackA: 0, NodeA: 0, RackB: 1, NodeB: 0},
			{RackA: 0, NodeA: 1, RackB: 1, NodeB: 1},
			{RackA: 0, NodeA: 2, RackB: 1, NodeB: 2},
			{RackA: 0, NodeA: 3, RackB: 1, NodeB: 3},
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("combined fabric: %d nodes, %d links, diameter %d\n",
		fabric.Nodes(), fabric.NumLinks(), fabric.Diameter())

	eng := &sim.Engine{}
	net := sim.NewNetwork(fabric, eng, sim.NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	stack := sim.NewR2C2(net, routing.NewTable(fabric), sim.R2C2Config{
		Headroom:  0.05,
		Recompute: 250 * simtime.Microsecond,
		Protocol:  routing.RPS,
	})

	// Rack B occupies nodes 16..31. Mix cross-rack and local transfers.
	cross := stack.StartFlow(5, 21, 16<<20, 1, 0)
	localA := stack.StartFlow(6, 9, 16<<20, 1, 0)
	localB := stack.StartFlow(22, 25, 16<<20, 1, 0)

	eng.Run(simtime.Second)
	show := func(name string, rec *sim.FlowRecord) {
		fmt.Printf("%-7s %2d -> %2d: %5.2f Gbps, FCT %v\n",
			name, rec.Src, rec.Dst, rec.Throughput()/1e9, rec.FCT())
	}
	show("cross", stack.Ledger()[cross])
	show("localA", stack.Ledger()[localA])
	show("localB", stack.Ledger()[localB])
	fmt.Printf("drops: %d, broadcast bytes on wire: %d\n", net.TotalDrops(), net.BcastBytesOnWire)
}
