package routing

import (
	"math"
	"testing"

	"r2c2/internal/topology"
)

// uniformDemands: every ordered pair, each node injecting 1 unit total.
func uniformDemands(g *topology.Graph) []Demand {
	n := g.Nodes()
	var ds []Demand
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			ds = append(ds, Demand{Src: topology.NodeID(s), Dst: topology.NodeID(d), Rate: 1 / float64(n-1)})
		}
	}
	return ds
}

// tornadoDemands: each node sends to the node floor(k/2)-1 hops away in +X.
func tornadoDemands(g *topology.Graph) []Demand {
	k := g.Radix()
	shift := k/2 - 1
	var ds []Demand
	for s := 0; s < g.Nodes(); s++ {
		c := g.Coord(topology.NodeID(s))
		c[0] = (c[0] + shift) % k
		ds = append(ds, Demand{Src: topology.NodeID(s), Dst: g.NodeAt(c), Rate: 1})
	}
	return ds
}

// nearestNeighborDemands: each node spreads 1 unit across all its
// neighbours equally.
func nearestNeighborDemands(g *topology.Graph) []Demand {
	var ds []Demand
	for s := 0; s < g.Nodes(); s++ {
		out := g.Out(topology.NodeID(s))
		for _, lid := range out {
			ds = append(ds, Demand{Src: topology.NodeID(s), Dst: g.Link(lid).To, Rate: 1 / float64(len(out))})
		}
	}
	return ds
}

// Figure 2 anchor values on the 8-ary 2-cube. These are the classic
// channel-load results from Dally & Towles that the paper reproduces; our
// DP-based φ computation must land on them.
func TestFig2AnchorValues(t *testing.T) {
	g := torus(t, 8, 2)
	tab := NewTable(g)

	uniform := uniformDemands(g)
	tornado := tornadoDemands(g)
	nn := nearestNeighborDemands(g)

	check := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s: throughput = %.4f, want %.4f", name, got, want)
		}
	}

	// Uniform: minimal routing achieves 1.0; VLB exactly half.
	check("uniform/RPS", SaturationThroughput(tab, RPS, uniform), 1.0, 0.02)
	check("uniform/DOR", SaturationThroughput(tab, DOR, uniform), 1.0, 0.02)
	check("uniform/VLB", SaturationThroughput(tab, VLB, uniform), 0.5, 0.02)
	check("uniform/WLB", SaturationThroughput(tab, WLB, uniform), 0.76, 0.03)

	// Tornado: minimal = 1/3; VLB = 1/2; WLB ≈ 0.53.
	check("tornado/RPS", SaturationThroughput(tab, RPS, tornado), 1.0/3, 0.01)
	check("tornado/DOR", SaturationThroughput(tab, DOR, tornado), 1.0/3, 0.01)
	check("tornado/VLB", SaturationThroughput(tab, VLB, tornado), 0.5, 0.01)
	check("tornado/WLB", SaturationThroughput(tab, WLB, tornado), 0.533, 0.01)

	// Nearest neighbour: minimal = 4 (each link carries 1/4); VLB stuck at 0.5.
	check("nn/RPS", SaturationThroughput(tab, RPS, nn), 4.0, 0.01)
	check("nn/VLB", SaturationThroughput(tab, VLB, nn), 0.5, 0.01)
}

// VLB's defining property: identical throughput on any admissible
// permutation (workload obliviousness).
func TestVLBUniformAcrossPatterns(t *testing.T) {
	g := torus(t, 4, 2)
	tab := NewTable(g)
	thrUniform := SaturationThroughput(tab, VLB, uniformDemands(g))
	thrTornado := SaturationThroughput(tab, VLB, tornadoDemands(g))
	if math.Abs(thrUniform-thrTornado) > 0.02 {
		t.Errorf("VLB throughput varies across patterns: %.4f vs %.4f", thrUniform, thrTornado)
	}
}

func TestChannelLoadsSkipsDegenerate(t *testing.T) {
	g := torus(t, 3, 2)
	tab := NewTable(g)
	loads := ChannelLoads(tab, RPS, []Demand{{Src: 1, Dst: 1, Rate: 5}, {Src: 0, Dst: 1, Rate: 0}})
	for lid, l := range loads {
		if l != 0 {
			t.Fatalf("degenerate demands loaded link %d with %v", lid, l)
		}
	}
	if thr := SaturationThroughput(tab, RPS, nil); thr != 0 {
		t.Errorf("empty pattern throughput = %v, want 0", thr)
	}
}
