// Package r2c2 is a from-scratch Go reproduction of "R2C2: A Network Stack
// for Rack-scale Computers" (Costa, Ballani, Razavi, Kash — SIGCOMM 2015).
//
// The implementation lives under internal/:
//
//   - internal/topology — torus/mesh/Clos fabrics, minimal-route DAGs,
//     broadcast trees and the broadcast FIB (§3.2)
//   - internal/wire — the Figure 6 packet formats
//   - internal/routing — RPS, destination-tag, VLB, WLB and ECMP, with
//     exact per-link rate fractions and per-packet path samplers (§2.2.1)
//   - internal/waterfill — the weighted water-filling rate allocator (§3.3)
//   - internal/core — flow views from broadcasts, local rate computation,
//     demand estimation (§3.1–3.3)
//   - internal/genetic — the routing-protocol selection heuristic (§3.4)
//   - internal/sim — the packet-level simulator with TCP and per-flow-queue
//     baselines (§5.2)
//   - internal/fluid — the flow-level model behind the rate-accuracy and
//     CPU-cost studies (Figures 8, 15, 16)
//   - internal/emu — the in-process rack emulation platform, this repo's
//     Maze substitute (§4.1)
//   - internal/broadcastmodel — control-plane traffic analytics (Figures 9, 19)
//   - internal/experiments — one harness per table/figure of §5
//
// The benchmarks in bench_test.go regenerate every table and figure at
// test scale; the cmd/ tools run them at paper scale. See DESIGN.md for
// the system inventory and EXPERIMENTS.md for paper-vs-measured results.
package r2c2
