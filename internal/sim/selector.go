package sim

import (
	"r2c2/internal/genetic"
	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/wire"
)

// SelectorConfig drives the live routing-protocol selection of §3.4:
// periodically, one node examines the long flows in its view, searches for
// the per-flow protocol assignment that maximises aggregate throughput
// with the genetic heuristic, and advertises the winning assignment.
type SelectorConfig struct {
	// Period between selection runs. The paper adapts "every few seconds
	// or minutes"; simulations compress this.
	Period simtime.Time
	// MinAge: only flows older than this are re-routed ("as flows age,
	// their routing can be adapted"); younger flows stay minimal.
	MinAge simtime.Time
	// Protocols to choose among (default RPS and VLB, as in Figure 18).
	Protocols []routing.Protocol
	// GA tuning; zero values use the paper's parameters.
	GA genetic.Config
	// MinGain: fraction of aggregate-throughput improvement required
	// before new assignments are broadcast ("If a significant improvement
	// is possible"). Default 0.01.
	MinGain float64
}

func (c *SelectorConfig) defaults() {
	if c.Period == 0 {
		c.Period = 100 * simtime.Millisecond
	}
	if c.MinAge == 0 {
		c.MinAge = 10 * simtime.Millisecond
	}
	if len(c.Protocols) == 0 {
		c.Protocols = []routing.Protocol{routing.RPS, routing.VLB}
	}
	if c.MinGain == 0 {
		c.MinGain = 0.01
	}
}

// Selector periodically re-optimises the routing protocols of long flows.
// For simplicity the prototype runs it at a single node (the paper does the
// same, noting a token-scheme decentralisation); because the utility is
// global, not selfish, there is no price-of-anarchy loss (§3.4).
type Selector struct {
	r   *R2C2
	cfg SelectorConfig

	// Runs counts selection rounds; Reassignments counts flows whose
	// protocol actually changed; LastGain is the relative improvement of
	// the latest accepted assignment.
	Runs          uint64
	Reassignments uint64
	LastGain      float64

	flowAge map[wire.FlowID]simtime.Time
}

// NewSelector attaches a routing selector to a running R2C2 stack. Call
// Start to arm it.
func NewSelector(r *R2C2, cfg SelectorConfig) *Selector {
	cfg.defaults()
	return &Selector{r: r, cfg: cfg, flowAge: make(map[wire.FlowID]simtime.Time)}
}

// Start arms the periodic selection.
func (s *Selector) Start() {
	s.r.Net.Eng.After(s.cfg.Period, s.tick)
}

func (s *Selector) tick() {
	s.Runs++
	s.selectOnce()
	s.r.Net.Eng.After(s.cfg.Period, s.tick)
}

// selectOnce performs one §3.4 selection round over the view of node 0.
func (s *Selector) selectOnce() {
	now := s.r.Net.Eng.Now()
	view := s.r.View(0)

	// Gather eligible long flows (old enough) and their current genes.
	var flows []routing.Demand
	var ids []wire.FlowID
	var current []uint8
	for _, info := range view.Flows() {
		first, seen := s.flowAge[info.ID]
		if !seen {
			s.flowAge[info.ID] = now
			continue
		}
		if now-first < s.cfg.MinAge {
			continue
		}
		gene := -1
		for gi, p := range s.cfg.Protocols {
			if p == info.Protocol {
				gene = gi
				break
			}
		}
		if gene < 0 {
			gene = 0 // flow on a protocol outside the choice set: treat as first
		}
		flows = append(flows, routing.Demand{Src: info.Src, Dst: info.Dst, Rate: 1})
		ids = append(ids, info.ID)
		current = append(current, uint8(gene))
	}
	// Garbage-collect ages of finished flows.
	for id := range s.flowAge {
		if _, ok := view.Get(id); !ok {
			delete(s.flowAge, id)
		}
	}
	if len(flows) < 2 {
		return
	}

	fitness := genetic.AggregateFitness(s.r.Tab,
		s.r.Net.Cfg.LinkGbps*1e9, s.r.Cfg.Headroom, flows, s.cfg.Protocols)
	before := fitness(current)
	res := genetic.Optimize(s.cfg.GA, len(flows), len(s.cfg.Protocols), current, fitness)
	if before <= 0 || res.Utility < before*(1+s.cfg.MinGain) {
		return // not a significant improvement; keep current routing
	}
	s.LastGain = res.Utility/before - 1

	// Advertise the changes. The wire format batches up to 299 {flow, rp}
	// pairs per 1500-byte routing update (§3.4); the simulator applies the
	// same batching for its control-traffic accounting, then updates each
	// source through the regular route-change broadcast.
	var pairs []wire.RoutingPair
	for i, id := range ids {
		newP := s.cfg.Protocols[res.Assignment[i]]
		if current[i] == res.Assignment[i] {
			continue
		}
		pairs = append(pairs, wire.RoutingPair{Flow: id, RP: uint8(newP)})
		s.r.SetProtocol(id, newP)
		s.Reassignments++
	}
	for len(pairs) > 0 {
		n := len(pairs)
		if n > wire.MaxRoutingPairs {
			n = wire.MaxRoutingPairs
		}
		if _, err := wire.EncodeRoutingUpdate(pairs[:n]); err != nil {
			panic(err)
		}
		pairs = pairs[n:]
	}
}
