package routing

import "r2c2/internal/topology"

// Demand is one entry of a traffic pattern: src injects Rate units of
// traffic toward dst (Rate is relative; 1 = full injection bandwidth of a
// node).
type Demand struct {
	Src, Dst topology.NodeID
	//lint:ignore unit-suffix Rate is relative (1 = full node injection bandwidth), not a physical unit
	Rate float64
}

// ChannelLoads returns the per-link load (in node-injection-bandwidth
// units) induced by routing every demand with protocol p: the standard
// channel-load analysis of interconnection networks (Dally & Towles [20]),
// which Figure 2 of the paper tabulates.
func ChannelLoads(t *Table, p Protocol, demands []Demand) []float64 {
	loads := make([]float64, t.Graph().NumLinks())
	for _, d := range demands {
		if d.Src == d.Dst || d.Rate == 0 {
			continue
		}
		phi := t.Phi(p, d.Src, d.Dst)
		for i, lid := range phi.Links {
			loads[lid] += d.Rate * phi.Frac[i]
		}
	}
	return loads
}

// SaturationThroughput returns the saturation throughput of protocol p on
// the given pattern: the injection rate per node, as a fraction of link
// capacity, at which the most loaded channel saturates. This is the
// quantity Figure 2 reports (e.g. uniform/minimal on an 8-ary 2-cube = 1,
// VLB = 0.5 on every pattern).
func SaturationThroughput(t *Table, p Protocol, demands []Demand) float64 {
	loads := ChannelLoads(t, p, demands)
	maxLoad := 0.0
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	if maxLoad == 0 {
		return 0
	}
	return 1 / maxLoad
}
