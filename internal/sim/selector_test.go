package sim

import (
	"testing"

	"r2c2/internal/genetic"
	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

// A sparse long-flow workload (VLB territory): the selector must move
// flows off minimal routing and the reassignment must reach every view.
func TestSelectorReassignsSparseLoad(t *testing.T) {
	g := torus(t, 4, 3)
	eng, _, r := newR2C2Net(t, g, R2C2Config{
		Headroom: 0.05, Protocol: routing.RPS, Recompute: 200 * simtime.Microsecond})
	ga := genetic.Config{Population: 30, MaxGens: 15, Seed: 3}
	runFor := 30 * simtime.Millisecond
	if testing.Short() {
		// The -race CI job runs -short: a smaller GA still finds the same
		// reassignment on three flows, at a fraction of the search cost.
		ga = genetic.Config{Population: 12, MaxGens: 8, Seed: 3}
		runFor = 15 * simtime.Millisecond
	}
	sel := NewSelector(r, SelectorConfig{
		Period: 5 * simtime.Millisecond,
		MinAge: simtime.Millisecond,
		GA:     ga,
	})
	sel.Start()

	// Few long flows across the rack: low load, where VLB's non-minimal
	// spreading wins (the Figure 18 low-L regime).
	flows := []wire.FlowID{
		r.StartFlow(0, 63, 512<<20, 1, 0),
		r.StartFlow(5, 58, 512<<20, 1, 0),
		r.StartFlow(10, 53, 512<<20, 1, 0),
	}

	eng.Run(runFor)
	if sel.Runs == 0 {
		t.Fatal("selector never ran")
	}
	if sel.Reassignments == 0 {
		t.Fatal("selector reassigned nothing on a sparse long-flow load")
	}
	// At least one flow must be visibly on VLB in EVERY node's view.
	movedEverywhere := 0
	for _, id := range flows {
		allVLB := true
		for n := 0; n < g.Nodes(); n++ {
			info, ok := r.View(topology.NodeID(n)).Get(id)
			if !ok {
				t.Fatalf("node %d lost flow %v", n, id)
			}
			if info.Protocol != routing.VLB {
				allVLB = false
				break
			}
		}
		if allVLB {
			movedEverywhere++
		}
	}
	if movedEverywhere == 0 {
		t.Fatal("no reassignment propagated to all views")
	}
}

// A dense load where minimal routing is already optimal: the selector must
// leave the assignment alone (the MinGain gate).
func TestSelectorLeavesGoodAssignmentsAlone(t *testing.T) {
	g := torus(t, 4, 2)
	eng, _, r := newR2C2Net(t, g, R2C2Config{
		Headroom: 0.05, Protocol: routing.DOR, Recompute: 200 * simtime.Microsecond})
	sel := NewSelector(r, SelectorConfig{
		Period:    5 * simtime.Millisecond,
		MinAge:    simtime.Millisecond,
		Protocols: []routing.Protocol{routing.DOR}, // one choice: nothing to gain
		GA:        genetic.Config{Population: 10, MaxGens: 3, Seed: 1},
	})
	// Two choices are required by the GA; use DOR twice worth of a single
	// protocol set by giving DOR and DOR-equivalent ECMP? Keep it honest:
	// use DOR+RPS but a workload where both tie (nearest-neighbour flows
	// have a single minimal path, so RPS == DOR exactly).
	sel.cfg.Protocols = []routing.Protocol{routing.DOR, routing.RPS}
	sel.Start()
	r.StartFlow(0, 1, 256<<20, 1, 0) // neighbours: single minimal path
	r.StartFlow(2, 3, 256<<20, 1, 0)
	eng.Run(25 * simtime.Millisecond)
	if sel.Runs == 0 {
		t.Fatal("selector never ran")
	}
	if sel.Reassignments != 0 {
		t.Fatalf("selector churned %d reassignments with nothing to gain", sel.Reassignments)
	}
}

// Selector must tolerate flows finishing between rounds.
func TestSelectorHandlesChurn(t *testing.T) {
	g := torus(t, 4, 2)
	eng, _, r := newR2C2Net(t, g, R2C2Config{
		Headroom: 0.05, Protocol: routing.RPS, Recompute: 100 * simtime.Microsecond})
	sel := NewSelector(r, SelectorConfig{
		Period: 2 * simtime.Millisecond,
		MinAge: 500 * simtime.Microsecond,
		GA:     genetic.Config{Population: 16, MaxGens: 5, Seed: 2},
	})
	sel.Start()
	for i := 0; i < 12; i++ {
		src := topology.NodeID(i % g.Nodes())
		dst := topology.NodeID((i*5 + 1) % g.Nodes())
		if src == dst {
			continue
		}
		r.StartFlow(src, dst, int64(1+i)<<19, 1, 0)
	}
	eng.Run(50 * simtime.Millisecond)
	if sel.Runs < 5 {
		t.Fatalf("selector ran only %d times", sel.Runs)
	}
	// All flows finished; the age map must not leak.
	if len(sel.flowAge) != 0 {
		t.Fatalf("selector leaked %d flow-age entries", len(sel.flowAge))
	}
}
