package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRunOnDisk exercises the directory walker end-to-end: module path
// resolution, package scoping, suppression, and skipping of testdata.
func TestRunOnDisk(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/fake\n\ngo 1.22\n")
	// One violation in scope…
	write("internal/sim/clock.go", `package sim
import "time"
func now() int64 { return time.Now().UnixNano() }
`)
	// …one suppressed violation…
	write("internal/sim/paced.go", `package sim
import "time"
func pace() {
	//lint:ignore no-wallclock test fixture
	time.Sleep(time.Millisecond)
}
`)
	// …the same pattern out of scope…
	write("internal/emu/clock.go", `package emu
import "time"
func now() int64 { return time.Now().UnixNano() }
`)
	// …and a testdata directory that must be skipped entirely.
	write("internal/sim/testdata/bad.go", "this is not Go\n")

	diags, err := Run(root, []Analyzer{NewNoWallclock("internal/sim")})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	if got := filepath.Base(diags[0].Pos.Filename); got != "clock.go" {
		t.Errorf("finding in %s, want clock.go", got)
	}
	if diags[0].Rule != "no-wallclock" {
		t.Errorf("rule = %q, want no-wallclock", diags[0].Rule)
	}
}

func TestRunMissingModule(t *testing.T) {
	if _, err := Run(t.TempDir(), Default()); err == nil {
		t.Fatal("Run on a module-less directory should fail")
	}
}
