// Command r2c2-lint runs the repo's custom static-analysis rules (package
// internal/analysis): the determinism and concurrency invariants that keep
// the simulator bit-reproducible and the emulator race-free.
//
// Usage:
//
//	r2c2-lint ./...                        # lint the whole module
//	r2c2-lint -json ./...                  # machine-readable report
//	r2c2-lint -rules alloc-hotpath ./...   # run only the named rules
//	r2c2-lint -list                        # list the rules and their scope
//	r2c2-lint -ownership out.json ./...    # also write the ownership report
//
// -json emits an object {analyzer_version, rules, findings}: the version
// and the rule set pin down what a clean report actually attests to.
// -ownership writes a second report (shard_ownership.json in CI) listing
// the //r2c2:shardowned types, the //r2c2:boundary functions and any
// surviving shard-ownership findings.
//
// //lint:ignore directives are always validated against the full rule
// set, even under -rules, so a filtered run never misreports a directive
// naming an unselected rule as unknown.
//
// It exits non-zero when any finding survives //lint:ignore suppression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"r2c2/internal/analysis"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "r2c2-lint:", err)
		os.Exit(1)
	}
}

// errFindings signals a clean run that found violations (distinct from an
// operational failure, though both exit non-zero).
type errFindings int

func (e errFindings) Error() string { return fmt.Sprintf("%d finding(s)", int(e)) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("r2c2-lint", flag.ContinueOnError)
	fs.SetOutput(stdout)
	jsonOut := fs.Bool("json", false, "emit a JSON report {analyzer_version, rules, findings}")
	listRules := fs.Bool("list", false, "list the rules and exit")
	ruleFilter := fs.String("rules", "", "comma-separated rule names to run (default: every rule)")
	ownershipOut := fs.String("ownership", "", "write the shard-ownership report (owned types, boundary funcs, findings) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rules := analysis.Default()
	moduleRules := analysis.DefaultModule()
	if *listRules {
		for _, a := range rules {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name(), a.Doc())
		}
		for _, a := range moduleRules {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name(), a.Doc())
		}
		return nil
	}

	// Directives are validated against the full rule set regardless of
	// the filter; the filter only selects which rules run.
	known := analysis.KnownRules(rules, moduleRules)
	if *ruleFilter != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*ruleFilter, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				return fmt.Errorf("unknown rule %q (see r2c2-lint -list)", name)
			}
			want[name] = true
		}
		var selRules []analysis.Analyzer
		for _, a := range rules {
			if want[a.Name()] {
				selRules = append(selRules, a)
			}
		}
		var selModule []analysis.ModuleAnalyzer
		for _, a := range moduleRules {
			if want[a.Name()] {
				selModule = append(selModule, a)
			}
		}
		rules, moduleRules = selRules, selModule
	}

	root := "."
	if fs.NArg() > 0 {
		// Accept "./..." and friends: the runner always recurses.
		root = strings.TrimSuffix(fs.Arg(0), "...")
		root = strings.TrimSuffix(root, string(filepath.Separator))
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
	}
	diags, err := analysis.RunAllKnown(root, rules, moduleRules, known)
	if err != nil {
		return err
	}
	if *ownershipOut != "" {
		rep, err := analysis.BuildOwnershipReport(root, known)
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*ownershipOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *jsonOut {
		if diags == nil {
			diags = []analysis.Diagnostic{} // a clean run encodes findings as [], not null
		}
		ran := make([]string, 0, len(rules)+len(moduleRules))
		for _, a := range rules {
			ran = append(ran, a.Name())
		}
		for _, a := range moduleRules {
			ran = append(ran, a.Name())
		}
		sort.Strings(ran)
		rep := struct {
			AnalyzerVersion int                   `json:"analyzer_version"`
			Rules           []string              `json:"rules"`
			Findings        []analysis.Diagnostic `json:"findings"`
		}{analysis.Version, ran, diags}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return errFindings(len(diags))
	}
	return nil
}
