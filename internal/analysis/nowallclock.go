package analysis

import "go/ast"

// wallClockFuncs are the package time functions that read or wait on the
// wall clock. Pure constructors and conversions (time.Duration arithmetic,
// time.Unix, …) are fine: they leak no real time into a simulation.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// noWallclock forbids wall-clock reads in virtual-time packages: the
// simulator must advance only through the simtime clock, or two runs with
// the same seed diverge (breaking the Figure 7 sim/emu cross-validation).
type noWallclock struct{ pkgScope }

// NewNoWallclock builds the no-wallclock rule scoped to the given package
// path suffixes (empty = all packages).
func NewNoWallclock(pkgs ...string) Analyzer { return &noWallclock{pkgScope{pkgs}} }

func (*noWallclock) Name() string { return "no-wallclock" }
func (*noWallclock) Doc() string {
	return "forbid time.Now/Sleep/Since/After in virtual-time (simtime) packages"
}

func (a *noWallclock) Check(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			// Test harnesses may legitimately time out on the wall clock.
			continue
		}
		timeName := importName(f, "time")
		if timeName == "" || timeName == "." || timeName == "_" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeName && wallClockFuncs[sel.Sel.Name] {
				diags = append(diags, pass.Diag(a.Name(), call,
					"wall-clock time.%s in virtual-time package %s; use the simtime clock",
					sel.Sel.Name, pass.Path))
			}
			return true
		})
	}
	return diags
}
