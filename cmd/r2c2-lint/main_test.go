package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, rule := range []string{"no-wallclock", "no-global-rand", "mutex-by-value", "goroutine-leak", "unit-suffix", "alloc-hotpath"} {
		if !strings.Contains(out.String(), rule) {
			t.Fatalf("rule listing missing %q:\n%s", rule, out.String())
		}
	}
}

// writeTree materialises a module fixture: path -> content, rooted at a
// temp dir with a go.mod.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module example.com/fake\n\ngo 1.22\n"
	for path, content := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// multiPkgFixture trips several rules across two packages: a wall-clock
// read and hot-path allocations in internal/sim, global rand in
// internal/routing. The ignore directive names a rule outside any -rules
// filter, exercising full-set directive validation.
func multiPkgFixture(t *testing.T) string {
	return writeTree(t, map[string]string{
		"internal/sim/clock.go": `package sim

import "time"

func now() int64 { return time.Now().UnixNano() }

//r2c2:hotpath
func dispatch(n int) []int {
	xs := make([]int, n)
	return xs
}
`,
		"internal/routing/rand.go": `package routing

import "math/rand"

//lint:ignore no-global-rand fixture exercises directive validation
func pick(n int) int { return rand.Intn(n) }

func pick2(n int) int { return rand.Intn(n) }
`,
	})
}

func TestRunDeterministicOutput(t *testing.T) {
	root := multiPkgFixture(t)
	for _, mode := range [][]string{{"-json"}, {}} {
		args := append(append([]string(nil), mode...), root+"/...")
		var a, b bytes.Buffer
		errA := run(args, &a)
		errB := run(args, &b)
		if errA == nil || errB == nil {
			t.Fatalf("fixture should produce findings (args %v)", args)
		}
		if errA.Error() != errB.Error() {
			t.Fatalf("finding counts differ between runs: %v vs %v", errA, errB)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("output not byte-identical across runs (args %v):\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
				args, a.String(), b.String())
		}
	}
}

func TestRunRuleFilter(t *testing.T) {
	root := multiPkgFixture(t)
	var out bytes.Buffer
	err := run([]string{"-rules", "alloc-hotpath", root + "/..."}, &out)
	if err == nil {
		t.Fatal("hot-path make should survive the filter and exit non-zero")
	}
	if _, ok := err.(errFindings); !ok {
		t.Fatalf("want errFindings, got %T: %v", err, err)
	}
	got := out.String()
	if !strings.Contains(got, "alloc-hotpath") || !strings.Contains(got, "make allocates") {
		t.Errorf("filtered run missing the alloc-hotpath finding:\n%s", got)
	}
	for _, absent := range []string{"no-wallclock", "no-global-rand", "unknown rule"} {
		if strings.Contains(got, absent) {
			t.Errorf("filtered run should not mention %q:\n%s", absent, got)
		}
	}

	if err := run([]string{"-rules", "no-such-rule", root + "/..."}, &out); err == nil ||
		!strings.Contains(err.Error(), "unknown rule") {
		t.Errorf("bogus -rules name should error, got %v", err)
	}
}

func TestRunFindsViolations(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module example.com/fake\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "sim")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package sim\nimport \"time\"\nfunc now() int64 { return time.Now().UnixNano() }\n"
	if err := os.WriteFile(filepath.Join(dir, "clock.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err := run([]string{"-json", root + "/..."}, &out)
	if err == nil {
		t.Fatal("lint of a violating tree should exit non-zero")
	}
	if _, ok := err.(errFindings); !ok {
		t.Fatalf("want errFindings, got %T: %v", err, err)
	}
	if !strings.Contains(out.String(), "no-wallclock") {
		t.Fatalf("JSON output missing the finding:\n%s", out.String())
	}
}
