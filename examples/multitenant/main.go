// Multitenant: allocation flexibility (design goal G4). Two tenants share
// a rack; the operator gives tenant A twice tenant B's weight, and runs a
// latency-sensitive control flow at high priority. R2C2 maps both policies
// onto the weight/priority fields carried in flow-event broadcasts
// (§3.3.2, "Beyond per-flow fairness").
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"r2c2/internal/routing"
	"r2c2/internal/sim"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

func main() {
	g, err := topology.NewTorus(4, 3)
	if err != nil {
		log.Fatal(err)
	}
	eng := &sim.Engine{}
	net := sim.NewNetwork(g, eng, sim.NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond})
	stack := sim.NewR2C2(net, routing.NewTable(g), sim.R2C2Config{
		Headroom:  0.05,
		Recompute: 250 * simtime.Microsecond,
		Protocol:  routing.RPS,
	})

	// Tenant A (weight 2) and tenant B (weight 1) both run bulk transfers
	// between the same endpoints, so they share every bottleneck. Sizes are
	// proportional to weights so the transfers co-terminate and the
	// lifetime-average throughputs expose the 2:1 rate split.
	const bulk = 16 << 20
	tenantA := []wire.FlowID{
		stack.StartFlow(1, 62, 2*bulk, 2, 0),
		stack.StartFlow(2, 61, 2*bulk, 2, 0),
	}
	tenantB := []wire.FlowID{
		stack.StartFlow(1, 62, bulk, 1, 0),
		stack.StartFlow(2, 61, bulk, 1, 0),
	}
	// A latency-sensitive RPC at priority 1 rides over the same fabric.
	rpc := stack.StartFlow(1, 62, 64<<10, 1, 1)

	eng.Run(2 * simtime.Second)
	ledger := stack.Ledger()

	avg := func(ids []wire.FlowID) float64 {
		total := 0.0
		for _, id := range ids {
			total += ledger[id].Throughput()
		}
		return total / float64(len(ids))
	}
	a, b := avg(tenantA), avg(tenantB)
	fmt.Printf("tenant A (weight 2): %.2f Gbps average per flow\n", a/1e9)
	fmt.Printf("tenant B (weight 1): %.2f Gbps average per flow\n", b/1e9)
	fmt.Printf("A/B throughput ratio: %.2f (policy asked for 2.0)\n", a/b)
	fmt.Printf("high-priority RPC FCT: %v for %d KB (unfazed by %d MB of bulk)\n",
		ledger[rpc].FCT(), ledger[rpc].SizeBytes>>10, (6*bulk)>>20)
}
