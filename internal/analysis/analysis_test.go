package analysis

import (
	"strings"
	"testing"
)

// checkOne runs a single analyzer over one in-memory file and returns the
// rules of the surviving findings.
func checkOne(t *testing.T, a Analyzer, pkgPath, src string) []Diagnostic {
	t.Helper()
	diags, err := CheckSource(pkgPath, map[string]string{"src.go": src}, []Analyzer{a})
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	return diags
}

// wantFindings asserts the number of findings and that each message
// mentions the wanted substring.
func wantFindings(t *testing.T, diags []Diagnostic, n int, contains string) {
	t.Helper()
	if len(diags) != n {
		t.Fatalf("got %d findings, want %d: %v", len(diags), n, diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, contains) {
			t.Errorf("finding %q does not mention %q", d.Message, contains)
		}
	}
}

func TestNoWallclock(t *testing.T) {
	a := NewNoWallclock("internal/sim")
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"violating-now", `package sim
import "time"
func f() int64 { return time.Now().UnixNano() }`, 1},
		{"violating-sleep-since", `package sim
import "time"
func f() { start := time.Now(); time.Sleep(time.Millisecond); _ = time.Since(start) }`, 3},
		{"violating-aliased-import", `package sim
import wall "time"
func f() { wall.Sleep(wall.Second) }`, 1},
		{"conforming-duration-arithmetic", `package sim
import "time"
func f() time.Duration { return 3 * time.Millisecond }`, 0},
		{"conforming-virtual-clock", `package sim
func f(now int64) int64 { return now + 1 }`, 0},
		{"conforming-other-receiver", `package sim
type ticker struct{}
func (ticker) Now() int { return 0 }
func f() int { var clock ticker; return clock.Now() }`, 0}, // Now() on a non-time receiver is fine
	}
	t.Run("emu-in-default-scope", func(t *testing.T) {
		// Regression: Flow.started once read time.Now() directly in
		// emu.go, leaking absolute host time into FCT results. The default
		// no-wallclock scope now covers internal/emu; only the audited
		// chokepoint in emu/clock.go carries justified ignores.
		src := `package emu
import "time"
type Flow struct{ started time.Time }
func start() *Flow { return &Flow{started: time.Now()} }`
		diags, err := CheckSource("r2c2/internal/emu", map[string]string{"emu.go": src}, Default())
		if err != nil {
			t.Fatalf("CheckSource: %v", err)
		}
		wantFindings(t, diags, 1, "wall-clock time.Now")
	})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := checkOne(t, a, "r2c2/internal/sim", tc.src)
			if len(diags) != tc.want {
				t.Fatalf("got %d findings, want %d: %v", len(diags), tc.want, diags)
			}
		})
	}
	// Scoping: the same violating source in an out-of-scope package is clean.
	src := "package emu\nimport \"time\"\nfunc f() { time.Sleep(time.Second) }"
	if diags := checkOne(t, a, "r2c2/internal/emu", src); len(diags) != 0 {
		t.Fatalf("out-of-scope package flagged: %v", diags)
	}
	// Test files are exempt: wall-clock deadlines in harnesses are fine.
	diags, err := CheckSource("r2c2/internal/sim", map[string]string{
		"x_test.go": "package sim\nimport \"time\"\nfunc f() { time.Sleep(time.Second) }",
	}, []Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wantFindings(t, diags, 0, "")
}

func TestNoGlobalRand(t *testing.T) {
	a := NewNoGlobalRand("internal/trafficgen")
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"violating-global-intn", `package trafficgen
import "math/rand"
func f(n int) int { return rand.Intn(n) }`, 1},
		{"violating-global-shuffle-perm", `package trafficgen
import "math/rand"
func f(n int) []int { rand.Shuffle(n, func(i, j int) {}); return rand.Perm(n) }`, 2},
		{"conforming-seeded", `package trafficgen
import "math/rand"
func f(seed int64, n int) int { rng := rand.New(rand.NewSource(seed)); return rng.Intn(n) }`, 0},
		{"conforming-threaded", `package trafficgen
import "math/rand"
func f(rng *rand.Rand, n int) int { return rng.Intn(n) }`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := checkOne(t, a, "r2c2/internal/trafficgen", tc.src)
			if len(diags) != tc.want {
				t.Fatalf("got %d findings, want %d: %v", len(diags), tc.want, diags)
			}
		})
	}
}

func TestMutexByValue(t *testing.T) {
	a := NewMutexByValue()
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"violating-value-receiver", `package p
import "sync"
type Rack struct{ mu sync.Mutex }
func (r Rack) Touch() {}`, 1},
		{"violating-param", `package p
import "sync"
func f(mu sync.Mutex) {}`, 1},
		{"violating-transitive", `package p
import "sync"
type inner struct{ wg sync.WaitGroup }
type outer struct{ in inner }
func f(o outer) {}`, 1},
		{"violating-embedded", `package p
import "sync"
type guarded struct{ sync.RWMutex }
func f() guarded { return guarded{} }`, 1},
		{"conforming-pointer", `package p
import "sync"
type Rack struct{ mu sync.Mutex }
func (r *Rack) Touch() {}
func f(r *Rack, mu *sync.Mutex) {}`, 0},
		{"conforming-no-lock", `package p
type Plain struct{ n int }
func (p Plain) N() int { return p.n }`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := checkOne(t, a, "r2c2/internal/p", tc.src)
			if len(diags) != tc.want {
				t.Fatalf("got %d findings, want %d: %v", len(diags), tc.want, diags)
			}
		})
	}
}

func TestGoroutineLeak(t *testing.T) {
	a := NewGoroutineLeak("internal/emu")
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"violating-bare-go", `package emu
func f() { go work() }
func work() {}`, 1},
		{"violating-bare-literal", `package emu
func f() { go func() { for {} }() }`, 1},
		{"conforming-waitgroup", `package emu
import "sync"
type r struct{ wg sync.WaitGroup }
func (x *r) f() { x.wg.Add(1); go x.loop() }
func (x *r) loop() {}`, 0},
		{"conforming-ctx-arg", `package emu
import "context"
func f(ctx context.Context) { go loop(ctx) }
func loop(ctx context.Context) {}`, 0},
		{"conforming-done-in-literal", `package emu
func f(done chan struct{}) { go func() { <-done }() }`, 0},
		{"conforming-defer-done", `package emu
import "sync"
func f(wg *sync.WaitGroup) { wg.Add(1); go func() { defer wg.Done() }() }`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := checkOne(t, a, "r2c2/internal/emu", tc.src)
			if len(diags) != tc.want {
				t.Fatalf("got %d findings, want %d: %v", len(diags), tc.want, diags)
			}
		})
	}
	// Out of scope: other packages may use bare goroutines.
	if diags := checkOne(t, a, "r2c2/internal/stats", "package stats\nfunc f() { go work() }\nfunc work() {}"); len(diags) != 0 {
		t.Fatalf("out-of-scope package flagged: %v", diags)
	}
}

func TestUnitSuffix(t *testing.T) {
	a := NewUnitSuffix()
	cases := []struct {
		name string
		src  string
		want int
	}{
		{"violating-field", `package p
type Config struct {
	Rate float64
	Size int64
}`, 2},
		{"violating-param", `package p
func Send(size int64) {}`, 1},
		{"conforming-suffixed", `package p
type Config struct {
	RateGbps  float64
	SizeBytes int64
	DemandKbps uint32
	DelayNs   int64
}
func Send(sizeBytes int64, rateMbps float64) {}`, 0},
		{"conforming-named-type", `package p
import "r2c2/internal/simtime"
type Config struct {
	Interval simtime.Time
}`, 0},
		{"conforming-unexported", `package p
type config struct{ rate float64 }
func send(size int64) {}`, 0},
		{"conforming-no-quantity", `package p
type Config struct {
	Nodes int
	Headroom float64
	Weight uint8
}`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := checkOne(t, a, "r2c2/internal/p", tc.src)
			if len(diags) != tc.want {
				t.Fatalf("got %d findings, want %d: %v", len(diags), tc.want, diags)
			}
		})
	}
}

func TestSuppression(t *testing.T) {
	a := NewNoWallclock("internal/sim")
	t.Run("same-line", func(t *testing.T) {
		src := `package sim
import "time"
func f() { time.Sleep(time.Second) } //lint:ignore no-wallclock intentional pacing
`
		wantFindings(t, checkOne(t, a, "r2c2/internal/sim", src), 0, "")
	})
	t.Run("line-above", func(t *testing.T) {
		src := `package sim
import "time"
func f() {
	//lint:ignore no-wallclock intentional pacing
	time.Sleep(time.Second)
}`
		wantFindings(t, checkOne(t, a, "r2c2/internal/sim", src), 0, "")
	})
	t.Run("wrong-rule-does-not-suppress", func(t *testing.T) {
		src := `package sim
import "time"
func f() {
	//lint:ignore no-global-rand wrong rule
	time.Sleep(time.Second)
}`
		// no-global-rand is a known rule here, so the directive is legal —
		// but it must not suppress a different rule's finding.
		diags, err := CheckSource("r2c2/internal/sim", map[string]string{"src.go": src},
			[]Analyzer{NewNoWallclock("internal/sim"), NewNoGlobalRand("internal/sim")})
		if err != nil {
			t.Fatal(err)
		}
		wantFindings(t, diags, 1, "wall-clock")
	})
	t.Run("missing-reason-is-reported", func(t *testing.T) {
		src := `package sim
func f() {
	//lint:ignore no-wallclock
}`
		wantFindings(t, checkOne(t, a, "r2c2/internal/sim", src), 1, "malformed")
	})
	t.Run("multi-rule", func(t *testing.T) {
		src := `package sim
import (
	"math/rand"
	"time"
)
func f() {
	//lint:ignore no-wallclock,no-global-rand deliberate nondeterminism
	time.Sleep(time.Duration(rand.Intn(3)))
}`
		diags, err := CheckSource("r2c2/internal/sim", map[string]string{"src.go": src},
			[]Analyzer{NewNoWallclock("internal/sim"), NewNoGlobalRand("internal/sim")})
		if err != nil {
			t.Fatal(err)
		}
		wantFindings(t, diags, 0, "")
	})
	t.Run("unknown-rule-is-an-error", func(t *testing.T) {
		// A typo'd rule name must surface as a lint-directive finding, not
		// silently suppress nothing.
		src := `package sim
import "time"
func f() {
	//lint:ignore no-wallclok typo in the rule name
	time.Sleep(time.Second)
}`
		diags, err := CheckSource("r2c2/internal/sim", map[string]string{"src.go": src}, []Analyzer{a})
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) != 2 {
			t.Fatalf("got %d findings, want 2 (unknown rule + unsuppressed violation): %v", len(diags), diags)
		}
		rules := map[string]bool{}
		for _, d := range diags {
			rules[d.Rule] = true
		}
		if !rules["lint-directive"] || !rules["no-wallclock"] {
			t.Fatalf("want one lint-directive and one no-wallclock finding, got %v", diags)
		}
	})
	t.Run("mixed-known-and-unknown-rules", func(t *testing.T) {
		// The known half of the directive still suppresses; the unknown
		// half still errors.
		src := `package sim
import "time"
func f() {
	//lint:ignore no-wallclock,no-wallclok half of this directive is a typo
	time.Sleep(time.Second)
}`
		diags, err := CheckSource("r2c2/internal/sim", map[string]string{"src.go": src}, []Analyzer{a})
		if err != nil {
			t.Fatal(err)
		}
		wantFindings(t, diags, 1, "unknown rule")
	})
	t.Run("block-level-does-not-reach-into-body", func(t *testing.T) {
		// A directive covers its own line and the next only: placing it on
		// the enclosing declaration does not blanket the block beneath.
		src := `package sim
import "time"
//lint:ignore no-wallclock this does not cover the body
func f() {
	time.Sleep(time.Second)
}`
		wantFindings(t, checkOne(t, a, "r2c2/internal/sim", src), 1, "wall-clock")
	})
	t.Run("wildcard-suppresses-any-rule", func(t *testing.T) {
		src := `package sim
import "time"
func f() {
	//lint:ignore * fixture exercising every rule at once
	time.Sleep(time.Second)
}`
		wantFindings(t, checkOne(t, a, "r2c2/internal/sim", src), 0, "")
	})
}

func TestDefaultRuleSetScoping(t *testing.T) {
	// Every rule in the default set must have a unique name (ignore
	// directives address rules by name).
	seen := map[string]bool{}
	for _, a := range Default() {
		if seen[a.Name()] {
			t.Errorf("duplicate rule name %q", a.Name())
		}
		seen[a.Name()] = true
		if a.Doc() == "" {
			t.Errorf("rule %q has no doc", a.Name())
		}
	}
	for _, rule := range []string{"no-wallclock", "no-global-rand", "mutex-by-value", "goroutine-leak", "unit-suffix"} {
		if !seen[rule] {
			t.Errorf("default rule set is missing %q", rule)
		}
	}
}
