package trafficgen

import (
	"math"
	"math/rand"
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
)

func torus(t testing.TB, k, dims int) *topology.Graph {
	t.Helper()
	g, err := topology.NewTorus(k, dims)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPoissonBasics(t *testing.T) {
	cfg := PoissonConfig{Nodes: 64, MeanInterval: simtime.Microsecond, Count: 20000, Seed: 1}
	arrivals := Poisson(cfg)
	if len(arrivals) != 20000 {
		t.Fatalf("count = %d", len(arrivals))
	}
	last := simtime.Time(-1)
	for i, a := range arrivals {
		if a.At < last {
			t.Fatalf("arrival %d out of order", i)
		}
		last = a.At
		if a.Src == a.Dst {
			t.Fatalf("arrival %d: src == dst", i)
		}
		if a.Src < 0 || int(a.Src) >= 64 || a.Dst < 0 || int(a.Dst) >= 64 {
			t.Fatalf("arrival %d: endpoints out of range: %v", i, a)
		}
		if a.SizeBytes < 1 {
			t.Fatalf("arrival %d: size %d", i, a.SizeBytes)
		}
	}
	// Mean inter-arrival should be ~τ.
	mean := arrivals[len(arrivals)-1].At.Seconds() / float64(len(arrivals))
	if mean < 0.8e-6 || mean > 1.2e-6 {
		t.Errorf("mean inter-arrival = %v s, want ~1e-6", mean)
	}
}

// §5.2: "95% of the flows are less than 100 KB" with Pareto(1.05, 100 KB).
func TestPoissonHeavyTail(t *testing.T) {
	cfg := PoissonConfig{Nodes: 8, MeanInterval: simtime.Microsecond, Count: 50000, Seed: 7}
	arrivals := Poisson(cfg)
	small, totalBytes, smallBytes := 0, 0.0, 0.0
	for _, a := range arrivals {
		if a.SizeBytes < 100e3 {
			small++
			smallBytes += float64(a.SizeBytes)
		}
		totalBytes += float64(a.SizeBytes)
	}
	frac := float64(small) / float64(len(arrivals))
	if frac < 0.93 || frac > 0.99 {
		t.Errorf("fraction of flows < 100 KB = %.3f, want ~0.95", frac)
	}
	// The heavy tail means small flows carry a minority of bytes.
	if smallBytes/totalBytes > 0.5 {
		t.Errorf("small flows carry %.2f of bytes; tail not heavy enough", smallBytes/totalBytes)
	}
	// Mean should be in the vicinity of 100 KB (the tail cap biases down a
	// touch; the α=1.05 tail has huge variance, so accept a wide band).
	mean := totalBytes / float64(len(arrivals))
	if mean < 20e3 || mean > 500e3 {
		t.Errorf("mean flow size = %.0f, want ~1e5", mean)
	}
}

func TestPoissonDeterministic(t *testing.T) {
	cfg := PoissonConfig{Nodes: 16, MeanInterval: simtime.Microsecond, Count: 100, Seed: 42}
	a := Poisson(cfg)
	b := Poisson(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across runs with same seed", i)
		}
	}
}

func TestPoissonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad config")
		}
	}()
	Poisson(PoissonConfig{Nodes: 1, MeanInterval: 1, Count: 1})
}

func TestFixedSize(t *testing.T) {
	cfg := PoissonConfig{Nodes: 16, MeanInterval: simtime.Millisecond, Count: 1000, Seed: 3}
	arrivals := FixedSize(cfg, 10<<20)
	for _, a := range arrivals {
		if a.SizeBytes != 10<<20 {
			t.Fatalf("size = %d", a.SizeBytes)
		}
	}
}

func TestPatternsAreValidDemands(t *testing.T) {
	g := torus(t, 8, 2)
	rng := rand.New(rand.NewSource(1))
	patterns := map[string][]routing.Demand{
		"uniform":        Uniform(g),
		"nn":             NearestNeighbor(g),
		"bit-complement": BitComplement(g),
		"transpose":      Transpose(g),
		"tornado":        Tornado(g),
		"random-perm":    RandomPermutation(g, rng),
	}
	for name, ds := range patterns {
		if len(ds) == 0 {
			t.Fatalf("%s: empty pattern", name)
		}
		perSrc := make(map[topology.NodeID]float64)
		for _, d := range ds {
			if d.Src == d.Dst {
				t.Fatalf("%s: self demand", name)
			}
			perSrc[d.Src] += d.Rate
		}
		for src, rate := range perSrc {
			if rate > 1+1e-9 {
				t.Fatalf("%s: node %d injects %v > 1", name, src, rate)
			}
		}
	}
}

func TestUniformInjection(t *testing.T) {
	g := torus(t, 4, 2)
	ds := Uniform(g)
	if len(ds) != 16*15 {
		t.Fatalf("uniform pairs = %d", len(ds))
	}
	total := 0.0
	for _, d := range ds {
		total += d.Rate
	}
	if math.Abs(total-16) > 1e-9 {
		t.Errorf("total injection = %v, want 16", total)
	}
}

func TestTornadoShift(t *testing.T) {
	g := torus(t, 8, 2)
	ds := Tornado(g)
	if len(ds) != 64 {
		t.Fatalf("tornado demands = %d", len(ds))
	}
	for _, d := range ds {
		cs, cd := g.Coord(d.Src), g.Coord(d.Dst)
		if (cs[0]+3)%8 != cd[0] || cs[1] != cd[1] {
			t.Fatalf("tornado maps %v to %v", cs, cd)
		}
	}
}

func TestTransposeRequires2D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Transpose on 3D cube should panic")
		}
	}()
	Transpose(torus(t, 4, 3))
}

func TestBitComplementIsInvolution(t *testing.T) {
	g := torus(t, 4, 3)
	ds := BitComplement(g)
	fwd := make(map[topology.NodeID]topology.NodeID)
	for _, d := range ds {
		fwd[d.Src] = d.Dst
	}
	for s, d := range fwd {
		if fwd[d] != s {
			t.Fatalf("bit complement not an involution at %d", s)
		}
	}
}

func TestWorstCaseAtMostStructured(t *testing.T) {
	g := torus(t, 4, 2)
	tab := routing.NewTable(g)
	_, worst := WorstCase(tab, routing.RPS, 20, 9)
	tornado := routing.SaturationThroughput(tab, routing.RPS, Tornado(g))
	if worst > tornado+1e-9 {
		t.Errorf("worst-case throughput %v exceeds tornado %v", worst, tornado)
	}
	// VLB's worst case equals its uniform value: workload oblivious. On a
	// 4-ary 2-cube uniform/minimal throughput is 2 and VLB's is 1.
	_, worstVLB := WorstCase(tab, routing.VLB, 10, 9)
	if math.Abs(worstVLB-1.0) > 0.05 {
		t.Errorf("VLB worst case = %v, want ~1.0 on a 4-ary 2-cube", worstVLB)
	}
}

func TestPermutationLoad(t *testing.T) {
	g := torus(t, 8, 2)
	rng := rand.New(rand.NewSource(4))
	for _, load := range []float64{0.125, 0.5, 1.0} {
		ds := PermutationLoad(g, load, rng)
		want := int(math.Round(load * 64))
		if len(ds) < want-1 || len(ds) > want {
			t.Fatalf("load %v: %d flows, want ~%d", load, len(ds), want)
		}
		srcs := make(map[topology.NodeID]bool)
		dsts := make(map[topology.NodeID]bool)
		for _, d := range ds {
			if srcs[d.Src] {
				t.Fatalf("load %v: node %d sources two flows", load, d.Src)
			}
			if dsts[d.Dst] {
				t.Fatalf("load %v: node %d sinks two flows", load, d.Dst)
			}
			srcs[d.Src], dsts[d.Dst] = true, true
		}
	}
}

func TestPermutationLoadPanics(t *testing.T) {
	g := torus(t, 4, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for load > 1")
		}
	}()
	PermutationLoad(g, 1.5, rand.New(rand.NewSource(1)))
}

func TestSimtime(t *testing.T) {
	if simtime.TransmitTime(1500, 10) != 1200*simtime.Nanosecond {
		t.Errorf("1500B at 10 Gbps = %v, want 1.2us", simtime.TransmitTime(1500, 10))
	}
	if simtime.TransmitTime(16, 10) != simtime.Time(12800) {
		t.Errorf("16B at 10 Gbps = %v ps, want 12800", int64(simtime.TransmitTime(16, 10)))
	}
	if simtime.TransmitTime(0, 10) != 0 || simtime.TransmitTime(10, 0) != 0 {
		t.Error("degenerate TransmitTime should be 0")
	}
	if simtime.FromSeconds(1.5) != 1500*simtime.Millisecond {
		t.Error("FromSeconds wrong")
	}
	if (2 * simtime.Second).Seconds() != 2 {
		t.Error("Seconds wrong")
	}
	for _, c := range []struct {
		t    simtime.Time
		want string
	}{
		{2 * simtime.Second, "2.000s"},
		{3 * simtime.Millisecond, "3.000ms"},
		{4 * simtime.Microsecond, "4.000us"},
		{5 * simtime.Nanosecond, "5.000ns"},
		{7, "7ps"},
	} {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

// The hill-climbing adversary must find a pattern at least as bad as any
// structured or random one, and VLB must remain immune to it.
func TestAdversarialPermutation(t *testing.T) {
	g := torus(t, 8, 2)
	tab := routing.NewTable(g)
	_, randWorst := WorstCase(tab, routing.RPS, 10, 3)
	_, advThr := AdversarialPermutation(tab, routing.RPS, 40*g.Nodes(), 3)
	if advThr > randWorst+1e-9 {
		t.Errorf("adversarial search (%v) worse than sampling (%v)", advThr, randWorst)
	}
	// Paper Figure 2: RPS worst-case 0.21, far below its tornado 0.33.
	if advThr > 0.31 {
		t.Errorf("RPS adversarial throughput = %v, expected < 0.31", advThr)
	}
	_, vlbWorst := AdversarialPermutation(tab, routing.VLB, 10*g.Nodes(), 3)
	if math.Abs(vlbWorst-0.5) > 0.05 {
		t.Errorf("VLB under adversary = %v, want ~0.5 (oblivious)", vlbWorst)
	}
	// Demands form a valid permutation: each node sources at most one.
	ds, _ := AdversarialPermutation(tab, routing.DOR, 100, 4)
	seen := map[topology.NodeID]bool{}
	for _, d := range ds {
		if seen[d.Src] {
			t.Fatal("node sources two flows")
		}
		seen[d.Src] = true
	}
}
