package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// atomicPlainMix flags struct fields accessed both through sync/atomic
// address functions (atomic.LoadUint64(&s.f), atomic.AddInt64(&s.f, 1))
// and through plain loads or stores, anywhere in the module. The mix is
// the bug: a plain write racing an atomic read is still a data race, and
// it defeats exactly the guarantee the atomic sites were written for.
// The emulator's epoch counters and rate cells went through this shape
// once already (faultSeq/coveredSeq); the sharded engine will add more.
//
// Fields typed as sync/atomic values (atomic.Uint64, atomic.Pointer) are
// exempt: their API makes plain access a copy, which `go vet`'s
// copylocks check already rejects. Composite-literal initialisation
// does not count as plain access — construction happens-before
// publication.
//
// The pass is module-wide: an exported field written atomically in its
// home package and poked plainly from a test helper two packages away is
// still one finding. Diagnostics land on each plain site (so a
// //lint:ignore can justify a provably pre-publication write) and name
// one atomic site as the counterpart.
type atomicPlainMix struct{ pkgScope }

// NewAtomicPlainMix builds the rule scoped to the given package path
// suffixes (empty = all packages).
func NewAtomicPlainMix(pkgs ...string) ModuleAnalyzer { return &atomicPlainMix{pkgScope{pkgs}} }

func (*atomicPlainMix) Name() string { return "atomic-plain-mix" }
func (*atomicPlainMix) Doc() string {
	return "flag struct fields accessed both via sync/atomic and via plain load/store"
}

// apAccess is one access to a field.
type apAccess struct {
	pos  token.Position
	disp string // display name, e.g. "emu.nodeState.faultSeq"
}

// apFacts maps field keys (owner full name + "." + field) to the
// package's atomic and plain access sites.
type apFacts struct {
	atomic map[string][]apAccess
	plain  map[string][]apAccess
}

func (a *atomicPlainMix) Collect(pass *TypedPass) any {
	facts := &apFacts{atomic: map[string][]apAccess{}, plain: map[string][]apAccess{}}
	for _, f := range pass.Files {
		// consumed holds field selectors already claimed by a sync/atomic
		// call, so the second walk does not double-count them as plain.
		consumed := map[*ast.SelectorExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if key, disp, ok := a.fieldOf(pass, sel); ok {
					consumed[sel] = true
					facts.atomic[key] = append(facts.atomic[key],
						apAccess{pos: pass.Fset.Position(un.Pos()), disp: disp})
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || consumed[sel] {
				return true
			}
			if key, disp, ok := a.fieldOf(pass, sel); ok {
				facts.plain[key] = append(facts.plain[key],
					apAccess{pos: pass.Fset.Position(sel.Pos()), disp: disp})
			}
			return true
		})
	}
	if len(facts.atomic) == 0 && len(facts.plain) == 0 {
		return nil
	}
	return facts
}

// fieldOf resolves a selector to a struct field and returns its module-wide
// key and display name. Fields typed as sync/atomic values are skipped —
// their method set is the only access path, enforced by vet's copylocks.
func (a *atomicPlainMix) fieldOf(pass *TypedPass, sel *ast.SelectorExpr) (key, disp string, ok bool) {
	s, found := pass.Info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return "", "", false
	}
	fld, _ := s.Obj().(*types.Var)
	if fld == nil || !fld.IsField() {
		return "", "", false
	}
	if atomicTyped(fld.Type()) {
		return "", "", false
	}
	recv := s.Recv()
	for {
		p, isPtr := recv.Underlying().(*types.Pointer)
		if !isPtr {
			break
		}
		recv = p.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	key = named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fld.Name()
	return key, shortTypeName(named) + "." + fld.Name(), true
}

// atomicTyped reports whether a field's type is (a pointer to) one of
// sync/atomic's value types.
func atomicTyped(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// Resolve joins accesses by field key and flags every plain site of a
// field that also has atomic sites anywhere in the module.
func (a *atomicPlainMix) Resolve(facts []PackageFacts) []Diagnostic {
	atomicAll := map[string][]apAccess{}
	plainAll := map[string][]apAccess{}
	for _, pf := range facts {
		f := pf.Facts.(*apFacts)
		for k, v := range f.atomic {
			atomicAll[k] = append(atomicAll[k], v...)
		}
		for k, v := range f.plain {
			plainAll[k] = append(plainAll[k], v...)
		}
	}
	var diags []Diagnostic
	for key, plains := range plainAll {
		atomics := atomicAll[key]
		if len(atomics) == 0 {
			continue
		}
		sort.Slice(atomics, func(i, j int) bool { return posLess(atomics[i].pos, atomics[j].pos) })
		first := atomics[0]
		more := ""
		if len(atomics) > 1 {
			more = fmt.Sprintf(" and %d more site(s)", len(atomics)-1)
		}
		for _, p := range plains {
			diags = append(diags, Diagnostic{Rule: a.Name(), Pos: p.pos,
				Message: fmt.Sprintf("field %s mixes plain and sync/atomic access: plain here, atomic at %s%s",
					p.disp, shortPos(first.pos), more)})
		}
	}
	return diags
}

// posLess orders positions by file, line, column.
func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// shortPos renders a position as base-directory file:line for messages.
func shortPos(p token.Position) string {
	name := p.Filename
	if i := strings.LastIndex(name, "/"); i >= 0 {
		if j := strings.LastIndex(name[:i], "/"); j >= 0 {
			name = name[j+1:]
		}
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
