package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: r2c2
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulatorEventThroughput 	      30	  38674206 ns/op	     74008 events/run	 3076612 B/op	   54502 allocs/op
BenchmarkIncrementalChurn/incremental-8 	  120000	      9000 ns/op	     120 B/op	       3 allocs/op
BenchmarkEmuDataPath-8 	      50	  21000000 ns/op	  49.92 MB/s	  2048 B/op	      12 allocs/op
PASS
ok  	r2c2	12.3s
`

func TestRunParsesBenchOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &out, ""); err != nil {
		t.Fatal(err)
	}
	var got map[string]map[string]float64
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	ev := got["BenchmarkSimulatorEventThroughput"]
	if ev == nil {
		t.Fatalf("missing event-throughput entry: %v", got)
	}
	if ev["ns/op"] != 38674206 || ev["allocs/op"] != 54502 || ev["events/run"] != 74008 {
		t.Fatalf("wrong metrics: %v", ev)
	}
	// The -GOMAXPROCS suffix is stripped, sub-benchmark names kept.
	if got["BenchmarkIncrementalChurn/incremental"]["allocs/op"] != 3 {
		t.Fatalf("suffix not stripped or sub-benchmark lost: %v", got)
	}
	if got["BenchmarkEmuDataPath"]["MB/s"] != 49.92 {
		t.Fatalf("custom unit lost: %v", got)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\nok r2c2 1s\n"), &out, ""); err == nil {
		t.Fatal("no benchmark lines should be an error")
	}
}

// TestRunSplitsEmuBenchmarks checks -emu routing: emulator benchmarks land
// in the side file and nowhere else; everything else stays on stdout.
func TestRunSplitsEmuBenchmarks(t *testing.T) {
	emuPath := t.TempDir() + "/BENCH_emu.json"
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &out, emuPath); err != nil {
		t.Fatal(err)
	}
	var sim map[string]map[string]float64
	if err := json.Unmarshal(out.Bytes(), &sim); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out.String())
	}
	if _, ok := sim["BenchmarkEmuDataPath"]; ok {
		t.Fatalf("emu benchmark leaked into the sim report: %v", sim)
	}
	if _, ok := sim["BenchmarkSimulatorEventThroughput"]; !ok {
		t.Fatalf("sim benchmark missing from stdout: %v", sim)
	}
	data, err := os.ReadFile(emuPath)
	if err != nil {
		t.Fatal(err)
	}
	var emu map[string]map[string]float64
	if err := json.Unmarshal(data, &emu); err != nil {
		t.Fatalf("emu file is not JSON: %v\n%s", err, data)
	}
	if emu["BenchmarkEmuDataPath"]["MB/s"] != 49.92 {
		t.Fatalf("emu metrics wrong or missing: %v", emu)
	}
	if len(emu) != 1 {
		t.Fatalf("emu file should hold only emulator benchmarks: %v", emu)
	}
}

// TestRunEmuFlagRequiresEmuLines guards against the split silently
// producing an empty artifact when the benchmark filter drops the emulator.
func TestRunEmuFlagRequiresEmuLines(t *testing.T) {
	simOnly := "BenchmarkSimulatorEventThroughput 	 30	 38674206 ns/op\n"
	var out bytes.Buffer
	if err := run(strings.NewReader(simOnly), &out, t.TempDir()+"/e.json"); err == nil {
		t.Fatal("missing emulator lines with -emu set should be an error")
	}
}
