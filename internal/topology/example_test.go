package topology_test

import (
	"fmt"

	"r2c2/internal/topology"
)

// The SeaMicro-sized fabric of §5.2: a 512-node 3D torus where each node
// has six links and the average flow travels six hops.
func ExampleNewTorus() {
	g, _ := topology.NewTorus(8, 3)
	fmt.Printf("nodes: %d\n", g.Nodes())
	fmt.Printf("links per node: %d\n", g.Degree(0))
	fmt.Printf("mean distance: %.0f hops\n", g.MeanNodeDistance())
	// Output:
	// nodes: 512
	// links per node: 6
	// mean distance: 6 hops
}

// One flow event costs (n-1) tree edges × 16 bytes — about 8 KB across
// the whole 512-node rack (§3.2).
func ExampleBuildBroadcastTrees() {
	g, _ := topology.NewTorus(8, 3)
	tree := topology.BuildBroadcastTrees(g, 0, 1, 42)[0]
	fmt.Printf("edges: %d\n", tree.TotalEdges())
	fmt.Printf("bytes per broadcast: %d\n", tree.TotalEdges()*16)
	fmt.Printf("broadcast reaches everyone within %d hops\n", tree.Depth)
	// Output:
	// edges: 511
	// bytes per broadcast: 8176
	// broadcast reaches everyone within 12 hops
}
