package core_test

import (
	"fmt"

	"r2c2/internal/core"
	"r2c2/internal/routing"
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

// The R2C2 control loop in miniature: a flow-start broadcast arrives at a
// node, its view updates, and local rate computation yields the flow's
// fair sending rate — no probing, no switch support (§3.3).
func ExampleRateComputer_Compute() {
	g, _ := topology.NewTorus(4, 2)
	rc := core.NewRateComputer(routing.NewTable(g), 10e9, 0.05)

	// The 16-byte broadcast announcing a new DOR flow from node 0 to 1.
	flow := core.FlowInfo{
		ID: wire.MakeFlowID(0, 1), Src: 0, Dst: 1,
		Weight: 1, DemandKbps: core.UnlimitedDemand, Protocol: routing.DOR,
	}
	pkt := wire.EncodeBroadcast(flow.StartBroadcast(0))

	// Every rack node folds the event into its local view...
	view := core.NewView()
	b, _ := wire.DecodeBroadcast(pkt[:])
	_ = view.Apply(b)

	// ...and can now compute the flow's rate locally.
	alloc := rc.Compute(view)
	fmt.Printf("flows visible: %d\n", view.Len())
	fmt.Printf("allocated: %.2f Gbps (10 Gbps link minus 5%% headroom)\n",
		alloc.Rate(flow.ID)/1e9)
	// Output:
	// flows visible: 1
	// allocated: 9.50 Gbps (10 Gbps link minus 5% headroom)
}
