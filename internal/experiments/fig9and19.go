package experiments

import (
	"r2c2/internal/broadcastmodel"
	"r2c2/internal/topology"
)

// Fig9Result holds the broadcast-overhead curves of Figure 9: fraction of
// network capacity used by broadcasts versus the fraction of bytes carried
// by small flows, for the three topologies the paper plots.
type Fig9Result struct {
	SmallByteFracs []float64
	Topologies     []string
	// Fraction[topology][point].
	Fraction [][]float64
}

// Fig9 evaluates the analytic model with the paper's 10 KB small flows and
// 35 MB long flows. The node counts follow §5.1's projection target
// (512-node 3D torus) with same-order meshes/2D tori.
func Fig9(fracs []float64) *Fig9Result {
	torus3d, err := topology.NewTorus(8, 3)
	if err != nil {
		panic(err)
	}
	mesh3d, err := topology.NewMesh(8, 3)
	if err != nil {
		panic(err)
	}
	torus2d, err := topology.NewTorus(22, 2)
	if err != nil {
		panic(err)
	}
	res := &Fig9Result{
		SmallByteFracs: fracs,
		Topologies:     []string{"3D-torus-512", "3D-mesh-512", "2D-torus-484"},
	}
	for _, g := range []*topology.Graph{torus3d, mesh3d, torus2d} {
		row := make([]float64, len(fracs))
		for i, f := range fracs {
			row[i] = broadcastmodel.CapacityFraction(g, f, 10e3, 35e6)
		}
		res.Fraction = append(res.Fraction, row)
	}
	return res
}

// Table renders Figure 9.
func (r *Fig9Result) Table() *Table {
	t := &Table{Title: "Figure 9: network capacity used for broadcast",
		Header: []string{"small-byte-frac"}}
	t.Header = append(t.Header, r.Topologies...)
	for i, f := range r.SmallByteFracs {
		row := []string{f2(f)}
		for j := range r.Topologies {
			row = append(row, pct(r.Fraction[j][i]))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig19Result holds the control-traffic comparison of Figure 19.
type Fig19Result struct {
	FlowsPerServer []int
	Decentralized  []float64 // bytes per flow event
	Centralized    []float64
}

// Fig19 evaluates the model on the given topology.
func Fig19(g *topology.Graph, flowsPerServer []int) *Fig19Result {
	res := &Fig19Result{FlowsPerServer: flowsPerServer}
	for _, f := range flowsPerServer {
		ct := broadcastmodel.PerEvent(g, f)
		res.Decentralized = append(res.Decentralized, ct.Decentralized)
		res.Centralized = append(res.Centralized, ct.Centralized)
	}
	return res
}

// Table renders Figure 19.
func (r *Fig19Result) Table() *Table {
	t := &Table{Title: "Figure 19: control traffic per flow event (bytes)",
		Header: []string{"flows/server", "decentralized", "centralized", "ratio"}}
	for i, f := range r.FlowsPerServer {
		ratio := 0.0
		if r.Decentralized[i] > 0 {
			ratio = r.Centralized[i] / r.Decentralized[i]
		}
		t.AddRow(f2(float64(f)), f2(r.Decentralized[i]), f2(r.Centralized[i]), f2(ratio))
	}
	return t
}
