package experiments

import (
	"math/rand"

	"r2c2/internal/genetic"
	"r2c2/internal/routing"
	"r2c2/internal/trafficgen"
)

// Fig18Result compares the adaptive genetic routing selection against the
// single-protocol and random baselines across load levels (Figure 18).
type Fig18Result struct {
	Loads []float64
	// Aggregate throughput (bits/s) per load.
	Adaptive, AllRPS, AllVLB, Random []float64
}

// Fig18 runs the permutation workload of §5.2 ("a fraction L of nodes
// generates a long-running flow each") and optimises the per-flow protocol
// assignment with the §3.4 genetic heuristic. Candidate protocols are RPS
// and VLB, as in the paper.
func Fig18(s Scale, loads []float64, gaCfg genetic.Config) *Fig18Result {
	g := s.Torus()
	tab := routing.NewTable(g)
	protocols := []routing.Protocol{routing.RPS, routing.VLB}
	// The shared RNG threads through the loads in order, so workloads and
	// random baselines are drawn sequentially up front; the expensive part
	// — the GA and the allocator-driven fitness evaluations — then runs one
	// load per worker. Each job builds its own fitness closure (the closure
	// carries private allocator scratch and is not concurrent-safe).
	workloads := make([][]routing.Demand, len(loads))
	randomAsn := make([][]uint8, len(loads))
	rng := rand.New(rand.NewSource(s.Seed))
	for i, load := range loads {
		workloads[i] = trafficgen.PermutationLoad(g, load, rng)
		if len(workloads[i]) > 0 {
			randomAsn[i] = genetic.RandomAssignment(len(workloads[i]), len(protocols), rng)
		}
	}
	res := &Fig18Result{Loads: loads,
		Adaptive: make([]float64, len(loads)), AllRPS: make([]float64, len(loads)),
		AllVLB: make([]float64, len(loads)), Random: make([]float64, len(loads))}
	parallelFor(s.Parallel, len(loads), func(i int) {
		flows := workloads[i]
		if len(flows) == 0 {
			return // all-zero row
		}
		fitness := genetic.AggregateFitness(tab, s.LinkGbps*1e9, 0.05, flows, protocols)
		res.AllRPS[i] = fitness(genetic.UniformAssignment(len(flows), 0))
		res.AllVLB[i] = fitness(genetic.UniformAssignment(len(flows), 1))
		res.Random[i] = fitness(randomAsn[i])
		cfg := gaCfg
		cfg.Seed = s.Seed
		best := genetic.Optimize(cfg, len(flows), len(protocols),
			genetic.UniformAssignment(len(flows), 0), fitness)
		res.Adaptive[i] = best.Utility
	})
	return res
}

// Table renders Figure 18 as adaptive throughput normalised against each
// baseline (values >= 1 reproduce the paper's claim).
func (r *Fig18Result) Table() *Table {
	t := &Table{Title: "Figure 18: adaptive routing selection vs baselines (normalised)",
		Header: []string{"load", "vs-RPS", "vs-VLB", "vs-Random"}}
	for i, load := range r.Loads {
		t.AddRow(f3(load),
			f3(safeDiv(r.Adaptive[i], r.AllRPS[i])),
			f3(safeDiv(r.Adaptive[i], r.AllVLB[i])),
			f3(safeDiv(r.Adaptive[i], r.Random[i])))
	}
	return t
}
