package sim

import (
	"fmt"
	"math/rand"
	"slices"
	"time"

	"r2c2/internal/core"
	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/stats"
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

// R2C2Config parameterises the R2C2 transport.
type R2C2Config struct {
	Headroom       float64          // bandwidth headroom (paper default 5%)
	Recompute      simtime.Time     // rate recomputation interval ρ (paper: 500 µs)
	Protocol       routing.Protocol // routing protocol for new flows (paper: minimal)
	TreesPerSource int              // broadcast trees per source (default 4)
	Seed           int64

	// Reliable enables the end-to-end reliability extension sketched in §6:
	// receivers return cumulative acknowledgements used *solely* for
	// reliability (never for rate control — rates still come from the
	// broadcast-driven computation), and senders go-back-N retransmit on
	// timeout. A flow's finish event is then broadcast when every byte is
	// acknowledged rather than when the last byte is handed to the NIC.
	Reliable bool
	// RTO is the retransmission timeout when Reliable is set (default 1 ms,
	// generous against a <10 µs fabric RTT).
	RTO simtime.Time
}

func (c *R2C2Config) defaults() {
	if c.Recompute == 0 {
		c.Recompute = simtime.FromSeconds(core.DefaultRho.Seconds())
	}
	if c.TreesPerSource == 0 {
		c.TreesPerSource = 4
	}
	if c.RTO == 0 {
		c.RTO = simtime.Millisecond
	}
}

// R2C2 is the full R2C2 stack running over the simulated fabric: flow-event
// broadcasts keep every node's View current; every node periodically
// recomputes the rates of the flows it sources and paces them with one
// token-bucket rate limiter per flow; packets are source-routed with
// per-packet paths drawn from each flow's routing protocol (§3).
type R2C2 struct {
	Net *Network
	Tab *routing.Table
	Fib *topology.BroadcastFIB
	Cfg R2C2Config

	rc     *core.RateComputer
	nodes  []*r2c2Node
	ledger *flowLedger

	// agg is the aggregated control plane's global rate computer, created
	// lazily on the reduction-tree root shard's R2C2 only (computeGlobal).
	// It is invalidated on reroute like rc: a degraded fabric changes the
	// routing table the φ-vectors derive from.
	agg *core.RateComputer

	// nextTick is the absolute time of the next scheduled recomputation
	// tick. The sharded orchestrator clamps its epochs to it in aggregated
	// mode so every shard's engine pauses at the tick together (shard.go);
	// unread in serial and replicated runs.
	nextTick simtime.Time

	// sh is the shard context when this R2C2 instance drives one shard of
	// a sharded run (shard.go): nil in serial runs. Replicated control
	// events (recomputation ticks, fault injections, reroutes) tick its
	// counter so the merged Results can subtract the duplicates.
	sh *shardCtx

	// gen is the route generation: interned per-flow routes and ack paths
	// tagged with an older generation are recomputed (a reroute swapped in a
	// new Tab/linkMap underneath them).
	gen uint64

	// Failure state (§3.2, "Failures"): after detection, Tab/Fib/rc are
	// rebuilt over the degraded fabric and linkMap translates its link IDs
	// back to physical ports. nil linkMap means the fabric is intact.
	//
	// The degraded fabric is always recomputed at detection-FIRE time from
	// the accumulated failedLinks/deadNodes union, never from a snapshot
	// captured at injection: overlapping failures with interleaved
	// detection windows would otherwise let a later-firing callback
	// install an older fabric, resurrecting a still-failed link. failSeq
	// counts fault injections and reroutedSeq the injections already
	// covered by a reroute, so a detection callback whose injections were
	// all covered by an earlier (later-injected, shorter-delay) reroute
	// no-ops instead of rebuilding the same fabric again.
	failedLinks map[topology.LinkID]bool
	deadNodes   map[topology.NodeID]bool
	linkMap     []topology.LinkID
	failSeq     uint64
	reroutedSeq uint64
	// FailureReroutes counts fabric rebuilds.
	FailureReroutes uint64

	// Reorder tracks the receive-side reorder-buffer occupancy observed at
	// every data-packet arrival (§5.2's reordering analysis).
	Reorder stats.Sample

	// Recomputations counts allocator invocations; RecomputeRounds counts
	// periodic ticks. Their ratio shows the view-cache amortisation.
	Recomputations  uint64
	RecomputeRounds uint64
	// Retransmissions counts re-sent data chunks (Reliable mode only).
	Retransmissions uint64
	// BcastRetransmits counts §3.2 broadcast retransmissions after drops.
	BcastRetransmits uint64

	// tickCache maps view hashes to allocator runs within one recomputeTick
	// round. It persists across ticks (cleared, not reallocated) so the
	// periodic recomputation stays off the per-tick allocation budget.
	tickCache map[uint64]*core.Allocation

	// flowIDScratch is the reusable key buffer for sorted iteration over a
	// node's flow map: recomputeTick and rerouteNow schedule events per
	// flow, and scheduling order assigns the (at,seq) FIFO tie-break, so
	// walking the map in Go's randomised order would make two identically
	// seeded runs diverge (det-map-iter). Persisting the buffer keeps the
	// per-tick sort off the allocation budget.
	flowIDScratch []wire.FlowID
}

// sortedFlowIDs fills the scratch buffer with the map's keys in ascending
// order, giving every per-flow side effect a canonical sequence.
func (r *R2C2) sortedFlowIDs(flows map[wire.FlowID]*senderFlow) []wire.FlowID {
	ids := r.flowIDScratch[:0]
	for id := range flows {
		//lint:ignore alloc-hotpath scratch growth is amortised: the buffer persists across ticks and reroutes
		ids = append(ids, id)
	}
	slices.Sort(ids)
	r.flowIDScratch = ids
	return ids
}

// r2c2Node is one node's protocol state: its flow table, tree cursor and
// receive bookkeeping.
//
//r2c2:shardowned — per-node state is mutated only by the engine goroutine.
type r2c2Node struct {
	id       topology.NodeID
	view     *core.View
	flows    map[wire.FlowID]*senderFlow
	nextSeq  uint16
	nextTree uint8
	recv     map[wire.FlowID]*reorderState
	// rng is the node's private route-sampling stream (rng.go), created on
	// the node's first sourced flow. Per-node streams keep route sampling
	// independent of global event interleaving, so the sharded engine draws
	// the same routes as the serial one.
	rng *rand.Rand
	// tombstones remembers finish events so that a §3.2-retransmitted
	// start broadcast arriving after the finish cannot resurrect a dead
	// flow in this node's view.
	tombstones map[wire.FlowID]bool
}

type senderFlow struct {
	info      core.FlowInfo
	remaining int64
	rate      float64 // bits/s, as allocated
	demand    float64 // bits/s host-side cap; <= 0 means unlimited
	armed     bool    // a send event is scheduled
	seq       uint32

	// started is the flow's ledger start time, stamped onto data packets
	// in sharded runs so the receiving shard can open its record lazily.
	started simtime.Time

	// Reliability state (Cfg.Reliable only). Chunk i carries the byte
	// range [i·MaxPayload, min(size, (i+1)·MaxPayload)).
	size      int64
	totalPkts uint32
	nextChunk uint32 // next chunk to transmit (pulled back on RTO)
	cumAcked  uint32 // chunks acknowledged in order
	rtoSeq    uint64 // invalidates stale RTO timers (legacy-heap guard)
	rtoArmed  bool
	rtoTimer  timerHandle // wheel handle: cancels the pending timer outright

	// route is the flow's interned source route when its protocol is
	// deterministic (DOR): computed once, shared by reference across all the
	// flow's packets. routeGen tags the fabric generation it was computed
	// under.
	route    []topology.LinkID
	routeGen uint64
}

// chunkPayload returns the payload size of chunk i.
func (sf *senderFlow) chunkPayload(i uint32) int64 {
	off := int64(i) * MaxPayload
	left := sf.size - off
	if left > MaxPayload {
		return MaxPayload
	}
	return left
}

// paceRate returns the rate the token bucket enforces: the allocation,
// additionally capped by the host-side demand.
func (sf *senderFlow) paceRate() float64 {
	if sf.demand > 0 && sf.demand < sf.rate {
		return sf.demand
	}
	return sf.rate
}

type reorderState struct {
	next uint32          // next in-order packet sequence expected
	oob  map[uint32]bool // out-of-order packets buffered

	// ackPath is the interned reverse DOR route for reliability acks,
	// shared by reference across the flow's acks (a private copy, because
	// translation to physical ports mutates it in place and the Phi cache
	// it derives from must stay pristine). ackGen tags its fabric
	// generation.
	ackPath []topology.LinkID
	ackGen  uint64
}

// NewR2C2 wires the transport into a network. It installs the Deliver and
// broadcast-FIB hooks, so one Network hosts exactly one transport.
func NewR2C2(net *Network, tab *routing.Table, cfg R2C2Config) *R2C2 {
	cfg.defaults()
	r := &R2C2{
		Net:    net,
		Tab:    tab,
		Fib:    topology.NewBroadcastFIB(net.G, cfg.TreesPerSource, cfg.Seed),
		Cfg:    cfg,
		rc:     core.NewRateComputer(tab, net.Cfg.LinkGbps*1e9, cfg.Headroom),
		ledger: newFlowLedger(),
		sh:     net.sh,
	}
	r.nodes = make([]*r2c2Node, net.G.Nodes())
	for i := range r.nodes {
		if r.sh != nil && r.sh.shardOf[i] != r.sh.self {
			continue // another shard owns this node's state
		}
		r.nodes[i] = &r2c2Node{
			id:         topology.NodeID(i),
			view:       core.NewView(),
			flows:      make(map[wire.FlowID]*senderFlow),
			recv:       make(map[wire.FlowID]*reorderState),
			tombstones: make(map[wire.FlowID]bool),
		}
	}
	r.failedLinks = make(map[topology.LinkID]bool)
	r.deadNodes = make(map[topology.NodeID]bool)
	net.Deliver = r.deliver
	net.NextBroadcastHops = r.broadcastHops
	net.OnDrop = r.onDrop
	if net.Eng.r2 != nil && net.Eng.r2 != r {
		panic("sim: engine already drives another R2C2 transport")
	}
	net.Eng.r2 = r // typed-event receiver for evSend/evRTO
	// Arm the periodic recomputation tick.
	r.nextTick = net.Eng.Now() + cfg.Recompute
	net.Eng.After(cfg.Recompute, r.recomputeTick)
	return r
}

// maxBcastRetries bounds §3.2 broadcast retransmission; failures beyond it
// are covered by the periodic resynchronisation paths (finish broadcasts,
// failure re-announcements).
const maxBcastRetries = 3

// onDrop implements §3.2's broadcast loss recovery: "To detect drops due
// to queue overflows at intermediate nodes, the node dropping a broadcast
// packet informs the sender who can then re-transmit." The notification
// trip is modelled as one fabric traversal; the retransmission uses the
// origin's next broadcast tree, so it avoids repeating the congested path.
func (r *R2C2) onDrop(pkt *Packet, at topology.LinkID) {
	if pkt.Kind != KindBroadcast || pkt.Retries >= maxBcastRetries {
		return
	}
	r.BcastRetransmits++
	origin := pkt.Src
	b := *pkt.Bcast
	retries := pkt.Retries + 1
	// The drop notification crosses the fabric behind whatever congestion
	// caused the drop (store-and-forward at MTU granularity), and repeated
	// failures back off exponentially so retransmissions outlive the burst.
	notify := simtime.Time(r.Net.G.Diameter()) *
		(r.Net.Cfg.PropDelay + simtime.TransmitTime(MTU, r.Net.Cfg.LinkGbps)) *
		simtime.Time(1<<retries)
	if r.sh != nil && r.sh.shardOf[origin] != r.sh.self {
		// The drop happened on a link this shard owns but the origin lives
		// elsewhere: hand the retransmission request across the boundary.
		// notify ≥ 2·Diameter·(prop+transmit) ≥ the lookahead window, so the
		// control handoff is always inside the conservative-sync horizon.
		r.Net.exportReflood(r.sh.shardOf[origin], r.Net.Eng.now+notify, origin, &b, retries)
		return
	}
	r.Net.Eng.After(notify, func() { r.reflood(origin, &b, retries) })
}

// reflood retransmits a dropped broadcast from its origin on the origin's
// next tree (§3.2 loss recovery). Runs in the origin's shard.
func (r *R2C2) reflood(origin topology.NodeID, b *wire.Broadcast, retries uint8) {
	node := r.nodes[origin]
	nb := *b
	nb.Tree = r.pickTree(node)
	cp := r.Net.newPacket()
	cp.Kind = KindBroadcast
	cp.SizeBytes = BroadcastBytes
	cp.Flow = nb.Flow()
	cp.Src = origin
	cp.Bcast = &nb
	cp.Retries = retries
	r.Net.InjectBroadcast(origin, cp)
}

// phys translates a path expressed in the current fabric's link IDs to
// physical port IDs. Identity while the fabric is intact.
func (r *R2C2) phys(path []topology.LinkID) []topology.LinkID {
	if r.linkMap == nil {
		return path
	}
	out := make([]topology.LinkID, len(path))
	for i, lid := range path {
		out[i] = r.linkMap[lid]
	}
	return out
}

// physInPlace is phys overwriting the slice itself: only for buffers the
// caller owns (a packet's sampling scratch or an interned copy), never for
// cached Phi or successor paths.
func (r *R2C2) physInPlace(path []topology.LinkID) {
	if r.linkMap == nil {
		return
	}
	for i, lid := range path {
		path[i] = r.linkMap[lid]
	}
}

// degradedFabric recomputes the degraded fabric from the CURRENT failure
// state. Called at injection (to validate connectivity before committing)
// and at detection-fire time (never from a stale snapshot).
func (r *R2C2) degradedFabric() (*topology.Graph, []topology.LinkID, error) {
	if len(r.failedLinks) == 0 && len(r.deadNodes) == 0 {
		return r.Net.G, nil, nil
	}
	return r.Net.G.WithoutLinksAndNodes(r.failedLinks, r.deadNodes)
}

// FailLink fails both directions of the cable between a and b. Packets in
// flight or later routed onto the dead ports are lost immediately; after
// `detection` (the topology-discovery delay of §3.2) every node switches to
// the degraded fabric and re-broadcasts information about all its ongoing
// flows, resynchronising any views that missed events. It returns an error
// if the failure would partition the rack.
func (r *R2C2) FailLink(a, b topology.NodeID, detection simtime.Time) error {
	var added []topology.LinkID
	for _, pair := range [][2]topology.NodeID{{a, b}, {b, a}} {
		lid, ok := r.Net.G.LinkBetween(pair[0], pair[1])
		if !ok || r.failedLinks[lid] {
			continue
		}
		r.failedLinks[lid] = true
		added = append(added, lid)
	}
	if len(added) == 0 {
		return fmt.Errorf("sim: no link between %d and %d", a, b)
	}
	// Validate connectivity before killing anything. Only the union is
	// checked here; connectivity is monotone in the failed set, so every
	// later fire-time recompute over a subset-or-equal state succeeds too.
	if _, _, err := r.degradedFabric(); err != nil {
		for _, lid := range added {
			delete(r.failedLinks, lid)
		}
		return err
	}
	for _, lid := range added {
		r.Net.FailLink(lid)
	}
	r.failSeq++
	r.Net.Eng.After(detection, r.rerouteNow)
	return nil
}

// FailNode kills an entire node (§3.2 considers node failures alongside
// link failures): all its links go dark immediately; after `detection`,
// survivors switch to the degraded fabric, purge the dead node's flows
// from their views (their bandwidth must not stay reserved), and
// re-announce their own flows. Flows sourced at or destined to the dead
// node are abandoned and remain incomplete in the ledger.
func (r *R2C2) FailNode(dead topology.NodeID, detection simtime.Time) error {
	if r.deadNodes[dead] {
		return fmt.Errorf("sim: node %d already failed", dead)
	}
	r.deadNodes[dead] = true
	// Fold the node's links into failedLinks so later link failures are
	// validated against the full union (a link failure after a node crash
	// must not count on the dead node's cables for connectivity).
	var added []topology.LinkID
	for _, links := range [][]topology.LinkID{r.Net.G.Out(dead), r.Net.G.In(dead)} {
		for _, lid := range links {
			if !r.failedLinks[lid] {
				r.failedLinks[lid] = true
				added = append(added, lid)
			}
		}
	}
	if _, _, err := r.degradedFabric(); err != nil {
		delete(r.deadNodes, dead)
		for _, lid := range added {
			delete(r.failedLinks, lid)
		}
		return err
	}
	for _, lid := range added {
		r.Net.FailLink(lid)
	}
	// The dead node stops sending instantly: drop its sender state so
	// armed pacing events become no-ops. (Audited for det-map-iter: the
	// range-and-delete shape is order-free, but clear() says it directly.)
	// In a sharded run only the dead node's owner shard holds its state.
	if node := r.nodes[dead]; node != nil {
		clear(node.flows)
	}
	r.failSeq++
	r.Net.Eng.After(detection, r.rerouteNow)
	return nil
}

// RepairLink returns both directions of the cable between a and b to
// service — the recovery half of §3.2: after `detection` (topology
// discovery runs for repairs exactly as for failures) every node switches
// back to the re-expanded fabric and re-announces its flows. Cables of a
// crashed node cannot be repaired while the node is dead.
func (r *R2C2) RepairLink(a, b topology.NodeID, detection simtime.Time) error {
	if r.deadNodes[a] || r.deadNodes[b] {
		return fmt.Errorf("sim: cannot repair link %d-%d of a failed node", a, b)
	}
	var repaired []topology.LinkID
	for _, pair := range [][2]topology.NodeID{{a, b}, {b, a}} {
		lid, ok := r.Net.G.LinkBetween(pair[0], pair[1])
		if !ok || !r.failedLinks[lid] {
			continue
		}
		delete(r.failedLinks, lid)
		repaired = append(repaired, lid)
	}
	if len(repaired) == 0 {
		return fmt.Errorf("sim: no failed link between %d and %d", a, b)
	}
	for _, lid := range repaired {
		r.Net.RepairLink(lid)
	}
	r.failSeq++
	r.Net.Eng.After(detection, r.rerouteNow)
	return nil
}

// rerouteNow is the detection-fire callback shared by every fault
// injection: it recomputes the degraded fabric from the CURRENT failure
// state and swaps it in. The epoch guard makes callbacks whose injections
// were already covered by a later-injected, earlier-firing reroute no-op.
func (r *R2C2) rerouteNow() {
	if r.sh != nil {
		r.sh.ctrl++ // replicated control event: fires once in every shard
	}
	if r.reroutedSeq >= r.failSeq {
		return // a newer reroute already covers this injection
	}
	sub, mapping, err := r.degradedFabric()
	if err != nil {
		// Every injection validated the union it created, and connectivity
		// is monotone in the failed set.
		panic(fmt.Sprintf("sim: degraded fabric invalid at detection time: %v", err))
	}
	r.reroutedSeq = r.failSeq
	r.reroute(sub, mapping)
}

// reroute swaps in the degraded fabric and re-announces every live flow.
func (r *R2C2) reroute(sub *topology.Graph, mapping []topology.LinkID) {
	r.FailureReroutes++
	r.gen++ // invalidate interned routes computed over the old fabric
	// Purge flows involving dead nodes BEFORE rebuilding, so the
	// re-announce loop never routes toward an unreachable endpoint and no
	// view keeps bandwidth reserved for a crashed node's flows.
	if len(r.deadNodes) > 0 {
		for _, n := range r.nodes {
			if n == nil {
				continue // owned by another shard
			}
			for _, info := range n.view.Flows() {
				if r.deadNodes[info.Src] || r.deadNodes[info.Dst] {
					n.view.RemoveFlow(info.ID)
					delete(n.flows, info.ID) // abandon senders to dead nodes
				}
			}
		}
	}
	r.Tab = routing.NewTable(sub)
	r.Fib = topology.NewBroadcastFIB(sub, r.Cfg.TreesPerSource, r.Cfg.Seed)
	r.linkMap = mapping
	r.rc = core.NewRateComputer(r.Tab, r.Net.Cfg.LinkGbps*1e9, r.Cfg.Headroom)
	r.agg = nil // recreated lazily over the new Tab (computeGlobal)
	// "Upon detecting a failure, nodes broadcast information about all
	// their ongoing flows" (§3.2).
	for _, node := range r.nodes {
		if node == nil || r.deadNodes[node.id] {
			continue
		}
		// Sorted iteration: each re-announce broadcast schedules events,
		// and scheduling order is the FIFO tie-break (det-map-iter).
		for _, id := range r.sortedFlowIDs(node.flows) {
			sf := node.flows[id]
			r.broadcast(node, sf.info.StartBroadcast(r.pickTree(node)))
		}
	}
}

// Ledger exposes the flow records for results collection.
func (r *R2C2) Ledger() map[wire.FlowID]*FlowRecord { return r.ledger.records }

// View returns a node's traffic-matrix view (for tests and inspection).
func (r *R2C2) View(node topology.NodeID) *core.View { return r.nodes[node].view }

// StartFlow begins a flow of sizeBytes from src to dst at the current
// simulated time: the sender updates its own view, broadcasts the start
// event, and starts transmitting immediately (§3.1) — at line rate until
// the first recomputation covers the flow, with the headroom absorbing the
// transient (§3.3.2).
func (r *R2C2) StartFlow(src, dst topology.NodeID, sizeBytes int64, weight, priority uint8) wire.FlowID {
	return r.StartHostLimitedFlow(src, dst, sizeBytes, weight, priority, 0)
}

// StartHostLimitedFlow is StartFlow for a flow whose application cannot
// exceed demandBits bits/s (§3.3.2, "Host-limited flows"): the demand is
// carried in the start broadcast, every node allocates min(fair share,
// demand), and the sender additionally paces at the demand. demandBits <= 0
// means network-limited.
func (r *R2C2) StartHostLimitedFlow(src, dst topology.NodeID, sizeBytes int64, weight, priority uint8, demandBits float64) wire.FlowID {
	if src == dst || sizeBytes <= 0 {
		panic("sim: degenerate flow")
	}
	if weight == 0 {
		weight = 1
	}
	node := r.nodes[src]
	if node.rng == nil {
		node.rng = newNodeRng(r.Cfg.Seed, src) // private route-sampling stream
	}
	id := wire.MakeFlowID(uint16(src), node.nextSeq)
	node.nextSeq++
	if r.deadNodes[src] || r.deadNodes[dst] {
		// Abandoned at birth: a crashed endpoint can neither send nor
		// receive. The ledger records the flow (it stays incomplete) so
		// workload replays account for it.
		r.ledger.open(id, src, dst, sizeBytes, r.Net.Eng.Now())
		return id
	}
	demand := core.UnlimitedDemand
	if demandBits > 0 {
		demand = core.KbpsDemand(demandBits)
	}
	info := core.FlowInfo{
		ID: id, Src: src, Dst: dst,
		Weight: weight, Priority: priority,
		DemandKbps: demand,
		Protocol:   r.Cfg.Protocol,
	}
	initial := r.Net.Cfg.LinkGbps * 1e9
	if demandBits > 0 && demandBits < initial {
		initial = demandBits
	}
	sf := &senderFlow{
		info: info, remaining: sizeBytes, rate: initial, demand: demandBits,
		size:      sizeBytes,
		started:   r.Net.Eng.Now(),
		totalPkts: uint32((sizeBytes + MaxPayload - 1) / MaxPayload),
	}
	node.flows[id] = sf
	node.view.AddFlow(info)
	r.ledger.open(id, src, dst, sizeBytes, r.Net.Eng.Now())
	r.broadcast(node, info.StartBroadcast(r.pickTree(node)))
	r.armSender(node, sf)
	return id
}

// UpdateDemand re-announces a live flow's demand (the sender-side estimator
// of §3.3.2 Eq. (1) would drive this) so all nodes allocate demand-aware.
// Unknown or finished flows are ignored.
func (r *R2C2) UpdateDemand(id wire.FlowID, demandBits float64) {
	if int(id.Src()) >= len(r.nodes) {
		return
	}
	node := r.nodes[id.Src()]
	sf, ok := node.flows[id]
	if !ok {
		return
	}
	sf.demand = demandBits
	if demandBits > 0 {
		sf.info.DemandKbps = core.KbpsDemand(demandBits)
	} else {
		sf.info.DemandKbps = core.UnlimitedDemand
	}
	node.view.AddFlow(sf.info)
	r.broadcast(node, sf.info.DemandBroadcast(r.pickTree(node)))
}

// SetProtocol re-assigns a live flow's routing protocol (the §3.4 selection
// mechanism) and broadcasts the change. Unknown flows are ignored.
func (r *R2C2) SetProtocol(id wire.FlowID, p routing.Protocol) {
	if int(id.Src()) >= len(r.nodes) {
		return
	}
	node := r.nodes[id.Src()]
	sf, ok := node.flows[id]
	if !ok {
		return
	}
	sf.info.Protocol = p
	node.view.AddFlow(sf.info)
	r.broadcast(node, sf.info.RouteChangeBroadcast(r.pickTree(node)))
}

func (r *R2C2) pickTree(node *r2c2Node) uint8 {
	t := node.nextTree
	node.nextTree = (node.nextTree + 1) % uint8(r.Cfg.TreesPerSource)
	return t
}

// broadcast applies an event locally and floods it along the chosen tree.
func (r *R2C2) broadcast(node *r2c2Node, b *wire.Broadcast) {
	pkt := r.Net.newPacket()
	pkt.Kind = KindBroadcast
	pkt.SizeBytes = BroadcastBytes
	pkt.Flow = b.Flow()
	pkt.Src = topology.NodeID(b.Src)
	pkt.Bcast = b
	r.Net.InjectBroadcast(node.id, pkt)
}

func (r *R2C2) broadcastHops(at topology.NodeID, pkt *Packet) []topology.LinkID {
	hops, ok := r.Fib.NextHops(pkt.Src, pkt.Bcast.Tree, at)
	if !ok {
		// A reroute swapped the FIB underneath an in-flight broadcast: the
		// new trees need not visit `at` on this tree, and a dead origin has
		// no trees at all. The copy already delivered here stands; the
		// flood just stops (§3.2's re-announce resynchronises any views
		// that missed it).
		return nil
	}
	return r.phys(hops)
}

// armSender schedules the flow's next packet transmission according to its
// token-bucket rate.
func (r *R2C2) armSender(node *r2c2Node, sf *senderFlow) {
	if sf.armed || sf.rate <= 0 {
		return
	}
	if r.Cfg.Reliable {
		if sf.nextChunk >= sf.totalPkts {
			return // all sent; waiting for acks or an RTO pull-back
		}
	} else if sf.remaining <= 0 {
		return
	}
	sf.armed = true
	r.Net.Eng.after(0, event{kind: evSend, rn: node, sf: sf})
}

// fillPath sets pkt.Path to the flow's source route, already translated to
// physical ports. Deterministic protocols (DOR) intern the route on the
// flow and share it by reference; randomised ones sample per packet into
// the packet's recycled scratch buffer.
func (r *R2C2) fillPath(node *r2c2Node, pkt *Packet, sf *senderFlow) {
	if sf.info.Protocol == routing.DOR {
		if sf.route == nil || sf.routeGen != r.gen {
			sf.route = r.Tab.AppendPath(nil, routing.DOR, sf.info.Src, sf.info.Dst, node.rng)
			r.physInPlace(sf.route)
			sf.routeGen = r.gen
		}
		pkt.Path = sf.route
		return
	}
	pkt.scratch = r.Tab.AppendPath(pkt.scratch[:0], sf.info.Protocol, sf.info.Src, sf.info.Dst, node.rng)
	r.physInPlace(pkt.scratch)
	pkt.Path = pkt.scratch
}

func (r *R2C2) sendNext(node *r2c2Node, sf *senderFlow) {
	sf.armed = false
	if _, live := node.flows[sf.info.ID]; !live {
		return // abandoned (node failure purge) or already finished
	}
	if sf.rate <= 0 {
		return // re-armed by the next recomputation
	}
	var payload int64
	var seq uint32
	if r.Cfg.Reliable {
		if sf.nextChunk >= sf.totalPkts {
			return
		}
		seq = sf.nextChunk
		payload = sf.chunkPayload(seq)
		if seq < sf.seq {
			r.Retransmissions++ // re-sending a chunk transmitted before
		}
		sf.nextChunk++
		if sf.nextChunk > sf.seq {
			sf.seq = sf.nextChunk // high-water mark of chunks ever sent
		}
	} else {
		if sf.remaining <= 0 {
			return
		}
		payload = MaxPayload
		if sf.remaining < payload {
			payload = sf.remaining
		}
		seq = sf.seq
		sf.seq++
		sf.remaining -= payload
	}
	size := int(payload) + DataHeaderBytes
	pkt := r.Net.newPacket()
	pkt.Kind = KindData
	pkt.SizeBytes = size
	pkt.Flow = sf.info.ID
	pkt.Src = sf.info.Src
	pkt.Dst = sf.info.Dst
	pkt.Seq = seq
	pkt.Payload = int(payload)
	// Carried so a receiving shard can open the flow's delivery record
	// lazily (receiveData); inert in serial runs.
	pkt.flowSize = sf.size
	pkt.flowStart = sf.started
	r.fillPath(node, pkt, sf)
	r.Net.Inject(pkt)

	if r.Cfg.Reliable {
		r.armRTO(node, sf)
		if sf.nextChunk >= sf.totalPkts {
			return // everything in flight; completion is ack-driven
		}
	} else if sf.remaining <= 0 {
		// Sender is done: announce the finish so capacity is reallocated
		// (§3.1) and drop the flow from the local view.
		r.finishSender(node, sf)
		return
	}
	gap := simtime.Time(float64(size*8) / sf.paceRate() * float64(simtime.Second))
	if gap < 1 {
		gap = 1
	}
	sf.armed = true
	r.Net.Eng.after(gap, event{kind: evSend, rn: node, sf: sf})
}

// finishSender retires a flow at its source and broadcasts the finish.
func (r *R2C2) finishSender(node *r2c2Node, sf *senderFlow) {
	r.ledger.get(sf.info.ID).SenderDone = true
	node.view.RemoveFlow(sf.info.ID)
	delete(node.flows, sf.info.ID)
	r.broadcast(node, sf.info.FinishBroadcast(r.pickTree(node)))
}

// armRTO starts the retransmission timer for a reliable flow.
func (r *R2C2) armRTO(node *r2c2Node, sf *senderFlow) {
	if sf.rtoArmed {
		return
	}
	sf.rtoArmed = true
	sf.rtoSeq++
	sf.rtoTimer = r.Net.Eng.after(r.Cfg.RTO, event{kind: evRTO, rn: node, sf: sf, u64: sf.rtoSeq})
}

// disarmRTO invalidates a pending retransmission timer. Under the wheel
// the event leaves the schedule immediately; under the legacy heap the
// handle is inert and the rtoSeq bump tombstones it until its no-op fire.
func (r *R2C2) disarmRTO(sf *senderFlow) {
	sf.rtoArmed = false
	sf.rtoSeq++
	r.Net.Eng.cancelTimer(sf.rtoTimer)
	sf.rtoTimer = timerHandle{}
}

// onRTO pulls the send pointer back to the cumulative-ack point: go-back-N
// retransmission, paced at the flow's allocated rate like any other data.
func (r *R2C2) onRTO(node *r2c2Node, sf *senderFlow, seq uint64) {
	if sf.rtoSeq != seq || !sf.rtoArmed {
		return
	}
	sf.rtoArmed = false
	if _, live := node.flows[sf.info.ID]; !live || sf.cumAcked >= sf.totalPkts {
		return
	}
	sf.nextChunk = sf.cumAcked
	r.armRTO(node, sf)
	r.armSender(node, sf)
}

// receiveAck advances a reliable sender's cumulative ack state.
func (r *R2C2) receiveAck(pkt *Packet) {
	node := r.nodes[pkt.Dst]
	sf, ok := node.flows[pkt.Flow]
	if !ok {
		return // flow already fully acked
	}
	if pkt.Seq > sf.cumAcked {
		sf.cumAcked = pkt.Seq
		if sf.cumAcked > sf.nextChunk {
			sf.nextChunk = sf.cumAcked
		}
		r.disarmRTO(sf)
		if sf.cumAcked >= sf.totalPkts {
			r.finishSender(node, sf)
			return
		}
		r.armRTO(node, sf)
	}
}

// deliver handles packets reaching a node: broadcasts update the view,
// data packets update receive state and flow records.
func (r *R2C2) deliver(at topology.NodeID, pkt *Packet) {
	if r.deadNodes[at] {
		return // a crashed node processes nothing (in-flight arrivals die here)
	}
	switch pkt.Kind {
	case KindBroadcast:
		if pkt.Bcast.Event == wire.EventFlowFinish && topology.NodeID(pkt.Bcast.Dst) == at {
			// Reliable receivers keep per-flow state past completion so they
			// can re-ack a lost final ack; the finish broadcast retires it.
			// Guard on Done: a 16-byte finish broadcast can outrun the last
			// queued data packets (it is sent when the sender finishes, and
			// in reliable mode only after full acking, but stray orderings
			// must not wipe live receive state).
			if rec := r.ledger.get(pkt.Bcast.Flow()); rec != nil && rec.Done {
				delete(r.nodes[at].recv, pkt.Bcast.Flow())
			}
		}
		if topology.NodeID(pkt.Bcast.Src) == at {
			// The origin mutated its own view before broadcasting (§3.1).
			return
		}
		node := r.nodes[at]
		switch pkt.Bcast.Event {
		case wire.EventFlowFinish:
			node.tombstones[pkt.Bcast.Flow()] = true
		case wire.EventFlowStart:
			if node.tombstones[pkt.Bcast.Flow()] {
				return // a retransmitted start racing its own finish
			}
		}
		if err := node.view.Apply(pkt.Bcast); err != nil {
			panic(err)
		}
	case KindData:
		r.receiveData(at, pkt)
	case KindAck:
		r.receiveAck(pkt)
	}
}

func (r *R2C2) receiveData(at topology.NodeID, pkt *Packet) {
	rec := r.ledger.get(pkt.Flow)
	if rec == nil {
		if r.sh == nil || pkt.flowSize <= 0 {
			return // not a flow of this stack (stray traffic)
		}
		// Cross-shard flow: the source shard opened the authoritative
		// record; this shard opens a receive-side record from the
		// packet-carried metadata. The merge (shard.go) folds its
		// delivery fields back into the source record.
		rec = r.ledger.openRecv(pkt.Flow, pkt.Src, pkt.Dst, pkt.flowSize, pkt.flowStart)
	}
	node := r.nodes[at]
	rs, ok := node.recv[pkt.Flow]
	if !ok {
		rs = &reorderState{oob: make(map[uint32]bool)}
		node.recv[pkt.Flow] = rs
	}
	isNew := pkt.Seq >= rs.next && !rs.oob[pkt.Seq]
	if pkt.Seq == rs.next {
		rs.next++
		for rs.oob[rs.next] {
			delete(rs.oob, rs.next)
			rs.next++
		}
	} else if pkt.Seq > rs.next {
		rs.oob[pkt.Seq] = true
	}
	r.Reorder.Add(float64(len(rs.oob)))

	if isNew {
		rec.BytesRcvd += int64(pkt.Payload)
	}
	if !rec.Done && rec.BytesRcvd >= rec.SizeBytes {
		rec.Done = true
		rec.Finished = r.Net.Eng.Now()
		if r.sh != nil {
			r.sh.doneFlows++ // each flow completes in exactly one shard
		}
		if !r.Cfg.Reliable {
			delete(node.recv, pkt.Flow)
		}
	}
	if r.Cfg.Reliable {
		// Cumulative acknowledgement, solely for reliability (§6): routed
		// minimally and deterministically back to the sender, along a route
		// interned once per flow on the receive state. Rebuilds after a
		// reroute go into a fresh buffer — in-flight acks share the old
		// backing array by reference and must keep their pre-failure
		// snapshot (same reason fillPath's DOR branch allocates anew).
		if rs.ackPath == nil || rs.ackGen != r.gen {
			rs.ackPath = append([]topology.LinkID(nil), r.Tab.Phi(routing.DOR, pkt.Dst, pkt.Src).Links...)
			r.physInPlace(rs.ackPath)
			rs.ackGen = r.gen
		}
		ack := r.Net.newPacket()
		ack.Kind = KindAck
		ack.SizeBytes = AckBytes
		ack.Flow = pkt.Flow
		ack.Src = pkt.Dst
		ack.Dst = pkt.Src
		ack.Seq = rs.next
		ack.Path = rs.ackPath
		r.Net.Inject(ack)
	}
}

// recomputeTick is the periodic batch recomputation (§3.3.2). Serial runs
// and replicated-control sharded runs recompute every node's rates from its
// own view right here; aggregated sharded runs instead summarise the
// shard's sourced flows and pause for the cross-shard tree reduction
// (DESIGN.md §15) — the allocation comes back through applyAggregatedTick.
func (r *R2C2) recomputeTick() {
	if r.sh == nil {
		r.replicatedTick()
		return
	}
	//lint:ignore no-wallclock control-plane cost accounting only; excluded from Results byte-identity
	t0 := time.Now()
	if r.sh.replicated {
		r.replicatedTick()
	} else {
		r.aggregateTick()
	}
	//lint:ignore no-wallclock,unit-taint control-plane cost accounting in wall nanoseconds; excluded from Results byte-identity
	r.sh.ctrlNs += time.Since(t0).Nanoseconds()
}

// replicatedTick recomputes every local node's rates from its own view:
// nodes whose views are identical (the common case once broadcasts settle)
// share a single allocator run, keyed by the view hash.
func (r *R2C2) replicatedTick() {
	r.RecomputeRounds++
	if r.sh != nil {
		r.sh.ctrl++ // replicated control event: ticks fire in every shard
		// Log this tick's distinct view hashes so the merge can reproduce
		// the serial Recomputations count (per-tick union across shards).
		r.sh.tickHashes = append(r.sh.tickHashes, nil)
	}
	r.rearmFromViews(nil)
	r.nextTick = r.Net.Eng.Now() + r.Cfg.Recompute
	r.Net.Eng.After(r.Cfg.Recompute, r.recomputeTick)
}

// aggregateTick is the local half of an aggregated-control tick: it
// summarises the flows this shard's nodes source (ascending node order,
// flows sorted by ID — with source-prefixed flow IDs that is exactly
// ascending global flow order) and pauses the engine AT the tick. Events
// at the tick timestamp with later sequence numbers must not run until the
// reduction publishes the global allocation back: in a serial run they
// would execute after the tick's own scheduling, which happens in
// applyAggregatedTick here.
func (r *R2C2) aggregateTick() {
	r.RecomputeRounds++
	r.sh.ctrl++ // the tick event itself still fires once in every shard
	r.sh.tickHashes = append(r.sh.tickHashes, nil)
	s := &r.sh.summary
	s.Reset()
	for _, node := range r.nodes {
		if node == nil || len(node.flows) == 0 {
			continue
		}
		for _, id := range r.sortedFlowIDs(node.flows) {
			s.Add(node.flows[id].info)
		}
	}
	r.nextTick = r.Net.Eng.Now() + r.Cfg.Recompute
	r.sh.tickPending = true
	r.Net.Eng.requestStop()
}

// computeGlobal turns the fully reduced demand summary into the tick's
// global allocation. Called by the orchestrator on the reduction-tree
// root's R2C2 only, between phases (the barrier orders the accesses).
func (r *R2C2) computeGlobal(s *core.DemandSummary) *core.Allocation {
	if r.agg == nil {
		r.agg = core.NewRateComputer(r.Tab, r.Net.Cfg.LinkGbps*1e9, r.Cfg.Headroom)
	}
	return r.agg.ComputeSummary(s)
}

// applyAggregatedTick is the apply half of an aggregated-control tick: the
// orchestrator has published the global allocation to r.sh, and this shard
// re-arms its own senders from it. Nodes whose views converged to the
// global flow set (hash match) share the global allocation outright; a
// node whose view diverged (broadcasts still in flight) falls back to the
// shard-local computer over its own view — exactly the replicated path,
// so the fallback preserves the oracle's semantics. The tick re-arms HERE,
// after the senders, so event sequence numbers are assigned in the same
// relative order the serial tick assigns them.
func (r *R2C2) applyAggregatedTick() {
	r.rearmFromViews(r.sh.globalAlloc)
	r.Net.Eng.After(r.Cfg.Recompute, r.recomputeTick)
}

// rearmFromViews re-arms every local sender from this tick's allocations,
// deduplicating allocator runs by view hash. global is the aggregated
// tick's reduced allocation (nil on the replicated/serial path): views
// hashing to it adopt it without touching the shard-local computer.
func (r *R2C2) rearmFromViews(global *core.Allocation) {
	if r.tickCache == nil {
		r.tickCache = make(map[uint64]*core.Allocation)
	}
	clear(r.tickCache) // reuse the buckets across ticks
	for _, node := range r.nodes {
		if node == nil || len(node.flows) == 0 {
			continue
		}
		h := node.view.Hash()
		alloc, ok := r.tickCache[h]
		if !ok {
			if global != nil && h == global.ViewHash {
				alloc = global
			} else {
				alloc = r.rc.Compute(node.view)
			}
			r.tickCache[h] = alloc
			r.Recomputations++
			if r.sh != nil {
				last := len(r.sh.tickHashes) - 1
				r.sh.tickHashes[last] = append(r.sh.tickHashes[last], h)
			}
		}
		// Sorted iteration: armSender schedules the pacing events, and
		// scheduling order assigns their sequence numbers (det-map-iter).
		for _, id := range r.sortedFlowIDs(node.flows) {
			sf := node.flows[id]
			sf.rate = alloc.Rate(id)
			if invariantsEnabled {
				// A multipath flow may exceed one link's rate (its φ sums
				// over parallel paths), but never the source's aggregate
				// injection bandwidth: out-degree × link capacity.
				injBits := float64(len(r.Tab.Graph().Out(sf.info.Src))) * r.Net.Cfg.LinkGbps * 1e9
				assertInvariant(sf.rate <= injBits*(1+1e-9),
					"flow %v paced at %v bits/s above source injection bandwidth %v bits/s", id, sf.rate, injBits)
			}
			r.armSender(node, sf)
		}
	}
}
