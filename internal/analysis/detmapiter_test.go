package analysis

import (
	"strings"
	"testing"
)

func TestDetMapIterLocalSinks(t *testing.T) {
	a := NewDetMapIter()
	cases := []struct {
		name string
		src  string
		want int
		msg  string
	}{
		{"append-unsorted", `package p
func f(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}`, 1, "emitted without sort"},
		{"collect-then-sort", `package p
import "sort"
func f(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}`, 0, ""},
		{"collect-then-slices-sort", `package p
import "slices"
func f(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}`, 0, ""},
		{"int-sum", `package p
func f(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}`, 0, ""},
		{"float-accumulate", `package p
func f(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}`, 1, "FP addition is not associative"},
		{"string-concat", `package p
func f(m map[int]string) string {
	s := ""
	for _, v := range m {
		s += v
	}
	return s
}`, 1, "string concatenation"},
		{"min-builtin", `package p
func f(m map[int]int) int {
	best := 1 << 30
	for _, v := range m {
		best = min(best, v)
	}
	return best
}`, 1, "ties resolve in iteration order"},
		{"argmin-if", `package p
func f(m map[int]int) int {
	best, bestK := 1<<30, -1
	for k, v := range m {
		if v < best {
			best = v
			bestK = k
		}
	}
	return bestK
}`, 1, "last write in map order wins"},
		{"chan-send", `package p
func f(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v
	}
}`, 1, "channel send"},
		{"chan-send-constant-ok", `package p
func f(m map[int]int, ch chan int) {
	for range m {
		ch <- 1
	}
}`, 0, ""},
		{"delete-ok", `package p
func f(m map[int]int) {
	for k := range m {
		delete(m, k)
	}
}`, 0, ""},
		{"map-write-by-key-ok", `package p
func f(m map[int]int) map[int]int {
	out := map[int]int{}
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}`, 0, ""},
		{"slice-write-by-key-ok", `package p
func f(m map[int]float64, n int) []float64 {
	vec := make([]float64, n)
	for k, v := range m {
		vec[k] = v
	}
	return vec
}`, 0, ""},
		{"fixed-index-last-write-wins", `package p
func f(m map[int]int) int {
	vec := make([]int, 1)
	for _, v := range m {
		vec[0] = v
	}
	return vec[0]
}`, 1, "last write in map order wins"},
		{"loop-local-ok", `package p
func f(m map[int]int) int {
	n := 0
	for _, v := range m {
		d := v * 2
		if d > 0 {
			n++
		}
	}
	return n
}`, 0, ""},
		{"derived-dependence", `package p
func f(m map[int]int) []int {
	var out []int
	for _, v := range m {
		d := v * 2
		out = append(out, d)
	}
	return out
}`, 1, "emitted without sort"},
		{"fmt-output", `package p
import "fmt"
func f(m map[int]int) {
	for k := range m {
		fmt.Println(k)
	}
}`, 1, "formatted output"},
		{"atomic-store", `package p
import "sync/atomic"
type flow struct{ rate atomic.Uint64 }
func f(m map[int]*flow) {
	for _, fl := range m {
		fl.rate.Store(1)
	}
}`, 1, "atomic write"},
		{"goroutine-launch", `package p
func f(m map[int]int) {
	for _, v := range m {
		go func() { _ = v }()
	}
}`, 1, "goroutine launched"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := checkModule(t, onePkg("m/p", tc.src), a)
			if len(diags) != tc.want {
				t.Fatalf("got %d findings, want %d: %v", len(diags), tc.want, diags)
			}
			if tc.want > 0 && !strings.Contains(diags[0].Message, tc.msg) {
				t.Errorf("message %q does not mention %q", diags[0].Message, tc.msg)
			}
		})
	}
}

// TestDetMapIterTransitiveScheduler exercises the two-phase resolution: the
// loop body calls a helper in another package, and only the module-wide
// call graph shows the helper reaching a scheduling primitive.
func TestDetMapIterTransitiveScheduler(t *testing.T) {
	a := NewDetMapIter()
	pkgs := map[string]map[string]string{
		"m/internal/core": {"eng.go": `package core
type Engine struct{ n int }
func (e *Engine) After(d int64, fn func()) { e.n++ }
func Arm(e *Engine, rate float64) {
	e.After(1, func() { _ = rate })
}`},
		"m/internal/sim": {"tick.go": `package sim
import "m/internal/core"
type flow struct{ rate float64 }
func tick(e *core.Engine, flows map[uint32]*flow) {
	for _, f := range flows {
		core.Arm(e, f.rate)
	}
}`},
	}
	diags := checkModule(t, pkgs, a)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "schedules events") ||
		!strings.Contains(diags[0].Message, "core.Arm") {
		t.Errorf("message %q should name core.Arm as the transitive scheduler", diags[0].Message)
	}
}

// TestDetMapIterTransitivePublish: a helper that closes a per-flow channel
// counts as cross-goroutine publication.
func TestDetMapIterTransitivePublish(t *testing.T) {
	a := NewDetMapIter()
	src := `package p
type flow struct{ done chan struct{} }
func (f *flow) abort() { close(f.done) }
func purge(flows map[uint32]*flow) {
	for _, f := range flows {
		f.abort()
	}
}`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "publishes across goroutines") {
		t.Fatalf("want one transitive-publish finding, got %v", diags)
	}
}

// TestDetMapIterNoLoopData: calling a scheduler with loop-invariant
// arguments is order-free (n identical events), so it must not flag.
func TestDetMapIterNoLoopData(t *testing.T) {
	a := NewDetMapIter()
	src := `package p
type Engine struct{ n int }
func (e *Engine) Schedule(at int64) { e.n++ }
func f(e *Engine, m map[int]int) {
	for range m {
		e.Schedule(5)
	}
}`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 0 {
		t.Fatalf("loop-invariant scheduling should be order-free, got %v", diags)
	}
}

// TestDetMapIterScope: the rule only runs on its configured packages.
func TestDetMapIterScope(t *testing.T) {
	a := NewDetMapIter("internal/sim")
	src := `package cmdx
func f(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}`
	diags := checkModule(t, onePkg("m/cmd/cmdx", src), a)
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package should not be checked, got %v", diags)
	}
}

// TestDetMapIterIgnore: a justified //lint:ignore on the range line
// suppresses the finding.
func TestDetMapIterIgnore(t *testing.T) {
	a := NewDetMapIter()
	src := `package p
func f(m map[int]float64) float64 {
	var total float64
	//lint:ignore det-map-iter fixture: tolerance-tested aggregate
	for _, v := range m {
		total += v
	}
	return total
}`
	diags := checkModule(t, onePkg("m/p", src), a)
	if len(diags) != 0 {
		t.Fatalf("ignored finding should be suppressed, got %v", diags)
	}
}
