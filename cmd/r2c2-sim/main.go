// Command r2c2-sim drives the packet-level simulator through the §5.2
// experiments: the FCT/throughput comparison against TCP and the idealised
// per-flow-queue baseline (Figures 10–13), queue occupancy (Figure 14) and
// the headroom sensitivity study (Figure 17).
//
// Usage:
//
//	r2c2-sim -fig10 -k 8 -dims 3 -flows 20000   # paper scale
//	r2c2-sim -fig12 -k 4 -dims 3 -flows 2000    # reduced sweep
//	r2c2-sim -fig17
//	r2c2-sim -faults gen:7                      # seeded fault schedule
//	r2c2-sim -faults 'down@10ms:0-1/2ms;crash@40ms:5/2ms'
//
// The -interrack mode runs the DESIGN.md §14 intra- vs inter-rack traffic
// sweep on the sharded engine instead of the figures:
//
//	r2c2-sim -interrack -racks 4 -k 3 -shards 4
//	r2c2-sim -interrack -racks 40 -k 16 -shards 0 -flows 4000 -horizon 5ms -csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"r2c2/internal/experiments"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "r2c2-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("r2c2-sim", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		fig10    = fs.Bool("fig10", false, "Figures 10 & 11: FCT / throughput CDFs at fixed tau")
		fig12    = fs.Bool("fig12", false, "Figures 12-14: sweep over flow inter-arrival times")
		fig17    = fs.Bool("fig17", false, "Figure 17: headroom sensitivity")
		k        = fs.Int("k", 4, "torus radix (paper: 8)")
		dims     = fs.Int("dims", 3, "torus dimensions")
		flows    = fs.Int("flows", 2000, "flows per run (paper: ~20k)")
		tauUs    = fs.Float64("tau", 4, "mean flow inter-arrival time in microseconds (paper: 1 at 512 nodes)")
		seed     = fs.Int64("seed", 1, "random seed")
		reliable = fs.Bool("reliable", false, "enable the §6 reliability extension for the R2C2 runs")
		parallel = fs.Int("parallel", 0, "worker count for independent sweep runs (0 = GOMAXPROCS, 1 = sequential; results are identical at any setting)")
		csv      = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
		faultArg = fs.String("faults", "", "fault schedule: gen:<seed>, DSL (down@10ms:0-1/2ms;...) or JSON; runs the fault sweep on a 2D torus instead of the figures")

		interrack = fs.Bool("interrack", false, "run the intra- vs inter-rack traffic sweep on the sharded engine instead of the figures (uses -k as the per-rack torus radix)")
		racks     = fs.Int("racks", 4, "interrack: racks in the ring")
		bridges   = fs.Int("bridges", 2, "interrack: boundary cables between adjacent racks")
		shards    = fs.Int("shards", 0, "interrack: sharded-engine worker cap (0 = NumCPU, 1 = the serial oracle; the mix results are identical at any setting)")
		mixes     = fs.String("mixes", "0,0.25,0.5,1", "interrack: comma-separated inter-rack flow fractions")
		horizon   = fs.Duration("horizon", 50*time.Millisecond, "interrack: simulated-time horizon per run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *faultArg != "" {
		return runFaults(stdout, *faultArg, *k, *seed, *csv)
	}
	if *interrack {
		return runInterRack(stdout, interRackArgs{
			racks: *racks, k: *k, bridges: *bridges, shards: *shards,
			flows: *flows, tauUs: *tauUs, seed: *seed, reliable: *reliable,
			mixes: *mixes, horizon: *horizon, csv: *csv,
		})
	}
	if !*fig10 && !*fig12 && !*fig17 {
		*fig10, *fig12, *fig17 = true, true, true
	}

	s := experiments.TestScale()
	s.K, s.Dims, s.Flows, s.Seed = *k, *dims, *flows, *seed
	s.Reliable = *reliable
	s.Parallel = *parallel
	tau := simtime.FromSeconds(*tauUs * 1e-6)
	fmt.Fprintf(stdout, "topology: %d-ary %d-cube (%d nodes), %d flows, tau=%v\n\n",
		s.K, s.Dims, s.Torus().Nodes(), s.Flows, tau)

	if *fig10 {
		res := experiments.Fig10and11(s, tau)
		render(stdout, res.ShortFCTTable(), *csv)
		render(stdout, res.LongThroughputTable(), *csv)
		for _, run := range res.Runs {
			fmt.Fprintf(stdout, "%-5s completed %d/%d flows, drops=%d, events=%d, simulated %v\n",
				run.Transport, run.Results.Completed,
				run.Results.Completed+run.Results.Incomplete,
				run.Results.Drops, run.Results.Events, run.Results.EndTime)
		}
		fmt.Fprintln(stdout)
	}

	if *fig12 {
		taus := []simtime.Time{tau, 2 * tau, 10 * tau, 100 * tau}
		res := experiments.Fig12to14(s, taus)
		render(stdout, res.Fig12Table(), *csv)
		render(stdout, res.Fig13Table(), *csv)
		render(stdout, res.Fig14Table(), *csv)
	}

	if *fig17 {
		res := experiments.Fig17(s, tau, []float64{0, 0.01, 0.05, 0.10, 0.20})
		render(stdout, res.Table(), *csv)
	}
	return nil
}

// runFaults replays a fault schedule on the packet-level simulator (the
// deterministic half of the sim/emu fault cross-validation; r2c2-emu
// -faults runs both sides).
func runFaults(stdout io.Writer, arg string, k int, seed int64, csv bool) error {
	cfg := experiments.DefaultFaultSweep()
	cfg.K, cfg.Seed = k, seed
	g, err := topology.NewTorus(cfg.K, 2)
	if err != nil {
		return err
	}
	horizon := cfg.MeanInterval * time.Duration(cfg.Flows)
	sched, err := experiments.ScheduleArg(g, arg, horizon)
	if err != nil {
		return err
	}
	cfg.Schedule = sched
	fmt.Fprintf(stdout, "fault sweep: %dx%d 2D torus, %d x %d-byte flows, schedule %s\n\n",
		cfg.K, cfg.K, cfg.Flows, cfg.FlowBytes, sched)
	st, err := experiments.FaultSweepSim(cfg)
	if err != nil {
		return err
	}
	render(stdout, st.SimTable(sched), csv)
	return nil
}

type interRackArgs struct {
	racks, k, bridges, shards, flows int
	tauUs                            float64
	seed                             int64
	reliable                         bool
	mixes                            string
	horizon                          time.Duration
	csv                              bool
}

// runInterRack drives the intra- vs inter-rack traffic-mix sweep on the
// sharded engine (DESIGN.md §14) and prints the mix table plus the
// per-shard utilisation table — the CI shards-smoke artifact.
func runInterRack(stdout io.Writer, a interRackArgs) error {
	cfg := experiments.DefaultInterRack()
	cfg.Racks, cfg.K, cfg.Bridges = a.racks, a.k, a.bridges
	cfg.Flows, cfg.Seed, cfg.Reliable = a.flows, a.seed, a.reliable
	cfg.Tau = simtime.FromSeconds(a.tauUs * 1e-6)
	cfg.Horizon = simtime.FromSeconds(a.horizon.Seconds())
	cfg.Shards = a.shards
	if cfg.Shards == 0 {
		cfg.Shards = runtime.NumCPU()
		if cfg.Shards < 2 {
			cfg.Shards = 2 // stay on the sharded engine even on one CPU
		}
	}
	cfg.Mixes = cfg.Mixes[:0]
	for _, f := range strings.Split(a.mixes, ",") {
		mix, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || mix < 0 || mix > 1 {
			return fmt.Errorf("-mixes: bad fraction %q", f)
		}
		cfg.Mixes = append(cfg.Mixes, mix)
	}
	fmt.Fprintf(stdout, "interrack sweep: %v, horizon=%v\n\n", cfg, a.horizon)
	res := experiments.InterRack(cfg)
	render(stdout, res.MixTable(), a.csv)
	render(stdout, res.ShardUtilTable(), a.csv)
	return nil
}

// render prints a result table as aligned text or CSV.
func render(w io.Writer, t *experiments.Table, csv bool) {
	if csv {
		fmt.Fprint(w, "# ", t.Title, "\n", t.CSV())
		return
	}
	fmt.Fprintln(w, t)
}
