package experiments

import (
	"strings"
	"testing"
	"time"

	"r2c2/internal/faults"
	"r2c2/internal/topology"
)

func faultSweepTestConfig(t *testing.T) FaultSweepConfig {
	t.Helper()
	cfg := FaultSweepConfig{
		K:            4,
		LinkMbps:     200,
		Flows:        40,
		FlowBytes:    256 << 10,
		MeanInterval: 4 * time.Millisecond,
		Seed:         7,
	}
	g, err := topology.NewTorus(cfg.K, 2)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := faults.Generate(g, faults.GenConfig{
		Seed:    9,
		Horizon: cfg.MeanInterval * time.Duration(cfg.Flows),
		Detect:  8 * time.Millisecond, // wall-clock safe (see ScheduleArg)
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Schedule = sched
	return cfg
}

// The simulator half of the sweep is deterministic: the same config must
// produce byte-identical output (the CI artifact depends on this).
func TestFaultSweepSimDeterministic(t *testing.T) {
	cfg := faultSweepTestConfig(t)
	first, err := FaultSweepSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := FaultSweepSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := first.SimTable(cfg.Schedule).CSV(), second.SimTable(cfg.Schedule).CSV()
	if a != b {
		t.Fatalf("two identical runs diverged:\n%s\nvs\n%s", a, b)
	}
	if first.Completed == 0 {
		t.Fatal("no flow survived the schedule")
	}
	if first.Abandoned == 0 {
		t.Fatal("schedule crashed a node but no flow touched it — workload too sparse")
	}
	if want := uint64(cfg.Schedule.Waves()); first.Reroutes != want {
		t.Fatalf("reroutes = %d, want %d", first.Reroutes, want)
	}
}

// Full cross-validation at reduced scale: both backends replay the same
// schedule; completed-flow counts must agree within the documented
// tolerance and both must rebuild the fabric exactly Waves() times.
func TestFaultSweepCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock emulation")
	}
	cfg := faultSweepTestConfig(t)
	res, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Sim.Completed + res.Sim.Abandoned + res.Sim.Incomplete; got != cfg.Flows {
		t.Fatalf("sim classified %d of %d flows", got, cfg.Flows)
	}
	if got := res.Emu.Completed + res.Emu.Abandoned + res.Emu.Incomplete; got != cfg.Flows {
		t.Fatalf("emu classified %d of %d flows", got, cfg.Flows)
	}
	if dw := int64(res.Emu.Reroutes) - int64(res.Waves); dw < -1 || dw > 1 {
		t.Fatalf("emu reroutes = %d, want %d +-1", res.Emu.Reroutes, res.Waves)
	}
	if raceEnabled {
		t.Skip("wall-clock emulator timing is distorted by the race detector")
	}
	if !res.Agree(0.2, 2) {
		t.Errorf("backends disagree beyond tolerance:\n%s", res.Table())
	}
}

func TestScheduleArg(t *testing.T) {
	g, err := topology.NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := ScheduleArg(g, "gen:3", 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Len() == 0 {
		t.Fatal("gen: produced an empty schedule")
	}
	gen2, err := ScheduleArg(g, "gen:3", 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if gen.String() != gen2.String() {
		t.Fatal("gen: same seed produced different schedules")
	}
	dsl, err := ScheduleArg(g, "down@10ms:0-1/2ms", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if dsl.Len() != 1 || dsl.Events[0].Kind != faults.LinkDown {
		t.Fatalf("DSL parse: %v", dsl)
	}
	for _, bad := range []string{"gen:x", "down@10ms:0-99/2ms", "nonsense"} {
		if _, err := ScheduleArg(g, bad, time.Second); err == nil {
			t.Errorf("ScheduleArg(%q) accepted", bad)
		}
	}
	if !strings.Contains(dsl.String(), "down@10ms:0-1/2ms") {
		t.Fatalf("round-trip lost the event: %q", dsl.String())
	}
}
