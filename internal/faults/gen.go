package faults

import (
	"fmt"
	"math/rand"
	"time"

	"r2c2/internal/topology"
)

// GenConfig parameterises Generate.
type GenConfig struct {
	Seed int64
	// Horizon is the injection window: every fault lands inside it.
	Horizon time.Duration
	// Flaps is the number of link down+repair pairs (distinct cables).
	Flaps int
	// DownFor is how long a flapped cable stays down.
	DownFor time.Duration
	// Detect is the detection delay applied to every generated event.
	Detect time.Duration
	// Crash adds one node crash.
	Crash bool
	// DropLinks cables get a DropProb random-drop probability from t=0.
	DropLinks int
	DropProb  float64
}

// defaults fills the zero values with a small-but-adverse schedule shape.
func (c *GenConfig) defaults() {
	if c.Horizon == 0 {
		c.Horizon = 100 * time.Millisecond
	}
	if c.Flaps == 0 && !c.Crash && c.DropLinks == 0 {
		c.Flaps = 2
		c.Crash = true
	}
	if c.DownFor == 0 {
		c.DownFor = c.Horizon / 4
	}
	if c.Detect == 0 {
		c.Detect = c.Horizon / 50
	}
	if c.DropLinks > 0 && c.DropProb == 0 {
		c.DropProb = 0.01
	}
}

// Generate builds a random fault schedule over g from a seeded RNG. The
// result is deterministic in (g, cfg) and always Validate-clean: flapped
// cables are chosen so that the union of every flapped cable plus the
// crashed node keeps the rack connected, which (connectivity being
// monotone in the failed set) makes every interleaving of the flaps safe.
func Generate(g *topology.Graph, cfg GenConfig) (Schedule, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sched Schedule

	var dead topology.NodeID = -1
	deadSet := map[topology.NodeID]bool{}
	if cfg.Crash {
		dead = topology.NodeID(rng.Intn(g.Nodes()))
		deadSet[dead] = true
		at := cfg.Horizon/4 + time.Duration(rng.Int63n(int64(cfg.Horizon/2)))
		sched.Events = append(sched.Events, Event{
			At: at, Kind: NodeDown, Node: dead, Detect: cfg.Detect,
		})
	}

	// Candidate cables: one canonical direction per physical pair, not
	// incident to the crashed node (its ports die with it; repairing a
	// dead node's cable is meaningless and both backends refuse it).
	type cable struct{ a, b topology.NodeID }
	var cables []cable
	seen := map[cable]bool{}
	for lid := 0; lid < g.NumLinks(); lid++ {
		l := g.Link(topology.LinkID(lid))
		c := cable{l.From, l.To}
		if c.a > c.b {
			c.a, c.b = c.b, c.a
		}
		if seen[c] || c.a == dead || c.b == dead {
			continue
		}
		seen[c] = true
		cables = append(cables, c)
	}
	rng.Shuffle(len(cables), func(i, j int) { cables[i], cables[j] = cables[j], cables[i] })

	// Greedily keep cables whose removal — together with everything
	// already picked and the crashed node — leaves the rack connected.
	union := map[topology.LinkID]bool{}
	picked := 0
	for _, c := range cables {
		if picked >= cfg.Flaps {
			break
		}
		ab, _ := g.LinkBetween(c.a, c.b)
		ba, _ := g.LinkBetween(c.b, c.a)
		union[ab], union[ba] = true, true
		if _, _, err := g.WithoutLinksAndNodes(union, deadSet); err != nil {
			delete(union, ab)
			delete(union, ba)
			continue
		}
		picked++
		at := cfg.Horizon/10 + time.Duration(rng.Int63n(int64(cfg.Horizon*6/10)))
		sched.Events = append(sched.Events,
			Event{At: at, Kind: LinkDown, A: c.a, B: c.b, Detect: cfg.Detect},
			Event{At: at + cfg.DownFor, Kind: LinkRepair, A: c.a, B: c.b, Detect: cfg.Detect},
		)
	}
	if picked < cfg.Flaps {
		return Schedule{}, fmt.Errorf("faults: only %d of %d requested flaps fit without partitioning the rack", picked, cfg.Flaps)
	}

	// Lossy cables from t=0 (may overlap flapped cables; a downed link
	// drops everything anyway).
	for i := 0; i < cfg.DropLinks && i < len(cables); i++ {
		c := cables[rng.Intn(len(cables))]
		sched.Events = append(sched.Events, Event{
			At: 0, Kind: LinkDrop, A: c.a, B: c.b, DropProb: cfg.DropProb,
		})
	}

	sched.Events = sched.Sorted()
	if err := sched.Validate(g); err != nil {
		return Schedule{}, fmt.Errorf("faults: generated schedule invalid (bug): %w", err)
	}
	return sched, nil
}
