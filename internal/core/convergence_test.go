package core

import (
	"math/rand"
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

// Eventual view convergence: any two nodes that receive the same SET of
// broadcasts — in arbitrary per-node order, with arbitrary duplication of
// start and finish events — end with identical views and hashes, provided
// per-flow event order (start before finish) is respected. This is the
// property that makes "all nodes compute the same rates" sound despite
// independent broadcast trees.
func TestViewConvergenceUnderReordering(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		// Build a random flow history: starts, optional updates, finishes.
		type ev struct {
			b    *wire.Broadcast
			flow wire.FlowID
			kind wire.EventKind
		}
		var perFlow [][]ev
		nFlows := 1 + rng.Intn(12)
		for i := 0; i < nFlows; i++ {
			info := FlowInfo{
				ID:         wire.MakeFlowID(uint16(rng.Intn(16)), uint16(trial*100+i)),
				Src:        topology.NodeID(rng.Intn(16)),
				Dst:        topology.NodeID(rng.Intn(16)),
				Weight:     uint8(1 + rng.Intn(3)),
				DemandKbps: UnlimitedDemand,
				Protocol:   routing.RPS,
			}
			seq := []ev{{info.StartBroadcast(0), info.ID, wire.EventFlowStart}}
			if rng.Intn(2) == 0 {
				up := info
				up.DemandKbps = uint32(rng.Intn(1e6))
				seq = append(seq, ev{up.DemandBroadcast(0), info.ID, wire.EventDemandUpdate})
			}
			if rng.Intn(3) > 0 { // some flows finish, some stay live
				seq = append(seq, ev{info.FinishBroadcast(0), info.ID, wire.EventFlowFinish})
			}
			perFlow = append(perFlow, seq)
		}
		// Two nodes receive interleavings that preserve per-flow order but
		// interleave flows differently and duplicate some events.
		deliver := func(v *View, seed int64) {
			r := rand.New(rand.NewSource(seed))
			idx := make([]int, len(perFlow))
			for {
				remaining := 0
				for f := range perFlow {
					remaining += len(perFlow[f]) - idx[f]
				}
				if remaining == 0 {
					return
				}
				f := r.Intn(len(perFlow))
				if idx[f] >= len(perFlow[f]) {
					continue
				}
				e := perFlow[f][idx[f]]
				if err := v.Apply(e.b); err != nil {
					t.Fatal(err)
				}
				if r.Intn(4) == 0 { // duplicate delivery (retransmission)
					_ = v.Apply(e.b)
				}
				idx[f]++
			}
		}
		a, b := NewView(), NewView()
		deliver(a, int64(trial))
		deliver(b, int64(trial)+7777)
		if a.Hash() != b.Hash() {
			t.Fatalf("trial %d: views diverged: %d vs %d flows", trial, a.Len(), b.Len())
		}
		fa, fb := a.Flows(), b.Flows()
		if len(fa) != len(fb) {
			t.Fatalf("trial %d: %d vs %d flows", trial, len(fa), len(fb))
		}
		for i := range fa {
			if fa[i] != fb[i] {
				t.Fatalf("trial %d: flow %d differs: %+v vs %+v", trial, i, fa[i], fb[i])
			}
		}
	}
}
