package emu

import (
	"math"
	"testing"
	"time"

	"r2c2/internal/routing"
	"r2c2/internal/topology"
)

func newRack(t *testing.T, cfg Config) *Rack {
	t.Helper()
	if cfg.Graph == nil {
		g, err := topology.NewTorus(4, 2)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Graph = g
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	t.Cleanup(r.Stop)
	return r
}

func TestEmuSingleFlowCompletes(t *testing.T) {
	r := newRack(t, Config{LinkMbps: 200, Recompute: time.Millisecond, Protocol: routing.RPS})
	f, err := r.StartFlow(0, 5, 256<<10, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if f.Throughput() <= 0 || f.FCT() <= 0 {
		t.Fatalf("throughput=%v fct=%v", f.Throughput(), f.FCT())
	}
	// A lone RPS flow should achieve a solid fraction of the headroom-
	// adjusted link rate (wall-clock jitter allows slack).
	if f.Throughput() < 0.4*200e6 {
		t.Fatalf("throughput = %.3g, want > 80 Mbps", f.Throughput())
	}
}

func TestEmuGlobalVisibilityAndCleanup(t *testing.T) {
	r := newRack(t, Config{LinkMbps: 200, Protocol: routing.RPS})
	f, err := r.StartFlow(0, 5, 2<<20, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Broadcasts settle within milliseconds of wall time.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for n := 0; n < r.cfg.Graph.Nodes(); n++ {
			if r.ViewLen(topology.NodeID(n)) != 1 {
				all = false
				break
			}
		}
		if all {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for n := 0; n < r.cfg.Graph.Nodes(); n++ {
		if got := r.ViewLen(topology.NodeID(n)); got != 1 {
			t.Fatalf("node %d sees %d flows while flow active", n, got)
		}
	}
	if err := f.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	// After the finish broadcast, views drain.
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		empty := true
		for n := 0; n < r.cfg.Graph.Nodes(); n++ {
			if r.ViewLen(topology.NodeID(n)) != 0 {
				empty = false
				break
			}
		}
		if empty {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("views not drained after flow finish")
}

func TestEmuFairness(t *testing.T) {
	r := newRack(t, Config{LinkMbps: 200, Recompute: time.Millisecond, Protocol: routing.RPS})
	a, err := r.StartFlow(0, 5, 1<<20, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.StartFlow(0, 5, 1<<20, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := b.Wait(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	ta, tb := a.Throughput(), b.Throughput()
	if math.Abs(ta-tb)/math.Max(ta, tb) > 0.35 {
		t.Fatalf("unfair emulated throughputs: %.3g vs %.3g", ta, tb)
	}
}

func TestEmuWeightedAllocation(t *testing.T) {
	r := newRack(t, Config{LinkMbps: 200, Recompute: time.Millisecond, Protocol: routing.DOR})
	heavy, err := r.StartFlow(0, 2, 3<<20, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	light, err := r.StartFlow(0, 2, 1<<20, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := heavy.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := light.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	ratio := heavy.Throughput() / light.Throughput()
	if ratio < 1.8 || ratio > 5 {
		t.Fatalf("weight-3:1 throughput ratio = %.2f, want ~3", ratio)
	}
}

func TestEmuValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	r := newRack(t, Config{})
	if _, err := r.StartFlow(1, 1, 100, 1, 0); err == nil {
		t.Error("src==dst accepted")
	}
	if _, err := r.StartFlow(0, 1, 0, 1, 0); err == nil {
		t.Error("zero size accepted")
	}
}

func TestEmuQueueStats(t *testing.T) {
	r := newRack(t, Config{LinkMbps: 100, Protocol: routing.DOR})
	f, err := r.StartFlow(0, 1, 512<<10, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	max := r.MaxQueueBytes()
	if len(max) != r.cfg.Graph.NumLinks() {
		t.Fatalf("queue stats size %d", len(max))
	}
	any := false
	for _, m := range max {
		if m > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no port ever held a queued packet")
	}
}
