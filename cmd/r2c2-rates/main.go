// Command r2c2-rates runs the rate-computation studies: the accuracy of
// periodic batch recomputation against the ideal of recomputing at every
// flow event (Figures 15 and 16, fluid model), and the CPU cost of the
// recomputation itself (Figure 8).
//
// Usage:
//
//	r2c2-rates -fig15 -k 8 -dims 3 -flows 20000   # paper scale
//	r2c2-rates -fig8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"r2c2/internal/experiments"
	"r2c2/internal/simtime"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "r2c2-rates:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("r2c2-rates", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		fig8  = fs.Bool("fig8", false, "Figure 8: CPU overhead of rate recomputation")
		fig15 = fs.Bool("fig15", false, "Figure 15: rate error vs recomputation interval")
		fig16 = fs.Bool("fig16", false, "Figure 16: rate error vs flow inter-arrival time")
		k     = fs.Int("k", 4, "torus radix (paper: 8)")
		dims  = fs.Int("dims", 3, "torus dimensions")
		flows = fs.Int("flows", 3000, "flows per run")
		tauUs = fs.Float64("tau", 4, "mean inter-arrival time in microseconds (paper: 1)")
		ticks = fs.Int("max-ticks", 200, "recomputations timed per interval (fig8)")
		seed  = fs.Int64("seed", 1, "random seed")
		csv   = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*fig8 && !*fig15 && !*fig16 {
		*fig8, *fig15, *fig16 = true, true, true
	}

	s := experiments.TestScale()
	s.K, s.Dims, s.Flows, s.Seed = *k, *dims, *flows, *seed
	tau := simtime.FromSeconds(*tauUs * 1e-6)
	fmt.Fprintf(stdout, "topology: %d-ary %d-cube (%d nodes), %d flows, tau=%v\n\n",
		s.K, s.Dims, s.Torus().Nodes(), s.Flows, tau)

	rhos := []simtime.Time{
		100 * simtime.Microsecond,
		250 * simtime.Microsecond,
		500 * simtime.Microsecond,
		simtime.Millisecond,
		2 * simtime.Millisecond,
		5 * simtime.Millisecond,
		10 * simtime.Millisecond,
	}

	if *fig8 {
		res := experiments.Fig8(s, tau, rhos, *ticks)
		render(stdout, res.Table(), *csv)
		fmt.Fprintln(stdout, "(atom columns scale host times by the documented slowdown factor; see DESIGN.md)")
		fmt.Fprintln(stdout)
	}

	if *fig15 {
		res := experiments.Fig15(s, tau, rhos)
		render(stdout, res.Table(), *csv)
	}

	if *fig16 {
		taus := []simtime.Time{tau, 2 * tau, 5 * tau, 25 * tau, 100 * tau}
		res := experiments.Fig16(s, 500*simtime.Microsecond, taus)
		render(stdout, res.Table(), *csv)
	}
	return nil
}

// render prints a result table as aligned text or CSV.
func render(w io.Writer, t *experiments.Table, csv bool) {
	if csv {
		fmt.Fprint(w, "# ", t.Title, "\n", t.CSV())
		return
	}
	fmt.Fprintln(w, t)
}
