package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFlowID(t *testing.T) {
	f := MakeFlowID(511, 12345)
	if f.Src() != 511 || f.Seq() != 12345 {
		t.Fatalf("FlowID round trip: src=%d seq=%d", f.Src(), f.Seq())
	}
	if f.String() != "511.12345" {
		t.Errorf("String = %q", f.String())
	}
}

func TestPackRouteRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) > MaxRouteHops {
			raw = raw[:MaxRouteHops]
		}
		route := make(Route, len(raw))
		for i, b := range raw {
			route[i] = b & 0x7
		}
		packed, err := PackRoute(route)
		if err != nil {
			return false
		}
		got, err := UnpackRoute(packed, len(route))
		if err != nil {
			return false
		}
		if len(got) != len(route) {
			return false
		}
		for i := range got {
			if got[i] != route[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPackRouteMax(t *testing.T) {
	route := make(Route, MaxRouteHops)
	for i := range route {
		route[i] = uint8(i % 8)
	}
	packed, err := PackRoute(route)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnpackRoute(packed, MaxRouteHops)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != route[i] {
			t.Fatalf("hop %d: got %d want %d", i, got[i], route[i])
		}
	}
}

func TestPackRouteErrors(t *testing.T) {
	if _, err := PackRoute(make(Route, MaxRouteHops+1)); err != ErrRouteTooLong {
		t.Errorf("long route: err = %v", err)
	}
	if _, err := PackRoute(Route{8}); err != ErrBadPort {
		t.Errorf("bad port: err = %v", err)
	}
	if _, err := UnpackRoute([16]byte{}, MaxRouteHops+1); err != ErrRouteTooLong {
		t.Errorf("long unpack: err = %v", err)
	}
}

func TestDataRoundTrip(t *testing.T) {
	route, err := PackRoute(Route{1, 2, 3, 4, 5, 0, 7})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("rack-scale payload")
	h := &DataHeader{
		RLen:  7,
		RIdx:  2,
		Flow:  MakeFlowID(17, 99),
		Src:   17,
		Dst:   403,
		Seq:   0xDEADBEEF,
		PLen:  uint16(len(payload)),
		Route: route,
	}
	pkt, err := EncodeData(nil, h, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) != DataHeaderSize+len(payload) {
		t.Fatalf("packet size = %d", len(pkt))
	}
	got, gotPayload, err := DecodeData(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *h {
		t.Fatalf("header round trip:\n got %+v\nwant %+v", got, h)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatalf("payload round trip: %q", gotPayload)
	}
}

func TestDataChecksumDetectsCorruption(t *testing.T) {
	h := &DataHeader{RLen: 3, Flow: MakeFlowID(1, 2), Src: 1, Dst: 2, PLen: 4}
	pkt, err := EncodeData(nil, h, []byte{9, 9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		corrupt := make([]byte, len(pkt))
		copy(corrupt, pkt)
		i := rng.Intn(DataHeaderSize)
		if i == 2 {
			continue // ridx is hop-mutable and deliberately unprotected
		}
		flip := byte(1 << rng.Intn(8))
		corrupt[i] ^= flip
		_, _, err := DecodeData(corrupt)
		if err == nil {
			t.Fatalf("single-bit header corruption at byte %d undetected", i)
		}
	}
}

func TestDataErrors(t *testing.T) {
	if _, _, err := DecodeData(make([]byte, 4)); err != ErrShortPacket {
		t.Errorf("short: %v", err)
	}
	pkt, _ := EncodeData(nil, &DataHeader{PLen: 0}, nil)
	pkt[0] = byte(TypeAck)
	if _, _, err := DecodeData(pkt); err != ErrBadType {
		t.Errorf("bad type: %v", err)
	}
	// Truncated payload.
	pkt2, _ := EncodeData(nil, &DataHeader{PLen: 10}, make([]byte, 10))
	if _, _, err := DecodeData(pkt2[:len(pkt2)-1]); err != ErrShortPacket {
		t.Errorf("truncated payload: %v", err)
	}
	// Mismatched payload length at encode time.
	if _, err := EncodeData(nil, &DataHeader{PLen: 5}, make([]byte, 4)); err == nil {
		t.Error("plen mismatch accepted")
	}
	if _, err := EncodeData(nil, &DataHeader{RLen: MaxRouteHops + 1}, nil); err != ErrRouteTooLong {
		t.Errorf("rlen too long: %v", err)
	}
}

func TestBroadcastRoundTrip(t *testing.T) {
	f := func(src, dst, seq uint16, weight, prio, tree, rp uint8, demand uint32, kind uint8) bool {
		b := &Broadcast{
			Event:      EventKind(kind%4 + 1),
			Src:        src,
			Dst:        dst,
			FlowSeq:    seq,
			Weight:     weight,
			Priority:   prio,
			DemandKbps: demand,
			Tree:       tree,
			RP:         rp,
		}
		pkt := EncodeBroadcast(b)
		got, err := DecodeBroadcast(pkt[:])
		if err != nil {
			return false
		}
		return *got == *b && got.Flow() == MakeFlowID(src, seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBroadcastIs16Bytes(t *testing.T) {
	pkt := EncodeBroadcast(&Broadcast{Event: EventFlowStart})
	if len(pkt) != 16 || BroadcastSize != 16 {
		t.Fatalf("broadcast packet must be exactly 16 bytes (§3.2)")
	}
}

func TestBroadcastChecksumDetectsCorruption(t *testing.T) {
	pkt := EncodeBroadcast(&Broadcast{Event: EventFlowStart, Src: 3, Dst: 77, DemandKbps: 123456})
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		corrupt := pkt
		i := rng.Intn(BroadcastSize)
		corrupt[i] ^= byte(1 << rng.Intn(8))
		if _, err := DecodeBroadcast(corrupt[:]); err == nil {
			t.Fatalf("single-bit broadcast corruption at byte %d undetected", i)
		}
	}
}

func TestBroadcastErrors(t *testing.T) {
	if _, err := DecodeBroadcast(make([]byte, 8)); err != ErrShortPacket {
		t.Errorf("short: %v", err)
	}
	pkt := EncodeBroadcast(&Broadcast{Event: EventFlowStart})
	pkt[0] = byte(TypeData) << 4
	if _, err := DecodeBroadcast(pkt[:]); err != ErrBadType {
		t.Errorf("bad type: %v", err)
	}
}

func TestEventKindString(t *testing.T) {
	names := map[EventKind]string{
		EventFlowStart:    "flow-start",
		EventFlowFinish:   "flow-finish",
		EventDemandUpdate: "demand-update",
		EventRouteChange:  "route-change",
		EventKind(9):      "EventKind(9)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestRoutingUpdateRoundTrip(t *testing.T) {
	pairs := make([]RoutingPair, MaxRoutingPairs)
	rng := rand.New(rand.NewSource(3))
	for i := range pairs {
		pairs[i] = RoutingPair{Flow: FlowID(rng.Uint32()), RP: uint8(rng.Intn(4))}
	}
	pkt, err := EncodeRoutingUpdate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) > 1504 {
		t.Fatalf("300-pair update is %d bytes; paper fits 300 pairs in one 1500-byte packet", len(pkt))
	}
	got, err := DecodeRoutingUpdate(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pairs) {
		t.Fatalf("decoded %d pairs", len(got))
	}
	for i := range got {
		if got[i] != pairs[i] {
			t.Fatalf("pair %d: got %+v want %+v", i, got[i], pairs[i])
		}
	}
}

func TestRoutingUpdateCapacity(t *testing.T) {
	// §3.4: "up to 300 {flow, routing protocol} pairs can be advertised
	// using a single 1,500-byte packet".
	if MaxRoutingPairs < 299 {
		t.Fatalf("MaxRoutingPairs = %d, want ~300", MaxRoutingPairs)
	}
	if _, err := EncodeRoutingUpdate(make([]RoutingPair, MaxRoutingPairs+1)); err != ErrTooManyPairs {
		t.Errorf("overflow: %v", err)
	}
}

func TestRoutingUpdateErrors(t *testing.T) {
	pkt, err := EncodeRoutingUpdate([]RoutingPair{{Flow: 1, RP: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRoutingUpdate(pkt[:2]); err != ErrShortPacket {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, len(pkt))
	copy(bad, pkt)
	bad[0] = byte(TypeData)
	if _, err := DecodeRoutingUpdate(bad); err != ErrBadType {
		t.Errorf("bad type: %v", err)
	}
	copy(bad, pkt)
	bad[5] ^= 0x01 // single-bit flips are always caught by the mod-255 sum
	if _, err := DecodeRoutingUpdate(bad); err != ErrBadChecksum {
		t.Errorf("corruption: %v", err)
	}
	// Count larger than the packet actually carries.
	copy(bad, pkt)
	bad[2] = 200
	if _, err := DecodeRoutingUpdate(bad); err != ErrShortPacket {
		t.Errorf("overcount: %v", err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	a := &Ack{Flow: MakeFlowID(5, 6), Src: 5, Dst: 6, CumSeq: 424242}
	pkt := EncodeAck(a)
	got, err := DecodeAck(pkt[:])
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Fatalf("ack round trip: %+v vs %+v", got, a)
	}
	pkt[9] ^= 1
	if _, err := DecodeAck(pkt[:]); err != ErrBadChecksum {
		t.Errorf("corrupted ack: %v", err)
	}
	if _, err := DecodeAck(pkt[:8]); err != ErrShortPacket {
		t.Errorf("short ack: %v", err)
	}
	var wrong [16]byte
	if _, err := DecodeAck(wrong[:]); err != ErrBadType {
		t.Errorf("bad type ack: %v", err)
	}
}
