package sim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"r2c2/internal/faults"
	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/trafficgen"
)

// controlPlaneWorkload parameterises shardWorkload by rack count so the
// control-plane oracle can sweep reduction-tree shapes (a 2-rack quotient
// is a single edge; 4 racks give a depth-2 tree with an interior node).
func controlPlaneWorkload(t testing.TB, racks, shards int) RunConfig {
	g := multiRack(t, racks)
	return RunConfig{
		Graph:     g,
		Net:       NetConfig{LinkGbps: 10, PropDelay: 100 * simtime.Nanosecond},
		Transport: TransportR2C2,
		R2C2: R2C2Config{
			Headroom: 0.05, Protocol: routing.RPS,
			Recompute: 100 * simtime.Microsecond,
			Reliable:  true, RTO: 300 * simtime.Microsecond,
			Seed: 11,
		},
		Arrivals: trafficgen.FixedSize(trafficgen.PoissonConfig{
			Nodes:        g.Nodes(),
			MeanInterval: 200 * simtime.Microsecond,
			Count:        40,
			Seed:         7,
		}, 256<<10),
		MaxTime: 80 * simtime.Millisecond,
		Shards:  shards,
	}
}

// controlPlaneFaults returns a boundary-crossing fault schedule for the
// given rack count. The 4-rack schedule fails BOTH bridge cables between
// racks 0 and 1 — the quotient edge the reduction tree routes rack 1's
// summary over — so the tree keeps reducing while the physical path it
// mirrors is dark (the tree is orchestration structure, not traffic;
// reduction.go documents the independence this pins). The ring keeps the
// fabric connected through racks 3 and 2.
func controlPlaneFaults(racks int) faults.Schedule {
	if racks == 4 {
		return faults.Schedule{Events: []faults.Event{
			{At: 2 * time.Millisecond, Kind: faults.LinkDown, A: 0, B: 13, Detect: 200 * time.Microsecond},
			{At: 3 * time.Millisecond, Kind: faults.LinkDown, A: 5, B: 10, Detect: 200 * time.Microsecond},
			{At: 8 * time.Millisecond, Kind: faults.LinkRepair, A: 0, B: 13, Detect: 200 * time.Microsecond},
		}}
	}
	// 2 racks: four bridge cables join them; failing one leaves the
	// quotient edge alive while still rerouting mid-run.
	return faults.Schedule{Events: []faults.Event{
		{At: 2 * time.Millisecond, Kind: faults.LinkDown, A: 0, B: 13, Detect: 200 * time.Microsecond},
		{At: 8 * time.Millisecond, Kind: faults.LinkRepair, A: 0, B: 13, Detect: 200 * time.Microsecond},
	}}
}

// TestShardedControlPlaneOracle is the aggregated control plane's
// differential oracle: for each rack count and fault schedule, the serial
// engine, the replicated-control sharded engine, and the aggregated
// (tree-reduced) sharded engine must produce byte-identical Results at
// every worker count. The aggregated path shares one global allocator run
// per tick where the replicated path recomputes per shard, so any drift in
// the reduction, the convergence fallback, or the tick pause/resume
// sequencing shows up as a byte diff here.
func TestShardedControlPlaneOracle(t *testing.T) {
	for _, racks := range []int{2, 4} {
		for _, withFaults := range []bool{false, true} {
			name := fmt.Sprintf("racks=%d/faults=%v", racks, withFaults)
			t.Run(name, func(t *testing.T) {
				mk := func(shards int, replicated bool) RunConfig {
					cfg := controlPlaneWorkload(t, racks, shards)
					cfg.ReplicatedControlPlane = replicated
					if withFaults {
						sched := controlPlaneFaults(racks)
						if err := sched.Validate(cfg.Graph); err != nil {
							t.Fatal(err)
						}
						cfg.Faults = sched
					}
					return cfg
				}
				serial := Run(mk(1, false))
				if serial.Completed == 0 {
					t.Fatal("workload completed no flows; the comparison would be vacuous")
				}
				if withFaults && serial.FailureReroutes == 0 {
					t.Fatal("fault schedule never triggered a reroute")
				}
				want := dumpResults(serial)
				for _, workers := range []int{1, 2, 4, 8} {
					for _, replicated := range []bool{false, true} {
						mode := "aggregated"
						if replicated {
							mode = "replicated"
						}
						res := Run(mk(workers, replicated))
						res.ShardStats = nil // wall-clock fields are legitimately nondeterministic
						got := dumpResults(res)
						if !bytes.Equal(want, got) {
							t.Fatalf("workers=%d %s control plane diverged from serial (first differing line %d)\n--- serial ---\n%s\n--- sharded ---\n%s",
								workers, mode, firstDiffLine(want, got), want, got)
						}
					}
				}
			})
		}
	}
}
