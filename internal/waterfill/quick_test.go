package waterfill

import (
	"math/rand"
	"testing"
	"testing/quick"

	"r2c2/internal/routing"
	"r2c2/internal/topology"
)

// Property-based allocation checks over randomly generated sparse φ-vectors
// (not tied to any topology): capacity feasibility, demand respect and
// non-negativity must hold for arbitrary inputs, not just routed ones.
func TestQuickAllocationFeasibility(t *testing.T) {
	f := func(seed int64, nFlowsRaw, nLinksRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nFlows := int(nFlowsRaw)%40 + 1
		nLinks := int(nLinksRaw)%30 + 2
		flows := make([]Flow, nFlows)
		for i := range flows {
			nTouched := rng.Intn(nLinks) + 1
			phi := routing.Phi{}
			perm := rng.Perm(nLinks)[:nTouched]
			for _, lid := range perm {
				phi.Links = append(phi.Links, topology.LinkID(lid))
				phi.Frac = append(phi.Frac, rng.Float64()+0.01)
			}
			flows[i] = Flow{
				Phi:      phi,
				Weight:   rng.Float64()*4 + 0.1,
				Priority: uint8(rng.Intn(3)),
				Demand:   Unlimited,
			}
			if rng.Intn(3) == 0 {
				flows[i].Demand = rng.Float64() * 10
			}
		}
		cfg := Config{NumLinks: nLinks, Capacity: 1 + rng.Float64()*9, Headroom: rng.Float64() * 0.3}
		a := NewAllocator(cfg)
		rates := a.Allocate(flows)
		eff := cfg.Capacity * (1 - cfg.Headroom)
		loads := LinkLoads(nLinks, flows, rates)
		for _, l := range loads {
			if l > eff*(1+1e-6)+1e-9 {
				return false
			}
		}
		for i, r := range rates {
			if r < 0 {
				return false
			}
			if flows[i].Demand != Unlimited && r > flows[i].Demand*(1+1e-6)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Work conservation: with one priority class, no demands, and every flow
// having at least one link, some link must end up saturated (otherwise the
// water could keep rising).
func TestQuickWorkConservation(t *testing.T) {
	f := func(seed int64, nFlowsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nFlows := int(nFlowsRaw)%20 + 1
		nLinks := 10
		flows := make([]Flow, nFlows)
		for i := range flows {
			phi := routing.Phi{
				Links: []topology.LinkID{topology.LinkID(rng.Intn(nLinks))},
				Frac:  []float64{1},
			}
			flows[i] = Flow{Phi: phi, Weight: 1, Demand: Unlimited}
		}
		cfg := Config{NumLinks: nLinks, Capacity: 5}
		a := NewAllocator(cfg)
		rates := a.Allocate(flows)
		loads := LinkLoads(nLinks, flows, rates)
		for _, l := range loads {
			if l >= 5*(1-1e-9) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
