package core

import (
	"math/rand"
	"testing"

	"r2c2/internal/topology"
	"r2c2/internal/wire"
)

// TestDemandSummaryMergeMatchesView builds a random flow population, splits
// it by source node across four per-shard summaries, tree-reduces them, and
// requires the reduced summary to be indistinguishable from a converged
// View of the whole population: identical digest, identical sorted flow
// list, and bit-identical allocations from ComputeSummary vs Compute.
func TestDemandSummaryMergeMatchesView(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	view := NewView()
	shards := make([]DemandSummary, 4)
	var perSrc [16][]FlowInfo
	for i := 0; i < 60; i++ {
		src := topology.NodeID(rng.Intn(16))
		dst := topology.NodeID(rng.Intn(16))
		f := flowInfo(src, dst, uint16(i+1))
		if rng.Intn(2) == 0 {
			f.DemandKbps = uint32(rng.Intn(1_000_000) + 1)
		}
		view.AddFlow(f)
		perSrc[src] = append(perSrc[src], f)
	}
	// Each shard owns four consecutive source nodes; walking nodes ascending
	// with per-node flows in arrival (seq) order is the sorted-ID order
	// DemandSummary.Add demands, because flow IDs embed the source node.
	for src, flows := range perSrc {
		for _, f := range flows {
			shards[src/4].Add(f)
		}
	}
	global := &shards[0]
	for s := 3; s >= 1; s-- { // reverse BFS of a path-shaped tree
		global.Merge(&shards[s])
	}
	if global.Hash != view.Hash() {
		t.Fatalf("reduced digest %#x != view hash %#x", global.Hash, view.Hash())
	}
	want := view.Flows()
	if len(global.Flows) != len(want) {
		t.Fatalf("reduced summary has %d flows, view %d", len(global.Flows), len(want))
	}
	for i := range want {
		if global.Flows[i] != want[i] {
			t.Fatalf("flow %d: summary %+v != view %+v", i, global.Flows[i], want[i])
		}
	}

	rcView, rcSum := newComputer(t), newComputer(t)
	av, as := rcView.Compute(view), rcSum.ComputeSummary(global)
	if av.ViewHash != as.ViewHash {
		t.Fatalf("allocation hashes differ: %#x vs %#x", av.ViewHash, as.ViewHash)
	}
	if len(av.Rates) != len(as.Rates) {
		t.Fatalf("allocation sizes differ: %d vs %d", len(av.Rates), len(as.Rates))
	}
	for id, r := range av.Rates {
		if as.Rates[id] != r {
			t.Fatalf("flow %v: summary rate %v != view rate %v (must be bit-identical)", id, as.Rates[id], r)
		}
	}

	// The summary path must not alias its caller's buffer into the delta
	// state: mutating the summary afterwards cannot disturb a cached recompute.
	global.Reset()
	global.Add(flowInfo(0, 1, 999))
	again := rcSum.ComputeSummary(&DemandSummary{Flows: want, Hash: view.Hash()})
	if again.Rates[want[0].ID] != av.Rates[want[0].ID] {
		t.Fatal("summary mutation leaked into the computer's retained state")
	}
}

// TestDemandSummaryInvariants pins the failure modes Merge and Add refuse:
// out-of-order adds and overlapping shard flow sets are aggregation bugs,
// not recoverable inputs.
func TestDemandSummaryInvariants(t *testing.T) {
	var s DemandSummary
	s.Add(flowInfo(2, 3, 1))
	mustPanic(t, "out-of-order Add", func() { s.Add(flowInfo(1, 3, 1)) })
	var a, b DemandSummary
	a.Add(flowInfo(4, 5, 1))
	b.Add(flowInfo(4, 5, 1))
	mustPanic(t, "overlapping Merge", func() { a.Merge(&b) })

	// Merge with an empty summary is a no-op; merging into empty adopts.
	var empty, dst DemandSummary
	dst.Add(flowInfo(6, 7, 2))
	h := dst.Hash
	dst.Merge(&empty)
	if len(dst.Flows) != 1 || dst.Hash != h {
		t.Fatal("empty merge changed the summary")
	}
	empty.Merge(&dst)
	if len(empty.Flows) != 1 || empty.Hash != h {
		t.Fatal("merge into empty did not adopt the flows")
	}
	if empty.Flows[0].ID != wire.MakeFlowID(6, 2) {
		t.Fatalf("adopted flow %v", empty.Flows[0].ID)
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}
