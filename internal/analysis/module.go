package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
)

// ModuleAnalyzer is a two-phase, type-aware rule. Phase one (Collect)
// runs once per package with full type information and returns that
// package's facts — whatever the rule needs to remember: unit seeds and
// dataflow edges, lock acquisitions, channel endpoints. Phase two
// (Resolve) sees every package's facts at once and reports the findings
// that only exist module-wide: a Kbps value crossing into a bits/s
// expression two packages away, a lock cycle spanning call chains, a send
// whose only receiver lives elsewhere.
//
// The split mirrors how the findings are actually computed: facts are
// local and cheap, the judgement needs the whole program.
type ModuleAnalyzer interface {
	// Name is the rule identifier used in findings and //lint:ignore.
	Name() string
	// Doc is a one-line description of the rule.
	Doc() string
	// Applies reports whether Collect runs on a package path.
	Applies(pkgPath string) bool
	// Collect gathers one package's facts. A nil return is allowed and
	// simply contributes nothing to Resolve.
	Collect(pass *TypedPass) any
	// Resolve combines every package's facts into findings.
	Resolve(facts []PackageFacts) []Diagnostic
}

// PackageFacts pairs one package with what a ModuleAnalyzer collected
// from it.
type PackageFacts struct {
	Path  string
	Facts any
}

// DefaultModule returns the R2C2 module-wide rule set (run alongside the
// syntactic rules of Default by RunAll).
func DefaultModule() []ModuleAnalyzer {
	return []ModuleAnalyzer{
		// Kbps wire fields, bits/s water-filling and byte-denominated flow
		// sizes meet in almost every package; a silent unit crossing is a
		// 1000x result error.
		NewUnitTaint(),
		// The emulator's mutexes stand in for the paper's RDMA links;
		// a lock-order inversion is a rack-wide deadlock.
		NewLockOrder(),
		// A send on a channel with no live receiver wedges a goroutine
		// forever; Stop() then never returns.
		NewChanBlock(),
		// The zero-alloc roadmap item is only landable if the annotated
		// hot paths stay allocation-free between perf PRs.
		NewAllocHotpath(),
		// The sharded engine (ROADMAP) preserves byte-identical output
		// only if no observable effect is ordered by Go's randomised map
		// iteration. Scoped to the deterministic packages plus emu (the
		// sim/emu parity tests compare aggregate behaviour across runs).
		NewDetMapIter("internal/sim", "internal/core", "internal/waterfill",
			"internal/routing", "internal/topology", "internal/experiments", "internal/emu"),
		// Annotated engine/network/per-node state must stay reachable only
		// from its owning goroutine — the invariant the sharded engine
		// will rely on instead of locks. Module-wide: a type owned in
		// internal/sim is protected in internal/experiments too.
		NewShardOwnership(),
		// A plain write racing an atomic read is still a data race; mixing
		// the two styles on one field defeats what the atomic sites bought.
		NewAtomicPlainMix(),
	}
}

// runModule applies the module analyzers to a loaded module and returns
// the raw (unsuppressed) findings.
func runModule(mod *Module, analyzers []ModuleAnalyzer) []Diagnostic {
	var all []Diagnostic
	for _, a := range analyzers {
		var facts []PackageFacts
		for _, pass := range mod.Passes {
			if !a.Applies(pass.Path) {
				continue
			}
			if f := a.Collect(pass); f != nil {
				facts = append(facts, PackageFacts{Path: pass.Path, Facts: f})
			}
		}
		all = append(all, a.Resolve(facts)...)
	}
	return all
}

// RunAll is the full lint entry point: the per-package syntactic rules
// (test files included), the module-wide type-aware rules (non-test
// files), //lint:ignore filtering across both, and validation of every
// directive's rule names against the combined rule set — a directive
// naming an unknown rule is itself a finding, never a silent suppression.
func RunAll(root string, syntactic []Analyzer, module []ModuleAnalyzer) ([]Diagnostic, error) {
	return RunAllKnown(root, syntactic, module, knownRules(syntactic, module))
}

// RunAllKnown is RunAll with an explicit known-rule set for directive
// validation. A caller running a filtered subset of rules (r2c2-lint
// -rules alloc-hotpath) must still validate //lint:ignore directives
// against the full rule set, or every directive naming an unselected rule
// would misreport as unknown.
func RunAllKnown(root string, syntactic []Analyzer, module []ModuleAnalyzer, known map[string]bool) ([]Diagnostic, error) {
	diags, ignores, err := runSyntactic(root, syntactic, known)
	if err != nil {
		return nil, err
	}
	mod, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	for _, d := range runModule(mod, module) {
		if !ignores.covers(d) {
			diags = append(diags, d)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// KnownRules builds the set of rule names a //lint:ignore directive may
// legally address for the given rule sets.
func KnownRules(syntactic []Analyzer, module []ModuleAnalyzer) map[string]bool {
	return knownRules(syntactic, module)
}

// knownRules builds the set of rule names a //lint:ignore directive may
// legally address.
func knownRules(syntactic []Analyzer, module []ModuleAnalyzer) map[string]bool {
	known := map[string]bool{"*": true, "lint-directive": true}
	for _, a := range syntactic {
		known[a.Name()] = true
	}
	for _, a := range module {
		known[a.Name()] = true
	}
	return known
}

// CheckSourceModule type-checks a set of in-memory packages (import path
// -> filename -> content, type-checked in dependency order) and applies
// the module analyzers. This is the unit-test entry point for two-phase
// rules; //lint:ignore filtering matches RunAll's.
func CheckSourceModule(pkgs map[string]map[string]string, analyzers []ModuleAnalyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	imp := &moduleImporter{
		pkgs: map[string]*types.Package{},
		std:  importer.ForCompiler(fset, "source", nil),
	}
	conf := types.Config{Importer: imp}

	parsed := map[string][]*ast.File{}
	imports := map[string][]string{}
	paths := make([]string, 0, len(pkgs))
	for path, files := range pkgs {
		paths = append(paths, path)
		names := make([]string, 0, len(files))
		for name := range files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(fset, name, files[name], parser.ParseComments)
			if err != nil {
				return nil, err
			}
			parsed[path] = append(parsed[path], f)
			for _, spec := range f.Imports {
				p := spec.Path.Value[1 : len(spec.Path.Value)-1]
				if _, ok := pkgs[p]; ok {
					imports[path] = append(imports[path], p)
				}
			}
		}
	}
	sort.Strings(paths)
	var order []string
	state := map[string]int{}
	var visit func(string)
	visit = func(p string) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		deps := append([]string(nil), imports[p]...)
		sort.Strings(deps)
		for _, d := range deps {
			visit(d)
		}
		order = append(order, p)
	}
	for _, p := range paths {
		visit(p)
	}

	mod := &Module{Fset: fset}
	ignores := ignoreSet{}
	known := knownRules(nil, analyzers)
	var diags []Diagnostic
	for _, path := range order {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		pkg, err := conf.Check(path, fset, parsed[path], info)
		if err != nil {
			return nil, err
		}
		imp.pkgs[path] = pkg
		pass := &TypedPass{
			Pass: Pass{Fset: fset, Path: path, Files: parsed[path]},
			Pkg:  pkg,
			Info: info,
		}
		ig, igDiags := collectIgnores(&pass.Pass, known)
		diags = append(diags, igDiags...)
		for file, lines := range ig {
			for line, rules := range lines {
				for rule := range rules {
					ignores.add(file, line, rule)
				}
			}
		}
		mod.Passes = append(mod.Passes, pass)
	}
	for _, d := range runModule(mod, analyzers) {
		if !ignores.covers(d) {
			diags = append(diags, d)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// sortDiagnostics orders findings by file, line, rule, then column and
// message. The full tie-break matters: runSyntactic walks a map of
// directories and Resolve phases iterate maps, so without a total order
// two runs over the same tree could interleave equal-(file,line,rule)
// findings differently and break byte-identical output.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		if diags[i].Rule != diags[j].Rule {
			return diags[i].Rule < diags[j].Rule
		}
		if diags[i].Pos.Column != diags[j].Pos.Column {
			return diags[i].Pos.Column < diags[j].Pos.Column
		}
		return diags[i].Message < diags[j].Message
	})
}
