package topology

import "testing"

// TestReductionTreeRing derives the reduction tree of a four-rack ring and
// pins the deterministic BFS shape: rack 0 is the root, each rack's parent
// is its smallest neighbour at the previous depth, and the reverse BFS
// order visits every child before its parent (the bottom-up merge
// schedule).
func TestReductionTreeRing(t *testing.T) {
	racks := []*Graph{mustTorus(t, 3, 2), mustTorus(t, 3, 2), mustTorus(t, 3, 2), mustTorus(t, 3, 2)}
	g, err := ConnectRacks(racks, []Bridge{
		{RackA: 0, RackB: 1, NodeA: 0, NodeB: 0},
		{RackA: 1, RackB: 2, NodeA: 1, NodeB: 1},
		{RackA: 2, RackB: 3, NodeA: 2, NodeB: 2},
		{RackA: 3, RackB: 0, NodeA: 3, NodeB: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartition(g)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NewReductionTree(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root() != 0 {
		t.Fatalf("Root() = %d, want 0", tree.Root())
	}
	wantParent := []int{-1, 0, 1, 0}
	for r, want := range wantParent {
		if got := tree.Parent(r); got != want {
			t.Fatalf("Parent(%d) = %d, want %d", r, got, want)
		}
	}
	if tree.Depth() != 2 {
		t.Fatalf("Depth() = %d, want 2", tree.Depth())
	}
	order := tree.Order()
	if len(order) != 4 {
		t.Fatalf("Order() has %d racks, want 4", len(order))
	}
	pos := make(map[int]int, len(order))
	for i, r := range order {
		pos[r] = i
	}
	for r := 0; r < p.Shards(); r++ {
		if par := tree.Parent(r); par >= 0 && pos[par] >= pos[r] {
			t.Fatalf("rack %d appears before its parent %d in BFS order %v", r, par, order)
		}
		for _, c := range tree.Children(r) {
			if tree.Parent(c) != r {
				t.Fatalf("Children(%d) lists %d but Parent(%d) = %d", r, c, c, tree.Parent(c))
			}
		}
	}
}

// TestReductionTreeClos checks the star shape a folded-Clos partition
// produces: the spine round-robin spreads leaf-spine links so every rack
// pair with a shared spine is adjacent, collapsing the tree to depth 1
// with rack 0 parenting everyone.
func TestReductionTreeClos(t *testing.T) {
	g, err := NewFoldedClos(4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartition(g)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NewReductionTree(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 1 {
		t.Fatalf("Depth() = %d, want 1 (spines make every rack adjacent to rack 0)", tree.Depth())
	}
	for r := 1; r < p.Shards(); r++ {
		if tree.Parent(r) != 0 {
			t.Fatalf("Parent(%d) = %d, want 0", r, tree.Parent(r))
		}
	}
}
