package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// shardOwnership enforces the goroutine-ownership model the sharded
// engine (ROADMAP) depends on: a type annotated `//r2c2:shardowned` —
// the Engine, the Network, per-node state — belongs to the goroutine
// that created it, and its pointers must never become reachable from
// another goroutine except through a declared crossing point.
//
// Three leaks are flagged, module-wide:
//
//   - a `go` statement whose function literal captures, or whose call
//     receives, a shard-owned value: the new goroutine holds owned state
//     its shard still mutates;
//   - a channel send whose payload contains a shard-owned type: the
//     receiver is by construction another goroutine;
//   - a call passing a shard-owned pointer to a `//r2c2:boundary`
//     function — a function declared to execute on behalf of another
//     goroutine (an epoch-queue push, a cross-shard hand-off), which may
//     carry plain data but never ownership. A boundary function whose
//     own signature declares a pointer-to-owned parameter is flagged at
//     the declaration, callers or not.
//
// Ownership is structural to one level of containers: *T, []T, [N]T,
// map[_]T, chan T of an owned T all count as carrying owned state
// (an owned type buried inside another struct's field does not — that
// struct should itself be annotated). Collect records the annotations
// and the candidate sites; Resolve joins them across packages, so a type
// owned in internal/sim is protected in internal/experiments too.
type shardOwnership struct{ pkgScope }

// NewShardOwnership builds the ownership rule scoped to the given package
// path suffixes (empty = all packages).
func NewShardOwnership(pkgs ...string) ModuleAnalyzer { return &shardOwnership{pkgScope{pkgs}} }

func (*shardOwnership) Name() string { return "shard-ownership" }
func (*shardOwnership) Doc() string {
	return "flag //r2c2:shardowned state escaping its goroutine: go-statement captures, channel sends, leaks into //r2c2:boundary funcs"
}

// soSite is one candidate leak, resolved against the owned set in
// phase two.
type soSite struct {
	pos    token.Position
	kind   string   // "go-capture", "go-arg", "chan-send", "call-arg"
	types  []string // named-type full names carried by the site
	disp   []string // matching display strings, same order
	callee string   // "call-arg": callee FullName
}

// soFacts is one package's contribution.
type soFacts struct {
	owned    []string // full names of //r2c2:shardowned types
	boundary []string // full names of //r2c2:boundary funcs
	// boundaryParams: declared pointer-to-param types per boundary func,
	// checked against the owned set at Resolve.
	boundaryParams map[string][]soParam
	sites          []soSite
	misplaced      []Diagnostic
}

// soParam is one boundary-function parameter's named type.
type soParam struct {
	pos  token.Position
	name string // named-type full name (deref'd)
	disp string
}

func (a *shardOwnership) Collect(pass *TypedPass) any {
	facts := &soFacts{boundaryParams: map[string][]soParam{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				a.collectTypeDecl(pass, d, facts)
			case *ast.FuncDecl:
				a.collectFuncDecl(pass, d, facts)
			}
		}
	}
	if len(facts.owned) == 0 && len(facts.boundary) == 0 &&
		len(facts.sites) == 0 && len(facts.misplaced) == 0 {
		return nil
	}
	return facts
}

// collectTypeDecl records //r2c2:shardowned annotations on type specs and
// reports //r2c2:boundary misplaced onto types.
func (a *shardOwnership) collectTypeDecl(pass *TypedPass, d *ast.GenDecl, facts *soFacts) {
	if d.Tok != token.TYPE {
		if hasDirective(d.Doc, KindShardOwned) || hasDirective(d.Doc, KindBoundary) {
			facts.misplaced = append(facts.misplaced, pass.Diag(a.Name(), d,
				"//r2c2:%s on a %s declaration: it marks types and functions", directiveOn(d.Doc), d.Tok))
		}
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		doc := ts.Doc
		if doc == nil && len(d.Specs) == 1 {
			doc = d.Doc
		}
		if hasDirective(doc, KindBoundary) {
			facts.misplaced = append(facts.misplaced, pass.Diag(a.Name(), ts,
				"//r2c2:boundary on a type declaration: it marks functions"))
		}
		if !hasDirective(doc, KindShardOwned) {
			continue
		}
		if obj := pass.Info.Defs[ts.Name]; obj != nil {
			facts.owned = append(facts.owned, pass.Pkg.Path()+"."+obj.Name())
		}
	}
}

// collectFuncDecl records //r2c2:boundary annotations (and their
// pointer-param types), reports //r2c2:shardowned misplaced onto
// functions, and scans the body for candidate leak sites.
func (a *shardOwnership) collectFuncDecl(pass *TypedPass, fd *ast.FuncDecl, facts *soFacts) {
	if hasDirective(fd.Doc, KindShardOwned) {
		facts.misplaced = append(facts.misplaced, pass.Diag(a.Name(), fd,
			"//r2c2:shardowned on a function declaration: it marks types"))
	}
	obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	if hasDirective(fd.Doc, KindBoundary) {
		full := obj.FullName()
		facts.boundary = append(facts.boundary, full)
		sig := obj.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			if pt, ok := p.Type().Underlying().(*types.Pointer); ok {
				if name, disp := namedOf(pt.Elem()); name != "" {
					facts.boundaryParams[full] = append(facts.boundaryParams[full],
						soParam{pos: pass.Fset.Position(p.Pos()), name: name, disp: "*" + disp})
				}
			}
		}
	}
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			a.collectGo(pass, v, facts)
		case *ast.SendStmt:
			if site := siteFor(pass, v.Value, "chan-send", ""); site != nil {
				site.pos = pass.Fset.Position(v.Pos())
				facts.sites = append(facts.sites, *site)
			}
		case *ast.CallExpr:
			a.collectCall(pass, v, facts)
		}
		return true
	})
}

// collectGo records owned state entering a `go` statement: captures of a
// function literal, the arguments, and a bound method receiver.
func (a *shardOwnership) collectGo(pass *TypedPass, g *ast.GoStmt, facts *soFacts) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		for _, vr := range capturedVars(pass, lit) {
			if name, disp := namedOf(vr.Type()); name != "" {
				facts.sites = append(facts.sites, soSite{
					pos: pass.Fset.Position(g.Pos()), kind: "go-capture",
					types: []string{name}, disp: []string{disp + " (" + vr.Name() + ")"},
				})
			}
		}
	}
	args := append([]ast.Expr(nil), g.Call.Args...)
	if sel, ok := g.Call.Fun.(*ast.SelectorExpr); ok {
		args = append(args, sel.X)
	}
	for _, arg := range args {
		if site := siteFor(pass, arg, "go-arg", ""); site != nil {
			site.pos = pass.Fset.Position(g.Pos())
			facts.sites = append(facts.sites, *site)
		}
	}
}

// collectCall records named-call arguments (and method receivers) that
// carry named types — resolved against the boundary set in phase two.
func (a *shardOwnership) collectCall(pass *TypedPass, v *ast.CallExpr, facts *soFacts) {
	callee := calleeFunc(pass, v)
	if callee == nil {
		return
	}
	full := callee.Origin().FullName()
	exprs := append([]ast.Expr(nil), v.Args...)
	for _, arg := range exprs {
		if site := siteFor(pass, arg, "call-arg", full); site != nil {
			site.pos = pass.Fset.Position(v.Pos())
			facts.sites = append(facts.sites, *site)
		}
	}
}

// siteFor builds a candidate site when the expression's type carries a
// named type (one container level deep), else nil.
func siteFor(pass *TypedPass, e ast.Expr, kind, callee string) *soSite {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	names, disps := namedWithin(tv.Type)
	if len(names) == 0 {
		return nil
	}
	return &soSite{kind: kind, types: names, disp: disps, callee: callee}
}

// capturedVars lists the outer variables a function literal closes over.
func capturedVars(pass *TypedPass, lit *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var vars []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		vr, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || vr.IsField() || seen[vr] {
			return true
		}
		if vr.Pos() >= lit.Pos() && vr.Pos() < lit.End() {
			return true // declared inside the literal
		}
		if vr.Parent() == nil || vr.Parent() == pass.Pkg.Scope() || vr.Parent() == types.Universe {
			return true // package-level: shared, not captured
		}
		seen[vr] = true
		vars = append(vars, vr)
		return true
	})
	return vars
}

// namedOf returns the full and display names of a named (possibly
// pointer-wrapped) type, or "".
func namedOf(t types.Type) (full, disp string) {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name(), shortTypeName(n)
}

// namedWithin collects the named types an expression's type carries, one
// container level deep: T, *T, []T, [N]T, map[_]T, chan T.
func namedWithin(t types.Type) (names, disps []string) {
	add := func(inner types.Type, prefix string) {
		if full, disp := namedOf(inner); full != "" {
			names = append(names, full)
			disps = append(disps, prefix+disp)
		}
	}
	switch t.(type) {
	case *types.Named, *types.Pointer:
		add(t, ptrPrefix(t))
		return names, disps
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		add(u.Elem(), "[]"+ptrPrefix(u.Elem()))
	case *types.Array:
		add(u.Elem(), "[...]"+ptrPrefix(u.Elem()))
	case *types.Map:
		add(u.Elem(), "map value "+ptrPrefix(u.Elem()))
	case *types.Chan:
		add(u.Elem(), "chan "+ptrPrefix(u.Elem()))
	}
	return names, disps
}

// ptrPrefix renders the "*" of a pointer type for display.
func ptrPrefix(t types.Type) string {
	if _, ok := t.(*types.Pointer); ok {
		return "*"
	}
	return ""
}

// shortTypeName renders a named type as pkg.Name with the package path
// trimmed to its last element.
func shortTypeName(n *types.Named) string {
	path := n.Obj().Pkg().Path()
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return path + "." + n.Obj().Name()
}

// directiveOn names the first //r2c2: directive in a doc group, for
// misplacement messages.
func directiveOn(doc *ast.CommentGroup) string {
	for _, kind := range []string{KindShardOwned, KindBoundary, KindHotpath} {
		if hasDirective(doc, kind) {
			return kind
		}
	}
	return "?"
}

// OwnershipReport summarises a module's declared ownership model for the
// shard_ownership.json CI artifact: which types are shard-owned, which
// functions are declared crossing points, and the shard-ownership
// findings that survive //lint:ignore suppression.
type OwnershipReport struct {
	AnalyzerVersion int          `json:"analyzer_version"`
	OwnedTypes      []string     `json:"owned_types"`
	BoundaryFuncs   []string     `json:"boundary_funcs"`
	Findings        []Diagnostic `json:"findings"`
}

// BuildOwnershipReport loads the module under root and builds its
// OwnershipReport. known is the full rule set for directive validation;
// directive-error findings belong to the main lint run, not this report.
// All slices are sorted (and non-nil) so the encoded report is
// byte-identical across runs.
func BuildOwnershipReport(root string, known map[string]bool) (*OwnershipReport, error) {
	_, ignores, err := runSyntactic(root, nil, known)
	if err != nil {
		return nil, err
	}
	mod, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	so := &shardOwnership{}
	rep := &OwnershipReport{
		AnalyzerVersion: Version,
		OwnedTypes:      []string{},
		BoundaryFuncs:   []string{},
		Findings:        []Diagnostic{},
	}
	var pfs []PackageFacts
	for _, pass := range mod.Passes {
		f := so.Collect(pass)
		if f == nil {
			continue
		}
		sf := f.(*soFacts)
		rep.OwnedTypes = append(rep.OwnedTypes, sf.owned...)
		rep.BoundaryFuncs = append(rep.BoundaryFuncs, sf.boundary...)
		pfs = append(pfs, PackageFacts{Path: pass.Path, Facts: f})
	}
	for _, d := range so.Resolve(pfs) {
		if !ignores.covers(d) {
			rep.Findings = append(rep.Findings, d)
		}
	}
	sort.Strings(rep.OwnedTypes)
	sort.Strings(rep.BoundaryFuncs)
	sortDiagnostics(rep.Findings)
	return rep, nil
}

// Resolve joins the module-wide owned and boundary sets and reports every
// site that leaks an owned type.
func (a *shardOwnership) Resolve(facts []PackageFacts) []Diagnostic {
	owned := map[string]bool{}
	boundary := map[string]bool{}
	var diags []Diagnostic
	var sites []soSite
	var params []struct {
		fn string
		p  soParam
	}
	for _, pf := range facts {
		f := pf.Facts.(*soFacts)
		for _, t := range f.owned {
			owned[t] = true
		}
		for _, b := range f.boundary {
			boundary[b] = true
		}
		for fn, ps := range f.boundaryParams {
			for _, p := range ps {
				params = append(params, struct {
					fn string
					p  soParam
				}{fn, p})
			}
		}
		sites = append(sites, f.sites...)
		diags = append(diags, f.misplaced...)
	}

	for _, bp := range params {
		if owned[bp.p.name] {
			diags = append(diags, Diagnostic{Rule: a.Name(), Pos: bp.p.pos,
				Message: fmt.Sprintf("boundary function %s declares shard-owned parameter %s: a boundary carries data, never ownership",
					shortFuncName(bp.fn), bp.p.disp)})
		}
	}

	for _, s := range sites {
		for i, tn := range s.types {
			if !owned[tn] {
				continue
			}
			var msg string
			switch s.kind {
			case "go-capture":
				msg = fmt.Sprintf("go statement captures shard-owned %s: owned state must stay on its owning goroutine", s.disp[i])
			case "go-arg":
				msg = fmt.Sprintf("go statement receives shard-owned %s: owned state must stay on its owning goroutine", s.disp[i])
			case "chan-send":
				msg = fmt.Sprintf("channel send of shard-owned %s: the receiver is another goroutine", s.disp[i])
			case "call-arg":
				if !boundary[s.callee] {
					continue
				}
				msg = fmt.Sprintf("shard-owned %s leaks across boundary function %s", s.disp[i], shortFuncName(s.callee))
			}
			diags = append(diags, Diagnostic{Rule: a.Name(), Pos: s.pos, Message: msg})
		}
	}
	return diags
}
