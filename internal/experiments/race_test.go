//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; its 5-20x
// slowdown distorts wall-clock emulator timing.
const raceEnabled = true
