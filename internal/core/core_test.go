package core

import (
	"math"
	"math/rand"
	"testing"

	"r2c2/internal/routing"
	"r2c2/internal/simtime"
	"r2c2/internal/topology"
	"r2c2/internal/waterfill"
	"r2c2/internal/wire"
)

func flowInfo(src, dst topology.NodeID, seq uint16) FlowInfo {
	return FlowInfo{
		ID:         wire.MakeFlowID(uint16(src), seq),
		Src:        src,
		Dst:        dst,
		Weight:     1,
		DemandKbps: UnlimitedDemand,
		Protocol:   routing.RPS,
	}
}

func TestViewApplyStartFinish(t *testing.T) {
	v := NewView()
	f := flowInfo(1, 2, 7)
	if err := v.Apply(f.StartBroadcast(0)); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 1 {
		t.Fatalf("len = %d", v.Len())
	}
	got, ok := v.Get(f.ID)
	if !ok {
		t.Fatal("flow missing after start")
	}
	if got != f {
		t.Fatalf("round trip through broadcast: got %+v want %+v", got, f)
	}
	if err := v.Apply(f.FinishBroadcast(0)); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 0 {
		t.Fatal("flow still present after finish")
	}
}

func TestViewHashOrderIndependent(t *testing.T) {
	a, b := NewView(), NewView()
	f1, f2, f3 := flowInfo(1, 2, 1), flowInfo(3, 4, 2), flowInfo(5, 6, 3)
	for _, f := range []FlowInfo{f1, f2, f3} {
		a.AddFlow(f)
	}
	for _, f := range []FlowInfo{f3, f1, f2} {
		b.AddFlow(f)
	}
	if a.Hash() != b.Hash() {
		t.Fatal("hash depends on insertion order")
	}
	// Removing and re-adding restores the hash.
	h := a.Hash()
	a.RemoveFlow(f2.ID)
	if a.Hash() == h {
		t.Fatal("hash unchanged after removal")
	}
	a.AddFlow(f2)
	if a.Hash() != h {
		t.Fatal("hash not restored after re-add")
	}
	// Empty views hash equal.
	if NewView().Hash() != NewView().Hash() {
		t.Fatal("empty view hashes differ")
	}
}

func TestViewVersionBumpsOnMutation(t *testing.T) {
	v := NewView()
	f := flowInfo(0, 1, 1)
	v0 := v.Version()
	v.AddFlow(f)
	if v.Version() == v0 {
		t.Fatal("version not bumped on add")
	}
	v1 := v.Version()
	v.RemoveFlow(wire.MakeFlowID(9, 9)) // unknown: no-op
	if v.Version() != v1 {
		t.Fatal("version bumped on no-op removal")
	}
}

func TestViewDemandAndRouteUpdates(t *testing.T) {
	v := NewView()
	f := flowInfo(1, 2, 1)
	v.AddFlow(f)
	f.DemandKbps = 5000
	if err := v.Apply(f.DemandBroadcast(0)); err != nil {
		t.Fatal(err)
	}
	got, _ := v.Get(f.ID)
	if got.DemandKbps != 5000 {
		t.Fatalf("demand = %d", got.DemandKbps)
	}
	f.Protocol = routing.VLB
	if err := v.Apply(f.RouteChangeBroadcast(0)); err != nil {
		t.Fatal(err)
	}
	got, _ = v.Get(f.ID)
	if got.Protocol != routing.VLB {
		t.Fatalf("protocol = %v", got.Protocol)
	}
	// Update for an unknown flow is silently dropped (races a finish).
	unknown := flowInfo(7, 8, 9)
	if err := v.Apply(unknown.DemandBroadcast(0)); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 1 {
		t.Fatal("dropped update created a flow")
	}
}

func TestViewApplyUnknownEvent(t *testing.T) {
	v := NewView()
	b := &wire.Broadcast{Event: wire.EventKind(0xF)}
	if err := v.Apply(b); err == nil {
		t.Fatal("unknown event accepted")
	}
}

func TestViewFlowsSorted(t *testing.T) {
	v := NewView()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		v.AddFlow(flowInfo(topology.NodeID(rng.Intn(8)), topology.NodeID(8+rng.Intn(8)), uint16(rng.Intn(1000))))
	}
	flows := v.Flows()
	for i := 1; i < len(flows); i++ {
		if flows[i].ID <= flows[i-1].ID {
			t.Fatal("Flows() not sorted by ID")
		}
	}
}

func TestFlowInfoDemandBits(t *testing.T) {
	f := flowInfo(0, 1, 1)
	if f.DemandBits() != waterfill.Unlimited {
		t.Fatal("unlimited demand not mapped")
	}
	f.DemandKbps = 2000
	if f.DemandBits() != 2e6 {
		t.Fatalf("DemandBits = %v", f.DemandBits())
	}
}

func TestBroadcastWireRoundTrip(t *testing.T) {
	f := FlowInfo{
		ID:         wire.MakeFlowID(3, 99),
		Src:        3,
		Dst:        40,
		Weight:     2,
		Priority:   1,
		DemandKbps: 123456,
		Protocol:   routing.WLB,
	}
	pkt := wire.EncodeBroadcast(f.StartBroadcast(5))
	decoded, err := wire.DecodeBroadcast(pkt[:])
	if err != nil {
		t.Fatal(err)
	}
	v := NewView()
	if err := v.Apply(decoded); err != nil {
		t.Fatal(err)
	}
	got, ok := v.Get(f.ID)
	if !ok || got != f {
		t.Fatalf("wire round trip: %+v vs %+v", got, f)
	}
	if decoded.Tree != 5 {
		t.Fatalf("tree = %d", decoded.Tree)
	}
}

func newComputer(t testing.TB) *RateComputer {
	t.Helper()
	g, err := topology.NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return NewRateComputer(routing.NewTable(g), 10e9, 0.05)
}

func TestComputeSingleFlow(t *testing.T) {
	rc := newComputer(t)
	v := NewView()
	v.AddFlow(flowInfo(0, 5, 1))
	alloc := rc.Compute(v)
	r := alloc.Rate(wire.MakeFlowID(0, 1))
	// A lone RPS flow on an idle 4x4 torus: two disjoint minimal directions
	// from the source; with a 0.5/0.5 split the first-hop links bound the
	// flow at 2 × 9.5 Gbps... unless an interior link is more loaded. At
	// minimum it must beat a single link's effective capacity.
	if r < 9.5e9-1 {
		t.Fatalf("single-flow rate = %v, want >= 9.5e9", r)
	}
	if alloc.ViewHash != v.Hash() {
		t.Fatal("allocation not stamped with view hash")
	}
	if alloc.Rate(wire.MakeFlowID(9, 9)) != 0 {
		t.Fatal("unknown flow should have rate 0")
	}
}

func TestComputeFairness(t *testing.T) {
	rc := newComputer(t)
	v := NewView()
	// Two identical flows between the same endpoints must get equal rates.
	v.AddFlow(flowInfo(0, 5, 1))
	v.AddFlow(flowInfo(0, 5, 2))
	alloc := rc.Compute(v)
	r1, r2 := alloc.Rate(wire.MakeFlowID(0, 1)), alloc.Rate(wire.MakeFlowID(0, 2))
	if math.Abs(r1-r2) > 1 {
		t.Fatalf("equal flows got %v and %v", r1, r2)
	}
	if r1 <= 0 {
		t.Fatal("zero rate")
	}
}

// All nodes computing over identical views must produce identical
// allocations — the keystone of probe-free congestion control (§3.3).
func TestComputeDeterministicAcrossNodes(t *testing.T) {
	rcA, rcB := newComputer(t), newComputer(t)
	viewA, viewB := NewView(), NewView()
	rng := rand.New(rand.NewSource(5))
	var infos []FlowInfo
	for i := 0; i < 30; i++ {
		src := topology.NodeID(rng.Intn(16))
		dst := topology.NodeID(rng.Intn(16))
		if src == dst {
			continue
		}
		f := flowInfo(src, dst, uint16(i))
		f.Protocol = []routing.Protocol{routing.RPS, routing.DOR, routing.VLB, routing.WLB}[rng.Intn(4)]
		infos = append(infos, f)
	}
	for _, f := range infos {
		viewA.AddFlow(f)
	}
	for i := len(infos) - 1; i >= 0; i-- { // reversed arrival order at node B
		viewB.AddFlow(infos[i])
	}
	a, b := rcA.Compute(viewA), rcB.Compute(viewB)
	for id, ra := range a.Rates {
		if rb := b.Rates[id]; math.Abs(ra-rb) > 1e-6*math.Max(ra, 1) {
			t.Fatalf("flow %v: node A computed %v, node B %v", id, ra, rb)
		}
	}
}

func TestComputeRespectsHeadroom(t *testing.T) {
	rc := newComputer(t)
	v := NewView()
	// Saturate one link with a DOR flow between neighbours.
	f := flowInfo(0, 1, 1)
	f.Protocol = routing.DOR
	v.AddFlow(f)
	alloc := rc.Compute(v)
	if r := alloc.Rate(f.ID); math.Abs(r-9.5e9) > 1 {
		t.Fatalf("rate = %v, want 9.5e9 (5%% headroom)", r)
	}
}

func TestDemandEstimator(t *testing.T) {
	e := NewDemandEstimator(simtime.Millisecond, 1.0) // no smoothing
	// Eq (1): d = r + q/T. 1 Gbps allocated, 1 Mbit queued over 1 ms -> 2 Gbps.
	got := e.Observe(1e9, 1e6)
	if math.Abs(got-2e9) > 1 {
		t.Fatalf("demand = %v, want 2e9", got)
	}
	if e.Estimate() != got {
		t.Fatal("Estimate mismatch")
	}
	// With smoothing the estimate moves gradually.
	e2 := NewDemandEstimator(simtime.Millisecond, 0.5)
	e2.Observe(1e9, 0)
	second := e2.Observe(3e9, 0)
	if math.Abs(second-2e9) > 1 {
		t.Fatalf("smoothed = %v, want 2e9", second)
	}
}

func TestDemandEstimatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDemandEstimator(0, 0.5)
}

func TestKbpsDemand(t *testing.T) {
	if KbpsDemand(-5) != 0 {
		t.Error("negative demand")
	}
	if KbpsDemand(2e6) != 2000 {
		t.Errorf("KbpsDemand(2e6) = %d", KbpsDemand(2e6))
	}
	if KbpsDemand(1e18) != UnlimitedDemand-1 {
		t.Error("saturation failed")
	}
}

// TestComputeDeltaMatchesFull churns one view through hundreds of start /
// finish / demand-update / route-change events and cross-checks the
// delta-driven Compute against the from-scratch ComputeFull after every
// event — the control-plane-level mirror of the waterfill oracle. Calling
// ComputeFull on the same computer also proves it leaves the incremental
// state untouched.
func TestComputeDeltaMatchesFull(t *testing.T) {
	rc := newComputer(t)
	v := NewView()
	rng := rand.New(rand.NewSource(42))
	protos := []routing.Protocol{routing.RPS, routing.DOR, routing.VLB, routing.WLB}
	var ids []wire.FlowID
	seq := uint16(0)
	for ev := 0; ev < 400; ev++ {
		switch {
		case len(ids) == 0 || (len(ids) < 48 && rng.Intn(2) == 0):
			seq++
			src := topology.NodeID(rng.Intn(8))
			dst := topology.NodeID(rng.Intn(8))
			f := flowInfo(src, dst, seq) // src == dst is a host-local flow
			f.Protocol = protos[rng.Intn(len(protos))]
			f.Weight = uint8(1 + rng.Intn(4))
			f.Priority = uint8(rng.Intn(3))
			if rng.Intn(3) == 0 {
				f.DemandKbps = uint32(rng.Intn(12e6))
			}
			v.AddFlow(f)
			ids = append(ids, f.ID)
		case rng.Intn(2) == 0:
			id := ids[rng.Intn(len(ids))]
			f, _ := v.Get(id)
			if rng.Intn(2) == 0 {
				f.DemandKbps = uint32(rng.Intn(12e6))
			} else {
				f.Protocol = protos[rng.Intn(len(protos))]
			}
			v.AddFlow(f)
		default:
			i := rng.Intn(len(ids))
			v.RemoveFlow(ids[i])
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
		}
		got := rc.Compute(v)
		want := rc.ComputeFull(v)
		if len(got.Rates) != len(want.Rates) {
			t.Fatalf("event %d: %d rates vs %d", ev, len(got.Rates), len(want.Rates))
		}
		for id, w := range want.Rates {
			g := got.Rates[id]
			if math.Abs(g-w) > math.Max(1e-6*math.Max(g, w), 10) {
				t.Fatalf("event %d: flow %v: delta-driven %v, from-scratch %v", ev, id, g, w)
			}
		}
	}
	if rc.DeltaEvents == 0 {
		t.Fatal("delta path never exercised")
	}
	if rc.Rebuilds == 0 {
		t.Fatal("rebuild path never exercised")
	}
}

// An unchanged view must be answered from the hash shortcut without any
// allocator work.
func TestComputeViewHashShortcut(t *testing.T) {
	rc := newComputer(t)
	v := NewView()
	v.AddFlow(flowInfo(0, 5, 1))
	a := rc.Compute(v)
	b := rc.Compute(v)
	if a != b {
		t.Fatal("identical view should return the cached allocation")
	}
	if rc.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", rc.CacheHits)
	}
	v.AddFlow(flowInfo(0, 5, 2))
	if c := rc.Compute(v); c == a {
		t.Fatal("mutated view must recompute")
	}
}
