package faults

import (
	"reflect"
	"testing"
	"time"

	"r2c2/internal/topology"
)

func torus(t *testing.T, k, dims int) *topology.Graph {
	t.Helper()
	g, err := topology.NewTorus(k, dims)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParseDSL(t *testing.T) {
	sched, err := Parse("down@10ms:0-1/2ms; up@30ms:0-1/2ms;crash@20ms:5/2ms;drop@0s:2-3/0.01")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{At: 10 * time.Millisecond, Kind: LinkDown, A: 0, B: 1, Detect: 2 * time.Millisecond},
		{At: 30 * time.Millisecond, Kind: LinkRepair, A: 0, B: 1, Detect: 2 * time.Millisecond},
		{At: 20 * time.Millisecond, Kind: NodeDown, Node: 5, Detect: 2 * time.Millisecond},
		{At: 0, Kind: LinkDrop, A: 2, B: 3, DropProb: 0.01},
	}
	if !reflect.DeepEqual(sched.Events, want) {
		t.Fatalf("parsed %+v\nwant %+v", sched.Events, want)
	}
	// The DSL round-trips through String.
	again, err := Parse(sched.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Events, sched.Events) {
		t.Fatalf("round trip changed the schedule: %v vs %v", again, sched)
	}
}

func TestParseJSONForms(t *testing.T) {
	obj := `{"events":[{"kind":"down","at":"10ms","a":0,"b":1,"detect":"2ms"},
	                   {"kind":"crash","at":"20ms","node":5,"detect":"2ms"},
	                   {"kind":"drop","at":"0s","a":2,"b":3,"prob":0.01}]}`
	s1, err := Parse(obj)
	if err != nil {
		t.Fatal(err)
	}
	arr := `[{"kind":"down","at":"10ms","a":0,"b":1,"detect":"2ms"},
	         {"kind":"crash","at":"20ms","node":5,"detect":"2ms"},
	         {"kind":"drop","at":"0s","a":2,"b":3,"prob":0.01}]`
	s2, err := Parse(arr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("object and array forms differ: %v vs %v", s1, s2)
	}
	if s1.Events[0].Kind != LinkDown || s1.Events[1].Node != 5 || s1.Events[2].DropProb != 0.01 {
		t.Fatalf("bad JSON parse: %+v", s1.Events)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "nonsense", "down@10ms", "down@10ms:0-1", "flip@1ms:0-1/1ms",
		"down@xms:0-1/1ms", "down@1ms:0/1ms", "crash@1ms:a/1ms",
		"drop@1ms:0-1/often", `{"events":[{"kind":"down","at":"1ms"}]}`,
		`{"events":[]}`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestValidate(t *testing.T) {
	g := torus(t, 4, 2)
	ok, err := Parse("down@1ms:0-1/1ms;up@5ms:0-1/1ms;crash@2ms:5/1ms")
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Validate(g); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	for name, bad := range map[string]string{
		"no cable":        "down@1ms:0-5/1ms", // 0 and 5 are not torus neighbours
		"out of range":    "down@1ms:0-99/1ms",
		"double down":     "down@1ms:0-1/1ms;down@2ms:0-1/1ms",
		"repair not down": "up@1ms:0-1/1ms",
		"double crash":    "crash@1ms:5/1ms;crash@2ms:5/1ms",
		"dead node cable": "crash@1ms:5/1ms;down@2ms:5-6/1ms",
		"bad prob":        "drop@1ms:0-1/1.5",
	} {
		sched, err := Parse(bad)
		if err != nil {
			t.Fatalf("%s: parse failed: %v", name, err)
		}
		if err := sched.Validate(g); err == nil {
			t.Errorf("%s: Validate accepted %q", name, bad)
		}
	}
	// Union partition: a 1D ring of 4 loses both cables of node 1.
	ring := torus(t, 4, 1)
	part, err := Parse("down@1ms:0-1/1ms;down@2ms:1-2/1ms")
	if err != nil {
		t.Fatal(err)
	}
	if err := part.Validate(ring); err == nil {
		t.Error("partitioning union accepted")
	}
	// Even if the downs never overlap in time: the union rule is
	// deliberately conservative so every detection interleaving is safe.
	serial, err := Parse("down@1ms:0-1/1ms;up@2ms:0-1/1ms;down@3ms:1-2/1ms")
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.Validate(ring); err == nil {
		t.Error("union rule should reject serial flaps whose union partitions")
	}
}

func TestWaves(t *testing.T) {
	// Interleaved detections: A fails at 0 with detection 100, B fails at
	// 10 with detection 20. B's fire at t=30 covers both injections, so
	// A's fire at t=100 is a no-op: one wave.
	s, err := Parse("down@0ms:0-1/100ms;down@10ms:1-2/20ms")
	if err != nil {
		t.Fatal(err)
	}
	if w := s.Waves(); w != 1 {
		t.Fatalf("overlapping failures: waves = %d, want 1", w)
	}
	// Disjoint detection windows: two waves.
	s2, err := Parse("down@0ms:0-1/1ms;down@10ms:1-2/1ms")
	if err != nil {
		t.Fatal(err)
	}
	if w := s2.Waves(); w != 2 {
		t.Fatalf("disjoint failures: waves = %d, want 2", w)
	}
	// Repairs fire reroutes too; drop events never do.
	s3, err := Parse("down@0ms:0-1/1ms;up@10ms:0-1/1ms;drop@20ms:2-3/0.5")
	if err != nil {
		t.Fatal(err)
	}
	if w := s3.Waves(); w != 2 {
		t.Fatalf("down+up+drop: waves = %d, want 2", w)
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	g := torus(t, 4, 2)
	cfg := GenConfig{Seed: 7, Horizon: 50 * time.Millisecond, Flaps: 3, Crash: true, DropLinks: 1, DropProb: 0.02}
	s1, err := Generate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Generate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed produced different schedules")
	}
	if err := s1.Validate(g); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	downs, ups, crashes, drops := 0, 0, 0, 0
	for _, e := range s1.Events {
		switch e.Kind {
		case LinkDown:
			downs++
		case LinkRepair:
			ups++
		case NodeDown:
			crashes++
		case LinkDrop:
			drops++
		}
	}
	if downs != 3 || ups != 3 || crashes != 1 || drops != 1 {
		t.Fatalf("schedule shape: %d downs, %d ups, %d crashes, %d drops", downs, ups, crashes, drops)
	}
	if s3, _ := Generate(g, GenConfig{Seed: 8, Horizon: 50 * time.Millisecond, Flaps: 3, Crash: true}); reflect.DeepEqual(s1.Events, s3.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Horizon covers the last detection.
	if h := s1.Horizon(); h < s1.Sorted()[len(s1.Events)-1].At {
		t.Fatalf("horizon %v before last event", h)
	}
}

func TestGenerateRefusesPartition(t *testing.T) {
	// A 3-ring has 3 cables; any 2 of them partition it, so 2 flaps must
	// be refused.
	ring := torus(t, 3, 1)
	if _, err := Generate(ring, GenConfig{Seed: 1, Horizon: time.Millisecond, Flaps: 2}); err == nil {
		t.Fatal("generator produced a partitioning schedule")
	}
	if s, err := Generate(ring, GenConfig{Seed: 1, Horizon: time.Millisecond, Flaps: 1}); err != nil || len(s.Events) != 2 {
		t.Fatalf("single flap on a 3-ring should fit: %v %v", s, err)
	}
}
