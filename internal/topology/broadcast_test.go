package topology

import (
	"testing"
)

// Every broadcast tree must be a spanning tree whose nodes sit at their BFS
// depth (minimal broadcast time, §3.2).
func TestBroadcastTreeSpanningShortest(t *testing.T) {
	for _, g := range testGraphs(t) {
		for src := 0; src < g.Nodes(); src += 5 {
			trees := BuildBroadcastTrees(g, NodeID(src), 4, 42)
			for _, tree := range trees {
				if tree.TotalEdges() != g.Vertices()-1 {
					t.Fatalf("%v src=%d tree=%d: %d edges, want %d",
						g.Kind(), src, tree.ID, tree.TotalEdges(), g.Vertices()-1)
				}
				depth := walkTree(t, g, tree)
				if depth != tree.Depth {
					t.Fatalf("%v: recorded depth %d, walked depth %d", g.Kind(), tree.Depth, depth)
				}
				// Minimal broadcast time: depth equals eccentricity of src.
				ecc := 0
				for v := 0; v < g.Vertices(); v++ {
					if d := g.Dist(NodeID(src), NodeID(v)); d > ecc {
						ecc = d
					}
				}
				if depth != ecc {
					t.Fatalf("%v src=%d: tree depth %d != eccentricity %d", g.Kind(), src, depth, ecc)
				}
			}
		}
	}
}

// walkTree delivers a copy down the tree and checks each vertex is reached
// exactly once, at its BFS distance; it returns the max depth reached.
func walkTree(t *testing.T, g *Graph, tree *BroadcastTree) int {
	t.Helper()
	depthOf := make([]int, g.Vertices())
	for i := range depthOf {
		depthOf[i] = -1
	}
	depthOf[tree.Root] = 0
	queue := []NodeID{tree.Root}
	maxDepth := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, lid := range tree.Children[v] {
			l := g.Link(lid)
			if l.From != v {
				t.Fatalf("tree child link %v not rooted at %d", l, v)
			}
			if depthOf[l.To] != -1 {
				t.Fatalf("vertex %d receives two copies", l.To)
			}
			depthOf[l.To] = depthOf[v] + 1
			if want := g.Dist(tree.Root, l.To); depthOf[l.To] != want {
				t.Fatalf("vertex %d at tree depth %d, BFS distance %d", l.To, depthOf[l.To], want)
			}
			if depthOf[l.To] > maxDepth {
				maxDepth = depthOf[l.To]
			}
			queue = append(queue, l.To)
		}
	}
	for v, d := range depthOf {
		if d == -1 && g.Dist(tree.Root, NodeID(v)) >= 0 {
			t.Fatalf("reachable vertex %d never receives the broadcast", v)
		}
	}
	return maxDepth
}

func TestBroadcastTreesDiffer(t *testing.T) {
	g, err := NewTorus(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	trees := BuildBroadcastTrees(g, 0, 8, 1)
	distinct := false
	for i := 1; i < len(trees) && !distinct; i++ {
		for v := 0; v < g.Vertices(); v++ {
			if len(trees[0].Children[v]) != len(trees[i].Children[v]) {
				distinct = true
				break
			}
			for j := range trees[0].Children[v] {
				if trees[0].Children[v][j] != trees[i].Children[v][j] {
					distinct = true
					break
				}
			}
		}
	}
	if !distinct {
		t.Error("8 randomised broadcast trees are all identical; load balancing impossible")
	}
}

func TestBroadcastFIB(t *testing.T) {
	g, err := NewTorus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	fib := NewBroadcastFIB(g, 3, 7)
	for src := 0; src < g.Nodes(); src++ {
		if n := fib.TreesPerSource(NodeID(src)); n != 3 {
			t.Fatalf("TreesPerSource(%d) = %d, want 3", src, n)
		}
		for treeID := uint8(0); treeID < 3; treeID++ {
			// Simulate forwarding via FIB lookups; count deliveries.
			delivered := map[NodeID]bool{NodeID(src): true}
			queue := []NodeID{NodeID(src)}
			for len(queue) > 0 {
				at := queue[0]
				queue = queue[1:]
				hops, ok := fib.NextHops(NodeID(src), treeID, at)
				if !ok {
					t.Fatalf("FIB miss for src=%d tree=%d at=%d", src, treeID, at)
				}
				for _, lid := range hops {
					to := g.Link(lid).To
					if delivered[to] {
						t.Fatalf("duplicate delivery to %d", to)
					}
					delivered[to] = true
					queue = append(queue, to)
				}
			}
			if len(delivered) != g.Nodes() {
				t.Fatalf("src=%d tree=%d delivered to %d nodes, want %d", src, treeID, len(delivered), g.Nodes())
			}
		}
	}
	if _, ok := fib.NextHops(0, 99, 0); ok {
		t.Error("FIB hit for unknown tree ID")
	}
	if _, ok := fib.Tree(0, 99); ok {
		t.Error("Tree hit for unknown tree ID")
	}
}

// Broadcast cost accounting from §3.2: a 512-node rack broadcast costs
// (n-1) * 16 bytes = ~8 KB of total traffic.
func TestBroadcastCost512(t *testing.T) {
	g, err := NewTorus(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	trees := BuildBroadcastTrees(g, 0, 1, 1)
	bytes := trees[0].TotalEdges() * 16
	if bytes != 511*16 {
		t.Fatalf("broadcast bytes = %d, want %d", bytes, 511*16)
	}
}

func TestBuildBroadcastTreesPanicsOnBadCount(t *testing.T) {
	g, err := NewTorus(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for count=0")
		}
	}()
	BuildBroadcastTrees(g, 0, 0, 1)
}
